package harmony

import (
	"fmt"
	"io"

	"harmony/internal/data"
	"harmony/internal/exec"
	"harmony/internal/fault"
	"harmony/internal/nn"
	"harmony/internal/trace"
)

// TrainerConfig configures real (float32) training of an MLP
// classifier on capacity-limited virtual devices — the end-to-end
// demonstration of Harmony's coherent virtual memory. Users write
// against one logical model "as if running sequentially on a single
// device" (paper §3); Harmony decomposes, schedules and swaps.
type TrainerConfig struct {
	// Widths is the MLP shape: input dimension, hidden layers...,
	// number of classes.
	Widths []int
	// Mode and Devices select the parallel strategy.
	Mode    Mode
	Devices int
	// DeviceBytes is each virtual device's memory capacity. Set it
	// below the model footprint (see Trainer.FootprintBytes) to
	// exercise virtualized training.
	DeviceBytes int64
	// BatchSize is the per-replica samples per iteration; Harmony
	// splits it into Microbatches microbatches (default: one sample
	// per microbatch up to 8 microbatches).
	BatchSize    int
	Microbatches int
	// Adam selects the Adam optimizer (SGD otherwise); LR is the
	// learning rate (default 0.05 SGD, 0.005 Adam).
	Adam bool
	LR   float32
	Seed uint64
	// Toggles override the mode's default optimizations.
	Toggles *Toggles
	// Serial forces the single-threaded reference executor instead of
	// the default parallel device-worker executor. Both produce
	// bit-identical weights and losses; Serial exists for determinism
	// tests and ablation benchmarks.
	Serial bool
	// FaultSpec, when non-empty, arms deterministic fault injection
	// seeded by Seed. A spec is ";"-separated rules of ","-separated
	// key=value fields: op (kernel, swap-in, swap-out, p2p,
	// collective, any), mode (transient, fatal, delay), dev, step,
	// layer, count, prob, delay. Example:
	// "step=3,dev=1,op=kernel,mode=fatal;op=swap-in,count=2".
	FaultSpec string
	// MaxRetries bounds retries per faulted operation (0 = default 3,
	// negative disables).
	MaxRetries int
	// Recover enables rollback-and-resume after fatal device faults:
	// the dead device's work is re-bound to survivors and the step is
	// re-run from the last completed weight update.
	Recover bool
	// PrefetchDepth controls schedule-driven prefetch in the parallel
	// executor: async DMA workers swap in the inputs of the next
	// PrefetchDepth tasks of each device's queue while its current
	// kernel runs, and proactively write back dirty LRU pages. 0 uses
	// the mode's default (2 for Harmony modes, off for baselines);
	// negative disables. Prefetch changes only data movement, never
	// math — weights stay bit-identical at every depth.
	PrefetchDepth int
	// AdaptivePrefetch turns the fixed lookahead into an online
	// controller: each device's window and async-DMA byte budget are
	// retuned between iterations from that device's own coverage and
	// demand counters, keyed to the step counter — never wall time —
	// so adaptive runs stay bit-exact and their resize decision logs
	// replay identically (see Trainer.AdaptLog). Implies prefetch;
	// PrefetchDepth is the starting window. The serial executor never
	// prefetches, so Serial+AdaptivePrefetch is the static reference.
	AdaptivePrefetch bool
	// LinkBytesPerSec models host-link bandwidth: each swap/p2p copy
	// additionally costs bytes/LinkBytesPerSec of wall time on its
	// DMA lane. 0 disables modeling (transfers cost only memcpy
	// time). Useful for benchmarking how well prefetch hides swap
	// latency.
	LinkBytesPerSec int64
	// NoVerify skips the static preflight verification of the
	// execution plan (internal/schedcheck): happens-before liveness,
	// peak-residency fit, swap-volume agreement with the analytic
	// model and the DMA claim-machine invariant. Verification is on by
	// default; a rejected plan fails NewTrainer with a counterexample
	// trace.
	NoVerify bool
	// CommChunks splits each gradient AllReduce into that many
	// independently retired chunks, spread across device workers in
	// fixed k mod N order, so reduction overlaps backward compute
	// instead of parking every worker at one rendezvous. Chunk
	// boundaries and reducer assignment are fixed at plan time, and the
	// per-element summation order never changes — results stay
	// bit-identical to the monolithic path at every setting. 0 keeps
	// the monolithic rendezvous; rejected for sharded (TP) modes.
	CommChunks int
	// CommBucketBytes coalesces small per-layer gradients into
	// byte-budgeted buckets (DDP-style, packed in reverse layer order)
	// that share one rendezvous; each bucket is then chunked per
	// CommChunks (implied to 1 if unset). 0 keeps one bucket per
	// layer. Bucketing regroups JIT weight updates after the bucket's
	// deepest backward — queue order changes, math does not.
	CommBucketBytes int64
}

// Trainer trains a real model through Harmony's runtime.
type Trainer struct {
	inner    *exec.Trainer
	inj      *fault.Injector
	widths   []int
	mbSize   int
	mbCount  int
	mode     Mode
	adaptive bool
	step     uint64
}

// FaultEvent is one fault-injection notification: an injected fault
// or a retry (see OnFault). Alias of the internal injector's event.
type FaultEvent = fault.Event

// NewTrainer validates the configuration and builds the trainer.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("harmony: BatchSize must be positive")
	}
	mbCount := cfg.Microbatches
	if mbCount == 0 {
		mbCount = cfg.BatchSize
		if mbCount > 8 {
			mbCount = 8
		}
	}
	if cfg.BatchSize%mbCount != 0 {
		return nil, fmt.Errorf("harmony: BatchSize %d not divisible into %d microbatches", cfg.BatchSize, mbCount)
	}
	lr := cfg.LR
	if lr == 0 {
		if cfg.Adam {
			lr = 0.005
		} else {
			lr = 0.05
		}
	}
	opt := exec.SGD
	if cfg.Adam {
		opt = exec.Adam
	}
	mode := cfg.Mode.sched()
	var schedOpts *execOptions
	if cfg.Toggles != nil {
		o := cfg.Toggles.apply(defaultOptions(mode))
		schedOpts = &o
	}
	inj, err := fault.Parse(cfg.FaultSpec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	inner, err := exec.NewTrainer(exec.TrainerConfig{
		Widths:           cfg.Widths,
		Mode:             mode,
		Devices:          cfg.Devices,
		DeviceBytes:      cfg.DeviceBytes,
		MicrobatchSize:   cfg.BatchSize / mbCount,
		Microbatches:     mbCount,
		Optimizer:        opt,
		LR:               lr,
		Seed:             cfg.Seed,
		Options:          schedOpts,
		Serial:           cfg.Serial,
		Injector:         inj,
		MaxRetries:       cfg.MaxRetries,
		Recover:          cfg.Recover,
		PrefetchDepth:    cfg.PrefetchDepth,
		AdaptivePrefetch: cfg.AdaptivePrefetch,
		LinkBytesPerSec:  cfg.LinkBytesPerSec,
		NoVerify:         cfg.NoVerify,
		CommChunks:       cfg.CommChunks,
		CommBucketBytes:  cfg.CommBucketBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Trainer{
		inner:    inner,
		inj:      inj,
		widths:   cfg.Widths,
		mbSize:   cfg.BatchSize / mbCount,
		mbCount:  mbCount,
		mode:     cfg.Mode,
		adaptive: cfg.AdaptivePrefetch,
	}, nil
}

// Step runs one iteration on a flattened [BatchSize×Widths[0]] input
// and its labels, returning the mean loss. For multi-replica (DP)
// modes the same batch shape is required per replica, so inputs and
// labels must hold Replicas()×BatchSize samples.
func (t *Trainer) Step(inputs []float32, labels []int) (float32, error) {
	n := t.inner.Replicas()
	inDim := t.widths[0]
	perReplica := t.mbSize * t.mbCount
	if len(labels) != n*perReplica || len(inputs) != n*perReplica*inDim {
		return 0, fmt.Errorf("harmony: Step needs %d samples (%d replicas × %d), got %d",
			n*perReplica, n, perReplica, len(labels))
	}
	in := make([][][]float32, n)
	lb := make([][][]int, n)
	for r := 0; r < n; r++ {
		in[r] = make([][]float32, t.mbCount)
		lb[r] = make([][]int, t.mbCount)
		for i := 0; i < t.mbCount; i++ {
			off := (r*t.mbCount + i) * t.mbSize
			in[r][i] = inputs[off*inDim : (off+t.mbSize)*inDim]
			lb[r][i] = labels[off : off+t.mbSize]
		}
	}
	t.step++
	return t.inner.Step(in, lb)
}

// Predict runs inference with the current weights and returns logits
// for a flattened [batch×Widths[0]] input.
func (t *Trainer) Predict(inputs []float32, batch int) ([]float32, error) {
	return t.inner.Predict(inputs, batch)
}

// Replicas reports the number of data-parallel model replicas.
func (t *Trainer) Replicas() int { return t.inner.Replicas() }

// SamplesPerStep is the total samples one Step consumes.
func (t *Trainer) SamplesPerStep() int { return t.inner.Replicas() * t.mbSize * t.mbCount }

// FootprintBytes is the persistent model footprint per replica set.
func (t *Trainer) FootprintBytes() int64 { return t.inner.FootprintBytes() }

// Stats reports real data-movement counters (bytes actually copied
// between virtual device memory and host backing).
type Stats = exec.VMStats

// Stats returns accumulated data-movement counters.
func (t *Trainer) Stats() Stats { return t.inner.Stats() }

// CommStats reports chunked-collective counters: chunk reductions run
// and per-replica bytes reduced. Zero on monolithic plans (CommChunks
// unset). Alias of the internal executor's counters.
type CommStats = exec.CommStats

// CommStats returns accumulated chunked-collective counters. Safe to
// call between Steps.
func (t *Trainer) CommStats() CommStats { return t.inner.CommStats() }

// OnFault installs an observer notified of every injected fault and
// retry (for timelines and logging). The observer may be called from
// device-worker goroutines and must be safe for concurrent use; it
// must not call back into the trainer.
func (t *Trainer) OnFault(fn func(FaultEvent)) { t.inj.Observe(fn) }

// FaultStats reports how many faults were injected and how many
// retries the retry layers issued.
func (t *Trainer) FaultStats() (injected, retries int) { return t.inj.Stats() }

// EnableTrace starts recording a wall-clock execution timeline:
// compute kernels plus demand-swap, p2p, prefetch and write-back DMA
// lanes per device. Returns the live trace; read it only between
// Steps. The swap-overlap Gantt this renders is how prefetch
// effectiveness is eyeballed (see cmd/harmonytrain -swap-trace).
func (t *Trainer) EnableTrace() *trace.Trace { return t.inner.EnableTrace() }

// Close drains and stops the trainer's async DMA workers. Only needed
// when discarding a trainer that ran with prefetch enabled; step
// boundaries drain in-flight DMAs on their own.
func (t *Trainer) Close() { t.inner.Close() }

// Recoveries reports how many fatal device faults the trainer rolled
// back from and resumed past.
func (t *Trainer) Recoveries() int { return t.inner.Recoveries() }

// Blobs re-exports the synthetic dataset generator used by the
// examples: Gaussian class blobs.
type Blobs = data.Blobs

// NewBlobs creates a deterministic synthetic classification dataset.
func NewBlobs(dim, classes int, noise float32, seed uint64) *Blobs {
	return data.NewBlobs(dim, classes, noise, seed)
}

// NewLeNetTrainer builds a trainer for a LeNet-5-style convolutional
// classifier on 32×32 single-channel inputs (10 classes) — the 1998
// starting point of the paper's Fig. 1 — running through the same
// coherent virtual memory as the MLP trainer.
func NewLeNetTrainer(cfg TrainerConfig) (*Trainer, error) {
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("harmony: BatchSize must be positive")
	}
	mbCount := cfg.Microbatches
	if mbCount == 0 {
		mbCount = cfg.BatchSize
		if mbCount > 8 {
			mbCount = 8
		}
	}
	if cfg.BatchSize%mbCount != 0 {
		return nil, fmt.Errorf("harmony: BatchSize %d not divisible into %d microbatches", cfg.BatchSize, mbCount)
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.05
	}
	opt := exec.SGD
	if cfg.Adam {
		opt = exec.Adam
		if cfg.LR == 0 {
			lr = 0.005
		}
	}
	kernels := []nn.Kernel{
		nn.Conv2D{Cin: 1, H: 32, W: 32, Cout: 6, K: 5, ReLU: true},
		nn.MaxPool2D{C: 6, H: 28, W: 28, P: 2},
		nn.Conv2D{Cin: 6, H: 14, W: 14, Cout: 16, K: 5, ReLU: true},
		nn.MaxPool2D{C: 16, H: 10, W: 10, P: 2},
		nn.Dense{In: 16 * 5 * 5, Out: 120, ReLU: true},
		nn.Dense{In: 120, Out: 84, ReLU: true},
		nn.Dense{In: 84, Out: 10},
	}
	mode := cfg.Mode.sched()
	var schedOpts *execOptions
	if cfg.Toggles != nil {
		o := cfg.Toggles.apply(defaultOptions(mode))
		schedOpts = &o
	}
	inj, err := fault.Parse(cfg.FaultSpec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	inner, err := exec.NewTrainer(exec.TrainerConfig{
		Kernels:          kernels,
		Mode:             mode,
		Devices:          cfg.Devices,
		DeviceBytes:      cfg.DeviceBytes,
		MicrobatchSize:   cfg.BatchSize / mbCount,
		Microbatches:     mbCount,
		Optimizer:        opt,
		LR:               lr,
		Seed:             cfg.Seed,
		Options:          schedOpts,
		Serial:           cfg.Serial,
		Injector:         inj,
		MaxRetries:       cfg.MaxRetries,
		Recover:          cfg.Recover,
		PrefetchDepth:    cfg.PrefetchDepth,
		AdaptivePrefetch: cfg.AdaptivePrefetch,
		LinkBytesPerSec:  cfg.LinkBytesPerSec,
		NoVerify:         cfg.NoVerify,
		CommChunks:       cfg.CommChunks,
		CommBucketBytes:  cfg.CommBucketBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Trainer{
		inner:    inner,
		inj:      inj,
		widths:   []int{32 * 32, 10},
		mbSize:   cfg.BatchSize / mbCount,
		mbCount:  mbCount,
		mode:     cfg.Mode,
		adaptive: cfg.AdaptivePrefetch,
	}, nil
}

// AdaptDecision is one adaptive-prefetch controller decision: which
// device resized which knob (window or budget) at which step, and why.
type AdaptDecision = exec.AdaptDecision

// AdaptWindowStats summarizes one device's window trajectory: the
// extremes it visited and how many resizes the controller took.
type AdaptWindowStats = exec.AdaptWindowStats

// AdaptLog returns a copy of the adaptive-prefetch decision log.
// Decisions are keyed to the step counter, so two seeded runs of the
// same config return deep-equal logs; empty unless AdaptivePrefetch
// is on and the parallel executor is in use.
func (t *Trainer) AdaptLog() []AdaptDecision { return t.inner.AdaptLog() }

// AdaptStats returns per-device window extremes and resize counts;
// nil when the plan is not adaptive.
func (t *Trainer) AdaptStats() []AdaptWindowStats { return t.inner.AdaptStats() }

// Retune swaps the execution plan between Steps: microbatches changes
// the per-replica split (BatchSize must stay divisible; the batch
// itself never changes, so Step keeps accepting the same input shape),
// and toggles, when non-nil, replaces the optimization toggle set. The
// candidate plan runs the full static preflight first — an infeasible
// retune returns the verifier's counterexample and the current plan
// keeps running untouched. Training state (weights, optimizer,
// step counter) survives adoption. Pass 0 and nil to keep the
// respective current values.
func (t *Trainer) Retune(microbatches int, toggles *Toggles) error {
	req := exec.RetuneRequest{}
	batch := t.mbSize * t.mbCount
	mbc := t.mbCount
	if microbatches > 0 {
		if batch%microbatches != 0 {
			return fmt.Errorf("harmony: BatchSize %d not divisible into %d microbatches", batch, microbatches)
		}
		mbc = microbatches
		req.MicrobatchSize = batch / mbc
		req.Microbatches = mbc
	}
	if toggles != nil {
		o := toggles.apply(defaultOptions(t.mode.sched()))
		if toggles.AdaptivePrefetch == nil {
			o.AdaptivePrefetch = t.adaptive
		}
		req.Options = &o
	}
	if err := t.inner.Retune(req); err != nil {
		return err
	}
	t.mbSize, t.mbCount = batch/mbc, mbc
	if toggles != nil && toggles.AdaptivePrefetch != nil {
		t.adaptive = *toggles.AdaptivePrefetch
	}
	return nil
}

// Save writes a checkpoint of the model's weights, optimizer state
// and step counter (dirty device copies are synced first).
func (t *Trainer) Save(w io.Writer) error { return t.inner.Save(w) }

// Load restores a checkpoint into all replicas; the architecture must
// match.
func (t *Trainer) Load(r io.Reader) error { return t.inner.Load(r) }
