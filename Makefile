# Developer entry points. `make check` is the tier-1 gate: everything
# a change must pass before merging, including the race detector over
# the concurrent executor and memory manager.

GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The exec executor and memory manager are the only packages with real
# concurrency; race-check them specifically (the full suite under
# -race is much slower).
race:
	$(GO) test -race ./internal/exec/... ./internal/memory/...

# Executor ablation: serial reference vs parallel device workers.
bench:
	$(GO) test -run XXX -bench 'BenchmarkTrainerStep' -benchmem .

check: vet build test race
