# Developer entry points. `make check` is the tier-1 gate: everything
# a change must pass before merging, including the invariant linter
# (harmonylint), the race detector over the concurrent executor and
# memory manager, and a time-boxed fuzz of the checkpoint loader.

GO ?= go

.PHONY: all build vet lint lint-sarif lint-self lint-budget test race bench bench-contend bench-json bench-smoke bench-gate schedcheck fuzz check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static enforcement of the executor's concurrency and determinism
# invariants (DESIGN.md §10, §15, §16): blocking under vm.mu, DMA
# claim-state writes outside the transition helpers, wall-clock/rand/
# map-order nondeterminism in the deterministic core, mutex copies —
# plus the interprocedural passes (the global lock-order graph,
# goroutine and done-channel lifecycle, the claimword/schedcheck
# protocol cross-check, call-chain taint flow) and the path-sensitive
# CFG passes (pin balance, claim lifecycle, error-path lock/snapshot
# leaks). The ./... pattern covers cmd/ and internal/ alike. Runs from
# the module root; exits non-zero on findings.
lint: vet
	$(GO) run ./cmd/harmonylint ./...

# SARIF log for CI code scanning: same findings and exit code as
# `make lint`, but the report lands in harmonylint.sarif either way so
# the workflow can upload it and annotate the PR.
lint-sarif:
	@$(GO) run ./cmd/harmonylint -sarif ./... > harmonylint.sarif; \
	code=$$?; echo "wrote harmonylint.sarif"; exit $$code

# The linter analyzes itself: internal/analyzers and the harmonylint
# CLI are ordinary concurrent Go and get no exemption from their own
# rules.
lint-self:
	$(GO) run ./cmd/harmonylint ./internal/analyzers/... ./cmd/harmonylint

# Developer-loop latency guard for the full lint run. The
# interprocedural engine (call-graph summaries + fixpoints) and the
# CFG dataflow passes reuse one load and one Program per run — per-
# function CFGs are built lazily and cached on it — so the whole suite
# pays for type-checking once; this fails if the run exceeds
# LINT_BUDGET seconds (~3x the current measured ~9s wall time, with
# headroom for slower CI machines).
LINT_BUDGET ?= 30
lint-budget:
	@start=$$(date +%s); \
	$(GO) run ./cmd/harmonylint ./... || exit $$?; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "harmonylint wall time: $${elapsed}s (budget $(LINT_BUDGET)s)"; \
	[ $$elapsed -le $(LINT_BUDGET) ] || { echo "lint exceeded its wall-time budget"; exit 1; }

test:
	$(GO) test ./...

# The exec executor, memory manager and collectives are the packages
# with real concurrency or async error delivery; race-check them
# specifically (the full suite under -race is much slower).
race:
	$(GO) test -race ./internal/exec/... ./internal/memory/... ./internal/collective/...

# Executor ablation: serial reference vs parallel device workers,
# plus the swap-bound sync-vs-prefetch matrix.
bench:
	$(GO) test -run XXX -bench 'BenchmarkTrainerStep' -benchmem .

# Contention-scaling smoke (part of `make check`): the sharded Ensure
# hot path under a Zipf working set and under one goroutine per device
# at 1..64 devices. The full ns/op flatness guard lives in bench-gate;
# this target just proves both benches run clean.
bench-contend:
	$(GO) test -run XXX -bench 'BenchmarkEnsureContended|BenchmarkVMEvictionZipf' -benchtime 10000x ./internal/exec/

# Machine-readable swap-overlap report: sync vs static prefetch vs
# adaptive prefetch per-step times, swap volumes, DMA overlap
# fractions and window trajectories on the swap-bound configs.
# Regenerates the checked-in BENCH_trainer.json.
bench-json:
	$(GO) run ./cmd/benchtrainer -steps 4 -out BENCH_trainer.json

# One-step smoke of the same harness (part of `make check`): proves
# the sync and prefetch paths both train and the report writes.
bench-smoke:
	$(GO) run ./cmd/benchtrainer -steps 1 -out /dev/null

# Performance regression gate: regenerate the swap-overlap report and
# fail if (a) the swap-bound config's prefetch speedup dropped >20%
# against the checked-in baseline, (b) the adaptive controller hides
# >5 points less DMA overlap than the static window on the same row,
# (c) the sharded Ensure hot path stopped scaling — ns/op growing
# >15% from 16 to 64 devices means a cross-device lock is back on the
# claim path — or (d) chunked collectives on the dp4-comm row lost
# their edge: >10% slower than the monolithic rendezvous in the same
# report, or comm overlap >5 points below the checked-in baseline.
# CI runs this on every push.
bench-gate:
	$(GO) run ./cmd/benchtrainer -steps 4 -out /tmp/BENCH_trainer.new.json
	$(GO) run ./cmd/benchgate -old BENCH_trainer.json -new /tmp/BENCH_trainer.new.json -row dp1-hostlink -max-regress 0.20 -max-scale-degrade 0.15 -max-comm-overlap-drop 0.05 -max-comm-slowdown 0.10

# Static plan verification gate (part of `make check`): every clean
# plan shape must PASS, and each seeded plan bug — rendezvous cycle,
# analytic-volume divergence, over-capacity residency, uncommitted DMA
# claim — must be rejected with a counterexample, both by the CLI and
# by the harmonytrain preflight. The exhaustive per-variant sweep runs
# in the schedcheck package tests (TestPropertySweep).
schedcheck:
	$(GO) run ./cmd/schedcheck -mode harmony-dp -devices 2
	$(GO) run ./cmd/schedcheck -mode pp-baseline -devices 4 -layers 16 -prefetch=false
	$(GO) run ./cmd/schedcheck -mode harmony-tp -devices 2
	! $(GO) run ./cmd/schedcheck -mode dp-baseline -devices 2 -inject cycle
	! $(GO) run ./cmd/schedcheck -mode dp-baseline -devices 2 -inject volume
	! $(GO) run ./cmd/schedcheck -mode harmony-dp -devices 2 -inject overcap
	! $(GO) run ./cmd/schedcheck -mode harmony-dp -devices 2 -inject uncommitted
	! $(GO) run ./cmd/harmonytrain -arch mlp -widths 64,32,10 -devices 2 -device-mem 16384 -steps 1

# Time-boxed fuzzing: the checkpoint loader must reject arbitrary
# bytes with errors (never panics or huge allocations), and the
# retuner must admit only plans that pass the schedcheck preflight,
# whatever the measured profile claims.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzLoad -fuzztime 10s -test.fuzzminimizetime 5s ./internal/exec/
	$(GO) test -run '^$$' -fuzz FuzzRetune -fuzztime 10s -test.fuzzminimizetime 5s ./internal/tuner/

check: lint build test race fuzz bench-smoke bench-contend schedcheck
