# Developer entry points. `make check` is the tier-1 gate: everything
# a change must pass before merging, including the invariant linter
# (harmonylint), the race detector over the concurrent executor and
# memory manager, and a time-boxed fuzz of the checkpoint loader.

GO ?= go

.PHONY: all build vet lint test race bench bench-json bench-smoke fuzz check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static enforcement of the executor's concurrency and determinism
# invariants (DESIGN.md §10): blocking under vm.mu, DMA claim-state
# writes outside the transition helpers, wall-clock/rand/map-order
# nondeterminism in the deterministic core, mutex copies and leaked
# goroutines. Runs from the module root; exits non-zero on findings.
lint: vet
	$(GO) run ./cmd/harmonylint ./...

test:
	$(GO) test ./...

# The exec executor, memory manager and collectives are the packages
# with real concurrency or async error delivery; race-check them
# specifically (the full suite under -race is much slower).
race:
	$(GO) test -race ./internal/exec/... ./internal/memory/... ./internal/collective/...

# Executor ablation: serial reference vs parallel device workers,
# plus the swap-bound sync-vs-prefetch matrix.
bench:
	$(GO) test -run XXX -bench 'BenchmarkTrainerStep' -benchmem .

# Machine-readable swap-overlap report: sync vs prefetch per-step
# times, swap volumes and DMA overlap fractions on the swap-bound
# configs. Regenerates the checked-in BENCH_trainer.json.
bench-json:
	$(GO) run ./cmd/benchtrainer -steps 4 -out BENCH_trainer.json

# One-step smoke of the same harness (part of `make check`): proves
# the sync and prefetch paths both train and the report writes.
bench-smoke:
	$(GO) run ./cmd/benchtrainer -steps 1 -out /dev/null

# Time-boxed fuzz of the checkpoint loader: arbitrary bytes must be
# rejected with errors, never panics or huge allocations.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzLoad -fuzztime 10s -test.fuzzminimizetime 5s ./internal/exec/

check: lint build test race fuzz bench-smoke
