// mnist_train trains a real MLP classifier (actual float32 math, not
// simulation) on an MNIST-shaped synthetic dataset through Harmony's
// coherent virtual memory: two virtual devices whose combined memory
// is a quarter of the model's footprint, so every iteration swaps
// weights, gradients and optimizer state — and the model still
// converges to high accuracy.
//
//	go run ./examples/mnist_train
package main

import (
	"fmt"
	"log"

	"harmony"
	"harmony/internal/nn"
)

func main() {
	const (
		inputDim = 784 // 28×28, MNIST-shaped
		classes  = 10
		steps    = 60
	)
	tr, err := harmony.NewTrainer(harmony.TrainerConfig{
		Widths:       []int{inputDim, 64, 256, 256, 256, classes},
		Mode:         harmony.HarmonyPP,
		Devices:      2,
		DeviceBytes:  1536 << 10, // ≈4.3 MB footprint on two 1.5 MB devices
		BatchSize:    32,
		Microbatches: 4,
		Adam:         true,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model footprint %.2f MB across 2 virtual devices of 1.5 MB each\n",
		float64(tr.FootprintBytes())/(1<<20))

	blobs := harmony.NewBlobs(inputDim, classes, 2.2, 9)
	for step := 0; step < steps; step++ {
		x, y := blobs.Batch(tr.SamplesPerStep(), uint64(step))
		loss, err := tr.Step(x, y)
		if err != nil {
			log.Fatal(err)
		}
		if step%10 == 0 || step == steps-1 {
			fmt.Printf("step %3d  loss %.4f\n", step, loss)
		}
	}

	// Evaluate on held-out batches.
	correct, total := 0, 0
	for b := 0; b < 4; b++ {
		x, y := blobs.Batch(128, uint64(100000+b))
		logits, err := tr.Predict(x, 128)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 128; i++ {
			if nn.Argmax(logits, i, classes) == y[i] {
				correct++
			}
			total++
		}
	}
	st := tr.Stats()
	fmt.Printf("\naccuracy: %.1f%% on %d held-out samples\n", 100*float64(correct)/float64(total), total)
	fmt.Printf("real data moved by the coherent virtual memory: %.1f MB swapped in, %.1f MB out, %.1f MB p2p\n",
		float64(st.SwapInBytes)/(1<<20), float64(st.SwapOutBytes)/(1<<20), float64(st.P2PBytes)/(1<<20))
	fmt.Println("(training was bit-identical to an unconstrained run: see internal/exec tests)")
}
