// gpt2_pp pipelines a GPT-2-XL-class model across four GPUs and
// contrasts 1F1B with per-GPU virtualization (unbalanced swap, Fig.
// 2(c)) against Harmony-PP (grouped waves, p2p transfers, packed
// stages).
//
//	go run ./examples/gpt2_pp
package main

import (
	"fmt"
	"log"

	"harmony"
)

func main() {
	model := harmony.GPT2XL()
	server := harmony.CommodityServer(4)
	fmt.Printf("GPT-2 XL pipeline on 4×11 GiB (persistent footprint %.1f GiB)\n\n", model.PersistentGB())

	base, err := harmony.Simulate(harmony.SimConfig{
		Model: model, Mode: harmony.PPBaseline, Server: server,
		MicrobatchSize: 1, Microbatches: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	// GPT-2 XL at sequence length 1024 is stash-heavy (the attention
	// probabilities dominate), so full input-batch grouping would
	// stash all 8 microbatches at every stage and blow the memory
	// budget. The tango answer is wave interleaving with group size
	// 1: 1F1B-shaped in-flight bounds plus Harmony's dirty tracking,
	// prefetch and p2p transfers. (On weight-dominated workloads like
	// BERT-48 at sequence 512, larger groups win — see quickstart.)
	hpp, err := harmony.Simulate(harmony.SimConfig{
		Model: model, Mode: harmony.HarmonyPP, Server: server,
		MicrobatchSize: 1, Microbatches: 8,
		Toggles: &harmony.Toggles{GroupSize: 1, WaveInterleave: harmony.Bool(true)},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-stage swap load (the Fig. 2(c) imbalance):")
	fmt.Printf("%-8s | %-28s | %-28s\n", "stage", "1F1B + per-GPU virtualization", "harmony-pp")
	for d := range base.PerGPUSwapOutBytes {
		fmt.Printf("gpu%-5d | %13.2f GiB swap-out | %13.2f GiB swap-out\n",
			d, float64(base.PerGPUSwapOutBytes[d])/(1<<30), float64(hpp.PerGPUSwapOutBytes[d])/(1<<30))
	}
	fmt.Printf("\n%-12s %14s %14s %12s\n", "", "throughput", "swap GiB/it", "p2p GiB/it")
	fmt.Printf("%-12s %10.3f s/s %14.1f %12.2f\n", "pp-baseline", base.Throughput, base.SwapGB(),
		float64(base.P2PBytes)/(1<<30))
	fmt.Printf("%-12s %10.3f s/s %14.1f %12.2f\n", "harmony-pp", hpp.Throughput, hpp.SwapGB(),
		float64(hpp.P2PBytes)/(1<<30))
	fmt.Printf("\nharmony-pp: %.2fx the baseline throughput; cross-stage activations ride p2p links\n",
		hpp.Throughput/base.Throughput)
	fmt.Println("(group size is workload-dependent — the tuner example sweeps the tango)")
}
