// cluster explores the paper's §4 multi-machine discussion: the same
// four GPUs arranged as one box, two boxes, or four boxes. Each
// machine brings its own host memory — and its own host link, which
// is exactly the resource the Fig. 2(b) bottleneck starves.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"harmony"
)

func main() {
	model := harmony.BERT48()
	fmt.Printf("BERT-48 (%.1f GiB footprint) on four 11 GiB GPUs, varying the machine layout\n\n",
		model.PersistentGB())
	layouts := []struct {
		name   string
		server harmony.Server
	}{
		{"1 server x 4 GPUs", harmony.CommodityServer(4)},
		{"2 servers x 2 GPUs", harmony.Cluster(2, 2)},
		{"4 servers x 1 GPU ", harmony.Cluster(4, 1)},
	}
	fmt.Printf("%-20s | %22s | %22s\n", "layout", "harmony-dp thr/swapGB", "harmony-pp thr/swapGB")
	for _, lay := range layouts {
		hdp, err := harmony.Simulate(harmony.SimConfig{
			Model: model, Mode: harmony.HarmonyDP, Server: lay.server,
			MicrobatchSize: 1, Microbatches: 5,
		})
		if err != nil {
			log.Fatalf("%s dp: %v", lay.name, err)
		}
		hpp, err := harmony.Simulate(harmony.SimConfig{
			Model: model, Mode: harmony.HarmonyPP, Server: lay.server,
			MicrobatchSize: 1, Microbatches: 20,
			Toggles: &harmony.Toggles{GroupSize: 5},
		})
		if err != nil {
			log.Fatalf("%s pp: %v", lay.name, err)
		}
		fmt.Printf("%-20s | %9.3f / %9.1f | %9.3f / %9.1f\n",
			lay.name, hdp.Throughput, hdp.SwapGB(), hpp.Throughput, hpp.SwapGB())
	}
	fmt.Println("\nswap-bound data parallelism speeds up as the GPUs spread out: every server")
	fmt.Println("adds an independent host link. The bottleneck was never GPU count — it was")
	fmt.Println("per-machine host bandwidth, which is the paper's Fig. 2(b) argument inverted.")
}
