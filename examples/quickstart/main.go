// Quickstart: train a model whose footprint (≈22 GiB) is twice one
// GPU's memory on a simulated 4×11 GiB commodity server, comparing
// naive per-GPU memory virtualization against Harmony.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"harmony"
)

func main() {
	model := harmony.BERT48()
	server := harmony.CommodityServer(4)
	fmt.Printf("workload: %s — persistent footprint %.1f GiB, per-GPU memory 11 GiB\n\n",
		model.Name(), model.PersistentGB())

	// Baseline: data parallelism, each GPU demand-paging its replica
	// through the shared host link (IBM-LMS style).
	base, err := harmony.Simulate(harmony.SimConfig{
		Model:          model,
		Mode:           harmony.DPBaseline,
		Server:         server,
		MicrobatchSize: 5, // per-GPU batch of 5, one microbatch
		Microbatches:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Harmony-PP: fine-grained tasks, input-batch grouping in waves,
	// JIT updates, p2p transfers, packed stages.
	hpp, err := harmony.Simulate(harmony.SimConfig{
		Model:          model,
		Mode:           harmony.HarmonyPP,
		Server:         server,
		MicrobatchSize: 1,
		Microbatches:   20, // same global batch: 4 GPUs × 5
		Toggles:        &harmony.Toggles{GroupSize: 5},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %16s\n", "", "throughput", "swap GiB/iter")
	fmt.Printf("%-22s %10.3f seq/s %16.1f\n", "per-GPU virtualization", base.Throughput, base.SwapGB())
	fmt.Printf("%-22s %10.3f seq/s %16.1f\n", "harmony-pp", hpp.Throughput, hpp.SwapGB())
	fmt.Printf("\nharmony: %.2fx the throughput with %.1fx less swap traffic\n",
		hpp.Throughput/base.Throughput, base.SwapGB()/hpp.SwapGB())
}
