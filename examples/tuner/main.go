// tuner demonstrates the §4 "memory–performance tango": sweeping
// microbatch split, grouping window, prefetch and update deferral for
// a workload under memory pressure, then letting the Performance
// Tuner pick the winner.
//
//	go run ./examples/tuner
package main

import (
	"fmt"
	"log"

	"harmony"
)

func main() {
	model := harmony.UniformModel(8, 1_000_000, 16<<10, 5e9)
	server := harmony.CommodityServer(2).WithGPUMemory(20 << 20)
	fmt.Println("memory–performance tango: 8×4 MB layers, 20 MB devices, harmony-pp on 2 GPUs")
	fmt.Println("(full grouping minimizes swap volume; waves buy pipeline overlap with extra swaps)")
	fmt.Println()

	res, err := harmony.Tune(harmony.TuneConfig{
		Model:           model,
		Mode:            harmony.HarmonyPP,
		Server:          server,
		BatchPerReplica: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-36s %14s %12s\n", "candidate", "throughput", "swap GiB/it")
	for _, m := range res.Table {
		if !m.Feasible {
			fmt.Printf("%-36s %14s %12s (infeasible: %s)\n", m.Candidate, "-", "-", m.Err)
			continue
		}
		marker := " "
		if m.Candidate == res.Table[0].Candidate {
			marker = "*"
		}
		fmt.Printf("%-36s %12.1f %s %12.3f\n", m.Candidate, m.Throughput, marker, m.SwapGB)
	}
	fmt.Printf("\ntuner pick: mb=%d×%d group=%d prefetch=%v — %.1f samples/s at %.3f GiB/iter swap\n",
		res.BestMicrobatchSize, res.BestMicrobatches, res.BestGroupSize, res.BestPrefetch,
		res.BestThroughput, res.BestSwapGB)
	fmt.Printf("(explored %d candidates; greedy hill climbing explores fewer: set Greedy in TuneConfig)\n",
		res.Explored)
}
