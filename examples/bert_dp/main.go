// bert_dp reproduces the Fig. 2(a) scenario interactively: BERT-class
// data-parallel training with per-GPU memory virtualization across
// GPU counts, showing the swap bottleneck on the shared host link,
// then the Harmony-DP fix.
//
//	go run ./examples/bert_dp
package main

import (
	"fmt"
	"log"

	"harmony"
)

func main() {
	model := harmony.BERT48()
	fmt.Printf("BERT-48 data-parallel scaling (batch 5 per GPU, footprint %.1f GiB vs 11 GiB GPUs)\n\n",
		model.PersistentGB())
	fmt.Printf("%-6s | %22s | %22s | %s\n", "GPUs",
		"baseline thr / swapGB", "harmony-dp thr / swapGB", "harmony-dp advantage")

	for _, n := range []int{1, 2, 3, 4} {
		server := harmony.CommodityServer(n)
		base, err := harmony.Simulate(harmony.SimConfig{
			Model: model, Mode: harmony.DPBaseline, Server: server,
			MicrobatchSize: 5, Microbatches: 1,
		})
		if err != nil {
			log.Fatalf("baseline n=%d: %v", n, err)
		}
		// Harmony decomposes the same per-GPU batch into 5 microbatches
		// so input-batch grouping has a window to work with.
		hdp, err := harmony.Simulate(harmony.SimConfig{
			Model: model, Mode: harmony.HarmonyDP, Server: server,
			MicrobatchSize: 1, Microbatches: 5,
		})
		if err != nil {
			log.Fatalf("harmony n=%d: %v", n, err)
		}
		fmt.Printf("%-6d | %9.3f / %9.1f | %9.3f / %10.1f | %.2fx faster, %.1fx less swap\n",
			n, base.Throughput, base.SwapGB(), hdp.Throughput, hdp.SwapGB(),
			hdp.Throughput/base.Throughput, base.SwapGB()/hdp.SwapGB())
	}
	fmt.Println("\nnote the baseline's swap volume growing linearly with GPU count while")
	fmt.Println("its throughput saturates: the shared PCIe host link is the bottleneck (Fig. 2(b)).")

	// With gradient accumulation (m microbatches per iteration) the
	// baseline re-swaps weights every microbatch — the (4m+2)|W| of
	// §3 — while Harmony's grouping stays at 3|W|: the gap widens
	// with m exactly as the analytical model predicts.
	fmt.Println("\ngradient accumulation on 2 GPUs (batch 1 × m microbatches):")
	fmt.Printf("%-4s | %22s | %22s | %s\n", "m", "baseline thr / swapGB", "harmony-dp thr / swapGB", "ratio")
	for _, m := range []int{2, 4, 8} {
		server := harmony.CommodityServer(2)
		base, err := harmony.Simulate(harmony.SimConfig{
			Model: model, Mode: harmony.DPBaseline, Server: server,
			MicrobatchSize: 1, Microbatches: m,
		})
		if err != nil {
			log.Fatalf("accum baseline m=%d: %v", m, err)
		}
		hdp, err := harmony.Simulate(harmony.SimConfig{
			Model: model, Mode: harmony.HarmonyDP, Server: server,
			MicrobatchSize: 1, Microbatches: m,
		})
		if err != nil {
			log.Fatalf("accum harmony m=%d: %v", m, err)
		}
		fmt.Printf("%-4d | %9.3f / %9.1f | %9.3f / %10.1f | %.2fx faster, %.1fx less swap\n",
			m, base.Throughput, base.SwapGB(), hdp.Throughput, hdp.SwapGB(),
			hdp.Throughput/base.Throughput, base.SwapGB()/hdp.SwapGB())
	}
}
