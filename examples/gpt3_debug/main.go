// gpt3_debug demonstrates the paper's §4 feasibility argument at its
// extreme: GPT-3 (175 B parameters, 700 GB of fp32 weights) cannot
// even schedule one training iteration at layer granularity on a
// 4×11 GiB commodity box — a single layer's backward working set is
// 18.6 GiB. Decomposing individual operations into per-GPU subtasks
// (the paper's second key idea) makes the iteration schedulable, so a
// researcher can *develop and debug* the model locally even though
// pre-training it here would take centuries.
//
//	go run ./examples/gpt3_debug
package main

import (
	"fmt"
	"log"

	"harmony"
	"harmony/internal/models"
)

func main() {
	model := harmony.CustomModel(models.GPT3())
	server := harmony.CommodityServer(4)
	fmt.Printf("GPT-3: %.0f GiB persistent footprint vs %d GPUs × 11 GiB\n\n",
		model.PersistentGB(), server.GPUs())

	// Layer-granularity pipeline: infeasible.
	_, err := harmony.Simulate(harmony.SimConfig{
		Model: model, Mode: harmony.HarmonyPP, Server: server,
		MicrobatchSize: 1, Microbatches: 4,
		Toggles: &harmony.Toggles{GroupSize: 1, WaveInterleave: harmony.Bool(true)},
	})
	if err == nil {
		log.Fatal("expected layer-granularity scheduling to fail")
	}
	fmt.Printf("layer-granularity tasks: %v\n\n", err)

	// Operation-decomposed (intra-op sharded): feasible.
	rep, err := harmony.Simulate(harmony.SimConfig{
		Model: model, Mode: harmony.HarmonyTP, Server: server,
		MicrobatchSize: 1, Microbatches: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("op-decomposed subtasks (key idea #2): one debug iteration = %.0f s (%.1f min)\n",
		rep.IterSeconds, rep.IterSeconds/60)
	fmt.Printf("swap traffic %.0f GiB/iter — the host memory holds the model, the GPUs stream it\n\n",
		rep.SwapGB())
	fmt.Println("matches §4: Harmony \"can still enable the development and debugging of such")
	fmt.Println("models on modest deployments (before they are deployed for pre-training at a")
	fmt.Println("larger scale)\" — while pre-training here would take centuries (see -fig ext5).")
}
