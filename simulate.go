package harmony

import (
	"fmt"

	"harmony/internal/graph"
	"harmony/internal/models"
	"harmony/internal/runtime"
	"harmony/internal/sched"
	"harmony/internal/tuner"
)

// ModelSpec names a workload for simulation. Use one of the zoo
// constructors or wrap a custom *models.Model.
type ModelSpec struct {
	m *models.Model
}

// BERT48 is the paper's "large BERT" workload (~1.4 B parameters,
// footprint ≈ 2× an 11 GB GPU with Adam).
func BERT48() ModelSpec { return ModelSpec{models.BERT48()} }

// BERTLarge is the standard 24-layer BERT-Large.
func BERTLarge() ModelSpec { return ModelSpec{models.BERTLarge()} }

// GPT2XL is the 1.5 B-parameter GPT-2.
func GPT2XL() ModelSpec { return ModelSpec{models.GPT2XL()} }

// UniformModel is the §3 analytical workload: R identical layers.
func UniformModel(layers int, paramsPerLayer, actBytesPerSample int64, flopsPerSample float64) ModelSpec {
	return ModelSpec{models.Uniform("uniform", layers, paramsPerLayer, actBytesPerSample, flopsPerSample)}
}

// CustomModel wraps an explicit model description.
func CustomModel(m *models.Model) ModelSpec { return ModelSpec{m} }

// Name returns the model's name.
func (m ModelSpec) Name() string { return m.m.Name }

// PersistentGB is the per-replica persistent footprint (weights +
// gradients + optimizer state) in GiB.
func (m ModelSpec) PersistentGB() float64 { return float64(m.m.PersistentBytes()) / (1 << 30) }

// Model exposes the underlying description for advanced callers.
func (m ModelSpec) Model() *models.Model { return m.m }

// SimConfig describes one simulated training measurement.
type SimConfig struct {
	Model  ModelSpec
	Mode   Mode
	Server Server

	// MicrobatchSize × Microbatches is the per-replica batch for DP
	// modes and the whole mini-batch stream for pipeline modes.
	MicrobatchSize int
	Microbatches   int

	// Toggles override the mode's default optimizations (ablation).
	Toggles *Toggles

	// Recompute enables activation recomputation: checkpoint only
	// each layer's input and re-run the forward during backward,
	// trading FLOPs for stash memory.
	Recompute bool

	// WarmupIters (default 1) and MeasureIters (default 2).
	WarmupIters  int
	MeasureIters int

	// CaptureTrace records a Gantt-renderable execution trace.
	CaptureTrace bool
}

// SimReport is the outcome of a simulated run.
type SimReport struct {
	// Throughput in samples/second and steady-state seconds per
	// iteration.
	Throughput  float64
	IterSeconds float64

	// Per-iteration swap traffic in bytes, summed over devices.
	SwapInBytes  int64
	SwapOutBytes int64
	P2PBytes     int64

	// PerGPUSwapOutBytes and PerGPUDemandBytes mirror Fig. 2(c):
	// per-device swap load and peak working-set demand.
	PerGPUSwapOutBytes []int64
	PerGPUDemandBytes  []int64

	// Gantt is a text rendering of the schedule when CaptureTrace
	// was set.
	Gantt string
}

// SwapGB returns total per-iteration swap traffic in GiB.
func (r *SimReport) SwapGB() float64 {
	return float64(r.SwapInBytes+r.SwapOutBytes) / (1 << 30)
}

// Simulate runs the configuration on the simulated server.
func Simulate(cfg SimConfig) (*SimReport, error) {
	if cfg.Model.m == nil {
		return nil, fmt.Errorf("harmony: SimConfig.Model is required")
	}
	if cfg.Server.cfg.NumGPUs == 0 {
		return nil, fmt.Errorf("harmony: SimConfig.Server is required (use CommodityServer)")
	}
	mode := cfg.Mode.sched()
	gpus := cfg.Server.cfg.TotalGPUs()
	replicas := gpus
	shards := 0
	if mode.IsPipeline() {
		replicas = 1
	}
	if mode.IsSharded() {
		replicas = 1
		shards = gpus
	}
	mbs, mbn := cfg.MicrobatchSize, cfg.Microbatches
	if mbs == 0 {
		mbs = 1
	}
	if mbn == 0 {
		mbn = 1
	}
	g, err := graph.Build(graph.Config{
		Model:          cfg.Model.m,
		MicrobatchSize: mbs,
		Microbatches:   mbn,
		Replicas:       replicas,
		Recompute:      cfg.Recompute,
		OpShards:       shards,
	})
	if err != nil {
		return nil, err
	}
	opts := cfg.Toggles.apply(sched.DefaultOptions(mode))
	opts.Mode = mode
	s, err := sched.Build(g, opts, gpus)
	if err != nil {
		return nil, err
	}
	warm, meas := cfg.WarmupIters, cfg.MeasureIters
	if meas == 0 {
		meas = 2
	}
	if warm == 0 {
		warm = 1
	}
	res, err := runtime.Run(runtime.Config{
		Box:          cfg.Server.cfg,
		Schedule:     s,
		WarmupIters:  warm,
		MeasureIters: meas,
		CaptureTrace: cfg.CaptureTrace,
	})
	if err != nil {
		return nil, err
	}
	rep := &SimReport{
		Throughput:         res.Throughput,
		IterSeconds:        float64(res.IterTime),
		SwapInBytes:        res.SwapInBytes,
		SwapOutBytes:       res.SwapOutBytes,
		P2PBytes:           res.P2PBytes,
		PerGPUSwapOutBytes: res.PerDevSwapOut,
		PerGPUDemandBytes:  res.PerDevDemand,
	}
	if res.Trace != nil {
		rep.Gantt = res.Trace.Gantt(100)
	}
	return rep, nil
}

// TuneConfig describes a tango search.
type TuneConfig struct {
	Model           ModelSpec
	Mode            Mode
	Server          Server
	BatchPerReplica int
	// Greedy uses hill climbing instead of the exhaustive grid.
	Greedy bool
}

// TuneResult reports the winning configuration and the explored
// space.
type TuneResult struct {
	BestMicrobatchSize int
	BestMicrobatches   int
	BestGroupSize      int
	BestPrefetch       bool
	BestDefer          bool
	BestThroughput     float64
	BestSwapGB         float64
	Explored           int
	// Table lists every measurement, best first, for reporting.
	Table []tuner.Measurement
}

// Tune searches the memory–performance tango for the best-throughput
// feasible configuration.
func Tune(cfg TuneConfig) (*TuneResult, error) {
	if cfg.Model.m == nil {
		return nil, fmt.Errorf("harmony: TuneConfig.Model is required")
	}
	tcfg := tuner.Config{
		Model:           cfg.Model.m,
		Mode:            cfg.Mode.sched(),
		Box:             cfg.Server.cfg,
		BatchPerReplica: cfg.BatchPerReplica,
	}
	var (
		res *tuner.Result
		err error
	)
	if cfg.Greedy {
		res, err = tuner.HillClimb(tcfg, cfg.Server.cfg.NumGPUs)
	} else {
		res, err = tuner.Run(tcfg, cfg.Server.cfg.NumGPUs)
	}
	if err != nil {
		return nil, err
	}
	b := res.Best
	return &TuneResult{
		BestMicrobatchSize: b.Candidate.MicrobatchSize,
		BestMicrobatches:   b.Candidate.Microbatches,
		BestGroupSize:      b.Candidate.GroupSize,
		BestPrefetch:       b.Candidate.Prefetch,
		BestDefer:          b.Candidate.Defer,
		BestThroughput:     b.Throughput,
		BestSwapGB:         b.SwapGB,
		Explored:           res.Explored,
		Table:              res.Measurements,
	}, nil
}
