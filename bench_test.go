// Benchmark harness: one bench per table and figure of the paper
// (regenerating its rows/series as reported metrics), plus ablation
// benches for every design toggle DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Metrics are emitted via b.ReportMetric so the bench output itself
// reproduces the figures' series: throughput (seq/s), swap volume
// (GB/iteration) and analytical-model error (%).
package harmony

import (
	"fmt"
	"testing"
	"time"

	"harmony/internal/experiments"
	"harmony/internal/hw"
	"harmony/internal/models"
	"harmony/internal/sched"
	"harmony/internal/tuner"
)

// BenchmarkFig1ModelZoo regenerates Fig. 1: parameter counts over two
// decades (reported as log10 metrics per model).
func BenchmarkFig1ModelZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1()
		if len(rows) != 7 {
			b.Fatal("zoo incomplete")
		}
	}
	for _, r := range experiments.Fig1() {
		b.ReportMetric(r.Log10Params, "log10params:"+r.Name)
	}
}

// BenchmarkFig2aDPSwapBottleneck regenerates Fig. 2(a): global
// throughput and swap-out volume for DP BERT training on 1–4 GPUs.
func BenchmarkFig2aDPSwapBottleneck(b *testing.B) {
	cfg := experiments.DefaultFig2a()
	var rows []experiments.Fig2aRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig2a(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Throughput, fmt.Sprintf("seq/s@%dgpu", r.GPUs))
		b.ReportMetric(r.SwapOutGB, fmt.Sprintf("swapGB@%dgpu", r.GPUs))
	}
}

// BenchmarkFig2cPPImbalance regenerates Fig. 2(c): per-stage memory
// demand and swap load under 1F1B with per-GPU virtualization.
func BenchmarkFig2cPPImbalance(b *testing.B) {
	var rows []experiments.Fig2cRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig2c(models.BERT48(), 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.DemandGB, fmt.Sprintf("demandGB@gpu%d", r.GPU))
		b.ReportMetric(r.SwapOutGB, fmt.Sprintf("swapGB@gpu%d", r.GPU))
	}
}

// BenchmarkFig4HarmonySchedule regenerates Fig. 4: the grouped
// Harmony-PP schedule on the toy four-layer model.
func BenchmarkFig4HarmonySchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gantt, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if len(gantt) == 0 {
			b.Fatal("empty gantt")
		}
	}
}

// BenchmarkFig5SwapVolume regenerates Fig. 5 / §3: simulated weight
// swap volume vs the closed forms (4m+2)N|W|, 3N|W| and 3|W|,
// reporting the worst relative error against each.
func BenchmarkFig5SwapVolume(b *testing.B) {
	var rows []experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig5([]int{2, 4, 8}, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	worstIdeal, worstCorr := 0.0, 0.0
	for _, r := range rows {
		if r.RelErrIdeal > worstIdeal {
			worstIdeal = r.RelErrIdeal
		}
		if r.RelErrCorr > worstCorr {
			worstCorr = r.RelErrCorr
		}
	}
	b.ReportMetric(100*worstIdeal, "worst-err-ideal-%")
	b.ReportMetric(100*worstCorr, "worst-err-corrected-%")
	b.ReportMetric(float64(len(rows)), "cells")
}

// BenchmarkExtHarmonyDPThroughput regenerates EXT1: baseline vs
// Harmony throughput and swap volume on the Fig. 2 workload.
func BenchmarkExtHarmonyDPThroughput(b *testing.B) {
	var rows []experiments.Ext1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Ext1(models.BERT48(), []int{1, 2, 4}, 5, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.BaseThroughput, fmt.Sprintf("base-seq/s@%d", r.GPUs))
		b.ReportMetric(r.HarmonyDPThroughput, fmt.Sprintf("hdp-seq/s@%d", r.GPUs))
		if r.GPUs >= 2 {
			b.ReportMetric(r.HarmonyPPThroughput, fmt.Sprintf("hpp-seq/s@%d", r.GPUs))
		}
	}
}

// BenchmarkExtTunerSweep regenerates EXT2: the memory–performance
// tango sweep, reporting the best candidate's throughput and the
// spread across the space.
func BenchmarkExtTunerSweep(b *testing.B) {
	model := models.Uniform("tango", 8, 1_000_000, 16<<10, 5e9)
	box := hw.Commodity1080TiBox(2)
	box.GPUMemBytes = 20 << 20
	cfg := tuner.Config{Model: model, Mode: sched.HarmonyPP, Box: box, BatchPerReplica: 4}
	var res *tuner.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = tuner.Run(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Best.Throughput, "best-samples/s")
	worst := res.Measurements[len(res.Measurements)-1]
	if worst.Feasible {
		b.ReportMetric(res.Best.Throughput/worst.Throughput, "best/worst-ratio")
	}
	b.ReportMetric(float64(res.Explored), "candidates")
}

// ---------------------------------------------------------- ablations

// ablationRun measures one toggle configuration on a mid-size
// memory-pressured workload.
func ablationRun(b *testing.B, mutate func(*Toggles)) (thr, swapGB float64) {
	b.Helper()
	tg := &Toggles{}
	mutate(tg)
	rep, err := Simulate(SimConfig{
		Model:          UniformModel(12, 2_000_000, 64<<10, 2e10),
		Mode:           HarmonyDP,
		Server:         CommodityServer(2).WithGPUMemory(48 << 20),
		MicrobatchSize: 1,
		Microbatches:   4,
		Toggles:        tg,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rep.Throughput, rep.SwapGB()
}

func benchAblation(b *testing.B, name string, mutate func(*Toggles)) {
	b.Run(name, func(b *testing.B) {
		var thr, swap float64
		for i := 0; i < b.N; i++ {
			thr, swap = ablationRun(b, mutate)
		}
		b.ReportMetric(thr, "samples/s")
		b.ReportMetric(swap, "swapGB/iter")
	})
}

// BenchmarkAblation flips each Harmony optimization off one at a time
// (DESIGN.md §5): the deltas against "all-on" quantify each
// technique's contribution.
func BenchmarkAblation(b *testing.B) {
	benchAblation(b, "all-on", func(*Toggles) {})
	benchAblation(b, "no-grouping", func(t *Toggles) { t.Grouping = Bool(false) })
	benchAblation(b, "no-jit", func(t *Toggles) { t.JIT = Bool(false) })
	benchAblation(b, "no-p2p", func(t *Toggles) { t.P2P = Bool(false) })
	benchAblation(b, "no-prefetch", func(t *Toggles) { t.Prefetch = Bool(false) })
	benchAblation(b, "no-dirty-tracking", func(t *Toggles) { t.DirtyTracking = Bool(false) })
	benchAblation(b, "no-defer", func(t *Toggles) { t.DeferBlockedUpdates = Bool(false) })
	benchAblation(b, "group-of-2", func(t *Toggles) { t.GroupSize = 2 })
}

// BenchmarkRealTrainingStep measures the real-execution runtime: one
// training iteration of an MLP under 4x memory over-commit (actual
// float32 math plus coherent-virtual-memory copies).
func BenchmarkRealTrainingStep(b *testing.B) {
	tr, err := NewTrainer(TrainerConfig{
		Widths:      []int{256, 512, 512, 10},
		Mode:        HarmonyPP,
		Devices:     2,
		DeviceBytes: 5 << 20,
		BatchSize:   32,
		Adam:        true,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	blobs := NewBlobs(256, 10, 1.0, 3)
	x, y := blobs.Batch(tr.SamplesPerStep(), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(x, y); err != nil {
			b.Fatal(err)
		}
	}
	st := tr.Stats()
	b.ReportMetric(float64(st.SwapInBytes)/float64(b.N)/(1<<20), "MB-swapped-in/step")
}

// stepWorkloads are the executor-ablation workloads: an MNIST-sized
// MLP and a wider BERT-tiny-sized stack, both data-parallel over two
// devices with enough memory that kernel time (not swapping)
// dominates.
var stepWorkloads = []struct {
	name   string
	widths []int
}{
	{"mnist-mlp", []int{784, 512, 512, 10}},
	{"bert-tiny-mlp", []int{512, 1024, 1024, 1024, 10}},
}

func stepTrainer(b *testing.B, widths []int, serial bool) (*Trainer, []float32, []int) {
	b.Helper()
	tr, err := NewTrainer(TrainerConfig{
		Widths:      widths,
		Mode:        HarmonyDP,
		Devices:     2,
		DeviceBytes: 64 << 20,
		BatchSize:   64,
		Seed:        1,
		Serial:      serial,
	})
	if err != nil {
		b.Fatal(err)
	}
	blobs := NewBlobs(widths[0], widths[len(widths)-1], 1.0, 3)
	x, y := blobs.Batch(tr.SamplesPerStep(), 0)
	return tr, x, y
}

func benchTrainerStep(b *testing.B, widths []int, serial bool) {
	tr, x, y := stepTrainer(b, widths, serial)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// timeSteps measures mean wall time per Step over a fixed run.
func timeSteps(b *testing.B, widths []int, serial bool, steps int) time.Duration {
	b.Helper()
	tr, x, y := stepTrainer(b, widths, serial)
	if _, err := tr.Step(x, y); err != nil { // warm caches and pools
		b.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(x, y); err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start) / time.Duration(steps)
}

// BenchmarkTrainerStepSerial is the ablation baseline: the original
// single-threaded polling executor.
func BenchmarkTrainerStepSerial(b *testing.B) {
	for _, w := range stepWorkloads {
		b.Run(w.name, func(b *testing.B) { benchTrainerStep(b, w.widths, true) })
	}
}

// BenchmarkTrainerStepParallel measures the parallel device-worker
// executor on the same workloads and reports its speedup over the
// serial reference (expect ≥1.5× on ≥4-core machines; ~1× on one
// core, where the pool runs inline).
func BenchmarkTrainerStepParallel(b *testing.B) {
	for _, w := range stepWorkloads {
		b.Run(w.name, func(b *testing.B) {
			serial := timeSteps(b, w.widths, true, 3)
			parallel := timeSteps(b, w.widths, false, 3)
			benchTrainerStep(b, w.widths, false)
			b.ReportMetric(float64(serial)/float64(parallel), "speedup-vs-serial")
		})
	}
}

// swapBoundConfig is the swap-bound workload for the async-DMA
// benches: the model's footprint overflows each device, and a modeled
// host link makes every demand swap cost real wall time. PrefetchDepth
// -1 is the synchronous baseline (all swapping on the critical path);
// a positive depth lets the DMA workers hide the link time behind
// compute. The single-device DP shape is the headline: with one
// device every demand miss serializes behind the link, so prefetch
// has the most to hide.
func swapBoundConfig(depth, devices int, p2p bool, link int64) TrainerConfig {
	tg := &Toggles{}
	if !p2p {
		tg.P2P = Bool(false)
	}
	mode := HarmonyDP
	widths := []int{256, 512, 512, 512, 10}
	if devices > 1 {
		mode = HarmonyPP
		widths = []int{256, 640, 640, 640, 10}
	}
	return TrainerConfig{
		Widths:          widths,
		Mode:            mode,
		Devices:         devices,
		DeviceBytes:     4 << 20,
		BatchSize:       8,
		Seed:            1,
		Toggles:         tg,
		PrefetchDepth:   depth,
		LinkBytesPerSec: link,
	}
}

// timeSwapSteps measures mean wall time per Step (after one warm-up
// step) and returns the trainer's data-movement counters plus, for
// adaptive plans, the per-device window stats.
func timeSwapSteps(b *testing.B, cfg TrainerConfig, steps int) (time.Duration, Stats, []AdaptWindowStats) {
	b.Helper()
	tr, err := NewTrainer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	blobs := NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 1.0, 3)
	x, y := blobs.Batch(tr.SamplesPerStep(), 0)
	if _, err := tr.Step(x, y); err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(x, y); err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start) / time.Duration(steps), tr.Stats(), tr.AdaptStats()
}

// swapBoundVariants is the prefetch-on/off × p2p-on/off bench matrix.
// dp1-hostlink is the acceptance row (expect ≥1.3× with prefetch);
// the two-device rows exercise the p2p toggle, where demand misses
// already overlap across device workers and the margin is smaller.
var swapBoundVariants = []struct {
	name    string
	devices int
	p2p     bool
	link    int64
}{
	{"dp1-hostlink", 1, false, 1 << 27},
	{"pp2-p2p", 2, true, 96 << 20},
	{"pp2-host-bounce", 2, false, 96 << 20},
}

// BenchmarkTrainerStepSwapBound is the PR's acceptance benchmark:
// prefetch vs. the synchronous baseline on swap-bound configs
// (footprint > device capacity), with p2p on and off. The speedup
// metric compares fixed runs of both executors inside each prefetch
// sub-bench; overlap-frac is async DMA busy time over wall time.
func BenchmarkTrainerStepSwapBound(b *testing.B) {
	const measured = 4
	for _, v := range swapBoundVariants {
		for _, sub := range []struct {
			suffix   string
			depth    int
			adaptive bool
		}{
			{"sync", -1, false},
			{"prefetch", 4, false},
			{"adaptive", 4, true},
		} {
			b.Run(v.name+"/"+sub.suffix, func(b *testing.B) {
				cfg := swapBoundConfig(sub.depth, v.devices, v.p2p, v.link)
				cfg.AdaptivePrefetch = sub.adaptive
				var speedup, swappedMB, overlap float64
				var windows []AdaptWindowStats
				if sub.depth > 0 {
					syncT, _, _ := timeSwapSteps(b, swapBoundConfig(-1, v.devices, v.p2p, v.link), measured)
					pfT, st, ws := timeSwapSteps(b, cfg, measured)
					speedup = float64(syncT) / float64(pfT)
					swappedMB = float64(st.SwapInBytes+st.SwapOutBytes) / (1 << 20)
					overlap = float64(st.AsyncDMANanos) / float64(pfT.Nanoseconds()*int64(measured))
					windows = ws
				}
				tr, err := NewTrainer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer tr.Close()
				blobs := NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 1.0, 3)
				x, y := blobs.Batch(tr.SamplesPerStep(), 0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := tr.Step(x, y); err != nil {
						b.Fatal(err)
					}
				}
				if sub.depth > 0 { // after ResetTimer, which clears metrics
					b.ReportMetric(speedup, "speedup-vs-sync")
					b.ReportMetric(swappedMB, "MB-swapped")
					b.ReportMetric(overlap, "overlap-frac")
				}
				for _, ws := range windows { // adaptive rows only
					b.ReportMetric(float64(ws.WindowMin), fmt.Sprintf("dev%d-window-min", ws.Dev))
					b.ReportMetric(float64(ws.WindowMax), fmt.Sprintf("dev%d-window-max", ws.Dev))
					b.ReportMetric(float64(ws.Resizes), fmt.Sprintf("dev%d-resizes", ws.Dev))
				}
			})
		}
	}
}

// BenchmarkSimulatorSpeed measures raw simulator performance: events
// per wall second for a 4-GPU BERT-48 iteration (useful when scaling
// the sweeps).
func BenchmarkSimulatorSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(SimConfig{
			Model:          BERT48(),
			Mode:           HarmonyPP,
			Server:         CommodityServer(4),
			MicrobatchSize: 1,
			Microbatches:   20,
			Toggles:        &Toggles{GroupSize: 5},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtParallelismStrategies regenerates EXT3: Harmony's task
// decomposition lets the same workload run data-parallel,
// pipeline-parallel, or intra-op-sharded; this reports all three.
func BenchmarkExtParallelismStrategies(b *testing.B) {
	var rows []experiments.Ext3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Ext3(models.BERT48(), 4, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Throughput, r.Strategy+"-seq/s")
		b.ReportMetric(r.SwapGB, r.Strategy+"-swapGB")
	}
}

// BenchmarkExtMultiServer regenerates EXT4: server layouts at a fixed
// GPU count (the §4 multi-machine extension).
func BenchmarkExtMultiServer(b *testing.B) {
	var rows []experiments.Ext4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Ext4(models.BERT48(), 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Throughput, r.Layout+"-"+r.Strategy+"-seq/s")
	}
}

// BenchmarkEvictionPolicy contrasts LRU with schedule-informed
// (Belady) eviction — the paper's scheduler/swapper co-design — on a
// memory-pressured workload.
func BenchmarkEvictionPolicy(b *testing.B) {
	for _, look := range []bool{false, true} {
		name := "lru"
		if look {
			name = "lookahead"
		}
		b.Run(name, func(b *testing.B) {
			var thr, swap float64
			for i := 0; i < b.N; i++ {
				rep, err := Simulate(SimConfig{
					Model:          UniformModel(12, 2_000_000, 64<<10, 2e10),
					Mode:           HarmonyDP,
					Server:         CommodityServer(2).WithGPUMemory(48 << 20),
					MicrobatchSize: 1,
					Microbatches:   4,
					Toggles:        &Toggles{LookaheadEviction: Bool(look)},
				})
				if err != nil {
					b.Fatal(err)
				}
				thr, swap = rep.Throughput, rep.SwapGB()
			}
			b.ReportMetric(thr, "samples/s")
			b.ReportMetric(swap, "swapGB/iter")
		})
	}
}

// BenchmarkExtFeasibility regenerates EXT5: §4's feasibility
// discussion quantified — iteration time and extrapolated
// fine-tune/pre-train durations for every Fig. 1 model.
func BenchmarkExtFeasibility(b *testing.B) {
	var rows []experiments.Ext5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Ext5()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Feasible {
			b.ReportMetric(r.IterSeconds, r.Model+"-iter-s")
		}
	}
}
