// Command figures regenerates every table and figure of the paper's
// evaluation as text tables (and optional CSV): Fig. 1 (model
// growth), Fig. 2(a) (DP swap bottleneck), Fig. 2(c) (PP swap
// imbalance), Fig. 4 (Harmony-PP schedule), Fig. 5 (analytical vs
// simulated swap volumes), plus the extension tables EXT1
// (baseline vs Harmony throughput) and EXT2 (memory–performance
// tango sweep).
//
// Usage:
//
//	figures             # everything
//	figures -fig 2a     # one artifact
//	figures -csv        # additionally emit CSV rows
package main

import (
	"flag"
	"fmt"
	"os"

	"harmony/internal/experiments"
	"harmony/internal/hw"
	"harmony/internal/models"
	"harmony/internal/report"
	"harmony/internal/sched"
	"harmony/internal/tuner"
)

func main() {
	fig := flag.String("fig", "all", "which artifact: 1, 2a, 2c, 4, 5, ext1, ext2 or all")
	csv := flag.Bool("csv", false, "also print CSV rows")
	flag.Parse()

	runners := map[string]func(bool) error{
		"1":    fig1,
		"2a":   fig2a,
		"2c":   fig2c,
		"4":    fig4,
		"5":    fig5,
		"ext1": ext1,
		"ext2": ext2,
		"ext3": ext3,
		"ext4": ext4,
		"ext5": ext5,
	}
	order := []string{"1", "2a", "2c", "4", "5", "ext1", "ext2", "ext3", "ext4", "ext5"}
	if *fig != "all" {
		r, ok := runners[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown artifact %q (want 1, 2a, 2c, 4, 5, ext1..ext5, all)\n", *fig)
			os.Exit(2)
		}
		if err := r(*csv); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, k := range order {
		if err := runners[k](*csv); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", k, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func fig1(csv bool) error {
	fmt.Println("== Figure 1: DNN model size growth (1998–2020) ==")
	t := report.NewTable(
		report.Column{Header: "model"},
		report.Column{Header: "year", Align: report.Right},
		report.Column{Header: "parameters", Align: report.Right},
		report.Column{Header: "log10", Align: report.Right},
	)
	for _, r := range experiments.Fig1() {
		t.Row(r.Name, r.Year, r.Params, report.Cell("%.2f", r.Log10Params))
	}
	fmt.Print(t)
	if csv {
		fmt.Print(t.CSV())
	}
	return nil
}

func fig2a(csv bool) error {
	fmt.Println("== Figure 2(a): DP + per-GPU virtualization, BERT-48, batch 5/GPU ==")
	fmt.Println("(expect: swap volume ~linear in GPUs; throughput throttled by the shared host link)")
	rows, err := experiments.Fig2a(experiments.DefaultFig2a())
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %16s %18s %12s\n", "GPUs", "throughput seq/s", "swap-out GB/iter", "iter sec")
	for _, r := range rows {
		fmt.Printf("%-6d %16.3f %18.1f %12.1f\n", r.GPUs, r.Throughput, r.SwapOutGB, r.IterSeconds)
	}
	if csv {
		fmt.Println("gpus,throughput,swap_out_gb,iter_s")
		for _, r := range rows {
			fmt.Printf("%d,%.4f,%.3f,%.3f\n", r.GPUs, r.Throughput, r.SwapOutGB, r.IterSeconds)
		}
	}
	return nil
}

func fig2c(csv bool) error {
	fmt.Println("== Figure 2(c): PP + per-GPU virtualization, per-stage memory demand ==")
	fmt.Println("(expect: head stage over capacity / heavy swap; tail stage fits / light swap)")
	rows, err := experiments.Fig2c(models.BERT48(), 4)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-8s %12s %12s %16s %s\n", "GPU", "layers", "demand GB", "capacity", "swap-out GB/it", "status")
	for _, r := range rows {
		status := "fits (no/light swap)"
		if r.OverCap {
			status = "OVER CAPACITY (heavy swap)"
		}
		fmt.Printf("%-6d %-8d %12.1f %12.1f %16.2f %s\n", r.GPU, r.Layers, r.DemandGB, r.CapacityGB, r.SwapOutGB, status)
	}
	fmt.Println("resident-memory timeline per GPU ('!' = demand above the 11 GB capacity):")
	for _, r := range rows {
		fmt.Printf("gpu%-3d |%s|\n", r.GPU, r.Timeline)
	}
	if csv {
		fmt.Println("gpu,layers,demand_gb,capacity_gb,swap_out_gb,over_capacity")
		for _, r := range rows {
			fmt.Printf("%d,%d,%.3f,%.3f,%.3f,%v\n", r.GPU, r.Layers, r.DemandGB, r.CapacityGB, r.SwapOutGB, r.OverCap)
		}
	}
	return nil
}

func fig4(bool) error {
	fmt.Println("== Figure 4: Harmony-PP schedule (4 layers, 2 GPUs, 2 microbatches) ==")
	fmt.Println("(F=forward B=backward U=update I=swap-in O=swap-out D=drop P=p2p, per device lane)")
	gantt, err := experiments.Fig4()
	if err != nil {
		return err
	}
	fmt.Print(gantt)
	return nil
}

func fig5(csv bool) error {
	fmt.Println("== Figure 5 / §3: analytical vs simulated weight swap volume ==")
	fmt.Println("(paper: DP baseline (4m+2)N|W|, Harmony-DP 3N|W|, Harmony-PP 3|W|)")
	rows, err := experiments.Fig5([]int{2, 4, 8}, []int{1, 2, 4})
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-4s %-4s %14s %14s %14s %10s %10s\n",
		"mode", "m", "N", "ideal B", "corrected B", "simulated B", "err(ideal)", "err(corr)")
	for _, r := range rows {
		fmt.Printf("%-14s %-4d %-4d %14d %14d %14d %9.1f%% %9.1f%%\n",
			r.Mode, r.M, r.N, r.AnalyticW, r.CorrectedW, r.SimulatedW,
			100*r.RelErrIdeal, 100*r.RelErrCorr)
	}
	if csv {
		fmt.Println("mode,m,n,ideal,corrected,simulated,rel_err_ideal,rel_err_corr")
		for _, r := range rows {
			fmt.Printf("%s,%d,%d,%d,%d,%d,%.4f,%.4f\n",
				r.Mode, r.M, r.N, r.AnalyticW, r.CorrectedW, r.SimulatedW, r.RelErrIdeal, r.RelErrCorr)
		}
	}
	return nil
}

func ext1(csv bool) error {
	fmt.Println("== EXT1: baseline vs Harmony on the Fig. 2 workload (BERT-48, batch 5/GPU) ==")
	rows, err := experiments.Ext1(models.BERT48(), []int{1, 2, 4}, 5, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s | %12s %12s | %12s %12s | %12s %12s\n",
		"GPUs", "base seq/s", "base swapGB", "hdp seq/s", "hdp swapGB", "hpp seq/s", "hpp swapGB")
	for _, r := range rows {
		fmt.Printf("%-6d | %12.3f %12.1f | %12.3f %12.1f | %12.3f %12.1f\n",
			r.GPUs, r.BaseThroughput, r.BaseSwapGB,
			r.HarmonyDPThroughput, r.HarmonyDPSwapGB,
			r.HarmonyPPThroughput, r.HarmonyPPSwapGB)
	}
	if csv {
		fmt.Println("gpus,base_thr,base_swap_gb,hdp_thr,hdp_swap_gb,hpp_thr,hpp_swap_gb")
		for _, r := range rows {
			fmt.Printf("%d,%.4f,%.3f,%.4f,%.3f,%.4f,%.3f\n",
				r.GPUs, r.BaseThroughput, r.BaseSwapGB,
				r.HarmonyDPThroughput, r.HarmonyDPSwapGB,
				r.HarmonyPPThroughput, r.HarmonyPPSwapGB)
		}
	}
	return nil
}

func ext2(csv bool) error {
	fmt.Println("== EXT2: the §4 memory–performance tango (Harmony-PP group-size sweep) ==")
	model := models.Uniform("tango", 8, 1_000_000, 16<<10, 5e9)
	box := hw.Commodity1080TiBox(2)
	box.GPUMemBytes = 20 << 20
	res, err := tuner.Run(tuner.Config{
		Model: model, Mode: sched.HarmonyPP, Box: box, BatchPerReplica: 4,
	}, 2)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %14s %12s %10s\n", "candidate", "throughput s/s", "swap GB/it", "feasible")
	for _, m := range res.Measurements {
		fmt.Printf("%-34s %14.1f %12.3f %10v\n", m.Candidate, m.Throughput, m.SwapGB, m.Feasible)
	}
	fmt.Printf("best: %s (%.1f samples/s)\n", res.Best.Candidate, res.Best.Throughput)
	if csv {
		fmt.Println("mb_size,microbatches,group,prefetch,defer,throughput,swap_gb,feasible")
		for _, m := range res.Measurements {
			c := m.Candidate
			fmt.Printf("%d,%d,%d,%v,%v,%.3f,%.4f,%v\n",
				c.MicrobatchSize, c.Microbatches, c.GroupSize, c.Prefetch, c.Defer,
				m.Throughput, m.SwapGB, m.Feasible)
		}
	}
	return nil
}

func ext3(csv bool) error {
	fmt.Println("== EXT3: parallelism strategies enabled by task decomposition (BERT-48, 4 GPUs) ==")
	rows, err := experiments.Ext3(models.BERT48(), 4, 5)
	if err != nil {
		return err
	}
	t := report.NewTable(
		report.Column{Header: "strategy"},
		report.Column{Header: "throughput s/s", Align: report.Right},
		report.Column{Header: "swap GB/iter", Align: report.Right},
		report.Column{Header: "weight traffic GB", Align: report.Right},
	)
	for _, r := range rows {
		t.Row(r.Strategy, r.Throughput, report.Cell("%.1f", r.SwapGB), report.Cell("%.1f", r.WeightTrafficGB))
	}
	fmt.Print(t)
	if csv {
		fmt.Print(t.CSV())
	}
	return nil
}

func ext4(csv bool) error {
	fmt.Println("== EXT4: multi-machine layouts, 4 GPUs total (BERT-48, batch 5/GPU) ==")
	fmt.Println("(each server contributes an independent host link: the Fig. 2(b) bottleneck is per machine)")
	rows, err := experiments.Ext4(models.BERT48(), 5)
	if err != nil {
		return err
	}
	t := report.NewTable(
		report.Column{Header: "layout"},
		report.Column{Header: "strategy"},
		report.Column{Header: "throughput s/s", Align: report.Right},
		report.Column{Header: "swap GB/iter", Align: report.Right},
	)
	for _, r := range rows {
		t.Row(r.Layout, r.Strategy, r.Throughput, report.Cell("%.1f", r.SwapGB))
	}
	fmt.Print(t)
	if csv {
		fmt.Print(t.CSV())
	}
	return nil
}

func ext5(csv bool) error {
	fmt.Println("== EXT5: §4 feasibility — every Fig. 1 model on the 4×11 GB commodity box ==")
	fmt.Println("(fine-tune = 30k iterations; pre-train = 10M iterations)")
	rows, err := experiments.Ext5()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %16s %-26s %12s %14s %14s\n",
		"model", "params", "strategy", "iter sec", "fine-tune days", "pre-train yrs")
	for _, r := range rows {
		if !r.Feasible {
			fmt.Printf("%-12s %16d %-26s %s\n", r.Model, r.Params, "INFEASIBLE", r.Reason)
			continue
		}
		fmt.Printf("%-12s %16d %-26s %12.3f %14.2f %14.1f\n",
			r.Model, r.Params, r.Strategy, r.IterSeconds, r.FineTuneDays, r.PreTrainYears)
	}
	fmt.Println("matches §4: development and fine-tuning are practical on commodity boxes;")
	fmt.Println("pre-training the largest models remains a datacenter job.")
	if csv {
		fmt.Println("model,params,strategy,iter_s,finetune_days,pretrain_years,feasible")
		for _, r := range rows {
			fmt.Printf("%s,%d,%s,%.4f,%.3f,%.3f,%v\n",
				r.Model, r.Params, r.Strategy, r.IterSeconds, r.FineTuneDays, r.PreTrainYears, r.Feasible)
		}
	}
	return nil
}
