// Command harmonytrain runs *real* training (float32 math, actual
// data movement) through Harmony's coherent virtual memory on
// capacity-limited virtual devices — the executable counterpart of
// the simulator CLI. It trains a classifier on a synthetic dataset,
// reports loss and accuracy, and can checkpoint/resume.
//
// Examples:
//
//	harmonytrain -arch mlp -widths 784,256,128,10 -devices 2 -device-mem 1048576 -steps 50
//	harmonytrain -arch lenet -mode harmony-pp -devices 2 -steps 30
//	harmonytrain -arch mlp -save model.ckpt -steps 20
//	harmonytrain -arch mlp -load model.ckpt -steps 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"harmony"
	"harmony/internal/fault"
	"harmony/internal/hw"
	"harmony/internal/nn"
	"harmony/internal/sim"
	"harmony/internal/trace"
)

func main() {
	var (
		arch      = flag.String("arch", "mlp", "mlp or lenet")
		widthsArg = flag.String("widths", "256,128,64,10", "mlp layer widths (input,...,classes)")
		modeName  = flag.String("mode", "harmony-pp", "dp-baseline, harmony-dp, pp-baseline, harmony-pp")
		devices   = flag.Int("devices", 2, "virtual device count")
		deviceMem = flag.Int64("device-mem", 0, "per-device memory bytes (0 = half the footprint)")
		batch     = flag.Int("batch", 32, "per-replica batch size")
		steps     = flag.Int("steps", 40, "training iterations")
		adam      = flag.Bool("adam", true, "use Adam (SGD otherwise)")
		noise     = flag.Float64("noise", 1.5, "dataset difficulty (blob noise)")
		seed      = flag.Uint64("seed", 1, "weight and data seed")
		savePath  = flag.String("save", "", "write a checkpoint here after training")
		loadPath  = flag.String("load", "", "restore this checkpoint before training")
		faultSpec = flag.String("fault-spec", "", `deterministic fault injection rules, e.g. "op=swap-in,count=2;step=3,dev=1,mode=fatal" (see DESIGN.md)`)
		maxRetry  = flag.Int("max-retries", 0, "retries per faulted op (0 = default 3, negative disables)")
		recov     = flag.Bool("recover", false, "roll back and resume past fatal device faults")
		prefetch  = flag.Int("prefetch-depth", 0, "async prefetch lookahead (0 = mode default, negative disables)")
		adaptive  = flag.Bool("adaptive-prefetch", false, "retune each device's prefetch window and byte budget online (implies prefetch; decisions are step-keyed and bit-exact)")
		retune    = flag.String("retune", "", `mid-run plan retune, "step=N,microbatches=M": before step N, reshape to M microbatches (schedcheck preflight; a rejection prints the counterexample and keeps the current plan)`)
		linkBW    = flag.Int64("link-bw", 0, "modeled host-link bytes/sec charged to every swap/p2p copy (0 = memcpy cost only)")
		swapTrace = flag.Bool("swap-trace", false, "print a compute/DMA-lane Gantt of the final step (shows swap-compute overlap)")
		verify    = flag.Bool("verify", true, "statically verify the execution plan before training (schedcheck preflight; failures print a counterexample)")
		commChunk = flag.Int("comm-chunks", 0, "split each gradient AllReduce into this many chunks reduced across device workers (0 = monolithic rendezvous; bit-identical at every setting)")
		commBkt   = flag.Int64("comm-bucket", 0, "coalesce per-layer gradients into buckets of up to this many bytes sharing one rendezvous (0 = one bucket per layer; implies -comm-chunks 1)")
	)
	flag.Parse()

	mode := map[string]harmony.Mode{
		"dp-baseline": harmony.DPBaseline,
		"harmony-dp":  harmony.HarmonyDP,
		"pp-baseline": harmony.PPBaseline,
		"harmony-pp":  harmony.HarmonyPP,
	}[*modeName]

	var (
		tr      *harmony.Trainer
		err     error
		inDim   int
		classes int
	)
	cfg := harmony.TrainerConfig{
		Mode: mode, Devices: *devices, BatchSize: *batch,
		Adam: *adam, Seed: *seed,
		FaultSpec: *faultSpec, MaxRetries: *maxRetry, Recover: *recov,
		PrefetchDepth: *prefetch, AdaptivePrefetch: *adaptive,
		LinkBytesPerSec: *linkBW,
		NoVerify:        !*verify,
		CommChunks:      *commChunk,
		CommBucketBytes: *commBkt,
	}
	retuneStep, retuneMB, err := parseRetune(*retune)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harmonytrain: %v\n", err)
		os.Exit(2)
	}
	switch *arch {
	case "lenet":
		inDim, classes = 32*32, 10
		// LeNet's fc1 dominates: its update working set (W + dW +
		// optimizer state) must fit on one device.
		cfg.DeviceBytes = pickMem(*deviceMem, defaultMem(48120, footprintLeNet(*adam), *adam))
		tr, err = harmony.NewLeNetTrainer(cfg)
	case "mlp":
		widths, perr := parseWidths(*widthsArg)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "harmonytrain: %v\n", perr)
			os.Exit(2)
		}
		inDim, classes = widths[0], widths[len(widths)-1]
		cfg.Widths = widths
		var largest int64
		for i := 0; i+1 < len(widths); i++ {
			if p := int64(widths[i]*widths[i+1] + widths[i+1]); p > largest {
				largest = p
			}
		}
		cfg.DeviceBytes = pickMem(*deviceMem, defaultMem(largest, footprintGuess(widths, *adam), *adam))
		tr, err = harmony.NewTrainer(cfg)
	default:
		fmt.Fprintf(os.Stderr, "harmonytrain: unknown arch %q\n", *arch)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "harmonytrain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("arch %s, %s on %d virtual devices of %s (model footprint %s)\n",
		*arch, mode, *devices, sizeOf(cfg.DeviceBytes), sizeOf(tr.FootprintBytes()))

	// With fault injection armed, collect every fault and retry into a
	// timeline: zero-width spans stamped with the wall-clock offset
	// since training start. Observers run on device-worker goroutines,
	// so guard the trace with a mutex.
	var (
		faultTL trace.Trace
		faultMu sync.Mutex
		started = time.Now()
	)
	if *faultSpec != "" {
		tr.OnFault(func(ev harmony.FaultEvent) {
			at := sim.Time(time.Since(started).Seconds())
			lane, label := trace.Fault, faultLabel(ev)
			if ev.Kind == fault.EvRetry {
				lane = trace.Retry
			}
			faultMu.Lock()
			faultTL.Add(hw.DeviceID(ev.Dev), lane, label, at, at)
			faultMu.Unlock()
		})
	}

	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "harmonytrain: %v\n", err)
			os.Exit(1)
		}
		if err := tr.Load(f); err != nil {
			fmt.Fprintf(os.Stderr, "harmonytrain: load: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("restored checkpoint %s\n", *loadPath)
	}

	blobs := harmony.NewBlobs(inDim, classes, float32(*noise), *seed+7)
	trainStart := time.Now()
	var stepTL *trace.Trace
	for s := 0; s < *steps; s++ {
		if retuneStep > 0 && s == retuneStep {
			if rerr := tr.Retune(retuneMB, nil); rerr != nil {
				fmt.Printf("retune before step %d rejected; keeping the current plan:\n%v\n", s, rerr)
			} else {
				fmt.Printf("retuned before step %d: %d microbatches\n", s, retuneMB)
			}
		}
		if *swapTrace && s == *steps-1 {
			stepTL = tr.EnableTrace() // record only the final step
		}
		x, y := blobs.Batch(tr.SamplesPerStep(), uint64(s))
		loss, err := tr.Step(x, y)
		if err != nil {
			fmt.Fprintf(os.Stderr, "harmonytrain: step %d: %v\n", s, err)
			os.Exit(1)
		}
		if s%10 == 0 || s == *steps-1 {
			fmt.Printf("step %4d  loss %.4f\n", s, loss)
		}
	}
	trainWall := time.Since(trainStart)

	// Held-out accuracy.
	correct, total := 0, 0
	for b := 0; b < 4; b++ {
		x, y := blobs.Batch(64, uint64(1_000_000+b))
		logits, err := tr.Predict(x, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "harmonytrain: %v\n", err)
			os.Exit(1)
		}
		for i := 0; i < 64; i++ {
			if nn.Argmax(logits, i, classes) == y[i] {
				correct++
			}
			total++
		}
	}
	st := tr.Stats()
	fmt.Printf("accuracy %.1f%% on %d held-out samples\n", 100*float64(correct)/float64(total), total)
	fmt.Printf("virtual-memory traffic: %.1f MB in, %.1f MB out, %.1f MB p2p, %d drops\n",
		float64(st.SwapInBytes)/(1<<20), float64(st.SwapOutBytes)/(1<<20),
		float64(st.P2PBytes)/(1<<20), st.Drops)
	if st.PrefetchIssued > 0 || st.CleanAheads > 0 {
		hitPct := 0.0
		if st.PrefetchIssued > 0 {
			hitPct = 100 * float64(st.PrefetchHits) / float64(st.PrefetchIssued)
		}
		fmt.Printf("swap overlap: %d prefetches (%.0f%% hit), %d clean-aheads, %.1f ms async DMA (%.0f%% of %.1f ms train wall)\n",
			st.PrefetchIssued, hitPct, st.CleanAheads,
			float64(st.AsyncDMANanos)/1e6,
			100*float64(st.AsyncDMANanos)/float64(trainWall.Nanoseconds()),
			float64(trainWall.Nanoseconds())/1e6)
	}
	if cs := tr.CommStats(); cs.ChunksReduced > 0 {
		fmt.Printf("chunked collectives: %d chunk reductions, %.1f MB gradients reduced\n",
			cs.ChunksReduced, float64(cs.BytesReduced)/(1<<20))
	}
	if stats := tr.AdaptStats(); len(stats) > 0 {
		fmt.Printf("adaptive prefetch: %d controller decisions;", len(tr.AdaptLog()))
		for _, ws := range stats {
			fmt.Printf(" dev%d window %d..%d (%d resizes)", ws.Dev, ws.WindowMin, ws.WindowMax, ws.Resizes)
		}
		fmt.Println()
	}
	if stepTL != nil && len(stepTL.Events) > 0 {
		fmt.Print("final-step compute/DMA lanes:\n", stepTL.Gantt(100))
	}

	if *faultSpec != "" {
		injected, retries := tr.FaultStats()
		fmt.Printf("faults: %d injected, %d retried, %d recoveries\n",
			injected, retries, tr.Recoveries())
		faultMu.Lock()
		if len(faultTL.Events) > 0 {
			fmt.Print(faultTL.Gantt(72))
		}
		faultMu.Unlock()
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "harmonytrain: %v\n", err)
			os.Exit(1)
		}
		if err := tr.Save(f); err != nil {
			fmt.Fprintf(os.Stderr, "harmonytrain: save: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("checkpoint written to %s\n", *savePath)
	}
}

// faultLabel names a timeline span; its first character is the Gantt
// glyph ('r' retry, 'X' fatal, 't' transient, 'd' delay).
func faultLabel(ev harmony.FaultEvent) string {
	if ev.Kind == fault.EvRetry {
		return fmt.Sprintf("retry %s step %d", ev.Op, ev.Step)
	}
	glyph := map[fault.Mode]byte{fault.Transient: 't', fault.Fatal: 'X', fault.Delay: 'd'}[ev.Mode]
	return fmt.Sprintf("%c: %s %s step %d", glyph, ev.Mode, ev.Op, ev.Step)
}

// parseRetune parses the -retune spec: "step=N,microbatches=M" means
// reshape the plan to M microbatches right before step N.
func parseRetune(s string) (step, microbatches int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return 0, 0, fmt.Errorf("bad -retune field %q (want key=value)", field)
		}
		n, cerr := strconv.Atoi(strings.TrimSpace(v))
		if cerr != nil || n <= 0 {
			return 0, 0, fmt.Errorf("bad -retune value %q", field)
		}
		switch strings.TrimSpace(k) {
		case "step":
			step = n
		case "microbatches":
			microbatches = n
		default:
			return 0, 0, fmt.Errorf("unknown -retune key %q (want step, microbatches)", k)
		}
	}
	if step == 0 || microbatches == 0 {
		return 0, 0, fmt.Errorf("-retune needs both step and microbatches, got %q", s)
	}
	return step, microbatches, nil
}

func parseWidths(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("need at least input and class widths, got %q", s)
	}
	widths := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad width %q", p)
		}
		widths[i] = v
	}
	return widths, nil
}

func pickMem(flagVal, fallback int64) int64 {
	if flagVal > 0 {
		return flagVal
	}
	if fallback < 16<<10 {
		fallback = 16 << 10
	}
	return fallback
}

// defaultMem picks a device size that exercises swapping (below the
// footprint) but keeps the largest layer's update feasible.
func defaultMem(largestParams, footprint int64, adam bool) int64 {
	mult := int64(2)
	if adam {
		mult = 4
	}
	updSet := largestParams*4*mult + 96<<10 // update working set + activation slack
	half := footprint / 2
	if half > updSet {
		return half
	}
	return updSet
}

// footprintLeNet is LeNet-5's persistent byte count.
func footprintLeNet(adam bool) int64 {
	mult := int64(2)
	if adam {
		mult = 4
	}
	return 61706 * 4 * mult
}

// footprintGuess estimates persistent bytes for an MLP so the default
// device size creates real memory pressure without infeasibility.
func footprintGuess(widths []int, adam bool) int64 {
	var params int64
	for i := 0; i+1 < len(widths); i++ {
		params += int64(widths[i]*widths[i+1] + widths[i+1])
	}
	mult := int64(2)
	if adam {
		mult = 4
	}
	return params * 4 * mult
}

func sizeOf(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
}
