// Command benchtrainer measures the real-execution trainer on
// swap-bound configurations — model footprint over device capacity,
// a modeled host link charging wall time per copied byte — and writes
// the results as JSON. Each variant runs twice, synchronous baseline
// (prefetch disabled) and async prefetch, so the report carries the
// overlap win alongside the raw per-step times and swap volumes:
//
//	benchtrainer -steps 4 -out BENCH_trainer.json
//
// The checked-in BENCH_trainer.json is this command's output on the
// development machine; `make bench-json` regenerates it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"harmony"
)

// variant is one swap-bound workload shape; the prefetch-on/off pair
// is run for each.
type variant struct {
	Name    string `json:"name"`
	Devices int    `json:"devices"`
	P2P     bool   `json:"p2p"`
	LinkBPS int64  `json:"link_bytes_per_sec"`
}

// variants mirrors BenchmarkTrainerStepSwapBound in bench_test.go:
// dp1-hostlink is the headline (single device, every demand miss
// serialized on the link); the two-device rows exercise the p2p
// toggle.
var variants = []variant{
	{"dp1-hostlink", 1, false, 1 << 27},
	{"pp2-p2p", 2, true, 96 << 20},
	{"pp2-host-bounce", 2, false, 96 << 20},
}

type run struct {
	PrefetchDepth  int   `json:"prefetch_depth"`
	NsPerStep      int64 `json:"ns_per_step"`
	SwapInBytes    int64 `json:"swap_in_bytes"`
	SwapOutBytes   int64 `json:"swap_out_bytes"`
	PrefetchIssued int   `json:"prefetch_issued"`
	PrefetchHits   int   `json:"prefetch_hits"`
	CleanAheads    int   `json:"clean_aheads"`
	// OverlapFrac is async DMA busy time over total wall time: the
	// fraction of the run during which a DMA engine was moving data
	// off the critical path.
	OverlapFrac float64 `json:"overlap_frac"`
}

type row struct {
	variant
	Sync          run     `json:"sync"`
	Prefetch      run     `json:"prefetch"`
	SpeedupVsSync float64 `json:"speedup_vs_sync"`
}

type report struct {
	Steps   int   `json:"steps_per_run"`
	Widths1 []int `json:"widths_dp1"`
	Widths2 []int `json:"widths_pp2"`
	Rows    []row `json:"rows"`
}

func config(v variant, depth int) harmony.TrainerConfig {
	tg := &harmony.Toggles{}
	if !v.P2P {
		tg.P2P = harmony.Bool(false)
	}
	mode, widths := harmony.HarmonyDP, []int{256, 512, 512, 512, 10}
	if v.Devices > 1 {
		mode, widths = harmony.HarmonyPP, []int{256, 640, 640, 640, 10}
	}
	return harmony.TrainerConfig{
		Widths:          widths,
		Mode:            mode,
		Devices:         v.Devices,
		DeviceBytes:     4 << 20,
		BatchSize:       8,
		Seed:            1,
		Toggles:         tg,
		PrefetchDepth:   depth,
		LinkBytesPerSec: v.LinkBPS,
	}
}

// measure trains steps iterations (after one untimed warm-up step)
// and returns the per-step wall time and movement counters.
func measure(v variant, depth, steps int) (run, error) {
	cfg := config(v, depth)
	tr, err := harmony.NewTrainer(cfg)
	if err != nil {
		return run{}, err
	}
	defer tr.Close()
	blobs := harmony.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 1.0, 3)
	x, y := blobs.Batch(tr.SamplesPerStep(), 0)
	if _, err := tr.Step(x, y); err != nil {
		return run{}, err
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(x, y); err != nil {
			return run{}, err
		}
	}
	wall := time.Since(start)
	st := tr.Stats()
	return run{
		PrefetchDepth:  depth,
		NsPerStep:      wall.Nanoseconds() / int64(steps),
		SwapInBytes:    st.SwapInBytes,
		SwapOutBytes:   st.SwapOutBytes,
		PrefetchIssued: st.PrefetchIssued,
		PrefetchHits:   st.PrefetchHits,
		CleanAheads:    st.CleanAheads,
		OverlapFrac:    float64(st.AsyncDMANanos) / float64(wall.Nanoseconds()),
	}, nil
}

func main() {
	steps := flag.Int("steps", 4, "timed training steps per run (one extra warm-up step is untimed)")
	depth := flag.Int("prefetch-depth", 4, "prefetch lookahead for the async runs")
	out := flag.String("out", "BENCH_trainer.json", "output path ('-' for stdout)")
	flag.Parse()

	rep := report{
		Steps:   *steps,
		Widths1: []int{256, 512, 512, 512, 10},
		Widths2: []int{256, 640, 640, 640, 10},
	}
	for _, v := range variants {
		sync, err := measure(v, -1, *steps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtrainer: %s/sync: %v\n", v.Name, err)
			os.Exit(1)
		}
		pf, err := measure(v, *depth, *steps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtrainer: %s/prefetch: %v\n", v.Name, err)
			os.Exit(1)
		}
		r := row{variant: v, Sync: sync, Prefetch: pf,
			SpeedupVsSync: float64(sync.NsPerStep) / float64(pf.NsPerStep)}
		rep.Rows = append(rep.Rows, r)
		fmt.Fprintf(os.Stderr, "%-16s sync %6.1fms/step  prefetch %6.1fms/step  speedup %.2fx  overlap %2.0f%%\n",
			v.Name, float64(sync.NsPerStep)/1e6, float64(pf.NsPerStep)/1e6,
			r.SpeedupVsSync, 100*pf.OverlapFrac)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrainer: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtrainer: %v\n", err)
		os.Exit(1)
	}
}
