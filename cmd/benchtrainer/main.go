// Command benchtrainer measures the real-execution trainer on
// swap-bound configurations — model footprint over device capacity,
// a modeled host link charging wall time per copied byte — and writes
// the results as JSON. Each variant runs twice, synchronous baseline
// (prefetch disabled) and async prefetch, so the report carries the
// overlap win alongside the raw per-step times and swap volumes:
//
//	benchtrainer -steps 4 -out BENCH_trainer.json
//
// The report also carries the executor's contention-scaling curve:
// the Ensure/Unpin fast path driven by one goroutine per device at
// 1/4/16/64 devices. With per-device metadata shards the curve is
// flat; benchgate guards both the 64-device point and the 16→64
// ratio so a reintroduced cross-device lock cannot merge.
//
// The checked-in BENCH_trainer.json is this command's output on the
// development machine; `make bench-json` regenerates it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"harmony"
	"harmony/internal/exec"
	"harmony/internal/memory"
	"harmony/internal/tensor"
)

// variant is one swap-bound workload shape; the prefetch-on/off pair
// is run for each.
type variant struct {
	Name    string `json:"name"`
	Devices int    `json:"devices"`
	P2P     bool   `json:"p2p"`
	LinkBPS int64  `json:"link_bytes_per_sec"`
}

// variants mirrors BenchmarkTrainerStepSwapBound in bench_test.go:
// dp1-hostlink is the headline (single device, every demand miss
// serialized on the link); the two-device rows exercise the p2p
// toggle.
var variants = []variant{
	{"dp1-hostlink", 1, false, 1 << 27},
	{"pp2-p2p", 2, true, 96 << 20},
	{"pp2-host-bounce", 2, false, 96 << 20},
}

type run struct {
	PrefetchDepth  int   `json:"prefetch_depth"`
	NsPerStep      int64 `json:"ns_per_step"`
	SwapInBytes    int64 `json:"swap_in_bytes"`
	SwapOutBytes   int64 `json:"swap_out_bytes"`
	PrefetchIssued int   `json:"prefetch_issued"`
	PrefetchHits   int   `json:"prefetch_hits"`
	CleanAheads    int   `json:"clean_aheads"`
	// OverlapFrac is async DMA busy time over total wall time: the
	// fraction of the run during which a DMA engine was moving data
	// off the critical path.
	OverlapFrac float64 `json:"overlap_frac"`
	// Window stats, adaptive runs only: the smallest and largest
	// per-device lookahead the controller visited and the total
	// resize decisions across devices.
	WindowMin int `json:"window_min,omitempty"`
	WindowMax int `json:"window_max,omitempty"`
	Resizes   int `json:"resizes,omitempty"`
}

type row struct {
	variant
	Sync     run `json:"sync"`
	Prefetch run `json:"prefetch"`
	// Adaptive is the same starting window as Prefetch with the
	// online window/budget controller armed.
	Adaptive              run     `json:"adaptive"`
	SpeedupVsSync         float64 `json:"speedup_vs_sync"`
	AdaptiveSpeedupVsSync float64 `json:"adaptive_speedup_vs_sync"`
}

type report struct {
	Steps      int             `json:"steps_per_run"`
	Widths1    []int           `json:"widths_dp1"`
	Widths2    []int           `json:"widths_pp2"`
	WidthsComm []int           `json:"widths_dp4_comm,omitempty"`
	Rows       []row           `json:"rows"`
	Comm       *commReport     `json:"comm,omitempty"`
	Contention []contentionRow `json:"contention"`
}

// commRun is one measurement of the comm-bound configuration.
type commRun struct {
	NsPerStep     int64 `json:"ns_per_step"`
	ChunksReduced int64 `json:"chunks_reduced"`
	BytesReduced  int64 `json:"bytes_reduced"`
	// CommOverlapFrac is the fraction of collective (Comms-lane) busy
	// time during which at least one device's compute lane was also
	// busy. A monolithic rendezvous parks every worker while the last
	// arriver reduces, so it scores near zero; chunked collectives
	// spread reduction across workers and let finished workers resume
	// compute, so they score high.
	CommOverlapFrac float64 `json:"comm_overlap_frac"`
}

// commReport is the dp4 comm-bound row: four data-parallel replicas
// with a deliberately small per-replica batch, so the per-step
// AllReduce reduce work is a large fraction of compute and the
// monolithic all-park rendezvous is the bottleneck being measured.
type commReport struct {
	Name                string  `json:"name"`
	Devices             int     `json:"devices"`
	CommChunks          int     `json:"comm_chunks"`
	CommBucketBytes     int64   `json:"comm_bucket_bytes"`
	Monolithic          commRun `json:"monolithic"`
	Chunked             commRun `json:"chunked"`
	SpeedupVsMonolithic float64 `json:"speedup_vs_monolithic"`
}

// contentionRow is one point of the Ensure hot-path scaling curve.
type contentionRow struct {
	Devices int   `json:"devices"`
	NsPerOp int64 `json:"ns_per_op"`
}

// contentionDevices mirrors BenchmarkEnsureContended.
var contentionDevices = []int{1, 4, 16, 64}

// measureContention drives the exec VM's pin fast path — one
// goroutine per device, each over its own small pre-faulted working
// set — and reports wall time per Ensure/Unpin pair. The working set
// is fixed per device so cache footprint does not grow with device
// count and the curve isolates lock/word contention.
func measureContention(devs, ops int) (contentionRow, error) {
	const (
		pageBytes = 64
		perDev    = 16
	)
	reg := tensor.NewRegistry()
	vm := exec.NewVM(devs, perDev*pageBytes, memory.Policy{DirtyTracking: true})
	sets := make([][]*tensor.Tensor, devs)
	for d := 0; d < devs; d++ {
		for i := 0; i < perDev; i++ {
			t := reg.New(fmt.Sprintf("d%dt%d", d, i), tensor.Activation, pageBytes, i, d)
			vm.HostAlloc(t)
			sets[d] = append(sets[d], t)
		}
		for _, t := range sets[d] {
			if _, err := vm.Ensure(d, t); err != nil {
				return contentionRow{}, err
			}
			if err := vm.Unpin(t); err != nil {
				return contentionRow{}, err
			}
		}
	}
	perG := ops/devs + 1
	var wg sync.WaitGroup
	errs := make(chan error, devs)
	start := time.Now()
	for d := 0; d < devs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			set := sets[d]
			for i := 0; i < perG; i++ {
				t := set[i%perDev]
				if _, err := vm.Ensure(d, t); err != nil {
					errs <- err
					return
				}
				if err := vm.Unpin(t); err != nil {
					errs <- err
					return
				}
			}
		}(d)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return contentionRow{}, err
	}
	return contentionRow{Devices: devs, NsPerOp: wall.Nanoseconds() / int64(perG*devs)}, nil
}

func config(v variant, depth int, adaptive bool) harmony.TrainerConfig {
	tg := &harmony.Toggles{}
	if !v.P2P {
		tg.P2P = harmony.Bool(false)
	}
	mode, widths := harmony.HarmonyDP, []int{256, 512, 512, 512, 10}
	if v.Devices > 1 {
		mode, widths = harmony.HarmonyPP, []int{256, 640, 640, 640, 10}
	}
	return harmony.TrainerConfig{
		Widths:           widths,
		Mode:             mode,
		Devices:          v.Devices,
		DeviceBytes:      4 << 20,
		BatchSize:        8,
		Seed:             1,
		Toggles:          tg,
		PrefetchDepth:    depth,
		AdaptivePrefetch: adaptive,
		LinkBytesPerSec:  v.LinkBPS,
	}
}

// measure trains steps iterations (after one untimed warm-up step)
// and returns the per-step wall time and movement counters.
func measure(v variant, depth, steps int, adaptive bool) (run, error) {
	cfg := config(v, depth, adaptive)
	tr, err := harmony.NewTrainer(cfg)
	if err != nil {
		return run{}, err
	}
	defer tr.Close()
	blobs := harmony.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 1.0, 3)
	x, y := blobs.Batch(tr.SamplesPerStep(), 0)
	if _, err := tr.Step(x, y); err != nil {
		return run{}, err
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(x, y); err != nil {
			return run{}, err
		}
	}
	wall := time.Since(start)
	st := tr.Stats()
	r := run{
		PrefetchDepth:  depth,
		NsPerStep:      wall.Nanoseconds() / int64(steps),
		SwapInBytes:    st.SwapInBytes,
		SwapOutBytes:   st.SwapOutBytes,
		PrefetchIssued: st.PrefetchIssued,
		PrefetchHits:   st.PrefetchHits,
		CleanAheads:    st.CleanAheads,
		OverlapFrac:    float64(st.AsyncDMANanos) / float64(wall.Nanoseconds()),
	}
	for i, ws := range tr.AdaptStats() {
		if i == 0 || ws.WindowMin < r.WindowMin {
			r.WindowMin = ws.WindowMin
		}
		if ws.WindowMax > r.WindowMax {
			r.WindowMax = ws.WindowMax
		}
		r.Resizes += ws.Resizes
	}
	return r, nil
}

// commWidths keeps the comm-bound row's reduce/compute ratio high:
// wide layers make per-layer gradients big (~19 MB total reduce
// payload per replica) while the tiny batch keeps backward compute
// small, so the per-step AllReduce is the bottleneck being measured.
var commWidths = []int{64, 1536, 1536, 1536, 10}

// commChunksN / commBucketB are the chunked variant's knobs: a 12 MB
// bucket budget coalesces the four per-layer collectives into two
// ~9.5 MB buckets ({L3,L2} and {L1,L0}, reverse layer order), each cut
// into 8 chunks spread round-robin over the four device workers.
const (
	commChunksN = 8
	commBucketB = int64(12) << 20
)

func commBoundConfig(chunks int, bucket int64) harmony.TrainerConfig {
	return harmony.TrainerConfig{
		Widths:  commWidths,
		Mode:    harmony.HarmonyDP,
		Devices: 4,
		// Fits the whole footprint: the row isolates collective cost,
		// not swap traffic. Chunked pin demand is additive across
		// workers, so capacity must cover each worker's bucket views
		// on top of the resident replica.
		DeviceBytes:  96 << 20,
		BatchSize:    4,
		Microbatches: 1,
		Seed:         1,
		// PCIe-class interconnect: each collective's remote gradient
		// traffic (2×(N-1)× payload) crosses this link. Monolithic
		// rendezvous pay it serially with every worker parked; chunks
		// cross it concurrently and hide behind compute.
		LinkBytesPerSec: 1 << 30,
		CommChunks:      chunks,
		CommBucketBytes: bucket,
	}
}

// measureComm times the comm-bound configuration with the given comm
// knobs (0,0 = monolithic rendezvous) and reads the collective/compute
// overlap off the execution trace.
func measureComm(chunks int, bucket int64, steps int) (commRun, error) {
	cfg := commBoundConfig(chunks, bucket)
	tr, err := harmony.NewTrainer(cfg)
	if err != nil {
		return commRun{}, err
	}
	defer tr.Close()
	blobs := harmony.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 1.0, 3)
	x, y := blobs.Batch(tr.SamplesPerStep(), 0)
	if _, err := tr.Step(x, y); err != nil {
		return commRun{}, err
	}
	tl := tr.EnableTrace()
	start := time.Now()
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(x, y); err != nil {
			return commRun{}, err
		}
	}
	wall := time.Since(start)
	cs := tr.CommStats()
	return commRun{
		NsPerStep:       wall.Nanoseconds() / int64(steps),
		ChunksReduced:   cs.ChunksReduced,
		BytesReduced:    cs.BytesReduced,
		CommOverlapFrac: tl.CommOverlapFraction(),
	}, nil
}

func main() {
	steps := flag.Int("steps", 4, "timed training steps per run (one extra warm-up step is untimed)")
	depth := flag.Int("prefetch-depth", 4, "prefetch lookahead for the async runs")
	contendOps := flag.Int("contend-ops", 200000, "total Ensure/Unpin pairs per contention point")
	out := flag.String("out", "BENCH_trainer.json", "output path ('-' for stdout)")
	flag.Parse()

	rep := report{
		Steps:   *steps,
		Widths1: []int{256, 512, 512, 512, 10},
		Widths2: []int{256, 640, 640, 640, 10},
	}
	for _, v := range variants {
		sync, err := measure(v, -1, *steps, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtrainer: %s/sync: %v\n", v.Name, err)
			os.Exit(1)
		}
		pf, err := measure(v, *depth, *steps, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtrainer: %s/prefetch: %v\n", v.Name, err)
			os.Exit(1)
		}
		ad, err := measure(v, *depth, *steps, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtrainer: %s/adaptive: %v\n", v.Name, err)
			os.Exit(1)
		}
		r := row{variant: v, Sync: sync, Prefetch: pf, Adaptive: ad,
			SpeedupVsSync:         float64(sync.NsPerStep) / float64(pf.NsPerStep),
			AdaptiveSpeedupVsSync: float64(sync.NsPerStep) / float64(ad.NsPerStep)}
		rep.Rows = append(rep.Rows, r)
		fmt.Fprintf(os.Stderr, "%-16s sync %6.1fms/step  prefetch %6.1fms/step (%.2fx, overlap %2.0f%%)  adaptive %6.1fms/step (%.2fx, overlap %2.0f%%, window %d..%d, %d resizes)\n",
			v.Name, float64(sync.NsPerStep)/1e6,
			float64(pf.NsPerStep)/1e6, r.SpeedupVsSync, 100*pf.OverlapFrac,
			float64(ad.NsPerStep)/1e6, r.AdaptiveSpeedupVsSync, 100*ad.OverlapFrac,
			ad.WindowMin, ad.WindowMax, ad.Resizes)
	}

	rep.WidthsComm = commWidths
	mono, err := measureComm(0, 0, *steps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrainer: dp4-comm/monolithic: %v\n", err)
		os.Exit(1)
	}
	chk, err := measureComm(commChunksN, commBucketB, *steps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrainer: dp4-comm/chunked: %v\n", err)
		os.Exit(1)
	}
	rep.Comm = &commReport{
		Name:                "dp4-comm",
		Devices:             4,
		CommChunks:          commChunksN,
		CommBucketBytes:     commBucketB,
		Monolithic:          mono,
		Chunked:             chk,
		SpeedupVsMonolithic: float64(mono.NsPerStep) / float64(chk.NsPerStep),
	}
	fmt.Fprintf(os.Stderr, "%-16s monolithic %6.1fms/step (overlap %2.0f%%)  chunked %6.1fms/step (%.2fx, overlap %2.0f%%, %d chunks, %.1f MB reduced)\n",
		"dp4-comm", float64(mono.NsPerStep)/1e6, 100*mono.CommOverlapFrac,
		float64(chk.NsPerStep)/1e6, rep.Comm.SpeedupVsMonolithic, 100*chk.CommOverlapFrac,
		chk.ChunksReduced, float64(chk.BytesReduced)/(1<<20))

	for _, devs := range contentionDevices {
		cr, err := measureContention(devs, *contendOps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtrainer: contention/devs=%d: %v\n", devs, err)
			os.Exit(1)
		}
		rep.Contention = append(rep.Contention, cr)
		fmt.Fprintf(os.Stderr, "contention devs=%-3d %5d ns/op\n", devs, cr.NsPerOp)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrainer: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtrainer: %v\n", err)
		os.Exit(1)
	}
}
