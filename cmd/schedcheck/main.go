// Command schedcheck statically verifies an execution plan against a
// device topology without running anything: happens-before liveness
// across queues and collective rendezvous, symbolic peak-residency
// against device capacity, structural swap volume cross-checked with
// the analytic closed forms, and a bounded exhaustive exploration of
// the DMA claim state machine. Failures print the violated invariant
// plus a Gantt-style counterexample lane per device.
//
// Examples:
//
//	schedcheck -mode harmony-dp -devices 2 -layers 8 -microbatches 4
//	schedcheck -mode harmony-dp -devices 4 -comm-chunks 8 -comm-bucket 16384
//	schedcheck -mode pp-baseline -devices 4 -layers 16 -device-mem 32768
//	schedcheck -mode dp-baseline -devices 2 -inject cycle      # seeded deadlock
//	schedcheck -mode harmony-dp -devices 2 -inject overcap     # seeded thrash
//	schedcheck -mode harmony-dp -devices 2 -inject uncommitted # seeded DMA bug
package main

import (
	"flag"
	"fmt"
	"os"

	"harmony/internal/graph"
	"harmony/internal/models"
	"harmony/internal/sched"
	"harmony/internal/schedcheck"
)

func main() {
	var (
		modeName  = flag.String("mode", "harmony-dp", "dp-baseline, harmony-dp, pp-baseline, harmony-pp, tp-baseline, harmony-tp")
		devices   = flag.Int("devices", 2, "device count")
		layers    = flag.Int("layers", 8, "model layers")
		params    = flag.Int("params", 1000, "parameters per layer")
		mbs       = flag.Int("microbatches", 4, "microbatches per iteration")
		mbSize    = flag.Int("mb-size", 1, "samples per microbatch")
		deviceMem = flag.Int64("device-mem", 1<<20, "per-device memory bytes")
		groupSize = flag.Int("group-size", 0, "microbatch group size (0 = all)")
		prefetch  = flag.Bool("prefetch", true, "plan with prefetch enabled")
		chunks    = flag.Int("comm-chunks", 0, "split gradient collectives into N chunks (0 = monolithic)")
		bucket    = flag.Int64("comm-bucket", 0, "coalesce reverse-order gradients into buckets of this many bytes")
		baseline  = flag.Bool("baseline-toggles", false, "disable all optimizations regardless of mode")
		inject    = flag.String("inject", "", "seed a plan bug: cycle, volume, overcap, uncommitted")
		verbose   = flag.Bool("v", false, "print per-device residency and volume detail")
	)
	flag.Parse()

	mode, ok := map[string]sched.Mode{
		"dp-baseline": sched.DPBaseline, "harmony-dp": sched.HarmonyDP,
		"pp-baseline": sched.PPBaseline, "harmony-pp": sched.HarmonyPP,
		"tp-baseline": sched.TPBaseline, "harmony-tp": sched.HarmonyTP,
	}[*modeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "schedcheck: unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	model := models.Uniform("plan", *layers, int64(*params), 4096, 1e9)
	cfg := graph.Config{Model: model, MicrobatchSize: *mbSize, Microbatches: *mbs, Replicas: *devices}
	if mode.IsPipeline() {
		cfg.Replicas = 1
	}
	if mode.IsSharded() {
		cfg.Replicas = 1
		cfg.OpShards = *devices
	}
	g, err := graph.Build(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedcheck: %v\n", err)
		os.Exit(2)
	}
	opts := sched.DefaultOptions(mode)
	if *baseline || *inject == "cycle" || *inject == "volume" {
		// The queue-order injections need updates at the tail.
		opts = sched.Options{Mode: mode}
	}
	opts.GroupSize = *groupSize
	opts.Prefetch = opts.Prefetch && *prefetch
	opts.CommChunks = *chunks
	opts.CommBucketBytes = *bucket
	s, err := sched.Build(g, opts, *devices)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedcheck: %v\n", err)
		os.Exit(2)
	}

	topo := schedcheck.Topology{Devices: *devices, DeviceBytes: *deviceMem}
	switch *inject {
	case "":
	case "cycle":
		if err := schedcheck.InjectRendezvousCycle(s); err != nil {
			fmt.Fprintf(os.Stderr, "schedcheck: %v\n", err)
			os.Exit(2)
		}
	case "volume":
		if err := schedcheck.InjectVolumeSkew(s); err != nil {
			fmt.Fprintf(os.Stderr, "schedcheck: %v\n", err)
			os.Exit(2)
		}
	case "overcap":
		topo.DeviceBytes = 64
	case "uncommitted":
		topo.Mutation = "skip-commit"
	default:
		fmt.Fprintf(os.Stderr, "schedcheck: unknown injection %q\n", *inject)
		os.Exit(2)
	}

	r := schedcheck.Check(s, topo)
	fmt.Printf("plan: %s, %d devices, %d layers × %d params, %d microbatches\n",
		mode, *devices, *layers, *params, *mbs)
	fmt.Printf("checked: %d tasks replayed, %d DMA states explored\n", r.TasksChecked, r.DMAStates)
	if *verbose {
		for d := range r.PeakPinBytes {
			fmt.Printf("  gpu%d: peak pinned %d bytes, expected resident %d / %d capacity\n",
				d, r.PeakPinBytes[d], r.PeakResidentBytes[d], topo.DeviceBytes)
		}
	}
	if r.AnalyticWeightBytes >= 0 {
		fmt.Printf("swap volume (bytes/iter): weights %d (analytic %d), grads %d, opt-state %d\n",
			r.WeightSwapBytes, r.AnalyticWeightBytes, r.GradSwapBytes, r.OptStateSwapBytes)
	} else {
		fmt.Printf("swap volume (bytes/iter): weights %d, grads %d, opt-state %d (no closed form for this shape)\n",
			r.WeightSwapBytes, r.GradSwapBytes, r.OptStateSwapBytes)
	}
	if err := r.Err(); err != nil {
		fmt.Printf("FAIL\n%v\n", err)
		os.Exit(1)
	}
	fmt.Println("PASS: plan is deadlock-free, fits residency, matches the analytic swap model, and upholds the DMA claim invariant")
}
