// Command harmonysim runs a single simulated training measurement
// with explicit parameters — the general-purpose entry point for
// exploring configurations beyond the paper's figures.
//
// Examples:
//
//	harmonysim -model bert48 -mode harmony-pp -gpus 4 -mb-size 1 -microbatches 20
//	harmonysim -model gpt2xl -mode dp-baseline -gpus 2 -mb-size 4
//	harmonysim -model uniform -layers 16 -mode harmony-dp -gpus 1 -gpu-mem 1048576 -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"harmony"
	"harmony/internal/models"
)

func main() {
	var (
		modelName  = flag.String("model", "bert48", "workload: lenet, alexnet, gnmt, amoebanet, bertlarge, bert48, gpt2xl, t5-11b, gpt3, uniform")
		layers     = flag.Int("layers", 16, "layer count for -model uniform")
		modeName   = flag.String("mode", "harmony-pp", "dp-baseline, pp-baseline, harmony-dp, harmony-pp, tp-baseline, harmony-tp")
		gpus       = flag.Int("gpus", 4, "GPU count (per server)")
		servers    = flag.Int("servers", 1, "server count (>1 builds a NIC-joined cluster)")
		gpuMem     = flag.Int64("gpu-mem", 0, "per-GPU memory bytes (0 = 11 GiB)")
		mbSize     = flag.Int("mb-size", 1, "microbatch size (samples)")
		mbCount    = flag.Int("microbatches", 8, "microbatches per iteration")
		groupSize  = flag.Int("group", 0, "grouping window (0 = whole batch)")
		trace      = flag.Bool("trace", false, "print the execution Gantt chart")
		noP2P      = flag.Bool("no-p2p", false, "disable peer-to-peer transfers")
		noGroup    = flag.Bool("no-grouping", false, "disable input-batch grouping")
		noJIT      = flag.Bool("no-jit", false, "disable just-in-time updates")
		recomp     = flag.Bool("recompute", false, "activation recomputation (checkpoint inputs only)")
		lookahead  = flag.Bool("lookahead", false, "schedule-informed (Belady) eviction instead of LRU")
		interleave = flag.Bool("interleave", false, "1F1B wave interleaving for grouped pipelines")
	)
	flag.Parse()

	var model harmony.ModelSpec
	if *modelName == "uniform" {
		model = harmony.UniformModel(*layers, 1_000_000, 1<<20, 1e10)
	} else if ctor, ok := models.Catalog()[*modelName]; ok {
		model = harmony.CustomModel(ctor())
	} else {
		fmt.Fprintf(os.Stderr, "harmonysim: unknown model %q\n", *modelName)
		os.Exit(2)
	}
	var mode harmony.Mode
	switch *modeName {
	case "dp-baseline":
		mode = harmony.DPBaseline
	case "pp-baseline":
		mode = harmony.PPBaseline
	case "harmony-dp":
		mode = harmony.HarmonyDP
	case "harmony-pp":
		mode = harmony.HarmonyPP
	case "tp-baseline":
		mode = harmony.TPBaseline
	case "harmony-tp":
		mode = harmony.HarmonyTP
	default:
		fmt.Fprintf(os.Stderr, "harmonysim: unknown mode %q\n", *modeName)
		os.Exit(2)
	}
	server := harmony.CommodityServer(*gpus)
	if *servers > 1 {
		server = harmony.Cluster(*servers, *gpus)
	}
	if *gpuMem > 0 {
		server = server.WithGPUMemory(*gpuMem)
	}
	toggles := &harmony.Toggles{GroupSize: *groupSize}
	if *noP2P {
		toggles.P2P = harmony.Bool(false)
	}
	if *noGroup {
		toggles.Grouping = harmony.Bool(false)
	}
	if *noJIT {
		toggles.JIT = harmony.Bool(false)
	}
	if *lookahead {
		toggles.LookaheadEviction = harmony.Bool(true)
	}
	if *interleave {
		toggles.WaveInterleave = harmony.Bool(true)
	}

	rep, err := harmony.Simulate(harmony.SimConfig{
		Model:          model,
		Mode:           mode,
		Server:         server,
		MicrobatchSize: *mbSize,
		Microbatches:   *mbCount,
		Toggles:        toggles,
		Recompute:      *recomp,
		CaptureTrace:   *trace,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "harmonysim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("model            %s (persistent footprint %.1f GiB)\n", model.Name(), model.PersistentGB())
	fmt.Printf("mode             %s on %d GPUs (%d server(s))\n", mode, server.GPUs(), *servers)
	fmt.Printf("throughput       %.3f samples/s\n", rep.Throughput)
	fmt.Printf("iteration        %.3f s\n", rep.IterSeconds)
	fmt.Printf("swap in/out      %.2f / %.2f GiB per iteration\n",
		float64(rep.SwapInBytes)/(1<<30), float64(rep.SwapOutBytes)/(1<<30))
	fmt.Printf("p2p traffic      %.2f GiB per iteration\n", float64(rep.P2PBytes)/(1<<30))
	for i := range rep.PerGPUSwapOutBytes {
		fmt.Printf("gpu%-2d            swap-out %.2f GiB/iter, peak demand %.1f GiB\n",
			i, float64(rep.PerGPUSwapOutBytes[i])/(1<<30), float64(rep.PerGPUDemandBytes[i])/(1<<30))
	}
	if *trace {
		fmt.Println()
		fmt.Print(rep.Gantt)
	}
}
