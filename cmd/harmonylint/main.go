// Command harmonylint runs the repo's invariant-enforcing static
// analysis suite (internal/analyzers) over Go packages and reports
// findings in the usual file:line:col format. It exits non-zero when
// anything is found, so `make lint` gates CI on it.
//
// Usage:
//
//	harmonylint [-v] [-json|-sarif] [packages]
//
// Packages are go list patterns; the default is ./.... The tool must
// run from inside the module (the Makefile does), because imports are
// type-checked from source rather than fetched from a module proxy.
//
// -json emits the findings as a JSON array of {file, line, column,
// analyzer, message} objects; -sarif emits a SARIF 2.1.0 log with one
// rule per analyzer, so CI can upload the findings as code-scanning
// annotations. Both keep the text mode's ordering — sorted by (file,
// line, column, analyzer) and deduplicated — and the same exit codes:
// 0 clean, 1 findings, 2 usage or load failure.
//
// False positives are silenced in place with an explained directive on
// the flagged line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// Directives are themselves checked: naming an unknown analyzer,
// omitting the reason, or suppressing nothing is an error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"harmony/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("harmonylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "print analyzed packages and the analyzer roster")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: harmonylint [-v] [-json|-sarif] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintf(stderr, "harmonylint: -json and -sarif are mutually exclusive\n")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "harmonylint: %v\n", err)
		return 2
	}

	if *verbose {
		for _, pkg := range pkgs {
			fmt.Fprintf(stderr, "harmonylint: %s (%d files)\n", pkg.Path, len(pkg.Files))
		}
	}
	// One whole-program run: the interprocedural passes (lockorder,
	// chanlife, determinism taint, the lifecycle passes) need every
	// package's summaries in a single call graph, and the diagnostics
	// come back sorted by (file, line, column, analyzer) and
	// deduplicated across packages, so CI logs are stable run-to-run.
	diags, err := analyzers.RunProject(pkgs, analyzers.All()...)
	if err != nil {
		fmt.Fprintf(stderr, "harmonylint: %v\n", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			diags[i].Pos.Filename = rel
		}
	}

	switch {
	case *asJSON:
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "harmonylint: %v\n", err)
			return 2
		}
	case *asSARIF:
		if err := writeSARIF(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "harmonylint: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "harmonylint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonFinding is the stable -json schema, one object per finding, in
// the same order as the text output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []analyzers.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0, the minimal subset GitHub code scanning ingests: one
// rule per analyzer (id + short description), one result per finding
// with a physical location. Rules are listed in suite order and
// results in diagnostic order, so the log is stable run-to-run.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, diags []analyzers.Diagnostic) error {
	var rules []sarifRule
	for _, a := range analyzers.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		line, col := d.Pos.Line, d.Pos.Column
		if line < 1 {
			line = 1 // SARIF regions are 1-based; guard synthetic positions
		}
		if col < 1 {
			col = 1
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.Pos.Filename)},
				Region:           sarifRegion{StartLine: line, StartColumn: col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "harmonylint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
