// Command harmonylint runs the repo's invariant-enforcing static
// analysis suite (internal/analyzers) over Go packages and reports
// findings in the usual file:line:col format. It exits non-zero when
// anything is found, so `make lint` gates CI on it.
//
// Usage:
//
//	harmonylint [-v] [packages]
//
// Packages are go list patterns; the default is ./.... The tool must
// run from inside the module (the Makefile does), because imports are
// type-checked from source rather than fetched from a module proxy.
//
// False positives are silenced in place with an explained directive on
// the flagged line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// Directives are themselves checked: naming an unknown analyzer,
// omitting the reason, or suppressing nothing is an error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"harmony/internal/analyzers"
)

func main() {
	verbose := flag.Bool("v", false, "print analyzed packages and the analyzer roster")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: harmonylint [-v] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harmonylint: %v\n", err)
		os.Exit(2)
	}

	if *verbose {
		for _, pkg := range pkgs {
			fmt.Fprintf(os.Stderr, "harmonylint: %s (%d files)\n", pkg.Path, len(pkg.Files))
		}
	}
	// One whole-program run: the interprocedural passes (lockorder,
	// chanlife, determinism taint) need every package's summaries in a
	// single call graph, and the diagnostics come back sorted by
	// (file, line, column, analyzer) and deduplicated across packages,
	// so CI logs are stable run-to-run.
	diags, err := analyzers.RunProject(pkgs, analyzers.All()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harmonylint: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "harmonylint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
