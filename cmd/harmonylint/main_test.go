package main

// CLI contract tests: exit codes, output ordering, and the -json and
// -sarif schemas, against a tiny self-contained module with two known
// violations. The module is built in a temp dir and run() is invoked
// in-process with the working directory switched there, exactly as the
// binary would run from a checkout.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// violatingModule writes a module with two deterministic findings: a
// pinbalance leak in a.go and an errcheck-visible pinbalance leak in
// b.go — two files, so ordering is observable.
func violatingModule(t *testing.T) string {
	t.Helper()
	tmp := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(tmp, rel), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tinylint\n\ngo 1.22\n")
	write("a.go", `package tiny

import "errors"

type state struct{ pins int }

func (s *state) Pin() error {
	s.pins++
	return nil
}

func (s *state) Unpin() error {
	s.pins--
	return nil
}

func leakA(s *state) error {
	if err := s.Pin(); err != nil {
		return err
	}
	if s.pins > 3 {
		return errors.New("over")
	}
	return s.Unpin()
}
`)
	write("b.go", `package tiny

import "errors"

func leakB(s *state) error {
	if err := s.Pin(); err != nil {
		return err
	}
	if s.pins > 9 {
		return errors.New("way over")
	}
	return s.Unpin()
}
`)
	return tmp
}

// runIn invokes run() with the working directory switched to dir.
func runIn(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatalf("restoring working directory: %v", err)
		}
	}()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunTextFindingsAndOrdering(t *testing.T) {
	tmp := violatingModule(t)
	code, stdout, stderr := runIn(t, tmp, ".")
	if code != 1 {
		t.Fatalf("want exit 1 on findings, got %d (stderr: %s)", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 findings, got %d:\n%s", len(lines), stdout)
	}
	if !strings.HasPrefix(lines[0], "a.go:") || !strings.HasPrefix(lines[1], "b.go:") {
		t.Errorf("findings not sorted by file:\n%s", stdout)
	}
	for _, l := range lines {
		if !regexp.MustCompile(`^[ab]\.go:\d+:\d+: pinbalance: pin on s taken at`).MatchString(l) {
			t.Errorf("unexpected finding shape: %s", l)
		}
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr)
	}
}

func TestRunCleanExitsZero(t *testing.T) {
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module cleanlint\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "a.go"), []byte("package clean\n\nfunc ok() int { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{{"."}, {"-json", "."}, {"-sarif", "."}} {
		code, stdout, stderr := runIn(t, tmp, args...)
		if code != 0 {
			t.Errorf("%v: want exit 0, got %d (stderr: %s)", args, code, stderr)
		}
		if strings.Contains(stderr, "finding") {
			t.Errorf("%v: clean run printed a findings summary: %s", args, stderr)
		}
		_ = stdout
	}
}

func TestRunBadPatternExitsTwo(t *testing.T) {
	tmp := violatingModule(t)
	code, _, stderr := runIn(t, tmp, "./no/such/dir")
	if code != 2 {
		t.Fatalf("want exit 2 on load failure, got %d (stderr: %s)", code, stderr)
	}
	if code, _, _ := runIn(t, tmp, "-json", "-sarif", "."); code != 2 {
		t.Fatalf("want exit 2 when -json and -sarif are combined, got %d", code)
	}
}

func TestRunJSONOutput(t *testing.T) {
	tmp := violatingModule(t)
	code, stdout, _ := runIn(t, tmp, "-json", ".")
	if code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, stdout)
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 findings, got %d", len(findings))
	}
	if findings[0].File != "a.go" || findings[1].File != "b.go" {
		t.Errorf("JSON findings not in text order: %s then %s", findings[0].File, findings[1].File)
	}
	for _, f := range findings {
		if f.Analyzer != "pinbalance" || f.Line < 1 || f.Column < 1 ||
			!strings.Contains(f.Message, "is not released on an error path") {
			t.Errorf("unexpected JSON finding: %+v", f)
		}
	}
}

func TestRunSARIFOutput(t *testing.T) {
	tmp := violatingModule(t)
	code, stdout, _ := runIn(t, tmp, "-sarif", ".")
	if code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("output is not a SARIF log: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one SARIF 2.1.0 run, got version %q with %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "harmonylint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if !ruleIDs["pinbalance"] || !ruleIDs["lockhold"] || !ruleIDs["errpath"] {
		t.Errorf("rules missing expected analyzers: %v", ruleIDs)
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	for i, want := range []string{"a.go", "b.go"} {
		r := run.Results[i]
		if r.RuleID != "pinbalance" || r.Level != "error" {
			t.Errorf("result %d: ruleId %q level %q", i, r.RuleID, r.Level)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d: want 1 location", i)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != want || loc.Region.StartLine < 1 || loc.Region.StartColumn < 1 {
			t.Errorf("result %d: location %+v, want uri %s", i, loc, want)
		}
	}
}
