// Command benchgate compares two benchtrainer reports and fails if a
// named row's prefetch speedup regressed beyond a tolerance. It is the
// CI guard for the swap-overlap win: BENCH_trainer.json is checked in
// as the baseline, a fresh report is generated on each run, and a
// >20% drop in speedup_vs_sync on the swap-bound config fails the
// build before a prefetch regression can merge.
//
//	benchgate -old BENCH_trainer.json -new /tmp/bench.json -row dp1-hostlink -max-regress 0.20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type report struct {
	Rows []struct {
		Name    string  `json:"name"`
		Speedup float64 `json:"speedup_vs_sync"`
	} `json:"rows"`
}

func speedup(path, row string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, rw := range r.Rows {
		if rw.Name == row {
			if rw.Speedup <= 0 {
				return 0, fmt.Errorf("%s: row %q has non-positive speedup %g", path, row, rw.Speedup)
			}
			return rw.Speedup, nil
		}
	}
	return 0, fmt.Errorf("%s: no row named %q", path, row)
}

func main() {
	var (
		oldPath    = flag.String("old", "BENCH_trainer.json", "baseline report (checked in)")
		newPath    = flag.String("new", "", "freshly generated report to gate")
		row        = flag.String("row", "dp1-hostlink", "row to compare")
		maxRegress = flag.Float64("max-regress", 0.20, "maximum allowed fractional speedup drop")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	base, err := speedup(*oldPath, *row)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := speedup(*newPath, *row)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	drop := (base - cur) / base
	fmt.Printf("benchgate: %s speedup_vs_sync baseline %.3f, current %.3f (drop %.1f%%, limit %.0f%%)\n",
		*row, base, cur, 100*drop, 100**maxRegress)
	if drop > *maxRegress {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s regressed %.1f%% > %.0f%%\n",
			*row, 100*drop, 100**maxRegress)
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}
