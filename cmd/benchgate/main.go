// Command benchgate compares two benchtrainer reports and fails the
// build if a perf invariant regressed beyond tolerance. It guards two
// properties:
//
//   - the swap-overlap win: a >20% drop in speedup_vs_sync on the
//     swap-bound row (dp1-hostlink) fails before a prefetch regression
//     can merge;
//   - the adaptive controller's overlap: on the same row, the fresh
//     report's adaptive overlap_frac must stay within
//     -max-adaptive-overlap-drop (absolute) of the static prefetch
//     overlap_frac from the same run — a controller that tunes itself
//     into hiding less DMA than the fixed window cannot merge;
//   - contention scaling of the sharded hot path: the 64-device
//     Ensure ns/op in the fresh report must stay within -max-scale-degrade
//     of the 16-device point (flat curve = no cross-device lock), and
//     within -max-contend-regress of the baseline's 64-device point;
//   - the chunked-collective overlap on the dp4-comm row: the fresh
//     report's chunked comm_overlap_frac must stay within
//     -max-comm-overlap-drop (absolute points) of the baseline's, and
//     the chunked variant must not lose to the monolithic rendezvous —
//     a change that re-serializes reduction behind an all-park barrier
//     cannot merge.
//
// The scaling check compares two points from the same run on the same
// machine, so its tolerance is tight (15%); the cross-report ns check
// spans machines and is correspondingly loose (50% by default).
//
//	benchgate -old BENCH_trainer.json -new /tmp/bench.json -row dp1-hostlink -max-regress 0.20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// overlap is the slice of a run the gate cares about.
type overlap struct {
	OverlapFrac float64 `json:"overlap_frac"`
}

type report struct {
	Rows []struct {
		Name            string  `json:"name"`
		Speedup         float64 `json:"speedup_vs_sync"`
		AdaptiveSpeedup float64 `json:"adaptive_speedup_vs_sync"`
		Prefetch        overlap `json:"prefetch"`
		Adaptive        overlap `json:"adaptive"`
	} `json:"rows"`
	Comm *struct {
		Monolithic struct {
			NsPerStep int64 `json:"ns_per_step"`
		} `json:"monolithic"`
		Chunked struct {
			NsPerStep       int64   `json:"ns_per_step"`
			CommOverlapFrac float64 `json:"comm_overlap_frac"`
		} `json:"chunked"`
	} `json:"comm"`
	Contention []struct {
		Devices int   `json:"devices"`
		NsPerOp int64 `json:"ns_per_op"`
	} `json:"contention"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func (r *report) speedup(path, row string) (float64, error) {
	for _, rw := range r.Rows {
		if rw.Name == row {
			if rw.Speedup <= 0 {
				return 0, fmt.Errorf("%s: row %q has non-positive speedup %g", path, row, rw.Speedup)
			}
			return rw.Speedup, nil
		}
	}
	return 0, fmt.Errorf("%s: no row named %q", path, row)
}

// contentionNs returns the ns/op at the given device count, or an
// error if the report has no such point.
func (r *report) contentionNs(path string, devs int) (int64, error) {
	for _, c := range r.Contention {
		if c.Devices == devs {
			if c.NsPerOp <= 0 {
				return 0, fmt.Errorf("%s: contention devs=%d has non-positive ns_per_op %d", path, devs, c.NsPerOp)
			}
			return c.NsPerOp, nil
		}
	}
	return 0, fmt.Errorf("%s: no contention point for devs=%d", path, devs)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(2)
}

func main() {
	var (
		oldPath     = flag.String("old", "BENCH_trainer.json", "baseline report (checked in)")
		newPath     = flag.String("new", "", "freshly generated report to gate")
		row         = flag.String("row", "dp1-hostlink", "row to compare")
		maxRegress  = flag.Float64("max-regress", 0.20, "maximum allowed fractional speedup drop")
		scaleFrom   = flag.Int("scale-from", 16, "contention scaling baseline device count")
		scaleTo     = flag.Int("scale-to", 64, "contention scaling guarded device count")
		maxScale    = flag.Float64("max-scale-degrade", 0.15, "maximum allowed ns/op growth from -scale-from to -scale-to devices")
		maxContend  = flag.Float64("max-contend-regress", 0.50, "maximum allowed cross-report ns/op growth at -scale-to devices")
		maxAdDrop   = flag.Float64("max-adaptive-overlap-drop", 0.05, "maximum allowed absolute overlap_frac shortfall of the adaptive run vs the static prefetch run on -row")
		maxCommDrop = flag.Float64("max-comm-overlap-drop", 0.05, "maximum allowed absolute comm_overlap_frac drop on the dp4-comm chunked run vs baseline")
		maxCommSlow = flag.Float64("max-comm-slowdown", 0.10, "maximum allowed fractional ns_per_step excess of the chunked dp4-comm run over the monolithic run from the same report")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	oldRep, err := load(*oldPath)
	if err != nil {
		die(err)
	}
	newRep, err := load(*newPath)
	if err != nil {
		die(err)
	}

	base, err := oldRep.speedup(*oldPath, *row)
	if err != nil {
		die(err)
	}
	cur, err := newRep.speedup(*newPath, *row)
	if err != nil {
		die(err)
	}
	drop := (base - cur) / base
	fmt.Printf("benchgate: %s speedup_vs_sync baseline %.3f, current %.3f (drop %.1f%%, limit %.0f%%)\n",
		*row, base, cur, 100*drop, 100**maxRegress)
	if drop > *maxRegress {
		fail("FAIL: %s regressed %.1f%% > %.0f%%", *row, 100*drop, 100**maxRegress)
	}

	// Adaptive-overlap check: both numbers come from the same fresh
	// run on the same machine, so the tolerance is a tight absolute
	// margin. Reports predating the adaptive controller carry no
	// adaptive data; skip with a note so the gate can bootstrap.
	for _, rw := range newRep.Rows {
		if rw.Name != *row {
			continue
		}
		if rw.AdaptiveSpeedup == 0 {
			fmt.Printf("benchgate: note: %s has no adaptive data for row %s; skipping adaptive-overlap check\n", *newPath, *row)
			break
		}
		short := rw.Prefetch.OverlapFrac - rw.Adaptive.OverlapFrac
		fmt.Printf("benchgate: %s overlap_frac static %.3f, adaptive %.3f (shortfall %.3f, limit %.3f)\n",
			*row, rw.Prefetch.OverlapFrac, rw.Adaptive.OverlapFrac, short, *maxAdDrop)
		if short > *maxAdDrop {
			fail("FAIL: adaptive prefetch hides %.3f less DMA overlap than the static window on %s (> %.3f); the controller is mistuned",
				short, *row, *maxAdDrop)
		}
		break
	}

	// Chunked-collective checks. The speedup comparison pairs two runs
	// from the same fresh report (machine speed cancels; the tolerance
	// absorbs scheduler noise). The overlap comparison crosses reports
	// but is an absolute fraction, so it too is machine-independent.
	// Reports predating the comm row carry no comm object; skip with a
	// note so the gate can bootstrap.
	if newRep.Comm == nil {
		fmt.Printf("benchgate: note: %s has no dp4-comm data; skipping chunked-collective checks\n", *newPath)
	} else {
		mono, chk := newRep.Comm.Monolithic.NsPerStep, newRep.Comm.Chunked.NsPerStep
		if mono <= 0 || chk <= 0 {
			die(fmt.Errorf("%s: dp4-comm has non-positive ns_per_step (monolithic %d, chunked %d)", *newPath, mono, chk))
		}
		slow := float64(chk-mono) / float64(mono)
		fmt.Printf("benchgate: dp4-comm monolithic %d, chunked %d ns/step (excess %.1f%%, limit %.0f%%)\n",
			mono, chk, 100*slow, 100**maxCommSlow)
		if slow > *maxCommSlow {
			fail("FAIL: chunked collectives run %.1f%% slower than the monolithic rendezvous (> %.0f%%); reduction is re-serialized",
				100*slow, 100**maxCommSlow)
		}
		if oldRep.Comm == nil {
			fmt.Printf("benchgate: note: baseline has no dp4-comm data; skipping comm-overlap check\n")
		} else {
			baseFrac, curFrac := oldRep.Comm.Chunked.CommOverlapFrac, newRep.Comm.Chunked.CommOverlapFrac
			fmt.Printf("benchgate: dp4-comm comm_overlap_frac baseline %.3f, current %.3f (drop %.3f, limit %.3f)\n",
				baseFrac, curFrac, baseFrac-curFrac, *maxCommDrop)
			if baseFrac-curFrac > *maxCommDrop {
				fail("FAIL: chunked comm overlap dropped %.3f > %.3f vs baseline; collectives no longer hide behind compute",
					baseFrac-curFrac, *maxCommDrop)
			}
		}
	}

	// Scaling check: two points of the same run, so machine speed
	// cancels out. The fresh report must have the curve; a missing
	// point means the benchmark was dropped, which is itself a failure.
	nsFrom, err := newRep.contentionNs(*newPath, *scaleFrom)
	if err != nil {
		die(err)
	}
	nsTo, err := newRep.contentionNs(*newPath, *scaleTo)
	if err != nil {
		die(err)
	}
	growth := float64(nsTo-nsFrom) / float64(nsFrom)
	fmt.Printf("benchgate: contention %d->%d devices %d -> %d ns/op (growth %.1f%%, limit %.0f%%)\n",
		*scaleFrom, *scaleTo, nsFrom, nsTo, 100*growth, 100**maxScale)
	if growth > *maxScale {
		fail("FAIL: Ensure hot path degrades %.1f%% from %d to %d devices (> %.0f%%); a cross-device lock is back on the claim path",
			100*growth, *scaleFrom, *scaleTo, 100**maxScale)
	}

	// Cross-report absolute check at the guarded point. Baselines
	// predating the contention curve are skipped with a note rather
	// than failed, so the gate can bootstrap.
	if baseNs, err := oldRep.contentionNs(*oldPath, *scaleTo); err != nil {
		fmt.Printf("benchgate: note: baseline has no contention data (%v); skipping cross-report check\n", err)
	} else {
		rg := float64(nsTo-baseNs) / float64(baseNs)
		fmt.Printf("benchgate: contention devs=%d baseline %d, current %d ns/op (growth %.1f%%, limit %.0f%%)\n",
			*scaleTo, baseNs, nsTo, 100*rg, 100**maxContend)
		if rg > *maxContend {
			fail("FAIL: %d-device Ensure ns/op regressed %.1f%% > %.0f%% vs baseline",
				*scaleTo, 100*rg, 100**maxContend)
		}
	}

	fmt.Println("benchgate: PASS")
}
