package analyzers

import (
	"go/ast"
	"go/types"
)

// Hygiene bundles two shallow-but-sharp checks that guard the
// executor's goroutine topology:
//
//   - mutexcopy: a value containing a sync.Mutex or sync.RWMutex
//     copied by value — parameter, result, receiver, range copy or
//     plain assignment from a dereference. The copy has its own lock
//     word, so two goroutines "sharing" the value serialize on
//     different mutexes; go vet's copylocks catches some of these,
//     but not lock-containing types behind this module's own structs
//     when passed through interfaces. Reported here so the whole
//     invariant suite lives in one place.
//   - ctxleak: `go` statements whose function body has no visible
//     shutdown path — no WaitGroup.Done, no select, no range over a
//     channel, no channel receive. Every long-lived goroutine in the
//     executor (dmaWorker, device workers, the nn pool) either drains
//     a channel that Close closes or signals a WaitGroup; a goroutine
//     with neither outlives its VM and trips the leak checks in
//     -race CI runs nondeterministically.
var Hygiene = &Analyzer{
	Name: "hygiene",
	Doc: "report lock-containing values copied by value, and goroutines " +
		"launched with no shutdown path (no WaitGroup.Done, select, channel receive or channel range)",
	Run: runHygiene,
}

func runHygiene(pass *Pass) error {
	runMutexCopy(pass)
	runCtxLeak(pass)
	return nil
}

// ----------------------------------------------------------- mutexcopy

// containsLock reports whether a value of type t embeds a mutex —
// directly, through struct fields, or through array elements. Pointers
// and interfaces stop the search: copying those copies a reference.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isMutex(t) {
		// isMutex tolerates pointers; a *sync.Mutex copy is fine.
		if _, isPtr := t.(*types.Pointer); isPtr {
			return false
		}
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

func runMutexCopy(pass *Pass) {
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		// By-value receivers and parameters.
		if fd.Recv != nil {
			for _, f := range fd.Recv.List {
				checkLockField(pass, f, "receiver")
			}
		}
		for _, f := range fd.Type.Params.List {
			checkLockField(pass, f, "parameter")
		}
		if fd.Type.Results != nil {
			for _, f := range fd.Type.Results.List {
				checkLockField(pass, f, "result")
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if t := pass.Info.TypeOf(n.Value); t != nil && containsLock(t) {
					pass.Reportf(n.Value.Pos(),
						"range copies %s, which contains a mutex; iterate by index or over pointers", typeName(t))
				}
			case *ast.AssignStmt:
				for i, r := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					// Copying through a dereference or another
					// variable duplicates the lock; composite
					// literals and function calls mint fresh values.
					switch r.(type) {
					case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
					default:
						continue
					}
					if isBlank(n.Lhs[i]) {
						continue
					}
					t := pass.Info.TypeOf(r)
					if t != nil && containsLock(t) {
						pass.Reportf(r.Pos(),
							"assignment copies %s, which contains a mutex", typeName(t))
					}
				}
			}
			return true
		})
	})
}

// checkLockField flags a by-value field (param/result/receiver) whose
// type contains a lock.
func checkLockField(pass *Pass, f *ast.Field, role string) {
	t := pass.Info.TypeOf(f.Type)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if containsLock(t) {
		pass.Reportf(f.Type.Pos(),
			"%s passes %s by value, copying its mutex; use a pointer", role, typeName(t))
	}
}

func typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// ------------------------------------------------------------- ctxleak

func runCtxLeak(pass *Pass) {
	// Map package-level functions and methods to their bodies so `go
	// vm.dmaWorker(d)` can be traced to the loop it runs.
	decls := make(map[types.Object]*ast.FuncDecl)
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		if obj := pass.Info.Defs[fd.Name]; obj != nil {
			decls[obj] = fd
		}
	})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goTargetBody(pass, decls, g.Call)
			if body == nil {
				return true // external or dynamic target: not checkable
			}
			if !hasShutdownPath(pass, body) {
				pass.Reportf(g.Pos(),
					"goroutine has no shutdown path (no WaitGroup.Done, select, channel receive or channel range); it will outlive its owner")
			}
			return true
		})
	}
}

// goTargetBody resolves the body the go statement will run, if it is
// visible in this package.
func goTargetBody(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[pass.Info.Uses[fun]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[pass.Info.Uses[fun.Sel]]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// hasShutdownPath reports whether the body contains any construct by
// which the goroutine can learn it should exit or signal that it has.
func hasShutdownPath(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if _, ok := methodOn(pass.Info, n, "sync", "WaitGroup", "Done"); ok {
				found = true
			}
			if _, ok := methodOn(pass.Info, n, "sync", "Cond", "Wait"); ok {
				// A Cond.Wait loop re-checks a condition the owner
				// can flip at shutdown (dmaWorker's quit flag).
				found = true
			}
		}
		return !found
	})
	return found
}
