package analyzers

import (
	"go/ast"
	"go/types"
)

// Hygiene is mutexcopy: a value containing a sync.Mutex or
// sync.RWMutex copied by value — parameter, result, receiver, range
// copy or plain assignment from a dereference. The copy has its own
// lock word, so two goroutines "sharing" the value serialize on
// different mutexes; go vet's copylocks catches some of these, but not
// lock-containing types behind this module's own structs when passed
// through interfaces. Reported here so the whole invariant suite lives
// in one place.
//
// The ctxleak heuristic that lived here through PR 8 — goroutines
// whose own body shows no shutdown construct — is superseded by the
// interprocedural chanlife pass, which follows the spawned function's
// whole call tree instead of stopping at its first call.
var Hygiene = &Analyzer{
	Name: "hygiene",
	Doc:  "report lock-containing values copied by value",
	Run:  runHygiene,
}

func runHygiene(pass *Pass) error {
	runMutexCopy(pass)
	return nil
}

// ----------------------------------------------------------- mutexcopy

// containsLock reports whether a value of type t embeds a mutex —
// directly, through struct fields, or through array elements. Pointers
// and interfaces stop the search: copying those copies a reference.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isMutex(t) {
		// isMutex tolerates pointers; a *sync.Mutex copy is fine.
		if _, isPtr := t.(*types.Pointer); isPtr {
			return false
		}
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

func runMutexCopy(pass *Pass) {
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		// By-value receivers and parameters.
		if fd.Recv != nil {
			for _, f := range fd.Recv.List {
				checkLockField(pass, f, "receiver")
			}
		}
		for _, f := range fd.Type.Params.List {
			checkLockField(pass, f, "parameter")
		}
		if fd.Type.Results != nil {
			for _, f := range fd.Type.Results.List {
				checkLockField(pass, f, "result")
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if t := pass.Info.TypeOf(n.Value); t != nil && containsLock(t) {
					pass.Reportf(n.Value.Pos(),
						"range copies %s, which contains a mutex; iterate by index or over pointers", typeName(t))
				}
			case *ast.AssignStmt:
				for i, r := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					// Copying through a dereference or another
					// variable duplicates the lock; composite
					// literals and function calls mint fresh values.
					switch r.(type) {
					case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
					default:
						continue
					}
					if isBlank(n.Lhs[i]) {
						continue
					}
					t := pass.Info.TypeOf(r)
					if t != nil && containsLock(t) {
						pass.Reportf(r.Pos(),
							"assignment copies %s, which contains a mutex", typeName(t))
					}
				}
			}
			return true
		})
	})
}

// checkLockField flags a by-value field (param/result/receiver) whose
// type contains a lock.
func checkLockField(pass *Pass, f *ast.Field, role string) {
	t := pass.Info.TypeOf(f.Type)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if containsLock(t) {
		pass.Reportf(f.Type.Pos(),
			"%s passes %s by value, copying its mutex; use a pointer", role, typeName(t))
	}
}

func typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

