package analyzers

import "testing"

func TestPinbalance(t *testing.T) {
	diags := runFixture(t, "pinbalance", Pinbalance)
	// Regression pins: one per leak shape.
	mustDiag(t, diags, "pinbalance", `pin on st taken at .* is not released on an error path`)
	mustDiag(t, diags, "pinbalance", `pin on b taken at .* is not released on an error path`)
	mustDiag(t, diags, "pinbalance", `pin on b taken at .* is not released on a path`)
}
