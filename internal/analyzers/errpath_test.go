package analyzers

import "testing"

func TestErrpath(t *testing.T) {
	diags := runFixture(t, "errpath", Errpath)
	// Regression pins: plain mutex, shard lock, read lock, snapshot
	// handle — each leaked on an error return, with a concrete path.
	mustDiag(t, diags, "errpath", `lock on s\.mu taken at .* is still held on an error path.*path: `)
	mustDiag(t, diags, "errpath", `lock on sh\.mu taken at .* is still held on an error path`)
	mustDiag(t, diags, "errpath", `lock on s\.rw taken at .* is still held on an error path`)
	mustDiag(t, diags, "errpath", `snapshot on snap taken at .* is still held on an error path`)
}
