package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lockhold enforces the executor's locking discipline (DESIGN.md §7,
// vm.go "Locking:" contract): mutexes like vm.mu and Manager.mu guard
// metadata only, so no goroutine may block while holding one — copy
// execution, channel waits and sleeps always run with the lock
// released. The analyzer tracks each function's lock state
// flow-sensitively and reports:
//
//   - blocking operations while a tracked mutex is held: channel send
//     or receive, range over a channel, select without a default,
//     time.Sleep, sync.WaitGroup.Wait, and VM.WaitIdle. sync.Cond.Wait
//     is exempt — it releases the mutex while parked.
//   - return paths that leak a held lock.
//
// The walker here joins branches by agreement: when two arms disagree
// about a mutex the state degrades to lsUnknown and reports stop.
// That keeps this pass quiet on release-on-one-arm shapes — exactly
// the `if err != nil { return err }` leak — which are errpath's
// jurisdiction now: the CFG engine (cfg.go, dataflow.go) re-checks
// every lock per path and reports the concrete leaking trace.
//
// Unexported helpers that run under the caller's lock declare it in
// their doc comment, and the analyzer honors those contracts: a doc
// matching "Requires mu held" or "mu held on entry" starts the
// receiver's mu in the held state; "Requires <param>.mu held" does the
// same for a parameter with a mu field (the sharded VM's per-device
// helpers take their vmShard explicitly). Returning with the lock held
// is then expected unless the doc also says "released on return", in
// which case every return path must have released it.
//
// Shard lock order: mutexes hanging off a type whose name ends in
// "Shard" (vmShard, devShard) follow the fixed-acquisition-order
// discipline of DESIGN.md §12 — no path may take a second shard lock
// while holding one, unless its doc comment declares the ascending
// device/shard order contract ("in ascending device order").
var Lockhold = &Analyzer{
	Name: "lockhold",
	Doc: "report blocking operations while a mutex is held, return paths " +
		"that leak a held lock, and nested shard locks without a declared " +
		"ascending-order contract; doc contracts like \"Requires mu held\" " +
		"set the expected entry/exit state",
	Run: runLockhold,
}

var (
	entryHeldRe = regexp.MustCompile(`(?i)\brequires\s+mu\s+held|\bmu\s+held\s+on\s+entry`)
	paramHeldRe = regexp.MustCompile(`(?i)\brequires\s+(\w+)\.mu\s+held`)
	releasedRe  = regexp.MustCompile(`(?i)\breleased\s+on\s+return`)
	// shardOrderRe is the doc-comment declaration that licenses holding
	// two shard locks at once, in ascending device-index order.
	shardOrderRe = regexp.MustCompile(`(?i)ascending\s+(device|shard)`)
	// blockingFunc names in-module functions that park the caller,
	// mapped to the label shown in the report.
	blockingFunc = map[string]string{
		"WaitIdle":   "drains async DMA",
		"waitSettle": "blocks on claim settle",
	}
)

// lockSt is one mutex's abstract state at a program point.
type lockSt int

const (
	lsUnlocked lockSt = iota
	lsLocked          // held; must be released before return
	lsDeferred        // held; a deferred Unlock releases it at return
	lsUnknown         // branches disagree; suppress reports until re-anchored
)

// lockKey identifies a mutex by the root variable it hangs off plus
// the selector path, so vm.mu in two functions with different
// receivers are tracked independently.
type lockKey struct {
	root types.Object
	path string
}

func runLockhold(pass *Pass) error {
	// Methods documented to take mu held and release it ("mu held on
	// entry, released on return") transfer lock ownership: a call site
	// transitions the receiver's mu to unlocked.
	releasers := map[types.Object]bool{}
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		if fd.Doc == nil || fd.Recv == nil {
			return
		}
		doc := fd.Doc.Text()
		if entryHeldRe.MatchString(doc) && releasedRe.MatchString(doc) {
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				releasers[obj] = true
			}
		}
	})
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		w := &lockWalker{pass: pass, releasers: releasers, state: map[lockKey]lockSt{},
			exitOK: map[lockKey]bool{}, shardHeld: map[lockKey]bool{}}
		if fd.Doc != nil {
			doc := fd.Doc.Text()
			w.shardNestOK = shardOrderRe.MatchString(doc)
			// Receiver contract: helpers documented to run under the
			// caller's lock start with the receiver's mu held.
			if entryHeldRe.MatchString(doc) && fd.Recv != nil &&
				len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recv := pass.Info.Defs[fd.Recv.List[0].Names[0]]
				if recv != nil && hasMutexField(recv.Type(), "mu") {
					k := lockKey{root: recv, path: "mu"}
					w.state[k] = lsLocked
					w.exitOK[k] = !releasedRe.MatchString(doc)
				}
			}
			// Parameter contract: "Requires sh.mu held" binds to the
			// parameter of that name (the sharded helpers pass their
			// vmShard/devShard explicitly).
			for _, m := range paramHeldRe.FindAllStringSubmatch(doc, -1) {
				obj := paramNamed(pass, fd, m[1])
				if obj == nil || !hasMutexField(obj.Type(), "mu") {
					continue
				}
				k := lockKey{root: obj, path: "mu"}
				w.state[k] = lsLocked
				w.exitOK[k] = !releasedRe.MatchString(doc)
				if isShardOwner(obj.Type()) {
					w.shardHeld[k] = true
				}
			}
		}
		if term := w.walkStmts(fd.Body.List); !term {
			w.checkLeak(fd.Body.Rbrace)
		}
	})
	return nil
}

// paramNamed resolves a function parameter by name.
func paramNamed(pass *Pass, fd *ast.FuncDecl, name string) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, f := range fd.Type.Params.List {
		for _, id := range f.Names {
			if id.Name == name {
				return pass.Info.Defs[id]
			}
		}
	}
	return nil
}

// isShardOwner reports whether t (after pointers) is a named type
// participating in the shard lock-order discipline — its name ends in
// "Shard" (vmShard, devShard).
func isShardOwner(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && strings.HasSuffix(n.Obj().Name(), "Shard")
}

// hasMutexField reports whether t (after pointers) is a struct with a
// mutex-typed field of the given name.
func hasMutexField(t types.Type, name string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if f.Name() == name && isMutex(f.Type()) {
			return true
		}
	}
	return false
}

type lockWalker struct {
	pass        *Pass
	releasers   map[types.Object]bool // methods whose contract releases the receiver's mu
	state       map[lockKey]lockSt
	exitOK      map[lockKey]bool // contract allows returning with this mutex held
	shardHeld   map[lockKey]bool // keys known to be shard locks (per-device mutexes)
	shardNestOK bool             // doc declares the ascending shard-order contract
}

// keyOf resolves a mutex receiver expression (vm.mu, m.mu, mu) to a
// tracking key. Selector chains must bottom out in a plain identifier.
func (w *lockWalker) keyOf(e ast.Expr) (lockKey, bool) {
	path := ""
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			if path == "" {
				path = x.Sel.Name
			} else {
				path = x.Sel.Name + "." + path
			}
			e = x.X
		case *ast.Ident:
			obj := w.pass.Info.Uses[x]
			if obj == nil {
				obj = w.pass.Info.Defs[x]
			}
			if obj == nil {
				return lockKey{}, false
			}
			if path == "" {
				path = x.Name
			}
			return lockKey{root: obj, path: path}, true
		default:
			return lockKey{}, false
		}
	}
}

// classify matches a call against the mutex Lock/Unlock surface.
func (w *lockWalker) classify(call *ast.CallExpr) (k lockKey, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, "", false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "Unlock" && name != "RLock" && name != "RUnlock" {
		return lockKey{}, "", false
	}
	if t := w.pass.Info.TypeOf(sel.X); t == nil || !isMutex(t) {
		return lockKey{}, "", false
	}
	k, kok := w.keyOf(sel.X)
	if !kok {
		return lockKey{}, "", false
	}
	switch name {
	case "Lock", "RLock":
		return k, "lock", true
	default:
		return k, "unlock", true
	}
}

// heldMutex returns a description of some currently-held mutex, if any.
func (w *lockWalker) heldMutex() (string, bool) {
	for k, st := range w.state {
		if st == lsLocked || st == lsDeferred {
			return k.path, true
		}
	}
	return "", false
}

func (w *lockWalker) reportBlocking(pos token.Pos, what string) {
	if mu, held := w.heldMutex(); held {
		w.pass.Reportf(pos, "%s while %s is held; blocking operations must run with the lock released", what, mu)
	}
}

func (w *lockWalker) checkLeak(pos token.Pos) {
	for k, st := range w.state {
		if st == lsLocked && !w.exitOK[k] {
			w.pass.Reportf(pos, "return path leaks held lock %s (no unlock or deferred unlock on this path)", k.path)
		}
	}
}

// handleExpr scans an expression tree for lock transitions, receives
// and blocking calls. Func literals are skipped: their bodies run at
// some other time, under some other lock state.
func (w *lockWalker) handleExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportBlocking(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if k, op, ok := w.classify(n); ok {
				if op == "lock" {
					if w.isShardLock(n) {
						w.checkShardNesting(n.Pos(), k)
						w.shardHeld[k] = true
					}
					w.state[k] = lsLocked
				} else {
					w.state[k] = lsUnlocked
				}
				return false
			}
			if _, ok := methodOn(w.pass.Info, n, "sync", "Cond", "Wait"); ok {
				return false // Cond.Wait releases the mutex while parked
			}
			if _, ok := methodOn(w.pass.Info, n, "sync", "WaitGroup", "Wait"); ok {
				w.reportBlocking(n.Pos(), "sync.WaitGroup.Wait")
			}
			if pkgFunc(w.pass.Info, n, "time", "Sleep") {
				w.reportBlocking(n.Pos(), "time.Sleep")
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if desc, blocks := blockingFunc[sel.Sel.Name]; blocks {
					w.reportBlocking(n.Pos(), sel.Sel.Name+" ("+desc+")")
				}
			}
			w.applyContract(n)
		}
		return true
	})
}

// isShardLock reports whether a Lock call's mutex hangs off a
// shard-discipline type (x.mu.Lock() with x a *vmShard/*devShard).
func (w *lockWalker) isShardLock(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isShardOwner(w.pass.Info.TypeOf(muSel.X))
}

// checkShardNesting reports taking a second shard lock while one is
// held, unless the function's doc declares the ascending-order
// contract. Per-device shards must never deadlock against each other,
// so nesting is banned by default (DESIGN.md §12: visit shards one at
// a time, in ascending device order).
func (w *lockWalker) checkShardNesting(pos token.Pos, k lockKey) {
	if w.shardNestOK {
		return
	}
	for k2, isShard := range w.shardHeld {
		if !isShard || k2 == k {
			continue
		}
		if st := w.state[k2]; st == lsLocked || st == lsDeferred {
			w.pass.Reportf(pos,
				"second shard lock %s.mu acquired while %s.mu is held; acquire shards one at a time or declare the ascending device order contract in the doc comment",
				k.root.Name(), k2.root.Name())
			return
		}
	}
}

// applyContract transitions the receiver's mu to unlocked when the
// call resolves to a method whose doc contract releases it on return
// (swapIn, moveP2P: "mu held on entry, released on return").
func (w *lockWalker) applyContract(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !w.releasers[w.pass.Info.Uses[sel.Sel]] {
		return
	}
	k, ok := w.keyOf(sel.X)
	if !ok {
		return
	}
	if _, bare := sel.X.(*ast.Ident); bare {
		k.path = "mu" // keyOf reports a bare receiver as its own name
	} else {
		k.path += ".mu"
	}
	w.state[k] = lsUnlocked
}

func (w *lockWalker) branch() map[lockKey]lockSt {
	c := make(map[lockKey]lockSt, len(w.state))
	for k, v := range w.state {
		c[k] = v
	}
	return c
}

// merge folds a branch's exit state into the current one: agreement
// keeps the value, disagreement degrades to lsUnknown (reports are
// suppressed rather than guessed).
func (w *lockWalker) merge(other map[lockKey]lockSt) {
	for k, v := range other {
		if cur, ok := w.state[k]; !ok {
			w.state[k] = v
		} else if cur != v {
			w.state[k] = lsUnknown
		}
	}
	for k, cur := range w.state {
		if _, ok := other[k]; !ok && cur != lsUnlocked {
			w.state[k] = lsUnknown
		}
	}
}

// walkStmts walks a statement list in order, returning true when the
// list definitely terminates the enclosing path (return, or an
// infinite loop with no break).
func (w *lockWalker) walkStmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.walkStmt(s) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.handleExpr(s.X)
	case *ast.SendStmt:
		w.reportBlocking(s.Arrow, "channel send")
		w.handleExpr(s.Chan)
		w.handleExpr(s.Value)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.handleExpr(r)
		}
		for _, l := range s.Lhs {
			w.handleExpr(l)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.handleExpr(v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.handleExpr(s.X)
	case *ast.DeferStmt:
		if k, op, ok := w.classify(s.Call); ok && op == "unlock" {
			w.state[k] = lsDeferred
		}
		// Other deferred calls run at return time; their bodies are
		// not analyzed under the current lock state.
	case *ast.GoStmt:
		// The goroutine runs concurrently under its own lock state;
		// hygiene's ctxleak check owns go-statement discipline.
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.handleExpr(r)
		}
		w.checkLeak(s.Pos())
		return true
	case *ast.BranchStmt:
		// break/continue/goto end the linear walk of this list; the
		// loop-level merge approximates where control lands.
		return s.Tok != token.FALLTHROUGH
	case *ast.BlockStmt:
		return w.walkStmts(s.List)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.handleExpr(s.Cond)
		entry := w.branch()
		thenTerm := w.walkStmts(s.Body.List)
		thenState := w.state
		w.state = entry
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else)
		}
		if thenTerm && elseTerm {
			return true
		}
		if thenTerm {
			return false // keep else/fallthrough state
		}
		if elseTerm {
			w.state = thenState
			return false
		}
		elseState := w.state
		w.state = thenState
		w.merge(elseState)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.handleExpr(s.Cond)
		entry := w.branch()
		bodyTerm := w.walkStmts(s.Body.List)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
		bodyState := w.state
		w.state = entry
		if !bodyTerm {
			w.merge(bodyState)
		}
		if s.Cond == nil && !hasBreak(s.Body) {
			return true // for{} with no break: code after is unreachable
		}
	case *ast.RangeStmt:
		w.handleExpr(s.X)
		if t := w.pass.Info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.reportBlocking(s.Pos(), "range over channel")
			}
		}
		entry := w.branch()
		bodyTerm := w.walkStmts(s.Body.List)
		bodyState := w.state
		w.state = entry
		if !bodyTerm {
			w.merge(bodyState)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.handleExpr(s.Tag)
		w.walkCases(s.Body, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkCases(s.Body, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		if !hasDefaultComm(s.Body) {
			w.reportBlocking(s.Pos(), "select without default")
		}
		w.walkCases(s.Body, true)
	}
	return false
}

// walkCases analyzes each case clause of a switch/select body from the
// shared entry state and merges the non-terminating exits. When no
// default exists, the entry state itself is a possible exit.
func (w *lockWalker) walkCases(body *ast.BlockStmt, hasDefault bool) {
	entry := w.branch()
	var exits []map[lockKey]lockSt
	for _, c := range body.List {
		w.state = w.copyOf(entry)
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.handleExpr(e)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				// The winning comm op itself was already accounted for
				// by the select-level blocking report; walk it only for
				// lock transitions hidden in sub-expressions.
				w.walkCommStmt(c.Comm)
			}
			stmts = c.Body
		}
		if !w.walkStmts(stmts) {
			exits = append(exits, w.state)
		}
	}
	if !hasDefault || len(exits) == 0 {
		exits = append(exits, entry)
	}
	w.state = exits[0]
	for _, e := range exits[1:] {
		w.merge(e)
	}
}

// walkCommStmt handles a select comm statement without re-reporting
// its send/receive as blocking (the select itself was reported).
func (w *lockWalker) walkCommStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.SendStmt:
		w.handleExpr(s.Value)
	case *ast.AssignStmt:
		// <-ch on the RHS: skip the receive, walk nothing else risky.
	case *ast.ExprStmt:
		// bare <-ch
	}
}

func (w *lockWalker) copyOf(m map[lockKey]lockSt) map[lockKey]lockSt {
	c := make(map[lockKey]lockSt, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// hasDefaultClause reports whether a switch body has a default case.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// hasDefaultComm reports whether a select body has a default clause.
func hasDefaultComm(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// hasBreak reports whether body contains a break that exits this loop.
// Unlabeled breaks inside nested loops, switches and selects bind to
// those constructs instead; labeled breaks are conservatively assumed
// to exit.
func hasBreak(body *ast.BlockStmt) bool {
	var scan func(stmts []ast.Stmt) bool
	var scanStmt func(s ast.Stmt) bool
	scanStmt = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.BranchStmt:
			return s.Tok == token.BREAK
		case *ast.BlockStmt:
			return scan(s.List)
		case *ast.LabeledStmt:
			return scanStmt(s.Stmt)
		case *ast.IfStmt:
			if scan(s.Body.List) {
				return true
			}
			if s.Else != nil {
				return scanStmt(s.Else)
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.BREAK && b.Label != nil {
					found = true
				}
				return !found
			})
			return found
		}
		return false
	}
	scan = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			if scanStmt(s) {
				return true
			}
		}
		return false
	}
	return scan(body.List)
}
