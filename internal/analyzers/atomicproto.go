package analyzers

// Atomicproto proves that internal/claimword's source and the
// transition table schedcheck's DMA model explores describe the same
// machine. The model applies claimword's compiled transitions, so a
// test alone cannot catch claimword drifting — the model drifts with
// it. schedcheck therefore declares the machine a second time as an
// independent spec (schedcheck.ProtoTable), and this pass extracts the
// transition table from claimword's SOURCE by abstract interpretation
// of its pure functions — no execution, no import of the code under
// check — and diffs the two field by field: same accepted states, same
// produced words, same flag effects, over the whole bounded domain
// (every state × flag combination × pin count 0–2, every argument
// tuple).
//
// The claimword functions are deliberately pure and first-order —
// if/switch/return, integer bit-ops, method calls on Word — which is
// what makes exact extraction tractable. If a future edit introduces a
// construct the interpreter cannot evaluate, that is reported too:
// "cannot extract" is a gate failure, not a silent skip, so the
// protocol can never drift out from under the verifier unnoticed.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"harmony/internal/schedcheck"
)

var Atomicproto = &Analyzer{
	Name: "atomicproto",
	Doc: "extract the claim/commit/settle/pin transition table from internal/claimword's source " +
		"and cross-check it field-by-field against the table schedcheck's DMA model explores",
	Run: runAtomicproto,
}

func runAtomicproto(pass *Pass) error {
	path := pass.Pkg.Path()
	if !isClaimwordPath(path) && path != "atomicproto" {
		return nil
	}
	in := newWordInterp(pass)
	for _, op := range schedcheck.ProtoOps() {
		fd := in.funcs[op.Name]
		if fd == nil {
			pass.Reportf(pass.Files[0].Package,
				"claimword transition %s is missing, but the schedcheck DMA model declares it; the code and the model must describe the same machine", op.Name)
		}
	}
	type mismatch struct {
		total, bad int
		first      *schedcheck.ProtoEntry
		got        uint64
		gotOK      bool
	}
	mm := make(map[string]*mismatch)
	table := schedcheck.ProtoTable()
	for i := range table {
		e := &table[i]
		fd := in.funcs[e.Op]
		if fd == nil {
			continue // already reported above
		}
		m := mm[e.Op]
		if m == nil {
			m = &mismatch{}
			mm[e.Op] = m
		}
		m.total++
		got, ok, err := in.apply(fd, e.In, e.Args)
		if err != nil {
			pass.Reportf(fd.Pos(),
				"cannot extract %s's transition table from source (%v); keep claimword's transitions pure and first-order so the protocol stays verifiable", e.Op, err)
			delete(mm, e.Op)
			in.funcs[e.Op] = nil // stop after first extraction error per op
			continue
		}
		if m.bad == 0 && (got != e.Out || ok != e.OK) {
			m.first, m.got, m.gotOK = e, got, ok
		}
		if got != e.Out || ok != e.OK {
			m.bad++
		}
	}
	for _, op := range schedcheck.ProtoOps() {
		m := mm[op.Name]
		if m == nil || m.bad == 0 {
			continue
		}
		e := m.first
		pass.Reportf(in.funcs[op.Name].Pos(),
			"claimword %s diverges from the schedcheck DMA-model table on %d/%d transitions; first: %s(word %#x%s) = (%#x, %v) in source, (%#x, %v) in the model — the code and the model must change together",
			op.Name, m.bad, m.total, op.Name, e.In, argList(op, e.Args), m.got, m.gotOK, e.Out, e.OK)
	}
	return nil
}

func argList(op schedcheck.ProtoOp, args []int64) string {
	s := ""
	for i, a := range args {
		name := ""
		if i < len(op.ArgNames) {
			name = op.ArgNames[i] + "="
		}
		s += fmt.Sprintf(", %s%d", name, a)
	}
	return s
}

// ------------------------------------------------- the word interpreter

// wordInterp abstractly interprets claimword's pure transition
// functions. Values are int64 (the bounded domain keeps every
// intermediate far below 2^28, so signedness never bites); booleans
// are 0/1.
type wordInterp struct {
	pass    *Pass
	funcs   map[string]*ast.FuncDecl // package-level functions
	methods map[string]*ast.FuncDecl // methods on the Word type
}

func newWordInterp(pass *Pass) *wordInterp {
	in := &wordInterp{
		pass:    pass,
		funcs:   make(map[string]*ast.FuncDecl),
		methods: make(map[string]*ast.FuncDecl),
	}
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		if fd.Recv == nil {
			in.funcs[fd.Name.Name] = fd
			return
		}
		t := pass.Info.TypeOf(fd.Recv.List[0].Type)
		if namedHere(t, "Word") {
			in.methods[fd.Name.Name] = fd
		}
	})
	return in
}

// namedHere reports a (possibly pointer-to) named type with the given
// name, whatever package it is being checked in.
func namedHere(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}

// apply runs one transition function on (word, args) and returns its
// (Word, bool) results.
func (in *wordInterp) apply(fd *ast.FuncDecl, word uint64, args []int64) (uint64, bool, error) {
	env := make(map[string]int64)
	params := flattenFields(fd.Type.Params)
	if len(params) != len(args)+1 {
		return 0, false, fmt.Errorf("%s takes %d parameters, model supplies %d", fd.Name.Name, len(params), len(args)+1)
	}
	env[params[0]] = int64(word)
	for i, a := range args {
		env[params[i+1]] = a
	}
	rets, err := in.execStmts(fd.Body.List, env)
	if err != nil {
		return 0, false, err
	}
	if rets == nil {
		return 0, false, fmt.Errorf("%s fell off the end without returning", fd.Name.Name)
	}
	if len(rets) != 2 {
		return 0, false, fmt.Errorf("%s returned %d values, want (Word, bool)", fd.Name.Name, len(rets))
	}
	return uint64(rets[0]), rets[1] != 0, nil
}

func flattenFields(fl *ast.FieldList) []string {
	var names []string
	if fl == nil {
		return nil
	}
	for _, f := range fl.List {
		for _, n := range f.Names {
			names = append(names, n.Name)
		}
	}
	return names
}

// execStmts executes statements; a non-nil result slice is the
// function's return values.
func (in *wordInterp) execStmts(list []ast.Stmt, env map[string]int64) ([]int64, error) {
	for _, s := range list {
		rets, err := in.execStmt(s, env)
		if err != nil || rets != nil {
			return rets, err
		}
	}
	return nil, nil
}

func (in *wordInterp) execStmt(s ast.Stmt, env map[string]int64) ([]int64, error) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		var out []int64
		for _, e := range s.Results {
			v, err := in.eval(e, env)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		if out == nil {
			out = []int64{} // non-nil: "returned, zero values"
		}
		return out, nil
	case *ast.IfStmt:
		if s.Init != nil {
			if _, err := in.execStmt(s.Init, env); err != nil {
				return nil, err
			}
		}
		cond, err := in.eval(s.Cond, env)
		if err != nil {
			return nil, err
		}
		if cond != 0 {
			return in.execStmts(s.Body.List, env)
		}
		if s.Else != nil {
			return in.execStmt(s.Else, env)
		}
		return nil, nil
	case *ast.BlockStmt:
		return in.execStmts(s.List, env)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return nil, fmt.Errorf("unsupported multi-assign at %s", in.posOf(s.Pos()))
		}
		id, ok := s.Lhs[0].(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("unsupported assignment target at %s", in.posOf(s.Pos()))
		}
		v, err := in.eval(s.Rhs[0], env)
		if err != nil {
			return nil, err
		}
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			env[id.Name] = v
		case token.OR_ASSIGN:
			env[id.Name] |= v
		case token.AND_ASSIGN:
			env[id.Name] &= v
		case token.AND_NOT_ASSIGN:
			env[id.Name] &^= v
		case token.ADD_ASSIGN:
			env[id.Name] += v
		case token.SUB_ASSIGN:
			env[id.Name] -= v
		case token.XOR_ASSIGN:
			env[id.Name] ^= v
		default:
			return nil, fmt.Errorf("unsupported assignment %s at %s", s.Tok, in.posOf(s.Pos()))
		}
		return nil, nil
	case *ast.SwitchStmt:
		if s.Init != nil {
			if _, err := in.execStmt(s.Init, env); err != nil {
				return nil, err
			}
		}
		var tag int64 = 1 // tagless switch: first true case wins
		if s.Tag != nil {
			v, err := in.eval(s.Tag, env)
			if err != nil {
				return nil, err
			}
			tag = v
		}
		var deflt *ast.CaseClause
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				deflt = cc
				continue
			}
			for _, e := range cc.List {
				v, err := in.eval(e, env)
				if err != nil {
					return nil, err
				}
				if v == tag {
					return in.execStmts(cc.Body, env)
				}
			}
		}
		if deflt != nil {
			return in.execStmts(deflt.Body, env)
		}
		return nil, nil
	case *ast.ExprStmt:
		_, err := in.eval(s.X, env)
		return nil, err
	default:
		return nil, fmt.Errorf("unsupported statement %T at %s", s, in.posOf(s.Pos()))
	}
}

func (in *wordInterp) posOf(p token.Pos) string {
	pos := in.pass.Fset.Position(p)
	return fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line)
}

// eval evaluates one expression. Constants (stateMask, FlagAsync,
// NeedEmpty, pinLimit, untyped literals) come straight from the type
// checker's folded values, so the interpreter never re-implements
// constant arithmetic.
func (in *wordInterp) eval(e ast.Expr, env map[string]int64) (int64, error) {
	if tv, ok := in.pass.Info.Types[e]; ok && tv.Value != nil {
		switch tv.Value.Kind() {
		case constant.Int:
			v, exact := constant.Int64Val(tv.Value)
			if !exact {
				return 0, fmt.Errorf("constant overflows int64 at %s", in.posOf(e.Pos()))
			}
			return v, nil
		case constant.Bool:
			if constant.BoolVal(tv.Value) {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("unsupported constant kind at %s", in.posOf(e.Pos()))
	}
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "true" {
			return 1, nil
		}
		if e.Name == "false" {
			return 0, nil
		}
		v, ok := env[e.Name]
		if !ok {
			return 0, fmt.Errorf("unbound identifier %s at %s", e.Name, in.posOf(e.Pos()))
		}
		return v, nil
	case *ast.ParenExpr:
		return in.eval(e.X, env)
	case *ast.UnaryExpr:
		v, err := in.eval(e.X, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case token.NOT:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case token.SUB:
			return -v, nil
		case token.ADD:
			return v, nil
		}
		return 0, fmt.Errorf("unsupported unary %s at %s", e.Op, in.posOf(e.Pos()))
	case *ast.BinaryExpr:
		return in.binary(e, env)
	case *ast.CallExpr:
		return in.callExpr(e, env)
	case *ast.SelectorExpr:
		// Qualified constant from another package would land here if
		// not folded; claimword has none.
		return 0, fmt.Errorf("unsupported selector %s at %s", exprString(e), in.posOf(e.Pos()))
	}
	return 0, fmt.Errorf("unsupported expression %T at %s", e, in.posOf(e.Pos()))
}

func (in *wordInterp) binary(e *ast.BinaryExpr, env map[string]int64) (int64, error) {
	x, err := in.eval(e.X, env)
	if err != nil {
		return 0, err
	}
	// Short-circuit before evaluating the right side, matching Go.
	switch e.Op {
	case token.LAND:
		if x == 0 {
			return 0, nil
		}
	case token.LOR:
		if x != 0 {
			return 1, nil
		}
	}
	y, err := in.eval(e.Y, env)
	if err != nil {
		return 0, err
	}
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch e.Op {
	case token.AND:
		return x & y, nil
	case token.OR:
		return x | y, nil
	case token.XOR:
		return x ^ y, nil
	case token.AND_NOT:
		return x &^ y, nil
	case token.SHL:
		return x << uint(y), nil
	case token.SHR:
		return x >> uint(y), nil
	case token.ADD:
		return x + y, nil
	case token.SUB:
		return x - y, nil
	case token.MUL:
		return x * y, nil
	case token.EQL:
		return b2i(x == y), nil
	case token.NEQ:
		return b2i(x != y), nil
	case token.LSS:
		return b2i(x < y), nil
	case token.GTR:
		return b2i(x > y), nil
	case token.LEQ:
		return b2i(x <= y), nil
	case token.GEQ:
		return b2i(x >= y), nil
	case token.LAND:
		return b2i(y != 0), nil
	case token.LOR:
		return b2i(y != 0), nil
	}
	return 0, fmt.Errorf("unsupported operator %s at %s", e.Op, in.posOf(e.Pos()))
}

func (in *wordInterp) callExpr(call *ast.CallExpr, env map[string]int64) (int64, error) {
	// Type conversion (Word(x), State(x), int(x)): identity on the
	// int64 domain.
	if tv, ok := in.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return 0, fmt.Errorf("unsupported conversion at %s", in.posOf(call.Pos()))
		}
		return in.eval(call.Args[0], env)
	}
	// Method call on a Word value: w.State(), w.Pins(), n.withPins(p).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		fd := in.methods[sel.Sel.Name]
		if fd == nil {
			return 0, fmt.Errorf("call to unextractable method %s at %s", sel.Sel.Name, in.posOf(call.Pos()))
		}
		recv, err := in.eval(sel.X, env)
		if err != nil {
			return 0, err
		}
		menv := make(map[string]int64)
		if names := flattenFields(fd.Recv); len(names) == 1 {
			menv[names[0]] = recv
		}
		params := flattenFields(fd.Type.Params)
		if len(params) != len(call.Args) {
			return 0, fmt.Errorf("argument count mismatch calling %s at %s", sel.Sel.Name, in.posOf(call.Pos()))
		}
		for i, a := range call.Args {
			v, err := in.eval(a, env)
			if err != nil {
				return 0, err
			}
			menv[params[i]] = v
		}
		rets, err := in.execStmts(fd.Body.List, menv)
		if err != nil {
			return 0, err
		}
		if len(rets) != 1 {
			return 0, fmt.Errorf("%s returned %d values inside an expression at %s", sel.Sel.Name, len(rets), in.posOf(call.Pos()))
		}
		return rets[0], nil
	}
	return 0, fmt.Errorf("unsupported call at %s", in.posOf(call.Pos()))
}
