package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// AdaptInputs guards the adaptive-prefetch / online-retune determinism
// contract (DESIGN.md §13): every adaptation decision must be a pure
// function of step-counter-keyed state, so two seeded runs emit
// identical window-resize decision logs and retunes replay from the
// logged profile alone. The determinism analyzer already bans these
// constructs across the whole deterministic core, but internal/tuner
// sits outside that core — it measures wall time on purpose — and
// there the line runs through individual functions: measurement may
// read the clock, decisions may not. This pass draws that line
// lexically: inside any function whose name says it adapts or retunes
// (adaptStep, adaptTick, armAdaptive, retuneMoves, Retune, ...), it
// forbids
//
//   - wall-clock reads (time.Now, time.Since, time.Until): a decision
//     keyed to elapsed time diverges across runs and machines;
//   - math/rand package-level state: interleaving-ordered and
//     unseedable per component;
//   - map iteration: Go randomizes range order per run, so any
//     decision folded over a ranged map is run-dependent (the
//     prefetcher's per-step `seen` set is lookup/insert only for
//     exactly this reason).
//
// Scope: internal/exec and internal/tuner, where the controller and
// the retuner live.
var AdaptInputs = &Analyzer{
	Name: "adaptinputs",
	Doc: "forbid wall-clock reads, math/rand global state and map iteration " +
		"inside adaptation/retune decision functions (internal/{exec,tuner})",
	Run: runAdaptInputs,
}

// adaptScope lists the package path suffixes in scope; as in the
// determinism pass, exact base names match too so fixture packages
// load under their own name.
var adaptScope = []string{"internal/exec", "internal/tuner"}

func inAdaptScope(path string) bool {
	if path == "adaptinputs" { // fixture package
		return true
	}
	for _, s := range adaptScope {
		if strings.HasSuffix(path, s) {
			return true
		}
		if base := s[strings.LastIndex(s, "/")+1:]; path == base {
			return true
		}
	}
	return false
}

// adaptFuncRe matches the names of functions that take adaptation or
// retune decisions. Anything the controller or retuner exports or
// calls for a decision is named to match; helpers that must stay
// exempt (profile measurement, stats accessors) must not be.
var adaptFuncRe = regexp.MustCompile(`(?i)(adapt|retune)`)

func runAdaptInputs(pass *Pass) error {
	if !inAdaptScope(pass.Pkg.Path()) {
		return nil
	}
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		if !adaptFuncRe.MatchString(fd.Name.Name) {
			return
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for fn := range wallClockFuncs {
					if pkgFunc(pass.Info, n, "time", fn) {
						pass.Reportf(n.Pos(),
							"time.%s feeds adaptation decision %s; key decisions to the step counter, not wall time", fn, name)
					}
				}
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok {
					if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "math/rand" {
						if isRandGlobal(pass.Info, n) {
							pass.Reportf(n.Pos(),
								"math/rand global state (rand.%s) feeds adaptation decision %s; decisions must replay from logged inputs", n.Sel.Name, name)
						}
					}
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"map iteration inside adaptation decision %s; range order is randomized per run — iterate a slice in fixed order", name)
					}
				}
			}
			return true
		})
	})
	return nil
}
