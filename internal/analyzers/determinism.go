package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the repo's central correctness property: given a
// seed, a schedule and a fault trace, training is bit-exact across
// runs and across goroutine interleavings (ROADMAP north star; the
// fault-recovery tests replay mid-iteration and diff weights exactly).
// Three constructs silently break that property and are therefore
// banned from the deterministic core — internal/sched, internal/exec,
// internal/nn, internal/fault, internal/sim, internal/collective,
// internal/graph and internal/schedcheck:
//
//   - wall-clock reads (time.Now, time.Since, time.Until): any value
//     derived from them differs across runs. Timing belongs behind
//     trace.Clock, injected at the edges, so the deterministic path
//     never observes it.
//   - math/rand package-level state (rand.Intn, rand.Float64,
//     rand.Seed, ...): the global source is shared, lock-ordered by
//     interleaving, and unseedable per-component. Use an explicit
//     *rand.Rand threaded from the config seed.
//   - map iteration: Go randomizes range order per run. Iterating a
//     map to pick a victim, order work or accumulate floats makes the
//     result interleaving-dependent (the waitableInFlight eviction
//     scan regressed exactly this way before moving to the LRU list).
//
// Uses with no scheduling consequence (pure logging, trace recording)
// are documented case by case with //lint:allow determinism <reason>.
//
// The per-package pass is lexical; the whole-program pass adds
// summary-based taint flow on top: a function outside the core that
// reaches time.Now or global rand at ANY call depth must not be called
// from inside the core, and a function taking adaptation/retune
// decisions must not call anything tainted at all. Interface calls
// (trace.Clock) do not propagate taint — that interface exists exactly
// so timing can be injected at the edges.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, math/rand global state and map iteration " +
		"in the deterministic core (internal/{sched,exec,nn,fault,sim,collective,graph,schedcheck}), " +
		"and taint flow of wall-clock/rand values into the core or into adapt/retune decisions through any call chain",
	Run:        runDeterminism,
	RunProject: runDeterminismTaint,
}

// deterministicCore lists the package path suffixes in scope. Matching
// by suffix (or exact base name, for fixtures) rather than full path
// keeps the analyzer independent of the module name.
var deterministicCore = []string{
	"internal/sched", "internal/exec", "internal/nn", "internal/fault",
	// The discrete-event engine, collective algorithms and task-graph
	// builder feed every simulated result; the static verifier's
	// counterexamples must reproduce bit-exactly to be debuggable.
	"internal/sim", "internal/collective", "internal/graph", "internal/schedcheck",
}

func inDeterministicCore(path string) bool {
	for _, s := range deterministicCore {
		if strings.HasSuffix(path, s) {
			return true
		}
		if base := s[strings.LastIndex(s, "/")+1:]; path == base {
			return true
		}
	}
	return false
}

// wallClockFuncs are the time package functions that read the real
// clock. time.Sleep is lockhold's concern; types like time.Duration
// and constructors like time.Date are deterministic and allowed.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(pass *Pass) error {
	if !inDeterministicCore(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for name := range wallClockFuncs {
					if pkgFunc(pass.Info, n, "time", name) {
						pass.Reportf(n.Pos(),
							"time.%s in the deterministic core; wall-clock reads must go through an injected trace.Clock", name)
					}
				}
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok {
					if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "math/rand" {
						if isRandGlobal(pass.Info, n) {
							pass.Reportf(n.Pos(),
								"math/rand global state (rand.%s) in the deterministic core; thread an explicit *rand.Rand from the config seed", n.Sel.Name)
						}
					}
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"map iteration in the deterministic core; range order is randomized per run — iterate a sorted key slice or an ordered structure instead")
					}
				}
			}
			return true
		})
	}
	return nil
}

// runDeterminismTaint is the summary-based upgrade: instead of
// spotting time.Now lexically, it follows wall-clock/rand values
// through the call graph. Two sinks:
//
//   - a function in the deterministic core calling an out-of-core
//     function that reaches a taint source at any depth (the callee's
//     own body is outside the lexical rule's scope, so PR-4's pass
//     never saw it);
//   - an adaptation/retune decision function (adaptFuncRe, the
//     adaptinputs scope) calling ANY tainted function — decisions must
//     replay from logged inputs alone, wherever the helper lives.
//
// Only statically resolvable calls propagate: routing time through the
// trace.Clock interface remains the sanctioned boundary.
func runDeterminismTaint(pass *ProjectPass) error {
	prog := pass.Prog
	for _, k := range prog.Order {
		s := prog.Funcs[k]
		coreCaller := inDeterministicCore(s.Key.Pkg)
		adaptCaller := inAdaptScope(s.Key.Pkg) && adaptFuncRe.MatchString(s.Key.Name)
		if !coreCaller && !adaptCaller {
			continue
		}
		for _, c := range s.Calls {
			if prog.Funcs[c.callee] == nil {
				continue // external: no summary
			}
			wtn := prog.TaintWitness(c.callee)
			if wtn == "" {
				continue
			}
			switch {
			case adaptCaller:
				pass.Reportf(c.pos,
					"adaptation decision %s calls %s, which reaches %s; decisions must replay from logged inputs alone",
					s.Key, c.callee, wtn)
			case !inDeterministicCore(c.callee.Pkg):
				pass.Reportf(c.pos,
					"call to %s reaches %s at some call depth; wall-clock/rand values must not flow into the deterministic core — inject a trace.Clock or thread a seeded *rand.Rand",
					c.callee, wtn)
			}
			// No report when the tainted callee is itself inside the
			// core: its body is already flagged by the lexical pass,
			// and a second report at every caller would be noise.
		}
	}
	return nil
}

// isRandGlobal reports whether sel references math/rand package-level
// mutable state: the global-source convenience functions and Seed.
// Constructors (New, NewSource, NewZipf, ...) and type names return or
// name explicit sources and are fine.
func isRandGlobal(info *types.Info, sel *ast.SelectorExpr) bool {
	obj := info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false // type names, consts
	}
	return !strings.HasPrefix(sel.Sel.Name, "New")
}
