// Package analyzers is harmonylint: a suite of static analysis passes
// that mechanically enforce the executor's concurrency and determinism
// invariants — the hand-maintained rules that PRs 1–3 documented in
// comments (the vm.mu locking discipline, the "every resident claim is
// committed" DMA rule, bit-exact determinism across interleavings) and
// that the race detector can only catch probabilistically. Each
// analyzer rejects a whole class of regression before any test runs:
//
//   - lockhold: blocking operations (channel send/recv, select without
//     default, time.Sleep, WaitGroup.Wait, WaitIdle) while a mutex is
//     held, and return paths that leak a held lock. Doc-comment
//     contracts ("Requires mu held", "mu held on entry, released on
//     return") set the expected entry/exit lock state for helpers.
//   - claimdiscipline: writes to a buffer's DMA-state fields outside
//     the claim/commit/settle transition helpers, and buffers made
//     resident under a synchronous claim without a commit or settle
//     before the lock is released (DESIGN.md §9's "every resident
//     claim is committed").
//   - determinism: wall-clock reads (time.Now/Since/Until), math/rand
//     global state, and map iteration inside the deterministic core
//     (internal/sched, internal/exec, internal/nn, internal/fault).
//   - hygiene: lock-containing values copied by value (params,
//     results, range copies, assignments).
//   - errcheck: error returns from the VM / memory-manager / DMA
//     surface dropped inside internal/exec (bare-statement calls,
//     blank assignments, go/defer drops).
//   - adaptinputs: wall-clock reads, math/rand global state and map
//     iteration lexically inside adaptation/retune decision functions
//     (names matching adapt|retune) in internal/exec and
//     internal/tuner — the tuner may measure wall time, but its
//     decisions must replay from logged inputs alone. The
//     interprocedural upgrade also traces tainted values through call
//     chains into the deterministic core and adaptation decisions.
//   - lockorder: the global lock-acquisition graph built from
//     interprocedural summaries — cycles, recursive acquisitions, and
//     same-class shard nesting outside the documented ascending-device
//     order are rejected at any call depth.
//   - chanlife: every spawned goroutine must reach a shutdown
//     construct (channel receive/range, select, WaitGroup.Done,
//     Cond.Wait) at some call depth, and done-named channels must
//     deliver their completion signal exactly once (closed or
//     single-sender, never both). Replaces hygiene's shallow ctxleak.
//   - atomicproto: extracts the claim/commit/settle/pin transition
//     table from internal/claimword's source by AST interpretation and
//     cross-checks it field-by-field against the independent spec
//     table the schedcheck DMA model explores; editing either side
//     alone trips the gate.
//   - pinbalance: every pin (State.Pin, vm.pin, settle with a +1
//     delta) is released, handed off, or covered by a documented
//     "pins it" ownership contract on every CFG path, including early
//     error returns — the paper's pin-budget invariant at source level.
//   - claimlife: every DMA claim (vm.claim) reaches commit or settle —
//     directly, through a callee, or by handoff to the worker queue —
//     on every path; a dropped claim wedges the buffer's claim word.
//   - errpath: locks, shard locks and snapshot handles still held at
//     an early error return, with the concrete leaking path printed in
//     the diagnostic — the cases lockhold's intersection joins had to
//     suppress.
//
// The per-function summaries behind the interprocedural passes (locks
// acquired/released, channels sent/closed, goroutines spawned,
// claimword transitions invoked, taint sources reached) live in
// interproc.go; lockorder, chanlife and the determinism taint upgrade
// are RunProject analyzers over that call graph. The path-sensitive
// lifecycle passes (pinbalance, claimlife, errpath) add a third layer:
// per-function control-flow graphs (cfg.go) explored by a worklist
// engine (dataflow.go) that keeps every branch outcome distinct, so
// leak diagnostics print the concrete path.
//
// The framework below is a self-contained, offline re-implementation
// of the golang.org/x/tools/go/analysis surface this module needs
// (Analyzer / Pass / Diagnostic plus an analysistest-style fixture
// runner); the container has no module proxy access, so the suite
// builds on the standard library's go/ast and go/types only.
//
// False positives are silenced with an explained allowlist directive
// on the flagged line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// A directive without a reason, naming an unknown analyzer, or
// suppressing nothing is itself reported, so the allowlist stays
// minimal and auditable.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run inspects one type-checked
// package through the Pass; RunProject inspects the whole loaded
// program — every package plus the interprocedural summaries — through
// the ProjectPass. An analyzer may define either or both.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer
	// enforces and why.
	Doc string
	// Run performs the per-package analysis (may be nil).
	Run func(*Pass) error
	// RunProject performs the whole-program analysis over the
	// interprocedural summaries (may be nil).
	RunProject func(*ProjectPass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full harmonylint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Lockhold, ClaimDiscipline, Determinism, Hygiene, Errcheck, AdaptInputs,
		Lockorder, Chanlife, Atomicproto,
		Pinbalance, Claimlife, Errpath,
	}
}

// A ProjectPass presents the whole loaded program — every package and
// the interprocedural summaries — to an Analyzer's RunProject.
type ProjectPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *ProjectPass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ---------------------------------------------------------- directives

// directive is one parsed //lint:allow comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

var directiveRe = regexp.MustCompile(`^//lint:allow\s+(\S+)(?:\s+(.*))?$`)

// parseDirectives extracts every //lint:allow directive from the
// package's comments.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var ds []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				ds = append(ds, &directive{
					pos:      fset.Position(c.Pos()),
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return ds
}

// covers reports whether the directive suppresses a diagnostic from
// the given analyzer at the given position: same file, same line or
// the line immediately below the directive.
func (d *directive) covers(a string, pos token.Position) bool {
	return d.analyzer == a && d.pos.Filename == pos.Filename &&
		(d.pos.Line == pos.Line || d.pos.Line == pos.Line-1)
}

// RunAll runs the given analyzers over one loaded package. It is the
// single-package form of RunProject, kept for the fixture runner and
// for callers that load packages one at a time.
func RunAll(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	return RunProject([]*Package{pkg}, analyzers...)
}

// RunProject runs the given analyzers over the whole loaded program:
// per-package passes over each package, whole-program passes over the
// interprocedural summaries built from all of them together. It then
// applies the //lint:allow directives collected across every package
// and appends directive-hygiene findings (missing reason, unknown
// analyzer, suppressing nothing).
//
// Directive hygiene is judged against the full roster and the full
// run: a directive naming any analyzer in All() is "known" even when
// this invocation runs a subset (the fixture runner runs one analyzer
// at a time; a fixture's directive for a sibling analyzer is not a
// typo), and staleness is only provable for directives whose analyzer
// actually ran here — and then only after every package and the
// whole-program passes have reported, since an interprocedural
// diagnostic can be suppressed by a directive in a different package
// than the one that triggered the walk.
//
// Returned diagnostics are sorted by (file, line, column, analyzer)
// and exact repeats are deduplicated, so output is stable run-to-run
// regardless of package enumeration or summary iteration order.
func RunProject(pkgs []*Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	var ds []*directive
	for _, pkg := range pkgs {
		ds = append(ds, parseDirectives(pkg.Fset, pkg.Files)...)
	}
	known := map[string]bool{"lint": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	ran := make(map[string]bool)
	var prog *Program
	var all []Diagnostic
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
		if a.Run != nil {
			for _, pkg := range pkgs {
				pass := &Pass{
					Analyzer: a,
					Fset:     pkg.Fset,
					Files:    pkg.Files,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
				}
				all = append(all, pass.diags...)
			}
		}
		if a.RunProject != nil {
			if prog == nil {
				prog = BuildProgram(pkgs)
			}
			pass := &ProjectPass{Analyzer: a, Prog: prog}
			if err := a.RunProject(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			all = append(all, pass.diags...)
		}
	}
	var out []Diagnostic
diags:
	for _, diag := range all {
		for _, d := range ds {
			if d.covers(diag.Analyzer, diag.Pos) {
				d.used = true
				continue diags
			}
		}
		out = append(out, diag)
	}
	for _, d := range ds {
		switch {
		case !known[d.analyzer]:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "lint",
				Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", d.analyzer)})
		case d.reason == "":
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "lint",
				Message: fmt.Sprintf("//lint:allow %s has no reason; every exception must be explained", d.analyzer)})
		case !d.used && ran[d.analyzer]:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "lint",
				Message: fmt.Sprintf("//lint:allow %s suppresses nothing; remove the stale directive", d.analyzer)})
		}
	}
	return dedupeSorted(out), nil
}

// dedupeSorted orders diagnostics by (file, line, column, analyzer,
// message) and drops exact repeats — e.g. the same interprocedural
// edge witnessed from two walks.
func dedupeSorted(out []Diagnostic) []Diagnostic {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	dst := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dst = append(dst, d)
	}
	return dst
}

// ------------------------------------------------------- type helpers

// namedIn reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedIn(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutex(t types.Type) bool {
	return namedIn(t, "sync", "Mutex") || namedIn(t, "sync", "RWMutex")
}

// pkgFunc matches a call to a package-level function, e.g.
// pkgFunc(info, call, "time", "Sleep").
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// methodOn reports whether call invokes a method with the given name
// whose receiver type (after pointers) is pkgPath.typeName. Returns
// the receiver expression.
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, method string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	t := info.TypeOf(sel.X)
	if t == nil || !namedIn(t, pkgPath, typeName) {
		return nil, false
	}
	return sel.X, true
}

// enclosingFuncName tracks the FuncDecl a node belongs to while
// inspecting a file. Used by analyzers that exempt specific functions.
func forEachFunc(files []*ast.File, fn func(decl *ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// exprString renders a (selector chain) expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "expr"
	}
}
