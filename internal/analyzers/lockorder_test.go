package analyzers

import "testing"

func TestLockorder(t *testing.T) {
	diags := runFixture(t, "lockorder", Lockorder)
	// Regression pins: one per rule.
	mustDiag(t, diags, "lockorder", `lock-order cycle`)
	mustDiag(t, diags, "lockorder", `recursive acquisition`)
	mustDiag(t, diags, "lockorder", `second shard lock`)
}
