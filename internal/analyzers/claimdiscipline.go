package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ClaimDiscipline enforces the DMA buffer state machine of DESIGN.md
// §9/§12. A buffer's claim state lives in a single packed atomic word
// (internal/claimword) plus the done-channel pointer; waiters, the
// eviction scan and the prefetch engine all reason about them
// lock-free, so ad-hoc mutation desynchronizes the machine. Three
// rules:
//
//  1. Only the state-machine helpers — methods named claim, commit,
//     settle, pin, unpin and consumePrefetch — may mutate a buffer's
//     word or done fields. Everything else calls the helpers, which
//     validate the transition against the pure claimword functions and
//     wake waiters consistently.
//
//  2. Inside the helpers, the packed word advances only by
//     CompareAndSwap against an observed value — a raw Store (or Swap
//     or Add) would clobber pins taken concurrently by another
//     device's Ensure. The done pointer may be Stored only by the
//     claim winner (it just won the word CAS, so it owns the slot) and
//     otherwise cleared by CompareAndSwap in settle.
//
//  3. "Every resident claim is waitable": under a synchronous
//     uncommitted claim (claim(b, st, false, false, need)), the buffer
//     must be committed (or settled) before lruPush publishes it to a
//     shard's LRU list. The eviction scan discovers buffers through
//     that list; one carrying a sync uncommitted claim is exactly the
//     state reserve must not wait on — the deadlock class moveP2P's
//     reserve-before-claim ordering exists to prevent.
var ClaimDiscipline = &Analyzer{
	Name: "claimdiscipline",
	Doc: "report mutations of a DMA buffer's packed claim word or done " +
		"pointer outside the state-machine helpers, non-CAS word transitions " +
		"inside them, and buffers published to the LRU under an uncommitted " +
		"synchronous claim",
	Run: runClaimDiscipline,
}

// claimAtomics are the buffer fields owned by the state machine,
// mapped to the atomic mutator methods the helpers may use on them.
// Load is a read and allowed everywhere.
var claimAtomics = map[string]map[string]bool{
	"word": {"CompareAndSwap": true},
	"done": {"CompareAndSwap": true, "Store": true},
}

// wordMutators are the atomic methods that change state; calling any
// of them on word/done outside a helper breaks rule 1, and calling one
// not in claimAtomics inside a helper breaks rule 2.
var wordMutators = map[string]bool{
	"Store": true, "Swap": true, "Add": true, "And": true, "Or": true,
	"CompareAndSwap": true,
}

// transitionHelpers may mutate the claim atomics (rule 1).
var transitionHelpers = map[string]bool{
	"claim": true, "commit": true, "settle": true,
	"pin": true, "unpin": true, "consumePrefetch": true,
}

func runClaimDiscipline(pass *Pass) error {
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		checkClaimWordWrites(pass, fd)
		checkPublishCommit(pass, fd)
	})
	return nil
}

// isBufferType reports whether t (after pointers) is a named struct
// type called "buffer" — the VM's DMA buffer. Matching by name keeps
// the analyzer testable against fixtures while being unambiguous in
// this module.
func isBufferType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "buffer" {
		return false
	}
	_, isStruct := n.Underlying().(*types.Struct)
	return isStruct
}

// claimAtomicField matches an expression of the form b.word or b.done
// where b is a buffer.
func claimAtomicField(pass *Pass, e ast.Expr) (field string, ok bool) {
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	if _, tracked := claimAtomics[sel.Sel.Name]; !tracked {
		return "", false
	}
	if !isBufferType(pass.Info.TypeOf(sel.X)) {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkClaimWordWrites implements rules 1 and 2.
func checkClaimWordWrites(pass *Pass, fd *ast.FuncDecl) {
	inHelper := transitionHelpers[fd.Name.Name] && fd.Recv != nil
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !wordMutators[sel.Sel.Name] {
				return true
			}
			f, ok := claimAtomicField(pass, sel.X)
			if !ok {
				return true
			}
			if !inHelper {
				pass.Reportf(n.Pos(),
					"mutation of buffer.%s outside the claim state-machine helpers (claim/commit/settle/pin/unpin/consumePrefetch)", f)
			} else if !claimAtomics[f][sel.Sel.Name] {
				pass.Reportf(n.Pos(),
					"non-CAS mutation of buffer.%s (%s) inside a transition helper; packed-word transitions must CompareAndSwap an observed value", f, sel.Sel.Name)
			}
		case *ast.AssignStmt:
			// Reassigning the atomic value itself (b.word = ...) bypasses
			// the atomic API entirely; never legal, helpers included.
			for _, l := range n.Lhs {
				if f, ok := claimAtomicField(pass, l); ok {
					pass.Reportf(l.Pos(),
						"direct assignment to buffer.%s bypasses its atomic API; use the claim state-machine helpers", f)
				}
			}
		}
		return true
	})
}

// claimEvent is one state-machine-relevant statement, in source order.
type claimEvent struct {
	pos  token.Pos
	kind string       // "claim", "publish", "resolve"
	obj  types.Object // the buffer variable
}

// checkPublishCommit implements rule 3 with a source-order scan: the
// straight-line style of the VM (claim → reserve → install fields →
// commit → lruPush) makes lexical order a faithful proxy for execution
// order, and the fixtures pin that interpretation.
func checkPublishCommit(pass *Pass, fd *ast.FuncDecl) {
	var events []claimEvent
	rootObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if o := pass.Info.Uses[id]; o != nil {
			return o
		}
		return pass.Info.Defs[id]
	}
	isFalse := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "false"
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "claim":
			// claim(b, st, async, committed, need): only synchronous
			// uncommitted claims are tracked — async claims are
			// committed by the DMA worker, and committed-at-claim ones
			// are waitable from their first visible word.
			if len(call.Args) == 5 && isBufferType(pass.Info.TypeOf(call.Args[0])) &&
				isFalse(call.Args[2]) && isFalse(call.Args[3]) {
				events = append(events, claimEvent{call.Pos(), "claim", rootObj(call.Args[0])})
			}
		case "commit":
			if len(call.Args) == 1 && isBufferType(pass.Info.TypeOf(call.Args[0])) {
				events = append(events, claimEvent{call.Pos(), "resolve", rootObj(call.Args[0])})
			}
		case "settle":
			if len(call.Args) == 3 && isBufferType(pass.Info.TypeOf(call.Args[0])) {
				events = append(events, claimEvent{call.Pos(), "resolve", rootObj(call.Args[0])})
			}
		case "lruPush":
			if len(call.Args) == 2 && isBufferType(pass.Info.TypeOf(call.Args[1])) {
				events = append(events, claimEvent{call.Pos(), "publish", rootObj(call.Args[1])})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	claimed := map[types.Object]bool{}
	for _, ev := range events {
		if ev.obj == nil {
			continue
		}
		switch ev.kind {
		case "claim":
			claimed[ev.obj] = true
		case "resolve":
			claimed[ev.obj] = false
		case "publish":
			if claimed[ev.obj] {
				pass.Reportf(ev.pos,
					"buffer published to the LRU under an uncommitted synchronous claim; commit or settle before lruPush (every resident claim must complete autonomously)")
			}
		}
	}
}
