package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ClaimDiscipline enforces the DMA buffer state machine of DESIGN.md
// §9. A buffer's claim fields (state, done, async, committed) encode
// an in-flight transfer that waiters and the eviction scan reason
// about; mutating them ad hoc desynchronizes the three. Two rules:
//
//  1. Only the transition helpers — methods named claim, commit and
//     settle — may assign a buffer's state, done, async or committed
//     fields. Everything else must call the helpers, which validate
//     the transition (claim panics on double claim, commit on an
//     unclaimed buffer) and wake waiters consistently.
//
//  2. "Every resident claim is committed": in a function that takes a
//     synchronous claim (claim(b, ..., false)), an assignment that
//     makes the buffer resident (b.dev = <non-nil>) must be followed
//     by commit(b) or settle(b) before any mutex Unlock (or the end
//     of the function). Otherwise another device's reserve could
//     observe a resident buffer whose claim it must not wait on — the
//     deadlock class moveP2P's reserve-before-claim ordering exists
//     to prevent.
var ClaimDiscipline = &Analyzer{
	Name: "claimdiscipline",
	Doc: "report writes to a DMA buffer's claim fields outside the " +
		"claim/commit/settle transition helpers, and buffers made resident " +
		"under a synchronous claim without commit/settle before the lock is released",
	Run: runClaimDiscipline,
}

// claimFields are the buffer fields owned by the state machine.
var claimFields = map[string]bool{"state": true, "done": true, "async": true, "committed": true}

// transitionHelpers may write claimFields.
var transitionHelpers = map[string]bool{"claim": true, "commit": true, "settle": true}

func runClaimDiscipline(pass *Pass) error {
	forEachFunc(pass.Files, func(fd *ast.FuncDecl) {
		checkClaimFieldWrites(pass, fd)
		checkResidentCommit(pass, fd)
	})
	return nil
}

// isBufferType reports whether t (after pointers) is a named struct
// type called "buffer" — the VM's DMA buffer. Matching by name keeps
// the analyzer testable against fixtures while being unambiguous in
// this module.
func isBufferType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "buffer" {
		return false
	}
	_, isStruct := n.Underlying().(*types.Struct)
	return isStruct
}

// bufferFieldWrite matches an lvalue of the form b.<field> where b is
// a buffer and field is part of the claim state machine.
func bufferFieldWrite(pass *Pass, lhs ast.Expr) (field string, ok bool) {
	sel, isSel := lhs.(*ast.SelectorExpr)
	if !isSel || !claimFields[sel.Sel.Name] {
		return "", false
	}
	if !isBufferType(pass.Info.TypeOf(sel.X)) {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkClaimFieldWrites implements rule 1.
func checkClaimFieldWrites(pass *Pass, fd *ast.FuncDecl) {
	if transitionHelpers[fd.Name.Name] && fd.Recv != nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if f, ok := bufferFieldWrite(pass, l); ok {
					pass.Reportf(l.Pos(),
						"direct write to buffer.%s outside the claim/commit/settle transition helpers", f)
				}
			}
		case *ast.IncDecStmt:
			if f, ok := bufferFieldWrite(pass, n.X); ok {
				pass.Reportf(n.Pos(),
					"direct write to buffer.%s outside the claim/commit/settle transition helpers", f)
			}
		}
		return true
	})
}

// claimEvent is one state-machine-relevant statement, in source order.
type claimEvent struct {
	pos  token.Pos
	kind string       // "claim", "resident", "resolve", "unlock"
	obj  types.Object // the buffer variable, for claim/resident/resolve
}

// checkResidentCommit implements rule 2 with a source-order scan: the
// straight-line style of the VM (claim → reserve → install residency →
// commit/settle → unlock) makes lexical order a faithful proxy for
// execution order, and the fixtures pin that interpretation.
func checkResidentCommit(pass *Pass, fd *ast.FuncDecl) {
	var events []claimEvent
	rootObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if o := pass.Info.Uses[id]; o != nil {
			return o
		}
		return pass.Info.Defs[id]
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "claim":
					if len(n.Args) == 3 && isBufferType(pass.Info.TypeOf(n.Args[0])) {
						if id, ok := n.Args[2].(*ast.Ident); ok && id.Name == "false" {
							events = append(events, claimEvent{n.Pos(), "claim", rootObj(n.Args[0])})
						}
					}
				case "commit", "settle":
					if len(n.Args) == 1 && isBufferType(pass.Info.TypeOf(n.Args[0])) {
						events = append(events, claimEvent{n.Pos(), "resolve", rootObj(n.Args[0])})
					}
				case "Unlock", "RUnlock":
					if t := pass.Info.TypeOf(sel.X); t != nil && isMutex(t) {
						events = append(events, claimEvent{n.Pos(), "unlock", nil})
					}
				}
			}
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				sel, ok := l.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "dev" || !isBufferType(pass.Info.TypeOf(sel.X)) {
					continue
				}
				if i < len(n.Rhs) {
					if id, ok := n.Rhs[i].(*ast.Ident); ok && id.Name == "nil" {
						continue // releasing residency, not establishing it
					}
				}
				events = append(events, claimEvent{l.Pos(), "resident", rootObj(sel.X)})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	claimed := map[types.Object]bool{}
	for i, ev := range events {
		switch ev.kind {
		case "claim":
			if ev.obj != nil {
				claimed[ev.obj] = true
			}
		case "resident":
			if ev.obj == nil || !claimed[ev.obj] {
				continue
			}
			resolved := false
			for _, later := range events[i+1:] {
				if later.kind == "resolve" && later.obj == ev.obj {
					resolved = true
					break
				}
				if later.kind == "unlock" {
					break
				}
			}
			if !resolved {
				pass.Reportf(ev.pos,
					"buffer made resident under a synchronous claim without commit/settle before the lock is released (every resident claim must complete autonomously)")
			}
		}
	}
}
