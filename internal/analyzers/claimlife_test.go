package analyzers

import "testing"

func TestClaimlife(t *testing.T) {
	diags := runFixture(t, "claimlife", Claimlife)
	// Regression pins: the error-return leak and the one-arm commit.
	mustDiag(t, diags, "claimlife", `claim on b taken at .* neither committed, settled nor handed off on an error path`)
	mustDiag(t, diags, "claimlife", `claim on b taken at .* neither committed, settled nor handed off on a path ending at the function exit`)
}
