package analyzers

// dataflow.go is the path-sensitive worklist engine the lifecycle
// passes (pinbalance, claimlife, errpath) share. It enumerates the
// distinct abstract states of a function over its CFG (cfg.go): each
// state is the multiset of currently-open paired resources, the stack
// of deferred close effects, and whether the path has crossed an
// `err != nil` guard. Where the summary walker in interproc.go joins
// branches by intersection — sound for suppressing lock-order edges,
// useless for proving "every Pin reaches Unpin" — this engine keeps
// every branch outcome separate and carries a human-readable trace, so
// a diagnostic can print the concrete leaking path.
//
// The lattice per pass is the same shape: open-resource counts
// (saturating at a small bound so loops converge) ordered by multiset
// inclusion, with the error flag and defer stack as extra state
// components. Joins never happen — states with distinct keys are
// explored separately, deduplicated per block, and capped (per block
// and per function) so pathological functions degrade to silence, not
// to nontermination or noise.
//
// Ownership semantics shared by all passes:
//
//   - Conditional acquisition: an open whose call reports success by
//     error (`if err := st.Pin(); err != nil`) or bool (`if
//     !vm.claim(...)`) commits only on the success edge of the guard;
//     the failure edge drops it. An open whose result is never
//     branched on commits unconditionally.
//   - Handoff: a resource stored into a composite literal, assigned,
//     sent, returned, captured by a closure, or passed to a callee the
//     loader cannot see transfers ownership and stops being tracked.
//     Passing it bare to a *resolvable* callee is transparent — unless
//     the callee transitively performs one of the pass's closing
//     operations (Program.TransResOps), in which case it counts as the
//     release, at any call depth.
//   - defer: deferred close effects accumulate per path and apply at
//     every exit before the leak check, modeling Go's defer-at-return.
//   - Panic exits are exempt: a panicking path is already lost, and
//     the paired-resource budget argument only covers error returns.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// condKind says how an open call signals success.
type condKind int

const (
	condAlways   condKind = iota // open is unconditional
	condErrNil                   // open succeeded iff the returned error is nil
	condBoolTrue                 // open succeeded iff the returned bool is true
)

// lifeOp is the effect of one classified call.
type lifeOp int

const (
	lifeOpen lifeOp = iota
	lifeClose
)

// lifeEvent is one classified resource operation. An open with
// res == "" binds to the assignment target of its call (handle-style
// acquisitions like `snap := h.Snapshot()`). kind overrides the
// spec-level resource noun in diagnostics ("snapshot" vs "lock").
type lifeEvent struct {
	op   lifeOp
	res  string
	cond condKind
	what string // rendered call, for the path trace
	kind string
}

// lifeSpec configures one lifecycle pass over the shared engine.
type lifeSpec struct {
	name string
	// kind is the resource noun used in diagnostics ("pin", "claim",
	// "lock").
	kind string
	// leakVerb completes "<kind> on <res> taken at <pos> <leakVerb>".
	leakVerb string
	// classify maps one call to its resource events (nil for none).
	classify func(e *lifeEngine, call *ast.CallExpr) []lifeEvent
	// closers are callee names that count as the closing operation when
	// a tracked resource is passed to a callee reaching one transitively.
	closers map[string]bool
	// entryOpen lists resources the function's doc contract declares
	// open on entry (errpath's "Requires mu held").
	entryOpen func(e *lifeEngine) []string
	// exitAllowed licenses leaving the function with res still open
	// (entry-held locks without a release contract, "pins it" docs).
	exitAllowed func(e *lifeEngine, res string) bool
	// errExitsOnly restricts reports to error-path exits.
	errExitsOnly bool
}

// runLifecycle drives spec over every summarized function body.
func runLifecycle(pass *ProjectPass, spec *lifeSpec) error {
	prog := pass.Prog
	for _, k := range prog.Order {
		sum := prog.Funcs[k]
		if sum.Decl == nil || sum.Decl.Body == nil {
			continue
		}
		// claimword's own transition helpers are pure word arithmetic;
		// the protocol there is atomicproto's jurisdiction.
		if isClaimwordPath(sum.Pkg.Path) {
			continue
		}
		cfg := prog.FuncCFG(k)
		if cfg == nil {
			continue
		}
		e := &lifeEngine{
			pass:     pass,
			spec:     spec,
			prog:     prog,
			pkg:      sum.Pkg,
			sum:      sum,
			cfg:      cfg,
			reported: make(map[token.Pos]bool),
		}
		e.run()
	}
	return nil
}

// Exploration bounds: beyond these the function degrades to silence
// (dropping paths can only lose reports, never invent them).
const (
	maxOpenCount   = 3
	maxBlockStates = 64
	maxPathVisits  = 4096
	maxTraceSteps  = 12
)

// openRes is one tracked resource on a path.
type openRes struct {
	res  string
	n    int
	pos  token.Pos
	what string
	kind string
}

// pending is a conditional open awaiting its guard edge.
type pending struct {
	ev   lifeEvent
	call *ast.CallExpr
	obj  types.Object // err/ok variable the call's result was bound to
}

// lifeState is the abstract state of one path at one block boundary.
type lifeState struct {
	open   []openRes // sorted by res
	defers []string  // resources closed by deferred calls, in defer order
	pend   *pending
	err    bool
	steps  []string // human-readable trace; not part of the state key
}

func (st *lifeState) clone() *lifeState {
	ns := &lifeState{pend: st.pend, err: st.err}
	ns.open = append([]openRes(nil), st.open...)
	ns.defers = append([]string(nil), st.defers...)
	ns.steps = append([]string(nil), st.steps...)
	return ns
}

func (st *lifeState) key() string {
	var b strings.Builder
	for _, o := range st.open {
		fmt.Fprintf(&b, "%s=%d;", o.res, o.n)
	}
	b.WriteByte('|')
	for _, d := range st.defers {
		b.WriteString(d)
		b.WriteByte(';')
	}
	b.WriteByte('|')
	if st.pend != nil {
		fmt.Fprintf(&b, "p%d", st.pend.call.Pos())
	}
	if st.err {
		b.WriteByte('E')
	}
	return b.String()
}

func (st *lifeState) openAt(res, what, kind string, pos token.Pos) {
	i := sort.Search(len(st.open), func(i int) bool { return st.open[i].res >= res })
	if i < len(st.open) && st.open[i].res == res {
		if st.open[i].n < maxOpenCount {
			st.open[i].n++
		}
		return
	}
	st.open = append(st.open, openRes{})
	copy(st.open[i+1:], st.open[i:])
	st.open[i] = openRes{res: res, n: 1, pos: pos, what: what, kind: kind}
}

// closeRes decrements res if open; closing what was never opened is a
// no-op (dmaWorker settles requests its producer claimed).
func (st *lifeState) closeRes(res string) {
	for i := range st.open {
		if st.open[i].res == res {
			if st.open[i].n > 0 {
				st.open[i].n--
			}
			return
		}
	}
}

func (st *lifeState) isOpen(res string) bool {
	for i := range st.open {
		if st.open[i].res == res {
			return st.open[i].n > 0
		}
	}
	return false
}

func (st *lifeState) step(s string) {
	if len(st.steps) < maxTraceSteps {
		st.steps = append(st.steps, s)
	}
}

// lifeEngine explores one function for one spec.
type lifeEngine struct {
	pass *ProjectPass
	spec *lifeSpec
	prog *Program
	pkg  *Package
	sum  *Summary
	cfg  *CFG

	reported map[token.Pos]bool // one report per open site
	visits   int
}

func (e *lifeEngine) posStr(pos token.Pos) string {
	p := e.pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortFile(p.Filename), p.Line)
}

func (e *lifeEngine) run() {
	entry := &lifeState{}
	if e.spec.entryOpen != nil {
		for _, res := range e.spec.entryOpen(e) {
			entry.openAt(res, "held on entry", e.spec.kind, e.cfg.Decl.Pos())
		}
	}
	type work struct {
		blk *Block
		st  *lifeState
	}
	seen := make(map[int]map[string]bool)
	mark := func(blk *Block, st *lifeState) bool {
		m := seen[blk.ID]
		if m == nil {
			m = make(map[string]bool)
			seen[blk.ID] = m
		}
		k := st.key()
		if m[k] || len(m) >= maxBlockStates {
			return false
		}
		m[k] = true
		return true
	}
	queue := []work{{e.cfg.Entry, entry}}
	mark(e.cfg.Entry, entry)
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if e.visits++; e.visits > maxPathVisits {
			return
		}
		st := w.st.clone()
		for _, n := range w.blk.Nodes {
			e.transfer(n, st)
		}
		if len(w.blk.Succs) == 0 {
			e.finish(w.blk, st)
			continue
		}
		for _, edge := range w.blk.Succs {
			ns := e.cross(st, edge)
			if mark(edge.To, ns) {
				queue = append(queue, work{edge.To, ns})
			}
		}
	}
}

// transfer applies one node's effects to the state.
func (e *lifeEngine) transfer(n ast.Node, st *lifeState) {
	if d, ok := n.(*ast.DeferStmt); ok {
		e.deferNode(d, st)
		return
	}
	classified := e.applyCalls(n, st)
	e.scanEscapes(n, st, classified)
}

// applyCalls classifies every call inside the node (skipping function
// literals, which run later) and applies the events in lexical order.
// It returns, per call, the resources it was classified against, so
// the escape scan does not double-count their argument mentions.
func (e *lifeEngine) applyCalls(n ast.Node, st *lifeState) map[*ast.CallExpr]map[string]bool {
	classified := make(map[*ast.CallExpr]map[string]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, ev := range e.spec.classify(e, call) {
			if ev.res == "" {
				// Handle-style open: bind to the assignment target.
				ev.res = exprString(call)
				if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 &&
					ast.Unparen(as.Rhs[0]) == call && len(as.Lhs) >= 1 {
					ev.res = exprString(as.Lhs[0])
				}
			}
			m := classified[call]
			if m == nil {
				m = make(map[string]bool)
				classified[call] = m
			}
			m[ev.res] = true
			if ev.kind == "" {
				ev.kind = e.spec.kind
			}
			switch ev.op {
			case lifeOpen:
				e.commitPend(st)
				if ev.cond == condAlways {
					st.openAt(ev.res, ev.what, ev.kind, call.Pos())
					st.step(fmt.Sprintf("%s at %s", ev.what, e.posStr(call.Pos())))
					continue
				}
				p := &pending{ev: ev, call: call}
				if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 &&
					ast.Unparen(as.Rhs[0]) == call && len(as.Lhs) >= 1 {
					if id, ok := as.Lhs[0].(*ast.Ident); ok {
						if o := e.pkg.Info.Defs[id]; o != nil {
							p.obj = o
						} else {
							p.obj = e.pkg.Info.Uses[id]
						}
					}
				}
				st.pend = p
			case lifeClose:
				e.commitPend(st)
				st.closeRes(ev.res)
			}
		}
		return true
	})
	return classified
}

// commitPend commits an unresolved conditional open as taken.
func (e *lifeEngine) commitPend(st *lifeState) {
	if st.pend == nil {
		return
	}
	p := st.pend
	st.pend = nil
	st.openAt(p.ev.res, p.ev.what, p.ev.kind, p.call.Pos())
	st.step(fmt.Sprintf("%s at %s", p.ev.what, e.posStr(p.call.Pos())))
}

// deferNode pushes the close effects of a deferred call (or deferred
// closure body) onto the path's defer stack.
func (e *lifeEngine) deferNode(d *ast.DeferStmt, st *lifeState) {
	record := func(call *ast.CallExpr) {
		for _, ev := range e.spec.classify(e, call) {
			if ev.op == lifeClose && ev.res != "" {
				st.defers = append(st.defers, ev.res)
			}
		}
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				record(call)
			}
			return true
		})
		return
	}
	record(d.Call)
	// The deferred call's arguments evaluate now; a tracked resource
	// handed to it escapes like any other call argument.
	for _, a := range d.Call.Args {
		e.escapeArg(a, d.Call, st, nil)
	}
}

// scanEscapes releases tracked resources the node hands off: stored,
// sent, returned, captured, or passed to calls (see escapeArg).
func (e *lifeEngine) scanEscapes(n ast.Node, st *lifeState, classified map[*ast.CallExpr]map[string]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			e.escapeCaptures(x, st)
			return false
		case *ast.CallExpr:
			for _, a := range x.Args {
				e.escapeArg(a, x, st, classified[x])
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				e.escapeValue(r, st, "stored")
			}
		case *ast.SendStmt:
			e.escapeValue(x.Value, st, "sent")
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				e.escapeValue(r, st, "returned")
			}
		}
		return true
	})
}

// escapeArg handles one call argument. A tracked resource nested in a
// composite literal is being stored and escapes outright; passed bare,
// it escapes only when the callee is opaque — a resolvable callee is
// transparent unless it transitively reaches a closing operation, in
// which case the call is the release ("balanced at any call depth").
func (e *lifeEngine) escapeArg(a ast.Expr, call *ast.CallExpr, st *lifeState, skip map[string]bool) {
	bare := exprString(ast.Unparen(a))
	if st.isOpen(bare) && !skip[bare] {
		if key, ok := e.calleeKey(call); ok {
			if e.calleeCloses(key) {
				st.closeRes(bare)
				st.step(fmt.Sprintf("%s released by %s at %s", bare, key.String(), e.posStr(call.Pos())))
			}
			// Transparent callee: still tracked.
			return
		}
		st.closeRes(bare)
		st.step(fmt.Sprintf("%s handed off at %s", bare, e.posStr(call.Pos())))
		return
	}
	// Nested mentions (composite literals, &x) are stores.
	e.escapeNested(a, st)
}

// escapeValue releases a resource appearing as a complete value in a
// store-like position (assignment RHS, send, return).
func (e *lifeEngine) escapeValue(v ast.Expr, st *lifeState, how string) {
	bare := exprString(ast.Unparen(v))
	if st.isOpen(bare) {
		st.closeRes(bare)
		st.step(fmt.Sprintf("%s %s at %s", bare, how, e.posStr(v.Pos())))
		return
	}
	e.escapeNested(v, st)
}

// escapeNested finds tracked resources used as values inside composite
// literals and address-of expressions.
func (e *lifeEngine) escapeNested(v ast.Expr, st *lifeState) {
	switch v := ast.Unparen(v).(type) {
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			e.escapeValue(el, st, "stored")
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			e.escapeValue(v.X, st, "stored")
		}
	}
}

// escapeCaptures releases resources a closure captures: the closure
// may run at any time, so ownership leaves this path.
func (e *lifeEngine) escapeCaptures(lit *ast.FuncLit, st *lifeState) {
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		ex, ok := x.(ast.Expr)
		if !ok {
			return true
		}
		if s := exprString(ex); st.isOpen(s) {
			st.closeRes(s)
			st.step(fmt.Sprintf("%s captured by closure at %s", s, e.posStr(lit.Pos())))
		}
		return true
	})
}

// calleeKey resolves the call's static target to a summarized function.
func (e *lifeEngine) calleeKey(call *ast.CallExpr) (FuncKey, bool) {
	fn := calleeFunc(e.pkg.Info, call)
	if fn == nil {
		return FuncKey{}, false
	}
	key, ok := keyOf(fn)
	if !ok {
		return FuncKey{}, false
	}
	if e.prog.Funcs[key] == nil {
		return FuncKey{}, false
	}
	return key, true
}

// calleeCloses reports whether the callee transitively performs one of
// the spec's closing operations.
func (e *lifeEngine) calleeCloses(key FuncKey) bool {
	for op := range e.prog.TransResOps(key) {
		if e.spec.closers[op] {
			return true
		}
	}
	return false
}

// cross clones the state across one edge, resolving any pending
// conditional open against the branch condition and marking error
// paths.
func (e *lifeEngine) cross(st *lifeState, edge *Edge) *lifeState {
	ns := st.clone()
	if ns.pend != nil {
		switch e.pendOutcome(edge, ns.pend) {
		case 1:
			e.commitPend(ns)
		case -1:
			ns.step(fmt.Sprintf("%s failed at %s", ns.pend.ev.what, e.posStr(ns.pend.call.Pos())))
			ns.pend = nil
		default:
			// The guard is unrelated (or the edge unconditional): the
			// result was not branched on — treat the open as taken.
			e.commitPend(ns)
		}
	}
	if edge.Cond != nil && !ns.err {
		if errCondSense(e.pkg.Info, edge.Cond, edge.TakenTrue) > 0 {
			ns.err = true
			if op := errCondOperand(e.pkg.Info, edge.Cond); op != nil {
				ns.step(fmt.Sprintf("%s != nil at %s", exprString(op), e.posStr(edge.Cond.Pos())))
			}
		}
	}
	return ns
}

// pendOutcome decides whether taking edge means the pending open's
// call succeeded (+1), failed (-1), or is unrelated to the guard (0).
func (e *lifeEngine) pendOutcome(edge *Edge, p *pending) int {
	if edge.Cond == nil {
		return 0
	}
	cond := ast.Unparen(edge.Cond)
	taken := edge.TakenTrue
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond = ast.Unparen(u.X)
		taken = !taken
	}
	// `if vm.claim(...)` / `if !vm.claim(...)`: the call is the guard.
	if call, ok := cond.(*ast.CallExpr); ok && call == p.call && p.ev.cond == condBoolTrue {
		if taken {
			return 1
		}
		return -1
	}
	// `ok := vm.claim(...); if ok` — the bound bool is the guard.
	if id, ok := cond.(*ast.Ident); ok && p.obj != nil && p.ev.cond == condBoolTrue {
		if e.pkg.Info.Uses[id] == p.obj {
			if taken {
				return 1
			}
			return -1
		}
	}
	// `if err := st.Pin(); err != nil` — the bound error is the guard —
	// or `if st.Pin() != nil` with the call as the compared operand.
	if p.ev.cond == condErrNil {
		if op := errCondOperand(e.pkg.Info, edge.Cond); op != nil {
			matches := ast.Unparen(op) == p.call
			if id, ok := ast.Unparen(op).(*ast.Ident); ok && p.obj != nil {
				matches = e.pkg.Info.Uses[id] == p.obj
			}
			if matches {
				if errCondSense(e.pkg.Info, edge.Cond, edge.TakenTrue) > 0 {
					return -1 // error side: the open failed
				}
				return 1
			}
		}
	}
	return 0
}

// finish runs the leak check at one exit block.
func (e *lifeEngine) finish(blk *Block, st *lifeState) {
	e.commitPend(st)
	for _, res := range st.defers {
		st.closeRes(res)
	}
	if blk.Panics {
		return
	}
	exitPos := e.cfg.Decl.End()
	exitDesc := "function exit"
	if blk.Return != nil {
		exitPos = blk.Return.Pos()
		exitDesc = "return"
	}
	errExit := st.err || e.returnsError(blk.Return)
	for _, o := range st.open {
		if o.n <= 0 {
			continue
		}
		if e.spec.errExitsOnly && !errExit {
			continue
		}
		if e.spec.exitAllowed != nil && e.spec.exitAllowed(e, o.res) {
			continue
		}
		if e.reported[o.pos] {
			continue
		}
		e.reported[o.pos] = true
		pathKind := "a path"
		if errExit {
			pathKind = "an error path"
		}
		path := strings.Join(append(append([]string(nil), st.steps...),
			exitDesc+" at "+e.posStr(exitPos)), " -> ")
		e.pass.Reportf(o.pos, "%s on %s taken at %s %s on %s ending at the %s at %s; path: %s",
			o.kind, o.res, e.posStr(o.pos), e.spec.leakVerb,
			pathKind, exitDesc, e.posStr(exitPos), path)
	}
}

// returnsError reports whether the return statement yields a non-nil
// error-typed result.
func (e *lifeEngine) returnsError(ret *ast.ReturnStmt) bool {
	if ret == nil {
		return false
	}
	for _, r := range ret.Results {
		if isNilIdent(r) {
			continue
		}
		if t := e.pkg.Info.TypeOf(r); t != nil && isErrorType(t) {
			return true
		}
	}
	return false
}
