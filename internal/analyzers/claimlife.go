package analyzers

// claimlife proves the DMA claim lifecycle on every path: a buffer
// claimed through the VM's CAS helper (`vm.claim(b, ...)` returning
// bool) must reach commit or settle — directly, through a callee at
// any call depth, or by handoff to an owner that will finish it (the
// prefetch queue's dmaReq{b: b} enqueue) — before the path leaves the
// function. A dropped claim wedges the buffer: every later claim CAS
// fails, waitSettle never fires, and the tensor is stuck neither
// resident nor evictable.
//
// This is the path-sensitive complement to the existing checks:
// claimdiscipline rejects state writes outside the transition helpers,
// atomicproto proves the transition *table* matches the schedcheck
// spec, and claimlife proves every *use* of the table runs to
// completion. Settling a request someone else claimed (dmaWorker's
// service loop) is fine: closing a claim that was never opened on the
// path is a no-op.

import (
	"go/ast"
)

var Claimlife = &Analyzer{
	Name: "claimlife",
	Doc: "report DMA claims (vm.claim) that some CFG path drops without " +
		"reaching commit, settle or a handoff to the worker queue; a " +
		"dropped claim permanently wedges the buffer's claim word",
	RunProject: runClaimlife,
}

func runClaimlife(pass *ProjectPass) error {
	return runLifecycle(pass, &lifeSpec{
		name:     "claimlife",
		kind:     "claim",
		leakVerb: "is neither committed, settled nor handed off",
		classify: classifyClaim,
		closers: map[string]bool{
			"commit": true, "Commit": true,
			"settle": true, "Settle": true,
		},
	})
}

func classifyClaim(e *lifeEngine, call *ast.CallExpr) []lifeEvent {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	info := e.pkg.Info
	// The claimed buffer is always the first argument and always a
	// pointer; claimword's pure Word transitions take values and are
	// excluded by that shape.
	if !isPointerExpr(info, call.Args[0]) {
		return nil
	}
	res := exprString(call.Args[0])
	switch sel.Sel.Name {
	case "claim", "Claim":
		if callCondKind(info, call) != condBoolTrue {
			return nil
		}
		return []lifeEvent{{op: lifeOpen, res: res, cond: condBoolTrue, what: exprString(call)}}
	case "commit", "Commit", "settle", "Settle":
		return []lifeEvent{{op: lifeClose, res: res}}
	}
	return nil
}
