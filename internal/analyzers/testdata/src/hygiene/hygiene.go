// Package hygiene is the fixture for the hygiene analyzer: mutexcopy
// (lock-containing values copied by value) and ctxleak (goroutines
// launched with no shutdown path).
package hygiene

import "sync"

// guarded contains a mutex, so copying it by value forks the lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

// wrapper embeds guarded; the lock travels with it.
type wrapper struct {
	g guarded
}

// refHolder holds the lock behind a pointer; copies share the mutex.
type refHolder struct {
	mu *sync.Mutex
}

func byValueParam(g guarded) int { // want "parameter passes guarded by value, copying its mutex"
	return g.n
}

func byPointerParam(g *guarded) int {
	return g.n
}

func refHolderParam(r refHolder) *sync.Mutex {
	return r.mu
}

func byValueResult() (w wrapper) { // want "result passes wrapper by value, copying its mutex"
	return
}

func (g guarded) valueMethod() int { // want "receiver passes guarded by value, copying its mutex"
	return g.n
}

func (g *guarded) pointerMethod() int {
	return g.n
}

func rangeCopies(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range copies guarded, which contains a mutex"
		total += g.n
	}
	return total
}

func rangeByIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

func derefCopy(p *guarded) {
	c := *p // want "assignment copies guarded, which contains a mutex"
	_ = c
}

func indexCopy(gs []guarded) {
	c := gs[0] // want "assignment copies guarded, which contains a mutex"
	_ = c
}

// freshValue mints a new value; no existing lock is duplicated.
func freshValue() {
	g := guarded{}
	_ = g
}

// leakyGoroutine spins forever with no way to learn about shutdown.
func leakyGoroutine() {
	go func() { // want "goroutine has no shutdown path"
		for {
			work()
		}
	}()
}

// drainUntilClosed exits when the owner closes the channel.
func drainUntilClosed(ch chan int) {
	go func() {
		for x := range ch {
			_ = x
		}
	}()
}

// signalsDone reports completion through the WaitGroup.
func signalsDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// selectsOnQuit watches a quit channel.
func selectsOnQuit(quit chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-quit:
				return
			case x := <-ch:
				_ = x
			}
		}
	}()
}

// namedWorker resolves through the package scope to a body that drains
// a channel; launching it is fine.
func namedWorker(ch chan int) {
	for x := range ch {
		_ = x
	}
}

func launchNamed(ch chan int) {
	go namedWorker(ch)
}

type pump struct{ ch chan int }

// loop has no exit; launching it as a method leaks too.
func (p *pump) loop() {
	for {
		work()
	}
}

func (p *pump) start() {
	go p.loop() // want "goroutine has no shutdown path"
}

// allowedLeak documents why this goroutine may outlive its owner: it
// is a process-lifetime metrics pump.
func allowedLeak() {
	//lint:allow hygiene process-lifetime metrics pump; exits with the process
	go func() {
		for {
			work()
		}
	}()
}

func work() {}
