// Package hygiene is the fixture for the hygiene analyzer: mutexcopy
// (lock-containing values copied by value). Goroutine lifecycle
// checking moved to the interprocedural chanlife analyzer and its
// fixture.
package hygiene

import "sync"

// guarded contains a mutex, so copying it by value forks the lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

// wrapper embeds guarded; the lock travels with it.
type wrapper struct {
	g guarded
}

// refHolder holds the lock behind a pointer; copies share the mutex.
type refHolder struct {
	mu *sync.Mutex
}

func byValueParam(g guarded) int { // want "parameter passes guarded by value, copying its mutex"
	return g.n
}

func byPointerParam(g *guarded) int {
	return g.n
}

func refHolderParam(r refHolder) *sync.Mutex {
	return r.mu
}

func byValueResult() (w wrapper) { // want "result passes wrapper by value, copying its mutex"
	return
}

func (g guarded) valueMethod() int { // want "receiver passes guarded by value, copying its mutex"
	return g.n
}

func (g *guarded) pointerMethod() int {
	return g.n
}

func rangeCopies(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range copies guarded, which contains a mutex"
		total += g.n
	}
	return total
}

func rangeByIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

func derefCopy(p *guarded) {
	c := *p // want "assignment copies guarded, which contains a mutex"
	_ = c
}

func indexCopy(gs []guarded) {
	c := gs[0] // want "assignment copies guarded, which contains a mutex"
	_ = c
}

// freshValue mints a new value; no existing lock is duplicated.
func freshValue() {
	g := guarded{}
	_ = g
}
