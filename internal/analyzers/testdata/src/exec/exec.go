// Package exec is the fixture for the determinism analyzer. Its import
// path ("exec") places it inside the deterministic core, so wall-clock
// reads, math/rand global state and map iteration are all flagged.
package exec

import (
	"math/rand"
	"sort"
	"time"
)

type buf struct{ hot bool }

// victimByMapRange is the regression that motivated the map-iteration
// rule: the eviction scan picked a victim by ranging over the buffer
// map, so the choice depended on Go's per-run range order.
func victimByMapRange(bufs map[int]*buf) *buf {
	for _, b := range bufs { // want "map iteration in the deterministic core"
		if b.hot {
			return b
		}
	}
	return nil
}

// victimSorted is the deterministic replacement: materialize and sort
// the keys, then scan in a stable order. The materializing range is
// order-insensitive and says so.
func victimSorted(bufs map[int]*buf) *buf {
	keys := make([]int, 0, len(bufs))
	//lint:allow determinism key materialization; sorted before use
	for k := range bufs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if bufs[k].hot {
			return bufs[k]
		}
	}
	return nil
}

func stamp() time.Time {
	return time.Now() // want "time.Now in the deterministic core"
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want "time.Since in the deterministic core"
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "time.Until in the deterministic core"
}

// durations and date construction are deterministic; only clock reads
// are banned.
func fixedTimes() (time.Duration, time.Time) {
	return 3 * time.Millisecond, time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
}

func globalRand() int {
	return rand.Intn(10) // want "math/rand global state \\(rand.Intn\\) in the deterministic core"
}

func reseed() {
	rand.Seed(42) // want "math/rand global state \\(rand.Seed\\) in the deterministic core"
}

// seededRand threads an explicit source from the config seed — the
// sanctioned pattern.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// recordSpan shows the allowlist escape hatch: trace recording is off
// the deterministic path, and says so.
func recordSpan() time.Time {
	//lint:allow determinism trace recording only; never feeds scheduling
	return time.Now()
}
