// Package claimdisc is the fixture for the claimdiscipline analyzer:
// the DMA buffer state machine may only be advanced through the
// claim/commit/settle helpers, and a buffer made resident under a
// synchronous claim must be committed or settled before the lock is
// released.
package claimdisc

import "sync"

type page struct{ data []byte }

// buffer mirrors the executor's DMA buffer: the four claim fields plus
// residency.
type buffer struct {
	state     int
	done      chan struct{}
	async     bool
	committed bool
	dev       *page
	host      *page
}

type vm struct {
	mu sync.Mutex
}

// claim, commit and settle are the transition helpers; writes to the
// claim fields inside them are the point.
func (v *vm) claim(b *buffer, st int, async bool) {
	b.state = st
	b.done = make(chan struct{})
	b.async = async
	b.committed = false
}

func (v *vm) commit(b *buffer) {
	b.committed = true
}

func (v *vm) settle(b *buffer) {
	b.state = 0
	close(b.done)
	b.done = nil
	b.async = false
	b.committed = false
}

// rawCommit is the regression that motivated rule 1: flipping
// committed directly skips the helper's unclaimed-buffer panic.
func (v *vm) rawCommit(b *buffer) {
	b.committed = true // want "direct write to buffer.committed outside the claim/commit/settle transition helpers"
}

func (v *vm) rawState(b *buffer) {
	b.state = 2      // want "direct write to buffer.state outside the claim/commit/settle transition helpers"
	b.done = nil     // want "direct write to buffer.done outside the claim/commit/settle transition helpers"
	b.async = true   // want "direct write to buffer.async outside the claim/commit/settle transition helpers"
	b.host = &page{} // residency fields are not state-machine fields
	b.dev = nil      // neither is dev
}

// swapInGood is the canonical correct shape: synchronous claim, make
// resident, commit, unlock.
func (v *vm) swapInGood(b *buffer) {
	v.mu.Lock()
	v.claim(b, 1, false)
	b.dev = &page{}
	v.commit(b)
	v.mu.Unlock()
}

// swapInSettled resolves the claim with settle instead; equally fine.
func (v *vm) swapInSettled(b *buffer) {
	v.mu.Lock()
	v.claim(b, 1, false)
	b.dev = &page{}
	v.settle(b)
	v.mu.Unlock()
}

// swapInLeaky releases the lock with a resident, uncommitted claim —
// another device's reserve can now see a resident buffer whose claim
// it must not wait on.
func (v *vm) swapInLeaky(b *buffer) {
	v.mu.Lock()
	v.claim(b, 1, false)
	b.dev = &page{} // want "buffer made resident under a synchronous claim without commit/settle before the lock is released"
	v.mu.Unlock()
	v.commit(b)
}

// asyncClaim is exempt from rule 2: async claims are committed later
// by the DMA worker's completion path.
func (v *vm) asyncClaim(b *buffer) {
	v.mu.Lock()
	v.claim(b, 1, true)
	b.dev = &page{}
	v.mu.Unlock()
}

// evict drops residency; assigning nil is not "making resident".
func (v *vm) evict(b *buffer) {
	v.mu.Lock()
	v.claim(b, 1, false)
	b.dev = nil
	v.settle(b)
	v.mu.Unlock()
}

// allowedRaw shows the escape hatch for genuinely special cases, with
// the mandatory reason.
func (v *vm) allowedRaw(b *buffer) {
	//lint:allow claimdiscipline test-only reset between iterations
	b.committed = false
}
