// Package claimdisc is the fixture for the claimdiscipline analyzer:
// the DMA buffer's packed claim word and done pointer may only be
// mutated through the state-machine helpers, helpers may only advance
// the word by CompareAndSwap, and a buffer under a synchronous
// uncommitted claim must be committed or settled before lruPush
// publishes it to a shard's LRU.
package claimdisc

import (
	"sync"
	"sync/atomic"
)

type page struct{ data []byte }

// buffer mirrors the executor's DMA buffer: the packed claim word and
// the done-channel pointer are the state-machine fields; dev/host are
// claim-holder-owned payload.
type buffer struct {
	word atomic.Uint64
	done atomic.Pointer[chan struct{}]
	dev  *page
	host *page
	hits atomic.Uint64
}

type shard struct {
	mu  sync.Mutex
	lru *buffer
}

type vm struct {
	shards []*shard
}

// claim wins the word by CAS and then owns the done slot; both writes
// are the point of the helper.
func (v *vm) claim(b *buffer, st uint64, async, committed bool, need int) bool {
	for {
		w := b.word.Load()
		if w&3 != 0 {
			return false
		}
		n := w | st
		if committed {
			n |= 8
		}
		if b.word.CompareAndSwap(w, n) {
			ch := make(chan struct{})
			b.done.Store(&ch)
			return true
		}
	}
}

// commit publishes residency with a CAS loop.
func (v *vm) commit(b *buffer) {
	for {
		w := b.word.Load()
		if b.word.CompareAndSwap(w, w|8|16) {
			return
		}
	}
}

// settle clears the claim and hands the done channel to waiters.
func (v *vm) settle(b *buffer, resident bool, pinDelta int) {
	p := b.done.Load()
	for {
		w := b.word.Load()
		if b.word.CompareAndSwap(w, w&^uint64(3)) {
			break
		}
	}
	if b.done.CompareAndSwap(p, nil) {
		close(*p)
	}
}

// pin is a single-shot CAS against the caller's observed word.
func (v *vm) pin(b *buffer, w uint64) bool {
	return b.word.CompareAndSwap(w, w+256)
}

func (v *vm) unpin(b *buffer) bool {
	for {
		w := b.word.Load()
		if w&0xff00 == 0 {
			return false
		}
		if b.word.CompareAndSwap(w, w-256) {
			return true
		}
	}
}

func (v *vm) consumePrefetch(b *buffer) bool {
	for {
		w := b.word.Load()
		if w&32 == 0 {
			return false
		}
		if b.word.CompareAndSwap(w, w&^uint64(32)) {
			return true
		}
	}
}

// vm2 carries deliberately broken helpers: rule 2 — even inside a
// method named commit/settle, the word may only advance by
// CompareAndSwap. A raw Store or Swap clobbers pins taken concurrently
// by another device's Ensure.
type vm2 struct{}

func (v *vm2) commit(b *buffer) {
	b.word.Store(b.word.Load() | 8) // want "non-CAS mutation of buffer.word \\(Store\\) inside a transition helper"
}

func (v *vm2) settle(b *buffer, resident bool, pinDelta int) {
	b.word.Swap(0)   // want "non-CAS mutation of buffer.word \\(Swap\\) inside a transition helper"
	b.done.Swap(nil) // want "non-CAS mutation of buffer.done \\(Swap\\) inside a transition helper"
}

// evictFast mutates the machine ad hoc — rule 1 on both fields.
func (v *vm) evictFast(b *buffer) {
	b.word.Store(0)                  // want "mutation of buffer.word outside the claim state-machine helpers"
	b.done.Store(nil)                // want "mutation of buffer.done outside the claim state-machine helpers"
	b.word.Add(256)                  // want "mutation of buffer.word outside the claim state-machine helpers"
	if b.word.CompareAndSwap(0, 1) { // want "mutation of buffer.word outside the claim state-machine helpers"
		return
	}
}

// replaceWord reassigns the atomic value wholesale — never legal.
func (v *vm) replaceWord(b *buffer) {
	b.word = atomic.Uint64{} // want "direct assignment to buffer.word bypasses its atomic API"
}

// reads and non-claim atomics are fine anywhere.
func (v *vm) scan(b *buffer) bool {
	b.hits.Add(1)
	if p := b.done.Load(); p != nil {
		<-*p
	}
	return b.word.Load() != 0
}

// lruPush publishes a buffer where the eviction scan will find it.
func (v *vm) lruPush(sh *shard, b *buffer) {
	sh.lru = b
}

// swapInGood is the canonical correct shape: synchronous claim,
// install payload, commit, then publish.
func (v *vm) swapInGood(sh *shard, b *buffer) {
	if !v.claim(b, 1, false, false, 0) {
		return
	}
	b.dev = &page{}
	v.commit(b)
	v.lruPush(sh, b)
}

// swapInSettled resolves the claim with settle before a later push;
// equally fine.
func (v *vm) swapInSettled(sh *shard, b *buffer) {
	if !v.claim(b, 1, false, false, 0) {
		return
	}
	v.settle(b, true, 0)
	v.lruPush(sh, b)
}

// swapInLeaky publishes with the sync claim still uncommitted —
// another device's reserve can now find a resident buffer whose claim
// it must not wait on.
func (v *vm) swapInLeaky(sh *shard, b *buffer) {
	if !v.claim(b, 1, false, false, 0) {
		return
	}
	b.dev = &page{}
	v.lruPush(sh, b) // want "buffer published to the LRU under an uncommitted synchronous claim"
	v.commit(b)
}

// asyncClaim is exempt from rule 3: async claims are committed by the
// DMA worker's completion path and are waitable from the start.
func (v *vm) asyncClaim(sh *shard, b *buffer) {
	if !v.claim(b, 1, true, false, 0) {
		return
	}
	v.lruPush(sh, b)
}

// committedAtClaim is exempt too: the claim CAS itself set committed,
// so no observer ever sees an unwaitable resident claim.
func (v *vm) committedAtClaim(sh *shard, b *buffer) {
	if !v.claim(b, 2, false, true, 0) {
		return
	}
	v.lruPush(sh, b)
}

// allowedRaw shows the escape hatch for genuinely special cases, with
// the mandatory reason.
func (v *vm) allowedRaw(b *buffer) {
	//lint:allow claimdiscipline test-only reset between iterations
	b.word.Store(0)
}
