// Fixture for the errcheck analyzer: dropped VM/Manager errors in
// every flagged form, plus the allowed patterns that must stay quiet.
package errcheck

type VM struct{}

func (vm *VM) Unpin(id int) error               { return nil }
func (vm *VM) Ensure(id int) ([]float32, error) { return nil, nil }
func (vm *VM) WaitIdle() error                  { return nil }
func (vm *VM) Used(id int) int64                { return 0 }

type Manager struct{}

func (m *Manager) Release(id int) error { return nil }

type other struct{}

func (o *other) Unpin(id int) error { return nil }

func drops(vm *VM, m *Manager) {
	vm.Unpin(1)            // want "VM.Unpin returns an error that is dropped"
	m.Release(2)           // want "Manager.Release returns an error that is dropped"
	_ = vm.Unpin(3)        // want "VM.Unpin error assigned to blank"
	buf, _ := vm.Ensure(4) // want "VM.Ensure error assigned to blank"
	_ = buf
	go vm.WaitIdle()    // want "VM.WaitIdle launched as a goroutine drops its error"
	defer vm.WaitIdle() // want "deferred VM.WaitIdle drops its error"
}

func fine(vm *VM, m *Manager, o *other) error {
	if err := vm.Unpin(1); err != nil { // handled: quiet
		return err
	}
	buf, err := vm.Ensure(2) // both results bound: quiet
	if err != nil {
		return err
	}
	_ = buf
	vm.Used(3)           // no error result: quiet
	o.Unpin(4)           // not a guarded type: quiet
	err2 := m.Release(5) // bound to a named variable: quiet
	//lint:allow errcheck best-effort cleanup exercised by the directive test
	vm.Unpin(6)
	return err2
}
