// Package directives is the fixture for //lint:allow hygiene: a
// directive must name a known analyzer, carry a reason, and actually
// suppress something.
package directives

import "time"

// stale carries a directive that suppresses nothing: time.Unix is
// deterministic, so no analyzer fires here.
func stale() time.Time {
	//lint:allow hygiene nothing here for hygiene to flag
	return time.Unix(0, 0)
}

func unknownAnalyzer() {
	//lint:allow speling reason text present
}

func missingReason() {
	//lint:allow hygiene
}
