// Package lockorder is the fixture for the lockorder analyzer: the
// global lock-acquisition graph built from interprocedural summaries,
// rejecting cycles, recursive acquisitions, and same-class shard
// nesting outside the ascending-order contract.
package lockorder

import "sync"

// manager mirrors memory.Manager: a top-level lock above per-device
// shards.
type manager struct {
	mu     sync.Mutex
	shards []devShard
}

// devShard mirrors the per-device accounting shard; the Shard suffix
// is what marks its mu as ascending-contract-governed.
type devShard struct {
	mu   sync.Mutex
	used int64
}

// registry is an unrelated lock class for the cycle cases.
type registry struct {
	mu    sync.Mutex
	names map[string]int
}

// ---------------------------------------------------------- clean order

// sweep takes the manager lock, then each shard one at a time — the
// documented order, no two shards ever held together.
func (m *manager) sweep() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for i := range m.shards {
		d := &m.shards[i]
		d.mu.Lock()
		total += d.used
		d.mu.Unlock()
	}
	return total
}

// chargeLocked is documented entry-held; its caller holds d.mu for it,
// so the summary must not read the contract as a second acquisition.
//
// Requires d.mu held.
func chargeLocked(d *devShard, n int64) {
	d.used += n
}

func (m *manager) charge(i int, n int64) {
	d := &m.shards[i]
	d.mu.Lock()
	chargeLocked(d, n)
	d.mu.Unlock()
}

// ------------------------------------------------- cycle at call depth

// lookup locks the registry and, deep inside a helper, the manager:
// registry.mu → manager.mu.
func (r *registry) lookup(m *manager, name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return totalOf(m)
}

func totalOf(m *manager) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for i := range m.shards {
		total += m.shards[i].used
	}
	return total
}

// rename locks the manager and then, via a helper, the registry:
// manager.mu → registry.mu. Together with lookup this closes the
// cycle, even though no single function ever holds both pairs.
func (m *manager) rename(r *registry, name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// The cycle is reported once, at the witness of its canonically
	// first edge (smallest class leads).
	record(r, name) // want `lock-order cycle: lockorder\.manager\.mu → lockorder\.registry\.mu .* lockorder\.registry\.mu → lockorder\.manager\.mu`
}

func record(r *registry, name string) {
	r.mu.Lock()
	r.names[name] = len(r.names)
	r.mu.Unlock()
}

// ------------------------------------------- recursive acquisition

// audit re-locks the manager through a helper while already holding
// it: a self-deadlock no single-function pass can see.
func (m *manager) audit() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return totalOf(m) // want `recursive acquisition of lockorder\.manager\.mu \(inside lockorder\.totalOf\) while it is already held`
}

// ------------------------------------------- multi-shard nesting

// migrate holds one shard while a helper locks another — same class,
// no ascending contract anywhere on the chain.
func (m *manager) migrate(from, to int, n int64) {
	d := &m.shards[from]
	d.mu.Lock()
	m.deposit(to, n) // want `second shard lock lockorder\.devShard\.mu acquired \(inside lockorder\.manager\.deposit\) while lockorder\.devShard\.mu is held`
	d.used -= n
	d.mu.Unlock()
}

func (m *manager) deposit(i int, n int64) {
	d := &m.shards[i]
	d.mu.Lock()
	d.used += n
	d.mu.Unlock()
}

// rebalance does the same nested hold, but declares the contract:
// shards are locked in ascending device order.
func (m *manager) rebalance(n int64) {
	for i := 0; i+1 < len(m.shards); i++ {
		lo, hi := &m.shards[i], &m.shards[i+1]
		lo.mu.Lock()
		moveAscending(lo, hi, n)
		lo.mu.Unlock()
	}
}

// moveAscending shifts load between two shards locked in ascending
// device order, lo already held by the caller.
func moveAscending(lo, hi *devShard, n int64) {
	hi.mu.Lock()
	lo.used -= n
	hi.used += n
	hi.mu.Unlock()
}
