// Package adaptinputs is the fixture for the adaptinputs analyzer.
// Its import path places it inside the analyzer's scope, and the
// function names draw the line the pass enforces: functions named
// like decisions (adapt*/retune*/...) may not read the wall clock,
// touch math/rand global state or range a map; measurement helpers
// with other names may.
package adaptinputs

import (
	"math/rand"
	"time"
)

type signals struct {
	covered, uncovered int
	wantPeak           int64
}

type decision struct {
	step, dev int
	what      string
}

// adaptByWallClock is the violation the rule exists for: a window
// decision keyed to elapsed time diverges across runs and machines.
func adaptByWallClock(window int, started time.Time) int {
	if time.Since(started) > time.Second { // want "time.Since feeds adaptation decision adaptByWallClock"
		return window + 1
	}
	if time.Now().UnixNano()%2 == 0 { // want "time.Now feeds adaptation decision adaptByWallClock"
		return window - 1
	}
	return window
}

// retunePickByMapRange folds a retune decision over a ranged map, so
// the chosen candidate depends on Go's per-run range order.
func retunePickByMapRange(scores map[string]float64) string {
	best, bestScore := "", -1.0
	for name, s := range scores { // want "map iteration inside adaptation decision retunePickByMapRange"
		if s > bestScore {
			best, bestScore = name, s
		}
	}
	return best
}

// adaptJitter perturbs a decision with the global rand source:
// interleaving-ordered and unseedable per component.
func adaptJitter(window int) int {
	return window + rand.Intn(2) // want "math/rand global state \\(rand.Intn\\) feeds adaptation decision adaptJitter"
}

// adaptStepKeyed is the sanctioned shape: a pure function of the step
// counter and program-order signals, with map lookups but no map
// ranges, and an explicit *rand.Rand if randomness were ever needed.
func adaptStepKeyed(step int, sig signals, seen map[int]bool, budget int64) []decision {
	var out []decision
	if sig.wantPeak > budget && !seen[step] {
		out = append(out, decision{step: step, dev: 0, what: "window"})
	}
	if sig.uncovered > 0 && sig.wantPeak*2 <= budget {
		out = append(out, decision{step: step, dev: 0, what: "budget"})
	}
	return out
}

// measureProfile reads the wall clock but is not a decision function
// — measurement is exactly what the tuner is for. Out of scope by
// name, so no finding.
func measureProfile(start time.Time) float64 {
	return time.Since(start).Seconds()
}
