// Package pinbalance is the fixture for the pinbalance analyzer: every
// pin must be released, handed off, or covered by a documented
// ownership contract on every CFG path, including early error returns.
package pinbalance

import "errors"

// state mirrors tensor.State: pin accounting on a pointer receiver,
// success signaled by error.
type state struct {
	pins int
	big  bool
}

func (st *state) Pin() error {
	if st.pins < 0 {
		return errors.New("evicting")
	}
	st.pins++
	return nil
}

func (st *state) Unpin() error {
	if st.pins == 0 {
		return errors.New("not pinned")
	}
	st.pins--
	return nil
}

// buffer and vmLike mirror the exec VM's bool-style pin helpers.
type buffer struct {
	pins int
}

type vmLike struct{}

func (vm *vmLike) pin(b *buffer, need int) bool {
	b.pins++
	return true
}

func (vm *vmLike) unpin(b *buffer) {
	b.pins--
}

func (vm *vmLike) settle(b *buffer, resident bool, pinDelta int) {
	b.pins += pinDelta
}

// ---------------------------------------------------------------- clean

// balanced pins and unpins on the happy path; the failed-Pin path never
// held the pin, so nothing leaks.
func balanced(st *state) error {
	if err := st.Pin(); err != nil {
		return err
	}
	st.big = true
	return st.Unpin()
}

// deferred releases through defer, so every return — including the
// error one — is balanced.
func deferred(st *state, bad bool) error {
	if err := st.Pin(); err != nil {
		return err
	}
	defer st.Unpin()
	if bad {
		return errors.New("mid-flight failure")
	}
	return nil
}

// releaseDepth pins here and releases inside a helper: balance must be
// recognized at any call depth through the ResOps closure.
func releaseDepth(st *state) error {
	if err := st.Pin(); err != nil {
		return err
	}
	drop(st)
	return nil
}

func drop(st *state) {
	_ = st.Unpin()
}

// handoff transfers the pinned state into a long-lived structure whose
// owner releases it later; storing ends this function's obligation.
type ledger struct {
	pinned []*state
}

func handoff(l *ledger, st *state) error {
	if err := st.Pin(); err != nil {
		return err
	}
	l.pinned = append(l.pinned, st)
	return nil
}

// returned hands the pinned state back to the caller: returning the
// resource is a handoff, so no contract is needed.
func returned(st *state) (*state, error) {
	if err := st.Pin(); err != nil {
		return nil, err
	}
	return st, nil
}

// warm pre-loads the state and pins it; the caller owns the pin and
// releases it via Unpin. The "pins it" contract licenses the open exit.
func warm(st *state) error {
	if err := st.Pin(); err != nil {
		return err
	}
	st.big = false
	return nil
}

// -------------------------------------------------------------- leaks

// leakOnError takes the pin, then an unrelated failure returns early
// without releasing: the pin-budget leak the analyzer exists for.
func leakOnError(st *state) error {
	if err := st.Pin(); err != nil { // want `pin on st taken at .* is not released on an error path`
		return err
	}
	if st.big {
		return errors.New("over budget")
	}
	return st.Unpin()
}

// leakAtDepth passes the pinned state to a helper that does NOT
// release it — a resolvable callee is transparent, not a handoff, so
// the error return still leaks.
func leakAtDepth(st *state) error {
	if err := st.Pin(); err != nil { // want `pin on st taken at .* is not released on an error path`
		return err
	}
	touch(st)
	if st.big {
		return errors.New("over budget")
	}
	return st.Unpin()
}

func touch(st *state) {
	st.big = !st.big
}

// leakBoolPin uses the VM-style bool pin: the success edge of the
// guard holds the pin, and the early return drops it.
func leakBoolPin(vm *vmLike, b *buffer, bad bool) error {
	if !vm.pin(b, 1) { // want `pin on b taken at .* is not released on an error path`
		return nil
	}
	if bad {
		return errors.New("rollback")
	}
	vm.unpin(b)
	return nil
}

// leakSettleDelta materializes a pin through settle's +1 delta and
// then leaks it on a non-error return; pinbalance is not limited to
// error exits.
func leakSettleDelta(vm *vmLike, b *buffer, keep bool) {
	vm.settle(b, true, +1) // want `pin on b taken at .* is not released on a path`
	if keep {
		return
	}
	vm.unpin(b)
}
