// Package claimlife is the fixture for the claimlife analyzer: every
// successful claim must reach exactly one of commit or settle on every
// CFG path, or be handed off to another owner.
package claimlife

import "errors"

// buf mirrors the exec VM buffer: a claim word guarded by CAS-style
// claim/commit/settle methods on the VM.
type buf struct {
	word uint32
}

type vm struct {
	depth int
}

func (v *vm) claim(b *buf) bool {
	if b.word != 0 {
		return false
	}
	b.word = 1
	return true
}

func (v *vm) commit(b *buf) {
	b.word = 2
}

func (v *vm) settle(b *buf, resident bool, pinDelta int) {
	b.word = 0
}

// req carries a claimed buffer to another goroutine; the worker that
// drains the queue settles it.
type req struct {
	b *buf
}

func (v *vm) enqueue(r req) {
	_ = r
}

// ---------------------------------------------------------------- clean

// committed takes the claim and commits on the only path that holds it.
func committed(v *vm, b *buf) {
	if !v.claim(b) {
		return
	}
	v.commit(b)
}

// settled resolves the claim through settle instead of commit.
func settled(v *vm, b *buf) error {
	if !v.claim(b) {
		return errors.New("contended")
	}
	v.settle(b, true, 0)
	return nil
}

// failedClaim never enters the claimed state, so the early return is
// fine on both arms.
func failedClaim(v *vm, b *buf) bool {
	if !v.claim(b) {
		return false
	}
	v.commit(b)
	return true
}

// handoffQueue transfers the claimed buffer into a request that another
// owner settles; building the composite ends this function's obligation.
func handoffQueue(v *vm, b *buf) {
	if !v.claim(b) {
		return
	}
	v.enqueue(req{b: b})
}

// settleForeign settles a buffer claimed elsewhere: close-without-open
// is a no-op, not a diagnostic.
func settleForeign(v *vm, b *buf) {
	v.settle(b, false, -1)
}

// -------------------------------------------------------------- leaks

// leakOnError claims, then an unrelated failure returns before either
// commit or settle: the buffer is stuck claimed forever.
func leakOnError(v *vm, b *buf) error {
	if !v.claim(b) { // want `claim on b taken at .* is neither committed, settled nor handed off on an error path`
		return errors.New("contended")
	}
	if v.depth > 8 {
		return errors.New("too deep")
	}
	v.commit(b)
	return nil
}

// leakOneBranch commits on one arm and forgets the other: the
// fallthrough path drops the claim on the floor.
func leakOneBranch(v *vm, b *buf, ready bool) {
	if !v.claim(b) { // want `claim on b taken at .* is neither committed, settled nor handed off on a path`
		return
	}
	if ready {
		v.commit(b)
	}
}
