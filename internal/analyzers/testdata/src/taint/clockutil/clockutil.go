// Package clockutil is the out-of-core half of the determinism taint
// fixture: helpers that reach wall-clock and global-rand sources at
// varying call depths. Nothing here is flagged — the package is
// outside the deterministic core — but calling into it from the core
// is.
package clockutil

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock directly.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter reaches the wall clock one call deep.
func Jitter() int64 {
	return Stamp() + 1
}

// Roll reaches math/rand global state.
func Roll() int {
	return rand.Intn(6)
}

// Fixed is clean at every depth.
func Fixed() int64 {
	return 42
}

// Clock is the sanctioned injection boundary, mirroring trace.Clock:
// interface calls do not propagate taint.
type Clock interface {
	Stamp() int64
}
