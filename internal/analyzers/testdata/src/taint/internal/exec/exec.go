// Package exec is the in-core half of the determinism taint fixture:
// its import path suffix puts it in the deterministic core (and the
// adaptinputs scope), so summary-based taint flowing in from clockutil
// is reported here. The package body itself is lexically clean — every
// finding below exists only at call-graph depth, which is exactly what
// the PR-4 lexical pass could not see.
package exec

import "clockutil"

// schedule calls a directly-tainted helper.
func schedule() int64 {
	return clockutil.Stamp() // want `call to clockutil\.Stamp reaches time\.Now at some call depth`
}

// plan calls a helper whose taint is itself one call deep; the witness
// names the hop.
func plan() int64 {
	return clockutil.Jitter() // want `call to clockutil\.Jitter reaches time\.Now via clockutil\.Stamp at some call depth`
}

// pickVictim reaches global rand through the helper package.
func pickVictim() int {
	return clockutil.Roll() // want `call to clockutil\.Roll reaches rand\.Intn at some call depth`
}

// retuneWindow is an adaptation decision (adaptFuncRe); any tainted
// callee is banned, with the adapt-specific message.
func retuneWindow() int64 {
	return clockutil.Stamp() // want `adaptation decision exec\.retuneWindow calls clockutil\.Stamp, which reaches time\.Now; decisions must replay from logged inputs alone`
}

// tick calls only clean helpers.
func tick() int64 {
	return clockutil.Fixed()
}

// stamped routes timing through the interface boundary; interface
// calls do not propagate taint — that is the sanctioned pattern.
func stamped(c clockutil.Clock) int64 {
	return c.Stamp()
}
