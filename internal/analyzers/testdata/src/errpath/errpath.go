// Package errpath is the fixture for the errpath analyzer: locks,
// shard locks and snapshot handles must not still be held at an early
// error return. Happy-path leaks are lockhold's jurisdiction; errpath
// reports only error exits, with the concrete leaking path.
package errpath

import (
	"errors"
	"sync"
)

// store mirrors memory.Manager: a metadata mutex plus fallible helpers.
type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	dirt int
}

func (s *store) check() error {
	if s.dirt > 0 {
		return errors.New("dirty")
	}
	return nil
}

// devShard mirrors the sharded VM: a per-device lock.
type devShard struct {
	mu   sync.Mutex
	used int
}

// handle is a snapshot-style resource: acquired by value, released by
// method.
type handle struct {
	live bool
}

func (h *handle) Release() {
	h.live = false
}

type source struct {
	cur handle
}

func (src *source) Snapshot() *handle {
	return &handle{live: true}
}

// ---------------------------------------------------------------- clean

// balanced releases before every return, including the error one.
func balanced(s *store) error {
	s.mu.Lock()
	if err := s.check(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	return nil
}

// deferred releases through defer, so the error return is covered.
func deferred(s *store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(); err != nil {
		return err
	}
	return nil
}

// underLock runs under the caller's lock and may return with it still
// held, error or not. Requires mu held.
func (s *store) underLock() error {
	if err := s.check(); err != nil {
		return err
	}
	s.dirt = 0
	return nil
}

// drain takes over the caller's lock: mu held on entry, released on
// return.
func (s *store) drain() {
	s.dirt = 0
	s.mu.Unlock()
}

// transferred locks and then hands the lock to drain, whose contract
// releases it; the error return afterwards holds nothing.
func transferred(s *store) error {
	s.mu.Lock()
	s.drain()
	if err := s.check(); err != nil {
		return err
	}
	return nil
}

// snapReleased releases the snapshot via defer on every path.
func snapReleased(src *source, s *store) error {
	snap := src.Snapshot()
	defer snap.Release()
	if err := s.check(); err != nil {
		return err
	}
	return nil
}

// happyLeak holds the lock at a non-error return. That is lockhold's
// report, not errpath's: no error guard is crossed and no error
// returned, so errpath stays silent here.
func happyLeak(s *store) {
	s.mu.Lock()
}

// -------------------------------------------------------------- leaks

// leakOnError takes the lock, then the error return skips the release.
func leakOnError(s *store) error {
	s.mu.Lock() // want `lock on s.mu taken at .* is still held on an error path`
	if err := s.check(); err != nil {
		return err
	}
	s.mu.Unlock()
	return nil
}

// leakShard leaks a per-device shard lock on the error return.
func leakShard(sh *devShard, s *store) error {
	sh.mu.Lock() // want `lock on sh.mu taken at .* is still held on an error path`
	if err := s.check(); err != nil {
		return err
	}
	sh.used++
	sh.mu.Unlock()
	return nil
}

// leakRLock leaks a read lock the same way.
func leakRLock(s *store) error {
	s.rw.RLock() // want `lock on s.rw taken at .* is still held on an error path`
	if err := s.check(); err != nil {
		return err
	}
	s.rw.RUnlock()
	return nil
}

// leakSnapshot drops the snapshot handle on the error return; only the
// happy path releases it.
func leakSnapshot(src *source, s *store) error {
	snap := src.Snapshot() // want `snapshot on snap taken at .* is still held on an error path`
	if err := s.check(); err != nil {
		return err
	}
	snap.Release()
	return nil
}
