// Package atomicproto is the fixture for the atomicproto analyzer: a
// copy of internal/claimword's pure transition machine with one
// deliberate divergence. Commit here forgets the prefetched mark on
// async claims, so its extracted table disagrees with the schedcheck
// spec on every claimed+async input; every other transition matches
// the spec exactly and must stay diagnostic-free.
package atomicproto

// Word is one buffer's packed claim state.
type Word uint64

// State is the DMA leg of the state machine.
type State uint64

const (
	Idle    State = 0
	SwapIn  State = 1
	SwapOut State = 2
)

const (
	stateMask Word = 0x3

	FlagAsync      Word = 1 << 2
	FlagCommitted  Word = 1 << 3
	FlagResident   Word = 1 << 4
	FlagPrefetched Word = 1 << 5

	pinShift      = 8
	pinLimit Word = 1 << 20
	pinMask  Word = (pinLimit - 1) << pinShift
)

func (w Word) State() State     { return State(w & stateMask) }
func (w Word) Claimed() bool    { return w.State() != Idle }
func (w Word) Async() bool      { return w&FlagAsync != 0 }
func (w Word) Committed() bool  { return w&FlagCommitted != 0 }
func (w Word) Resident() bool   { return w&FlagResident != 0 }
func (w Word) Prefetched() bool { return w&FlagPrefetched != 0 }
func (w Word) Pins() int        { return int((w & pinMask) >> pinShift) }

func (w Word) withPins(n int) Word {
	return (w &^ pinMask) | (Word(n) << pinShift & pinMask)
}

// Need is a claim precondition.
type Need int

const (
	NeedIdle Need = iota
	NeedUnpinned
	NeedEmpty
)

// Claim matches the spec exactly.
func Claim(w Word, st State, async, committed bool, need Need) (Word, bool) {
	if st != SwapIn && st != SwapOut {
		return w, false
	}
	if w.State() != Idle {
		return w, false
	}
	switch need {
	case NeedUnpinned:
		if w.Pins() > 0 {
			return w, false
		}
	case NeedEmpty:
		if w.Pins() > 0 || w.Resident() || w.Prefetched() {
			return w, false
		}
	}
	n := (w &^ (stateMask | FlagAsync | FlagCommitted)) | Word(st)
	if async {
		n |= FlagAsync
	}
	if committed {
		n |= FlagCommitted
	}
	return n, true
}

// Commit diverges: the async branch that sets FlagPrefetched is gone,
// so prefetch-budget accounting would leak.
func Commit(w Word) (Word, bool) { // want `claimword Commit diverges from the schedcheck DMA-model table on \d+/\d+ transitions`
	if !w.Claimed() {
		return w, false
	}
	return w | FlagResident | FlagCommitted, true
}

// Settle matches the spec exactly.
func Settle(w Word, resident bool, pinDelta int) (Word, bool) {
	if !w.Claimed() {
		return w, false
	}
	pins := w.Pins() + pinDelta
	if pins < 0 || Word(pins) >= pinLimit {
		return w, false
	}
	n := w &^ (stateMask | FlagAsync | FlagCommitted)
	if resident {
		n |= FlagResident
	} else {
		n &^= FlagResident | FlagPrefetched
	}
	return n.withPins(pins), true
}

// Pin matches the spec exactly.
func Pin(w Word) (Word, bool) {
	if w.State() != Idle || !w.Resident() {
		return w, false
	}
	if Word(w.Pins()+1) >= pinLimit {
		return w, false
	}
	return w.withPins(w.Pins() + 1), true
}

// Unpin matches the spec exactly.
func Unpin(w Word) (Word, bool) {
	if w.Pins() == 0 {
		return w, false
	}
	return w.withPins(w.Pins() - 1), true
}

// ConsumePrefetch matches the spec exactly.
func ConsumePrefetch(w Word) (Word, bool) {
	if !w.Prefetched() {
		return w, false
	}
	return w &^ FlagPrefetched, true
}
