// Package lockhold is the fixture for the lockhold analyzer: blocking
// operations under a held mutex, leaked locks on return paths, and the
// doc-comment contracts that adjust the expected entry/exit state.
package lockhold

import (
	"sync"
	"time"
)

type vmish struct {
	mu   sync.Mutex
	cond *sync.Cond
	work chan int
	done chan struct{}
	wg   sync.WaitGroup
}

func (v *vmish) WaitIdle() {}

// recvUnderLock is the canonical violation: a channel wait while the
// metadata lock is held stalls every other goroutine needing the VM.
func (v *vmish) recvUnderLock() int {
	v.mu.Lock()
	x := <-v.work // want "channel receive while mu is held"
	v.mu.Unlock()
	return x
}

func (v *vmish) sendUnderLock() {
	v.mu.Lock()
	v.work <- 1 // want "channel send while mu is held"
	v.mu.Unlock()
}

// recvReleased is the correct shape: release, wait, reacquire.
func (v *vmish) recvReleased() int {
	v.mu.Lock()
	v.mu.Unlock()
	x := <-v.work
	v.mu.Lock()
	v.mu.Unlock()
	return x
}

func (v *vmish) sleepUnderLock() {
	v.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while mu is held"
	v.mu.Unlock()
}

func (v *vmish) waitGroupUnderLock() {
	v.mu.Lock()
	v.wg.Wait() // want "sync.WaitGroup.Wait while mu is held"
	v.mu.Unlock()
}

func (v *vmish) waitIdleUnderLock() {
	v.mu.Lock()
	v.WaitIdle() // want "WaitIdle \\(drains async DMA\\) while mu is held"
	v.mu.Unlock()
}

func (v *vmish) selectUnderLock() {
	v.mu.Lock()
	select { // want "select without default while mu is held"
	case <-v.done:
	case x := <-v.work:
		_ = x
	}
	v.mu.Unlock()
}

// selectWithDefault never parks, so holding the lock across it is fine.
func (v *vmish) selectWithDefault() {
	v.mu.Lock()
	select {
	case <-v.done:
	default:
	}
	v.mu.Unlock()
}

// condWait is exempt: sync.Cond.Wait releases the mutex while parked.
func (v *vmish) condWait() {
	v.mu.Lock()
	for len(v.work) == 0 {
		v.cond.Wait()
	}
	v.mu.Unlock()
}

func (v *vmish) rangeChanUnderLock() {
	v.mu.Lock()
	for x := range v.work { // want "range over channel while mu is held"
		_ = x
	}
	v.mu.Unlock()
}

// leakOnEarlyReturn forgets the unlock on the error path.
func (v *vmish) leakOnEarlyReturn(bad bool) error {
	v.mu.Lock()
	if bad {
		return errSentinel // want "return path leaks held lock mu"
	}
	v.mu.Unlock()
	return nil
}

// deferUnlock is the idiomatic leak-proof shape.
func (v *vmish) deferUnlock(bad bool) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if bad {
		return errSentinel
	}
	return nil
}

// requiresHeld runs under the caller's lock. Requires mu held.
func (v *vmish) requiresHeld() {
	<-v.done // want "channel receive while mu is held"
}

// requiresHeldOK runs under the caller's lock and returns with it
// still held, as the contract allows. Requires mu held.
func (v *vmish) requiresHeldOK() {
	v.touch()
}

// handoff transfers lock ownership: mu held on entry, released on
// return.
func (v *vmish) handoff() {
	v.mu.Unlock()
}

// handoffLeak claims the release contract but keeps the lock on one
// path: mu held on entry, released on return.
func (v *vmish) handoffLeak(bad bool) {
	if bad {
		return // want "return path leaks held lock mu"
	}
	v.mu.Unlock()
}

// callsHandoff relies on handoff's "released on return" contract: the
// analyzer transitions mu to unlocked at the call, so neither the
// receive nor the return is flagged.
func (v *vmish) callsHandoff() int {
	v.mu.Lock()
	v.handoff()
	return <-v.work
}

// allowedRecv documents why this wait is safe: the channel is buffered
// and pre-filled by the caller, so the receive cannot park.
func (v *vmish) allowedRecv() int {
	v.mu.Lock()
	//lint:allow lockhold buffered and pre-filled by caller; never parks
	x := <-v.work
	v.mu.Unlock()
	return x
}

func (v *vmish) touch() {}

// vmShard mirrors the executor's per-device shard: a mutex plus
// payload. The "Shard" name suffix opts its mu into the fixed
// acquisition-order discipline.
type vmShard struct {
	mu   sync.Mutex
	used int64
}

// waitSettle mirrors the executor's claim-settle wait; its name is on
// the blocking list.
func (v *vmish) waitSettle() {}

// reserveShard runs under the caller's shard lock and may return with
// it still held. Requires sh.mu held.
func (v *vmish) reserveShard(sh *vmShard, bytes int64) {
	sh.used += bytes
}

// evictShard documents the parameter contract and drops the lock
// around a slow copy, reacquiring before return — no leak either way.
// Requires sh.mu held (released around the copy).
func (v *vmish) evictShard(sh *vmShard, bad bool) error {
	if bad {
		return errSentinel
	}
	sh.mu.Unlock()
	sh.mu.Lock()
	return nil
}

// paramLeakNoContract has no doc contract, so the lock it takes on the
// parameter must be released on every path.
func (v *vmish) paramLeakNoContract(sh *vmShard, bad bool) error {
	sh.mu.Lock()
	if bad {
		return errSentinel // want "return path leaks held lock mu"
	}
	sh.mu.Unlock()
	return nil
}

// blockUnderShardContract: the param contract puts sh.mu in the held
// state, so parking under it is flagged just like a receiver lock.
// Requires sh.mu held.
func (v *vmish) blockUnderShardContract(sh *vmShard) {
	<-v.done // want "channel receive while mu is held"
}

// waitSettleUnderLock: the in-module blocking list covers waitSettle.
func (v *vmish) waitSettleUnderLock(sh *vmShard) {
	sh.mu.Lock()
	v.waitSettle() // want "waitSettle \\(blocks on claim settle\\) while mu is held"
	sh.mu.Unlock()
}

// nestedShards takes a second shard lock while holding one — the
// deadlock class the fixed device order exists to prevent.
func (v *vmish) nestedShards(a, b *vmShard) {
	a.mu.Lock()
	b.mu.Lock() // want "second shard lock b.mu acquired while a.mu is held"
	b.mu.Unlock()
	a.mu.Unlock()
}

// sweepShards visits shards one at a time; never holds two.
func (v *vmish) sweepShards(shards []*vmShard) int64 {
	var total int64
	for _, sh := range shards {
		sh.mu.Lock()
		total += sh.used
		sh.mu.Unlock()
	}
	return total
}

// orderedShards declares the contract, licensing the nesting: shards
// are locked in ascending device order.
func (v *vmish) orderedShards(a, b *vmShard) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// nestedUnderContract holds one shard by contract and takes another —
// still a nesting violation without the order declaration.
// Requires sh.mu held.
func (v *vmish) nestedUnderContract(sh, other *vmShard) {
	other.mu.Lock() // want "second shard lock other.mu acquired while sh.mu is held"
	other.mu.Unlock()
}

// nonShardNesting: plain mutexes are outside the shard discipline.
func (v *vmish) nonShardNesting(w *vmish) {
	v.mu.Lock()
	w.mu.Lock()
	w.mu.Unlock()
	v.mu.Unlock()
}

var errSentinel = sentinelErr{}

type sentinelErr struct{}

func (sentinelErr) Error() string { return "sentinel" }
