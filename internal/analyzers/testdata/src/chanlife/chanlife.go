// Package chanlife is the fixture for the chanlife analyzer:
// goroutine shutdown reachability at any call depth, and done-channel
// discipline (one completion signal: closed or single-sender, never
// both).
package chanlife

import "sync"

// ------------------------------------- shutdown paths, direct (ex-ctxleak)

// leakyGoroutine spins forever with no way to learn about shutdown.
func leakyGoroutine() {
	go func() { // want "goroutine func literal has no shutdown path at any call depth"
		for {
			work()
		}
	}()
}

// drainUntilClosed exits when the owner closes the channel.
func drainUntilClosed(ch chan int) {
	go func() {
		for x := range ch {
			_ = x
		}
	}()
}

// signalsDone reports completion through the WaitGroup.
func signalsDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// selectsOnQuit watches a quit channel.
func selectsOnQuit(quit chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-quit:
				return
			case x := <-ch:
				_ = x
			}
		}
	}()
}

type pump struct{ ch chan int }

// loop has no exit; launching it as a method leaks too.
func (p *pump) loop() {
	for {
		work()
	}
}

func (p *pump) start() {
	go p.loop() // want "goroutine p.loop has no shutdown path at any call depth"
}

// ---------------------------------- shutdown paths, at call depth

// runDeep's shutdown construct is one call down: the PR-4 heuristic
// flagged this spawn and needed a //lint:allow; the interprocedural
// pass follows the call.
func runDeep(ch chan int) {
	go runLoop(ch)
}

func runLoop(ch chan int) {
	for {
		if !step(ch) {
			return
		}
	}
}

func step(ch chan int) bool {
	_, ok := <-ch
	return ok
}

// runDeepLeak never reaches a shutdown construct, at any depth.
func runDeepLeak() {
	go spinOuter() // want "goroutine spinOuter has no shutdown path at any call depth"
}

func spinOuter() {
	for {
		spinInner()
	}
}

func spinInner() {
	work()
}

// condWorker mirrors dmaWorker: the shutdown check is a Cond.Wait
// loop re-checking a quit flag, two calls down.
type engine struct {
	mu   sync.Mutex
	cond *sync.Cond
	quit bool
}

func (e *engine) startWorker() {
	go e.worker()
}

func (e *engine) worker() {
	for e.await() {
		work()
	}
}

func (e *engine) await() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for !e.quit {
		e.cond.Wait()
	}
	return !e.quit
}

// --------------------------------------- done-channel discipline

// task carries a done-channel that is closed on completion; its
// owner must not also send on it.
type task struct {
	done chan struct{}
}

func (t *task) complete() {
	close(t.done)
}

func (t *task) signalToo() {
	t.done <- struct{}{} // want `send on done-channel chanlife\.task\.done, which is closed at chanlife\.go:\d+; a done-channel signals completion exactly once`
}

// job's done-channel is send-signaled — fine with exactly one sender.
type job struct {
	done chan struct{}
}

func (j *job) finish() {
	j.done <- struct{}{}
}

func (j *job) waitDone() {
	<-j.done
}

// race's quit channel has two different sending functions: racing
// completion signals.
type race struct {
	quit chan struct{}
}

func (r *race) stopA() {
	r.quit <- struct{}{} // want `done-channel chanlife\.race\.quit has 2 sending functions`
}

func (r *race) stopB() {
	r.quit <- struct{}{} // want `done-channel chanlife\.race\.quit has 2 sending functions`
}

// queue channels (not done-named) legitimately mix many senders with
// one close; out of scope.
type pool struct {
	work chan int
}

func (p *pool) submitA(n int) { p.work <- n }
func (p *pool) submitB(n int) { p.work <- n }
func (p *pool) shutdown()     { close(p.work) }

// allowedLeak documents why this goroutine may outlive its owner: it
// is a process-lifetime metrics pump.
func allowedLeak() {
	//lint:allow chanlife process-lifetime metrics pump; exits with the process
	go func() {
		for {
			work()
		}
	}()
}

func work() {}
