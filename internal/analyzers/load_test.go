package analyzers

// Tests for the offline loader: build-constraint filtering, error
// surfaces (missing package, syntax error, type error), and the
// chained fixture importer's stdlib fallback.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a temp module from rel-path → source pairs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	tmp := t.TempDir()
	files["go.mod"] = "module loadtest\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(tmp, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return tmp
}

// TestLoadBuildTags: go list filters constrained files, so an
// excluded file's contents are invisible to analysis — even when they
// would not type-check.
func TestLoadBuildTags(t *testing.T) {
	tmp := writeModule(t, map[string]string{
		"pkg/a.go": "package pkg\n\nfunc Live() int { return 1 }\n",
		"pkg/b.go": "//go:build neverenabled\n\npackage pkg\n\nfunc Dead() int { return undefinedSymbol }\n",
	})
	pkgs, err := Load(tmp, "./pkg")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 1 {
		t.Errorf("constrained file leaked into the load: %d files, want 1", n)
	}
	if pkgs[0].Types.Scope().Lookup("Dead") != nil {
		t.Error("symbol from build-excluded file is visible")
	}
}

// TestLoadMissingPackage: a pattern matching nothing is an error from
// go list, not a silent empty result.
func TestLoadMissingPackage(t *testing.T) {
	tmp := writeModule(t, map[string]string{
		"pkg/a.go": "package pkg\n",
	})
	if _, err := Load(tmp, "./nosuchdir"); err == nil {
		t.Fatal("Load of a missing package succeeded")
	} else if !strings.Contains(err.Error(), "go list") {
		t.Errorf("error %q does not identify the go list stage", err)
	}
}

// TestLoadSyntaxError: a parse failure names the offending file.
func TestLoadSyntaxError(t *testing.T) {
	tmp := writeModule(t, map[string]string{
		"pkg/a.go": "package pkg\n\nfunc Broken( {\n",
	})
	if _, err := Load(tmp, "./pkg"); err == nil {
		t.Fatal("Load of a syntactically invalid package succeeded")
	} else if !strings.Contains(err.Error(), "a.go") {
		t.Errorf("error %q does not name the bad file", err)
	}
}

// TestLoadDirTypeError: LoadDir surfaces type-check failures with the
// package path.
func TestLoadDirTypeError(t *testing.T) {
	dir := t.TempDir()
	src := "package pkg\n\nfunc Bad() int { return \"not an int\" }\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir, "pkg"); err == nil {
		t.Fatal("LoadDir of an ill-typed package succeeded")
	} else if !strings.Contains(err.Error(), "type-checking pkg") {
		t.Errorf("error %q does not identify the type-check stage", err)
	}
}

// TestLoadDirsFallbackImporter: a later fixture directory resolves an
// earlier one by rel path through the local map, while stdlib imports
// fall through to the source importer — both in one program.
func TestLoadDirsFallbackImporter(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"base/base.go": "package base\n\nimport \"sync\"\n\nvar Mu sync.Mutex\n",
		"top/top.go":   "package top\n\nimport \"base\"\n\nfunc Touch() { base.Mu.Lock(); base.Mu.Unlock() }\n",
	}
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := LoadDirs(root, "base", "top")
	if err != nil {
		t.Fatalf("LoadDirs: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("want 2 packages, got %d", len(pkgs))
	}
	// Same FileSet throughout, so positions from both packages (and
	// diagnostics over them) are mutually consistent.
	if pkgs[0].Fset != pkgs[1].Fset {
		t.Error("LoadDirs packages do not share a FileSet")
	}
	// Order matters: the dependency must be listed first.
	if _, err := LoadDirs(root, "top", "base"); err == nil {
		t.Error("LoadDirs resolved an import of a not-yet-loaded fixture package")
	}
}
