package analyzers

// Chanlife verifies the executor's goroutine/channel lifecycle
// protocol interprocedurally, replacing the shallow ctxleak heuristic
// that hygiene carried since PR 4 (which only looked inside the
// spawned body itself and forced //lint:allow noise whenever the
// shutdown construct lived one call deeper).
//
//   - Every `go` statement whose target resolves statically must reach
//     a shutdown construct at SOME call depth: a select, a channel
//     receive, a channel range, WaitGroup.Done or Cond.Wait — the
//     constructs by which dmaWorker, the device workers and the nn
//     pool learn that Close/WaitIdle wants them gone. A goroutine
//     whose whole transitive call tree contains none of these outlives
//     its owner and trips the -race leak checks nondeterministically.
//   - Done-channels — fields or variables named done/quit/stop/abort —
//     carry a completion signal with exactly one delivery. A class
//     that is both closed and sent on mixes the two signalling
//     conventions: the send can panic after the close, and receivers
//     cannot tell completion from data. A class sent on from two or
//     more different functions has racing completion signals.
//
// Dynamic spawn targets (function values, interface methods) are not
// checkable, exactly as before; the executor has none on its hot
// paths.

import (
	"regexp"
	"sort"
)

var Chanlife = &Analyzer{
	Name: "chanlife",
	Doc: "verify goroutine/channel lifecycle: every spawned goroutine reaches a shutdown path " +
		"at some call depth, and done-channels (done/quit/stop/abort) have one completion signal — " +
		"closed or single-sender, never both",
	RunProject: runChanlife,
}

// doneNameRe classifies completion-signal channels by name. Worker
// queues (work, jobs, errs) intentionally mix senders and a close and
// are out of scope.
var doneNameRe = regexp.MustCompile(`(?i)^(done|quit|stop|abort)$`)

func runChanlife(pass *ProjectPass) error {
	prog := pass.Prog

	// 1. Spawn shutdown reachability, at any call depth.
	for _, k := range prog.Order {
		for _, sp := range prog.Funcs[k].Spawns {
			if sp.callee == (FuncKey{}) {
				continue // dynamic target: not checkable
			}
			if prog.Funcs[sp.callee] == nil {
				continue // external package: body not loaded
			}
			if !prog.ReachesShutdown(sp.callee) {
				pass.Reportf(sp.pos,
					"goroutine %s has no shutdown path at any call depth (no WaitGroup.Done, select, channel receive or channel range); it will outlive its owner",
					sp.label)
			}
		}
	}

	// 2+3. Done-channel discipline.
	type chanUse struct {
		sends  []chanOp
		closes []chanOp
		byFn   map[FuncKey]bool // distinct sending functions
		fns    []FuncKey
	}
	uses := make(map[chanClass]*chanUse)
	for _, k := range prog.Order {
		for _, op := range prog.Funcs[k].ChanOps {
			if !doneNameRe.MatchString(op.class.Name) {
				continue
			}
			u := uses[op.class]
			if u == nil {
				u = &chanUse{byFn: make(map[FuncKey]bool)}
				uses[op.class] = u
			}
			if op.send {
				u.sends = append(u.sends, op)
				if !u.byFn[k] {
					u.byFn[k] = true
					u.fns = append(u.fns, k)
				}
			} else {
				u.closes = append(u.closes, op)
			}
		}
	}
	classes := make([]chanClass, 0, len(uses))
	for c := range uses {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].String() < classes[j].String() })
	for _, c := range classes {
		u := uses[c]
		switch {
		case len(u.closes) > 0 && len(u.sends) > 0:
			closePos := prog.Fset.Position(u.closes[0].pos)
			for _, s := range u.sends {
				pass.Reportf(s.pos,
					"send on done-channel %s, which is closed at %s:%d; a done-channel signals completion exactly once — close it or send, never both",
					c, shortFile(closePos.Filename), closePos.Line)
			}
		case len(u.fns) > 1:
			names := ""
			for i, f := range u.fns {
				if i > 0 {
					names += ", "
				}
				names += f.String()
			}
			for _, s := range u.sends {
				pass.Reportf(s.pos,
					"done-channel %s has %d sending functions (%s); exactly one sender may deliver the completion signal",
					c, len(u.fns), names)
			}
		}
	}
	return nil
}
