package analyzers

import "testing"

func TestClaimDiscipline(t *testing.T) {
	diags := runFixture(t, "claimdisc", ClaimDiscipline)
	// Regression pins: the ad-hoc word store (the exact pattern the
	// CAS helpers replaced in the VM), a raw store smuggled inside a
	// helper, and the uncommitted-claim LRU publication must all be
	// caught.
	mustDiag(t, diags, "claimdiscipline", `mutation of buffer\.word outside the claim state-machine helpers`)
	mustDiag(t, diags, "claimdiscipline", `non-CAS mutation of buffer\.word \(Store\) inside a transition helper`)
	mustDiag(t, diags, "claimdiscipline", `published to the LRU under an uncommitted synchronous claim`)
}
