package analyzers

import "testing"

func TestClaimDiscipline(t *testing.T) {
	diags := runFixture(t, "claimdisc", ClaimDiscipline)
	// Regression pins: the raw committed write (the exact pattern the
	// commit() helper replaced in the VM) and the uncommitted resident
	// claim must both be caught.
	mustDiag(t, diags, "claimdiscipline", `direct write to buffer\.committed`)
	mustDiag(t, diags, "claimdiscipline", `resident under a synchronous claim without commit/settle`)
}
