package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errcheck flags dropped error returns from the virtual-memory layer
// inside internal/exec. The VM's errors are not advisory: Ensure and
// Alloc fail when a pin set cannot fit (the capacity invariant
// schedcheck verifies statically), Unpin/MarkDirty/Free fail on
// lifecycle misuse, and WaitIdle surfaces async DMA faults. Dropping
// one leaves the executor running on a buffer it does not actually
// hold — the class of bug that surfaces hundreds of steps later as a
// wrong weight rather than at the faulty call site. Two forms are
// flagged:
//
//   - a call used as a bare statement: vm.Unpin(t)
//   - an error result assigned to blank: _ = vm.Unpin(t),
//     buf, _ := vm.Ensure(dev, t)
//
// Intentional drops (e.g. best-effort cleanup on an already-failing
// path) must carry //lint:allow errcheck <reason> so every exception
// is visible and justified.
var Errcheck = &Analyzer{
	Name: "errcheck",
	Doc: "report dropped error returns from VM / memory.Manager / DMA methods " +
		"inside internal/exec (bare-statement calls and blank-assigned errors)",
	Run: runErrcheck,
}

// errcheckScope lists the package path suffixes in scope; the bare
// base name form admits fixtures.
var errcheckScope = []string{"internal/exec"}

func inErrcheckScope(path string) bool {
	for _, s := range errcheckScope {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return path == "errcheck"
}

// errSourceTypes are the receiver type names whose methods are
// checked: the executor's VM (vm.go/dma.go) and the simulator-side
// memory Manager. Matching by name (like claimdiscipline's "buffer")
// keeps the pass fixture-testable.
var errSourceTypes = map[string]bool{"VM": true, "Manager": true}

// errReturningVMCall reports whether call invokes a method on one of
// the guarded types whose final result is an error, returning a label
// for the diagnostic.
func errReturningVMCall(info *types.Info, call *ast.CallExpr) (string, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	recv := info.TypeOf(sel.X)
	if recv == nil {
		return "", 0, false
	}
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || !errSourceTypes[named.Obj().Name()] {
		return "", 0, false
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", 0, false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Implements(last, errorIface) && last.String() != "error" {
		return "", 0, false
	}
	return named.Obj().Name() + "." + sel.Sel.Name, sig.Results().Len(), true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func runErrcheck(pass *Pass) error {
	if !inErrcheckScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, _, ok := errReturningVMCall(pass.Info, call); ok {
						pass.Reportf(n.Pos(),
							"%s returns an error that is dropped; handle it or document the drop with //lint:allow errcheck", name)
					}
				}
			case *ast.AssignStmt:
				// One call on the right, its error position blanked:
				// _ = vm.M(...) or v, _ := vm.M(...).
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, results, ok := errReturningVMCall(pass.Info, call)
				if !ok {
					return true
				}
				if len(n.Lhs) != results {
					return true
				}
				if id, ok := n.Lhs[results-1].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(n.Lhs[results-1].Pos(),
						"%s error assigned to blank; handle it or document the drop with //lint:allow errcheck", name)
				}
			case *ast.GoStmt:
				if name, _, ok := errReturningVMCall(pass.Info, n.Call); ok {
					pass.Reportf(n.Pos(),
						"%s launched as a goroutine drops its error; collect it through a channel or errgroup-style join", name)
				}
			case *ast.DeferStmt:
				if name, _, ok := errReturningVMCall(pass.Info, n.Call); ok {
					pass.Reportf(n.Pos(),
						"deferred %s drops its error; wrap it in a closure that records the error", name)
				}
			}
			return true
		})
	}
	return nil
}
