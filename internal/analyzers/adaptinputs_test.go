package analyzers

import "testing"

func TestAdaptInputs(t *testing.T) {
	diags := runFixture(t, "adaptinputs", AdaptInputs)
	// Pin the three construct classes and the scope line: the
	// wall-clock measurement helper in the same fixture produces no
	// finding because its name marks it as measurement, not decision.
	mustDiag(t, diags, "adaptinputs", `time\.Since feeds adaptation decision`)
	mustDiag(t, diags, "adaptinputs", `time\.Now feeds adaptation decision`)
	mustDiag(t, diags, "adaptinputs", `map iteration inside adaptation decision`)
	mustDiag(t, diags, "adaptinputs", `math/rand global state .* feeds adaptation decision`)
	if len(diags) != 4 {
		t.Errorf("want exactly 4 findings (measureProfile must stay clean), got %d:\n%s",
			len(diags), diagDump(diags))
	}
}

// TestAdaptInputsScope confirms the pass runs only where the
// controller and retuner live (plus its own fixture package).
func TestAdaptInputsScope(t *testing.T) {
	for _, p := range []string{
		"harmony/internal/exec", "harmony/internal/tuner",
		"exec", "tuner", "adaptinputs",
	} {
		if !inAdaptScope(p) {
			t.Errorf("%s should be in the adaptinputs scope", p)
		}
	}
	for _, p := range []string{
		"harmony/internal/sched", "harmony/internal/trace",
		"harmony/cmd/harmonytrain", "executor",
	} {
		if inAdaptScope(p) {
			t.Errorf("%s should be outside the adaptinputs scope", p)
		}
	}
}
