package analyzers

import "testing"

func TestHygiene(t *testing.T) {
	diags := runFixture(t, "hygiene", Hygiene)
	// Regression pin: goroutine lifecycle moved to chanlife, so hygiene
	// is mutexcopy only now.
	mustDiag(t, diags, "hygiene", `passes guarded by value, copying its mutex`)
}
