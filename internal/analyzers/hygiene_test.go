package analyzers

import "testing"

func TestHygiene(t *testing.T) {
	diags := runFixture(t, "hygiene", Hygiene)
	// Regression pins: one from each half of the pass.
	mustDiag(t, diags, "hygiene", `goroutine has no shutdown path`)
	mustDiag(t, diags, "hygiene", `passes guarded by value, copying its mutex`)
}
