package analyzers

// Lockorder turns the comment-only lock-ordering discipline into a
// gated invariant. PR 6 documented the order — Manager.mu before
// devShard.mu, shards one at a time in ascending device order, the VM
// never nesting two vmShard locks without the same contract — but
// nothing enforced it past the single function lockhold could see.
// This pass builds the global lock-acquisition graph from the
// interprocedural summaries: an edge A → B for every place the program
// acquires class B (directly, or anywhere inside a callee) while
// holding class A. It then rejects
//
//   - cycles between distinct classes: two call chains acquiring the
//     same pair of locks in opposite orders can deadlock, no matter
//     how many function boundaries separate the Lock calls;
//   - same-class nesting of shard locks (types named *Shard) anywhere
//     on the call chain, unless the function holding or taking the
//     lock declares the ascending-device contract in its doc comment
//     (the same shardOrderRe license lockhold honors within one
//     function);
//   - same-class nesting of any other mutex: sync.Mutex does not
//     support recursive acquisition, so a call chain that re-locks a
//     held class self-deadlocks.
//
// Doc contracts participate: a function documented "Requires sh.mu
// held" is summarized as entering with that class held, so the locks
// it takes underneath contribute edges from the contract lock even
// though no Lock call is visible.

import (
	"fmt"
	"go/token"
	"sort"
)

var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "build the global lock-acquisition graph from interprocedural summaries and reject " +
		"cycles, recursive acquisitions, and multi-shard holds outside the ascending-order contract",
	RunProject: runLockorder,
}

// lockEdge is one witnessed "B acquired while A held" fact.
type lockEdge struct {
	from, to LockClass
	pos      token.Pos
	fn       FuncKey
	via      string // callee chain hop for call-depth edges, "" for direct
	shardOK  bool   // an ascending-order contract licenses this edge
}

func runLockorder(pass *ProjectPass) error {
	prog := pass.Prog
	var edges []lockEdge
	for _, k := range prog.Order {
		s := prog.Funcs[k]
		for _, a := range s.Acquires {
			for _, h := range a.held {
				edges = append(edges, lockEdge{
					from: h, to: a.class, pos: a.pos, fn: k, shardOK: s.ShardOrderOK,
				})
			}
		}
		for _, c := range s.Calls {
			if len(c.held) == 0 {
				continue
			}
			callee := prog.Funcs[c.callee]
			if callee == nil {
				continue
			}
			for _, acq := range prog.TransAcquires(c.callee) {
				for _, h := range c.held {
					if h == acq && contains(callee.EntryHeld, acq) {
						// The callee's contract says the caller holds
						// this lock for it; its summary re-lists the
						// class only through that contract, not a
						// second acquisition.
						continue
					}
					edges = append(edges, lockEdge{
						from: h, to: acq, pos: c.pos, fn: k,
						via:     c.callee.String(),
						shardOK: s.ShardOrderOK || callee.ShardOrderOK,
					})
				}
			}
		}
	}

	// Same-class nesting: recursive for plain mutexes, contract-gated
	// for shard locks.
	adj := make(map[LockClass]map[LockClass]lockEdge)
	for _, e := range edges {
		if e.from == e.to {
			switch {
			case e.from.IsShard() && e.shardOK:
				// licensed multi-shard hold
			case e.from.IsShard():
				pass.Reportf(e.pos,
					"second shard lock %s acquired%s while %s is held; multi-shard holds require the documented ascending-device order",
					e.to, viaClause(e.via), e.from)
			default:
				pass.Reportf(e.pos,
					"recursive acquisition of %s%s while it is already held; sync mutexes self-deadlock",
					e.to, viaClause(e.via))
			}
			continue
		}
		if adj[e.from] == nil {
			adj[e.from] = make(map[LockClass]lockEdge)
		}
		if _, dup := adj[e.from][e.to]; !dup {
			adj[e.from][e.to] = e // first witness wins (deterministic: Order)
		}
	}

	reportLockCycles(pass, adj)
	return nil
}

func contains(cs []LockClass, c LockClass) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

func viaClause(via string) string {
	if via == "" {
		return ""
	}
	return fmt.Sprintf(" (inside %s)", via)
}

// reportLockCycles finds every cycle among distinct lock classes and
// reports each once, at the witness position of its lexically first
// edge, rendering the full chain of hops.
func reportLockCycles(pass *ProjectPass, adj map[LockClass]map[LockClass]lockEdge) {
	nodes := make([]LockClass, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })

	succ := func(n LockClass) []LockClass {
		outs := make([]LockClass, 0, len(adj[n]))
		for m := range adj[n] {
			outs = append(outs, m)
		}
		sort.Slice(outs, func(i, j int) bool { return outs[i].String() < outs[j].String() })
		return outs
	}

	// Lock graphs are tiny (a dozen classes), so a plain DFS from every
	// node with canonical-key dedupe is plenty; cycles are reported once
	// regardless of which node the walk entered them from.
	reported := make(map[string]bool)
	var stack []LockClass
	onStack := make(map[LockClass]int)
	var dfs func(n LockClass)
	dfs = func(n LockClass) {
		onStack[n] = len(stack)
		stack = append(stack, n)
		for _, m := range succ(n) {
			if at, ok := onStack[m]; ok {
				cycle := append([]LockClass(nil), stack[at:]...)
				reportCycle(pass, adj, cycle, reported)
				continue
			}
			dfs(m)
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
	}
	for _, n := range nodes {
		dfs(n)
	}
}

func reportCycle(pass *ProjectPass, adj map[LockClass]map[LockClass]lockEdge, cycle []LockClass, reported map[string]bool) {
	// Canonicalize: rotate so the smallest class leads.
	min := 0
	for i := range cycle {
		if cycle[i].String() < cycle[min].String() {
			min = i
		}
	}
	rot := append(append([]LockClass(nil), cycle[min:]...), cycle[:min]...)
	key := ""
	for _, c := range rot {
		key += c.String() + "→"
	}
	if reported[key] {
		return
	}
	reported[key] = true

	desc := ""
	var firstEdge *lockEdge
	for i, c := range rot {
		next := rot[(i+1)%len(rot)]
		e := adj[c][next]
		if firstEdge == nil {
			firstEdge = &e
		}
		pos := pass.Prog.Fset.Position(e.pos)
		desc += fmt.Sprintf("%s → %s (%s:%d%s)", c, next, shortFile(pos.Filename), pos.Line, viaClause(e.via))
		if i != len(rot)-1 {
			desc += ", "
		}
	}
	pass.Reportf(firstEdge.pos,
		"lock-order cycle: %s; pick one global order and document it", desc)
}
