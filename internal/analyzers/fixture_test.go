package analyzers

// Fixture runner in the style of golang.org/x/tools/go/analysis/
// analysistest: each package under testdata/src/<name> is loaded and
// type-checked, one analyzer runs over it, and every diagnostic must
// be matched by a `// want "regexp"` comment on the same line (several
// quoted regexps may follow one want). Unmatched diagnostics and
// unsatisfied wants both fail the test, so fixtures pin the exact
// flagged/allowed boundary of each pass.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// wantEntry is one expected diagnostic parsed from a fixture comment.
type wantEntry struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// A want pattern is either an interpreted string ("…", backslash
// escapes processed by strconv.Unquote) or a raw string (`…`, taken
// verbatim — easier for patterns full of regexp escapes).
var quotedRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// parseWants extracts the want expectations from a loaded package.
func parseWants(t *testing.T, pkg *Package) []*wantEntry {
	t.Helper()
	var wants []*wantEntry
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				qs := quotedRe.FindAllStringSubmatch(m[1], -1)
				if len(qs) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, q := range qs {
					pat := q[2] // raw `…` form, verbatim
					if q[2] == "" && q[1] != "" {
						var err error
						pat, err = strconv.Unquote(`"` + q[1] + `"`)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, q[0], err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &wantEntry{
						file: pos.Filename, line: pos.Line, re: re, raw: pat,
					})
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<name>, runs the analyzer (directives
// included, via RunAll) and checks the diagnostics against the want
// comments.
func runFixture(t *testing.T, name string, a *Analyzer) []Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags, err := RunAll(pkg, a)
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, name, err)
	}
	checkWants(t, diags, []*Package{pkg})
	return diags
}

// runProjectFixture loads several directories under testdata/src/<name>
// as one program (LoadDirs, so later packages can import earlier ones
// by their relative path) and runs the analyzer over the whole thing.
// Fixtures for the interprocedural passes use this to express
// cross-package call chains.
func runProjectFixture(t *testing.T, name string, rels []string, a *Analyzer) []Diagnostic {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	pkgs, err := LoadDirs(root, rels...)
	if err != nil {
		t.Fatalf("loading project fixture %s: %v", name, err)
	}
	diags, err := RunProject(pkgs, a)
	if err != nil {
		t.Fatalf("running %s on project fixture %s: %v", a.Name, name, err)
	}
	checkWants(t, diags, pkgs)
	return diags
}

// checkWants diffs diagnostics against the want comments of every
// loaded package: each diagnostic must match a want on its line, each
// want must be matched by a diagnostic.
func checkWants(t *testing.T, diags []Diagnostic, pkgs []*Package) {
	t.Helper()
	var wants []*wantEntry
	for _, pkg := range pkgs {
		wants = append(wants, parseWants(t, pkg)...)
	}
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// mustDiag asserts that some diagnostic from the given analyzer whose
// message matches pat exists in diags.
func mustDiag(t *testing.T, diags []Diagnostic, analyzer, pat string) {
	t.Helper()
	re := regexp.MustCompile(pat)
	for _, d := range diags {
		if d.Analyzer == analyzer && re.MatchString(d.Message) {
			return
		}
	}
	t.Errorf("no %s diagnostic matching %q in:\n%s", analyzer, pat, diagDump(diags))
}

func diagDump(diags []Diagnostic) string {
	s := ""
	for _, d := range diags {
		s += fmt.Sprintf("  %s\n", d)
	}
	if s == "" {
		s = "  (none)\n"
	}
	return s
}
