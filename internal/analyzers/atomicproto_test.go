package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicproto(t *testing.T) {
	diags := runFixture(t, "atomicproto", Atomicproto)
	mustDiag(t, diags, "atomicproto", `Commit diverges from the schedcheck DMA-model table`)
}

// TestAtomicprotoCleanClaimword is one half of the two-sided gate: the
// real internal/claimword source must extract cleanly and match the
// schedcheck spec table on every transition. (The other half,
// schedcheck's TestProtoTableMatchesClaimword, diffs the spec against
// the compiled functions; together they pin source, binary and model
// to one machine.)
func TestAtomicprotoCleanClaimword(t *testing.T) {
	pkgs, err := Load("../..", "./internal/claimword")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	diags, err := RunAll(pkgs[0], Atomicproto)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("real claimword should match the spec table, got:\n%s", diagDump(diags))
	}
}

// mutateClaimword copies the real claimword source into a temp
// directory with old replaced by new, and returns the loaded package.
func mutateClaimword(t *testing.T, old, new string) *Package {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "claimword", "claimword.go"))
	if err != nil {
		t.Fatalf("reading claimword source: %v", err)
	}
	if !strings.Contains(string(src), old) {
		t.Fatalf("claimword source no longer contains %q; update the mutation", old)
	}
	dir := t.TempDir()
	mutated := strings.Replace(string(src), old, new, 1)
	if err := os.WriteFile(filepath.Join(dir, "claimword.go"), []byte(mutated), 0o644); err != nil {
		t.Fatalf("writing mutated source: %v", err)
	}
	pkg, err := LoadDir(dir, "claimword")
	if err != nil {
		t.Fatalf("loading mutated claimword: %v", err)
	}
	return pkg
}

// TestAtomicprotoSeededMutations edits claimword's SOURCE alone (the
// spec table stays put) and proves the gate trips — the scenario the
// pass exists for: a protocol change that forgot to update the model.
func TestAtomicprotoSeededMutations(t *testing.T) {
	cases := []struct {
		name, old, new, want string
	}{
		{
			name: "commit drops committed flag",
			old:  "n := w | FlagResident | FlagCommitted",
			new:  "n := w | FlagResident",
			want: `claimword Commit diverges from the schedcheck DMA-model table on \d+/\d+ transitions`,
		},
		{
			name: "claim stops checking pins for NeedUnpinned",
			old:  "case NeedUnpinned:\n\t\tif w.Pins() > 0 {",
			new:  "case NeedUnpinned:\n\t\tif w.Pins() > 1 {",
			want: `claimword Claim diverges from the schedcheck DMA-model table`,
		},
		{
			name: "settle keeps prefetched on residency loss",
			old:  "n &^= FlagResident | FlagPrefetched",
			new:  "n &^= FlagResident",
			want: `claimword Settle diverges from the schedcheck DMA-model table`,
		},
		{
			name: "unextractable construct is a gate failure, not a skip",
			old:  "if w.Pins() == 0 {\n\t\treturn w, false\n\t}",
			new:  "for w.Pins() == 0 {\n\t\treturn w, false\n\t}",
			want: `cannot extract Unpin's transition table from source`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := mutateClaimword(t, tc.old, tc.new)
			diags, err := RunAll(pkg, Atomicproto)
			if err != nil {
				t.Fatalf("RunAll: %v", err)
			}
			mustDiag(t, diags, "atomicproto", tc.want)
		})
	}
}

// TestAtomicprotoMissingTransition: deleting a transition the model
// declares is reported, not silently accepted.
func TestAtomicprotoMissingTransition(t *testing.T) {
	pkg := mutateClaimword(t, "func Unpin(w Word) (Word, bool) {", "func unpinRenamed(w Word) (Word, bool) {")
	diags, err := RunAll(pkg, Atomicproto)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	mustDiag(t, diags, "atomicproto", `claimword transition Unpin is missing, but the schedcheck DMA model declares it`)
}
