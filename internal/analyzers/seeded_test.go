package analyzers

// Seeded production violations: each interprocedural pass must trip on
// a realistic regression planted in the REAL packages it guards, not
// just on fixture code. The tests copy the module's sources into a
// temp directory, append one seeded file, and run the pass over the
// loaded result — so the violation lives in internal/memory or
// internal/exec proper, against the real structs and the real call
// graph, while the working tree stays clean.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyModule replicates go.mod and the internal/ source tree (skipping
// tests and fixture data) into a fresh temp module.
func copyModule(t *testing.T) string {
	t.Helper()
	tmp := t.TempDir()
	mod, err := os.ReadFile(filepath.Join("..", "..", "go.mod"))
	if err != nil {
		t.Fatalf("reading go.mod: %v", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), mod, 0o644); err != nil {
		t.Fatal(err)
	}
	root := filepath.Join("..", "..", "internal")
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(tmp, "internal", rel), 0o755)
		}
		if filepath.Ext(path) != ".go" || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(tmp, "internal", rel), src, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
	return tmp
}

// seedFile drops one extra source file into the temp module.
func seedFile(t *testing.T, tmp, rel, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(tmp, filepath.FromSlash(rel)), []byte(src), 0o644); err != nil {
		t.Fatalf("seeding %s: %v", rel, err)
	}
}

// runSeeded loads the given packages from the temp module and runs one
// analyzer over them as a project. The load happens with the process
// chdir'd into the temp module: the source importer resolves imports
// relative to the working directory, and module-internal imports must
// land on the seeded copies, not this repo's originals.
func runSeeded(t *testing.T, tmp string, a *Analyzer, patterns ...string) []Diagnostic {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(tmp); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatalf("restoring working directory: %v", err)
		}
	}()
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading seeded module: %v", err)
	}
	diags, err := RunProject(pkgs, a)
	if err != nil {
		t.Fatalf("RunProject: %v", err)
	}
	return diags
}

// TestLockorderSeededRecursion: a helper that retakes Manager.mu while
// a caller already holds it — invisible to any single-function pass —
// trips lockorder inside the real internal/memory package.
func TestLockorderSeededRecursion(t *testing.T) {
	tmp := copyModule(t)
	seedFile(t, tmp, "internal/memory/seeded.go", `package memory

// seededAudit holds mu and calls a helper that takes it again: the
// self-deadlock lockorder exists to catch.
func (m *Manager) seededAudit() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seededCount()
}

func (m *Manager) seededCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.states)
}
`)
	diags := runSeeded(t, tmp, Lockorder, "./internal/memory")
	mustDiag(t, diags, "lockorder",
		`recursive acquisition of memory\.Manager\.mu \(inside memory\.Manager\.seededCount\) while it is already held`)
}

// TestChanlifeSeededLeak: a goroutine whose spin lives one call deep
// and never reaches a shutdown construct trips chanlife inside the
// real internal/exec package.
func TestChanlifeSeededLeak(t *testing.T) {
	tmp := copyModule(t)
	seedFile(t, tmp, "internal/exec/seeded.go", `package exec

func seededSpawn() {
	go seededLoop()
}

func seededLoop() {
	for {
		seededStep()
	}
}

func seededStep() {}
`)
	diags := runSeeded(t, tmp, Chanlife, "./internal/exec")
	mustDiag(t, diags, "chanlife",
		`goroutine seededLoop has no shutdown path at any call depth`)
}

// TestDeterminismSeededTaint: the deterministic core calling an
// out-of-core helper that reads the wall clock one hop away trips the
// summary-based taint pass — the exact leak the lexical rule cannot
// see, since neither function mentions time.Now in a core file.
func TestDeterminismSeededTaint(t *testing.T) {
	tmp := copyModule(t)
	seedFile(t, tmp, "internal/trace/seeded.go", `package trace

import "time"

// SeededStamp reads the wall clock; fine here, outside the core.
func SeededStamp() int64 {
	return time.Now().UnixNano()
}
`)
	seedFile(t, tmp, "internal/exec/seeded.go", `package exec

import "harmony/internal/trace"

func seededDecide() int64 {
	return trace.SeededStamp()
}
`)
	diags := runSeeded(t, tmp, Determinism, "./internal/exec", "./internal/trace")
	mustDiag(t, diags, "determinism",
		`call to trace\.SeededStamp reaches time\.Now at some call depth`)
}

// TestPinbalanceSeededLeak: a helper that pins a real tensor.State and
// then error-returns without the balancing Unpin — the silent
// pin-budget shrink pinbalance exists for — trips the pass inside the
// real internal/memory package.
func TestPinbalanceSeededLeak(t *testing.T) {
	tmp := copyModule(t)
	seedFile(t, tmp, "internal/memory/seeded.go", `package memory

import "harmony/internal/hw"

// seededWarm pre-pins a tensor and marks it dirty on dev; the
// MarkDirty failure returns early and leaks the pin, shrinking the
// device budget for the rest of the run.
func (m *Manager) seededWarm(id int, dev hw.DeviceID) error {
	st := m.states[id]
	if err := st.Pin(); err != nil {
		return err
	}
	if err := st.MarkDirty(dev); err != nil {
		return err
	}
	return st.Unpin()
}
`)
	diags := runSeeded(t, tmp, Pinbalance, "./internal/memory")
	mustDiag(t, diags, "pinbalance",
		`pin on st taken at seeded\.go:\d+ is not released on an error path`)
}

// TestClaimlifeSeededLeak: a claim on a real exec buffer that reaches
// neither commit nor settle on an audit-failure return — every waiter
// on the claim's channel parks forever — trips claimlife inside the
// real internal/exec package.
func TestClaimlifeSeededLeak(t *testing.T) {
	tmp := copyModule(t)
	seedFile(t, tmp, "internal/exec/seeded.go", `package exec

import (
	"fmt"

	"harmony/internal/claimword"
)

// seededFlush claims b for a write-back, then bails on a budget check
// before either commit or settle: b is stuck claimed.
func (vm *VM) seededFlush(b *buffer, budget int) error {
	if !vm.claim(b, claimword.SwapOut, false, true, claimword.NeedIdle) {
		return nil
	}
	if budget <= 0 {
		return fmt.Errorf("exec: write-back of %s over budget", b.t)
	}
	vm.settle(b, false, 0)
	return nil
}
`)
	diags := runSeeded(t, tmp, Claimlife, "./internal/exec")
	mustDiag(t, diags, "claimlife",
		`claim on b taken at seeded\.go:\d+ is neither committed, settled nor handed off on an error path`)
}
