package analyzers

// CFG construction tests: pure graph shape, independent of any
// analyzer. Structure-only cases parse a bare function; the error-guard
// classification cases type-check through the offline loader because
// errCondSense needs types.Info.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// parseFuncCFG builds the CFG of `func f() { <body> }`.
func parseFuncCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f(a, b bool, ch chan int, x int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	cfg := NewCFG(file.Decls[0].(*ast.FuncDecl))
	if cfg == nil {
		t.Fatal("NewCFG returned nil for a function with a body")
	}
	return cfg
}

// findBlock returns the unique block containing a node matching pred.
func findBlock(t *testing.T, c *CFG, what string, pred func(ast.Node) bool) *Block {
	t.Helper()
	var found *Block
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if pred(n) {
				if found != nil && found != blk {
					t.Fatalf("%s: found in blocks %d and %d", what, found.ID, blk.ID)
				}
				found = blk
			}
		}
	}
	if found == nil {
		t.Fatalf("%s: no block contains it", what)
	}
	return found
}

func isBranch(tok token.Token, label string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		if !ok || br.Tok != tok {
			return false
		}
		got := ""
		if br.Label != nil {
			got = br.Label.Name
		}
		return got == label
	}
}

func isAssignTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

func onlySucc(t *testing.T, blk *Block) *Block {
	t.Helper()
	if len(blk.Succs) != 1 {
		t.Fatalf("block %d: want 1 successor, got %d", blk.ID, len(blk.Succs))
	}
	return blk.Succs[0].To
}

func TestCFGLinearFalls(t *testing.T) {
	cfg := parseFuncCFG(t, "x = 1\nx = 2")
	if len(cfg.Entry.Succs) != 0 || !cfg.Entry.Falls {
		t.Fatalf("straight-line body: entry should fall off the end with no successors")
	}
	if exits := cfg.Exits(); len(exits) != 1 || exits[0] != cfg.Entry {
		t.Fatalf("want the entry as the only exit, got %d exits", len(exits))
	}
}

func TestCFGIfEdgesAndExits(t *testing.T) {
	cfg := parseFuncCFG(t, `if a {
	return
}
x = 1`)
	if len(cfg.Entry.Succs) != 2 {
		t.Fatalf("if: want 2 edges out of the condition block, got %d", len(cfg.Entry.Succs))
	}
	for _, e := range cfg.Entry.Succs {
		if e.Cond == nil {
			t.Fatalf("if edge to block %d lost its condition", e.To.ID)
		}
		if e.TakenTrue && e.To.Return == nil {
			t.Errorf("true edge should reach the return block, got block %d", e.To.ID)
		}
	}
	exits := cfg.Exits()
	if len(exits) != 2 {
		t.Fatalf("want 2 exits (return + fall-off), got %d", len(exits))
	}
}

func TestCFGPanicExit(t *testing.T) {
	cfg := parseFuncCFG(t, `if a {
	panic("boom")
}
x = 1`)
	var panics int
	for _, blk := range cfg.Exits() {
		if blk.Panics {
			panics++
			if blk.Return != nil || blk.Falls {
				t.Errorf("panic block %d also marked Return/Falls", blk.ID)
			}
		}
	}
	if panics != 1 {
		t.Fatalf("want exactly one panic exit, got %d", panics)
	}
}

// TestCFGDeferOrdering: defers stay inside their block as ordinary
// nodes, in source order — the engine stacks their effects, so the
// block must present them in execution (= push) order.
func TestCFGDeferOrdering(t *testing.T) {
	cfg := parseFuncCFG(t, "defer one()\nx = 1\ndefer two()")
	if len(cfg.Blocks) != 1 {
		t.Fatalf("defers must not split blocks: got %d blocks", len(cfg.Blocks))
	}
	var order []string
	for _, n := range cfg.Entry.Nodes {
		if d, ok := n.(*ast.DeferStmt); ok {
			order = append(order, d.Call.Fun.(*ast.Ident).Name)
		}
	}
	if len(order) != 2 || order[0] != "one" || order[1] != "two" {
		t.Fatalf("want defers [one two] in source order, got %v", order)
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	cfg := parseFuncCFG(t, `outer:
for x = 0; a; x++ {
	for {
		if a {
			break outer
		}
		if b {
			continue outer
		}
		break
	}
}
x = 9`)
	// Two assignments to x exist (loop init and after); the after block
	// is the one holding `x = 9`.
	after := findBlock(t, cfg, "x = 9", func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		lit, ok := as.Rhs[0].(*ast.BasicLit)
		return ok && lit.Value == "9"
	})
	post := findBlock(t, cfg, "outer's post block", func(n ast.Node) bool {
		_, ok := n.(*ast.IncDecStmt)
		return ok
	})

	brkOuter := findBlock(t, cfg, "break outer", isBranch(token.BREAK, "outer"))
	if got := onlySucc(t, brkOuter); got != after {
		t.Errorf("break outer: want edge to the after block %d, got %d", after.ID, got.ID)
	}
	contOuter := findBlock(t, cfg, "continue outer", isBranch(token.CONTINUE, "outer"))
	if got := onlySucc(t, contOuter); got != post {
		t.Errorf("continue outer: want edge to the post block %d, got %d", post.ID, got.ID)
	}
	// The unlabeled break leaves the inner loop, not the outer one.
	brkInner := findBlock(t, cfg, "bare break", isBranch(token.BREAK, ""))
	if got := onlySucc(t, brkInner); got == after {
		t.Errorf("bare break must target the inner loop's after block, not outer's")
	}
}

// TestCFGSelectDefault: a select's default case is just another arm —
// there must be no entry→after shortcut edge, unlike a switch without
// a default.
func TestCFGSelectDefault(t *testing.T) {
	cfg := parseFuncCFG(t, `select {
case <-ch:
	x = 1
default:
	x = 2
}
x = 3`)
	after := findBlock(t, cfg, "select's after block", func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		lit, ok := as.Rhs[0].(*ast.BasicLit)
		return ok && lit.Value == "3"
	})
	if len(cfg.Entry.Succs) != 2 {
		t.Fatalf("select with 2 arms: want 2 edges out of the entry, got %d", len(cfg.Entry.Succs))
	}
	for _, e := range cfg.Entry.Succs {
		if e.To == after {
			t.Fatalf("select must not have an entry→after shortcut: every path runs an arm")
		}
	}
	// Switch without default DOES keep the shortcut.
	cfg2 := parseFuncCFG(t, `switch x {
case 1:
	x = 1
}
x = 3`)
	shortcut := false
	for _, e := range cfg2.Entry.Succs {
		if e.To.Nodes == nil && len(e.To.Succs) == 0 {
			continue
		}
		for _, n := range e.To.Nodes {
			if isAssignTo("x")(n) {
				if as := n.(*ast.AssignStmt); as.Rhs[0].(*ast.BasicLit).Value == "3" {
					shortcut = true
				}
			}
		}
	}
	if !shortcut {
		t.Errorf("switch without default: want an entry edge bypassing the cases")
	}
}

// TestCFGErrCondSense: nested error guards classify by edge direction,
// through the type-checked loader.
func TestCFGErrCondSense(t *testing.T) {
	tmp := t.TempDir()
	src := `package guards

func f(a, b error, x int) int {
	if a != nil {
		if b == nil {
			return 1
		}
		return 2
	}
	if x > 0 {
		return 3
	}
	return 4
}
`
	if err := os.WriteFile(filepath.Join(tmp, "guards.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(tmp, "guards")
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	var fd *ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "f" {
				fd = x
			}
		}
	}
	cfg := NewCFG(fd)
	// sense[cond text][takenTrue] from every conditional edge.
	sense := map[string]map[bool]int{}
	operands := map[string]string{}
	for _, blk := range cfg.Blocks {
		for _, e := range blk.Succs {
			if e.Cond == nil {
				continue
			}
			s := types.ExprString(e.Cond)
			if sense[s] == nil {
				sense[s] = map[bool]int{}
			}
			sense[s][e.TakenTrue] = errCondSense(pkg.Info, e.Cond, e.TakenTrue)
			if op := errCondOperand(pkg.Info, e.Cond); op != nil {
				operands[s] = exprString(op)
			}
		}
	}
	check := func(cond string, onTrue, onFalse int) {
		t.Helper()
		m, ok := sense[cond]
		if !ok {
			t.Fatalf("no conditional edges recorded for %q (have %v)", cond, sense)
		}
		if m[true] != onTrue || m[false] != onFalse {
			t.Errorf("%q: want sense true=%+d false=%+d, got true=%+d false=%+d",
				cond, onTrue, onFalse, m[true], m[false])
		}
	}
	check("a != nil", +1, -1) // true edge is the error side
	check("b == nil", -1, +1) // inverted comparison inverts the sides
	check("x > 0", 0, 0)      // not an error guard at all
	if operands["a != nil"] != "a" || operands["b == nil"] != "b" {
		t.Errorf("errCondOperand: want a/b, got %q/%q", operands["a != nil"], operands["b == nil"])
	}
	if op := errCondOperand(pkg.Info, fd.Body.List[1].(*ast.IfStmt).Cond); op != nil {
		t.Errorf("x > 0 has no error operand, got %q", exprString(op))
	}
}
