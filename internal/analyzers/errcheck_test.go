package analyzers

import "testing"

// The fixture pins the flagged/allowed boundary: bare-statement calls,
// blank assignments, go/defer drops are reported; handled errors,
// non-error methods, unguarded types and //lint:allow'd drops are not.
func TestErrcheckFixture(t *testing.T) {
	diags := runFixture(t, "errcheck", Errcheck)
	mustDiag(t, diags, "errcheck", "VM.Unpin returns an error that is dropped")
	mustDiag(t, diags, "errcheck", "assigned to blank")
}

// The real executor must be errcheck-clean: the gate this analyzer
// adds to make lint.
func TestErrcheckScope(t *testing.T) {
	if !inErrcheckScope("harmony/internal/exec") {
		t.Fatal("internal/exec must be in errcheck scope")
	}
	for _, p := range []string{"harmony/internal/sched", "harmony/internal/nn", "execdata"} {
		if inErrcheckScope(p) {
			t.Errorf("%s should be outside errcheck scope", p)
		}
	}
}
