package analyzers

import (
	"path/filepath"
	"testing"
)

// TestDirectiveHygiene checks that the allowlist polices itself: a
// directive naming an unknown analyzer, lacking a reason, or
// suppressing nothing is reported under the "lint" analyzer.
func TestDirectiveHygiene(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "directives"), "directives")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := RunAll(pkg, All()...)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	mustDiag(t, diags, "lint", `names unknown analyzer "speling"`)
	mustDiag(t, diags, "lint", `//lint:allow hygiene has no reason`)
	mustDiag(t, diags, "lint", `suppresses nothing; remove the stale directive`)
	if len(diags) != 3 {
		t.Errorf("want exactly 3 lint diagnostics, got %d:\n%s", len(diags), diagDump(diags))
	}
}

// TestAllNames pins the analyzer names the //lint:allow directives and
// docs refer to.
func TestAllNames(t *testing.T) {
	want := map[string]bool{
		"lockhold": true, "claimdiscipline": true, "determinism": true, "hygiene": true,
		"errcheck": true, "adaptinputs": true,
		"lockorder": true, "chanlife": true, "atomicproto": true,
		"pinbalance": true, "claimlife": true, "errpath": true,
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for _, a := range all {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || (a.Run == nil && a.RunProject == nil) {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
}

// TestLoadRealPackages smoke-tests the offline loader against this
// module's own sources: go list enumeration plus source-importer
// type-checking must succeed with no module cache and no network.
func TestLoadRealPackages(t *testing.T) {
	pkgs, err := Load("../..", "./internal/trace")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	if pkgs[0].Path != "harmony/internal/trace" {
		t.Errorf("unexpected import path %q", pkgs[0].Path)
	}
	if len(pkgs[0].Files) == 0 || pkgs[0].Types == nil {
		t.Error("package loaded without files or type information")
	}
}
