package analyzers

import "testing"

func TestDeterminism(t *testing.T) {
	diags := runFixture(t, "exec", Determinism)
	// Regression pin: the map-range victim scan is the exact pattern
	// waitableInFlight had before moving to the LRU-list walk.
	mustDiag(t, diags, "determinism", `map iteration in the deterministic core`)
	mustDiag(t, diags, "determinism", `time\.Now in the deterministic core`)
}

// TestDeterminismScope confirms the analyzer keeps quiet outside the
// deterministic core: the same violations in an out-of-scope package
// produce no findings.
func TestDeterminismScope(t *testing.T) {
	if inDeterministicCore("harmony/internal/trace") {
		t.Fatal("internal/trace must be outside the deterministic core")
	}
	for _, p := range []string{
		"harmony/internal/sched", "harmony/internal/exec",
		"harmony/internal/nn", "harmony/internal/fault",
		"harmony/internal/sim", "harmony/internal/collective",
		"harmony/internal/graph", "harmony/internal/schedcheck",
		"exec", "sched",
	} {
		if !inDeterministicCore(p) {
			t.Errorf("%s should be in the deterministic core", p)
		}
	}
	for _, p := range []string{
		"harmony/internal/hw", "harmony/internal/trace", "harmony/cmd/harmonylint", "execution",
	} {
		if inDeterministicCore(p) {
			t.Errorf("%s should be outside the deterministic core", p)
		}
	}
}

// TestDeterminismTaint exercises the whole-program upgrade: taint
// entering a core package from an out-of-core helper at various call
// depths, the adapt-decision sink, and the two sanctioned escapes
// (clean helpers, interface-routed timing).
func TestDeterminismTaint(t *testing.T) {
	diags := runProjectFixture(t, "taint", []string{"clockutil", "internal/exec"}, Determinism)
	mustDiag(t, diags, "determinism", `reaches time\.Now via clockutil\.Stamp`)
	mustDiag(t, diags, "determinism", `adaptation decision exec\.retuneWindow`)
}
