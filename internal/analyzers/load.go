package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load enumerates packages matching the go list patterns (relative to
// dir), parses their non-test sources and type-checks them. It works
// fully offline: imports — standard library and module-internal alike
// — are resolved by the compiler's source importer, which type-checks
// dependencies from source instead of fetching export data, so the
// linter needs neither a populated module cache nor network access.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, f := range m.GoFiles {
			paths = append(paths, filepath.Join(m.Dir, f))
		}
		pkg, err := check(fset, imp, m.ImportPath, m.Dir, paths)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as
// a single package with the given import path. Used by the fixture
// runner, whose testdata packages are invisible to go list.
func LoadDir(dir, importPath string) (*Package, error) {
	paths, err := dirGoFiles(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return check(fset, imp, importPath, dir, paths)
}

// LoadDirs type-checks several fixture directories under root as one
// program sharing a FileSet, in the given order; each directory's
// path relative to root is its import path, so an earlier package can
// be imported by a later one (`import "clockutil"`). Used by the
// whole-program fixture runner to exercise cross-package dataflow —
// taint entering a core-named package from a helper package — which a
// single LoadDir package cannot express.
func LoadDirs(root string, rels ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	imp := &chainImporter{
		local:    make(map[string]*types.Package),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, rel := range rels {
		dir := filepath.Join(root, filepath.FromSlash(rel))
		paths, err := dirGoFiles(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := check(fset, imp, rel, dir, paths)
		if err != nil {
			return nil, err
		}
		imp.local[rel] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// chainImporter serves already-checked fixture packages by import
// path before falling back to the source importer for the standard
// library.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p := c.local[path]; p != nil {
		return p, nil
	}
	return c.fallback.Import(path)
}

// dirGoFiles lists the .go files directly inside dir, sorted.
func dirGoFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("analyzers: no .go files in %s", dir)
	}
	return paths, nil
}

// check parses and type-checks one package's files.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, paths []string) (*Package, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyzers: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// listedPackage is the subset of `go list -json` output we need.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// goList shells out to the go tool to enumerate packages and their
// build-constraint-filtered source files.
func goList(dir string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analyzers: go list: %v: %s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listedPackage
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("analyzers: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
