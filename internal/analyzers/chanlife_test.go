package analyzers

import "testing"

func TestChanlife(t *testing.T) {
	diags := runFixture(t, "chanlife", Chanlife)
	// Regression pins: one per rule.
	mustDiag(t, diags, "chanlife", `no shutdown path at any call depth`)
	mustDiag(t, diags, "chanlife", `send on done-channel`)
	mustDiag(t, diags, "chanlife", `sending functions`)
}
