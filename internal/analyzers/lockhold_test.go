package analyzers

import "testing"

func TestLockhold(t *testing.T) {
	diags := runFixture(t, "lockhold", Lockhold)
	// Regression pins: the two failure classes that motivated the pass
	// must be present, not just matched by some want.
	mustDiag(t, diags, "lockhold", `channel receive while mu is held`)
	mustDiag(t, diags, "lockhold", `return path leaks held lock mu`)
}
