package analyzers

import "testing"

func TestLockhold(t *testing.T) {
	diags := runFixture(t, "lockhold", Lockhold)
	// Regression pins: the two failure classes that motivated the pass
	// must be present, not just matched by some want.
	mustDiag(t, diags, "lockhold", `channel receive while mu is held`)
	mustDiag(t, diags, "lockhold", `return path leaks held lock mu`)
	// Sharded-VM rules: nested shard locks without the ascending-order
	// contract, and the claim-settle wait on the blocking list.
	mustDiag(t, diags, "lockhold", `second shard lock \w+\.mu acquired while \w+\.mu is held`)
	mustDiag(t, diags, "lockhold", `waitSettle \(blocks on claim settle\) while mu is held`)
}
