package analyzers

// interproc.go is harmonylint's interprocedural dataflow layer: a call
// graph over every loaded package plus one Summary per function body —
// which locks it acquires and with what already held, which channels
// it sends on or closes, which goroutines it spawns, which claimword
// transitions it invokes, whether it can learn about shutdown, and
// whether it observes wall-clock or global-rand state. The lockorder,
// chanlife and atomicproto passes and the determinism taint upgrade
// consume these summaries instead of re-walking syntax, which is what
// lets them follow a contract through any call depth rather than
// stopping at the first function boundary the way the PR-4 analyzers
// did.
//
// Two deliberate approximations keep the layer sound for its clients
// without a full abstract interpreter:
//
//   - The summary walker's held-lock sets use straight-line Lock/Unlock
//     tracking with branch joins by intersection (a lock counts as held
//     after an if only when both arms kept it), deferred Unlocks treated
//     as "held until return". Disagreement therefore drops locks, which
//     can only suppress lock-order edges, never invent them. Questions
//     intersection cannot answer — "is this resource released on every
//     path, including the early error returns?" — belong to the
//     path-sensitive CFG engine in cfg.go/dataflow.go, which the
//     pinbalance, claimlife and errpath passes run over the per-function
//     graphs cached here (FuncCFG).
//   - Only statically resolvable calls propagate: a call through an
//     interface or a function value contributes no edge. That is the
//     sanctioned escape hatch (trace.Clock exists exactly so the
//     deterministic core can time things through an interface), and it
//     matches how the PR-4 analyzers already scoped their checks.
//
// CRITICAL identity note: Load type-checks each top-level package in
// its own types universe while imports resolve through the shared
// source importer, so the same function can be represented by distinct
// *types.Func objects in different packages. Everything here therefore
// keys functions by FuncKey — import path, receiver type name, function
// name — never by object identity.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncKey names one function or method across the whole program.
type FuncKey struct {
	Pkg  string // import path
	Recv string // receiver's named type, "" for plain functions
	Name string
}

func (k FuncKey) String() string {
	base := k.Pkg[strings.LastIndex(k.Pkg, "/")+1:]
	if k.Recv != "" {
		return base + "." + k.Recv + "." + k.Name
	}
	return base + "." + k.Name
}

// keyOf derives the FuncKey for a resolved function object. ok=false
// for interface methods (no body to summarize) and builtins.
func keyOf(fn *types.Func) (FuncKey, bool) {
	if fn == nil || fn.Pkg() == nil {
		return FuncKey{}, false
	}
	k := FuncKey{Pkg: fn.Pkg().Path(), Name: fn.Name()}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return FuncKey{}, false
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok {
			return FuncKey{}, false
		}
		if _, isIface := n.Underlying().(*types.Interface); isIface {
			return FuncKey{}, false // dynamic dispatch: not resolvable
		}
		k.Recv = n.Obj().Name()
	}
	return k, true
}

// LockClass is one mutex "class": a struct field (every instance of
// vmShard.mu is one class), a package-level var, or a function-local
// variable. Lock-order edges relate classes, not instances.
type LockClass struct {
	Pkg   string // import path of the owning package
	Owner string // named type for fields, "func <name>" for locals, "" for package vars
	Name  string // field or variable name
}

func (c LockClass) String() string {
	base := c.Pkg[strings.LastIndex(c.Pkg, "/")+1:]
	if c.Owner != "" {
		return base + "." + c.Owner + "." + c.Name
	}
	return base + "." + c.Name
}

// IsShard reports a per-device shard lock (vmShard.mu, devShard.mu):
// same-class nesting of these is governed by the ascending-order
// contract rather than banned outright.
func (c LockClass) IsShard() bool { return strings.HasSuffix(c.Owner, "Shard") }

// chanClass identifies a channel the same way LockClass identifies a
// mutex: by field, package var or local name.
type chanClass struct {
	Pkg, Owner, Name string
}

func (c chanClass) String() string {
	base := c.Pkg[strings.LastIndex(c.Pkg, "/")+1:]
	if c.Owner != "" {
		return base + "." + c.Owner + "." + c.Name
	}
	return base + "." + c.Name
}

// lockEvent is one direct Lock/RLock with the classes already held.
type lockEvent struct {
	pos   token.Pos
	class LockClass
	held  []LockClass
}

// callSite is one statically resolved call with the held-lock snapshot.
type callSite struct {
	pos    token.Pos
	callee FuncKey
	held   []LockClass
}

// spawnSite is one `go` statement. callee is zero when the target is
// dynamic (function value, interface method) — not checkable, same as
// the PR-4 heuristic.
type spawnSite struct {
	pos    token.Pos
	callee FuncKey
	label  string
}

// chanOp is one send or close on an identifiable channel.
type chanOp struct {
	pos   token.Pos
	class chanClass
	send  bool // else close
}

// taintUse is one direct wall-clock or global-rand observation.
type taintUse struct {
	pos  token.Pos
	what string // e.g. "time.Now", "rand.Intn"
}

// Summary is the per-function dataflow digest every interprocedural
// pass consumes.
type Summary struct {
	Key  FuncKey
	Decl *ast.FuncDecl // nil for synthesized go-literal bodies
	Pkg  *Package

	Calls    []callSite
	Spawns   []spawnSite
	Acquires []lockEvent
	ChanOps  []chanOp
	Taints   []taintUse
	// ClaimCalls lists claimword transition helpers this function
	// invokes (Claim, Commit, Settle, Pin, Unpin, ConsumePrefetch).
	ClaimCalls []string
	// ResOps lists the paired-resource operation names this function
	// calls directly (Pin/Unpin, claim/commit/settle, Release and
	// their case variants). The lifecycle passes use the transitive
	// closure (TransResOps) to recognize a release performed by a
	// callee at any call depth.
	ResOps []string

	// EntryHeld are lock classes the doc contract declares held on
	// entry ("Requires mu held", "Requires sh.mu held").
	EntryHeld []LockClass
	// ShardOrderOK: the doc declares the ascending device/shard
	// acquisition contract, licensing same-class shard nesting.
	ShardOrderOK bool
	// DirectShutdown: the body itself contains a construct by which a
	// goroutine can learn it should exit or signal that it has
	// (select, channel receive, channel range, WaitGroup.Done,
	// Cond.Wait).
	DirectShutdown bool
}

// Program is the whole-program view: all summaries plus the fixpoint
// closures over the call graph.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Funcs map[FuncKey]*Summary
	Order []FuncKey // deterministic iteration order

	tainted  map[FuncKey]string // key → witness source ("" = clean)
	shutdown map[FuncKey]bool
	transAcq map[FuncKey]map[LockClass]bool
	transRes map[FuncKey]map[string]bool
	cfgs     map[FuncKey]*CFG // per-function CFGs, built once, shared by all passes
}

// FuncCFG returns the function's control-flow graph, building it on
// first request and caching it for every subsequent pass in the same
// RunProject call (the loader-perf contract: three path-sensitive
// passes, one CFG construction).
func (p *Program) FuncCFG(k FuncKey) *CFG {
	if c, ok := p.cfgs[k]; ok {
		return c
	}
	var c *CFG
	if s := p.Funcs[k]; s != nil {
		c = NewCFG(s.Decl)
	}
	p.cfgs[k] = c
	return c
}

// resOpNames is the paired-resource operation vocabulary recorded into
// Summary.ResOps: the pin, claim-word and handle lifecycles.
var resOpNames = map[string]bool{
	"Pin": true, "pin": true, "Unpin": true, "unpin": true,
	"Claim": true, "claim": true, "Commit": true, "commit": true,
	"Settle": true, "settle": true, "Release": true,
}

// claimTransitions are internal/claimword's pure transition functions.
var claimTransitions = map[string]bool{
	"Claim": true, "Commit": true, "Settle": true,
	"Pin": true, "Unpin": true, "ConsumePrefetch": true,
}

// BuildProgram summarizes every function in the loaded packages and
// closes the taint, shutdown-reachability and transitive-acquisition
// relations over the call graph.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:  pkgs,
		Funcs: make(map[FuncKey]*Summary),
		cfgs:  make(map[FuncKey]*CFG),
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		forEachFunc(pkg.Files, func(fd *ast.FuncDecl) {
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			key, ok := keyOf(fn)
			if !ok {
				return
			}
			sum := &Summary{Key: key, Decl: fd, Pkg: pkg}
			parseContracts(pkg, fd, sum)
			prog.add(sum)
			w := &sumWalker{pkg: pkg, prog: prog, sum: sum}
			held := make(map[LockClass]bool)
			for _, c := range sum.EntryHeld {
				held[c] = true
			}
			w.stmts(fd.Body.List, held)
		})
	}
	prog.closeTaint()
	prog.closeShutdown()
	prog.closeAcquires()
	prog.closeResOps()
	return prog
}

func (p *Program) add(s *Summary) {
	if _, dup := p.Funcs[s.Key]; dup {
		return // e.g. same name under build-tag variants; first wins
	}
	p.Funcs[s.Key] = s
	p.Order = append(p.Order, s.Key)
}

// parseContracts reads the doc-comment lock contracts (shared with
// lockhold: entryHeldRe, paramHeldRe, shardOrderRe).
func parseContracts(pkg *Package, fd *ast.FuncDecl, sum *Summary) {
	if fd.Doc == nil {
		return
	}
	doc := fd.Doc.Text()
	sum.ShardOrderOK = shardOrderRe.MatchString(doc)
	if entryHeldRe.MatchString(doc) && fd.Recv != nil && len(fd.Recv.List) > 0 {
		if c, ok := fieldLockClass(pkg, fd.Recv.List[0].Type, "mu"); ok {
			sum.EntryHeld = append(sum.EntryHeld, c)
		}
	}
	for _, m := range paramHeldRe.FindAllStringSubmatch(doc, -1) {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if name.Name == m[1] {
					if c, ok := fieldLockClass(pkg, f.Type, "mu"); ok {
						sum.EntryHeld = append(sum.EntryHeld, c)
					}
				}
			}
		}
	}
}

// fieldLockClass resolves "the mu field of the named type behind expr"
// to a lock class.
func fieldLockClass(pkg *Package, typeExpr ast.Expr, field string) (LockClass, bool) {
	t := pkg.Info.TypeOf(typeExpr)
	if t == nil {
		return LockClass{}, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return LockClass{}, false
	}
	return LockClass{Pkg: n.Obj().Pkg().Path(), Owner: n.Obj().Name(), Name: field}, true
}

// ----------------------------------------------------------- the walker

type sumWalker struct {
	pkg  *Package
	prog *Program
	sum  *Summary
}

func copyHeld(h map[LockClass]bool) map[LockClass]bool {
	c := make(map[LockClass]bool, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func intersectHeld(a, b map[LockClass]bool) map[LockClass]bool {
	out := make(map[LockClass]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func heldList(h map[LockClass]bool) []LockClass {
	if len(h) == 0 {
		return nil
	}
	out := make([]LockClass, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		return a.Name < b.Name
	})
	return out
}

func (w *sumWalker) stmts(list []ast.Stmt, held map[LockClass]bool) map[LockClass]bool {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

// stmt processes one statement and returns the held-lock set after it.
func (w *sumWalker) stmt(s ast.Stmt, held map[LockClass]bool) map[LockClass]bool {
	switch s := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.ExprStmt:
		w.scanExpr(s.X, held)
		return held
	case *ast.SendStmt:
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
		if c, ok := w.chanClassOf(s.Chan); ok {
			w.sum.ChanOps = append(w.sum.ChanOps, chanOp{pos: s.Pos(), class: c, send: true})
		}
		return held
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
		return held
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
		return held
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
		return held
	case *ast.GoStmt:
		w.goStmt(s, held)
		return held
	case *ast.DeferStmt:
		w.deferStmt(s)
		return held
	case *ast.IfStmt:
		held = w.stmt(s.Init, held)
		w.scanExpr(s.Cond, held)
		thenOut := w.stmts(s.Body.List, copyHeld(held))
		elseOut := copyHeld(held)
		if s.Else != nil {
			elseOut = w.stmt(s.Else, elseOut)
		}
		return intersectHeld(thenOut, elseOut)
	case *ast.ForStmt:
		held = w.stmt(s.Init, held)
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		bodyOut := w.stmts(s.Body.List, copyHeld(held))
		bodyOut = w.stmt(s.Post, bodyOut)
		// The loop may run zero times; locks must survive both paths.
		return intersectHeld(held, bodyOut)
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		if t := w.pkg.Info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.sum.DirectShutdown = true
			}
		}
		bodyOut := w.stmts(s.Body.List, copyHeld(held))
		return intersectHeld(held, bodyOut)
	case *ast.SwitchStmt:
		held = w.stmt(s.Init, held)
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		return w.caseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		held = w.stmt(s.Init, held)
		w.stmt(s.Assign, copyHeld(held))
		return w.caseBodies(s.Body, held)
	case *ast.SelectStmt:
		w.sum.DirectShutdown = true
		outs := []map[LockClass]bool{}
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			h := copyHeld(held)
			h = w.stmt(cc.Comm, h)
			h = w.stmts(cc.Body, h)
			outs = append(outs, h)
		}
		out := held
		for _, h := range outs {
			out = intersectHeld(out, h)
		}
		return out
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	default: // BranchStmt, EmptyStmt, ...
		return held
	}
}

// caseBodies joins the arms of a switch: a lock is held after it only
// if every arm (and the no-default fallthrough path) kept it.
func (w *sumWalker) caseBodies(body *ast.BlockStmt, held map[LockClass]bool) map[LockClass]bool {
	out := held
	hasDefault := false
	var outs []map[LockClass]bool
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.scanExpr(e, held)
		}
		outs = append(outs, w.stmts(cc.Body, copyHeld(held)))
	}
	if hasDefault && len(outs) > 0 {
		out = outs[0]
		outs = outs[1:]
	}
	for _, h := range outs {
		out = intersectHeld(out, h)
	}
	return out
}

// scanExpr records the calls, taints, lock transitions, channel closes
// and shutdown constructs inside one expression, in lexical order.
// Function literals are walked into the same summary with an empty
// held set (they run later, locks notwithstanding), matching how the
// PR-4 ctxleak heuristic treated nested bodies.
func (w *sumWalker) scanExpr(e ast.Expr, held map[LockClass]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, make(map[LockClass]bool))
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.sum.DirectShutdown = true
			}
		case *ast.CallExpr:
			w.call(n, held)
		}
		return true
	})
}

// call classifies one call expression: lock transition, taint source,
// claimword transition, channel close, shutdown signal, or a plain
// (possibly resolvable) call.
func (w *sumWalker) call(call *ast.CallExpr, held map[LockClass]bool) {
	info := w.pkg.Info

	// Mutex transitions.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
			if t := info.TypeOf(sel.X); t != nil && isMutex(t) {
				if c, ok := w.lockClassOf(sel.X); ok {
					switch sel.Sel.Name {
					case "Lock", "RLock":
						w.sum.Acquires = append(w.sum.Acquires, lockEvent{
							pos: call.Pos(), class: c, held: heldList(held),
						})
						held[c] = true
					default:
						delete(held, c)
					}
				}
				return
			}
		}
	}

	// Wall-clock and global-rand taint sources.
	for name := range wallClockFuncs {
		if pkgFunc(info, call, "time", name) {
			w.sum.Taints = append(w.sum.Taints, taintUse{pos: call.Pos(), what: "time." + name})
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "math/rand" {
				if isRandGlobal(info, sel) {
					w.sum.Taints = append(w.sum.Taints, taintUse{pos: call.Pos(), what: "rand." + sel.Sel.Name})
				}
				return
			}
		}
	}

	// close(ch) builtin.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) == 1 {
			if c, ok := w.chanClassOf(call.Args[0]); ok {
				w.sum.ChanOps = append(w.sum.ChanOps, chanOp{pos: call.Pos(), class: c})
			}
			return
		}
	}

	// Shutdown signals a goroutine body can contain.
	if _, ok := methodOn(info, call, "sync", "WaitGroup", "Done"); ok {
		w.sum.DirectShutdown = true
		return
	}
	if _, ok := methodOn(info, call, "sync", "Cond", "Wait"); ok {
		// A Cond.Wait loop re-checks a condition the owner can flip at
		// shutdown (dmaWorker's quit flag).
		w.sum.DirectShutdown = true
		return
	}

	// Statically resolvable call → call-graph edge.
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if claimTransitions[fn.Name()] && fn.Pkg() != nil && isClaimwordPath(fn.Pkg().Path()) {
		w.sum.ClaimCalls = append(w.sum.ClaimCalls, fn.Name())
	}
	if resOpNames[fn.Name()] {
		w.sum.ResOps = append(w.sum.ResOps, fn.Name())
	}
	if key, ok := keyOf(fn); ok {
		w.sum.Calls = append(w.sum.Calls, callSite{pos: call.Pos(), callee: key, held: heldList(held)})
	}
}

// isClaimwordPath matches the real package and its fixtures.
func isClaimwordPath(path string) bool {
	return strings.HasSuffix(path, "internal/claimword") || path == "claimword"
}

// calleeFunc resolves the *types.Func a call statically targets, or
// nil for function values, builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// goStmt records a spawn site and, for literals, synthesizes a summary
// for the spawned body so the lifecycle fixpoint can see through it.
func (w *sumWalker) goStmt(g *ast.GoStmt, held map[LockClass]bool) {
	for _, a := range g.Call.Args {
		w.scanExpr(a, held)
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		pos := w.pkg.Fset.Position(g.Pos())
		syn := &Summary{
			Key: FuncKey{Pkg: w.pkg.Path, Name: fmt.Sprintf("go$%s:%d", shortFile(pos.Filename), pos.Line)},
			Pkg: w.pkg,
		}
		w.prog.add(syn)
		lw := &sumWalker{pkg: w.pkg, prog: w.prog, sum: syn}
		lw.stmts(lit.Body.List, make(map[LockClass]bool))
		w.sum.Spawns = append(w.sum.Spawns, spawnSite{pos: g.Pos(), callee: syn.Key, label: "func literal"})
		return
	}
	sp := spawnSite{pos: g.Pos(), label: exprString(g.Call.Fun)}
	if fn := calleeFunc(w.pkg.Info, g.Call); fn != nil {
		if key, ok := keyOf(fn); ok {
			sp.callee = key
		}
	}
	w.sum.Spawns = append(w.sum.Spawns, sp)
}

// deferStmt: a deferred Unlock keeps the lock "held until return" (the
// standard Lock/defer-Unlock idiom); other deferred calls are recorded
// with an empty held set, since they run at an unknown exit state.
func (w *sumWalker) deferStmt(d *ast.DeferStmt) {
	call := d.Call
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
			if t := w.pkg.Info.TypeOf(sel.X); t != nil && isMutex(t) {
				return
			}
		}
	}
	w.scanExpr(call.Fun, make(map[LockClass]bool))
	for _, a := range call.Args {
		w.scanExpr(a, make(map[LockClass]bool))
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		_ = lit // already walked by scanExpr above
		return
	}
	w.call(call, make(map[LockClass]bool))
}

// lockClassOf resolves the mutex expression x of x.Lock() to a class.
func (w *sumWalker) lockClassOf(e ast.Expr) (LockClass, bool) {
	info := w.pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		v, ok := info.Uses[e.Sel].(*types.Var)
		if !ok || !v.IsField() {
			// Selector onto a package-level var (pkg.mu) or a
			// non-field; fall back to the object itself.
			if ok && v.Pkg() != nil {
				return LockClass{Pkg: v.Pkg().Path(), Name: v.Name()}, true
			}
			return LockClass{}, false
		}
		// Owner type: the named type the selection steps through.
		if s, ok := info.Selections[e]; ok {
			t := s.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			// Embedded fields: use the type that directly declares mu.
			for _, idx := range s.Index()[:len(s.Index())-1] {
				st, ok := t.Underlying().(*types.Struct)
				if !ok {
					break
				}
				t = st.Field(idx).Type()
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
				return LockClass{Pkg: n.Obj().Pkg().Path(), Owner: n.Obj().Name(), Name: v.Name()}, true
			}
		}
		return LockClass{}, false
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return LockClass{}, false
		}
		if v.IsField() {
			// mu inside a method with an embedded receiver.
			return LockClass{Pkg: v.Pkg().Path(), Owner: w.sum.Key.Recv, Name: v.Name()}, true
		}
		if v.Parent() == v.Pkg().Scope() {
			return LockClass{Pkg: v.Pkg().Path(), Name: v.Name()}, true
		}
		// Function-local mutex: class scoped to this function.
		return LockClass{Pkg: v.Pkg().Path(), Owner: "func " + w.sum.Key.Name, Name: v.Name()}, true
	}
	return LockClass{}, false
}

// chanClassOf resolves a send/close target to a channel class, when it
// is a plain field or variable reference.
func (w *sumWalker) chanClassOf(e ast.Expr) (chanClass, bool) {
	info := w.pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		v, ok := info.Uses[e.Sel].(*types.Var)
		if !ok || !v.IsField() {
			if ok && v.Pkg() != nil {
				return chanClass{Pkg: v.Pkg().Path(), Name: v.Name()}, true
			}
			return chanClass{}, false
		}
		if s, ok := info.Selections[e]; ok {
			t := s.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
				return chanClass{Pkg: n.Obj().Pkg().Path(), Owner: n.Obj().Name(), Name: v.Name()}, true
			}
		}
		return chanClass{}, false
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return chanClass{}, false
		}
		if v.Parent() == v.Pkg().Scope() {
			return chanClass{Pkg: v.Pkg().Path(), Name: v.Name()}, true
		}
		return chanClass{Pkg: v.Pkg().Path(), Owner: "func " + w.sum.Key.Name, Name: v.Name()}, true
	case *ast.IndexExpr:
		// ready[i]-style per-element channels: class by the slice.
		return w.chanClassOf(e.X)
	}
	return chanClass{}, false
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ----------------------------------------------------- fixpoint closures

// closeTaint: a function is tainted when it directly observes the wall
// clock or global rand, or calls (statically) a tainted function. The
// witness records the original source plus the first hop, for
// diagnostics.
func (p *Program) closeTaint() {
	p.tainted = make(map[FuncKey]string)
	for _, k := range p.Order {
		if s := p.Funcs[k]; len(s.Taints) > 0 {
			p.tainted[k] = s.Taints[0].what
		}
	}
	for changed := true; changed; {
		changed = false
		for _, k := range p.Order {
			if p.tainted[k] != "" {
				continue
			}
			for _, c := range p.Funcs[k].Calls {
				if wtn := p.tainted[c.callee]; wtn != "" {
					via := wtn
					if !strings.Contains(wtn, " via ") {
						via = wtn + " via " + c.callee.String()
					}
					p.tainted[k] = via
					changed = true
					break
				}
			}
		}
	}
}

// TaintWitness returns "" for a clean function, or the wall-clock/rand
// source (and first call hop) it transitively reaches.
func (p *Program) TaintWitness(k FuncKey) string { return p.tainted[k] }

// closeShutdown: a goroutine body can shut down when it directly
// contains a shutdown construct or calls a function that transitively
// can.
func (p *Program) closeShutdown() {
	p.shutdown = make(map[FuncKey]bool)
	for _, k := range p.Order {
		p.shutdown[k] = p.Funcs[k].DirectShutdown
	}
	for changed := true; changed; {
		changed = false
		for _, k := range p.Order {
			if p.shutdown[k] {
				continue
			}
			for _, c := range p.Funcs[k].Calls {
				if p.shutdown[c.callee] {
					p.shutdown[k] = true
					changed = true
					break
				}
			}
		}
	}
}

// ReachesShutdown reports whether the function (hence a goroutine
// running it) can learn about shutdown at any call depth.
func (p *Program) ReachesShutdown(k FuncKey) bool { return p.shutdown[k] }

// closeAcquires: transitive may-acquire sets — every lock class a call
// into the function may take at any depth.
func (p *Program) closeAcquires() {
	p.transAcq = make(map[FuncKey]map[LockClass]bool)
	for _, k := range p.Order {
		set := make(map[LockClass]bool)
		for _, a := range p.Funcs[k].Acquires {
			set[a.class] = true
		}
		p.transAcq[k] = set
	}
	for changed := true; changed; {
		changed = false
		for _, k := range p.Order {
			set := p.transAcq[k]
			for _, c := range p.Funcs[k].Calls {
				for cls := range p.transAcq[c.callee] {
					if !set[cls] {
						set[cls] = true
						changed = true
					}
				}
			}
		}
	}
}

// TransAcquires returns the sorted lock classes the function may
// acquire at any call depth.
func (p *Program) TransAcquires(k FuncKey) []LockClass {
	m := p.transAcq[k]
	if len(m) == 0 {
		return nil
	}
	return heldList(m)
}

// closeResOps: transitive paired-resource operation sets — every
// Pin/Unpin/claim/commit/settle/Release a call into the function may
// perform at any depth. The lifecycle passes consult this to credit a
// release done by a callee.
func (p *Program) closeResOps() {
	p.transRes = make(map[FuncKey]map[string]bool)
	for _, k := range p.Order {
		set := make(map[string]bool)
		for _, op := range p.Funcs[k].ResOps {
			set[op] = true
		}
		p.transRes[k] = set
	}
	for changed := true; changed; {
		changed = false
		for _, k := range p.Order {
			set := p.transRes[k]
			for _, c := range p.Funcs[k].Calls {
				for op := range p.transRes[c.callee] {
					if !set[op] {
						set[op] = true
						changed = true
					}
				}
			}
		}
	}
}

// TransResOps returns the paired-resource operations the function may
// perform at any call depth.
func (p *Program) TransResOps(k FuncKey) map[string]bool { return p.transRes[k] }
