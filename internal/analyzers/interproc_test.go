package analyzers

// Unit tests for the interprocedural engine itself: summaries, doc
// contracts, and the fixpoint closures, checked directly on a small
// inline program rather than through an analyzer's diagnostics.

import (
	"os"
	"path/filepath"
	"testing"
)

const engineSrc = `// Package engine exercises the summary walker.
package engine

import (
	"sync"
	"time"
)

type boxShard struct{ mu sync.Mutex }

type owner struct {
	mu     sync.Mutex
	shards []boxShard
}

// depositLocked updates accounting. Requires mu held.
func (o *owner) depositLocked(n int) {}

func (o *owner) deposit(n int) {
	o.mu.Lock()
	o.depositLocked(n)
	o.mu.Unlock()
}

// branchy keeps the lock on only one arm, so the join drops it.
func (o *owner) branchy(b bool) {
	o.mu.Lock()
	if b {
		o.mu.Unlock()
	}
	helper()
}

func helper() {}

// deferred holds until return.
func (o *owner) deferred() {
	o.mu.Lock()
	defer o.mu.Unlock()
	helper()
}

// stamp reads the wall clock directly.
func stamp() int64 { return time.Now().UnixNano() }

// viaStamp reaches it one hop away.
func viaStamp() int64 { return stamp() }

// viaVia reaches it two hops away.
func viaVia() int64 { return viaStamp() }

// drain can learn about shutdown directly.
func drain(ch chan int) {
	for range ch {
	}
}

// viaDrain can learn about it one call down.
func viaDrain(ch chan int) {
	for {
		drain(ch)
	}
}

// spin never can.
func spin() {
	for {
		helper()
	}
}

// lockChain: transitive acquisition two hops deep.
func lockChain(o *owner) {
	middle(o)
}

func middle(o *owner) {
	o.deposit(1)
}
`

// loadEngine writes the inline program to a temp dir and loads it.
func loadEngine(t *testing.T) *Program {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "engine.go"), []byte(engineSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "engine")
	if err != nil {
		t.Fatalf("loading engine package: %v", err)
	}
	return BuildProgram([]*Package{pkg})
}

func engineKey(name, recv string) FuncKey {
	return FuncKey{Pkg: "engine", Recv: recv, Name: name}
}

func TestInterprocSummaries(t *testing.T) {
	prog := loadEngine(t)

	// Every declared function got a summary.
	for _, name := range []string{"deposit", "branchy", "helper", "stamp", "drain", "spin"} {
		k := engineKey(name, "")
		if name == "deposit" || name == "branchy" {
			k.Recv = "owner"
		}
		if prog.Funcs[k] == nil {
			t.Errorf("no summary for %v", k)
		}
	}

	// Doc contract: depositLocked is entry-held on owner.mu.
	dl := prog.Funcs[engineKey("depositLocked", "owner")]
	if dl == nil || len(dl.EntryHeld) != 1 || dl.EntryHeld[0].Owner != "owner" || dl.EntryHeld[0].Name != "mu" {
		t.Errorf("depositLocked EntryHeld = %v, want [engine.owner.mu]", dl.EntryHeld)
	}

	// deposit records a direct acquisition with nothing held, and its
	// call to depositLocked is seen while owner.mu is held.
	dep := prog.Funcs[engineKey("deposit", "owner")]
	if len(dep.Acquires) != 1 || len(dep.Acquires[0].held) != 0 {
		t.Errorf("deposit Acquires = %+v, want one event with empty held", dep.Acquires)
	}
	foundCall := false
	for _, c := range dep.Calls {
		if c.callee.Name == "depositLocked" {
			foundCall = true
			if len(c.held) != 1 || c.held[0].Owner != "owner" {
				t.Errorf("depositLocked call site held = %v, want [engine.owner.mu]", c.held)
			}
		}
	}
	if !foundCall {
		t.Error("deposit's call to depositLocked not summarized")
	}

	// Branch join drops the disagreed lock: helper is called with
	// nothing (certainly) held.
	br := prog.Funcs[engineKey("branchy", "owner")]
	for _, c := range br.Calls {
		if c.callee.Name == "helper" && len(c.held) != 0 {
			t.Errorf("branchy's helper call held = %v, want empty after branch join", c.held)
		}
	}

	// Deferred unlock keeps the lock held at later calls.
	df := prog.Funcs[engineKey("deferred", "owner")]
	for _, c := range df.Calls {
		if c.callee.Name == "helper" && len(c.held) != 1 {
			t.Errorf("deferred's helper call held = %v, want [engine.owner.mu]", c.held)
		}
	}

	// IsShard keys off the type-name suffix.
	if (LockClass{Pkg: "engine", Owner: "boxShard", Name: "mu"}).IsShard() == false {
		t.Error("boxShard.mu should be a shard class")
	}
	if (LockClass{Pkg: "engine", Owner: "owner", Name: "mu"}).IsShard() {
		t.Error("owner.mu should not be a shard class")
	}
}

func TestInterprocFixpoints(t *testing.T) {
	prog := loadEngine(t)

	// Taint: direct, one hop, two hops; the witness names the first hop.
	if w := prog.TaintWitness(engineKey("stamp", "")); w != "time.Now" {
		t.Errorf("stamp witness = %q, want time.Now", w)
	}
	if w := prog.TaintWitness(engineKey("viaStamp", "")); w != "time.Now via engine.stamp" {
		t.Errorf("viaStamp witness = %q", w)
	}
	if w := prog.TaintWitness(engineKey("viaVia", "")); w != "time.Now via engine.stamp" {
		t.Errorf("viaVia witness = %q (the original hop is preserved)", w)
	}
	if w := prog.TaintWitness(engineKey("helper", "")); w != "" {
		t.Errorf("helper witness = %q, want clean", w)
	}

	// Shutdown reachability: direct, one hop, never.
	if !prog.ReachesShutdown(engineKey("drain", "")) {
		t.Error("drain should reach shutdown directly")
	}
	if !prog.ReachesShutdown(engineKey("viaDrain", "")) {
		t.Error("viaDrain should reach shutdown through drain")
	}
	if prog.ReachesShutdown(engineKey("spin", "")) {
		t.Error("spin must not reach shutdown")
	}

	// Transitive acquisition: lockChain → middle → deposit → owner.mu.
	acq := prog.TransAcquires(engineKey("lockChain", ""))
	found := false
	for _, c := range acq {
		if c.Owner == "owner" && c.Name == "mu" {
			found = true
		}
	}
	if !found {
		t.Errorf("lockChain TransAcquires = %v, want engine.owner.mu two hops deep", acq)
	}
}
