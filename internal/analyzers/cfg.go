package analyzers

// cfg.go builds per-function control-flow graphs from the AST. The
// graphs are the substrate for the path-sensitive lifecycle passes
// (pinbalance, claimlife, errpath in dataflow.go): where the summary
// walker in interproc.go joins branches by intersection, a CFG keeps
// every path distinct, so "the error return at line N leaks the pin
// taken at line M" becomes a provable — and printable — fact.
//
// Shape:
//
//   - A Block is a maximal straight-line run of statements/expressions
//     (ast.Node slice, in execution order). DeferStmt nodes stay inside
//     their block; the dataflow engine stacks their effects and applies
//     them on function exit, which models Go's defer-runs-at-return
//     semantics without exploding the graph.
//   - An Edge carries the branch condition it was taken under (Cond +
//     TakenTrue), so a consumer can classify `if err != nil` guards and
//     resolve conditional acquisitions (`if err := st.Pin(); err != nil`
//     pins only on the false edge, `if !vm.claim(...)` claims only on
//     the false edge of the negation).
//   - Exits are blocks with no successors: an explicit return (Return
//     set), a panic (Panics set), or falling off the end of the body
//     (Falls set). Branch statements (break/continue/goto) terminate
//     their block with an edge to the target, so unreachable trailing
//     code lands in predecessor-less blocks the engine never visits.
//
// Construction is purely syntactic and deterministic: blocks are
// numbered in creation order and successor edges keep insertion order,
// which makes the engine's breadth-first path enumeration (and hence
// every printed leak path) stable run-to-run.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	Decl   *ast.FuncDecl
	Blocks []*Block
	Entry  *Block
}

// Block is one straight-line region.
type Block struct {
	ID    int
	Nodes []ast.Node // statements and control expressions, in order
	Succs []*Edge

	Return *ast.ReturnStmt // set when the block ends in an explicit return
	Panics bool            // ends in a call to the panic builtin
	Falls  bool            // function body falls off the end here
}

// Edge is one control transfer. Cond is the governing branch condition
// (nil for unconditional transfers); TakenTrue tells which way the
// condition went on this edge.
type Edge struct {
	From, To  *Block
	Cond      ast.Expr
	TakenTrue bool
}

// NewCFG builds the graph for one function declaration. Bodiless
// declarations yield nil.
func NewCFG(fd *ast.FuncDecl) *CFG {
	if fd == nil || fd.Body == nil {
		return nil
	}
	b := &cfgBuilder{cfg: &CFG{Decl: fd}, gotos: make(map[string]*Block)}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(fd.Body.List)
	if b.cur != nil {
		b.cur.Falls = true
	}
	return b.cfg
}

// Exits returns the blocks where execution leaves the function, in
// block order.
func (c *CFG) Exits() []*Block {
	var out []*Block
	for _, b := range c.Blocks {
		if len(b.Succs) == 0 && (b.Return != nil || b.Panics || b.Falls) {
			out = append(out, b)
		}
	}
	return out
}

// cfgFrame is one enclosing breakable construct (loop, switch, select).
// cont is nil for non-loops.
type cfgFrame struct {
	label     string
	brk, cont *Block
	isLoop    bool
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *Block // nil when the current path has terminated
	stack []cfgFrame
	gotos map[string]*Block // label → target block (created on demand)

	// pendingLabel names the LabeledStmt wrapping the construct about
	// to be visited, so `break L` / `continue L` can find its frame.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{ID: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, takenTrue bool) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, &Edge{From: from, To: to, Cond: cond, TakenTrue: takenTrue})
}

// add appends a node to the current block (creating an unreachable
// block for dead code after a terminator, which the engine ignores).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// gotoTarget returns (creating if needed) the block a label jumps to.
func (b *cfgBuilder) gotoTarget(name string) *Block {
	if t, ok := b.gotos[name]; ok {
		return t
	}
	t := b.newBlock()
	b.gotos[name] = t
	return t
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		// The label is both a goto target and (for loops/switches) the
		// name break/continue resolve against.
		t := b.gotoTarget(s.Label.Name)
		b.edge(b.cur, t, nil, false)
		b.cur = t
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.cur.Return = s
		}
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			if b.cur != nil {
				b.cur.Panics = true
			}
			b.cur = nil
		}
	default:
		// Assign, Send, IncDec, Decl, Go, Defer, ...: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.GOTO:
		if s.Label != nil {
			b.edge(b.cur, b.gotoTarget(s.Label.Name), nil, false)
		}
	case token.BREAK, token.CONTINUE:
		want := ""
		if s.Label != nil {
			want = s.Label.Name
		}
		for i := len(b.stack) - 1; i >= 0; i-- {
			f := b.stack[i]
			if want != "" && f.label != want {
				continue
			}
			if s.Tok == token.CONTINUE && !f.isLoop {
				continue
			}
			if s.Tok == token.BREAK {
				b.edge(b.cur, f.brk, nil, false)
			} else {
				b.edge(b.cur, f.cont, nil, false)
			}
			break
		}
	case token.FALLTHROUGH:
		// Handled by switchStmt, which links case bodies directly.
		return
	}
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.takeLabel()
	b.stmt(s.Init)
	b.add(s.Cond)
	cond := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.edge(cond, then, s.Cond, true)
	b.cur = then
	b.stmts(s.Body.List)
	b.edge(b.cur, after, nil, false)

	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els, s.Cond, false)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after, nil, false)
	} else {
		b.edge(cond, after, s.Cond, false)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	b.stmt(s.Init)
	header := b.newBlock()
	b.edge(b.cur, header, nil, false)
	if s.Cond != nil {
		header.Nodes = append(header.Nodes, s.Cond)
	}

	body := b.newBlock()
	after := b.newBlock()
	if s.Cond != nil {
		b.edge(header, body, s.Cond, true)
		b.edge(header, after, s.Cond, false)
	} else {
		b.edge(header, body, nil, false)
	}

	cont := header
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, header, nil, false)
		cont = post
	}

	b.stack = append(b.stack, cfgFrame{label: label, brk: after, cont: cont, isLoop: true})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, cont, nil, false)
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.add(s.X)
	header := b.newBlock()
	b.edge(b.cur, header, nil, false)

	body := b.newBlock()
	after := b.newBlock()
	b.edge(header, body, nil, false)
	b.edge(header, after, nil, false)

	b.stack = append(b.stack, cfgFrame{label: label, brk: after, cont: header, isLoop: true})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, header, nil, false)
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	b.stmt(s.Init)
	if s.Tag != nil {
		b.add(s.Tag)
	}
	entry := b.cur
	if entry == nil {
		entry = b.newBlock()
		b.cur = entry
	}
	after := b.newBlock()
	b.stack = append(b.stack, cfgFrame{label: label, brk: after})

	// First pass: a block per case, so fallthrough can link forward.
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cb := b.newBlock()
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, e)
		}
		b.edge(entry, cb, nil, false)
		caseBlocks = append(caseBlocks, cb)
		clauses = append(clauses, cc)
	}
	if !hasDefault {
		b.edge(entry, after, nil, false)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		b.stmts(cc.Body)
		if ft := endsInFallthrough(cc.Body); ft && i+1 < len(caseBlocks) {
			b.edge(b.cur, caseBlocks[i+1], nil, false)
			b.cur = nil
			continue
		}
		b.edge(b.cur, after, nil, false)
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	b.stmt(s.Init)
	b.add(s.Assign)
	entry := b.cur
	after := b.newBlock()
	b.stack = append(b.stack, cfgFrame{label: label, brk: after})
	hasDefault := false
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cb := b.newBlock()
		b.edge(entry, cb, nil, false)
		b.cur = cb
		b.stmts(cc.Body)
		b.edge(b.cur, after, nil, false)
	}
	if !hasDefault {
		b.edge(entry, after, nil, false)
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	entry := b.cur
	if entry == nil {
		entry = b.newBlock()
	}
	after := b.newBlock()
	b.stack = append(b.stack, cfgFrame{label: label, brk: after})
	// A select with cases always leaves through one of them (a default
	// case is just another arm), so no entry→after shortcut exists.
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock()
		if cc.Comm != nil {
			cb.Nodes = append(cb.Nodes, cc.Comm)
		}
		b.edge(entry, cb, nil, false)
		b.cur = cb
		b.stmts(cc.Body)
		b.edge(b.cur, after, nil, false)
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// errCondSense classifies a branch condition as an error guard: +1 when
// taking the edge means "an error occurred" (`err != nil` true,
// `err == nil` false), -1 for the success side, 0 when the condition is
// not an error comparison. The engine uses it both to mark error paths
// for errpath and to resolve `if err := st.Pin(); err != nil`-style
// conditional acquisitions.
func errCondSense(info *types.Info, cond ast.Expr, takenTrue bool) int {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return 0
	}
	var operand ast.Expr
	switch {
	case isNilIdent(bin.Y):
		operand = bin.X
	case isNilIdent(bin.X):
		operand = bin.Y
	default:
		return 0
	}
	t := info.TypeOf(operand)
	if t == nil || !isErrorType(t) {
		return 0
	}
	// err != nil: true edge is the error side; err == nil: false edge.
	errSide := bin.Op == token.NEQ
	if takenTrue == errSide {
		return 1
	}
	return -1
}

// errCondOperand returns the error-typed operand of an error guard
// condition (`err` in `err != nil`), or nil.
func errCondOperand(info *types.Info, cond ast.Expr) ast.Expr {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil
	}
	var operand ast.Expr
	switch {
	case isNilIdent(bin.Y):
		operand = bin.X
	case isNilIdent(bin.X):
		operand = bin.Y
	default:
		return nil
	}
	if t := info.TypeOf(operand); t != nil && isErrorType(t) {
		return operand
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
