package analyzers

// errpath upgrades lockhold's leaked-lock check from intersection-join
// approximation to per-path evidence. lockhold's walker merges branch
// arms; when they disagree about a mutex it degrades to lsUnknown and
// suppresses reports — precisely the shape of the bug class that
// matters most here: a lock (or shard lock, or snapshot handle) taken,
// then an early `if err != nil { return err }` that skips the release.
// errpath walks the CFG instead, so each diagnostic carries the
// concrete leaking path: where the resource was taken, which error
// guard was crossed, and which return leaked it.
//
// Tracked resources:
//
//   - mu.Lock()/RLock() paired with Unlock()/RUnlock() on sync.Mutex /
//     sync.RWMutex — including per-device shard locks (vmShard.mu,
//     devShard.mu), with `defer mu.Unlock()` applied at every exit.
//   - Handle-style snapshots: `snap := x.Snapshot()` where the result
//     type has a Release method, paired with `snap.Release()`.
//
// Doc contracts compose exactly as in lockhold: "Requires mu held" /
// "Requires sh.mu held" licenses both entering and leaving with that
// lock held (unless "released on return" demands the release), and a
// call to a method documented as entry-held + released-on-return
// transfers the lock out of the caller.
//
// Reports fire only on error exits — paths through an `err != nil`
// guard or returns yielding a non-nil error — because that is the
// blind spot: happy-path leaks survive agreement across branches and
// lockhold already rejects them. Panic paths are exempt.

import (
	"go/ast"
	"go/types"
)

var Errpath = &Analyzer{
	Name: "errpath",
	Doc: "report locks, shard locks and snapshot handles still held at an " +
		"early error return, with the concrete leaking path (acquisition, " +
		"error guard, return) printed in each diagnostic; supersedes the " +
		"cases lockhold's intersection joins had to suppress",
	RunProject: runErrpath,
}

func runErrpath(pass *ProjectPass) error {
	return runLifecycle(pass, &lifeSpec{
		name:         "errpath",
		kind:         "lock",
		leakVerb:     "is still held",
		classify:     classifyErrpath,
		closers:      map[string]bool{"Release": true},
		entryOpen:    errpathEntryOpen,
		exitAllowed:  errpathExitAllowed,
		errExitsOnly: true,
	})
}

func classifyErrpath(e *lifeEngine, call *ast.CallExpr) []lifeEvent {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	info := e.pkg.Info
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if t := info.TypeOf(sel.X); t != nil && isMutex(t) {
			return []lifeEvent{{op: lifeOpen, res: exprString(sel.X),
				cond: condAlways, what: exprString(call)}}
		}
	case "Unlock", "RUnlock":
		if t := info.TypeOf(sel.X); t != nil && isMutex(t) {
			return []lifeEvent{{op: lifeClose, res: exprString(sel.X)}}
		}
	case "Snapshot":
		// Handle-style acquisition: the result owns a Release.
		if len(call.Args) == 0 && resultHasRelease(info, call) {
			return []lifeEvent{{op: lifeOpen, res: "", // bound to the assignment target
				cond: condAlways, what: exprString(call), kind: "snapshot"}}
		}
	case "Release":
		if len(call.Args) == 0 {
			return []lifeEvent{{op: lifeClose, res: exprString(sel.X)}}
		}
	default:
		// A callee documented "mu held on entry, released on return"
		// takes the lock with it.
		if key, ok := e.calleeKey(call); ok {
			if sum := e.prog.Funcs[key]; sum != nil && sum.Decl != nil && sum.Decl.Doc != nil {
				doc := sum.Decl.Doc.Text()
				if entryHeldRe.MatchString(doc) && releasedRe.MatchString(doc) {
					return []lifeEvent{{op: lifeClose, res: exprString(sel.X) + ".mu"}}
				}
			}
		}
	}
	return nil
}

// resultHasRelease reports whether the call's (single) result type has
// a Release method.
func resultHasRelease(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if _, ok := t.(*types.Tuple); ok {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Release")
	fn, ok := obj.(*types.Func)
	return ok && fn != nil
}

// errpathEntryOpen reads the function's lock contract: "Requires mu
// held" opens the receiver's mu, "Requires sh.mu held" the parameter's.
func errpathEntryOpen(e *lifeEngine) []string {
	fd := e.sum.Decl
	if fd.Doc == nil {
		return nil
	}
	doc := fd.Doc.Text()
	var open []string
	if entryHeldRe.MatchString(doc) && fd.Recv != nil &&
		len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		open = append(open, fd.Recv.List[0].Names[0].Name+".mu")
	}
	for _, m := range paramHeldRe.FindAllStringSubmatch(doc, -1) {
		open = append(open, m[1]+".mu")
	}
	return open
}

// errpathExitAllowed licenses exiting with an entry-held lock still
// held, unless the contract demands it released on return.
func errpathExitAllowed(e *lifeEngine, res string) bool {
	fd := e.sum.Decl
	if fd.Doc == nil {
		return false
	}
	doc := fd.Doc.Text()
	if releasedRe.MatchString(doc) {
		return false
	}
	for _, r := range errpathEntryOpen(e) {
		if r == res {
			return true
		}
	}
	return false
}
