package analyzers

// pinbalance proves the paper's pin-budget invariant at source level:
// every pin a function takes is, on every path through its CFG —
// including the early error returns — either released (Unpin, directly
// or by a callee at any call depth), handed off to an owner that will
// release it, or covered by a documented ownership contract ("pins
// it", "pins ... owned by"). One unbalanced Pin on a rollback path
// permanently shrinks the device budget the planner reasoned about,
// and the failure is silent until a long run OOMs;
// internal/memory/manager.go's rollback-on-error paths in Release and
// advance are the motivating code.
//
// Pin-like operations recognized:
//
//   - st.Pin() / st.Unpin() — tensor.State-style pin accounting
//     methods on a pointer receiver, success signaled by error.
//   - vm.pin(b, w) / vm.unpin(b) — the VM's CAS pin helpers, success
//     signaled by bool, the buffer as first argument.
//   - vm.settle(b, resident, +1) — a settle with a literal +1 pin
//     delta materializes a pin on b (the swap-in/alloc completion
//     idiom).
//
// internal/claimword's own pure transitions are out of scope (they
// compute words, they do not own pins); atomicproto guards that table.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

var Pinbalance = &Analyzer{
	Name: "pinbalance",
	Doc: "report pins (State.Pin, vm.pin, settle with +1 delta) that some " +
		"CFG path — typically an early error return — neither releases, " +
		"hands off, nor covers with a documented \"pins it\" ownership " +
		"contract; the leaked pin permanently shrinks the device budget",
	RunProject: runPinbalance,
}

// pinContractRe licenses exiting with pins open: the doc states the
// function pins on behalf of its caller or a recorded owner.
var pinContractRe = regexp.MustCompile(`(?i)\bpins\s+(it|them)\b|\bpins?\b[^.]*\bowned by\b|\bpinned on return\b`)

func runPinbalance(pass *ProjectPass) error {
	return runLifecycle(pass, &lifeSpec{
		name:     "pinbalance",
		kind:     "pin",
		leakVerb: "is not released",
		classify: classifyPin,
		closers:  map[string]bool{"Unpin": true, "unpin": true},
		exitAllowed: func(e *lifeEngine, res string) bool {
			doc := e.sum.Decl.Doc
			return doc != nil && pinContractRe.MatchString(doc.Text())
		},
	})
}

func classifyPin(e *lifeEngine, call *ast.CallExpr) []lifeEvent {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	info := e.pkg.Info
	switch sel.Sel.Name {
	case "Pin":
		// Accounting method on a pointer receiver (tensor.State.Pin);
		// package-level Pin is claimword's pure word transition.
		if len(call.Args) != 0 || !isPtrReceiver(info, sel) {
			return nil
		}
		return []lifeEvent{{op: lifeOpen, res: exprString(sel.X),
			cond: callCondKind(info, call), what: exprString(call)}}
	case "pin":
		if len(call.Args) == 0 || !isPointerExpr(info, call.Args[0]) {
			return nil
		}
		return []lifeEvent{{op: lifeOpen, res: exprString(call.Args[0]),
			cond: callCondKind(info, call), what: exprString(call)}}
	case "Unpin":
		if len(call.Args) != 0 || !isPtrReceiver(info, sel) {
			return nil
		}
		return []lifeEvent{{op: lifeClose, res: exprString(sel.X)}}
	case "unpin":
		if len(call.Args) == 0 || !isPointerExpr(info, call.Args[0]) {
			return nil
		}
		return []lifeEvent{{op: lifeClose, res: exprString(call.Args[0])}}
	case "settle":
		// settle(b, resident, +1): the completion that leaves b pinned.
		if len(call.Args) != 3 || !isPointerExpr(info, call.Args[0]) || !isPlusOne(call.Args[2]) {
			return nil
		}
		return []lifeEvent{{op: lifeOpen, res: exprString(call.Args[0]),
			cond: condAlways, what: exprString(call) + " [+1 pin]"}}
	}
	return nil
}

// isPtrReceiver reports a method call whose receiver expression is a
// pointer to a named type — the pin-owning object, as opposed to
// claimword's by-value word transitions.
func isPtrReceiver(info *types.Info, sel *ast.SelectorExpr) bool {
	return isPointerExpr(info, sel.X)
}

func isPointerExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// callCondKind inspects the call's result type to decide how success
// is signaled: error → condErrNil, bool → condBoolTrue, anything else
// (including no results) → unconditional.
func callCondKind(info *types.Info, call *ast.CallExpr) condKind {
	t := info.TypeOf(call)
	if t == nil {
		return condAlways
	}
	switch {
	case isErrorType(t):
		return condErrNil
	case types.Identical(t, types.Typ[types.Bool]):
		return condBoolTrue
	}
	return condAlways
}

// isPlusOne matches the literal pin delta +1 (with or without the
// explicit unary plus).
func isPlusOne(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ADD {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "1"
}
