package nn

import (
	"fmt"
	"math"
)

// Kernel is a trainable layer operating on caller-provided flat
// buffers: the contract between real models and the exec runtime's
// coherent virtual memory. All sizes are float32 counts per sample.
type Kernel interface {
	Name() string
	ParamCount() int
	InSize() int
	OutSize() int
	// StashSize is what Forward records per sample for Backward (the
	// layer input; ReLU masks and pool argmaxes are recomputed).
	StashSize() int
	// FLOPsPerSample estimates forward cost for the simulator-backed
	// graph.
	FLOPsPerSample() float64
	Forward(params, x, y, stash []float32, batch int)
	Backward(params, stash, dy, dx, grad []float32, batch int)
}

// Interface conformance.
var (
	_ Kernel = Dense{}
	_ Kernel = Conv2D{}
	_ Kernel = MaxPool2D{}
)

// Name implements Kernel for Dense.
func (l Dense) Name() string { return fmt.Sprintf("dense%dx%d", l.In, l.Out) }

// InSize implements Kernel.
func (l Dense) InSize() int { return l.In }

// OutSize implements Kernel.
func (l Dense) OutSize() int { return l.Out }

// StashSize implements Kernel.
func (l Dense) StashSize() int { return l.StashCount() }

// FLOPsPerSample implements Kernel (multiply-accumulate = 2 FLOPs).
func (l Dense) FLOPsPerSample() float64 { return 2 * float64(l.In) * float64(l.Out) }

// Conv2D is a 2-D convolution over NCHW-flattened samples with unit
// stride and no padding (valid), optionally followed by ReLU.
// Weights are laid out [Cout, Cin, K, K] then bias [Cout].
type Conv2D struct {
	Cin, H, W int // input planes and spatial size
	Cout, K   int // filters and (square) kernel size
	ReLU      bool
}

// OutH and OutW are the valid-convolution output spatial sizes.
func (c Conv2D) OutH() int { return c.H - c.K + 1 }

// OutW is the output width.
func (c Conv2D) OutW() int { return c.W - c.K + 1 }

// Name implements Kernel.
func (c Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%dx%d-%df", c.Cin, c.H, c.W, c.Cout)
}

// ParamCount implements Kernel.
func (c Conv2D) ParamCount() int { return c.Cout*c.Cin*c.K*c.K + c.Cout }

// InSize implements Kernel.
func (c Conv2D) InSize() int { return c.Cin * c.H * c.W }

// OutSize implements Kernel.
func (c Conv2D) OutSize() int { return c.Cout * c.OutH() * c.OutW() }

// StashSize implements Kernel.
func (c Conv2D) StashSize() int { return c.InSize() }

// FLOPsPerSample implements Kernel.
func (c Conv2D) FLOPsPerSample() float64 {
	return 2 * float64(c.Cout) * float64(c.OutH()) * float64(c.OutW()) * float64(c.Cin) * float64(c.K*c.K)
}

func (c Conv2D) validate() {
	if c.Cin <= 0 || c.Cout <= 0 || c.K <= 0 || c.OutH() <= 0 || c.OutW() <= 0 {
		panic(fmt.Sprintf("nn: invalid conv shape %+v", c))
	}
}

// preact computes the convolution into y without ReLU. Samples write
// disjoint output slices, so batch chunking is bit-identical to the
// serial loop.
func (c Conv2D) preact(params, x, y []float32, batch int) {
	oh, ow := c.OutH(), c.OutW()
	w := params[:c.Cout*c.Cin*c.K*c.K]
	bias := params[c.Cout*c.Cin*c.K*c.K:]
	ParallelFor(batch, grainFor(int(c.FLOPsPerSample())), func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			xs := x[b*c.InSize() : (b+1)*c.InSize()]
			ys := y[b*c.OutSize() : (b+1)*c.OutSize()]
			for co := 0; co < c.Cout; co++ {
				for i := 0; i < oh; i++ {
					for j := 0; j < ow; j++ {
						sum := bias[co]
						for ci := 0; ci < c.Cin; ci++ {
							for kh := 0; kh < c.K; kh++ {
								xRow := xs[ci*c.H*c.W+(i+kh)*c.W+j:]
								wRow := w[((co*c.Cin+ci)*c.K+kh)*c.K:]
								for kw := 0; kw < c.K; kw++ {
									sum += xRow[kw] * wRow[kw]
								}
							}
						}
						ys[co*oh*ow+i*ow+j] = sum
					}
				}
			}
		}
	})
}

// Forward implements Kernel.
func (c Conv2D) Forward(params, x, y, stash []float32, batch int) {
	c.validate()
	copy(stash, x[:batch*c.InSize()])
	c.preact(params, x, y, batch)
	if c.ReLU {
		for i := 0; i < batch*c.OutSize(); i++ {
			if y[i] < 0 {
				y[i] = 0
			}
		}
	}
}

// Backward implements Kernel; the ReLU mask is recomputed from the
// stashed input.
//
// Like Dense.Backward, the pass is phased for the worker pool without
// changing accumulation order: gw/gb chunk over output channels (each
// channel owns its slice of gw and its gb entry, accumulating samples
// and positions in serial order), dx chunks over the batch (samples
// write disjoint dx slices). Scratch comes from the shared pool.
func (c Conv2D) Backward(params, stash, dy, dx, grad []float32, batch int) {
	c.validate()
	oh, ow := c.OutH(), c.OutW()
	w := params[:c.Cout*c.Cin*c.K*c.K]
	gw := grad[:c.Cout*c.Cin*c.K*c.K]
	gb := grad[c.Cout*c.Cin*c.K*c.K:]

	masked := dy
	if c.ReLU {
		z := GetScratch(batch * c.OutSize())
		defer PutScratch(z)
		c.preact(params, stash, z, batch)
		masked = GetZeroedScratch(batch * c.OutSize())
		defer PutScratch(masked)
		for i := range z {
			if z[i] > 0 {
				masked[i] = dy[i]
			}
		}
	}
	// Weight and bias gradients, chunked over output channels.
	chanCost := 2 * oh * ow * c.Cin * c.K * c.K
	ParallelFor(c.Cout, grainFor(batch*chanCost), func(clo, chi int) {
		for b := 0; b < batch; b++ {
			xs := stash[b*c.InSize() : (b+1)*c.InSize()]
			ds := masked[b*c.OutSize() : (b+1)*c.OutSize()]
			for co := clo; co < chi; co++ {
				for i := 0; i < oh; i++ {
					for j := 0; j < ow; j++ {
						d := ds[co*oh*ow+i*ow+j]
						if d == 0 {
							continue
						}
						gb[co] += d
						for ci := 0; ci < c.Cin; ci++ {
							for kh := 0; kh < c.K; kh++ {
								xRow := xs[ci*c.H*c.W+(i+kh)*c.W+j:]
								gRow := gw[((co*c.Cin+ci)*c.K+kh)*c.K:]
								for kw := 0; kw < c.K; kw++ {
									gRow[kw] += d * xRow[kw]
								}
							}
						}
					}
				}
			}
		}
	})
	// Input gradient, chunked over the batch.
	if dx == nil {
		return
	}
	clear(dx[:batch*c.InSize()])
	ParallelFor(batch, grainFor(chanCost*c.Cout), func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			ds := masked[b*c.OutSize() : (b+1)*c.OutSize()]
			dxs := dx[b*c.InSize() : (b+1)*c.InSize()]
			for co := 0; co < c.Cout; co++ {
				for i := 0; i < oh; i++ {
					for j := 0; j < ow; j++ {
						d := ds[co*oh*ow+i*ow+j]
						if d == 0 {
							continue
						}
						for ci := 0; ci < c.Cin; ci++ {
							for kh := 0; kh < c.K; kh++ {
								wRow := w[((co*c.Cin+ci)*c.K+kh)*c.K:]
								for kw := 0; kw < c.K; kw++ {
									dxs[ci*c.H*c.W+(i+kh)*c.W+j+kw] += d * wRow[kw]
								}
							}
						}
					}
				}
			}
		}
	})
}

// MaxPool2D is a non-overlapping P×P max pool over NCHW samples
// (H and W must be divisible by P). It has no parameters; argmax
// positions are recomputed in backward from the stashed input.
type MaxPool2D struct {
	C, H, W int
	P       int
}

// Name implements Kernel.
func (p MaxPool2D) Name() string { return fmt.Sprintf("pool%d@%dx%dx%d", p.P, p.C, p.H, p.W) }

// ParamCount implements Kernel.
func (p MaxPool2D) ParamCount() int { return 0 }

// InSize implements Kernel.
func (p MaxPool2D) InSize() int { return p.C * p.H * p.W }

// OutSize implements Kernel.
func (p MaxPool2D) OutSize() int { return p.C * (p.H / p.P) * (p.W / p.P) }

// StashSize implements Kernel.
func (p MaxPool2D) StashSize() int { return p.InSize() }

// FLOPsPerSample implements Kernel (comparisons).
func (p MaxPool2D) FLOPsPerSample() float64 { return float64(p.InSize()) }

func (p MaxPool2D) validate() {
	if p.C <= 0 || p.P <= 0 || p.H%p.P != 0 || p.W%p.P != 0 {
		panic(fmt.Sprintf("nn: invalid pool shape %+v", p))
	}
}

// Forward implements Kernel.
func (p MaxPool2D) Forward(_, x, y, stash []float32, batch int) {
	p.validate()
	copy(stash, x[:batch*p.InSize()])
	oh, ow := p.H/p.P, p.W/p.P
	ParallelFor(batch, grainFor(p.InSize()), func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			xs := x[b*p.InSize() : (b+1)*p.InSize()]
			ys := y[b*p.OutSize() : (b+1)*p.OutSize()]
			for c := 0; c < p.C; c++ {
				for i := 0; i < oh; i++ {
					for j := 0; j < ow; j++ {
						best := xs[c*p.H*p.W+(i*p.P)*p.W+j*p.P]
						for di := 0; di < p.P; di++ {
							for dj := 0; dj < p.P; dj++ {
								v := xs[c*p.H*p.W+(i*p.P+di)*p.W+j*p.P+dj]
								if v > best {
									best = v
								}
							}
						}
						ys[c*oh*ow+i*ow+j] = best
					}
				}
			}
		}
	})
}

// Backward implements Kernel: the gradient routes to the argmax
// element of each window (first-found on ties, matching Forward).
func (p MaxPool2D) Backward(_, stash, dy, dx, _ []float32, batch int) {
	p.validate()
	if dx == nil {
		return
	}
	oh, ow := p.H/p.P, p.W/p.P
	clear(dx[:batch*p.InSize()])
	ParallelFor(batch, grainFor(p.InSize()), func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			xs := stash[b*p.InSize() : (b+1)*p.InSize()]
			ds := dy[b*p.OutSize() : (b+1)*p.OutSize()]
			dxs := dx[b*p.InSize() : (b+1)*p.InSize()]
			for c := 0; c < p.C; c++ {
				for i := 0; i < oh; i++ {
					for j := 0; j < ow; j++ {
						bi, bj := 0, 0
						best := xs[c*p.H*p.W+(i*p.P)*p.W+j*p.P]
						for di := 0; di < p.P; di++ {
							for dj := 0; dj < p.P; dj++ {
								v := xs[c*p.H*p.W+(i*p.P+di)*p.W+j*p.P+dj]
								if v > best {
									best, bi, bj = v, di, dj
								}
							}
						}
						dxs[c*p.H*p.W+(i*p.P+bi)*p.W+j*p.P+bj] += ds[c*oh*ow+i*ow+j]
					}
				}
			}
		}
	})
}

// InitKernel initializes a kernel's parameters: Xavier for anything
// with weights, a no-op otherwise.
func InitKernel(k Kernel, params []float32, seed uint64) {
	n := k.ParamCount()
	if n == 0 {
		return
	}
	limit := xavierLimit(k.InSize(), k.OutSize())
	rng := seed*2862933555777941757 + 3037000493
	// Heuristic: the trailing OutSize-or-fewer entries are biases for
	// our kernels; Conv2D bias is Cout and Dense bias is Out. We zero
	// the bias region exactly per kernel type.
	biases := 0
	switch kk := k.(type) {
	case Dense:
		biases = kk.Out
	case Conv2D:
		biases = kk.Cout
	}
	for i := 0; i < n-biases; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		u := float32(rng>>11) / float32(1<<53)
		params[i] = (2*u - 1) * limit
	}
	for i := n - biases; i < n; i++ {
		params[i] = 0
	}
}

func xavierLimit(fanIn, fanOut int) float32 {
	return float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
}
