package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*(1+math.Abs(b))
}

func TestDenseForwardKnownValues(t *testing.T) {
	l := Dense{In: 2, Out: 2}
	// W = [[1,2],[3,4]], b = [0.5, -0.5]
	params := []float32{1, 2, 3, 4, 0.5, -0.5}
	x := []float32{1, 1}
	y := make([]float32, 2)
	stash := make([]float32, 2)
	l.Forward(params, x, y, stash, 1)
	if y[0] != 4.5 || y[1] != 5.5 {
		t.Fatalf("y = %v, want [4.5 5.5]", y)
	}
	if stash[0] != 1 || stash[1] != 1 {
		t.Fatalf("stash = %v", stash)
	}
}

func TestReLUClampsForward(t *testing.T) {
	l := Dense{In: 1, Out: 2, ReLU: true}
	params := []float32{1, -1, 0, 0} // W=[[1,-1]], b=0
	y := make([]float32, 2)
	stash := make([]float32, 1)
	l.Forward(params, []float32{2}, y, stash, 1)
	if y[0] != 2 || y[1] != 0 {
		t.Fatalf("y = %v, want [2 0]", y)
	}
}

func TestSoftmaxXentKnown(t *testing.T) {
	// Uniform logits: loss = ln(C).
	logits := []float32{0, 0, 0, 0}
	dl := make([]float32, 4)
	loss := SoftmaxXent(logits, []int{2}, dl, 1, 4)
	if !almost(float64(loss), math.Log(4), 1e-5) {
		t.Fatalf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient sums to zero and is negative only at the label.
	var sum float32
	for j, g := range dl {
		sum += g
		if (j == 2) != (g < 0) {
			t.Fatalf("dlogits = %v", dl)
		}
	}
	if !almost(float64(sum), 0, 1e-5) {
		t.Fatalf("gradient sum = %v", sum)
	}
}

// Numerical gradient check of the full layer stack: dense+ReLU →
// dense → softmax cross-entropy.
func TestGradientCheck(t *testing.T) {
	l1 := Dense{In: 3, Out: 4, ReLU: true}
	l2 := Dense{In: 4, Out: 2}
	p1 := make([]float32, l1.ParamCount())
	p2 := make([]float32, l2.ParamCount())
	XavierInit(l1, p1, 1)
	XavierInit(l2, p2, 2)
	x := []float32{0.3, -0.7, 1.2, -0.1, 0.9, 0.4}
	labels := []int{1, 0}
	batch := 2

	forward := func() float32 {
		h := make([]float32, batch*4)
		s1 := make([]float32, batch*3)
		l1.Forward(p1, x, h, s1, batch)
		logits := make([]float32, batch*2)
		s2 := make([]float32, batch*4)
		l2.Forward(p2, h, logits, s2, batch)
		dl := make([]float32, batch*2)
		return SoftmaxXent(logits, labels, dl, batch, 2)
	}

	// Analytic gradients.
	h := make([]float32, batch*4)
	s1 := make([]float32, batch*3)
	l1.Forward(p1, x, h, s1, batch)
	logits := make([]float32, batch*2)
	s2 := make([]float32, batch*4)
	l2.Forward(p2, h, logits, s2, batch)
	dl := make([]float32, batch*2)
	SoftmaxXent(logits, labels, dl, batch, 2)
	g2 := make([]float32, l2.ParamCount())
	dh := make([]float32, batch*4)
	l2.Backward(p2, s2, dl, dh, g2, batch)
	g1 := make([]float32, l1.ParamCount())
	l1.Backward(p1, s1, dh, nil, g1, batch)

	check := func(params, grad []float32, name string) {
		t.Helper()
		const eps = 1e-3
		for i := 0; i < len(params); i += 3 { // sample every 3rd param
			orig := params[i]
			params[i] = orig + eps
			up := float64(forward())
			params[i] = orig - eps
			down := float64(forward())
			params[i] = orig
			numeric := (up - down) / (2 * eps)
			if !almost(float64(grad[i]), numeric, 0.05) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, grad[i], numeric)
			}
		}
	}
	check(p1, g1, "layer1")
	check(p2, g2, "layer2")
}

func TestSGDStep(t *testing.T) {
	w := []float32{1, 2}
	g := []float32{10, -10}
	SGD(w, g, 0.1)
	if w[0] != 0 || w[1] != 3 {
		t.Fatalf("w = %v", w)
	}
	if g[0] != 0 || g[1] != 0 {
		t.Fatal("gradient should be reset")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)² with Adam; gradient = 2(w-3).
	w := []float32{0}
	g := make([]float32, 1)
	m := make([]float32, 1)
	v := make([]float32, 1)
	for step := 1; step <= 500; step++ {
		g[0] = 2 * (w[0] - 3)
		Adam(w, g, m, v, 0.05, 0.9, 0.999, 1e-8, step)
	}
	if !almost(float64(w[0]), 3, 0.02) {
		t.Fatalf("w = %v, want ≈3", w[0])
	}
}

func TestXavierDeterministicAndBounded(t *testing.T) {
	l := Dense{In: 16, Out: 16}
	a := make([]float32, l.ParamCount())
	b := make([]float32, l.ParamCount())
	XavierInit(l, a, 7)
	XavierInit(l, b, 7)
	limit := math.Sqrt(6.0 / 32.0)
	nonzero := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("XavierInit not deterministic")
		}
		if math.Abs(float64(a[i])) > limit {
			t.Fatalf("weight %v exceeds Xavier limit %v", a[i], limit)
		}
		if a[i] != 0 {
			nonzero++
		}
	}
	if nonzero < l.In*l.Out/2 {
		t.Fatal("suspiciously many zero weights")
	}
	// Bias is zero.
	for i := l.In * l.Out; i < l.ParamCount(); i++ {
		if a[i] != 0 {
			t.Fatal("bias should start at zero")
		}
	}
}

func TestArgmax(t *testing.T) {
	data := []float32{1, 5, 2, 9, 0, 3}
	if Argmax(data, 0, 3) != 1 || Argmax(data, 1, 3) != 0 {
		t.Fatal("argmax wrong")
	}
}

// Property: softmax gradient always sums to ~0 per row and loss is
// non-negative.
func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []int8, labelRaw uint8) bool {
		classes := 4
		if len(raw) < classes {
			return true
		}
		logits := make([]float32, classes)
		for j := 0; j < classes; j++ {
			logits[j] = float32(raw[j]) / 8
		}
		dl := make([]float32, classes)
		label := int(labelRaw) % classes
		loss := SoftmaxXent(logits, []int{label}, dl, 1, classes)
		if loss < 0 {
			return false
		}
		var sum float64
		for _, g := range dl {
			sum += float64(g)
		}
		return math.Abs(sum) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReLU backward never propagates gradient through
// non-positive pre-activations.
func TestReLUBackwardMasksProperty(t *testing.T) {
	f := func(xRaw, dyRaw int8) bool {
		l := Dense{In: 1, Out: 1, ReLU: true}
		params := []float32{1, 0} // identity weight, zero bias
		x := []float32{float32(xRaw)}
		y := make([]float32, 1)
		stash := make([]float32, 1)
		l.Forward(params, x, y, stash, 1)
		dy := []float32{float32(dyRaw)}
		dx := make([]float32, 1)
		grad := make([]float32, 2)
		l.Backward(params, stash, dy, dx, grad, 1)
		if xRaw <= 0 {
			return dx[0] == 0 && grad[0] == 0
		}
		return dx[0] == float32(dyRaw) && grad[0] == float32(xRaw)*float32(dyRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConvForwardKnownValues(t *testing.T) {
	// 1x3x3 input, single 2x2 filter of ones, bias 0.5: each output
	// is the window sum + 0.5.
	c := Conv2D{Cin: 1, H: 3, W: 3, Cout: 1, K: 2}
	params := []float32{1, 1, 1, 1, 0.5}
	x := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	y := make([]float32, c.OutSize())
	stash := make([]float32, c.StashSize())
	c.Forward(params, x, y, stash, 1)
	want := []float32{12.5, 16.5, 24.5, 28.5}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
	if stash[4] != 5 {
		t.Fatal("stash should hold the input")
	}
}

func TestConvGradientCheck(t *testing.T) {
	c := Conv2D{Cin: 2, H: 4, W: 4, Cout: 3, K: 3, ReLU: true}
	params := make([]float32, c.ParamCount())
	InitKernel(c, params, 5)
	batch := 2
	x := make([]float32, batch*c.InSize())
	rng := uint64(99)
	for i := range x {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		x[i] = float32(rng>>11)/float32(1<<53) - 0.5
	}
	labels := []int{1, 2}
	classes := c.OutSize()

	forward := func() float32 {
		y := make([]float32, batch*c.OutSize())
		stash := make([]float32, batch*c.StashSize())
		c.Forward(params, x, y, stash, batch)
		dl := make([]float32, batch*classes)
		return SoftmaxXent(y, labels, dl, batch, classes)
	}
	// Analytic gradient.
	y := make([]float32, batch*c.OutSize())
	stash := make([]float32, batch*c.StashSize())
	c.Forward(params, x, y, stash, batch)
	dl := make([]float32, batch*classes)
	SoftmaxXent(y, labels, dl, batch, classes)
	grad := make([]float32, c.ParamCount())
	dx := make([]float32, batch*c.InSize())
	c.Backward(params, stash, dl, dx, grad, batch)

	const eps = 1e-2
	for i := 0; i < c.ParamCount(); i += 7 {
		orig := params[i]
		params[i] = orig + eps
		up := float64(forward())
		params[i] = orig - eps
		down := float64(forward())
		params[i] = orig
		numeric := (up - down) / (2 * eps)
		if !almost(float64(grad[i]), numeric, 0.08) {
			t.Fatalf("conv grad[%d]: analytic %v vs numeric %v", i, grad[i], numeric)
		}
	}
	// Input gradient too (spot check).
	for i := 0; i < len(x); i += 11 {
		orig := x[i]
		x[i] = orig + eps
		up := float64(forward())
		x[i] = orig - eps
		down := float64(forward())
		x[i] = orig
		numeric := (up - down) / (2 * eps)
		if !almost(float64(dx[i]), numeric, 0.08) {
			t.Fatalf("conv dx[%d]: analytic %v vs numeric %v", i, dx[i], numeric)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := MaxPool2D{C: 1, H: 4, W: 4, P: 2}
	x := []float32{
		1, 2, 0, 0,
		3, 4, 0, 9,
		0, 0, 5, 0,
		7, 0, 0, 6,
	}
	y := make([]float32, p.OutSize())
	stash := make([]float32, p.StashSize())
	p.Forward(nil, x, y, stash, 1)
	want := []float32{4, 9, 7, 6}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("pool y = %v, want %v", y, want)
		}
	}
	dy := []float32{1, 2, 3, 4}
	dx := make([]float32, p.InSize())
	p.Backward(nil, stash, dy, dx, nil, 1)
	// Gradient lands exactly on the max positions.
	if dx[5] != 1 || dx[7] != 2 || dx[12] != 3 || dx[15] != 4 {
		t.Fatalf("pool dx = %v", dx)
	}
	var sum float32
	for _, v := range dx {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("pool gradient mass %v, want 10", sum)
	}
}

func TestKernelInterfaceSizes(t *testing.T) {
	ks := []Kernel{
		Dense{In: 8, Out: 4, ReLU: true},
		Conv2D{Cin: 1, H: 8, W: 8, Cout: 4, K: 3, ReLU: true},
		MaxPool2D{C: 4, H: 6, W: 6, P: 2},
	}
	for _, k := range ks {
		if k.Name() == "" || k.InSize() <= 0 || k.OutSize() <= 0 {
			t.Fatalf("bad kernel metadata for %T", k)
		}
		if k.FLOPsPerSample() <= 0 {
			t.Fatalf("%s has no FLOPs", k.Name())
		}
	}
	if (MaxPool2D{C: 1, H: 4, W: 4, P: 2}).ParamCount() != 0 {
		t.Fatal("pool has no params")
	}
}

func TestInitKernelZerosBias(t *testing.T) {
	c := Conv2D{Cin: 1, H: 5, W: 5, Cout: 3, K: 3}
	params := make([]float32, c.ParamCount())
	InitKernel(c, params, 1)
	for i := c.ParamCount() - c.Cout; i < c.ParamCount(); i++ {
		if params[i] != 0 {
			t.Fatal("conv bias should start zero")
		}
	}
	nonzero := 0
	for _, v := range params[:c.ParamCount()-c.Cout] {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 20 {
		t.Fatal("weights look uninitialized")
	}
	// Pool init is a no-op and must not panic on empty params.
	InitKernel(MaxPool2D{C: 1, H: 2, W: 2, P: 2}, nil, 1)
}
