// Package nn implements real float32 neural-network math on plain
// slices: dense layers, ReLU, softmax cross-entropy, and SGD/Adam
// optimizers. It deliberately operates on caller-provided buffers so
// the exec runtime can place those buffers in capacity-limited
// virtual device memory and move them through Harmony's coherent
// virtual memory — the kernels never allocate parameter or activation
// storage themselves.
//
// Backward passes use activation recomputation for the ReLU mask
// (recompute-from-stash, in the spirit of Chen et al. [7] cited by
// the paper) so the stash holds only each layer's input.
package nn

import (
	"fmt"
	"math"
)

// Dense is a fully connected layer y = relu?(x·W + b) with row-major
// W of shape [In, Out].
type Dense struct {
	In, Out int
	// ReLU applies the nonlinearity; the final layer of a classifier
	// leaves it off (softmax cross-entropy handles the output).
	ReLU bool
}

// ParamCount is the number of float32 parameters (weights + bias).
func (l Dense) ParamCount() int { return l.In*l.Out + l.Out }

// StashCount is the floats stashed per sample (the layer input).
func (l Dense) StashCount() int { return l.In }

// Forward computes y[batch,Out] from x[batch,In] using params
// (weights then bias) and records x into stash. Panics on size
// mismatches: these are programming errors in the buffer plumbing,
// not runtime conditions.
func (l Dense) Forward(params, x, y, stash []float32, batch int) {
	l.check("Forward", params, x, y, batch)
	if len(stash) < batch*l.In {
		panic(fmt.Sprintf("nn: stash %d < %d", len(stash), batch*l.In))
	}
	copy(stash, x[:batch*l.In])
	w := params[:l.In*l.Out]
	b := params[l.In*l.Out:]
	// Rows of the batch are independent and write disjoint slices of
	// y, so chunking over rows is bit-identical to the serial loop.
	ParallelFor(batch, grainFor(2*l.In*l.Out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi := x[i*l.In : (i+1)*l.In]
			yi := y[i*l.Out : (i+1)*l.Out]
			copy(yi, b[:l.Out])
			for k, xv := range xi {
				if xv == 0 {
					continue
				}
				row := w[k*l.Out : (k+1)*l.Out]
				for j, wv := range row {
					yi[j] += xv * wv
				}
			}
			if l.ReLU {
				for j := range yi {
					if yi[j] < 0 {
						yi[j] = 0
					}
				}
			}
		}
	})
}

// Backward computes dx[batch,In] and accumulates parameter gradients
// into grad given dy[batch,Out] and the stashed input. dx may be nil
// for the first layer. The ReLU mask is recomputed from the stash.
//
// The pass is split into phases so each can fan across the worker
// pool without changing any element's accumulation order: the mask
// and dx are row-disjoint over the batch, while gb and gw chunk over
// output columns and weight rows respectively, keeping the batch loop
// innermost (and in order) per accumulated element. The results are
// bit-identical to a serial run.
func (l Dense) Backward(params, stash, dy, dx, grad []float32, batch int) {
	w := params[:l.In*l.Out]
	gw := grad[:l.In*l.Out]
	gb := grad[l.In*l.Out:]
	// Recompute the pre-activation sign when the layer has ReLU. The
	// mask and per-row pre-activations come from the scratch pool:
	// this is the hot per-call allocation of the backward pass.
	masked := dy
	if l.ReLU {
		masked = GetZeroedScratch(batch * l.Out)
		defer PutScratch(masked)
		b := params[l.In*l.Out:]
		ParallelFor(batch, grainFor(2*l.In*l.Out), func(lo, hi int) {
			zi := GetScratch(l.Out)
			defer PutScratch(zi)
			for i := lo; i < hi; i++ {
				xi := stash[i*l.In : (i+1)*l.In]
				copy(zi, b[:l.Out])
				for k, xv := range xi {
					if xv == 0 {
						continue
					}
					row := w[k*l.Out : (k+1)*l.Out]
					for j, wv := range row {
						zi[j] += xv * wv
					}
				}
				di := dy[i*l.Out : (i+1)*l.Out]
				mi := masked[i*l.Out : (i+1)*l.Out]
				for j := range zi {
					if zi[j] > 0 {
						mi[j] = di[j]
					}
				}
			}
		})
	}
	// Bias gradient: chunk over output columns; each column sums the
	// batch in order.
	ParallelFor(l.Out, grainFor(batch), func(lo, hi int) {
		for i := 0; i < batch; i++ {
			di := masked[i*l.Out : (i+1)*l.Out]
			for j := lo; j < hi; j++ {
				gb[j] += di[j]
			}
		}
	})
	// Weight gradient: chunk over weight rows k (the input dimension);
	// each gw row accumulates the batch in order.
	ParallelFor(l.In, grainFor(2*batch*l.Out), func(lo, hi int) {
		for i := 0; i < batch; i++ {
			xi := stash[i*l.In : (i+1)*l.In]
			di := masked[i*l.Out : (i+1)*l.Out]
			for k := lo; k < hi; k++ {
				xv := xi[k]
				if xv == 0 {
					continue
				}
				gRow := gw[k*l.Out : (k+1)*l.Out]
				for j, dv := range di {
					gRow[j] += xv * dv
				}
			}
		}
	})
	// Input gradient: rows are disjoint over the batch.
	if dx != nil {
		ParallelFor(batch, grainFor(2*l.In*l.Out), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				di := masked[i*l.Out : (i+1)*l.Out]
				dxi := dx[i*l.In : (i+1)*l.In]
				for k := range dxi {
					row := w[k*l.Out : (k+1)*l.Out]
					var s float32
					for j, dv := range di {
						s += row[j] * dv
					}
					dxi[k] = s
				}
			}
		})
	}
}

func (l Dense) check(op string, params, x, y []float32, batch int) {
	if len(params) < l.ParamCount() {
		panic(fmt.Sprintf("nn: %s params %d < %d", op, len(params), l.ParamCount()))
	}
	if len(x) < batch*l.In || len(y) < batch*l.Out {
		panic(fmt.Sprintf("nn: %s buffer sizes x=%d y=%d batch=%d in=%d out=%d",
			op, len(x), len(y), batch, l.In, l.Out))
	}
}

// SoftmaxXent computes mean cross-entropy loss over the batch and the
// gradient w.r.t. logits (written into dlogits, same shape).
func SoftmaxXent(logits []float32, labels []int, dlogits []float32, batch, classes int) float32 {
	if len(logits) < batch*classes || len(dlogits) < batch*classes || len(labels) < batch {
		panic("nn: SoftmaxXent buffer sizes")
	}
	var loss float64
	for i := 0; i < batch; i++ {
		li := logits[i*classes : (i+1)*classes]
		di := dlogits[i*classes : (i+1)*classes]
		maxv := li[0]
		for _, v := range li {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range li {
			e := math.Exp(float64(v - maxv))
			di[j] = float32(e)
			sum += e
		}
		y := labels[i]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		p := float64(di[y]) / sum
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		inv := float32(1.0 / sum / float64(batch))
		for j := range di {
			di[j] *= inv
		}
		di[y] -= 1.0 / float32(batch)
	}
	return float32(loss / float64(batch))
}

// SGD applies w -= lr·g and zeroes the gradient buffer.
func SGD(w, g []float32, lr float32) {
	for i := range w {
		w[i] -= lr * g[i]
		g[i] = 0
	}
}

// Adam applies one Adam step with bias correction; m and v are the
// first and second moment buffers (the optimizer state K of the
// paper's swap model). step is 1-based. The gradient buffer is
// zeroed, matching the "Reset dW′" of Fig. 5(a).
func Adam(w, g, m, v []float32, lr, beta1, beta2, eps float32, step int) {
	if len(m) < len(w) || len(v) < len(w) {
		panic("nn: Adam state buffers too small")
	}
	b1c := 1 - float32(math.Pow(float64(beta1), float64(step)))
	b2c := 1 - float32(math.Pow(float64(beta2), float64(step)))
	for i := range w {
		gi := g[i]
		m[i] = beta1*m[i] + (1-beta1)*gi
		v[i] = beta2*v[i] + (1-beta2)*gi*gi
		mh := m[i] / b1c
		vh := v[i] / b2c
		w[i] -= lr * mh / (float32(math.Sqrt(float64(vh))) + eps)
		g[i] = 0
	}
}

// XavierInit fills params with deterministic Xavier-uniform weights
// (bias zero) using an xorshift PRNG seeded per layer — reproducible
// without touching math/rand's global state.
func XavierInit(l Dense, params []float32, seed uint64) {
	limit := float32(math.Sqrt(6.0 / float64(l.In+l.Out)))
	rng := seed*2862933555777941757 + 3037000493
	for i := 0; i < l.In*l.Out; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		// Map to [-limit, limit).
		u := float32(rng>>11) / float32(1<<53)
		params[i] = (2*u - 1) * limit
	}
	for i := l.In * l.Out; i < l.ParamCount(); i++ {
		params[i] = 0
	}
}

// Argmax returns the index of the max element of row i in a
// [rows, cols] matrix.
func Argmax(data []float32, i, cols int) int {
	best, bv := 0, data[i*cols]
	for j := 1; j < cols; j++ {
		if v := data[i*cols+j]; v > bv {
			best, bv = j, v
		}
	}
	return best
}
