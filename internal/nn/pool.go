package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file provides the shared compute substrate for all kernels:
//
//   - a persistent worker pool sized to runtime.GOMAXPROCS(0), shared
//     by every kernel invocation (no per-call goroutine spawn), and
//   - sync.Pool-backed float32 scratch buffers so backward passes do
//     not allocate in their inner loops.
//
// Parallel kernels are written to be bit-identical to their serial
// counterparts: work is only split along axes whose per-element
// accumulation order is unchanged by chunking (batch rows for outputs
// written disjointly, weight rows/output channels for gradient
// accumulation). That makes the chunk count — and therefore the
// worker count — invisible in the results, which the exec runtime
// relies on for its serial-vs-parallel determinism guarantee.

// poolTask is one contiguous chunk of a ParallelFor.
type poolTask struct {
	lo, hi int
	fn     func(lo, hi int)
	wg     *sync.WaitGroup
}

// workerPool is a fixed set of persistent worker goroutines draining a
// shared channel. The submitting goroutine always executes the final
// chunk itself, so a pool of size n runs at most n chunks of one call
// concurrently and a size-1 pool never touches the channel.
type workerPool struct {
	work chan poolTask
	size int
}

var activePool atomic.Pointer[workerPool]

func init() { SetWorkers(runtime.GOMAXPROCS(0)) }

// Workers reports the current kernel worker-pool size.
func Workers() int { return activePool.Load().size }

// SetWorkers replaces the shared worker pool with one of size n
// (clamped to ≥ 1). It exists for tests and benchmarks that need to
// force chunked execution on small machines or serial execution on
// large ones; it must not be called while kernels are running.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	p := &workerPool{size: n}
	if n > 1 {
		p.work = make(chan poolTask)
		for i := 0; i < n-1; i++ {
			go func() {
				for t := range p.work {
					t.fn(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	}
	old := activePool.Swap(p)
	if old != nil && old.work != nil {
		close(old.work)
	}
}

// ParallelFor runs fn over [0, n) split into contiguous chunks of at
// least `grain` items fanned across the shared worker pool. The
// calling goroutine executes the last chunk itself and returns only
// when every chunk is done. With a size-1 pool, or when n fits in a
// single grain, fn runs inline with no synchronization at all.
//
// fn must be safe to run concurrently on disjoint ranges.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := activePool.Load()
	if p.size == 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > p.size {
		chunks = p.size
	}
	per := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	lo := 0
	for lo+per < n {
		hi := lo + per
		wg.Add(1)
		p.work <- poolTask{lo: lo, hi: hi, fn: fn, wg: &wg}
		lo = hi
	}
	fn(lo, n)
	wg.Wait()
}

// grainFor sizes ParallelFor chunks so each carries roughly 64k scalar
// operations when one item costs perItem operations: tiny layers stay
// serial, large ones fan out.
func grainFor(perItem int) int {
	if perItem <= 0 {
		return 1 << 16
	}
	g := (1 << 16) / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// scratch recycles float32 buffers across kernel calls. Buffers are
// stored by pointer to avoid re-boxing the slice header on every Put.
var scratch = sync.Pool{New: func() any { s := make([]float32, 0, 1024); return &s }}

// GetScratch returns a length-n buffer with undefined contents,
// drawn from the shared scratch pool. Pair with PutScratch.
func GetScratch(n int) []float32 {
	p := scratch.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	return (*p)[:n]
}

// GetZeroedScratch returns a length-n zeroed buffer from the pool.
func GetZeroedScratch(n int) []float32 {
	s := GetScratch(n)
	clear(s)
	return s
}

// PutScratch recycles a buffer obtained from GetScratch. The caller
// must not retain the slice afterwards.
func PutScratch(s []float32) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	scratch.Put(&s)
}
