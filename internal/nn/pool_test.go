package nn

import (
	"runtime"
	"testing"
)

// fillRand fills s with deterministic values in [-1, 1) from the same
// xorshift family as XavierInit.
func fillRand(s []float32, seed uint64) {
	rng := seed*2862933555777941757 + 3037000493
	for i := range s {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		s[i] = float32(rng>>11)/float32(1<<53)*2 - 1
	}
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	defer SetWorkers(runtime.GOMAXPROCS(0))
	for _, workers := range []int{1, 3, 8} {
		SetWorkers(workers)
		if Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", Workers(), workers)
		}
		counts := make([]int, 1000)
		ParallelFor(1000, 7, func(lo, hi int) {
			// Ranges are disjoint, so plain increments cannot race.
			for i := lo; i < hi; i++ {
				counts[i]++
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestParallelForEdgeCases(t *testing.T) {
	ParallelFor(0, 10, func(lo, hi int) { t.Fatal("fn called for n=0") })
	ran := false
	ParallelFor(5, 0, func(lo, hi int) {
		if lo != 0 || hi != 5 {
			t.Fatalf("bad range [%d,%d)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("fn not called")
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	s := GetScratch(100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	for i := range s {
		s[i] = 1
	}
	PutScratch(s)
	z := GetZeroedScratch(100)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroedScratch[%d] = %v", i, v)
		}
	}
	PutScratch(z)
}

// runKernelOnce runs a forward+backward pass at the given worker count
// on deterministic data and returns every output buffer.
func runKernelOnce(k Kernel, workers, batch int) (y, dx, grad []float32) {
	SetWorkers(workers)
	params := make([]float32, k.ParamCount())
	fillRand(params, 11)
	x := make([]float32, batch*k.InSize())
	fillRand(x, 22)
	dy := make([]float32, batch*k.OutSize())
	fillRand(dy, 33)
	y = make([]float32, batch*k.OutSize())
	stash := make([]float32, batch*k.StashSize())
	k.Forward(params, x, y, stash, batch)
	dx = make([]float32, batch*k.InSize())
	grad = make([]float32, k.ParamCount())
	k.Backward(params, stash, dy, dx, grad, batch)
	return y, dx, grad
}

// TestParallelKernelsBitIdenticalToSerial is the kernel half of the
// executor's determinism guarantee: chunked execution must not change
// a single bit of any output or gradient. The shapes are picked large
// enough that grainFor actually splits the work at 4 workers.
func TestParallelKernelsBitIdenticalToSerial(t *testing.T) {
	defer SetWorkers(runtime.GOMAXPROCS(0))
	kernels := []struct {
		k     Kernel
		batch int
	}{
		{Dense{In: 200, Out: 180, ReLU: true}, 16},
		{Dense{In: 200, Out: 180}, 16},
		{Conv2D{Cin: 3, H: 16, W: 16, Cout: 8, K: 3, ReLU: true}, 8},
		{MaxPool2D{C: 8, H: 14, W: 14, P: 2}, 8},
	}
	for _, tc := range kernels {
		y1, dx1, g1 := runKernelOnce(tc.k, 1, tc.batch)
		y4, dx4, g4 := runKernelOnce(tc.k, 4, tc.batch)
		cmp := func(name string, a, b []float32) {
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: %s[%d] differs: serial %v vs parallel %v",
						tc.k.Name(), name, i, a[i], b[i])
				}
			}
		}
		cmp("y", y1, y4)
		cmp("dx", dx1, dx4)
		cmp("grad", g1, g4)
	}
}
