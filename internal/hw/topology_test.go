package hw

import (
	"testing"
	"testing/quick"

	"harmony/internal/sim"
)

func testBox(t *testing.T, n int) (*sim.Engine, *Topology) {
	t.Helper()
	eng := sim.NewEngine()
	top, err := NewBox(eng, Commodity1080TiBox(n))
	if err != nil {
		t.Fatal(err)
	}
	return eng, top
}

func TestBoxConfigValidate(t *testing.T) {
	good := Commodity1080TiBox(4)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*BoxConfig){
		func(c *BoxConfig) { c.NumGPUs = 0 },
		func(c *BoxConfig) { c.GPUMemBytes = 0 },
		func(c *BoxConfig) { c.GPUFLOPS = 0 },
		func(c *BoxConfig) { c.ComputeEfficiency = 0 },
		func(c *BoxConfig) { c.ComputeEfficiency = 1.5 },
		func(c *BoxConfig) { c.PCIeBandwidth = 0 },
		func(c *BoxConfig) { c.UplinkBandwidth = 0 },
		func(c *BoxConfig) { c.HostLinkBandwidth = 0 },
		func(c *BoxConfig) { c.GPUsPerSwitch = 0 },
		func(c *BoxConfig) { c.LinkLatency = -1 },
	}
	for i, mutate := range cases {
		c := Commodity1080TiBox(4)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestKernelTime(t *testing.T) {
	_, top := testBox(t, 1)
	d := top.GPUs[0]
	got := d.KernelTime(d.FLOPS * d.Efficiency) // exactly one second of work
	if got != 1 {
		t.Fatalf("KernelTime = %v, want 1s", got)
	}
	if d.KernelTime(0) != 0 {
		t.Fatal("zero FLOPs should take zero time")
	}
}

func TestTransferTimeUncontended(t *testing.T) {
	_, top := testBox(t, 4)
	bytes := int64(12.0e9) // exactly one second at 12 GB/s
	d, err := top.TransferTime(0, Host, bytes)
	if err != nil {
		t.Fatal(err)
	}
	wantLat := top.Cfg.LinkLatency * 3 // gpu-up, sw-up, host-up
	if diff := d - (1 + wantLat); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("TransferTime = %v, want ~%v", d, 1+wantLat)
	}
}

func TestTransferToSelfRejected(t *testing.T) {
	_, top := testBox(t, 2)
	if _, err := top.TransferTime(1, 1, 100); err == nil {
		t.Fatal("self transfer accepted")
	}
	if err := top.Transfer(Host, Host, 100, func(sim.Time) {}); err == nil {
		t.Fatal("host->host transfer accepted")
	}
}

func TestNegativeTransferRejected(t *testing.T) {
	_, top := testBox(t, 2)
	if err := top.Transfer(0, Host, -5, func(sim.Time) {}); err == nil {
		t.Fatal("negative transfer accepted")
	}
}

// Four GPUs swapping out simultaneously must serialize on the shared
// host link: total time ≈ 4× a single transfer. This is the Fig. 2(b)
// bottleneck in miniature.
func TestHostLinkOversubscription(t *testing.T) {
	eng, top := testBox(t, 4)
	bytes := int64(1.2e9) // 0.1 s each at 12 GB/s
	doneAt := make([]sim.Time, 4)
	for g := 0; g < 4; g++ {
		g := g
		if err := top.Transfer(DeviceID(g), Host, bytes, func(at sim.Time) { doneAt[g] = at }); err != nil {
			t.Fatal(err)
		}
	}
	end, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end < 0.39 || end > 0.45 {
		t.Fatalf("4 concurrent swap-outs finished at %v, want ~0.4s (serialized on host link)", end)
	}
}

// P2P between GPUs under the same switch must not touch the host link.
func TestP2PSameSwitchAvoidsHostLink(t *testing.T) {
	eng, top := testBox(t, 4)
	if !top.CanP2P(0, 1) {
		t.Fatal("p2p should be available")
	}
	if err := top.Transfer(0, 1, 1.2e9, func(sim.Time) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if top.hostUp[0].Bytes != 0 || top.hostDown[0].Bytes != 0 {
		t.Fatalf("p2p transfer used host link: up=%d down=%d", top.hostUp[0].Bytes, top.hostDown[0].Bytes)
	}
	if top.gpuUp[0].Bytes == 0 || top.gpuDown[1].Bytes == 0 {
		t.Fatal("p2p transfer did not use GPU links")
	}
}

// Cross-switch p2p uses switch uplinks but still avoids a host memory
// copy (host link carries no bytes).
func TestP2PCrossSwitch(t *testing.T) {
	eng, top := testBox(t, 4)
	// GPUs 0,1 on switch 0; GPUs 2,3 on switch 1.
	if err := top.Transfer(0, 2, 1.2e9, func(sim.Time) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if top.swUp[0].Bytes == 0 || top.swDown[1].Bytes == 0 {
		t.Fatal("cross-switch p2p should traverse switch uplinks")
	}
	if top.hostUp[0].Bytes != 0 {
		t.Fatal("cross-switch p2p should not copy through host memory")
	}
}

func TestP2PDisabled(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Commodity1080TiBox(2)
	cfg.P2P = false
	top := MustBox(eng, cfg)
	if top.CanP2P(0, 1) {
		t.Fatal("CanP2P should be false")
	}
	if err := top.Transfer(0, 1, 100, func(sim.Time) {}); err == nil {
		t.Fatal("direct transfer should fail with p2p disabled")
	}
}

func TestNVLinkRoute(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Commodity1080TiBox(4)
	cfg.NVLinkBandwidth = 50e9
	top := MustBox(eng, cfg)
	d, err := top.TransferTime(0, 3, 50e9)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Time(1) + cfg.LinkLatency
	if diff := d - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("NVLink transfer = %v, want %v", d, want)
	}
}

// Property: transfer completion time is never earlier than the
// uncontended time, and byte accounting matches what was sent.
func TestTransferNeverBeatsUncontended(t *testing.T) {
	f := func(sizesRaw []uint32) bool {
		eng := sim.NewEngine()
		top := MustBox(eng, Commodity1080TiBox(4))
		okAll := true
		for i, s := range sizesRaw {
			if i >= 16 {
				break
			}
			bytes := int64(s)%(1<<30) + 1
			g := DeviceID(i % 4)
			uncontended, err := top.TransferTime(g, Host, bytes)
			if err != nil {
				return false
			}
			start := eng.Now()
			if err := top.Transfer(g, Host, bytes, func(at sim.Time) {
				if at-start < uncontended-1e-12 {
					okAll = false
				}
			}); err != nil {
				return false
			}
		}
		_, err := eng.Run()
		return err == nil && okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceIDString(t *testing.T) {
	if Host.String() != "host" {
		t.Fatalf("Host.String() = %q", Host.String())
	}
	if DeviceID(2).String() != "gpu2" {
		t.Fatalf("DeviceID(2).String() = %q", DeviceID(2).String())
	}
}

func TestDenseBoxOversubscription(t *testing.T) {
	cfg := DenseBox(8)
	if cfg.GPUsPerSwitch != 4 {
		t.Fatalf("DenseBox GPUsPerSwitch = %d, want 4", cfg.GPUsPerSwitch)
	}
	eng := sim.NewEngine()
	top := MustBox(eng, cfg)
	if got := top.NumGPUs(); got != 8 {
		t.Fatalf("NumGPUs = %d", got)
	}
	if top.switchOf(3) != 0 || top.switchOf(4) != 1 {
		t.Fatal("switch assignment wrong for dense box")
	}
}

// ------------------------------------------------------------ clusters

func TestClusterTopologyShape(t *testing.T) {
	eng := sim.NewEngine()
	cfg := CommodityCluster(2, 2)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.TotalGPUs() != 4 {
		t.Fatalf("TotalGPUs = %d", cfg.TotalGPUs())
	}
	top := MustBox(eng, cfg)
	if top.NumGPUs() != 4 || top.Servers() != 2 {
		t.Fatalf("gpus=%d servers=%d", top.NumGPUs(), top.Servers())
	}
	if top.serverOf(1) != 0 || top.serverOf(2) != 1 {
		t.Fatal("server assignment wrong")
	}
	// Each server has its own host links.
	if len(top.hostUp) != 2 || len(top.nicUp) != 2 {
		t.Fatalf("hostUp=%d nicUp=%d", len(top.hostUp), len(top.nicUp))
	}
}

func TestClusterSwapsStayLocal(t *testing.T) {
	eng := sim.NewEngine()
	top := MustBox(eng, CommodityCluster(2, 2))
	// GPU 3 (server 1) swapping out must use server 1's host link and
	// never the NICs.
	if err := top.Transfer(3, Host, 1.2e9, func(sim.Time) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if top.hostUp[1].Bytes == 0 {
		t.Fatal("swap should use local host link")
	}
	if top.hostUp[0].Bytes != 0 || top.nicUp[0].Bytes != 0 || top.nicUp[1].Bytes != 0 {
		t.Fatal("swap leaked onto remote or network links")
	}
}

func TestClusterCrossServerP2P(t *testing.T) {
	eng := sim.NewEngine()
	top := MustBox(eng, CommodityCluster(2, 2))
	// GPU 0 (server 0) to GPU 2 (server 1): through both NICs, no
	// host memory copy.
	if err := top.Transfer(0, 2, 1.2e9, func(sim.Time) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if top.nicUp[0].Bytes == 0 || top.nicDown[1].Bytes == 0 {
		t.Fatal("cross-server p2p should traverse the NICs")
	}
	if top.hostUp[0].Bytes != 0 || top.hostUp[1].Bytes != 0 {
		t.Fatal("cross-server p2p must not copy through host memory")
	}
}

func TestClusterHostLinksIndependent(t *testing.T) {
	// Two servers swapping concurrently do NOT contend: each has its
	// own host link. Contrast with TestHostLinkOversubscription.
	eng := sim.NewEngine()
	top := MustBox(eng, CommodityCluster(2, 1))
	bytes := int64(1.2e9) // 0.1 s at 12 GB/s
	for g := 0; g < 2; g++ {
		if err := top.Transfer(DeviceID(g), Host, bytes, func(sim.Time) {}); err != nil {
			t.Fatal(err)
		}
	}
	end, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end > 0.15 {
		t.Fatalf("independent host links should not serialize: end=%v", end)
	}
}

func TestClusterValidation(t *testing.T) {
	cfg := CommodityCluster(2, 2)
	cfg.NICBandwidth = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("cluster without NIC bandwidth accepted")
	}
	cfg = CommodityCluster(2, 2)
	cfg.NICLatency = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative NIC latency accepted")
	}
}

func TestClusterNVLinkStaysInServer(t *testing.T) {
	eng := sim.NewEngine()
	cfg := CommodityCluster(2, 2)
	cfg.NVLinkBandwidth = 50e9
	top := MustBox(eng, cfg)
	// Same-server pair has an NVLink route.
	d1, err := top.TransferTime(0, 1, 50e9)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-server pair must fall back to the NIC path (slower).
	d2, err := top.TransferTime(0, 2, 50e9)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Fatalf("cross-server transfer (%v) should be slower than NVLink (%v)", d2, d1)
	}
}

func TestKernelTimeZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d := &Device{Name: "dead"}
	d.KernelTime(1)
}

func TestRouteBottleneckAndLatency(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Commodity1080TiBox(2)
	cfg.HostLinkBandwidth = 6e9 // slower than PCIe: the bottleneck
	top := MustBox(eng, cfg)
	d, err := top.TransferTime(0, Host, 6e9)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Time(1) + 3*cfg.LinkLatency
	if diff := d - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("bottleneck not honored: %v vs %v", d, want)
	}
}

func TestClusterTransferTimeCrossServer(t *testing.T) {
	eng := sim.NewEngine()
	cfg := CommodityCluster(2, 1)
	cfg.NICBandwidth = 3e9 // NIC is the bottleneck
	top := MustBox(eng, cfg)
	d, err := top.TransferTime(0, 1, 3e9)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1 {
		t.Fatalf("cross-server transfer %v should be NIC-bound (≥1s)", d)
	}
}
