// Package hw models the hardware of a commodity multi-GPU server: GPU
// devices with bounded memory and a compute stream, dual DMA copy
// engines per GPU, PCIe links, PCIe switches with an oversubscribed
// uplink to host memory, and optional NVLink-style peer-to-peer links.
//
// This is the substitute for the paper's 4× NVIDIA 1080Ti testbed
// (Fig. 2(b)): the phenomena the paper reports — a bottlenecked shared
// host link under data-parallel swapping, and fast device-to-device
// paths that Harmony exploits — are bandwidth and capacity phenomena,
// which this model reproduces with a store-and-forward contention
// model over FIFO link resources.
package hw

import (
	"fmt"

	"harmony/internal/sim"
)

// DeviceID identifies a device in a topology. GPUs are numbered from
// zero; Host denotes CPU/host memory.
type DeviceID int

// Host is the pseudo-device for CPU host memory.
const Host DeviceID = -1

func (d DeviceID) String() string {
	if d == Host {
		return "host"
	}
	return fmt.Sprintf("gpu%d", int(d))
}

// Device is a compute device with bounded memory. The host is also a
// Device (with effectively unbounded memory and no compute modeled).
type Device struct {
	ID   DeviceID
	Name string

	// MemBytes is the device memory capacity. 0 means unbounded
	// (used for host memory).
	MemBytes int64

	// FLOPS is peak float32 throughput; Efficiency scales it to an
	// achievable rate for DNN kernels.
	FLOPS      float64
	Efficiency float64

	// Compute serializes kernels (one stream). H2D and D2H are the
	// two DMA copy engines, matching real GPUs, so an inbound and an
	// outbound transfer can overlap but two same-direction transfers
	// on one GPU serialize.
	Compute *sim.FIFO
	H2D     *sim.FIFO
	D2H     *sim.FIFO
}

// KernelTime returns the simulated duration of a kernel performing the
// given floating-point operations on this device.
func (d *Device) KernelTime(flops float64) sim.Time {
	if flops <= 0 {
		return 0
	}
	rate := d.FLOPS * d.Efficiency
	if rate <= 0 {
		panic(fmt.Sprintf("hw: device %s has no compute rate", d.Name))
	}
	return sim.Time(flops / rate)
}

// Link is one direction of a physical interconnect: a FIFO resource
// with a bandwidth. PCIe and NVLink are full duplex, so each physical
// link is represented by two Links.
type Link struct {
	Name      string
	Bandwidth float64 // bytes per second
	Latency   sim.Time
	Res       *sim.FIFO

	// Bytes is the total payload carried, for utilization reports.
	Bytes int64
}

// Route is the ordered set of directional links a transfer traverses
// plus the copy engines it occupies at the endpoints.
type Route struct {
	Links   []*Link
	Engines []*sim.FIFO
}

// Bottleneck returns the minimum bandwidth along the route.
func (r Route) Bottleneck() float64 {
	bw := 0.0
	for i, l := range r.Links {
		if i == 0 || l.Bandwidth < bw {
			bw = l.Bandwidth
		}
	}
	return bw
}

// latency returns the summed link latencies.
func (r Route) latency() sim.Time {
	var t sim.Time
	for _, l := range r.Links {
		t += l.Latency
	}
	return t
}

// BoxConfig describes a single-server deployment.
type BoxConfig struct {
	Name string

	NumGPUs           int
	GPUMemBytes       int64
	GPUFLOPS          float64
	ComputeEfficiency float64

	// PCIeBandwidth is the per-GPU PCIe link bandwidth (each
	// direction). UplinkBandwidth is each PCIe switch's uplink to the
	// host root complex. HostLinkBandwidth is the root-complex path
	// to host memory shared by *all* switches: with N GPUs and one
	// host link of the same x16 bandwidth this is the paper's N:1
	// oversubscription and the Fig. 2(b) bottleneck.
	PCIeBandwidth     float64
	UplinkBandwidth   float64
	HostLinkBandwidth float64
	GPUsPerSwitch     int
	LinkLatency       sim.Time

	// P2P enables direct device-to-device routes through the PCIe
	// switch (same-switch pairs avoid the host uplink entirely).
	// When false, every transfer between GPUs is bounced through
	// host memory (two transfers), matching frameworks that lack
	// peer access.
	P2P bool

	// NVLinkBandwidth, when non-zero, adds a dedicated all-to-all
	// GPU-GPU link of this bandwidth (a DGX-style upgrade used by
	// ablations; the commodity box of the paper has none).
	NVLinkBandwidth float64

	// Servers > 1 builds a multi-machine cluster (paper §4,
	// "Multi-machine training"): NumGPUs is then the per-server GPU
	// count, each server has its own host memory and PCIe tree, and
	// servers are joined by NICs of NICBandwidth (bytes/s, each
	// direction) through a non-blocking cluster switch. Cross-server
	// transfers traverse both NICs; swaps always target the GPU's
	// local host.
	Servers      int
	NICBandwidth float64
	NICLatency   sim.Time
}

// Validate reports configuration errors.
func (c BoxConfig) Validate() error {
	switch {
	case c.NumGPUs <= 0:
		return fmt.Errorf("hw: NumGPUs must be positive, got %d", c.NumGPUs)
	case c.GPUMemBytes <= 0:
		return fmt.Errorf("hw: GPUMemBytes must be positive, got %d", c.GPUMemBytes)
	case c.GPUFLOPS <= 0:
		return fmt.Errorf("hw: GPUFLOPS must be positive")
	case c.ComputeEfficiency <= 0 || c.ComputeEfficiency > 1:
		return fmt.Errorf("hw: ComputeEfficiency must be in (0,1], got %g", c.ComputeEfficiency)
	case c.PCIeBandwidth <= 0:
		return fmt.Errorf("hw: PCIeBandwidth must be positive")
	case c.UplinkBandwidth <= 0:
		return fmt.Errorf("hw: UplinkBandwidth must be positive")
	case c.HostLinkBandwidth <= 0:
		return fmt.Errorf("hw: HostLinkBandwidth must be positive")
	case c.GPUsPerSwitch <= 0:
		return fmt.Errorf("hw: GPUsPerSwitch must be positive, got %d", c.GPUsPerSwitch)
	case c.LinkLatency < 0:
		return fmt.Errorf("hw: LinkLatency must be non-negative")
	case c.Servers < 0:
		return fmt.Errorf("hw: Servers must be non-negative")
	case c.Servers > 1 && c.NICBandwidth <= 0:
		return fmt.Errorf("hw: a cluster needs NICBandwidth")
	case c.NICLatency < 0:
		return fmt.Errorf("hw: NICLatency must be non-negative")
	}
	return nil
}

// TotalGPUs is the cluster-wide GPU count.
func (c BoxConfig) TotalGPUs() int {
	s := c.Servers
	if s <= 1 {
		return c.NumGPUs
	}
	return s * c.NumGPUs
}

// CommodityCluster joins `servers` Commodity1080TiBox machines (each
// with gpusPerServer GPUs) over 100 Gb/s InfiniBand-class NICs.
func CommodityCluster(servers, gpusPerServer int) BoxConfig {
	c := Commodity1080TiBox(gpusPerServer)
	c.Name = "commodity-cluster"
	c.Servers = servers
	c.NICBandwidth = 12.0e9
	c.NICLatency = 2e-6
	return c
}

// Commodity1080TiBox is the paper's testbed: four GTX 1080Ti GPUs
// (11 GB, ~11.3 TFLOPS fp32) in pairs under two PCIe gen3 switches
// whose shared uplinks oversubscribe the path to host memory.
func Commodity1080TiBox(numGPUs int) BoxConfig {
	return BoxConfig{
		Name:              "commodity-1080ti",
		NumGPUs:           numGPUs,
		GPUMemBytes:       11 << 30,
		GPUFLOPS:          11.3e12,
		ComputeEfficiency: 0.35,
		PCIeBandwidth:     12.0e9,
		UplinkBandwidth:   12.0e9,
		HostLinkBandwidth: 12.0e9,
		GPUsPerSwitch:     2,
		LinkLatency:       10e-6,
		P2P:               true,
	}
}

// DenseBox is an 8-GPU 4U server (ASUS ESC8000 class) with 8:1 style
// oversubscription: four GPUs per switch sharing one uplink.
func DenseBox(numGPUs int) BoxConfig {
	c := Commodity1080TiBox(numGPUs)
	c.Name = "dense-8gpu"
	c.GPUsPerSwitch = 4
	return c
}

// Topology is a built hardware instance bound to a simulation engine.
type Topology struct {
	Eng  *sim.Engine
	Cfg  BoxConfig
	Host *Device
	GPUs []*Device

	// Per-GPU PCIe links, one per direction.
	gpuUp   []*Link // GPU -> switch
	gpuDown []*Link // switch -> GPU
	// Per-switch uplinks to the root complex, one per direction.
	swUp   []*Link // switch -> root complex
	swDown []*Link // root complex -> switch
	// Root-complex path to host memory per server, shared by that
	// server's switches: the oversubscribed bottleneck of Fig. 2(b).
	hostUp   []*Link // root complex -> host memory
	hostDown []*Link // host memory -> root complex
	// Per-server NIC links for clusters (nil for single machines).
	nicUp   []*Link
	nicDown []*Link
	// Optional NVLink mesh (symmetric per ordered pair).
	nvlink map[[2]DeviceID]*Link

	Links []*Link // all links, for reports
}

// NewBox builds the topology on the given engine. With Servers > 1
// it builds the whole cluster: per-server PCIe trees and host links,
// joined by NICs.
func NewBox(eng *sim.Engine, cfg BoxConfig) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{Eng: eng, Cfg: cfg}
	// Host compute and host copy engines are not modeled: host DRAM
	// bandwidth far exceeds PCIe, so the shared host *link* is the
	// only host-side constraint.
	t.Host = &Device{ID: Host, Name: "host"}
	servers := cfg.Servers
	if servers < 1 {
		servers = 1
	}
	nswPerServer := (cfg.NumGPUs + cfg.GPUsPerSwitch - 1) / cfg.GPUsPerSwitch
	mkLink := func(name string, bw float64, lat sim.Time) *Link {
		l := &Link{Name: name, Bandwidth: bw, Latency: lat, Res: sim.NewFIFO(eng, name)}
		t.Links = append(t.Links, l)
		return l
	}
	for sv := 0; sv < servers; sv++ {
		prefix := ""
		if servers > 1 {
			prefix = fmt.Sprintf("srv%d-", sv)
		}
		t.hostUp = append(t.hostUp, mkLink(prefix+"host-up", cfg.HostLinkBandwidth, cfg.LinkLatency))
		t.hostDown = append(t.hostDown, mkLink(prefix+"host-down", cfg.HostLinkBandwidth, cfg.LinkLatency))
		for s := 0; s < nswPerServer; s++ {
			t.swUp = append(t.swUp, mkLink(fmt.Sprintf("%ssw%d-up", prefix, s), cfg.UplinkBandwidth, cfg.LinkLatency))
			t.swDown = append(t.swDown, mkLink(fmt.Sprintf("%ssw%d-down", prefix, s), cfg.UplinkBandwidth, cfg.LinkLatency))
		}
		if servers > 1 {
			t.nicUp = append(t.nicUp, mkLink(prefix+"nic-up", cfg.NICBandwidth, cfg.NICLatency))
			t.nicDown = append(t.nicDown, mkLink(prefix+"nic-down", cfg.NICBandwidth, cfg.NICLatency))
		}
		for i := 0; i < cfg.NumGPUs; i++ {
			id := sv*cfg.NumGPUs + i
			d := &Device{
				ID:         DeviceID(id),
				Name:       fmt.Sprintf("gpu%d", id),
				MemBytes:   cfg.GPUMemBytes,
				FLOPS:      cfg.GPUFLOPS,
				Efficiency: cfg.ComputeEfficiency,
				Compute:    sim.NewFIFO(eng, fmt.Sprintf("gpu%d-compute", id)),
				H2D:        sim.NewFIFO(eng, fmt.Sprintf("gpu%d-h2d", id)),
				D2H:        sim.NewFIFO(eng, fmt.Sprintf("gpu%d-d2h", id)),
			}
			t.GPUs = append(t.GPUs, d)
			t.gpuUp = append(t.gpuUp, mkLink(fmt.Sprintf("gpu%d-up", id), cfg.PCIeBandwidth, cfg.LinkLatency))
			t.gpuDown = append(t.gpuDown, mkLink(fmt.Sprintf("gpu%d-down", id), cfg.PCIeBandwidth, cfg.LinkLatency))
		}
	}
	if cfg.NVLinkBandwidth > 0 {
		// NVLink meshes are per server.
		t.nvlink = make(map[[2]DeviceID]*Link)
		for i := range t.GPUs {
			for j := range t.GPUs {
				if i == j || t.serverOf(DeviceID(i)) != t.serverOf(DeviceID(j)) {
					continue
				}
				key := [2]DeviceID{DeviceID(i), DeviceID(j)}
				t.nvlink[key] = mkLink(fmt.Sprintf("nvl%d-%d", i, j), cfg.NVLinkBandwidth, cfg.LinkLatency)
			}
		}
	}
	return t, nil
}

// serverOf returns the server index hosting a GPU.
func (t *Topology) serverOf(g DeviceID) int { return int(g) / t.Cfg.NumGPUs }

// Servers returns the machine count of the topology.
func (t *Topology) Servers() int {
	if t.Cfg.Servers < 1 {
		return 1
	}
	return t.Cfg.Servers
}

// MustBox is NewBox that panics on config errors; for tests and
// examples with static configs.
func MustBox(eng *sim.Engine, cfg BoxConfig) *Topology {
	t, err := NewBox(eng, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Device returns the device with the given ID (Host allowed).
func (t *Topology) Device(id DeviceID) *Device {
	if id == Host {
		return t.Host
	}
	return t.GPUs[int(id)]
}

// NumGPUs returns the GPU count.
func (t *Topology) NumGPUs() int { return len(t.GPUs) }

// switchOf returns the global switch index of a GPU (switch arrays
// are laid out per server).
func (t *Topology) switchOf(g DeviceID) int {
	perServer := (t.Cfg.NumGPUs + t.Cfg.GPUsPerSwitch - 1) / t.Cfg.GPUsPerSwitch
	local := int(g) % t.Cfg.NumGPUs
	return t.serverOf(g)*perServer + local/t.Cfg.GPUsPerSwitch
}

// route computes the links and copy engines for a single DMA between
// src and dst. It supports host<->GPU and (when enabled) direct
// GPU<->GPU. Callers needing host-bounced GPU->GPU issue two routes.
func (t *Topology) route(src, dst DeviceID) (Route, error) {
	if src == dst {
		return Route{}, fmt.Errorf("hw: transfer %s->%s to itself", src, dst)
	}
	var r Route
	switch {
	case src == Host:
		// Swaps target the GPU's local host memory.
		g := dst
		r.Links = []*Link{t.hostDown[t.serverOf(g)], t.swDown[t.switchOf(g)], t.gpuDown[g]}
		r.Engines = []*sim.FIFO{t.Device(g).H2D}
	case dst == Host:
		g := src
		r.Links = []*Link{t.gpuUp[g], t.swUp[t.switchOf(g)], t.hostUp[t.serverOf(g)]}
		r.Engines = []*sim.FIFO{t.Device(g).D2H}
	default:
		if l, ok := t.nvlink[[2]DeviceID{src, dst}]; ok {
			r.Links = []*Link{l}
			r.Engines = []*sim.FIFO{t.Device(src).D2H, t.Device(dst).H2D}
			return r, nil
		}
		if !t.Cfg.P2P {
			return Route{}, fmt.Errorf("hw: p2p disabled between %s and %s", src, dst)
		}
		ss, ds := t.switchOf(src), t.switchOf(dst)
		sSrv, dSrv := t.serverOf(src), t.serverOf(dst)
		r.Links = []*Link{t.gpuUp[src]}
		switch {
		case sSrv != dSrv:
			// Cross-server: out through the source NIC, across the
			// (non-blocking) cluster switch, in through the
			// destination NIC (GPUDirect-RDMA-style, no host copy).
			r.Links = append(r.Links, t.swUp[ss], t.nicUp[sSrv], t.nicDown[dSrv], t.swDown[ds])
		case ss != ds:
			// Cross-switch p2p traverses the root complex via both
			// switch uplinks (still avoiding a host memory copy).
			r.Links = append(r.Links, t.swUp[ss], t.swDown[ds])
		}
		r.Links = append(r.Links, t.gpuDown[dst])
		r.Engines = []*sim.FIFO{t.Device(src).D2H, t.Device(dst).H2D}
	}
	return r, nil
}

// CanP2P reports whether a direct device-to-device route exists
// between two GPUs.
func (t *Topology) CanP2P(src, dst DeviceID) bool {
	if src == Host || dst == Host || src == dst {
		return false
	}
	if _, ok := t.nvlink[[2]DeviceID{src, dst}]; ok {
		return true
	}
	return t.Cfg.P2P
}

// TransferTime returns the uncontended duration of moving bytes along
// the src->dst route (bottleneck bandwidth plus latency).
func (t *Topology) TransferTime(src, dst DeviceID, bytes int64) (sim.Time, error) {
	r, err := t.route(src, dst)
	if err != nil {
		return 0, err
	}
	return sim.Time(float64(bytes)/r.Bottleneck()) + r.latency(), nil
}

// Transfer schedules a DMA of bytes from src to dst, invoking done
// when the payload has fully arrived. Contention with other transfers
// sharing any link or copy engine on the route is modeled by FIFO
// queueing; the transfer occupies every resource on the route for
// bytes / bottleneck-bandwidth.
func (t *Topology) Transfer(src, dst DeviceID, bytes int64, done func(at sim.Time)) error {
	if bytes < 0 {
		return fmt.Errorf("hw: negative transfer size %d", bytes)
	}
	r, err := t.route(src, dst)
	if err != nil {
		return err
	}
	service := sim.Time(float64(bytes)/r.Bottleneck()) + r.latency()
	for _, l := range r.Links {
		l.Bytes += bytes
	}
	res := make([]*sim.FIFO, 0, len(r.Links)+len(r.Engines))
	res = append(res, r.Engines...)
	for _, l := range r.Links {
		res = append(res, l.Res)
	}
	sim.Chain(t.Eng, res, service, done)
	return nil
}
