package tuner

import (
	"testing"

	"harmony/internal/hw"
	"harmony/internal/models"
	"harmony/internal/sched"
)

func tunerConfig(mode sched.Mode, batch int) Config {
	model := models.Uniform("tune", 8, 100_000, 256<<10, 5e9)
	box := hw.Commodity1080TiBox(2)
	// Half the persistent footprint: the virtualization regime.
	box.GPUMemBytes = model.PersistentBytes() / 2
	return Config{Model: model, Mode: mode, Box: box, BatchPerReplica: batch}
}

func TestSpaceEnumeration(t *testing.T) {
	cands := Space(sched.HarmonyPP, 4)
	// Batch 4: splits 1×4, 2×2, 4×1; groups per split; prefetch ×2.
	if len(cands) == 0 {
		t.Fatal("empty space")
	}
	seen := map[Candidate]bool{}
	for _, c := range cands {
		if c.MicrobatchSize*c.Microbatches != 4 {
			t.Fatalf("candidate %s does not preserve the batch", c)
		}
		if seen[c] {
			t.Fatalf("duplicate candidate %s", c)
		}
		seen[c] = true
		if c.Defer {
			t.Fatal("defer is only meaningful for harmony-dp")
		}
	}
	// DP space includes defer variants.
	dp := Space(sched.HarmonyDP, 4)
	hasDefer := false
	for _, c := range dp {
		if c.Defer {
			hasDefer = true
		}
	}
	if !hasDefer {
		t.Fatal("dp space should explore defer")
	}
}

func TestValidate(t *testing.T) {
	good := tunerConfig(sched.HarmonyPP, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Model = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil model accepted")
	}
	bad = good
	bad.BatchPerReplica = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestRunFindsFeasibleBest(t *testing.T) {
	res, err := Run(tunerConfig(sched.HarmonyPP, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Feasible || res.Best.Throughput <= 0 {
		t.Fatalf("best = %+v", res.Best)
	}
	// Sorted best-first.
	for i := 1; i < len(res.Measurements); i++ {
		a, b := res.Measurements[i-1], res.Measurements[i]
		if a.Feasible == b.Feasible && a.Throughput < b.Throughput {
			t.Fatal("measurements not sorted by throughput")
		}
	}
	// The best must be at least as good as the naive fully-grouped
	// single-sample candidate.
	for _, m := range res.Measurements {
		if m.Candidate == (Candidate{MicrobatchSize: 1, Microbatches: 4, GroupSize: 0, Prefetch: true}) {
			if res.Best.Throughput < m.Throughput {
				t.Fatal("best worse than a measured candidate")
			}
		}
	}
}

func TestTangoTradeoffVisible(t *testing.T) {
	// Across the measured grid, swap volume and pipeline overlap
	// trade off: on a weight-dominated workload the fully-grouped
	// candidate must have the minimal swap traffic among feasible
	// pipeline candidates with the same microbatch split. (On
	// stash-dominated workloads grouping instead accumulates stash;
	// that is the other side of the tango.)
	model := models.Uniform("heavyw", 8, 1_000_000, 16<<10, 5e9)
	box := hw.Commodity1080TiBox(2)
	// Tight enough that a stage's weights do not all fit: weight
	// swaps dominate and the group-size knob matters.
	box.GPUMemBytes = 20 << 20
	res, err := Run(Config{Model: model, Mode: sched.HarmonyPP, Box: box, BatchPerReplica: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var full, waved *Measurement
	for i := range res.Measurements {
		m := &res.Measurements[i]
		c := m.Candidate
		if !m.Feasible || c.MicrobatchSize != 1 || !c.Prefetch {
			continue
		}
		switch c.GroupSize {
		case 0:
			full = m
		case 1:
			waved = m
		}
	}
	if full == nil || waved == nil {
		t.Fatal("expected both fully-grouped and per-microbatch candidates")
	}
	if full.SwapGB >= waved.SwapGB {
		t.Fatalf("full grouping should minimize swap: %.3f GB vs %.3f GB", full.SwapGB, waved.SwapGB)
	}
	// The other side of the tango: the throughput winner is allowed
	// to spend swap volume on pipeline overlap, so the best candidate
	// must never swap less than the fully-grouped one.
	if res.Best.SwapGB < full.SwapGB {
		t.Fatalf("best (%.3f GB) cannot beat full grouping's swap volume (%.3f GB)",
			res.Best.SwapGB, full.SwapGB)
	}
}

func TestHillClimbAgreesWithExhaustive(t *testing.T) {
	cfg := tunerConfig(sched.HarmonyDP, 4)
	full, err := Run(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := HillClimb(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Explored >= full.Explored {
		t.Fatalf("hill climb explored %d ≥ exhaustive %d", hc.Explored, full.Explored)
	}
	// Greedy should land within 10% of the exhaustive optimum.
	if hc.Best.Throughput < 0.9*full.Best.Throughput {
		t.Fatalf("hill climb best %.2f far below exhaustive %.2f", hc.Best.Throughput, full.Best.Throughput)
	}
}

func TestInfeasibleWorkloadReported(t *testing.T) {
	cfg := tunerConfig(sched.HarmonyDP, 2)
	cfg.Box.GPUMemBytes = 1 << 10 // nothing fits
	if _, err := Run(cfg, 2); err == nil {
		t.Fatal("expected no-feasible-candidate error")
	}
}

func TestSpaceIncludesInterleaveForPipelines(t *testing.T) {
	cands := Space(sched.HarmonyPP, 4)
	hasInterleave := false
	for _, c := range cands {
		if c.Interleave {
			hasInterleave = true
			if c.GroupSize == 0 {
				t.Fatal("interleave only makes sense with a sub-batch group")
			}
		}
	}
	if !hasInterleave {
		t.Fatal("pipeline space should explore wave interleaving")
	}
	for _, c := range Space(sched.HarmonyDP, 4) {
		if c.Interleave {
			t.Fatal("dp space should not interleave")
		}
	}
}

func TestMeasureItersConfigurable(t *testing.T) {
	cfg := tunerConfig(sched.HarmonyDP, 2)
	cfg.MeasureIters = 1
	res, err := Run(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Feasible {
		t.Fatal("single-iteration measurement should still find a winner")
	}
}
