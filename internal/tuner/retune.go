package tuner

import (
	"fmt"
	"strings"

	"harmony/internal/graph"
	"harmony/internal/sched"
	"harmony/internal/schedcheck"
)

// Profile is the bundle of online signals a running trainer measures
// for mid-run retuning — the "online tuning" the paper's §4 leaves
// open. The tuner sits outside the deterministic core, so these
// fractions may come from wall-clock measurement; the decision
// functions consuming them must nevertheless be pure functions of
// their arguments (the adaptinputs analyzer enforces that no
// wall-clock read or map iteration feeds a retune decision directly).
type Profile struct {
	// StallFrac is the fraction of step wall time spent on demand
	// swaps (synchronous swap-ins on the critical path).
	StallFrac float64
	// OverlapFrac is async DMA busy time over step wall time
	// (exec.VMStats.AsyncDMANanos / step nanos).
	OverlapFrac float64
	// HitRate is prefetch hits over prefetches issued.
	HitRate float64
	// SwapGBPerIter is demand swap volume (in+out) per iteration.
	SwapGBPerIter float64
}

// Retuner proposes mid-run plan changes from measured signals,
// admitting a candidate only after it passes the full schedcheck
// preflight against the box. Rejections carry the verifier's Gantt
// counterexample; the caller's running plan is never touched (feed
// the accepted candidate to exec.Trainer.Retune, which preflights
// again against the live device binding before adoption).
type Retuner struct {
	Cfg Config
}

// Propose picks the first preflight-feasible plan change for the
// measured profile. It returns an error when the profile suggests no
// move from cur, or when every suggested move fails static
// verification — in that case the error aggregates each candidate's
// counterexample and the current plan should be kept.
func (rt *Retuner) Propose(cur Candidate, prof Profile) (Candidate, error) {
	if err := rt.Cfg.Validate(); err != nil {
		return Candidate{}, err
	}
	if cur.MicrobatchSize <= 0 || cur.Microbatches <= 0 {
		return Candidate{}, fmt.Errorf("tuner: current candidate %s is malformed", cur)
	}
	moves := retuneMoves(cur, prof, rt.Cfg.Mode)
	if len(moves) == 0 {
		return Candidate{}, fmt.Errorf("tuner: profile suggests no retune from %s (stall %.2f, overlap %.2f, hit %.2f)",
			cur, prof.StallFrac, prof.OverlapFrac, prof.HitRate)
	}
	var rejections []string
	for _, c := range moves {
		if err := rt.Preflight(c); err != nil {
			rejections = append(rejections, fmt.Sprintf("%s rejected:\n%v", c, err))
			continue
		}
		return c, nil
	}
	return Candidate{}, fmt.Errorf("tuner: every retune candidate failed preflight; keeping the current plan:\n%s",
		strings.Join(rejections, "\n"))
}

// retuneMoves ranks candidate plan changes for a measured profile, in
// preference order. Every move preserves the per-replica batch
// (MicrobatchSize × Microbatches), so Step's input contract is
// unchanged. Pure function of its arguments: no clocks, no map
// iteration, no randomness — retune decisions must be replayable from
// the logged profile alone.
func retuneMoves(cur Candidate, prof Profile, mode sched.Mode) []Candidate {
	batch := cur.MicrobatchSize * cur.Microbatches
	var out []Candidate
	add := func(c Candidate) {
		if c.MicrobatchSize <= 0 || c.Microbatches <= 0 ||
			c.MicrobatchSize*c.Microbatches != batch || c == cur {
			return
		}
		for _, e := range out {
			if e == c {
				return
			}
		}
		out = append(out, c)
	}
	// Little DMA/compute overlap with prefetch off: turn it on before
	// touching anything structural.
	if !cur.Prefetch && prof.OverlapFrac < 0.25 {
		c := cur
		c.Prefetch = true
		add(c)
	}
	// Heavy demand stalls: full grouping swaps each layer's weights
	// once per iteration instead of once per wave.
	if prof.StallFrac > 0.25 && cur.GroupSize != 0 {
		c := cur
		c.GroupSize = 0
		c.Interleave = false
		add(c)
	}
	// Poor prefetch coverage: finer microbatches shrink each task's
	// working set, giving the lookahead window more distinct, smaller
	// targets.
	if cur.Prefetch && prof.HitRate < 0.5 && cur.MicrobatchSize%2 == 0 {
		c := cur
		c.MicrobatchSize /= 2
		c.Microbatches *= 2
		add(c)
	}
	// Swap-bound with good coverage: coarser microbatches amortize
	// per-task activation traffic.
	if prof.SwapGBPerIter > 0 && prof.StallFrac > 0.5 && cur.Microbatches%2 == 0 {
		c := cur
		c.MicrobatchSize *= 2
		c.Microbatches /= 2
		add(c)
	}
	// DP only: let the executor run past update heads blocked on
	// their AllReduce instead of stalling the stream.
	if mode == sched.HarmonyDP && !cur.Defer && prof.StallFrac > 0.25 {
		c := cur
		c.Defer = true
		add(c)
	}
	return out
}

// Preflight builds a candidate's graph and schedule and statically
// verifies the plan against the box (schedcheck: liveness, residency,
// swap-volume agreement, DMA claim machine). A non-nil error is the
// verifier's report, Gantt counterexample included.
func (rt *Retuner) Preflight(c Candidate) error {
	gpus := rt.Cfg.Box.NumGPUs
	replicas := gpus
	mbCount := c.Microbatches
	if rt.Cfg.Mode.IsPipeline() {
		replicas = 1
		mbCount = c.Microbatches * gpus
	}
	g, err := graph.Build(graph.Config{
		Model:          rt.Cfg.Model,
		MicrobatchSize: c.MicrobatchSize,
		Microbatches:   mbCount,
		Replicas:       replicas,
	})
	if err != nil {
		return err
	}
	opts := sched.DefaultOptions(rt.Cfg.Mode)
	opts.GroupSize = c.GroupSize
	opts.Prefetch = c.Prefetch
	opts.DeferBlockedUpdates = c.Defer
	opts.WaveInterleave = c.Interleave
	s, err := sched.Build(g, opts, gpus)
	if err != nil {
		return err
	}
	return schedcheck.Check(s, schedcheck.Topology{
		Devices:     gpus,
		DeviceBytes: rt.Cfg.Box.GPUMemBytes,
	}).Err()
}
