package tuner

import (
	"strings"
	"testing"

	"harmony/internal/hw"
	"harmony/internal/sched"
)

func TestRetuneMovesPreserveBatch(t *testing.T) {
	cur := Candidate{MicrobatchSize: 4, Microbatches: 4, GroupSize: 2, Prefetch: false}
	prof := Profile{StallFrac: 0.6, OverlapFrac: 0.1, HitRate: 0.2, SwapGBPerIter: 3}
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		moves := retuneMoves(cur, prof, mode)
		if len(moves) == 0 {
			t.Fatalf("%v: stressed profile produced no moves", mode)
		}
		seen := map[Candidate]bool{}
		for _, c := range moves {
			if c.MicrobatchSize*c.Microbatches != 16 {
				t.Fatalf("%v: move %s does not preserve the batch", mode, c)
			}
			if c == cur {
				t.Fatalf("%v: move equals the current plan", mode)
			}
			if seen[c] {
				t.Fatalf("%v: duplicate move %s", mode, c)
			}
			seen[c] = true
			if c.Defer && mode != sched.HarmonyDP {
				t.Fatalf("%v: defer proposed outside harmony-dp", mode)
			}
		}
	}
}

func TestRetuneMovesHealthyProfileIsQuiet(t *testing.T) {
	cur := Candidate{MicrobatchSize: 2, Microbatches: 8, Prefetch: true}
	prof := Profile{StallFrac: 0.05, OverlapFrac: 0.8, HitRate: 0.95}
	if moves := retuneMoves(cur, prof, sched.HarmonyDP); len(moves) != 0 {
		t.Fatalf("healthy profile proposed %d moves, want none", len(moves))
	}
}

func TestRetuneMovesDeterministic(t *testing.T) {
	cur := Candidate{MicrobatchSize: 4, Microbatches: 4, GroupSize: 2}
	prof := Profile{StallFrac: 0.6, OverlapFrac: 0.1, HitRate: 0.2, SwapGBPerIter: 3}
	a := retuneMoves(cur, prof, sched.HarmonyDP)
	b := retuneMoves(cur, prof, sched.HarmonyDP)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("move %d differs across identical calls: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestProposeAcceptsVerifiedMove(t *testing.T) {
	rt := &Retuner{Cfg: tunerConfig(sched.HarmonyPP, 4)}
	cur := Candidate{MicrobatchSize: 2, Microbatches: 2, GroupSize: 2, Prefetch: false}
	prof := Profile{StallFrac: 0.6, OverlapFrac: 0.1, HitRate: 0.3, SwapGBPerIter: 2}
	got, err := rt.Propose(cur, prof)
	if err != nil {
		t.Fatal(err)
	}
	if got == cur {
		t.Fatal("Propose returned the current plan")
	}
	if got.MicrobatchSize*got.Microbatches != 4 {
		t.Fatalf("accepted candidate %s does not preserve the batch", got)
	}
	// The accepted candidate must itself pass the preflight it was
	// admitted by — re-verify from scratch.
	if err := rt.Preflight(got); err != nil {
		t.Fatalf("accepted candidate fails re-preflight: %v", err)
	}
}

func TestProposeNoMoveErrors(t *testing.T) {
	rt := &Retuner{Cfg: tunerConfig(sched.HarmonyDP, 4)}
	cur := Candidate{MicrobatchSize: 2, Microbatches: 2, Prefetch: true}
	_, err := rt.Propose(cur, Profile{StallFrac: 0.05, OverlapFrac: 0.8, HitRate: 0.95})
	if err == nil || !strings.Contains(err.Error(), "no retune") {
		t.Fatalf("want no-retune error, got %v", err)
	}
}

func TestProposeRejectionCarriesCounterexample(t *testing.T) {
	// A box too small for any plan: every move must fail preflight and
	// the aggregated error must carry the verifier's Gantt trace.
	cfg := tunerConfig(sched.HarmonyPP, 4)
	cfg.Box.GPUMemBytes = 1 << 10
	rt := &Retuner{Cfg: cfg}
	cur := Candidate{MicrobatchSize: 2, Microbatches: 2, GroupSize: 2}
	_, err := rt.Propose(cur, Profile{StallFrac: 0.9, OverlapFrac: 0.05, HitRate: 0.1, SwapGBPerIter: 9})
	if err == nil {
		t.Fatal("undersized box accepted a retune")
	}
	if !strings.Contains(err.Error(), "keeping the current plan") {
		t.Fatalf("rejection error missing keep-plan guidance: %v", err)
	}
	if !strings.Contains(err.Error(), "counterexample") && !strings.Contains(err.Error(), "schedcheck") {
		t.Fatalf("rejection error missing verifier evidence: %v", err)
	}
}

// FuzzRetune drives Propose with arbitrary profiles and plan points:
// whatever the inputs, it must never panic, every accepted retune must
// pass a from-scratch schedcheck preflight and preserve the batch
// product, and every rejection must explain itself.
func FuzzRetune(f *testing.F) {
	f.Add(int64(0.6*1e3), int64(0.1*1e3), int64(0.2*1e3), int64(3), 2, 2, 2, false, false, false, true, uint8(2))
	f.Add(int64(900), int64(50), int64(100), int64(9), 4, 4, 0, true, true, true, false, uint8(3))
	f.Add(int64(-5), int64(2000), int64(-1), int64(0), 1, 8, 3, false, true, false, true, uint8(1))
	f.Fuzz(func(t *testing.T, stallM, overlapM, hitM, swapGB int64,
		mbs, mbc, group int, pf, defer_, il, pipeline bool, gpus uint8) {
		// Clamp structural inputs to the valid domain — the fuzzer
		// explores profiles and plan points, not Config validation.
		mbs = 1 + abs(int64(mbs))%8
		mbc = 1 + abs(int64(mbc))%8
		group = abs(int64(group)) % 4
		g := 1 + int(gpus%3)

		mode := sched.HarmonyDP
		if pipeline {
			mode = sched.HarmonyPP
		}
		cfg := tunerConfig(mode, mbs*mbc)
		cfg.Box = hw.Commodity1080TiBox(g)
		cfg.Box.GPUMemBytes = cfg.Model.PersistentBytes() / 2
		rt := &Retuner{Cfg: cfg}

		cur := Candidate{
			MicrobatchSize: mbs, Microbatches: mbc, GroupSize: group,
			Prefetch: pf, Defer: defer_ && mode == sched.HarmonyDP, Interleave: il,
		}
		prof := Profile{
			StallFrac:     float64(stallM) / 1e3,
			OverlapFrac:   float64(overlapM) / 1e3,
			HitRate:       float64(hitM) / 1e3,
			SwapGBPerIter: float64(swapGB),
		}

		got, err := rt.Propose(cur, prof)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("rejection with empty error")
			}
			return
		}
		if got.MicrobatchSize*got.Microbatches != mbs*mbc {
			t.Fatalf("accepted %s breaks batch product %d", got, mbs*mbc)
		}
		if got == cur {
			t.Fatalf("accepted candidate equals the current plan %s", cur)
		}
		if err := rt.Preflight(got); err != nil {
			t.Fatalf("accepted candidate %s fails re-preflight: %v", got, err)
		}
	})
}

func abs(v int64) int {
	if v < 0 {
		v = -v
	}
	return int(v % (1 << 30))
}
