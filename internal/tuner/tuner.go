// Package tuner implements Harmony's Performance Tuner (paper Fig. 3):
// it profiles candidate configurations — group size, microbatch size,
// prefetch, update deferral — by running short measured simulations,
// and searches the "memory–performance tango" of §4 for the
// configuration that maximizes steady-state throughput subject to
// feasibility (every task must fit in device memory).
//
// The paper leaves "algorithmically determining the optimal task
// granularity and the size of microbatches" as an open problem and
// suggests online tuning; this tuner is the straightforward
// measure-and-pick instantiation over a deterministic simulator, with
// an optional greedy hill-climbing mode for larger spaces.
package tuner

import (
	"fmt"
	"sort"

	"harmony/internal/graph"
	"harmony/internal/hw"
	"harmony/internal/models"
	"harmony/internal/runtime"
	"harmony/internal/sched"
	"harmony/internal/sweep"
)

// Candidate is one point of the search space.
type Candidate struct {
	// MicrobatchSize × Microbatches is held equal to the requested
	// per-replica batch across candidates, so throughput numbers are
	// comparable.
	MicrobatchSize int
	Microbatches   int
	GroupSize      int
	Prefetch       bool
	Defer          bool
	// Interleave runs grouped pipeline waves in 1F1B order (only
	// meaningful for pipeline modes with a sub-batch group size).
	Interleave bool
}

func (c Candidate) String() string {
	s := fmt.Sprintf("mb=%d×%d group=%d prefetch=%v", c.MicrobatchSize, c.Microbatches, c.GroupSize, c.Prefetch)
	if c.Defer {
		s += " defer=true"
	}
	if c.Interleave {
		s += " interleave=true"
	}
	return s
}

// Measurement is the outcome of profiling one candidate.
type Measurement struct {
	Candidate  Candidate
	Throughput float64 // samples/second; 0 when infeasible
	SwapGB     float64 // per-iteration swap traffic (in+out)
	P2PGB      float64
	IterSec    float64
	Feasible   bool
	Err        string // infeasibility reason
}

// Config describes a tuning session.
type Config struct {
	Model *models.Model
	Mode  sched.Mode
	Box   hw.BoxConfig
	// BatchPerReplica is the samples each replica processes per
	// iteration; candidates factor it into microbatches differently.
	BatchPerReplica int
	// MeasureIters per candidate (default 2).
	MeasureIters int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Model == nil {
		return fmt.Errorf("tuner: nil model")
	}
	if c.BatchPerReplica <= 0 {
		return fmt.Errorf("tuner: BatchPerReplica must be positive, got %d", c.BatchPerReplica)
	}
	return c.Box.Validate()
}

// Result is a completed tuning session.
type Result struct {
	Best         Measurement
	Measurements []Measurement // all candidates, best first
	Explored     int
}

// Space enumerates the default candidate grid for a batch size:
// every divisor split of the batch into microbatches, group sizes at
// the interesting powers, and both binary knobs where they matter.
func Space(mode sched.Mode, batch int) []Candidate {
	var out []Candidate
	for _, mbs := range divisors(batch) {
		m := batch / mbs
		groups := []int{0}
		if m > 1 {
			for _, g := range divisors(m) {
				if g != m { // 0 already means "all"
					groups = append(groups, g)
				}
			}
		}
		for _, g := range groups {
			for _, pf := range []bool{true, false} {
				defers := []bool{false}
				if mode == sched.HarmonyDP {
					defers = []bool{false, true}
				}
				interleaves := []bool{false}
				if mode.IsPipeline() && g > 0 {
					interleaves = []bool{false, true}
				}
				for _, df := range defers {
					for _, il := range interleaves {
						out = append(out, Candidate{
							MicrobatchSize: mbs, Microbatches: m,
							GroupSize: g, Prefetch: pf, Defer: df, Interleave: il,
						})
					}
				}
			}
		}
	}
	return out
}

func divisors(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// Run profiles every candidate in the grid and returns them sorted by
// throughput (best first). Infeasible candidates are kept with their
// error so callers can see the feasibility frontier.
func Run(cfg Config, gpus int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return measureAll(cfg, gpus, Space(cfg.Mode, cfg.BatchPerReplica))
}

// HillClimb explores the space greedily: it starts from the fully
// grouped, prefetching candidate and moves to the best neighbor until
// no neighbor improves. For large batches this measures far fewer
// candidates than Run while typically finding the same optimum
// (greedy works well because throughput is unimodal along each knob
// in practice).
func HillClimb(cfg Config, gpus int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := Candidate{MicrobatchSize: 1, Microbatches: cfg.BatchPerReplica, GroupSize: 0, Prefetch: true}
	seen := map[Candidate]Measurement{}
	measure := func(c Candidate) Measurement {
		if m, ok := seen[c]; ok {
			return m
		}
		m := measureOne(cfg, gpus, c)
		seen[c] = m
		return m
	}
	cur := measure(start)
	for {
		improved := false
		for _, nb := range neighbors(cfg, cur.Candidate) {
			m := measure(nb)
			if m.Feasible && m.Throughput > cur.Throughput {
				cur = m
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	res := &Result{Best: cur, Explored: len(seen)}
	for _, m := range seen {
		res.Measurements = append(res.Measurements, m)
	}
	sortMeasurements(res.Measurements)
	return res, nil
}

// neighbors perturbs one knob at a time.
func neighbors(cfg Config, c Candidate) []Candidate {
	var out []Candidate
	batch := cfg.BatchPerReplica
	// Halve/double the microbatch size along divisor boundaries.
	for _, mbs := range divisors(batch) {
		if mbs == c.MicrobatchSize*2 || (c.MicrobatchSize%2 == 0 && mbs == c.MicrobatchSize/2) {
			out = append(out, Candidate{MicrobatchSize: mbs, Microbatches: batch / mbs,
				GroupSize: 0, Prefetch: c.Prefetch, Defer: c.Defer})
		}
	}
	// Step the group size among divisors of m.
	m := c.Microbatches
	ds := divisors(m)
	curG := c.GroupSize
	if curG == 0 {
		curG = m
	}
	for i, d := range ds {
		if d == curG {
			if i > 0 {
				out = append(out, withGroup(c, ds[i-1], m))
			}
			if i+1 < len(ds) {
				out = append(out, withGroup(c, ds[i+1], m))
			}
		}
	}
	// Flip the binary knobs.
	flipped := c
	flipped.Prefetch = !c.Prefetch
	out = append(out, flipped)
	if cfg.Mode == sched.HarmonyDP {
		flipped = c
		flipped.Defer = !c.Defer
		out = append(out, flipped)
	}
	if cfg.Mode.IsPipeline() && c.GroupSize > 0 {
		flipped = c
		flipped.Interleave = !c.Interleave
		out = append(out, flipped)
	}
	return out
}

func withGroup(c Candidate, g, m int) Candidate {
	if g == m {
		g = 0
	}
	c.GroupSize = g
	return c
}

func measureAll(cfg Config, gpus int, cands []Candidate) (*Result, error) {
	res := &Result{}
	// Candidate measurements are independent deterministic
	// simulations: profile them on all cores.
	ms, err := sweep.Run(cands, 0, func(c Candidate) (Measurement, error) {
		return measureOne(cfg, gpus, c), nil
	})
	if err != nil {
		return nil, err
	}
	res.Measurements = ms
	res.Explored = len(ms)
	sortMeasurements(res.Measurements)
	if len(res.Measurements) == 0 || !res.Measurements[0].Feasible {
		return res, fmt.Errorf("tuner: no feasible candidate for %s on %d GPUs", cfg.Model.Name, gpus)
	}
	res.Best = res.Measurements[0]
	return res, nil
}

func sortMeasurements(ms []Measurement) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Feasible != ms[j].Feasible {
			return ms[i].Feasible
		}
		if ms[i].Throughput != ms[j].Throughput {
			return ms[i].Throughput > ms[j].Throughput
		}
		return ms[i].Candidate.String() < ms[j].Candidate.String()
	})
}

func measureOne(cfg Config, gpus int, c Candidate) Measurement {
	out := Measurement{Candidate: c}
	replicas := gpus
	if cfg.Mode.IsPipeline() {
		replicas = 1
	}
	mbCount := c.Microbatches
	if cfg.Mode.IsPipeline() {
		// Pipeline processes the global batch as one stream of
		// microbatches.
		mbCount = c.Microbatches * gpus
	}
	g, err := graph.Build(graph.Config{
		Model:          cfg.Model,
		MicrobatchSize: c.MicrobatchSize,
		Microbatches:   mbCount,
		Replicas:       replicas,
	})
	if err != nil {
		out.Err = err.Error()
		return out
	}
	opts := sched.DefaultOptions(cfg.Mode)
	opts.GroupSize = c.GroupSize
	opts.Prefetch = c.Prefetch
	opts.DeferBlockedUpdates = c.Defer
	opts.WaveInterleave = c.Interleave
	s, err := sched.Build(g, opts, gpus)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	iters := cfg.MeasureIters
	if iters == 0 {
		iters = 2
	}
	res, err := runtime.Run(runtime.Config{Box: cfg.Box, Schedule: s, WarmupIters: 1, MeasureIters: iters})
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Feasible = true
	out.Throughput = res.Throughput
	out.SwapGB = float64(res.SwapInBytes+res.SwapOutBytes) / (1 << 30)
	out.P2PGB = float64(res.P2PBytes) / (1 << 30)
	out.IterSec = float64(res.IterTime)
	return out
}
