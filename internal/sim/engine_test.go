package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{3, 1, 2, 0.5, 2} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 3 {
		t.Fatalf("end time = %v, want 3", end)
	}
	want := []Time{0.5, 1, 2, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestEngineAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(10, func() {
		e.After(5, func() { fired = e.Now() })
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 15 {
		t.Fatalf("After fired at %v, want 15", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	h := e.At(1, func() { ran = true })
	e.Cancel(h)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt)", count)
	}
	// Remaining event still queued and runnable.
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count after resume = %d, want 2", count)
	}
}

func TestEngineLimit(t *testing.T) {
	e := NewEngine()
	e.Limit = 10
	var spin func()
	spin = func() { e.After(1, spin) }
	e.After(1, spin)
	if _, err := e.Run(); err == nil {
		t.Fatal("expected event-limit error")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	now, err := e.RunUntil(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if now != 2.5 {
		t.Fatalf("now = %v, want 2.5", now)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v after Run, want all 4", fired)
	}
}

// Property: for any set of non-negative delays, the engine processes
// events in non-decreasing time order and ends at the max time.
func TestEngineMonotonicClockProperty(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		e := NewEngine()
		var last Time = -1
		mono := true
		var maxAt Time
		for _, d := range delaysRaw {
			at := Time(d) / 100
			if at > maxAt {
				maxAt = at
			}
			e.At(at, func() {
				if e.Now() < last {
					mono = false
				}
				last = e.Now()
			})
		}
		end, err := e.Run()
		if err != nil {
			return false
		}
		if len(delaysRaw) == 0 {
			return end == 0
		}
		return mono && end == maxAt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO resource never overlaps service periods and its
// total busy time equals the sum of service times.
func TestFIFOSerializationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewFIFO(e, "res")
		var total Time
		inService := 0
		ok := true
		count := int(n%20) + 1
		for i := 0; i < count; i++ {
			svc := Time(rng.Float64())
			total += svc
			at := Time(rng.Float64() * 3)
			e.At(at, func() {
				r.Acquire(svc, func(Time) {
					inService++
					if inService > 1 {
						ok = false
					}
				}, func(Time) {
					inService--
				})
			})
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		return ok && almostEq(float64(r.BusyTime), float64(total)) && r.Served == uint64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9*(1+b)
}

func TestFIFOQueueing(t *testing.T) {
	e := NewEngine()
	r := NewFIFO(e, "link")
	var starts []Time
	for i := 0; i < 3; i++ {
		r.Acquire(2, func(at Time) { starts = append(starts, at) }, nil)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 2, 4}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
	if r.BusyTime != 6 {
		t.Fatalf("BusyTime = %v, want 6", r.BusyTime)
	}
}

func TestChainCompletesAtSlowest(t *testing.T) {
	e := NewEngine()
	a := NewFIFO(e, "a")
	b := NewFIFO(e, "b")
	// Pre-load b so the chained transfer queues behind 3s of work.
	b.Acquire(3, nil, nil)
	var doneAt Time
	Chain(e, []*FIFO{a, b}, 2, func(at Time) { doneAt = at })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 5 {
		t.Fatalf("chain done at %v, want 5 (queued behind b)", doneAt)
	}
}

func TestChainEmptyIsPureDelay(t *testing.T) {
	e := NewEngine()
	var doneAt Time
	Chain(e, nil, 1.5, func(at Time) { doneAt = at })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 1.5 {
		t.Fatalf("done at %v, want 1.5", doneAt)
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	ran := false
	h := e.At(1, func() { ran = true })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Cancel(h) // already fired; must not panic or corrupt
	if !ran {
		t.Fatal("event should have run")
	}
}

func TestFIFOUtilization(t *testing.T) {
	e := NewEngine()
	r := NewFIFO(e, "u")
	if r.Utilization() != 0 {
		t.Fatal("utilization before time passes should be 0")
	}
	r.Acquire(2, nil, nil)
	e.At(4, func() {}) // extend the clock past the service
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if r.Busy() || r.QueueLen() != 0 {
		t.Fatal("resource should be idle")
	}
	if r.Name() != "u" {
		t.Fatal("name lost")
	}
}

func TestNegativeServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine()
	NewFIFO(e, "x").Acquire(-1, nil, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().After(-1, func() {})
}
