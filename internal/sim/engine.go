// Package sim implements a deterministic discrete-event simulation
// engine. It is the timing substrate for every Harmony experiment: a
// virtual clock, an event heap ordered by (time, sequence), cooperative
// processes, and resource primitives (FIFO servers and bandwidth
// links) that model GPU compute streams, copy engines and PCIe links.
//
// The engine is deliberately free of wall-clock time and randomness so
// that every run of the same configuration produces an identical event
// trace; the property tests rely on this replay determinism. The
// package is part of harmonylint's deterministic core (DESIGN.md §10):
// the determinism analyzer rejects wall-clock reads, global rand state
// and map iteration here mechanically, not just by convention.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time float64

// Infinity is a time later than any event the engine will schedule.
const Infinity = Time(math.MaxFloat64)

// event is a callback scheduled at a point in virtual time. Ties are
// broken by seq, the order in which events were scheduled, which makes
// the simulation fully deterministic.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool // cancelled
	idx  int  // heap index
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all callbacks run on the goroutine that calls
// Run.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// Processed counts events executed; useful as a progress and
	// runaway-loop diagnostic.
	Processed uint64
	// Limit aborts the run when more than Limit events execute
	// (0 = no limit). A hard backstop against schedule bugs that
	// would otherwise spin forever.
	Limit uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// At schedules fn to run at absolute time t. Scheduling in the past is
// a programming error and panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or cancelled event is a no-op.
func (e *Engine) Cancel(h Handle) {
	if h.ev != nil && !h.ev.dead {
		h.ev.dead = true
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the heap is empty, Stop is
// called, or the event limit is exceeded. It returns the final virtual
// time.
func (e *Engine) Run() (Time, error) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			return e.now, fmt.Errorf("sim: time went backwards: %v -> %v", e.now, ev.at)
		}
		e.now = ev.at
		e.Processed++
		if e.Limit > 0 && e.Processed > e.Limit {
			return e.now, fmt.Errorf("sim: event limit %d exceeded at t=%v", e.Limit, e.now)
		}
		ev.fn()
	}
	return e.now, nil
}

// RunUntil executes events with time ≤ deadline, leaving later events
// queued. It returns the virtual time after the last executed event
// (or the deadline if no event fired at it).
func (e *Engine) RunUntil(deadline Time) (Time, error) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if ev.at > deadline {
			break
		}
		heap.Pop(&e.events)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.Processed++
		if e.Limit > 0 && e.Processed > e.Limit {
			return e.now, fmt.Errorf("sim: event limit %d exceeded at t=%v", e.Limit, e.now)
		}
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now, nil
}

// Pending reports the number of events still queued (including
// cancelled ones not yet popped).
func (e *Engine) Pending() int { return len(e.events) }
