package sim

// FIFO is a resource that serves one request at a time in arrival
// order. It models a GPU compute stream, a DMA copy engine, or a PCIe
// link under the store-and-forward contention model: each acquisition
// holds the resource exclusively for a caller-computed service time.
type FIFO struct {
	eng  *Engine
	name string

	busy  bool
	queue []*fifoReq

	// Accounting.
	BusyTime Time   // total time spent serving
	Served   uint64 // completed requests
	lastIdle Time   // when the resource last became busy (for BusyTime)
}

type fifoReq struct {
	service Time
	start   func(at Time) // called when service begins (may be nil)
	done    func(at Time) // called when service completes
}

// NewFIFO creates a FIFO resource bound to an engine.
func NewFIFO(eng *Engine, name string) *FIFO {
	return &FIFO{eng: eng, name: name}
}

// Name returns the resource's diagnostic name.
func (f *FIFO) Name() string { return f.name }

// Acquire enqueues a request that will hold the resource for service
// seconds. start (optional) fires when service begins; done fires when
// it completes. Both run as engine events.
func (f *FIFO) Acquire(service Time, start, done func(at Time)) {
	if service < 0 {
		panic("sim: negative service time")
	}
	r := &fifoReq{service: service, start: start, done: done}
	f.queue = append(f.queue, r)
	if !f.busy {
		f.dispatch()
	}
}

func (f *FIFO) dispatch() {
	if f.busy || len(f.queue) == 0 {
		return
	}
	r := f.queue[0]
	f.queue = f.queue[1:]
	f.busy = true
	f.lastIdle = f.eng.Now()
	if r.start != nil {
		r.start(f.eng.Now())
	}
	f.eng.After(r.service, func() {
		f.busy = false
		f.BusyTime += r.service
		f.Served++
		if r.done != nil {
			r.done(f.eng.Now())
		}
		f.dispatch()
	})
}

// Busy reports whether the resource is currently serving a request.
func (f *FIFO) Busy() bool { return f.busy }

// QueueLen reports the number of waiting (not yet started) requests.
func (f *FIFO) QueueLen() int { return len(f.queue) }

// Utilization returns BusyTime divided by the elapsed time span, or 0
// before any time has passed.
func (f *FIFO) Utilization() float64 {
	if f.eng.Now() == 0 {
		return 0
	}
	return float64(f.BusyTime) / float64(f.eng.Now())
}

// Chain acquires a sequence of FIFO resources simultaneously for the
// same service time, invoking done only after the slowest completes.
// Resources must be passed in a globally consistent order by all
// callers (the hw package canonicalizes link order) so that the
// store-and-forward model cannot deadlock; since acquisition here is
// non-blocking enqueue, ordering only affects fairness, not safety.
//
// The model: a transfer occupies every link on its path for
// bytes/bottleneck-bandwidth. We implement that by acquiring each link
// for the full service time; completion is when all have served.
func Chain(eng *Engine, resources []*FIFO, service Time, done func(at Time)) {
	if len(resources) == 0 {
		// Pure delay with no contention.
		eng.After(service, func() { done(eng.Now()) })
		return
	}
	remaining := len(resources)
	for _, r := range resources {
		r.Acquire(service, nil, func(at Time) {
			remaining--
			if remaining == 0 {
				done(at)
			}
		})
	}
}
