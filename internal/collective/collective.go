// Package collective implements collective communication over the
// simulated topology: ring all-reduce (the gradient averaging of
// data-parallel training, NCCL-style) and broadcast. Harmony inserts
// these transparently to preserve the semantics of the original tasks
// (paper §1).
package collective

import (
	"fmt"

	"harmony/internal/hw"
	"harmony/internal/sim"
)

// RingAllReduce reduces-and-broadcasts `bytes` per replica across the
// given devices using the standard 2·(N−1)-step ring algorithm with
// chunks of bytes/N. Each step is a barrier: all N concurrent chunk
// transfers of a step finish before the next step starts (matching
// NCCL's synchronous ring). done fires when the result is available
// on every device.
//
// Errors detected before any transfer starts are returned; errors
// surfacing mid-collective from later engine events (a transfer
// failing after the ring is in flight) are delivered to fail instead,
// exactly once, and the collective stops making progress — done never
// fires after fail. A nil fail drops async errors silently; pass one
// whenever the caller can act on failures (the runtime's retry layer
// does).
//
// Per-device traffic is 2·(N−1)/N·bytes in each direction, so the
// simulated duration reflects both link contention and the algorithm's
// latency structure.
func RingAllReduce(top *hw.Topology, devs []hw.DeviceID, bytes int64, done func(at sim.Time), fail func(error)) error {
	n := len(devs)
	if n == 0 {
		return fmt.Errorf("collective: all-reduce over zero devices")
	}
	if bytes < 0 {
		return fmt.Errorf("collective: negative payload %d", bytes)
	}
	if n == 1 {
		// Nothing to reduce across; complete immediately.
		top.Eng.After(0, func() { done(top.Eng.Now()) })
		return nil
	}
	for _, d := range devs {
		if d == hw.Host {
			return fmt.Errorf("collective: host cannot participate in all-reduce")
		}
	}
	chunk := bytes / int64(n)
	if chunk == 0 {
		chunk = 1
	}
	steps := 2 * (n - 1)
	ab := &aborter{fail: fail}
	var runStep func(step int)
	runStep = func(step int) {
		if ab.aborted {
			return
		}
		if step == steps {
			done(top.Eng.Now())
			return
		}
		remaining := n
		for i := 0; i < n; i++ {
			src := devs[i]
			dst := devs[(i+1)%n]
			if err := sendChunk(top, src, dst, chunk, func(sim.Time) {
				remaining--
				if remaining == 0 {
					runStep(step + 1)
				}
			}, ab); err != nil {
				// Ring construction was validated up front, so a
				// transfer error here means the topology changed under
				// us mid-collective.
				ab.abort(err)
				return
			}
		}
	}
	// Validate every ring edge is routable before starting.
	for i := 0; i < n; i++ {
		src, dst := devs[i], devs[(i+1)%n]
		if src == dst {
			return fmt.Errorf("collective: duplicate device %s in ring", src)
		}
		if !top.CanP2P(src, dst) {
			// Host-bounced edges are always routable; nothing to
			// check.
			continue
		}
		if _, err := top.TransferTime(src, dst, 1); err != nil {
			return err
		}
	}
	runStep(0)
	return nil
}

// aborter delivers at most one mid-collective error to the caller's
// fail callback and latches, so in-flight completion callbacks stop
// launching further steps. Single-threaded like the engine it runs
// under.
type aborter struct {
	fail    func(error)
	aborted bool
}

func (a *aborter) abort(err error) {
	if a.aborted {
		return
	}
	a.aborted = true
	if a.fail != nil {
		a.fail(err)
	}
}

// sendChunk moves a chunk directly over p2p when available, otherwise
// bounces it through host memory as two transfers. An error starting
// the first hop is returned; an error starting the host-bounce second
// hop (which only surfaces once the first hop completes, inside an
// engine event) goes to ab.
func sendChunk(top *hw.Topology, src, dst hw.DeviceID, bytes int64, done func(at sim.Time), ab *aborter) error {
	if top.CanP2P(src, dst) {
		return top.Transfer(src, dst, bytes, done)
	}
	return top.Transfer(src, hw.Host, bytes, func(sim.Time) {
		if ab.aborted {
			return
		}
		if err := top.Transfer(hw.Host, dst, bytes, done); err != nil {
			ab.abort(err)
		}
	})
}

// RingAllGather distributes each device's shard (bytes/N) to every
// other device using the N−1-step ring algorithm, so every device
// ends with the full `bytes` payload. Per-device traffic is
// (N−1)/N·bytes each direction. done fires when the last device has
// the full result. This is the collective behind intra-op sharding:
// partial layer outputs are gathered into full activations. fail
// receives mid-collective errors, with the same contract as
// RingAllReduce.
func RingAllGather(top *hw.Topology, devs []hw.DeviceID, bytes int64, done func(at sim.Time), fail func(error)) error {
	n := len(devs)
	if n == 0 {
		return fmt.Errorf("collective: all-gather over zero devices")
	}
	if bytes < 0 {
		return fmt.Errorf("collective: negative payload %d", bytes)
	}
	if n == 1 {
		top.Eng.After(0, func() { done(top.Eng.Now()) })
		return nil
	}
	for i := 0; i < n; i++ {
		if devs[i] == hw.Host {
			return fmt.Errorf("collective: host cannot participate in all-gather")
		}
		if devs[i] == devs[(i+1)%n] {
			return fmt.Errorf("collective: duplicate device %s in ring", devs[i])
		}
	}
	chunk := bytes / int64(n)
	if chunk == 0 {
		chunk = 1
	}
	steps := n - 1
	ab := &aborter{fail: fail}
	var runStep func(step int)
	runStep = func(step int) {
		if ab.aborted {
			return
		}
		if step == steps {
			done(top.Eng.Now())
			return
		}
		remaining := n
		for i := 0; i < n; i++ {
			src, dst := devs[i], devs[(i+1)%n]
			if err := sendChunk(top, src, dst, chunk, func(sim.Time) {
				remaining--
				if remaining == 0 {
					runStep(step + 1)
				}
			}, ab); err != nil {
				ab.abort(err)
				return
			}
		}
	}
	runStep(0)
	return nil
}

// Broadcast copies `bytes` from root to every other device,
// concurrently. done fires when the slowest receiver has the payload.
// fail receives mid-collective errors (host-bounce second hops), with
// the same contract as RingAllReduce.
func Broadcast(top *hw.Topology, root hw.DeviceID, devs []hw.DeviceID, bytes int64, done func(at sim.Time), fail func(error)) error {
	if bytes < 0 {
		return fmt.Errorf("collective: negative payload %d", bytes)
	}
	targets := 0
	for _, d := range devs {
		if d != root {
			targets++
		}
	}
	if targets == 0 {
		top.Eng.After(0, func() { done(top.Eng.Now()) })
		return nil
	}
	remaining := targets
	ab := &aborter{fail: fail}
	for _, d := range devs {
		if d == root {
			continue
		}
		if err := sendChunk(top, root, d, bytes, func(sim.Time) {
			remaining--
			if remaining == 0 {
				done(top.Eng.Now())
			}
		}, ab); err != nil {
			return err
		}
	}
	return nil
}

// AllReduceTime estimates the uncontended duration of a ring
// all-reduce (for analytical cross-checks): 2·(N−1) steps of one
// chunk transfer each, assuming all steps proceed at the slowest
// ring edge.
func AllReduceTime(top *hw.Topology, devs []hw.DeviceID, bytes int64) (sim.Time, error) {
	n := len(devs)
	if n <= 1 {
		return 0, nil
	}
	chunk := bytes / int64(n)
	if chunk == 0 {
		chunk = 1
	}
	var worst sim.Time
	for i := 0; i < n; i++ {
		src, dst := devs[i], devs[(i+1)%n]
		var step sim.Time
		if top.CanP2P(src, dst) {
			d, err := top.TransferTime(src, dst, chunk)
			if err != nil {
				return 0, err
			}
			step = d
		} else {
			d1, err := top.TransferTime(src, hw.Host, chunk)
			if err != nil {
				return 0, err
			}
			d2, err := top.TransferTime(hw.Host, dst, chunk)
			if err != nil {
				return 0, err
			}
			step = d1 + d2
		}
		if step > worst {
			worst = step
		}
	}
	return sim.Time(2*(n-1)) * worst, nil
}
