package collective

import (
	"errors"
	"testing"
	"testing/quick"

	"harmony/internal/hw"
	"harmony/internal/sim"
)

func box(t *testing.T, n int, p2p bool) (*sim.Engine, *hw.Topology) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := hw.Commodity1080TiBox(n)
	cfg.P2P = p2p
	top, err := hw.NewBox(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, top
}

func gpus(n int) []hw.DeviceID {
	out := make([]hw.DeviceID, n)
	for i := range out {
		out[i] = hw.DeviceID(i)
	}
	return out
}

func TestAllReduceSingleDeviceIsFree(t *testing.T) {
	eng, top := box(t, 1, true)
	fired := false
	if err := RingAllReduce(top, gpus(1), 1<<20, func(sim.Time) { fired = true }, nil); err != nil {
		t.Fatal(err)
	}
	end, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fired || end != 0 {
		t.Fatalf("fired=%v end=%v, want immediate completion", fired, end)
	}
}

func TestAllReduceCompletesAndScalesWithPayload(t *testing.T) {
	eng, top := box(t, 4, true)
	var small, large sim.Time
	if err := RingAllReduce(top, gpus(4), 12e6, func(at sim.Time) { small = at }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	base := eng.Now()
	if err := RingAllReduce(top, gpus(4), 120e6, func(at sim.Time) { large = at }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	large -= base
	if small <= 0 || large <= 0 {
		t.Fatalf("durations small=%v large=%v", small, large)
	}
	ratio := float64(large) / float64(small)
	if ratio < 5 || ratio > 15 {
		t.Fatalf("10x payload took %.1fx time, want ≈10x", ratio)
	}
}

func TestAllReduceMatchesEstimateUncontended(t *testing.T) {
	eng, top := box(t, 4, true)
	est, err := AllReduceTime(top, gpus(4), 48e6)
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Time
	if err := RingAllReduce(top, gpus(4), 48e6, func(at sim.Time) { got = at }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The barrier-per-step simulation can only be ≥ the uncontended
	// estimate, and shouldn't exceed it wildly on an idle ring. Ring
	// edges differ (same-switch vs cross-switch), so allow 2x.
	if got < est {
		t.Fatalf("simulated %v < estimate %v", got, est)
	}
	if got > 2*est {
		t.Fatalf("simulated %v >> estimate %v", got, est)
	}
}

func TestAllReduceWithoutP2PBouncesThroughHost(t *testing.T) {
	engP2P, topP2P := box(t, 4, true)
	var withP2P, without sim.Time
	if err := RingAllReduce(topP2P, gpus(4), 48e6, func(at sim.Time) { withP2P = at }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := engP2P.Run(); err != nil {
		t.Fatal(err)
	}
	engNo, topNo := box(t, 4, false)
	if err := RingAllReduce(topNo, gpus(4), 48e6, func(at sim.Time) { without = at }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := engNo.Run(); err != nil {
		t.Fatal(err)
	}
	if without <= withP2P {
		t.Fatalf("host-bounced all-reduce (%v) should be slower than p2p (%v)", without, withP2P)
	}
}

func TestAllReduceValidation(t *testing.T) {
	_, top := box(t, 2, true)
	if err := RingAllReduce(top, nil, 10, func(sim.Time) {}, nil); err == nil {
		t.Fatal("empty device list accepted")
	}
	if err := RingAllReduce(top, gpus(2), -1, func(sim.Time) {}, nil); err == nil {
		t.Fatal("negative payload accepted")
	}
	if err := RingAllReduce(top, []hw.DeviceID{0, hw.Host}, 10, func(sim.Time) {}, nil); err == nil {
		t.Fatal("host participant accepted")
	}
	if err := RingAllReduce(top, []hw.DeviceID{0, 0}, 10, func(sim.Time) {}, nil); err == nil {
		t.Fatal("duplicate device accepted")
	}
}

func TestBroadcast(t *testing.T) {
	eng, top := box(t, 4, true)
	fired := false
	if err := Broadcast(top, 0, gpus(4), 12e6, func(sim.Time) { fired = true }, nil); err != nil {
		t.Fatal(err)
	}
	end, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fired || end <= 0 {
		t.Fatalf("fired=%v end=%v", fired, end)
	}
	// Root-only broadcast completes immediately.
	fired = false
	if err := Broadcast(top, 0, []hw.DeviceID{0}, 12e6, func(sim.Time) { fired = true }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("single-device broadcast never fired")
	}
}

// Property: all-reduce duration grows with device count for a fixed
// payload (more steps), for both p2p and host-bounced rings.
func TestAllReduceMonotoneInDevices(t *testing.T) {
	f := func(p2p bool) bool {
		var prev sim.Time
		for n := 2; n <= 4; n++ {
			eng := sim.NewEngine()
			cfg := hw.Commodity1080TiBox(n)
			cfg.P2P = p2p
			top, err := hw.NewBox(eng, cfg)
			if err != nil {
				return false
			}
			var dur sim.Time
			if err := RingAllReduce(top, gpus(n), 48e6, func(at sim.Time) { dur = at }, nil); err != nil {
				return false
			}
			if _, err := eng.Run(); err != nil {
				return false
			}
			if dur <= prev {
				return false
			}
			prev = dur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherCompletes(t *testing.T) {
	eng, top := box(t, 4, true)
	var dur sim.Time
	if err := RingAllGather(top, gpus(4), 48e6, func(at sim.Time) { dur = at }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("all-gather took no time")
	}
	// All-gather is N−1 steps vs all-reduce's 2(N−1): roughly half.
	eng2, top2 := box(t, 4, true)
	var ar sim.Time
	if err := RingAllReduce(top2, gpus(4), 48e6, func(at sim.Time) { ar = at }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(ar) / float64(dur)
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("all-reduce should cost ~2x an all-gather, got %.2fx", ratio)
	}
}

func TestAllGatherValidation(t *testing.T) {
	_, top := box(t, 2, true)
	if err := RingAllGather(top, nil, 10, func(sim.Time) {}, nil); err == nil {
		t.Fatal("empty device list accepted")
	}
	if err := RingAllGather(top, gpus(2), -1, func(sim.Time) {}, nil); err == nil {
		t.Fatal("negative payload accepted")
	}
	if err := RingAllGather(top, []hw.DeviceID{0, hw.Host}, 10, func(sim.Time) {}, nil); err == nil {
		t.Fatal("host participant accepted")
	}
	if err := RingAllGather(top, []hw.DeviceID{1, 1}, 10, func(sim.Time) {}, nil); err == nil {
		t.Fatal("duplicate device accepted")
	}
}

func TestAllGatherSingleDeviceFree(t *testing.T) {
	eng, top := box(t, 1, true)
	fired := false
	if err := RingAllGather(top, gpus(1), 1<<20, func(sim.Time) { fired = true }, nil); err != nil {
		t.Fatal(err)
	}
	end, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fired || end != 0 {
		t.Fatalf("fired=%v end=%v", fired, end)
	}
}

// -------------------------------------------------- async error path

// TestSendChunkSecondHopFailureCallsFail drives the host-bounce second
// hop into a routing error (Host->Host transfers to itself) and checks
// the error reaches the aborter instead of panicking mid-simulation —
// the contract injected faults rely on.
func TestSendChunkSecondHopFailureCallsFail(t *testing.T) {
	eng, top := box(t, 2, false)
	var got error
	ab := &aborter{fail: func(err error) { got = err }}
	// dst == Host forces the bounce's second hop to be Host->Host,
	// which the topology rejects — but only after the first hop's
	// engine event completes.
	if err := sendChunk(top, 0, hw.Host, 1<<10, func(sim.Time) {
		t.Fatal("done fired after failed second hop")
	}, ab); err != nil {
		t.Fatalf("first hop refused: %v", err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("second-hop failure not delivered to fail")
	}
	if !ab.aborted {
		t.Fatal("aborter not latched")
	}
}

// TestAborterLatchesOnce checks at-most-once delivery and nil-fail
// safety.
func TestAborterLatchesOnce(t *testing.T) {
	calls := 0
	ab := &aborter{fail: func(error) { calls++ }}
	ab.abort(errors.New("dummy"))
	ab.abort(errors.New("dummy"))
	if calls != 1 {
		t.Fatalf("fail called %d times, want 1", calls)
	}
	nilAb := &aborter{}
	nilAb.abort(errors.New("dummy")) // must not panic
	if !nilAb.aborted {
		t.Fatal("nil-fail aborter did not latch")
	}
}
