// Package analytic implements the paper's analytical swap-volume
// model (§3, "Analytical comparison" and Fig. 5): closed-form
// per-iteration swap volumes for every tensor class under the four
// execution modes, assuming the idealized regime where device memory
// holds only one layer-level operation on one microbatch at a time.
//
// Headline results reproduced here:
//
//	DP + per-GPU virtualization: (4m+2)·N·|W|
//	Harmony-DP:                   3·N·|W|
//	Harmony-PP:                   3·|W|
//
// Two forms are provided: Ideal (the paper's formulas) and Corrected,
// which additionally accounts for the boundary layers that remain
// resident across phase transitions in a real LRU system (the last
// layer's weights survive every forward→backward turn, the first
// layer's survive backward→forward and update turns). The simulator
// matches Corrected to within ~1% and Ideal asymptotically in R.
package analytic

import (
	"fmt"

	"harmony/internal/models"
)

// Params describes one training iteration for the closed forms.
type Params struct {
	// R is the number of layers, M microbatches per replica, N GPUs.
	R, M, N int
	// WBytes is the total weight size |W| = Σ|W_l|; KBytes the total
	// optimizer state |K|; StashPerMB the total stash for one
	// microbatch across all layers; BoundaryActBytes the activation
	// crossing each pipeline stage boundary for one microbatch.
	WBytes           int64
	KBytes           int64
	StashPerMB       int64
	BoundaryActBytes int64
	// FirstWBytes and LastWBytes are |W_0| and |W_{R-1}| for the
	// corrected forms (equal to WBytes/R for uniform models).
	FirstWBytes, LastWBytes int64
}

// FromModel derives Params from a model and training configuration.
func FromModel(m *models.Model, microbatchSize, microbatches, gpus int) Params {
	R := len(m.Layers)
	var boundary int64
	if R > 0 {
		// Representative stage-boundary activation: a middle layer's
		// output for one microbatch.
		boundary = m.Layers[R/2].ActBytesPerSample * int64(microbatchSize)
	}
	return Params{
		R: R, M: microbatches, N: gpus,
		WBytes:           m.WeightBytes(),
		KBytes:           m.OptStateBytes(),
		StashPerMB:       m.ActivationBytes(microbatchSize),
		BoundaryActBytes: boundary,
		FirstWBytes:      m.Layers[0].WeightBytes(),
		LastWBytes:       m.Layers[R-1].WeightBytes(),
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.R <= 0 || p.M <= 0 || p.N <= 0 {
		return fmt.Errorf("analytic: R, M, N must be positive (got %d, %d, %d)", p.R, p.M, p.N)
	}
	if p.WBytes < 0 || p.KBytes < 0 || p.StashPerMB < 0 {
		return fmt.Errorf("analytic: negative sizes")
	}
	return nil
}

// Mode mirrors sched.Mode without importing it (analytic is pure
// math; keeping it dependency-light lets everything test against it).
type Mode int

const (
	DPBaseline Mode = iota
	PPBaseline
	HarmonyDP
	HarmonyPP
)

var modeNames = [...]string{"dp-baseline", "pp-baseline", "harmony-dp", "harmony-pp"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// WeightVolumeIdeal returns the paper's per-iteration weight swap
// volume (swap-in + swap-out bytes summed over all GPUs).
//
// Derivations (§3): with per-GPU virtualization each GPU swaps W in
// and out for the forward and the backward pass of each of the m
// microbatches (4m swaps) plus once in and out for the update (2),
// replicated across N GPUs. Harmony-DP's input-batch grouping swaps W
// in once per phase and JIT-scheduling writes the updated W out once:
// 3 per GPU. Harmony-PP partitions rather than replicates W, removing
// the factor N.
func WeightVolumeIdeal(mode Mode, p Params) int64 {
	switch mode {
	case DPBaseline:
		return int64(4*p.M+2) * int64(p.N) * p.WBytes
	case PPBaseline:
		// Weights are partitioned across stages; each stage re-swaps
		// its own weights per microbatch exactly like DP does, but
		// without replication.
		return int64(4*p.M+2) * p.WBytes
	case HarmonyDP:
		return 3 * int64(p.N) * p.WBytes
	case HarmonyPP:
		return 3 * p.WBytes
	default:
		panic(fmt.Sprintf("analytic: unknown mode %v", mode))
	}
}

// WeightVolumeCorrected refines the ideal form with the LRU boundary
// effects observed in a real system: tensors touched on both sides of
// a phase transition are not actually evicted and re-fetched.
func WeightVolumeCorrected(mode Mode, p Params) int64 {
	ideal := WeightVolumeIdeal(mode, p)
	switch mode {
	case DPBaseline:
		// Per microbatch: the last layer's W survives the fwd→bwd
		// turn (one in + one out saved) and the first layer's W
		// survives the bwd→fwd turn (or the final update sweep).
		saved := int64(2*p.M)*p.LastWBytes + int64(2*p.M)*p.FirstWBytes
		return ideal - int64(p.N)*saved
	case PPBaseline:
		// The boundary effect applies within each of the N stages for
		// that stage's own first/last layers (uniform model: every
		// boundary layer has the same size). Unlike DP, the 1F1B
		// schedule does not alternate fwd/bwd once per microbatch:
		// stage st runs warm = min(M, N−st) forwards back-to-back
		// before its first backward, and drains the same number of
		// backwards at the end. Only the M−warm+1 fwd→bwd junctions in
		// the steady 1F1B window (and symmetrically bwd→fwd) merge the
		// boundary weights, so each stage saves 2·(M−warm+1) round
		// trips of (first+last), not 2·M. Exception: a single-layer
		// stage has one weight touched by every task, so the weight
		// simply never leaves — zero steady-state traffic. Exact for
		// uniform stages (R divisible by N); cross-checked against the
		// simulator in TestPPCorrectedMatchesSimulation.
		if p.R <= p.N {
			return 0
		}
		var saved int64
		for st := 0; st < p.N; st++ {
			warm := p.N - st
			if warm > p.M {
				warm = p.M
			}
			saved += int64(2*(p.M-warm+1)) * (p.FirstWBytes + p.LastWBytes)
		}
		return ideal - saved
	case HarmonyDP:
		// The last layer's W survives the single fwd→bwd turn and
		// the first layer's survives into the next iteration.
		return ideal - int64(p.N)*(p.LastWBytes+p.FirstWBytes)
	case HarmonyPP:
		// Each stage's last layer survives its fwd→bwd turn and its
		// first layer survives into the next iteration. Single-layer
		// stages degenerate the same way as PPBaseline's: the stage's
		// only weight is touched by every task and never leaves.
		if p.R <= p.N {
			return 0
		}
		return ideal - int64(p.N)*(p.LastWBytes+p.FirstWBytes)
	default:
		panic(fmt.Sprintf("analytic: unknown mode %v", mode))
	}
}

// GradVolumeIdeal returns per-iteration weight-gradient (dW) swap
// volume. |dW| = |W|. Baselines swap dW in and out for every
// microbatch's backward plus the update (Fig. 5(a)); Harmony brings
// it in once for the grouped backward and writes the reset buffer
// out once after the JIT update.
func GradVolumeIdeal(mode Mode, p Params) int64 {
	switch mode {
	case DPBaseline:
		return int64(2*p.M+2) * int64(p.N) * p.WBytes
	case PPBaseline:
		return int64(2*p.M+2) * p.WBytes
	case HarmonyDP:
		return 2 * int64(p.N) * p.WBytes
	case HarmonyPP:
		return 2 * p.WBytes
	default:
		panic(fmt.Sprintf("analytic: unknown mode %v", mode))
	}
}

// OptStateVolumeIdeal returns per-iteration optimizer-state swap
// volume: K is needed exactly once per layer (the update), in and
// out, under every mode — 2|K| per weight copy. Harmony cannot reduce
// it below that; the savings show up in W and dW.
func OptStateVolumeIdeal(mode Mode, p Params) int64 {
	switch mode {
	case DPBaseline, HarmonyDP:
		return 2 * int64(p.N) * p.KBytes
	case PPBaseline, HarmonyPP:
		return 2 * p.KBytes
	default:
		panic(fmt.Sprintf("analytic: unknown mode %v", mode))
	}
}

// StashVolumeIdeal returns per-iteration stashed-activation swap
// volume per replica set: every microbatch's stash is written out
// during the forward pass and read back during the backward pass —
// inherent to virtualized training when the stash exceeds memory.
func StashVolumeIdeal(mode Mode, p Params) int64 {
	switch mode {
	case DPBaseline, HarmonyDP:
		return 2 * int64(p.M) * int64(p.N) * p.StashPerMB
	case PPBaseline, HarmonyPP:
		return 2 * int64(p.M) * p.StashPerMB
	default:
		panic(fmt.Sprintf("analytic: unknown mode %v", mode))
	}
}

// CrossStageVolume returns the per-iteration activation bytes that
// cross pipeline stage boundaries (forward activations plus backward
// gradients): 2·m·(N−1)·|Y_boundary|. For baseline PP this traffic is
// host-bounced (doubling the bytes on the host link); Harmony-PP
// moves it over p2p. Zero for DP modes.
func CrossStageVolume(mode Mode, p Params) int64 {
	if mode == DPBaseline || mode == HarmonyDP {
		return 0
	}
	return 2 * int64(p.M) * int64(p.N-1) * p.BoundaryActBytes
}

// TotalVolumeIdeal sums all modeled tensor classes (host-link bytes;
// cross-stage p2p traffic excluded since it bypasses the host link
// under Harmony-PP).
func TotalVolumeIdeal(mode Mode, p Params) int64 {
	total := WeightVolumeIdeal(mode, p) +
		GradVolumeIdeal(mode, p) +
		OptStateVolumeIdeal(mode, p) +
		StashVolumeIdeal(mode, p)
	if mode == PPBaseline {
		// Host-bounced cross-stage activations: out of the producer
		// plus into the consumer.
		total += 2 * CrossStageVolume(mode, p)
	}
	return total
}

// Speedup returns the paper's headline reduction factors relative to
// the DP baseline for the weight class.
func Speedup(mode Mode, p Params) float64 {
	base := WeightVolumeIdeal(DPBaseline, p)
	v := WeightVolumeIdeal(mode, p)
	if v == 0 {
		return 0
	}
	return float64(base) / float64(v)
}
