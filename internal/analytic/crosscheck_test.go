package analytic

import (
	"fmt"
	"testing"

	"harmony/internal/graph"
	"harmony/internal/hw"
	"harmony/internal/models"
	"harmony/internal/runtime"
	"harmony/internal/sched"
	"harmony/internal/tensor"
)

// crossMeasure runs the §3 idealized workload and returns steady-state
// per-iteration swap volume (in+out) for one tensor kind, in bytes.
func crossMeasure(t *testing.T, mode sched.Mode, m, n int, kind tensor.Kind) int64 {
	t.Helper()
	model := models.Uniform("xc", 16, 1000, 4096, 1e9)
	replicas := n
	if mode.IsPipeline() {
		replicas = 1
	}
	g, err := graph.Build(graph.Config{Model: model, MicrobatchSize: 1, Microbatches: m, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	opts := sched.DefaultOptions(mode)
	opts.DeferBlockedUpdates = false // the idealized Fig. 5(c) timeline
	s, err := sched.Build(g, opts, n)
	if err != nil {
		t.Fatal(err)
	}
	box := hw.Commodity1080TiBox(n)
	box.GPUMemBytes = 22 << 10
	res, err := runtime.Run(runtime.Config{Box: box, Schedule: s, WarmupIters: 2, MeasureIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	var vol int64
	for d := 0; d < n; d++ {
		vol += res.PerDev[d].KindSwapIn[kind] + res.PerDev[d].KindSwapOut[kind]
	}
	return vol / 4 // warmup + measured iterations, steady state
}

func within(t *testing.T, name string, got, want int64, tol float64) {
	t.Helper()
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	if d > tol*float64(want) {
		t.Errorf("%s: simulated %d vs analytic %d (%.1f%% off, tol %.0f%%)",
			name, got, want, 100*d/float64(want), 100*tol)
	}
}

// The full Fig. 5(a) tensor-class model, not just weights: simulated
// gradient-buffer and optimizer-state volumes must match the closed
// forms for both the baseline and Harmony.
func TestPerKindVolumesMatchAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	model := models.Uniform("xc", 16, 1000, 4096, 1e9)
	for _, m := range []int{2, 4} {
		p := FromModel(model, 1, m, 1)

		// Weight gradients dW: (2m+2)|W| baseline, 2|W| Harmony.
		got := crossMeasure(t, sched.DPBaseline, m, 1, tensor.WeightGrad)
		within(t, "baseline dW", got, GradVolumeIdeal(DPBaseline, p), 0.10)
		got = crossMeasure(t, sched.HarmonyDP, m, 1, tensor.WeightGrad)
		within(t, "harmony dW", got, GradVolumeIdeal(HarmonyDP, p), 0.10)

		// Optimizer state K: 2|K| regardless of mode.
		got = crossMeasure(t, sched.DPBaseline, m, 1, tensor.OptState)
		within(t, "baseline K", got, OptStateVolumeIdeal(DPBaseline, p), 0.10)
		got = crossMeasure(t, sched.HarmonyDP, m, 1, tensor.OptState)
		within(t, "harmony K", got, OptStateVolumeIdeal(HarmonyDP, p), 0.10)

		// Stash: 2m|S| in both modes (inherent to virtualization).
		got = crossMeasure(t, sched.DPBaseline, m, 1, tensor.Stash)
		within(t, "baseline stash", got, StashVolumeIdeal(DPBaseline, p), 0.15)
	}
}

// The 1F1B-aware PPBaseline corrected form: the simulator's measured
// weight volume must sit within a few percent of Corrected (it was up
// to ~10% off under the old per-microbatch merge count, which ignored
// that warmup forwards run back-to-back without a bwd junction).
func TestPPCorrectedMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	for _, tc := range []struct{ R, m, n int }{
		{16, 4, 2}, {16, 4, 4}, {16, 8, 4}, {12, 4, 3}, {16, 2, 4},
	} {
		model := models.Uniform("xc", tc.R, 1000, 4096, 1e9)
		g, err := graph.Build(graph.Config{Model: model, MicrobatchSize: 1, Microbatches: tc.m, Replicas: 1})
		if err != nil {
			t.Fatal(err)
		}
		opts := sched.DefaultOptions(sched.PPBaseline)
		opts.DeferBlockedUpdates = false
		s, err := sched.Build(g, opts, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		box := hw.Commodity1080TiBox(tc.n)
		box.GPUMemBytes = 22 << 10
		res, err := runtime.Run(runtime.Config{Box: box, Schedule: s, WarmupIters: 2, MeasureIters: 2})
		if err != nil {
			t.Fatal(err)
		}
		var vol int64
		for d := 0; d < tc.n; d++ {
			vol += res.PerDev[d].KindSwapIn[tensor.Weight] + res.PerDev[d].KindSwapOut[tensor.Weight]
		}
		vol /= 4
		p := FromModel(model, 1, tc.m, tc.n)
		name := fmt.Sprintf("pp-baseline R=%d m=%d n=%d", tc.R, tc.m, tc.n)
		within(t, name, vol, WeightVolumeCorrected(PPBaseline, p), 0.02)
	}
}

// Speedup factors for the paper's headline configuration must match
// exactly what the simulator delivers (weight class, end to end).
func TestSpeedupMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	m := 4
	baseW := crossMeasure(t, sched.DPBaseline, m, 1, tensor.Weight)
	harmW := crossMeasure(t, sched.HarmonyDP, m, 1, tensor.Weight)
	gotSpeedup := float64(baseW) / float64(harmW)
	wantSpeedup := float64(4*m+2) / 3 // = 6
	d := gotSpeedup - wantSpeedup
	if d < 0 {
		d = -d
	}
	if d > 0.1*wantSpeedup {
		t.Fatalf("simulated weight-swap speedup %.2f, paper predicts %.2f", gotSpeedup, wantSpeedup)
	}
}
