package analytic

import (
	"testing"
	"testing/quick"

	"harmony/internal/models"
)

func uniformParams(R, m, n int) Params {
	return FromModel(models.Uniform("u", R, 1000, 4096, 1e6), 1, m, n)
}

func TestPaperHeadlineNumbers(t *testing.T) {
	// §3's worked example: R layers, m microbatches, N GPUs.
	p := uniformParams(16, 4, 4)
	W := p.WBytes
	if got, want := WeightVolumeIdeal(DPBaseline, p), int64(4*4+2)*4*W; got != want {
		t.Fatalf("DP baseline = %d, want (4m+2)N|W| = %d", got, want)
	}
	if got, want := WeightVolumeIdeal(HarmonyDP, p), int64(3)*4*W; got != want {
		t.Fatalf("Harmony-DP = %d, want 3N|W| = %d", got, want)
	}
	if got, want := WeightVolumeIdeal(HarmonyPP, p), 3*W; got != want {
		t.Fatalf("Harmony-PP = %d, want 3|W| = %d", got, want)
	}
	// Reduction factors: Harmony-DP saves (4m+2)/3 = 6x; Harmony-PP
	// additionally removes the factor N.
	if s := Speedup(HarmonyDP, p); s != 6 {
		t.Fatalf("Harmony-DP speedup = %v, want 6", s)
	}
	if s := Speedup(HarmonyPP, p); s != 24 {
		t.Fatalf("Harmony-PP speedup = %v, want 24", s)
	}
}

func TestCorrectedConvergesToIdeal(t *testing.T) {
	// The boundary correction is O(1/R): for deep models the two
	// forms agree.
	small := uniformParams(4, 4, 2)
	large := uniformParams(256, 4, 2)
	relGap := func(p Params) float64 {
		i := WeightVolumeIdeal(DPBaseline, p)
		c := WeightVolumeCorrected(DPBaseline, p)
		return float64(i-c) / float64(i)
	}
	if g := relGap(small); g < relGap(large) {
		t.Fatal("correction should shrink with depth")
	}
	if g := relGap(large); g > 0.01 {
		t.Fatalf("corrected form should converge to ideal: gap %.4f", g)
	}
}

func TestCorrectedNeverExceedsIdeal(t *testing.T) {
	f := func(rRaw, mRaw, nRaw uint8) bool {
		// A pipeline needs at least a few layers per stage for the
		// boundary correction to be meaningful (N stages cannot
		// exceed R layers anyway).
		n := int(nRaw%4) + 1
		R := int(rRaw%32) + 3*n
		p := uniformParams(R, int(mRaw%8)+1, n)
		for _, mode := range []Mode{DPBaseline, PPBaseline, HarmonyDP, HarmonyPP} {
			if WeightVolumeCorrected(mode, p) > WeightVolumeIdeal(mode, p) {
				return false
			}
			if WeightVolumeCorrected(mode, p) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDominanceOrdering(t *testing.T) {
	// Harmony-PP dominates all other modes for every class the paper
	// models (§3: "Harmony-PP dominates savings compared to all other
	// baselines").
	f := func(rRaw, mRaw, nRaw uint8) bool {
		R := int(rRaw%32) + 2
		m := int(mRaw%8) + 1
		n := int(nRaw%4) + 2 // at least 2 GPUs
		p := uniformParams(R, m, n)
		w := func(mode Mode) int64 { return WeightVolumeIdeal(mode, p) }
		if !(w(HarmonyPP) <= w(HarmonyDP) && w(HarmonyDP) <= w(DPBaseline)) {
			return false
		}
		if !(w(HarmonyPP) <= w(PPBaseline) && w(PPBaseline) <= w(DPBaseline)) {
			return false
		}
		return TotalVolumeIdeal(HarmonyPP, p) <= TotalVolumeIdeal(PPBaseline, p) &&
			TotalVolumeIdeal(HarmonyDP, p) <= TotalVolumeIdeal(DPBaseline, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGradAndOptState(t *testing.T) {
	p := uniformParams(8, 4, 2)
	if got, want := GradVolumeIdeal(DPBaseline, p), int64(2*4+2)*2*p.WBytes; got != want {
		t.Fatalf("grad baseline = %d, want %d", got, want)
	}
	if got, want := GradVolumeIdeal(HarmonyDP, p), int64(2)*2*p.WBytes; got != want {
		t.Fatalf("grad harmony = %d, want %d", got, want)
	}
	// Optimizer state cannot be reduced below 2|K| per weight copy.
	if OptStateVolumeIdeal(DPBaseline, p) != OptStateVolumeIdeal(HarmonyDP, p) {
		t.Fatal("optimizer volume should be mode-independent within DP")
	}
	if got, want := OptStateVolumeIdeal(HarmonyPP, p), 2*p.KBytes; got != want {
		t.Fatalf("opt state pp = %d, want %d", got, want)
	}
}

func TestCrossStageVolume(t *testing.T) {
	p := uniformParams(8, 4, 4)
	if CrossStageVolume(DPBaseline, p) != 0 || CrossStageVolume(HarmonyDP, p) != 0 {
		t.Fatal("DP has no stage boundaries")
	}
	want := 2 * int64(4) * int64(3) * p.BoundaryActBytes
	if got := CrossStageVolume(HarmonyPP, p); got != want {
		t.Fatalf("cross-stage = %d, want 2·m·(N-1)·|Y| = %d", got, want)
	}
	// Baseline PP pays the cross-stage traffic twice on the host
	// link; TotalVolumeIdeal accounts for it.
	basePP := TotalVolumeIdeal(PPBaseline, p)
	noXStage := WeightVolumeIdeal(PPBaseline, p) + GradVolumeIdeal(PPBaseline, p) +
		OptStateVolumeIdeal(PPBaseline, p) + StashVolumeIdeal(PPBaseline, p)
	if basePP != noXStage+2*want {
		t.Fatalf("PP baseline total should include host-bounced cross-stage bytes")
	}
}

func TestValidate(t *testing.T) {
	good := uniformParams(4, 2, 2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.R = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("R=0 accepted")
	}
	bad = good
	bad.WBytes = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative |W| accepted")
	}
}

func TestFromModel(t *testing.T) {
	m := models.Uniform("u", 8, 1000, 4096, 1e6)
	p := FromModel(m, 2, 4, 2)
	if p.R != 8 || p.M != 4 || p.N != 2 {
		t.Fatalf("shape = %+v", p)
	}
	if p.WBytes != m.WeightBytes() || p.KBytes != m.OptStateBytes() {
		t.Fatal("sizes mismatch")
	}
	if p.StashPerMB != m.ActivationBytes(2) {
		t.Fatal("stash mismatch")
	}
	if p.FirstWBytes != 4000 || p.LastWBytes != 4000 {
		t.Fatalf("boundary weights = %d/%d", p.FirstWBytes, p.LastWBytes)
	}
	if p.BoundaryActBytes != 4096*2 {
		t.Fatalf("boundary act = %d", p.BoundaryActBytes)
	}
}
