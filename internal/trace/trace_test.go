package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"harmony/internal/hw"
	"harmony/internal/sim"
)

func TestAddAndSpan(t *testing.T) {
	var tr Trace
	tr.Add(0, Compute, "F[L0]", 1, 2)
	tr.Add(1, SwapIn, "I W[L1]", 0.5, 1.5)
	lo, hi := tr.Span()
	if lo != 0.5 || hi != 2 {
		t.Fatalf("span = %v..%v", lo, hi)
	}
}

func TestEmptySpan(t *testing.T) {
	var tr Trace
	lo, hi := tr.Span()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty span = %v..%v", lo, hi)
	}
	if tr.Gantt(80) != "" {
		t.Fatal("empty gantt should be empty")
	}
}

func TestInvertedSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var tr Trace
	tr.Add(0, Compute, "x", 2, 1)
}

func TestWindowFiltersAndSorts(t *testing.T) {
	var tr Trace
	tr.Add(1, Compute, "b", 5, 6)
	tr.Add(0, Compute, "a", 1, 2)
	tr.Add(0, SwapIn, "c", 1, 3)
	got := tr.Window(0, 4)
	if len(got) != 2 {
		t.Fatalf("window returned %d events, want 2", len(got))
	}
	if got[0].Label != "a" || got[1].Label != "c" {
		t.Fatalf("order = %s, %s", got[0].Label, got[1].Label)
	}
}

func TestGanttRendering(t *testing.T) {
	var tr Trace
	tr.Add(0, Compute, "F[L0,mb0]", 0, 5)
	tr.Add(0, Compute, "B[L0,mb0]", 5, 10)
	tr.Add(1, SwapIn, "I W[L1]", 0, 3)
	g := tr.Gantt(20)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("gantt rows = %d:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[1], "gpu0") || !strings.Contains(lines[1], "compute") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[1], "F") || !strings.Contains(lines[1], "B") {
		t.Fatalf("compute row should show F and B: %q", lines[1])
	}
	if !strings.Contains(lines[2], "I") {
		t.Fatalf("swap row should show I: %q", lines[2])
	}
}

func TestCSV(t *testing.T) {
	var tr Trace
	tr.Add(hw.Host, P2P, "P X[L1,mb0]", 1, 2)
	csv := tr.CSV()
	if !strings.HasPrefix(csv, "device,lane,label,start_s,end_s\n") {
		t.Fatalf("csv = %q", csv)
	}
	if !strings.Contains(csv, "host,p2p,P X[L1,mb0],1.000000000,2.000000000") {
		t.Fatalf("csv body = %q", csv)
	}
}

// Property: every event lands in the gantt with at least one cell,
// and gantt width is respected.
func TestGanttCoversEveryEvent(t *testing.T) {
	f := func(startsRaw []uint16) bool {
		var tr Trace
		for i, s := range startsRaw {
			if i >= 12 {
				break
			}
			start := sim.Time(s) / 100
			tr.Add(hw.DeviceID(i%3), Lane(i%4), string(rune('a'+i)), start, start+1)
		}
		if len(tr.Events) == 0 {
			return true
		}
		g := tr.Gantt(40)
		for _, e := range tr.Events {
			if !strings.Contains(g, string(e.Label[0])) {
				return false
			}
		}
		for _, line := range strings.Split(g, "\n") {
			if len(line) > 120 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUsageSparkline(t *testing.T) {
	points := []UsagePoint{
		{At: 0, Bytes: 0},
		{At: 1, Bytes: 500},
		{At: 2, Bytes: 1000},
		{At: 3, Bytes: 1500}, // over capacity
		{At: 4, Bytes: 200},
	}
	s := UsageSparkline(points, 20, 1000)
	if s == "" {
		t.Fatal("empty sparkline")
	}
	if !strings.Contains(s, "!") {
		t.Fatalf("over-capacity marker missing: %q", s)
	}
	runes := []rune(s)
	if len(runes) != 20 {
		t.Fatalf("width = %d, want 20", len(runes))
	}
	// Empty inputs degrade gracefully.
	if UsageSparkline(nil, 10, 100) != "" {
		t.Fatal("nil points should render empty")
	}
	if UsageSparkline(points, 0, 100) != "" {
		t.Fatal("zero width should render empty")
	}
}

func TestUsageSparklineMonotoneHeights(t *testing.T) {
	// A rising staircase should produce non-decreasing glyph levels.
	var points []UsagePoint
	for i := 0; i <= 8; i++ {
		points = append(points, UsagePoint{At: sim.Time(i), Bytes: int64(i * 100)})
	}
	s := []rune(UsageSparkline(points, 9, 0))
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("sparkline not monotone: %q", string(s))
		}
	}
}

func TestChromeTrace(t *testing.T) {
	var tr Trace
	tr.Add(0, Compute, "F[L0,mb0]", 0.001, 0.002)
	tr.Add(1, SwapIn, "I W[L1]", 0, 0.0005)
	out, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(out, &evs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0]["ph"] != "X" || evs[0]["name"] != "F[L0,mb0]" {
		t.Fatalf("event 0 = %v", evs[0])
	}
	if evs[0]["dur"].(float64) != 1000 { // 1 ms in µs
		t.Fatalf("dur = %v", evs[0]["dur"])
	}
}

func TestCommOverlapFraction(t *testing.T) {
	var empty Trace
	if f := empty.CommOverlapFraction(); f != 0 {
		t.Fatalf("empty trace overlap = %v", f)
	}

	// Comms [0,4) on dev 0; compute [1,2) on dev 1 and [3,6) on dev 0:
	// 2 of 4 comm seconds overlap compute somewhere.
	var tr Trace
	tr.Add(0, Comms, "AR[L0]#0", 0, 4)
	tr.Add(1, Compute, "B[L1]", 1, 2)
	tr.Add(0, Compute, "B[L0]", 3, 6)
	if f := tr.CommOverlapFraction(); f != 0.5 {
		t.Fatalf("overlap = %v, want 0.5", f)
	}

	// Fully covered comms, including overlapping comm spans that must
	// be unioned rather than double counted.
	var full Trace
	full.Add(0, Comms, "c", 0, 2)
	full.Add(1, Comms, "c", 1, 3)
	full.Add(2, Compute, "b", 0, 3)
	if f := full.CommOverlapFraction(); f != 1 {
		t.Fatalf("covered overlap = %v, want 1", f)
	}

	// No compute at all: monolithic barrier shape.
	var bare Trace
	bare.Add(0, Comms, "c", 0, 1)
	if f := bare.CommOverlapFraction(); f != 0 {
		t.Fatalf("bare overlap = %v, want 0", f)
	}
}

func TestCommsLaneName(t *testing.T) {
	if Comms.String() != "comms" {
		t.Fatalf("Comms lane renders as %q", Comms.String())
	}
}
