package trace

import "time"

// Clock abstracts wall-clock reads for trace recording. The
// deterministic core (internal/exec, internal/sched, internal/nn,
// internal/fault) must never call time.Now directly — bit-exactness
// across goroutine interleavings is audited by the determinism
// analyzer (internal/analyzers) — so every timestamp it records flows
// through an injectable Clock instead. Recording is the only consumer:
// timestamps feed Gantt lanes and overlap counters, never scheduling
// or numeric decisions, which is what keeps wall time off the
// deterministic path.
type Clock interface {
	Now() time.Time
}

// WallClock is the production Clock: real wall time.
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }

// FrozenClock is a Clock stuck at a fixed instant, for tests that
// need trace spans without real time dependence. The zero value reads
// the zero time.
type FrozenClock struct {
	At time.Time
}

// Now returns the frozen instant.
func (c FrozenClock) Now() time.Time { return c.At }
