// Package trace records execution timelines (compute spans, swaps,
// p2p moves) and renders them as text Gantt charts and CSV — the
// mechanism behind the Fig. 4 schedule visualization.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"harmony/internal/hw"
	"harmony/internal/sim"
)

// Lane distinguishes parallel activity rows within one device.
type Lane int

const (
	// Compute is the kernel stream.
	Compute Lane = iota
	// SwapIn is host→device DMA.
	SwapIn
	// SwapOut is device→host DMA.
	SwapOut
	// P2P is device→device DMA (attributed to the receiving device).
	P2P
	// Fault marks an injected fault firing (zero-width span at the
	// injection instant; the label says which op and mode).
	Fault
	// Retry marks the retry layer re-attempting a faulted operation.
	Retry
	// Prefetch is host→device DMA issued ahead of demand by the async
	// swap engine (exec.VM.EnsureAsync); kept distinct from SwapIn so
	// overlap with the compute lane is visible at a glance.
	Prefetch
	// Adapt marks an adaptive-prefetch controller decision (window or
	// budget resize, zero-width span at the step boundary where it
	// was taken; the label says which knob moved and why).
	Adapt
	// Comms is the gradient-collective stream: one span per chunk
	// reduction (or per whole collective on the monolithic path),
	// attributed to the device worker that executed the reduction.
	// Kept distinct from Compute so collective/compute overlap is
	// visible at a glance and measurable (CommOverlapFraction).
	Comms
)

var laneNames = [...]string{"compute", "swap-in", "swap-out", "p2p", "fault", "retry", "prefetch", "adapt", "comms"}

func (l Lane) String() string {
	if int(l) < len(laneNames) {
		return laneNames[l]
	}
	return fmt.Sprintf("Lane(%d)", int(l))
}

// Event is one timeline span.
type Event struct {
	Dev        hw.DeviceID
	Lane       Lane
	Label      string
	Start, End sim.Time
}

// Trace accumulates events. Zero value is ready to use.
type Trace struct {
	Events []Event
}

// Add appends an event. Inverted spans are a programming error.
func (tr *Trace) Add(dev hw.DeviceID, lane Lane, label string, start, end sim.Time) {
	if end < start {
		panic(fmt.Sprintf("trace: inverted span %v..%v for %s", start, end, label))
	}
	tr.Events = append(tr.Events, Event{Dev: dev, Lane: lane, Label: label, Start: start, End: end})
}

// Window returns the events overlapping [from, to), sorted by start
// time (ties by device then lane).
func (tr *Trace) Window(from, to sim.Time) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.End > from && e.Start < to {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Dev != out[j].Dev {
			return out[i].Dev < out[j].Dev
		}
		return out[i].Lane < out[j].Lane
	})
	return out
}

// Span returns the earliest start and latest end across all events.
func (tr *Trace) Span() (sim.Time, sim.Time) {
	if len(tr.Events) == 0 {
		return 0, 0
	}
	lo, hi := tr.Events[0].Start, tr.Events[0].End
	for _, e := range tr.Events {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return lo, hi
}

// Gantt renders the trace as a text chart of the given width: one row
// per (device, lane) pair that has events, columns are time buckets.
// Each cell shows the first letter of the label of the event covering
// that bucket ('.' when idle).
func (tr *Trace) Gantt(width int) string {
	if width <= 0 || len(tr.Events) == 0 {
		return ""
	}
	lo, hi := tr.Span()
	if hi == lo {
		hi = lo + 1
	}
	scale := sim.Time(width) / (hi - lo)

	type key struct {
		dev  hw.DeviceID
		lane Lane
	}
	rows := map[key][]byte{}
	var keys []key
	for _, e := range tr.Events {
		k := key{e.Dev, e.Lane}
		if _, ok := rows[k]; !ok {
			row := make([]byte, width)
			for i := range row {
				row[i] = '.'
			}
			rows[k] = row
			keys = append(keys, k)
		}
		c := byte('?')
		if len(e.Label) > 0 {
			c = e.Label[0]
		}
		s := int(float64((e.Start - lo) * scale))
		if s >= width {
			// Zero-width events at the exact right edge still get a cell.
			s = width - 1
		}
		f := int(float64((e.End - lo) * scale))
		if f <= s {
			f = s + 1
		}
		if f > width {
			f = width
		}
		for i := s; i < f; i++ {
			rows[k][i] = c
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dev != keys[j].dev {
			return keys[i].dev < keys[j].dev
		}
		return keys[i].lane < keys[j].lane
	})
	var b strings.Builder
	fmt.Fprintf(&b, "time: %.6fs .. %.6fs (%d buckets)\n", float64(lo), float64(hi), width)
	for _, k := range keys {
		fmt.Fprintf(&b, "%-6s %-8s |%s|\n", k.dev, k.lane, rows[k])
	}
	return b.String()
}

// CSV emits "device,lane,label,start,end" rows sorted by start time.
func (tr *Trace) CSV() string {
	evs := tr.Window(0, sim.Infinity)
	var b strings.Builder
	b.WriteString("device,lane,label,start_s,end_s\n")
	for _, e := range evs {
		fmt.Fprintf(&b, "%s,%s,%s,%.9f,%.9f\n", e.Dev, e.Lane, e.Label, float64(e.Start), float64(e.End))
	}
	return b.String()
}

// UsagePoint is one sample of a device's resident bytes.
type UsagePoint struct {
	At    sim.Time
	Bytes int64
}

// UsageSparkline renders a memory-usage timeline as a fixed-width
// text sparkline (the "Mem Usage" bars of Fig. 2(c)). Each bucket
// shows the maximum usage within it, scaled against max(peak,
// capacity); buckets whose usage exceeds capacity render as '!'.
func UsageSparkline(points []UsagePoint, width int, capacity int64) string {
	if width <= 0 || len(points) == 0 {
		return ""
	}
	lo, hi := points[0].At, points[len(points)-1].At
	if hi == lo {
		hi = lo + 1
	}
	buckets := make([]int64, width)
	// Usage is a step function: carry each sample forward to the next.
	for i, p := range points {
		start := int(float64(p.At-lo) / float64(hi-lo) * float64(width))
		end := width
		if i+1 < len(points) {
			end = int(float64(points[i+1].At-lo) / float64(hi-lo) * float64(width))
		}
		if start >= width {
			start = width - 1
		}
		if end > width {
			end = width
		}
		if end <= start {
			end = start + 1
		}
		for b := start; b < end && b < width; b++ {
			if p.Bytes > buckets[b] {
				buckets[b] = p.Bytes
			}
		}
	}
	scale := capacity
	for _, b := range buckets {
		if b > scale {
			scale = b
		}
	}
	if scale == 0 {
		scale = 1
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, b := range buckets {
		if capacity > 0 && b > capacity {
			sb.WriteRune('!')
			continue
		}
		idx := int(float64(b) / float64(scale) * float64(len(levels)))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		if b > 0 && idx == 0 {
			idx = 1
		}
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}

// laneUnion returns the merged, sorted interval union of all spans on
// the given lane across every device.
func (tr *Trace) laneUnion(lane Lane) [][2]sim.Time {
	var iv [][2]sim.Time
	for _, e := range tr.Events {
		if e.Lane == lane && e.End > e.Start {
			iv = append(iv, [2]sim.Time{e.Start, e.End})
		}
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	var out [][2]sim.Time
	for _, v := range iv {
		if n := len(out); n > 0 && v[0] <= out[n-1][1] {
			if v[1] > out[n-1][1] {
				out[n-1][1] = v[1]
			}
			continue
		}
		out = append(out, v)
	}
	return out
}

// CommOverlapFraction measures how much of the gradient-collective
// work was hidden behind compute: the fraction of the Comms lane's
// busy time (interval union across devices) during which at least one
// device's Compute lane was also busy. A monolithic rendezvous — all
// workers parked while the last arriver reduces — scores ~0; chunked
// collectives that let finished workers continue their compute stream
// score higher. Returns 0 when the trace has no Comms spans.
func (tr *Trace) CommOverlapFraction() float64 {
	comms := tr.laneUnion(Comms)
	if len(comms) == 0 {
		return 0
	}
	compute := tr.laneUnion(Compute)
	var total, overlap sim.Time
	j := 0
	for _, c := range comms {
		total += c[1] - c[0]
		for ; j < len(compute) && compute[j][1] <= c[0]; j++ {
		}
		for k := j; k < len(compute) && compute[k][0] < c[1]; k++ {
			lo, hi := compute[k][0], compute[k][1]
			if lo < c[0] {
				lo = c[0]
			}
			if hi > c[1] {
				hi = c[1]
			}
			if hi > lo {
				overlap += hi - lo
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(overlap) / float64(total)
}

// chromeEvent is one "complete" event in the Chrome tracing format
// (chrome://tracing, Perfetto). Durations are microseconds.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// ChromeTrace serializes the trace in the Chrome tracing JSON array
// format: load the output in chrome://tracing or Perfetto to inspect
// schedules interactively. Devices map to processes and lanes to
// threads.
func (tr *Trace) ChromeTrace() ([]byte, error) {
	evs := make([]chromeEvent, 0, len(tr.Events))
	for _, e := range tr.Events {
		pid := int(e.Dev)
		if e.Dev == hw.Host {
			pid = 9999
		}
		evs = append(evs, chromeEvent{
			Name: e.Label,
			Cat:  e.Lane.String(),
			Ph:   "X",
			Ts:   float64(e.Start) * 1e6,
			Dur:  float64(e.End-e.Start) * 1e6,
			PID:  pid,
			TID:  int(e.Lane),
		})
	}
	return json.Marshal(evs)
}
