package graph

import (
	"testing"

	"harmony/internal/models"
	"harmony/internal/tensor"
)

func tpGraph(t *testing.T, R, m, K int) *Graph {
	t.Helper()
	g, err := Build(Config{
		Model:          models.Uniform("tp", R, 1200, 4096, 1e6),
		MicrobatchSize: 2,
		Microbatches:   m,
		Replicas:       1,
		OpShards:       K,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTPValidation(t *testing.T) {
	if _, err := Build(Config{
		Model: models.Uniform("x", 2, 100, 100, 1e3), MicrobatchSize: 1,
		Microbatches: 1, Replicas: 2, OpShards: 2,
	}); err == nil {
		t.Fatal("sharding with multiple replicas accepted")
	}
	if _, err := Build(Config{
		Model: models.Uniform("x", 2, 100, 100, 1e3), MicrobatchSize: 1,
		Microbatches: 1, Replicas: 1, OpShards: -1,
	}); err == nil {
		t.Fatal("negative shards accepted")
	}
}

func TestTPTaskCounts(t *testing.T) {
	R, m, K := 4, 3, 2
	g := tpGraph(t, R, m, K)
	// K·R·m forwards + K·R·m backwards + K·R updates +
	// R·m forward gathers + (R−1)·m backward gathers.
	want := K*R*m*2 + K*R + R*m + (R-1)*m
	if len(g.Tasks) != want {
		t.Fatalf("tasks = %d, want %d", len(g.Tasks), want)
	}
	if _, err := g.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
}

func TestTPWeightsPartitionedExactly(t *testing.T) {
	g := tpGraph(t, 4, 2, 3)
	// Shards must partition the weights exactly: total unchanged.
	model := models.Uniform("tp", 4, 1200, 4096, 1e6)
	if got, want := g.Reg.TotalBytes(tensor.Weight), model.WeightBytes(); got != want {
		t.Fatalf("sharded weights sum to %d, want %d", got, want)
	}
	// 1200 params = 4800 bytes over 3 shards = 1600 each.
	for s := 0; s < 3; s++ {
		if g.W[s][0].Bytes != 1600 {
			t.Fatalf("shard %d weight = %d", s, g.W[s][0].Bytes)
		}
	}
	// Uneven division spreads the remainder.
	g2 := tpGraph(t, 2, 1, 3)
	var partialSum int64
	for s := 0; s < 3; s++ {
		partialSum += g2.PartialAct[s][1][0].Bytes
	}
	if partialSum != g2.Act[0][1][0].Bytes {
		t.Fatalf("partials sum to %d, want full activation %d", partialSum, g2.Act[0][1][0].Bytes)
	}
}

func TestTPFlopsDividedAcrossShards(t *testing.T) {
	g := tpGraph(t, 2, 1, 2)
	full := MustBuild(Config{
		Model:          models.Uniform("tp", 2, 1200, 4096, 1e6),
		MicrobatchSize: 2, Microbatches: 1, Replicas: 1,
	})
	if got, want := g.Fwd[0][0][0].FLOPs, full.Fwd[0][0][0].FLOPs/2; got != want {
		t.Fatalf("shard FLOPs = %v, want half of %v", got, full.Fwd[0][0][0].FLOPs)
	}
}

func TestTPGatherStructure(t *testing.T) {
	g := tpGraph(t, 3, 2, 2)
	ag := g.AGf[1][0]
	if ag.Kind != Gather {
		t.Fatalf("AGf kind = %v", ag.Kind)
	}
	if len(ag.Inputs) != 2 || len(ag.Outputs) != 2 || len(ag.Frees) != 2 {
		t.Fatalf("gather arity: in=%d out=%d frees=%d", len(ag.Inputs), len(ag.Outputs), len(ag.Frees))
	}
	// Inputs are the partials; outputs the full replicas.
	if ag.Inputs[0] != g.PartialAct[0][1][0] || ag.Outputs[1] != g.Act[1][1][0] {
		t.Fatal("gather wiring wrong")
	}
	// Comm is the full activation (sum of partials).
	if ag.CommBytes != g.Act[0][1][0].Bytes {
		t.Fatalf("gather comm = %d, want %d", ag.CommBytes, g.Act[0][1][0].Bytes)
	}
	// The next layer's forward on each shard depends on the gather.
	found := false
	for _, d := range g.Fwd[1][1][0].Deps {
		if d == ag {
			found = true
		}
	}
	if !found {
		t.Fatal("next forward missing gather dependency")
	}
	// Backward gathers exist for interior layers only.
	if g.AGb[1][0] == nil || g.AGb[1][0].Kind != Gather {
		t.Fatal("AGb missing for interior layer")
	}
}

func TestTPNoAllReduce(t *testing.T) {
	g := tpGraph(t, 3, 2, 2)
	if g.AR != nil {
		t.Fatal("sharded graph must not all-reduce (weights are partitioned)")
	}
	// Updates depend only on the shard's own backwards.
	u := g.Upd[1][0]
	if len(u.Deps) != 2 {
		t.Fatalf("update deps = %d, want m=2", len(u.Deps))
	}
	for _, d := range u.Deps {
		if d.Kind != Backward || d.Replica != 1 {
			t.Fatalf("update dep %s should be shard 1's backward", d)
		}
	}
}

func TestTPEveryTransientFreed(t *testing.T) {
	g := tpGraph(t, 3, 2, 2)
	freed := map[int]int{}
	for _, task := range g.Tasks {
		for _, f := range task.Frees {
			freed[f.ID]++
		}
	}
	for _, tt := range g.Reg.All() {
		if tt.Kind.IsPersistent() {
			if freed[tt.ID] != 0 {
				t.Fatalf("persistent %s freed", tt)
			}
			continue
		}
		if tt.Kind == tensor.Activation && tt.Layer == 0 {
			continue // input replicas, freed by the runtime
		}
		if freed[tt.ID] != 1 {
			t.Fatalf("transient %s freed %d times", tt, freed[tt.ID])
		}
	}
}
