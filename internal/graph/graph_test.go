package graph

import (
	"testing"
	"testing/quick"

	"harmony/internal/models"
	"harmony/internal/tensor"
)

func toyModel(layers int) *models.Model {
	return models.Uniform("toy", layers, 1000, 4096, 1e6)
}

func TestBuildShapes(t *testing.T) {
	g := MustBuild(Config{Model: toyModel(4), MicrobatchSize: 2, Microbatches: 3, Replicas: 2})
	R, m, N := 4, 3, 2
	// FWD + BWD per (replica, layer, microbatch); UPD per (replica,
	// layer); AR per layer.
	want := N*R*m*2 + N*R + R
	if len(g.Tasks) != want {
		t.Fatalf("tasks = %d, want %d", len(g.Tasks), want)
	}
	if g.Layers() != R {
		t.Fatalf("Layers = %d", g.Layers())
	}
	if g.Cfg.MiniBatch() != 2*3*2 {
		t.Fatalf("MiniBatch = %d", g.Cfg.MiniBatch())
	}
	// Single replica: no AllReduce.
	g1 := MustBuild(Config{Model: toyModel(4), MicrobatchSize: 2, Microbatches: 3, Replicas: 1})
	if g1.AR != nil {
		t.Fatal("single replica should have no AllReduce tasks")
	}
	for _, task := range g1.Tasks {
		if task.Kind == AllReduce {
			t.Fatal("AllReduce task in single-replica graph")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	base := Config{Model: toyModel(2), MicrobatchSize: 1, Microbatches: 1, Replicas: 1}
	bad := []Config{
		{},
		{Model: toyModel(2), Microbatches: 1, Replicas: 1},
		{Model: toyModel(2), MicrobatchSize: 1, Replicas: 1},
		{Model: toyModel(2), MicrobatchSize: 1, Microbatches: 1},
	}
	if _, err := Build(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for i, c := range bad {
		if _, err := Build(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDependencyStructure(t *testing.T) {
	g := MustBuild(Config{Model: toyModel(3), MicrobatchSize: 1, Microbatches: 2, Replicas: 2})
	// Forward chain within a microbatch.
	f := g.Fwd[1][2][1]
	if len(f.Deps) != 1 || f.Deps[0] != g.Fwd[1][1][1] {
		t.Fatalf("FWD deps = %v", f.Deps)
	}
	// Backward of an interior layer depends on next layer's backward
	// and its own forward.
	b := g.Bwd[0][1][0]
	depSet := map[*Task]bool{}
	for _, d := range b.Deps {
		depSet[d] = true
	}
	if !depSet[g.Bwd[0][2][0]] || !depSet[g.Fwd[0][1][0]] {
		t.Fatalf("BWD[L1] deps = %v", b.Deps)
	}
	// Last layer's backward consumes no gradient tensor.
	last := g.Bwd[0][2][0]
	for _, in := range last.Inputs {
		if in.Kind == tensor.ActivationGrad {
			t.Fatal("last-layer backward should not consume a gradient tensor")
		}
	}
	// AllReduce depends on all replicas' backwards for its layer.
	ar := g.AR[1]
	if len(ar.Deps) != 2*2 {
		t.Fatalf("AR deps = %d, want 4", len(ar.Deps))
	}
	// Update depends on AllReduce in DP mode.
	u := g.Upd[1][1]
	if len(u.Deps) != 1 || u.Deps[0] != ar {
		t.Fatalf("UPD deps = %v, want [AR]", u.Deps)
	}
	// Update mutates W, dW and K.
	if len(u.Mutates) != 3 {
		t.Fatalf("UPD mutates %d tensors, want 3", len(u.Mutates))
	}
}

func TestUpdateDependsOnBackwardsWithoutAR(t *testing.T) {
	g := MustBuild(Config{Model: toyModel(2), MicrobatchSize: 1, Microbatches: 3, Replicas: 1})
	u := g.Upd[0][1]
	if len(u.Deps) != 3 {
		t.Fatalf("UPD deps = %d, want 3 (one per microbatch)", len(u.Deps))
	}
}

func TestAcyclicAndComplete(t *testing.T) {
	g := MustBuild(Config{Model: toyModel(5), MicrobatchSize: 2, Microbatches: 4, Replicas: 3})
	order, err := g.CheckAcyclic()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(g.Tasks) {
		t.Fatalf("topo order %d tasks, want %d", len(order), len(g.Tasks))
	}
	pos := make(map[*Task]int)
	for i, task := range order {
		pos[task] = i
	}
	for _, task := range g.Tasks {
		for _, d := range task.Deps {
			if pos[d] >= pos[task] {
				t.Fatalf("%s scheduled before its dep %s", task, d)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := MustBuild(Config{Model: toyModel(2), MicrobatchSize: 1, Microbatches: 1, Replicas: 1})
	// Artificially create a cycle.
	a, b := g.Tasks[0], g.Tasks[1]
	a.Deps = append(a.Deps, b)
	b.Succs = append(b.Succs, a)
	if _, err := g.CheckAcyclic(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestTensorAccounting(t *testing.T) {
	m := toyModel(3)
	g := MustBuild(Config{Model: m, MicrobatchSize: 2, Microbatches: 2, Replicas: 2})
	// Per replica: R weights of 4000 bytes.
	if got, want := g.Reg.TotalBytes(tensor.Weight), int64(2*3*4000); got != want {
		t.Fatalf("weight bytes = %d, want %d", got, want)
	}
	// Optimizer state is 2x weights (Adam).
	if got, want := g.Reg.TotalBytes(tensor.OptState), int64(2*2*3*4000); got != want {
		t.Fatalf("opt state bytes = %d, want %d", got, want)
	}
	// Gradient tensors exist only for interior activations.
	nGrad := 0
	for _, tt := range g.Reg.All() {
		if tt.Kind == tensor.ActivationGrad {
			nGrad++
		}
	}
	if want := 2 * 2 * (3 - 1); nGrad != want { // N * m * (R-1)
		t.Fatalf("gradient tensors = %d, want %d", nGrad, want)
	}
	// Persistent + input tensors are well formed.
	for _, p := range g.PersistentTensors() {
		if !p.Kind.IsPersistent() {
			t.Fatalf("%s in PersistentTensors", p)
		}
	}
	ins := g.InputTensors()
	if len(ins) != 2*2 { // N * m
		t.Fatalf("input tensors = %d, want 4", len(ins))
	}
	for _, in := range ins {
		if in.Bytes != m.SampleBytes*2 {
			t.Fatalf("input size %d, want %d", in.Bytes, m.SampleBytes*2)
		}
	}
}

func TestEveryTransientTensorIsFreed(t *testing.T) {
	g := MustBuild(Config{Model: toyModel(4), MicrobatchSize: 1, Microbatches: 2, Replicas: 2})
	freed := map[int]int{}
	for _, task := range g.Tasks {
		for _, f := range task.Frees {
			freed[f.ID]++
		}
	}
	for _, tt := range g.Reg.All() {
		if tt.Kind.IsPersistent() {
			if freed[tt.ID] != 0 {
				t.Fatalf("persistent tensor %s freed by a task", tt)
			}
			continue
		}
		if tt.Kind == tensor.Activation && tt.Layer == 0 {
			// Act[0] is the model input batch, owned by the data
			// loader; the runtime frees it at iteration end.
			continue
		}
		if freed[tt.ID] != 1 {
			t.Fatalf("transient tensor %s freed %d times, want exactly once", tt, freed[tt.ID])
		}
	}
}

// Property: graph size formula holds for arbitrary shapes and the
// graph is always acyclic.
func TestBuildProperty(t *testing.T) {
	f := func(rRaw, mRaw, nRaw uint8) bool {
		R := int(rRaw%6) + 1
		m := int(mRaw%4) + 1
		N := int(nRaw%3) + 1
		g, err := Build(Config{Model: toyModel(R), MicrobatchSize: 1, Microbatches: m, Replicas: N})
		if err != nil {
			return false
		}
		want := N*R*m*2 + N*R
		if N > 1 {
			want += R
		}
		if len(g.Tasks) != want {
			return false
		}
		_, err = g.CheckAcyclic()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRecomputeShrinksStashAndRaisesBwdFLOPs(t *testing.T) {
	m := models.Transformer(models.TransformerConfig{
		Name: "rc", NumLayers: 4, Hidden: 256, SeqLen: 64, Vocab: 1000,
	})
	plain := MustBuild(Config{Model: m, MicrobatchSize: 2, Microbatches: 2, Replicas: 1})
	rc := MustBuild(Config{Model: m, MicrobatchSize: 2, Microbatches: 2, Replicas: 1, Recompute: true})

	plainStash := plain.Reg.TotalBytes(tensor.Stash)
	rcStash := rc.Reg.TotalBytes(tensor.Stash)
	if rcStash >= plainStash {
		t.Fatalf("recompute stash %d should be far below plain %d", rcStash, plainStash)
	}
	// Backward costs one extra forward.
	pb := plain.Bwd[0][1][0]
	rb := rc.Bwd[0][1][0]
	spec := m.Layers[1]
	wantExtra := spec.FwdFLOPsPerSample * 2
	if got := rb.FLOPs - pb.FLOPs; got != wantExtra {
		t.Fatalf("recompute extra FLOPs = %v, want %v", got, wantExtra)
	}
	// Recompute needs workspace for the regenerated intermediates.
	if rb.WorkspaceBytes <= pb.WorkspaceBytes {
		t.Fatal("recompute should reserve extra workspace")
	}
	// Forward tasks are unchanged.
	if plain.Fwd[0][1][0].FLOPs != rc.Fwd[0][1][0].FLOPs {
		t.Fatal("recompute must not change forward cost")
	}
}

func TestRecomputeStashIsCheckpointSized(t *testing.T) {
	m := models.Uniform("u", 3, 1000, 4096, 1e6)
	rc := MustBuild(Config{Model: m, MicrobatchSize: 2, Microbatches: 1, Replicas: 1, Recompute: true})
	// Layer 1's checkpoint is its input activation: layer 0's output.
	want := m.Layers[0].ActBytesPerSample * 2
	if got := rc.Stash[0][1][0].Bytes; got != want {
		t.Fatalf("checkpoint = %d, want input size %d", got, want)
	}
	// Layer 0's checkpoint is the sample batch.
	if got := rc.Stash[0][0][0].Bytes; got != m.SampleBytes*2 {
		t.Fatalf("layer-0 checkpoint = %d, want %d", got, m.SampleBytes*2)
	}
}

func TestMustBuildPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustBuild(Config{})
}

func TestMiniBatchForTP(t *testing.T) {
	c := Config{Model: toyModel(2), MicrobatchSize: 2, Microbatches: 3, Replicas: 1, OpShards: 4}
	if c.MiniBatch() != 6 {
		t.Fatalf("TP mini-batch = %d, want 6 (shards split work, not data)", c.MiniBatch())
	}
}
