package graph

import (
	"fmt"

	"harmony/internal/models"
	"harmony/internal/tensor"
)

// buildTP decomposes each layer operation into OpShards subtasks
// (the paper's second key idea): every shard holds 1/K of the layer's
// weights, gradients, optimizer state and stash, computes 1/K of the
// layer's FLOPs producing a partial output slice, and an all-gather
// task combines the K partials into a full activation replica on
// every shard's device (Megatron-style column parallelism with
// explicit gathers). The backward pass mirrors the structure with
// gradient partials and gathers. The shard index lives in the
// Graph's replica dimension so schedulers and the runtime reuse the
// data-parallel machinery.
func buildTP(cfg Config) (*Graph, error) {
	g := &Graph{Cfg: cfg, Reg: tensor.NewRegistry()}
	R := len(cfg.Model.Layers)
	K := cfg.OpShards
	m := cfg.Microbatches
	mb := int64(cfg.MicrobatchSize)

	newTask := func(k Kind, shard, layer, microbatch int) *Task {
		t := &Task{ID: len(g.Tasks), Kind: k, Replica: shard, Layer: layer, Microbatch: microbatch}
		g.Tasks = append(g.Tasks, t)
		return t
	}
	dep := func(t, on *Task) {
		t.Deps = append(t.Deps, on)
		on.Succs = append(on.Succs, t)
	}
	// shardBytes splits b across K shards exactly (remainder spread
	// over the lowest shards).
	shardBytes := func(b int64, s int) int64 {
		out := b / int64(K)
		if int64(s) < b%int64(K) {
			out++
		}
		return out
	}

	// Tensors. Shards reuse the replica dimension.
	g.W = make([][]*tensor.Tensor, K)
	g.DW = make([][]*tensor.Tensor, K)
	g.K = make([][]*tensor.Tensor, K)
	g.Act = make([][][]*tensor.Tensor, K)
	g.Stash = make([][][]*tensor.Tensor, K)
	g.Grad = make([][][]*tensor.Tensor, K)
	g.PartialAct = make([][][]*tensor.Tensor, K)
	g.PartialGrad = make([][][]*tensor.Tensor, K)
	for s := 0; s < K; s++ {
		g.W[s] = make([]*tensor.Tensor, R)
		g.DW[s] = make([]*tensor.Tensor, R)
		g.K[s] = make([]*tensor.Tensor, R)
		g.Act[s] = make([][]*tensor.Tensor, R+1)
		g.Stash[s] = make([][]*tensor.Tensor, R)
		g.Grad[s] = make([][]*tensor.Tensor, R+1)
		g.PartialAct[s] = make([][]*tensor.Tensor, R+1)
		g.PartialGrad[s] = make([][]*tensor.Tensor, R+1)
		for l := 0; l < R; l++ {
			spec := cfg.Model.Layers[l]
			wb := shardBytes(spec.WeightBytes(), s)
			g.W[s][l] = g.Reg.New(fmt.Sprintf("s%d.W.L%d", s, l), tensor.Weight, wb, l, -1)
			g.DW[s][l] = g.Reg.New(fmt.Sprintf("s%d.dW.L%d", s, l), tensor.WeightGrad, wb, l, -1)
			kb := int64(float64(wb) * cfg.Model.OptStateParamsFactor)
			g.K[s][l] = g.Reg.New(fmt.Sprintf("s%d.K.L%d", s, l), tensor.OptState, kb, l, -1)
		}
		for l := 0; l <= R; l++ {
			g.Act[s][l] = make([]*tensor.Tensor, m)
			g.Grad[s][l] = make([]*tensor.Tensor, m)
			g.PartialAct[s][l] = make([]*tensor.Tensor, m)
			g.PartialGrad[s][l] = make([]*tensor.Tensor, m)
			if l < R {
				g.Stash[s][l] = make([]*tensor.Tensor, m)
			}
			var actBytes int64
			if l == 0 {
				actBytes = cfg.Model.SampleBytes * mb
			} else {
				actBytes = cfg.Model.Layers[l-1].ActBytesPerSample * mb
			}
			for i := 0; i < m; i++ {
				// Full activation replica on each shard. Layer 0 is
				// the input batch, replicated by the data loader.
				g.Act[s][l][i] = g.Reg.New(fmt.Sprintf("s%d.A.L%d.mb%d", s, l, i), tensor.Activation, actBytes, l, i)
				if l >= 1 {
					g.PartialAct[s][l][i] = g.Reg.New(fmt.Sprintf("s%d.PA.L%d.mb%d", s, l, i),
						tensor.Activation, shardBytes(actBytes, s), l, i)
				}
				if l >= 1 && l <= R-1 {
					g.Grad[s][l][i] = g.Reg.New(fmt.Sprintf("s%d.G.L%d.mb%d", s, l, i),
						tensor.ActivationGrad, actBytes, l, i)
					g.PartialGrad[s][l][i] = g.Reg.New(fmt.Sprintf("s%d.PG.L%d.mb%d", s, l, i),
						tensor.ActivationGrad, shardBytes(actBytes, s), l, i)
				}
				if l < R {
					sb := cfg.Model.Layers[l].StashBytesPerSample * mb
					if cfg.Recompute {
						sb = actBytes
					}
					g.Stash[s][l][i] = g.Reg.New(fmt.Sprintf("s%d.S.L%d.mb%d", s, l, i),
						tensor.Stash, shardBytes(sb, s), l, i)
				}
			}
		}
	}

	// Forward subtasks and forward gathers.
	g.Fwd = make([][][]*Task, K)
	g.Bwd = make([][][]*Task, K)
	g.Upd = make([][]*Task, K)
	for s := 0; s < K; s++ {
		g.Fwd[s] = make([][]*Task, R)
		g.Bwd[s] = make([][]*Task, R)
		g.Upd[s] = make([]*Task, R)
		for l := 0; l < R; l++ {
			g.Fwd[s][l] = make([]*Task, m)
			g.Bwd[s][l] = make([]*Task, m)
		}
	}
	g.AGf = make([][]*Task, R+1)
	g.AGb = make([][]*Task, R+1)
	for l := 1; l <= R; l++ {
		g.AGf[l] = make([]*Task, m)
	}
	for l := 1; l <= R-1; l++ {
		g.AGb[l] = make([]*Task, m)
	}

	for l := 0; l < R; l++ {
		spec := cfg.Model.Layers[l]
		for i := 0; i < m; i++ {
			for s := 0; s < K; s++ {
				f := newTask(Forward, s, l, i)
				f.FLOPs = spec.FwdFLOPsPerSample * float64(mb) / float64(K)
				f.WorkspaceBytes = spec.WorkspaceBytes / int64(K)
				f.Inputs = []*tensor.Tensor{g.W[s][l], g.Act[s][l][i]}
				f.Outputs = []*tensor.Tensor{g.PartialAct[s][l+1][i], g.Stash[s][l][i]}
				if l > 0 {
					dep(f, g.AGf[l][i])
					// Each shard's input replica dies with its
					// forward; the stash retains what backward needs.
					f.Frees = append(f.Frees, g.Act[s][l][i])
				}
				g.Fwd[s][l][i] = f
			}
			// Gather the partial outputs into full replicas.
			ag := newTask(Gather, -1, l+1, i)
			ag.CommBytes = 0
			for s := 0; s < K; s++ {
				ag.CommBytes += g.PartialAct[s][l+1][i].Bytes
				ag.Inputs = append(ag.Inputs, g.PartialAct[s][l+1][i])
				ag.Outputs = append(ag.Outputs, g.Act[s][l+1][i])
				ag.Frees = append(ag.Frees, g.PartialAct[s][l+1][i])
				dep(ag, g.Fwd[s][l][i])
			}
			g.AGf[l+1][i] = ag
		}
	}

	// Backward subtasks and backward gathers, in reverse layer order.
	for l := R - 1; l >= 0; l-- {
		spec := cfg.Model.Layers[l]
		for i := 0; i < m; i++ {
			for s := 0; s < K; s++ {
				b := newTask(Backward, s, l, i)
				b.FLOPs = spec.FwdFLOPsPerSample * float64(mb) * models.BwdFLOPsFactor / float64(K)
				b.WorkspaceBytes = spec.WorkspaceBytes / int64(K)
				if cfg.Recompute {
					b.FLOPs += spec.FwdFLOPsPerSample * float64(mb) / float64(K)
				}
				b.Inputs = []*tensor.Tensor{g.W[s][l], g.DW[s][l], g.Stash[s][l][i]}
				switch {
				case l == R-1:
					// Loss gradient from this shard's replica of the
					// final activations.
					b.Inputs = append(b.Inputs, g.Act[s][R][i])
					dep(b, g.AGf[R][i])
					b.Frees = append(b.Frees, g.Act[s][R][i])
				default:
					b.Inputs = append(b.Inputs, g.Grad[s][l+1][i])
					dep(b, g.AGb[l+1][i])
					b.Frees = append(b.Frees, g.Grad[s][l+1][i])
				}
				if l > 0 {
					b.Outputs = []*tensor.Tensor{g.PartialGrad[s][l][i]}
				}
				b.Mutates = []*tensor.Tensor{g.DW[s][l]}
				b.Frees = append(b.Frees, g.Stash[s][l][i])
				dep(b, g.Fwd[s][l][i])
				g.Bwd[s][l][i] = b
			}
			if l > 0 {
				ag := newTask(Gather, -1, l, i)
				for s := 0; s < K; s++ {
					ag.CommBytes += g.PartialGrad[s][l][i].Bytes
					ag.Inputs = append(ag.Inputs, g.PartialGrad[s][l][i])
					ag.Outputs = append(ag.Outputs, g.Grad[s][l][i])
					ag.Frees = append(ag.Frees, g.PartialGrad[s][l][i])
					dep(ag, g.Bwd[s][l][i])
				}
				g.AGb[l][i] = ag
			}
		}
	}

	// Per-shard updates: no all-reduce, every shard owns its slice.
	for s := 0; s < K; s++ {
		for l := 0; l < R; l++ {
			u := newTask(Update, s, l, -1)
			u.FLOPs = float64(cfg.Model.Layers[l].Params) * models.UpdateFLOPsPerParam / float64(K)
			u.Inputs = []*tensor.Tensor{g.W[s][l], g.DW[s][l], g.K[s][l]}
			u.Mutates = []*tensor.Tensor{g.W[s][l], g.DW[s][l], g.K[s][l]}
			for i := 0; i < m; i++ {
				dep(u, g.Bwd[s][l][i])
			}
			g.Upd[s][l] = u
		}
	}
	return g, nil
}
