// Package graph implements Harmony's Task Decomposer (paper Fig. 3):
// it refines a model into a fine-grained task graph that decouples
// forward, backward and weight-update per layer per microbatch, with
// dependencies encoded as graph edges. These tasks are the unit of
// scheduling; schedulers (internal/sched) order them and late-bind
// them to devices.
//
// The same graph serves every execution mode: baseline data-parallel,
// baseline pipeline-parallel, Harmony-DP and Harmony-PP differ only in
// task ordering, device binding, and memory policy.
package graph

import (
	"fmt"

	"harmony/internal/models"
	"harmony/internal/tensor"
)

// Kind is the task type.
type Kind int

const (
	// Forward computes layer l's output for one microbatch.
	Forward Kind = iota
	// Backward computes input gradients and accumulates weight
	// gradients for one microbatch.
	Backward
	// Update applies the optimizer to one layer's weights.
	Update
	// AllReduce averages one layer's weight gradients across
	// data-parallel replicas.
	AllReduce
	// Gather all-gathers per-shard partial tensors into full copies
	// on every shard's device (intra-op sharding).
	Gather
)

var kindNames = [...]string{"FWD", "BWD", "UPD", "AR", "AG"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Task is one schedulable unit.
type Task struct {
	ID   int
	Kind Kind
	// Replica is the data-parallel replica the task belongs to
	// (always 0 in pipeline mode). AllReduce tasks span replicas and
	// use -1.
	Replica int
	// Layer is the layer index; Microbatch is -1 for Update and
	// AllReduce.
	Layer      int
	Microbatch int

	// FLOPs is the compute cost (0 for AllReduce; its cost is
	// communication, computed by the collective package from
	// CommBytes).
	FLOPs float64
	// CommBytes is the per-replica payload for AllReduce tasks.
	CommBytes int64
	// WorkspaceBytes must be free on the device while running.
	WorkspaceBytes int64

	// Inputs must be resident (and are pinned) while the task runs.
	Inputs []*tensor.Tensor
	// Outputs are produced on the device by the task.
	Outputs []*tensor.Tensor
	// Mutates are inputs modified in place (marked dirty).
	Mutates []*tensor.Tensor
	// Frees are tensors whose last use is this task; the runtime
	// destroys them on completion.
	Frees []*tensor.Tensor

	// Deps are tasks that must complete first.
	Deps []*Task
	// Succs is the reverse adjacency, filled by the builder.
	Succs []*Task
}

func (t *Task) String() string {
	switch t.Kind {
	case Update:
		return fmt.Sprintf("UPD[r%d,L%d]", t.Replica, t.Layer)
	case AllReduce:
		return fmt.Sprintf("AR[L%d]", t.Layer)
	case Gather:
		return fmt.Sprintf("AG[L%d,mb%d]", t.Layer, t.Microbatch)
	default:
		return fmt.Sprintf("%s[r%d,L%d,mb%d]", t.Kind, t.Replica, t.Layer, t.Microbatch)
	}
}

// Config describes one training iteration to decompose.
type Config struct {
	Model *models.Model
	// MicrobatchSize is samples per microbatch; Microbatches is m,
	// the number of microbatches each replica processes per
	// iteration (the grouping window of Harmony's input-batch
	// grouping).
	MicrobatchSize int
	Microbatches   int
	// Replicas is N for data parallelism; use 1 for pipeline
	// parallelism (a single model copy whose layers are spread
	// across devices).
	Replicas int

	// Recompute enables activation recomputation (Chen et al.,
	// cited as [7] by the paper): the stash shrinks to just each
	// layer's input (the checkpoint) and the backward pass re-runs
	// the forward computation, trading FLOPs for memory — the other
	// end of the §4 memory–performance tango.
	Recompute bool

	// OpShards > 1 decomposes each individual operation into that
	// many subtasks running on different devices (the paper's second
	// key idea: "we further decompose individual operations—such as
	// a matrix multiplication—into subtasks"). Weights, gradients,
	// optimizer state and stash are partitioned across shards;
	// partial layer outputs are combined by all-gather tasks.
	// Requires Replicas == 1 (shards replace data-parallel
	// replicas). The shard index reuses the replica dimension of the
	// Graph's arrays.
	OpShards int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Model == nil {
		return fmt.Errorf("graph: nil model")
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.MicrobatchSize <= 0 {
		return fmt.Errorf("graph: MicrobatchSize must be positive, got %d", c.MicrobatchSize)
	}
	if c.Microbatches <= 0 {
		return fmt.Errorf("graph: Microbatches must be positive, got %d", c.Microbatches)
	}
	if c.Replicas <= 0 {
		return fmt.Errorf("graph: Replicas must be positive, got %d", c.Replicas)
	}
	if c.OpShards < 0 {
		return fmt.Errorf("graph: OpShards must be non-negative, got %d", c.OpShards)
	}
	if c.OpShards > 1 && c.Replicas != 1 {
		return fmt.Errorf("graph: OpShards (%d) requires a single replica, got %d", c.OpShards, c.Replicas)
	}
	return nil
}

// MiniBatch is the global batch size of one iteration.
func (c Config) MiniBatch() int { return c.MicrobatchSize * c.Microbatches * c.Replicas }

// Graph is a decomposed training iteration.
type Graph struct {
	Cfg   Config
	Reg   *tensor.Registry
	Tasks []*Task

	// Tensor handles, indexed [replica][layer] or
	// [replica][layer][microbatch].
	W, DW, K [][]*tensor.Tensor
	// Act[r][l][i] is layer l's output for microbatch i; Act[r][0]
	// holds the model *input* batch at layer index 0, so layer l's
	// input is Act[r][l][i] and its output Act[r][l+1][i].
	Act   [][][]*tensor.Tensor
	Stash [][][]*tensor.Tensor
	// Grad[r][l][i] is the gradient flowing into layer l's output
	// (dY for layer l) — produced by BWD of layer l+1, consumed by
	// BWD of layer l. Grad[r][R] is the loss gradient.
	Grad [][][]*tensor.Tensor

	// Intra-op sharding (OpShards > 1) reuses the replica dimension
	// for shards and adds partial tensors plus gather tasks.
	// PartialAct[s][l][i] is shard s's slice of the full Act[·][l][i]
	// (l ≥ 1); PartialGrad likewise for interior gradients.
	PartialAct  [][][]*tensor.Tensor
	PartialGrad [][][]*tensor.Tensor

	// Task handles.
	Fwd [][][]*Task // [replica][layer][microbatch]
	Bwd [][][]*Task
	Upd [][]*Task // [replica][layer]
	AR  []*Task   // [layer], nil when Replicas == 1
	// AGf[l][i] gathers layer l−1's forward partials into Act[·][l][i]
	// replicas (l = 1..R); AGb[l][i] gathers backward partials into
	// Grad[·][l][i] replicas (l = 1..R−1). Nil without OpShards.
	AGf [][]*Task
	AGb [][]*Task
}

// Layers returns the model depth R.
func (g *Graph) Layers() int { return len(g.Cfg.Model.Layers) }

// Build decomposes one training iteration into the fine-grained task
// graph.
func Build(cfg Config) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.OpShards > 1 {
		return buildTP(cfg)
	}
	g := &Graph{Cfg: cfg, Reg: tensor.NewRegistry()}
	R := len(cfg.Model.Layers)
	N := cfg.Replicas
	m := cfg.Microbatches
	mb := int64(cfg.MicrobatchSize)

	newTask := func(k Kind, replica, layer, microbatch int) *Task {
		t := &Task{ID: len(g.Tasks), Kind: k, Replica: replica, Layer: layer, Microbatch: microbatch}
		g.Tasks = append(g.Tasks, t)
		return t
	}
	dep := func(t, on *Task) {
		t.Deps = append(t.Deps, on)
		on.Succs = append(on.Succs, t)
	}

	// Tensors.
	g.W = make([][]*tensor.Tensor, N)
	g.DW = make([][]*tensor.Tensor, N)
	g.K = make([][]*tensor.Tensor, N)
	g.Act = make([][][]*tensor.Tensor, N)
	g.Stash = make([][][]*tensor.Tensor, N)
	g.Grad = make([][][]*tensor.Tensor, N)
	for r := 0; r < N; r++ {
		g.W[r] = make([]*tensor.Tensor, R)
		g.DW[r] = make([]*tensor.Tensor, R)
		g.K[r] = make([]*tensor.Tensor, R)
		g.Act[r] = make([][]*tensor.Tensor, R+1)
		g.Stash[r] = make([][]*tensor.Tensor, R)
		g.Grad[r] = make([][]*tensor.Tensor, R+1)
		for l := 0; l < R; l++ {
			spec := cfg.Model.Layers[l]
			wb := spec.WeightBytes()
			g.W[r][l] = g.Reg.New(fmt.Sprintf("r%d.W.L%d", r, l), tensor.Weight, wb, l, -1)
			g.DW[r][l] = g.Reg.New(fmt.Sprintf("r%d.dW.L%d", r, l), tensor.WeightGrad, wb, l, -1)
			kb := int64(float64(wb) * cfg.Model.OptStateParamsFactor)
			g.K[r][l] = g.Reg.New(fmt.Sprintf("r%d.K.L%d", r, l), tensor.OptState, kb, l, -1)
		}
		for l := 0; l <= R; l++ {
			g.Act[r][l] = make([]*tensor.Tensor, m)
			g.Grad[r][l] = make([]*tensor.Tensor, m)
			if l < R {
				g.Stash[r][l] = make([]*tensor.Tensor, m)
			}
			for i := 0; i < m; i++ {
				var actBytes int64
				if l == 0 {
					actBytes = cfg.Model.SampleBytes * mb
				} else {
					actBytes = cfg.Model.Layers[l-1].ActBytesPerSample * mb
				}
				g.Act[r][l][i] = g.Reg.New(fmt.Sprintf("r%d.A.L%d.mb%d", r, l, i), tensor.Activation, actBytes, l, i)
				// Gradient w.r.t. Act[l], same size. Only interior
				// indices exist: Grad[0] (input gradient) is never
				// computed and Grad[R] (loss gradient) is produced
				// inside the last backward task.
				if l >= 1 && l <= R-1 {
					g.Grad[r][l][i] = g.Reg.New(fmt.Sprintf("r%d.G.L%d.mb%d", r, l, i), tensor.ActivationGrad, actBytes, l, i)
				}
				if l < R {
					sb := cfg.Model.Layers[l].StashBytesPerSample * mb
					if cfg.Recompute {
						// Checkpoint only the layer input; backward
						// recomputes the rest.
						sb = actBytes
					}
					g.Stash[r][l][i] = g.Reg.New(fmt.Sprintf("r%d.S.L%d.mb%d", r, l, i), tensor.Stash, sb, l, i)
				}
			}
		}
	}

	// Tasks.
	g.Fwd = make([][][]*Task, N)
	g.Bwd = make([][][]*Task, N)
	g.Upd = make([][]*Task, N)
	for r := 0; r < N; r++ {
		g.Fwd[r] = make([][]*Task, R)
		g.Bwd[r] = make([][]*Task, R)
		g.Upd[r] = make([]*Task, R)
		for l := 0; l < R; l++ {
			spec := cfg.Model.Layers[l]
			g.Fwd[r][l] = make([]*Task, m)
			g.Bwd[r][l] = make([]*Task, m)
			for i := 0; i < m; i++ {
				f := newTask(Forward, r, l, i)
				f.FLOPs = spec.FwdFLOPsPerSample * float64(mb)
				f.WorkspaceBytes = spec.WorkspaceBytes
				f.Inputs = []*tensor.Tensor{g.W[r][l], g.Act[r][l][i]}
				f.Outputs = []*tensor.Tensor{g.Act[r][l+1][i], g.Stash[r][l][i]}
				if l > 0 {
					dep(f, g.Fwd[r][l-1][i])
					// Layer l's input (Act[l]) is last read here; the
					// stash retains what backward needs.
					f.Frees = append(f.Frees, g.Act[r][l][i])
				}
				g.Fwd[r][l][i] = f
			}
		}
		// Backward tasks are built in reverse layer order so each can
		// reference the next layer's backward (its dY producer).
		for l := R - 1; l >= 0; l-- {
			spec := cfg.Model.Layers[l]
			for i := 0; i < m; i++ {
				b := newTask(Backward, r, l, i)
				b.FLOPs = spec.FwdFLOPsPerSample * float64(mb) * models.BwdFLOPsFactor
				if cfg.Recompute {
					// Re-run the forward from the checkpoint before
					// differentiating.
					b.FLOPs += spec.FwdFLOPsPerSample * float64(mb)
					// The recomputed intermediates need transient
					// space on top of the usual workspace.
					b.WorkspaceBytes = spec.WorkspaceBytes +
						(spec.StashBytesPerSample-spec.ActBytesPerSample)*mb
					if b.WorkspaceBytes < spec.WorkspaceBytes {
						b.WorkspaceBytes = spec.WorkspaceBytes
					}
				} else {
					b.WorkspaceBytes = spec.WorkspaceBytes
				}
				b.Inputs = []*tensor.Tensor{g.W[r][l], g.DW[r][l], g.Stash[r][l][i]}
				if l < R-1 {
					// dY produced by the next layer's backward.
					b.Inputs = append(b.Inputs, g.Grad[r][l+1][i])
					dep(b, g.Bwd[r][l+1][i])
					b.Frees = append(b.Frees, g.Grad[r][l+1][i])
				} else {
					// Loss gradient: produced locally from the
					// forward output; no extra input tensor.
					dep(b, g.Fwd[r][l][i])
				}
				if l > 0 {
					b.Outputs = []*tensor.Tensor{g.Grad[r][l][i]}
				}
				b.Mutates = []*tensor.Tensor{g.DW[r][l]}
				b.Frees = append(b.Frees, g.Stash[r][l][i])
				if l == R-1 {
					// The final activation's last use is the loss.
					b.Frees = append(b.Frees, g.Act[r][l+1][i])
				}
				dep(b, g.Fwd[r][l][i])
				g.Bwd[r][l][i] = b
			}
		}
	}
	if N > 1 {
		g.AR = make([]*Task, R)
		for l := 0; l < R; l++ {
			ar := newTask(AllReduce, -1, l, -1)
			ar.CommBytes = g.DW[0][l].Bytes
			for r := 0; r < N; r++ {
				ar.Inputs = append(ar.Inputs, g.DW[r][l])
				ar.Mutates = append(ar.Mutates, g.DW[r][l])
				for i := 0; i < m; i++ {
					dep(ar, g.Bwd[r][l][i])
				}
			}
			g.AR[l] = ar
		}
	}
	for r := 0; r < N; r++ {
		for l := 0; l < R; l++ {
			u := newTask(Update, r, l, -1)
			u.FLOPs = float64(cfg.Model.Layers[l].Params) * models.UpdateFLOPsPerParam
			u.Inputs = []*tensor.Tensor{g.W[r][l], g.DW[r][l], g.K[r][l]}
			u.Mutates = []*tensor.Tensor{g.W[r][l], g.DW[r][l], g.K[r][l]}
			if g.AR != nil {
				dep(u, g.AR[l])
			} else {
				for i := 0; i < m; i++ {
					dep(u, g.Bwd[r][l][i])
				}
			}
			g.Upd[r][l] = u
		}
	}
	return g, nil
}

// MustBuild panics on error; for tests and static configs.
func MustBuild(cfg Config) *Graph {
	g, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// PersistentTensors returns all weights, gradient buffers and
// optimizer state (host-resident at iteration start).
func (g *Graph) PersistentTensors() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, t := range g.Reg.All() {
		if t.Kind.IsPersistent() {
			out = append(out, t)
		}
	}
	return out
}

// InputTensors returns the per-replica model input batches (Act layer
// 0), which the data loader materializes in host memory each
// iteration.
func (g *Graph) InputTensors() []*tensor.Tensor {
	var out []*tensor.Tensor
	for r := range g.Act {
		out = append(out, g.Act[r][0]...)
	}
	return out
}

// CheckAcyclic verifies the dependency graph has no cycles and
// returns a topological order.
func (g *Graph) CheckAcyclic() ([]*Task, error) {
	indeg := make([]int, len(g.Tasks))
	for _, t := range g.Tasks {
		indeg[t.ID] = len(t.Deps)
	}
	queue := make([]*Task, 0, len(g.Tasks))
	for _, t := range g.Tasks {
		if indeg[t.ID] == 0 {
			queue = append(queue, t)
		}
	}
	order := make([]*Task, 0, len(g.Tasks))
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, s := range t.Succs {
			indeg[s.ID]--
			if indeg[s.ID] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(g.Tasks) {
		return nil, fmt.Errorf("graph: dependency cycle (%d of %d tasks orderable)", len(order), len(g.Tasks))
	}
	return order, nil
}
