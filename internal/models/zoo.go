package models

// ZooEntry is a historical model for the Fig. 1 growth chart.
type ZooEntry struct {
	Name   string
	Year   int
	Params int64
	Task   string
}

// Zoo is the Fig. 1 dataset: "DNN model size growth for image
// classification (LeNet, AlexNet, AmoebaNet) and language modeling
// (GNMT, GPT-2, T5, GPT-3) over two decades."
func Zoo() []ZooEntry {
	return []ZooEntry{
		{Name: "LeNet", Year: 1998, Params: 60_000, Task: "image classification"},
		{Name: "AlexNet", Year: 2012, Params: 61_000_000, Task: "image classification"},
		{Name: "GNMT", Year: 2016, Params: 278_000_000, Task: "translation"},
		{Name: "AmoebaNet", Year: 2018, Params: 557_000_000, Task: "image classification"},
		{Name: "GPT-2", Year: 2019, Params: 1_500_000_000, Task: "language modeling"},
		{Name: "T5", Year: 2019, Params: 11_000_000_000, Task: "language modeling"},
		{Name: "GPT-3", Year: 2020, Params: 175_000_000_000, Task: "language modeling"},
	}
}
