package models

import (
	"testing"
	"testing/quick"
)

func TestZooMatchesFig1(t *testing.T) {
	z := Zoo()
	if len(z) != 7 {
		t.Fatalf("zoo has %d entries, want 7", len(z))
	}
	if z[0].Name != "LeNet" || z[0].Params != 60_000 {
		t.Fatalf("first entry %+v, want LeNet 60K", z[0])
	}
	if z[6].Name != "GPT-3" || z[6].Params != 175_000_000_000 {
		t.Fatalf("last entry %+v, want GPT-3 175B", z[6])
	}
	for i := 1; i < len(z); i++ {
		if z[i].Params <= z[i-1].Params {
			t.Errorf("zoo not monotonically growing at %s", z[i].Name)
		}
		if z[i].Year < z[i-1].Year {
			t.Errorf("zoo not chronological at %s", z[i].Name)
		}
	}
}

func TestTransformerParamAccounting(t *testing.T) {
	// GPT-2 XL should land near its published 1.5e9 parameters.
	m := GPT2XL()
	p := m.TotalParams()
	if p < 1_400_000_000 || p > 1_800_000_000 {
		t.Fatalf("GPT2-XL params = %d, want ≈1.5B", p)
	}
	// BERT-Large near 340M (plus untied LM head).
	bl := BERTLarge()
	p = bl.TotalParams()
	if p < 300_000_000 || p > 420_000_000 {
		t.Fatalf("BERT-Large params = %d, want ≈340M", p)
	}
}

func TestBERT48ExceedsGPUMemory(t *testing.T) {
	m := BERT48()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	gpu := int64(11 << 30)
	if m.PersistentBytes() <= gpu {
		t.Fatalf("BERT-48 persistent footprint %d must exceed 11 GB to reproduce Fig. 2", m.PersistentBytes())
	}
	// But weights alone fit in host memory terms, and a single layer
	// must fit on one GPU (otherwise no schedule exists).
	var maxLayer int64
	for _, l := range m.Layers {
		if b := l.WeightBytes(); b > maxLayer {
			maxLayer = b
		}
	}
	if maxLayer >= gpu {
		t.Fatalf("largest single layer %d must fit in GPU memory", maxLayer)
	}
}

func TestFootprintComposition(t *testing.T) {
	m := Uniform("u", 4, 1000, 64, 1e6)
	if got, want := m.TotalParams(), int64(4000); got != want {
		t.Fatalf("TotalParams = %d, want %d", got, want)
	}
	if got, want := m.WeightBytes(), int64(16000); got != want {
		t.Fatalf("WeightBytes = %d, want %d", got, want)
	}
	if got, want := m.OptStateBytes(), int64(32000); got != want {
		t.Fatalf("OptStateBytes = %d, want %d (Adam 2x)", got, want)
	}
	if got, want := m.PersistentBytes(), int64(16000*2+32000); got != want {
		t.Fatalf("PersistentBytes = %d, want %d", got, want)
	}
	if got, want := m.ActivationBytes(3), int64(4*64*3); got != want {
		t.Fatalf("ActivationBytes = %d, want %d", got, want)
	}
	if got, want := m.TrainingFootprint(3, 2), m.PersistentBytes()+2*m.ActivationBytes(3); got != want {
		t.Fatalf("TrainingFootprint = %d, want %d", got, want)
	}
}

func TestMLPShapes(t *testing.T) {
	m := MLP(MLPConfig{Name: "mlp", Widths: []int{784, 256, 10}, OptAdam: true})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(m.Layers))
	}
	if got, want := m.Layers[0].Params, int64(784*256+256); got != want {
		t.Fatalf("fc0 params = %d, want %d", got, want)
	}
	if m.OptStateParamsFactor != 2.0 {
		t.Fatal("Adam MLP should have optimizer factor 2")
	}
	if m.SampleBytes != 784*4 {
		t.Fatalf("SampleBytes = %d", m.SampleBytes)
	}
}

func TestMLPTooFewWidthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MLP(MLPConfig{Name: "bad", Widths: []int{10}})
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := &Model{}
	if err := m.Validate(); err == nil {
		t.Fatal("nameless model accepted")
	}
	m = &Model{Name: "x", SampleBytes: 4}
	if err := m.Validate(); err == nil {
		t.Fatal("layerless model accepted")
	}
	m = Uniform("u", 2, 10, 10, 10)
	m.Layers[1].Params = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative layer size accepted")
	}
	m = Uniform("u2", 2, 10, 10, 10)
	m.SampleBytes = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero sample size accepted")
	}
	m = Uniform("u3", 2, 10, 10, 10)
	m.OptStateParamsFactor = -0.5
	if err := m.Validate(); err == nil {
		t.Fatal("negative optimizer factor accepted")
	}
}

// Property: for any transformer configuration, footprints scale
// monotonically with depth and all builders produce valid models.
func TestTransformerMonotoneInDepth(t *testing.T) {
	f := func(depthRaw, hiddenRaw uint8) bool {
		depth := int(depthRaw%16) + 1
		hidden := (int(hiddenRaw%8) + 1) * 64
		a := Transformer(TransformerConfig{Name: "a", NumLayers: depth, Hidden: hidden, SeqLen: 128, Vocab: 1000})
		b := Transformer(TransformerConfig{Name: "b", NumLayers: depth + 1, Hidden: hidden, SeqLen: 128, Vocab: 1000})
		if a.Validate() != nil || b.Validate() != nil {
			return false
		}
		return b.TotalParams() > a.TotalParams() &&
			b.PersistentBytes() > a.PersistentBytes() &&
			b.FwdFLOPs() > a.FwdFLOPs() &&
			b.ActivationBytes(1) > a.ActivationBytes(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLeNetMatchesFig1(t *testing.T) {
	m := LeNet()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.TotalParams()
	// Fig. 1 cites 60K; LeNet-5's exact count is ~61.7K.
	if p < 55_000 || p > 70_000 {
		t.Fatalf("LeNet params = %d, want ≈60K", p)
	}
	// Pools have no parameters.
	if m.Layers[1].Params != 0 || m.Layers[3].Params != 0 {
		t.Fatal("pool layers must be parameter-free")
	}
}

func TestAlexNetMatchesFig1(t *testing.T) {
	m := AlexNet()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.TotalParams()
	// Fig. 1 cites 61M; the dense layers dominate.
	if p < 55_000_000 || p > 70_000_000 {
		t.Fatalf("AlexNet params = %d, want ≈61M", p)
	}
	var dense int64
	for _, l := range m.Layers[7:] {
		dense += l.Params
	}
	if float64(dense) < 0.8*float64(p) {
		t.Fatal("AlexNet's dense layers should dominate the parameter count")
	}
}

func TestConvLayerFormulas(t *testing.T) {
	l := conv("c", 3, 8, 8, 4, 3) // -> 4x6x6
	if l.Params != int64(4*3*9+4) {
		t.Fatalf("conv params = %d", l.Params)
	}
	if l.ActBytesPerSample != 4*6*6*4 {
		t.Fatalf("conv act = %d", l.ActBytesPerSample)
	}
	if l.FwdFLOPsPerSample != 2*4*6*6*3*9 {
		t.Fatalf("conv flops = %v", l.FwdFLOPsPerSample)
	}
	pl := pool("p", 4, 6, 6, 2)
	if pl.Params != 0 || pl.ActBytesPerSample != 4*3*3*4 {
		t.Fatalf("pool spec = %+v", pl)
	}
}

func TestGNMTMatchesFig1(t *testing.T) {
	m := GNMT()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.TotalParams()
	if p < 230_000_000 || p > 330_000_000 {
		t.Fatalf("GNMT params = %d, want ≈278M", p)
	}
}

func TestAmoebaNetMatchesFig1(t *testing.T) {
	m := AmoebaNet()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.TotalParams()
	if p < 450_000_000 || p > 650_000_000 {
		t.Fatalf("AmoebaNet params = %d, want ≈557M", p)
	}
}

func TestT511BMatchesFig1(t *testing.T) {
	m := T511B()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.TotalParams()
	if p < 6_000_000_000 || p > 13_000_000_000 {
		t.Fatalf("T5-11B params = %d, want ≈11B", p)
	}
}

func TestGPT3MatchesFig1(t *testing.T) {
	m := GPT3()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.TotalParams()
	if p < 160_000_000_000 || p > 190_000_000_000 {
		t.Fatalf("GPT-3 params = %d, want ≈175B", p)
	}
	// Its fp32 weights alone exceed a commodity server's aggregate
	// GPU memory by an order of magnitude — the paper's premise.
	if m.WeightBytes() < 10*4*(11<<30) {
		t.Fatal("GPT-3 should dwarf 4x11GB")
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	for _, name := range []string{"lenet", "alexnet", "gnmt", "amoebanet", "bertlarge", "bert48", "gpt2xl", "t5-11b", "gpt3"} {
		ctor, ok := cat[name]
		if !ok {
			t.Fatalf("catalog missing %q", name)
		}
		m := ctor()
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
