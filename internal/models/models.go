// Package models is the model zoo: the parameter-count history used
// by the paper's Fig. 1, plus trainable model descriptions (per-layer
// parameter, activation, stash and FLOP formulas) that drive the
// simulator. Architectural shapes follow the published models; the
// simulator needs only sizes and operation counts, not learned values.
package models

import "fmt"

// BytesPerParam is fp32 training.
const BytesPerParam = 4

// LayerSpec describes one layer of a sequential model.
type LayerSpec struct {
	Name   string
	Params int64

	// FwdFLOPsPerSample is the forward-pass floating point operations
	// for one input sample. The backward pass is modeled as
	// BwdFLOPsFactor times this (≈2 for DNNs: grad w.r.t. inputs and
	// weights).
	FwdFLOPsPerSample float64

	// ActBytesPerSample is the size of the layer's output activation
	// Y for one sample (which is the next layer's input X).
	ActBytesPerSample int64

	// StashBytesPerSample is what the backward pass needs retained
	// from the forward pass (stashed input plus any internal
	// activations, e.g. attention probabilities for transformers).
	StashBytesPerSample int64

	// WorkspaceBytes is scratch memory the layer's kernels need while
	// executing (independent of batch size in this model).
	WorkspaceBytes int64
}

// WeightBytes is the fp32 size of the layer's parameters.
func (l LayerSpec) WeightBytes() int64 { return l.Params * BytesPerParam }

// BwdFLOPsFactor: backward ≈ 2× forward for DNN layers.
const BwdFLOPsFactor = 2.0

// UpdateFLOPsPerParam approximates optimizer arithmetic (Adam: a few
// multiply-adds per parameter).
const UpdateFLOPsPerParam = 6.0

// Model is a sequential DNN with an optimizer choice.
type Model struct {
	Name   string
	Layers []LayerSpec

	// OptStateParamsFactor is optimizer state size in units of the
	// parameter count (Adam keeps two fp32 moments: 2.0; plain SGD
	// with momentum: 1.0; vanilla SGD: 0).
	OptStateParamsFactor float64

	// SampleBytes is the size of one input sample fed to layer 0.
	SampleBytes int64
}

// Validate reports structural problems.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("models: model has no name")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("models: %s has no layers", m.Name)
	}
	for i, l := range m.Layers {
		if l.Params < 0 || l.ActBytesPerSample < 0 || l.StashBytesPerSample < 0 ||
			l.WorkspaceBytes < 0 || l.FwdFLOPsPerSample < 0 {
			return fmt.Errorf("models: %s layer %d (%s) has negative size", m.Name, i, l.Name)
		}
	}
	if m.OptStateParamsFactor < 0 {
		return fmt.Errorf("models: %s negative optimizer factor", m.Name)
	}
	if m.SampleBytes <= 0 {
		return fmt.Errorf("models: %s non-positive sample size", m.Name)
	}
	return nil
}

// TotalParams sums parameters over all layers.
func (m *Model) TotalParams() int64 {
	var p int64
	for _, l := range m.Layers {
		p += l.Params
	}
	return p
}

// WeightBytes is total |W| in bytes.
func (m *Model) WeightBytes() int64 { return m.TotalParams() * BytesPerParam }

// OptStateBytes is total optimizer state |K| in bytes.
func (m *Model) OptStateBytes() int64 {
	return int64(float64(m.WeightBytes()) * m.OptStateParamsFactor)
}

// PersistentBytes is the per-replica persistent footprint: weights +
// gradient buffers + optimizer state.
func (m *Model) PersistentBytes() int64 {
	return 2*m.WeightBytes() + m.OptStateBytes()
}

// ActivationBytes is the total stashed-activation footprint for one
// microbatch of the given size held across the whole model (what a
// pipeline head stage must retain per in-flight microbatch).
func (m *Model) ActivationBytes(microbatch int) int64 {
	var b int64
	for _, l := range m.Layers {
		b += l.StashBytesPerSample * int64(microbatch)
	}
	return b
}

// FwdFLOPs is the forward cost of one sample through the whole model.
func (m *Model) FwdFLOPs() float64 {
	var f float64
	for _, l := range m.Layers {
		f += l.FwdFLOPsPerSample
	}
	return f
}

// TrainingFootprint estimates the total bytes needed to train with m
// microbatches in flight of the given size: persistent state plus
// stashed activations. Used to decide whether a model "fits".
func (m *Model) TrainingFootprint(microbatch, inflight int) int64 {
	return m.PersistentBytes() + int64(inflight)*m.ActivationBytes(microbatch)
}

// TransformerConfig parameterizes a GPT/BERT-class encoder stack.
type TransformerConfig struct {
	Name      string
	NumLayers int
	Hidden    int
	SeqLen    int
	Vocab     int
	// Adam optimizer unless overridden.
	OptStateParamsFactor float64
}

// Transformer builds a sequential transformer LM: an embedding layer,
// NumLayers identical transformer blocks, and an output projection.
// Parameter and FLOP formulas follow the standard accounting
// (12·h² + 13·h parameters per block; ≈2·params FLOPs per token).
func Transformer(c TransformerConfig) *Model {
	h := int64(c.Hidden)
	s := int64(c.SeqLen)
	v := int64(c.Vocab)
	opt := c.OptStateParamsFactor
	if opt == 0 {
		opt = 2.0 // Adam
	}
	m := &Model{
		Name:                 c.Name,
		OptStateParamsFactor: opt,
		// Token ids, int32 per position.
		SampleBytes: s * 4,
	}
	// Embedding: vocab×h table plus position embeddings. FLOPs are a
	// gather — negligible next to the blocks but nonzero.
	m.Layers = append(m.Layers, LayerSpec{
		Name:                "embed",
		Params:              v*h + s*h,
		FwdFLOPsPerSample:   float64(s * h),
		ActBytesPerSample:   s * h * BytesPerParam,
		StashBytesPerSample: s * 4, // token ids
	})
	blockParams := 12*h*h + 13*h
	// Attention probabilities are s×s per head, kept for backward:
	// s·s·4 bytes × (h/64) heads.
	heads := h / 64
	if heads < 1 {
		heads = 1
	}
	attnStash := s * s * 4 * heads
	block := LayerSpec{
		Name:              "block",
		Params:            blockParams,
		FwdFLOPsPerSample: 2 * float64(blockParams) * float64(s),
		ActBytesPerSample: s * h * BytesPerParam,
		// Stash: block input + attention internals + MLP hidden.
		StashBytesPerSample: s*h*BytesPerParam*6 + attnStash,
		WorkspaceBytes:      64 << 20,
	}
	for i := 0; i < c.NumLayers; i++ {
		b := block
		b.Name = fmt.Sprintf("block%d", i)
		m.Layers = append(m.Layers, b)
	}
	// LM head: h×vocab projection (weights often tied; we keep them
	// explicit as PyTorch does by default for BERT heads).
	m.Layers = append(m.Layers, LayerSpec{
		Name:                "lmhead",
		Params:              h * v,
		FwdFLOPsPerSample:   2 * float64(h*v) * float64(s),
		ActBytesPerSample:   s * v * BytesPerParam / 16, // loss-reduced
		StashBytesPerSample: s * h * BytesPerParam,
		WorkspaceBytes:      64 << 20,
	})
	return m
}

// BERT48 is the paper's "large BERT" workload: a 48-layer, 1536-hidden
// BERT variant (~1.4 B parameters). With Adam its persistent footprint
// alone (~22 GB) exceeds a 1080Ti's 11 GB, forcing memory
// virtualization exactly as in Fig. 2.
func BERT48() *Model {
	return Transformer(TransformerConfig{
		Name:      "bert-48",
		NumLayers: 48,
		Hidden:    1536,
		SeqLen:    512,
		Vocab:     30522,
	})
}

// BERTLarge is the standard 24-layer BERT-Large (~340 M parameters).
func BERTLarge() *Model {
	return Transformer(TransformerConfig{
		Name:      "bert-large",
		NumLayers: 24,
		Hidden:    1024,
		SeqLen:    512,
		Vocab:     30522,
	})
}

// GPT2XL is the 48-layer, 1600-hidden GPT-2 (~1.5 B parameters).
func GPT2XL() *Model {
	return Transformer(TransformerConfig{
		Name:      "gpt2-xl",
		NumLayers: 48,
		Hidden:    1600,
		SeqLen:    1024,
		Vocab:     50257,
	})
}

// MLPConfig parameterizes a toy multi-layer perceptron, used by unit
// tests and the quickstart example (small, fast, easily sized).
type MLPConfig struct {
	Name    string
	Widths  []int // len ≥ 2: input, hidden..., output
	Batch   int   // unused by sizes; samples are Widths[0] floats
	OptAdam bool
}

// MLP builds a dense feed-forward model.
func MLP(c MLPConfig) *Model {
	if len(c.Widths) < 2 {
		panic("models: MLP needs at least input and output widths")
	}
	opt := 0.0
	if c.OptAdam {
		opt = 2.0
	}
	m := &Model{
		Name:                 c.Name,
		OptStateParamsFactor: opt,
		SampleBytes:          int64(c.Widths[0]) * BytesPerParam,
	}
	for i := 0; i+1 < len(c.Widths); i++ {
		in, out := int64(c.Widths[i]), int64(c.Widths[i+1])
		m.Layers = append(m.Layers, LayerSpec{
			Name:                fmt.Sprintf("fc%d", i),
			Params:              in*out + out,
			FwdFLOPsPerSample:   2 * float64(in*out),
			ActBytesPerSample:   out * BytesPerParam,
			StashBytesPerSample: in * BytesPerParam,
		})
	}
	return m
}

// Uniform builds the analytical-model workload of §3: R identical
// layers, each with the given parameter count and activation size.
// "a simplified DNN model with one type of layer (like Transformers)
// and where each layer has the same runtime and memory footprint".
func Uniform(name string, layers int, paramsPerLayer, actBytesPerSample int64, flopsPerSample float64) *Model {
	m := &Model{
		Name:                 name,
		OptStateParamsFactor: 2.0,
		SampleBytes:          actBytesPerSample,
	}
	for i := 0; i < layers; i++ {
		m.Layers = append(m.Layers, LayerSpec{
			Name:                fmt.Sprintf("L%d", i+1),
			Params:              paramsPerLayer,
			FwdFLOPsPerSample:   flopsPerSample,
			ActBytesPerSample:   actBytesPerSample,
			StashBytesPerSample: actBytesPerSample,
		})
	}
	return m
}

// conv returns a LayerSpec for a 2-D convolution layer (valid
// padding, unit stride) followed by an activation: the cost formulas
// behind the image-classification workloads of Fig. 1.
func conv(name string, cin, h, w, cout, k int) LayerSpec {
	oh, ow := h-k+1, w-k+1
	params := int64(cout*cin*k*k + cout)
	return LayerSpec{
		Name:                name,
		Params:              params,
		FwdFLOPsPerSample:   2 * float64(cout) * float64(oh) * float64(ow) * float64(cin) * float64(k*k),
		ActBytesPerSample:   int64(cout*oh*ow) * BytesPerParam,
		StashBytesPerSample: int64(cin*h*w) * BytesPerParam,
	}
}

// pool returns a LayerSpec for a P×P max pool.
func pool(name string, c, h, w, p int) LayerSpec {
	return LayerSpec{
		Name:                name,
		FwdFLOPsPerSample:   float64(c * h * w),
		ActBytesPerSample:   int64(c*(h/p)*(w/p)) * BytesPerParam,
		StashBytesPerSample: int64(c*h*w) * BytesPerParam,
	}
}

// fc returns a LayerSpec for a fully connected layer.
func fc(name string, in, out int) LayerSpec {
	return LayerSpec{
		Name:                name,
		Params:              int64(in*out + out),
		FwdFLOPsPerSample:   2 * float64(in) * float64(out),
		ActBytesPerSample:   int64(out) * BytesPerParam,
		StashBytesPerSample: int64(in) * BytesPerParam,
	}
}

// LeNet is the 1998 LeNet-5 shape (≈62 K parameters, Fig. 1's first
// point) on the original 32×32 single-channel inputs.
func LeNet() *Model {
	return &Model{
		Name:                 "lenet",
		OptStateParamsFactor: 0, // plain SGD, as in 1998
		SampleBytes:          32 * 32 * BytesPerParam,
		Layers: []LayerSpec{
			conv("conv1", 1, 32, 32, 6, 5),  // -> 6x28x28
			pool("pool1", 6, 28, 28, 2),     // -> 6x14x14
			conv("conv2", 6, 14, 14, 16, 5), // -> 16x10x10
			pool("pool2", 16, 10, 10, 2),    // -> 16x5x5
			fc("fc1", 16*5*5, 120),
			fc("fc2", 120, 84),
			fc("fc3", 84, 10),
		},
	}
}

// AlexNet approximates the 2012 network's shape (≈62 M parameters,
// Fig. 1's second point): strides are replaced by pools (this model
// only needs sizes), the feature extractor reaches the original
// 256×6×6 so the dominant fc6 matches the real 37.7 M parameters.
func AlexNet() *Model {
	return &Model{
		Name:                 "alexnet",
		OptStateParamsFactor: 1.0, // SGD with momentum
		SampleBytes:          3 * 204 * 204 * BytesPerParam,
		Layers: []LayerSpec{
			conv("conv1", 3, 204, 204, 96, 9),  // -> 96x196x196
			pool("pool1", 96, 196, 196, 7),     // -> 96x28x28
			conv("conv2", 96, 28, 28, 256, 5),  // -> 256x24x24
			pool("pool2", 256, 24, 24, 2),      // -> 256x12x12
			conv("conv3", 256, 12, 12, 384, 3), // -> 384x10x10
			conv("conv4", 384, 10, 10, 384, 3), // -> 384x8x8
			conv("conv5", 384, 8, 8, 256, 3),   // -> 256x6x6
			fc("fc6", 256*6*6, 4096),
			fc("fc7", 4096, 4096),
			fc("fc8", 4096, 1000),
		},
	}
}

// lstm returns a LayerSpec for one LSTM layer: 4 gates of
// (in+hidden+1)×hidden parameters, unrolled over seqLen steps.
func lstm(name string, in, hidden, seqLen int) LayerSpec {
	params := int64(4 * (in + hidden + 1) * hidden)
	return LayerSpec{
		Name:              name,
		Params:            params,
		FwdFLOPsPerSample: 2 * float64(params) * float64(seqLen),
		ActBytesPerSample: int64(seqLen*hidden) * BytesPerParam,
		// Backward-through-time needs every step's gate activations.
		StashBytesPerSample: int64(seqLen*hidden*5) * BytesPerParam,
	}
}

// GNMT approximates Google's NMT system (Fig. 1's 278 M-parameter
// point): 8 encoder + 8 decoder LSTM layers of 1024 units with
// attention, over 32 K-word vocabularies.
func GNMT() *Model {
	const (
		hidden = 1024
		seq    = 64
		vocab  = 32000
	)
	m := &Model{
		Name:                 "gnmt",
		OptStateParamsFactor: 1.0, // Adagrad-class accumulator
		SampleBytes:          seq * 4,
	}
	m.Layers = append(m.Layers, LayerSpec{
		Name:                "embed",
		Params:              2 * vocab * hidden, // source + target tables
		FwdFLOPsPerSample:   float64(seq * hidden),
		ActBytesPerSample:   seq * hidden * BytesPerParam,
		StashBytesPerSample: seq * 4,
	})
	// Encoder: first layer is bidirectional (double width).
	m.Layers = append(m.Layers, lstm("enc-bi", hidden, 2*hidden, seq))
	for i := 1; i < 8; i++ {
		in := hidden
		if i == 1 {
			in = 2 * hidden
		}
		m.Layers = append(m.Layers, lstm(fmt.Sprintf("enc%d", i), in, hidden, seq))
	}
	// Attention projection.
	m.Layers = append(m.Layers, fc("attention", hidden, hidden))
	for i := 0; i < 8; i++ {
		in := hidden
		if i == 0 {
			in = 2 * hidden // attention context concatenated
		}
		m.Layers = append(m.Layers, lstm(fmt.Sprintf("dec%d", i), in, hidden, seq))
	}
	m.Layers = append(m.Layers, fc("softmax", hidden, vocab))
	return m
}

// AmoebaNet approximates the evolved image classifier (Fig. 1's
// 557 M-parameter point) as a stack of convolutional cells whose
// parameter total matches the published count; per-cell shapes follow
// the reduction structure (feature maps shrink, filters grow).
func AmoebaNet() *Model {
	m := &Model{
		Name:                 "amoebanet",
		OptStateParamsFactor: 1.0,
		SampleBytes:          3 * 331 * 331 * BytesPerParam, // 331×331 inputs as published
	}
	// Three stages of cells; filter counts chosen so the total lands
	// at ≈557M (the published AmoebaNet-B (18, 512) configuration).
	type stage struct {
		cells, ch, hw int
	}
	stages := []stage{
		{12, 1024, 83},
		{12, 2048, 42},
		{12, 3072, 21},
	}
	for si, st := range stages {
		for c := 0; c < st.cells; c++ {
			// A cell ≈ separable convs + 1x1 projections; modeled as
			// one conv-like layer of ch→ch with a 3x3 kernel plus a
			// 1x1 projection.
			params := int64(st.ch)*int64(st.ch)*9/4 + int64(st.ch*st.ch)
			m.Layers = append(m.Layers, LayerSpec{
				Name:                fmt.Sprintf("cell%d-%d", si, c),
				Params:              params,
				FwdFLOPsPerSample:   2 * float64(params) * float64(st.hw*st.hw) / 9,
				ActBytesPerSample:   int64(st.ch*st.hw*st.hw) * BytesPerParam / 4,
				StashBytesPerSample: int64(st.ch*st.hw*st.hw) * BytesPerParam / 2,
			})
		}
	}
	m.Layers = append(m.Layers, fc("classifier", 3072, 1000))
	return m
}

// T511B approximates the 11 B-parameter T5 (Fig. 1): 24 encoder + 24
// decoder blocks with d_model 1024 and the characteristic 65536-wide
// feed-forward that holds most of the parameters.
func T511B() *Model {
	const (
		h     = 1024
		ff    = 65536
		seq   = 512
		vocab = 32128
	)
	m := &Model{
		Name:                 "t5-11b",
		OptStateParamsFactor: 2.0,
		SampleBytes:          seq * 4,
	}
	m.Layers = append(m.Layers, LayerSpec{
		Name:                "embed",
		Params:              vocab * h,
		FwdFLOPsPerSample:   float64(seq * h),
		ActBytesPerSample:   seq * h * BytesPerParam,
		StashBytesPerSample: seq * 4,
	})
	// Attention (4h²·k with T5-11B's 128-headed attention ≈ 16h²) +
	// the giant FFN (2·h·ff).
	blockParams := int64(16*h*h) + int64(2*h*ff)
	for i := 0; i < 48; i++ {
		m.Layers = append(m.Layers, LayerSpec{
			Name:                fmt.Sprintf("block%d", i),
			Params:              blockParams,
			FwdFLOPsPerSample:   2 * float64(blockParams) * float64(seq),
			ActBytesPerSample:   seq * h * BytesPerParam,
			StashBytesPerSample: seq*h*BytesPerParam*6 + seq*seq*4*16,
			WorkspaceBytes:      256 << 20,
		})
	}
	m.Layers = append(m.Layers, fc("lmhead", h, vocab))
	return m
}

// GPT3 is the 175 B-parameter model (Fig. 1's endpoint): 96 layers,
// 12288 hidden, 2048-token context. Even its weights (700 GB fp32)
// dwarf a commodity server; the feasibility experiment (§4) uses it
// to show why Harmony targets development and fine-tuning, not
// pre-training.
func GPT3() *Model {
	return Transformer(TransformerConfig{
		Name:      "gpt3",
		NumLayers: 96,
		Hidden:    12288,
		SeqLen:    2048,
		Vocab:     50257,
	})
}

// Catalog maps workload names to constructors — shared by the CLIs
// and the feasibility experiment so every tool accepts the same
// model names.
func Catalog() map[string]func() *Model {
	return map[string]func() *Model{
		"lenet":     LeNet,
		"alexnet":   AlexNet,
		"gnmt":      GNMT,
		"amoebanet": AmoebaNet,
		"bertlarge": BERTLarge,
		"bert48":    BERT48,
		"gpt2xl":    GPT2XL,
		"t5-11b":    T511B,
		"gpt3":      GPT3,
	}
}
