package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBlobsDeterministic(t *testing.T) {
	a := NewBlobs(8, 3, 0.5, 42)
	b := NewBlobs(8, 3, 0.5, 42)
	xa, ya := a.Batch(16, 7)
	xb, yb := b.Batch(16, 7)
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatal("inputs not reproducible")
		}
	}
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatal("labels not reproducible")
		}
	}
}

func TestBlobsBatchesDiffer(t *testing.T) {
	b := NewBlobs(8, 3, 0.5, 42)
	x1, _ := b.Batch(16, 0)
	x2, _ := b.Batch(16, 1)
	same := true
	for i := range x1 {
		if x1[i] != x2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different batch indices should differ")
	}
}

func TestBlobsShapesAndLabels(t *testing.T) {
	b := NewBlobs(5, 4, 0.1, 1)
	x, y := b.Batch(32, 0)
	if len(x) != 32*5 || len(y) != 32 {
		t.Fatalf("shapes: x=%d y=%d", len(x), len(y))
	}
	seen := map[int]bool{}
	for _, lbl := range y {
		if lbl < 0 || lbl >= 4 {
			t.Fatalf("label %d out of range", lbl)
		}
		seen[lbl] = true
	}
	if len(seen) < 2 {
		t.Fatal("suspiciously few classes in a 32-sample batch")
	}
}

func TestBlobsSeparableAtLowNoise(t *testing.T) {
	// Nearest-center classification should be near-perfect at low
	// noise: the blobs are a usable supervised task.
	b := NewBlobs(6, 3, 0.2, 9)
	x, y := b.Batch(128, 3)
	correct := 0
	for i := 0; i < 128; i++ {
		best, bestD := -1, math.MaxFloat64
		for c := 0; c < 3; c++ {
			var d float64
			for j := 0; j < 6; j++ {
				diff := float64(x[i*6+j] - b.centers[c][j])
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == y[i] {
			correct++
		}
	}
	if correct < 120 {
		t.Fatalf("nearest-center accuracy %d/128 too low", correct)
	}
}

func TestReplicaBatchesLayout(t *testing.T) {
	b := NewBlobs(4, 2, 0.5, 5)
	in, lb := b.ReplicaBatches(2, 3, 8, 11)
	if len(in) != 2 || len(lb) != 2 {
		t.Fatal("replica dimension wrong")
	}
	for r := 0; r < 2; r++ {
		if len(in[r]) != 3 || len(lb[r]) != 3 {
			t.Fatal("microbatch dimension wrong")
		}
		for i := 0; i < 3; i++ {
			if len(in[r][i]) != 8*4 || len(lb[r][i]) != 8 {
				t.Fatal("sample dimension wrong")
			}
		}
	}
	// Replicas see different data (data parallelism).
	same := true
	for j := range in[0][0] {
		if in[0][0][j] != in[1][0][j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("replicas should receive different batches")
	}
}

func TestBlobsBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlobs(0, 3, 0.5, 1)
}

// Property: samples are finite and labels valid for arbitrary shapes.
func TestBlobsFiniteProperty(t *testing.T) {
	f := func(dimRaw, classRaw, seedRaw uint8) bool {
		dim := int(dimRaw%16) + 1
		classes := int(classRaw%8) + 1
		b := NewBlobs(dim, classes, 1.0, uint64(seedRaw))
		x, y := b.Batch(8, uint64(seedRaw)*3)
		for _, v := range x {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
		}
		for _, lbl := range y {
			if lbl < 0 || lbl >= classes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
