// Package data generates deterministic synthetic datasets for the
// real-execution examples and tests: Gaussian class blobs (a stand-in
// for MNIST-class workloads — the paper's experiments need only a
// classification task whose loss visibly decreases).
package data

import "math"

// rng is a small xorshift64* PRNG so datasets are reproducible
// without math/rand global state.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 2685821657736338717
}

// uniform returns a float32 in [0, 1).
func (r *rng) uniform() float32 {
	return float32(r.next()>>11) / float32(1<<53)
}

// normal returns a standard normal sample (Box–Muller).
func (r *rng) normal() float32 {
	u1 := float64(r.uniform())
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := float64(r.uniform())
	return float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// Blobs is a synthetic classification dataset: `classes` Gaussian
// clusters in `dim` dimensions.
type Blobs struct {
	Dim     int
	Classes int
	centers [][]float32
	noise   float32
	seed    uint64
}

// NewBlobs creates the dataset generator. Class centers are placed
// deterministically on coordinate-ish axes scaled to be separable at
// the given noise level.
func NewBlobs(dim, classes int, noise float32, seed uint64) *Blobs {
	if dim <= 0 || classes <= 0 || noise < 0 {
		panic("data: bad blob shape")
	}
	b := &Blobs{Dim: dim, Classes: classes, noise: noise, seed: seed}
	r := rng(seed ^ 0x9e3779b97f4a7c15)
	for c := 0; c < classes; c++ {
		center := make([]float32, dim)
		for d := 0; d < dim; d++ {
			center[d] = 2 * r.normal()
		}
		b.centers = append(b.centers, center)
	}
	return b
}

// Batch fills a flattened [n, Dim] input slice and an [n] label slice
// with fresh samples. The batchIndex seeds the stream so successive
// batches differ but reruns reproduce.
func (b *Blobs) Batch(n int, batchIndex uint64) ([]float32, []int) {
	r := rng(b.seed + batchIndex*0x100000001b3 + 1)
	x := make([]float32, n*b.Dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := int(r.next() % uint64(b.Classes))
		y[i] = c
		for d := 0; d < b.Dim; d++ {
			x[i*b.Dim+d] = b.centers[c][d] + b.noise*r.normal()
		}
	}
	return x, y
}

// ReplicaBatches produces per-replica, per-microbatch batches in the
// layout the exec trainer consumes: inputs[r][i] flattened
// [mbSize, Dim].
func (b *Blobs) ReplicaBatches(replicas, microbatches, mbSize int, step uint64) ([][][]float32, [][][]int) {
	inputs := make([][][]float32, replicas)
	labels := make([][][]int, replicas)
	idx := step * uint64(replicas*microbatches)
	for r := 0; r < replicas; r++ {
		inputs[r] = make([][]float32, microbatches)
		labels[r] = make([][]int, microbatches)
		for i := 0; i < microbatches; i++ {
			x, y := b.Batch(mbSize, idx)
			idx++
			inputs[r][i] = x
			labels[r][i] = y
		}
	}
	return inputs, labels
}
