package sched

import (
	"testing"
	"testing/quick"

	"harmony/internal/graph"
	"harmony/internal/hw"
	"harmony/internal/models"
)

func dpGraph(R, m, N int) *graph.Graph {
	return graph.MustBuild(graph.Config{
		Model:          models.Uniform("u", R, 1000, 4096, 1e6),
		MicrobatchSize: 2,
		Microbatches:   m,
		Replicas:       N,
	})
}

func ppGraph(R, m int) *graph.Graph {
	return graph.MustBuild(graph.Config{
		Model:          models.Uniform("u", R, 1000, 4096, 1e6),
		MicrobatchSize: 2,
		Microbatches:   m,
		Replicas:       1,
	})
}

func TestDefaultOptions(t *testing.T) {
	b := DefaultOptions(DPBaseline)
	if b.Grouping || b.JIT || b.P2P || b.Packing || b.Prefetch || b.DirtyTracking {
		t.Fatalf("baseline should disable all optimizations: %+v", b)
	}
	h := DefaultOptions(HarmonyPP)
	if !h.Grouping || !h.JIT || !h.P2P || !h.Packing || !h.Prefetch || !h.DirtyTracking {
		t.Fatalf("harmony should enable all optimizations: %+v", h)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(dpGraph(4, 2, 2), DefaultOptions(DPBaseline), 3); err == nil {
		t.Fatal("replica/GPU mismatch accepted")
	}
	if _, err := Build(dpGraph(4, 2, 2), DefaultOptions(PPBaseline), 2); err == nil {
		t.Fatal("multi-replica pipeline accepted")
	}
	if _, err := Build(ppGraph(2, 2), DefaultOptions(PPBaseline), 4); err == nil {
		t.Fatal("more stages than layers accepted")
	}
	if _, err := Build(ppGraph(4, 2), DefaultOptions(HarmonyPP), 0); err == nil {
		t.Fatal("zero GPUs accepted")
	}
}

// Every compute task must appear exactly once in exactly one queue,
// on the device it is assigned to; collectives must be separate.
func checkCover(t *testing.T, s *Schedule) {
	t.Helper()
	seen := make(map[int]int)
	for d, q := range s.Queues {
		for _, task := range q {
			seen[task.ID]++
			if s.Assign[task.ID] != hw.DeviceID(d) {
				t.Fatalf("%s queued on gpu%d but assigned %s", task, d, s.Assign[task.ID])
			}
		}
	}
	for _, task := range s.Collectives {
		seen[task.ID]++
		if task.Kind != graph.AllReduce && task.Kind != graph.Gather {
			t.Fatalf("non-collective %s in Collectives", task)
		}
	}
	for _, task := range s.Graph.Tasks {
		if seen[task.ID] != 1 {
			t.Fatalf("%s scheduled %d times", task, seen[task.ID])
		}
	}
}

// Within one device queue, every dependency bound to the same device
// must precede its dependent.
func checkQueueOrder(t *testing.T, s *Schedule) {
	t.Helper()
	pos := make(map[int]int)
	for d, q := range s.Queues {
		for i, task := range q {
			pos[task.ID] = d*1_000_000 + i
		}
	}
	for _, q := range s.Queues {
		for _, task := range q {
			for _, dep := range task.Deps {
				if dep.Kind == graph.AllReduce || dep.Kind == graph.Gather {
					continue
				}
				if s.Assign[dep.ID] == s.Assign[task.ID] && pos[dep.ID] > pos[task.ID] {
					t.Fatalf("%s precedes its dependency %s on %s", task, dep, s.Assign[task.ID])
				}
			}
		}
	}
}

func TestAllModesCoverAndOrder(t *testing.T) {
	cases := []struct {
		name string
		s    *Schedule
	}{
		{"dp-baseline", MustBuild(dpGraph(4, 3, 2), DefaultOptions(DPBaseline), 2)},
		{"harmony-dp", MustBuild(dpGraph(4, 3, 2), DefaultOptions(HarmonyDP), 2)},
		{"pp-baseline", MustBuild(ppGraph(8, 4), DefaultOptions(PPBaseline), 4)},
		{"harmony-pp", MustBuild(ppGraph(8, 4), DefaultOptions(HarmonyPP), 4)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkCover(t, c.s)
			checkQueueOrder(t, c.s)
		})
	}
}

func TestBaselineDPOrderIsMicrobatchMajor(t *testing.T) {
	s := MustBuild(dpGraph(3, 2, 1), Options{Mode: DPBaseline}, 1)
	q := s.Queues[0]
	// Expected: F(0,0) F(1,0) F(2,0) B(2,0) B(1,0) B(0,0), same for
	// mb 1, then updates.
	want := []struct {
		kind  graph.Kind
		layer int
		mb    int
	}{
		{graph.Forward, 0, 0}, {graph.Forward, 1, 0}, {graph.Forward, 2, 0},
		{graph.Backward, 2, 0}, {graph.Backward, 1, 0}, {graph.Backward, 0, 0},
		{graph.Forward, 0, 1}, {graph.Forward, 1, 1}, {graph.Forward, 2, 1},
		{graph.Backward, 2, 1}, {graph.Backward, 1, 1}, {graph.Backward, 0, 1},
		{graph.Update, 0, -1}, {graph.Update, 1, -1}, {graph.Update, 2, -1},
	}
	if len(q) != len(want) {
		t.Fatalf("queue length %d, want %d", len(q), len(want))
	}
	for i, w := range want {
		got := q[i]
		if got.Kind != w.kind || got.Layer != w.layer || got.Microbatch != w.mb {
			t.Fatalf("queue[%d] = %s, want %v[L%d,mb%d]", i, got, w.kind, w.layer, w.mb)
		}
	}
}

func TestHarmonyDPOrderIsLayerMajorWithJIT(t *testing.T) {
	s := MustBuild(dpGraph(3, 2, 1), DefaultOptions(HarmonyDP), 1)
	q := s.Queues[0]
	want := []struct {
		kind  graph.Kind
		layer int
		mb    int
	}{
		{graph.Forward, 0, 0}, {graph.Forward, 0, 1},
		{graph.Forward, 1, 0}, {graph.Forward, 1, 1},
		{graph.Forward, 2, 0}, {graph.Forward, 2, 1},
		{graph.Backward, 2, 0}, {graph.Backward, 2, 1}, {graph.Update, 2, -1},
		{graph.Backward, 1, 0}, {graph.Backward, 1, 1}, {graph.Update, 1, -1},
		{graph.Backward, 0, 0}, {graph.Backward, 0, 1}, {graph.Update, 0, -1},
	}
	if len(q) != len(want) {
		t.Fatalf("queue length %d, want %d", len(q), len(want))
	}
	for i, w := range want {
		got := q[i]
		if got.Kind != w.kind || got.Layer != w.layer || got.Microbatch != w.mb {
			t.Fatalf("queue[%d] = %s, want %v[L%d,mb%d]", i, got, w.kind, w.layer, w.mb)
		}
	}
}

func TestPPBaseline1F1BStructure(t *testing.T) {
	// 4 layers, 4 stages (1 layer each), 4 microbatches.
	s := MustBuild(ppGraph(4, 4), Options{Mode: PPBaseline}, 4)
	// Head stage (0) warms up with 4 forwards; tail stage (3) warms
	// up with 1 then strictly alternates.
	q0 := s.Queues[0]
	for i := 0; i < 4; i++ {
		if q0[i].Kind != graph.Forward {
			t.Fatalf("head stage queue[%d] = %s, want forward warmup", i, q0[i])
		}
	}
	q3 := s.Queues[3]
	if q3[0].Kind != graph.Forward || q3[1].Kind != graph.Backward {
		t.Fatalf("tail stage should alternate from the start: %s %s", q3[0], q3[1])
	}
	// In-flight skew: count max forwards-ahead-of-backwards per stage.
	inflight := func(q []*graph.Task) int {
		cur, max := 0, 0
		for _, task := range q {
			switch task.Kind {
			case graph.Forward:
				if task.Microbatch == 0 || true {
					cur++
				}
			case graph.Backward:
				cur--
			}
			if cur > max {
				max = cur
			}
		}
		return max
	}
	// Only one layer per stage here, so forwards per mb = 1.
	if h, tl := inflight(q0), inflight(q3); h <= tl {
		t.Fatalf("head in-flight (%d) should exceed tail (%d)", h, tl)
	}
}

func TestPartitionBalanced(t *testing.T) {
	s := MustBuild(ppGraph(8, 2), Options{Mode: PPBaseline}, 4)
	counts := map[int]int{}
	for l, st := range s.StageOfLayer {
		counts[st]++
		if l > 0 && st < s.StageOfLayer[l-1] {
			t.Fatal("stages must be contiguous and non-decreasing")
		}
	}
	for st := 0; st < 4; st++ {
		if counts[st] != 2 {
			t.Fatalf("stage %d has %d layers, want 2 (uniform model)", st, counts[st])
		}
	}
}

func TestPackingBalancesHeterogeneousModel(t *testing.T) {
	// A model whose first layer is hugely more expensive: packing
	// should give it a stage of its own.
	m := models.Uniform("skew", 6, 1000, 4096, 1e6)
	m.Layers[0].Params = 50_000
	m.Layers[0].FwdFLOPsPerSample = 5e7
	g := graph.MustBuild(graph.Config{Model: m, MicrobatchSize: 2, Microbatches: 2, Replicas: 1})
	packed := MustBuild(g, Options{Mode: HarmonyPP, Grouping: true, JIT: true, Packing: true}, 3)
	if packed.StageOfLayer[0] != 0 || packed.StageOfLayer[1] != 1 {
		t.Fatalf("packing should isolate the heavy layer: %v", packed.StageOfLayer)
	}
	naive := MustBuild(g, Options{Mode: HarmonyPP, Grouping: true, JIT: true}, 3)
	if naive.StageOfLayer[1] != 0 {
		t.Fatalf("naive split should be by layer count: %v", naive.StageOfLayer)
	}
}

func TestLinearPartitionProperties(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		n := len(raw)
		if n > 20 {
			n = 20
		}
		k := int(kRaw%uint8(n)) + 1
		cost := make([]float64, n)
		for i := 0; i < n; i++ {
			cost[i] = float64(raw[i]) + 1
		}
		bins := linearPartition(cost, k)
		// Contiguous, non-decreasing, uses exactly bins 0..k-1.
		used := map[int]bool{}
		for i, b := range bins {
			if b < 0 || b >= k {
				return false
			}
			if i > 0 && (b < bins[i-1] || b > bins[i-1]+1) {
				return false
			}
			used[b] = true
		}
		return len(used) == k && bins[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesOnlyWithMultipleReplicas(t *testing.T) {
	s1 := MustBuild(dpGraph(3, 2, 1), DefaultOptions(HarmonyDP), 1)
	if len(s1.Collectives) != 0 {
		t.Fatal("single replica should have no collectives")
	}
	s2 := MustBuild(dpGraph(3, 2, 2), DefaultOptions(HarmonyDP), 2)
	if len(s2.Collectives) != 3 {
		t.Fatalf("collectives = %d, want 3 (one per layer)", len(s2.Collectives))
	}
	for _, c := range s2.Collectives {
		if s2.Assign[c.ID] != hw.Host {
			t.Fatal("collectives should carry the host sentinel binding")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := MustBuild(ppGraph(8, 4), DefaultOptions(HarmonyPP), 4)
	b := MustBuild(ppGraph(8, 4), DefaultOptions(HarmonyPP), 4)
	for d := range a.Queues {
		if len(a.Queues[d]) != len(b.Queues[d]) {
			t.Fatal("nondeterministic queue length")
		}
		for i := range a.Queues[d] {
			x, y := a.Queues[d][i], b.Queues[d][i]
			if x.Kind != y.Kind || x.Layer != y.Layer || x.Microbatch != y.Microbatch {
				t.Fatalf("nondeterministic schedule at gpu%d[%d]", d, i)
			}
		}
	}
}

func tpGraph(R, m, K int) *graph.Graph {
	return graph.MustBuild(graph.Config{
		Model:          models.Uniform("u", R, 1000, 4096, 1e6),
		MicrobatchSize: 2,
		Microbatches:   m,
		Replicas:       1,
		OpShards:       K,
	})
}

func TestTPSchedule(t *testing.T) {
	s := MustBuild(tpGraph(4, 3, 2), DefaultOptions(HarmonyTP), 2)
	checkCover(t, s)
	checkQueueOrder(t, s)
	// Gathers are the collectives.
	if len(s.Collectives) == 0 {
		t.Fatal("sharded schedule should list gather collectives")
	}
	for _, c := range s.Collectives {
		if c.Kind != graph.Gather {
			t.Fatalf("collective kind = %v, want Gather", c.Kind)
		}
	}
	// Shard s runs on GPU s.
	for d, q := range s.Queues {
		for _, task := range q {
			if task.Replica != d {
				t.Fatalf("%s queued on gpu%d", task, d)
			}
		}
	}
}

func TestTPValidation(t *testing.T) {
	if _, err := Build(tpGraph(4, 2, 2), DefaultOptions(HarmonyTP), 3); err == nil {
		t.Fatal("shard/GPU mismatch accepted")
	}
	if _, err := Build(tpGraph(4, 2, 2), DefaultOptions(HarmonyDP), 2); err == nil {
		t.Fatal("DP over a sharded graph accepted")
	}
	if _, err := Build(tpGraph(4, 2, 2), DefaultOptions(HarmonyPP), 2); err == nil {
		t.Fatal("PP over a sharded graph accepted")
	}
	if !TPBaseline.IsSharded() || !HarmonyTP.IsSharded() || HarmonyDP.IsSharded() {
		t.Fatal("IsSharded wrong")
	}
	if TPBaseline.String() != "tp-baseline" || HarmonyTP.String() != "harmony-tp" {
		t.Fatal("mode names wrong")
	}
}

func TestTPBaselineDisablesOptimizations(t *testing.T) {
	o := DefaultOptions(TPBaseline)
	if o.Grouping || o.JIT || o.P2P || o.DirtyTracking {
		t.Fatalf("tp-baseline should disable optimizations: %+v", o)
	}
	h := DefaultOptions(HarmonyTP)
	if !h.Grouping || !h.JIT || !h.P2P || !h.DirtyTracking {
		t.Fatalf("harmony-tp should enable optimizations: %+v", h)
	}
}

func TestWaveInterleaveStructure(t *testing.T) {
	// 8 microbatches in waves of 2 on 2 stages: the head stage warms
	// up with ceil((2-0)/2)=1 wave (2 forwards of each layer), then
	// alternates backward-wave/forward-wave.
	g := ppGraph(4, 8)
	opts := DefaultOptions(HarmonyPP)
	opts.GroupSize = 2
	opts.WaveInterleave = true
	s := MustBuild(g, opts, 2)
	checkCover(t, s)
	checkQueueOrder(t, s)
	q := s.Queues[0]
	// Head stage: first wave is forwards only (2 layers × 2 mbs).
	for i := 0; i < 4; i++ {
		if q[i].Kind != graph.Forward {
			t.Fatalf("warmup position %d = %s, want forward", i, q[i])
		}
	}
	// Then a backward wave must appear before all forwards finish.
	sawBwdBeforeLastFwd := false
	fwdSeen := 0
	for _, task := range q {
		if task.Kind == graph.Forward {
			fwdSeen++
		}
		if task.Kind == graph.Backward && fwdSeen < 16 {
			sawBwdBeforeLastFwd = true
			break
		}
	}
	if !sawBwdBeforeLastFwd {
		t.Fatal("interleave should start backwards before the forward sweep completes")
	}
	// JIT updates attach to each layer's final backward wave only.
	updates := 0
	for _, task := range q {
		if task.Kind == graph.Update {
			updates++
		}
	}
	if updates != 2 { // 2 layers on this stage
		t.Fatalf("updates in queue = %d, want 2", updates)
	}
}

func TestGroupSizeWaveCount(t *testing.T) {
	// GroupSize 3 over m=8: waves of 3,3,2 — every microbatch
	// appears exactly once per layer.
	g := ppGraph(2, 8)
	opts := DefaultOptions(HarmonyPP)
	opts.GroupSize = 3
	s := MustBuild(g, opts, 2)
	checkCover(t, s)
	checkQueueOrder(t, s)
}
