package sched

import (
	"math/rand"
	"testing"

	"harmony/internal/graph"
	"harmony/internal/models"
	"harmony/internal/tensor"
)

// Randomized schedule soundness: for random models, parallel modes and
// optimization toggles, every schedule the builder emits must be
// executable (acyclic once queue order is added to the dependency
// edges), cover every (replica, layer, microbatch) task exactly once,
// and never queue a task whose pinned working set exceeds the
// analytic per-layer device-capacity bound.
func TestRandomizedSchedulesAreSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	modes := []Mode{DPBaseline, HarmonyDP, PPBaseline, HarmonyPP, TPBaseline, HarmonyTP}
	for trial := 0; trial < 80; trial++ {
		R := 2 + rng.Intn(5)      // layers
		m := 1 + rng.Intn(5)      // microbatches
		mbSize := 1 + rng.Intn(3) // samples per microbatch
		act := int64(256 << rng.Intn(3))
		model := models.Uniform("rand", R, int64(500+rng.Intn(2000)), act, 1e6)
		if rng.Intn(2) == 0 {
			// Heterogeneous weights stress the packing partitioner.
			model.Layers[rng.Intn(R)].Params *= int64(2 + rng.Intn(8))
		}

		mode := modes[rng.Intn(len(modes))]
		cfg := graph.Config{Model: model, MicrobatchSize: mbSize, Microbatches: m, Replicas: 1}
		var n int
		switch {
		case mode.IsPipeline():
			n = 1 + rng.Intn(min(R, 4))
		case mode.IsSharded():
			n = 2 + rng.Intn(2)
			cfg.OpShards = n
		default:
			n = 1 + rng.Intn(3)
			cfg.Replicas = n
		}

		opts := Options{
			Mode:                mode,
			Grouping:            rng.Intn(2) == 0,
			JIT:                 rng.Intn(2) == 0,
			P2P:                 rng.Intn(2) == 0,
			Packing:             rng.Intn(2) == 0,
			Prefetch:            rng.Intn(2) == 0,
			DirtyTracking:       rng.Intn(2) == 0,
			DeferBlockedUpdates: rng.Intn(2) == 0,
			GroupSize:           rng.Intn(m + 2),
			WaveInterleave:      rng.Intn(2) == 0,
		}

		g, err := graph.Build(cfg)
		if err != nil {
			t.Fatalf("trial %d: graph %+v: %v", trial, cfg, err)
		}
		s, err := Build(g, opts, n)
		if err != nil {
			t.Fatalf("trial %d: sched mode=%v n=%d: %v", trial, mode, n, err)
		}
		if !t.Run("trial", func(t *testing.T) {
			checkCover(t, s)
			checkQueueOrder(t, s)
			checkExecutable(t, s)
			checkSemanticCoverage(t, s, cfg)
			checkDemandBound(t, s)
		}) {
			t.Fatalf("trial %d failed: mode=%v n=%d R=%d m=%d opts=%+v", trial, mode, n, R, m, opts)
		}
	}
}

// checkExecutable runs Kahn's algorithm over the union of dependency
// edges and per-device queue-adjacency edges: a cycle there means the
// in-order runtime deadlocks even though the task graph alone is
// acyclic (e.g. two queues ordered against each other's dependencies).
func checkExecutable(t *testing.T, s *Schedule) {
	t.Helper()
	nTasks := len(s.Graph.Tasks)
	succs := make([][]int, nTasks)
	indeg := make([]int, nTasks)
	addEdge := func(from, to int) {
		succs[from] = append(succs[from], to)
		indeg[to]++
	}
	for _, task := range s.Graph.Tasks {
		for _, dep := range task.Deps {
			addEdge(dep.ID, task.ID)
		}
	}
	for _, q := range s.Queues {
		for i := 1; i < len(q); i++ {
			addEdge(q[i-1].ID, q[i].ID)
		}
	}
	ready := make([]int, 0, nTasks)
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	done := 0
	for len(ready) > 0 {
		id := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		done++
		for _, nxt := range succs[id] {
			if indeg[nxt]--; indeg[nxt] == 0 {
				ready = append(ready, nxt)
			}
		}
	}
	if done != nTasks {
		for _, task := range s.Graph.Tasks {
			if indeg[task.ID] > 0 {
				t.Errorf("stuck task %s on %s", task, s.Assign[task.ID])
			}
		}
		t.Fatalf("schedule deadlocks: %d of %d tasks executable", done, nTasks)
	}
}

// checkSemanticCoverage recounts the queues against the training
// semantics: every (replica/shard, layer, microbatch) forward and
// backward exactly once, every (replica/shard, layer) update exactly
// once — independent of how the graph enumerated its task list.
func checkSemanticCoverage(t *testing.T, s *Schedule, cfg graph.Config) {
	t.Helper()
	groups := cfg.Replicas
	if cfg.OpShards > 1 {
		groups = cfg.OpShards
	}
	R, m := len(cfg.Model.Layers), cfg.Microbatches
	type key struct {
		kind    graph.Kind
		r, l, i int
	}
	counts := map[key]int{}
	for _, q := range s.Queues {
		for _, task := range q {
			counts[key{task.Kind, task.Replica, task.Layer, task.Microbatch}]++
		}
	}
	for r := 0; r < groups; r++ {
		for l := 0; l < R; l++ {
			for i := 0; i < m; i++ {
				if c := counts[key{graph.Forward, r, l, i}]; c != 1 {
					t.Fatalf("FWD[r%d,L%d,mb%d] scheduled %d times", r, l, i, c)
				}
				if c := counts[key{graph.Backward, r, l, i}]; c != 1 {
					t.Fatalf("BWD[r%d,L%d,mb%d] scheduled %d times", r, l, i, c)
				}
			}
			if c := counts[key{graph.Update, r, l, -1}]; c != 1 {
				t.Fatalf("UPD[r%d,L%d] scheduled %d times", r, l, c)
			}
		}
	}
}

// checkDemandBound verifies two capacity invariants for every queued
// compute task: it only pins its own replica's tensors from its own or
// adjacent layers (locality — the property that makes per-device
// memory bounded at all), and its pinned working set stays under the
// analytic per-layer bound a user would size DeviceBytes against.
func checkDemandBound(t *testing.T, s *Schedule) {
	t.Helper()
	model := s.Graph.Cfg.Model
	mb := int64(s.Graph.Cfg.MicrobatchSize)
	bound := func(l int) int64 {
		spec := model.Layers[l]
		shared := int64(float64(spec.WeightBytes()) * (2 + model.OptStateParamsFactor))
		actIn := model.SampleBytes
		if l > 0 {
			actIn = model.Layers[l-1].ActBytesPerSample
		}
		perMB := mb * (2*actIn + 2*spec.ActBytesPerSample + spec.StashBytesPerSample)
		ws := spec.WorkspaceBytes
		if adj := (spec.StashBytesPerSample - spec.ActBytesPerSample) * mb; adj > 0 {
			ws += adj
		}
		return shared + perMB + ws
	}
	for d, q := range s.Queues {
		for _, task := range q {
			demand := task.WorkspaceBytes
			for _, ts := range [][]*tensor.Tensor{task.Inputs, task.Outputs} {
				for _, ten := range ts {
					demand += ten.Bytes
					if ten.Layer < task.Layer-1 || ten.Layer > task.Layer+1 {
						t.Fatalf("%s on gpu%d pins non-adjacent layer tensor %s", task, d, ten)
					}
				}
			}
			if b := bound(task.Layer); demand > b {
				t.Fatalf("%s on gpu%d pins %d bytes, analytic layer bound is %d", task, d, demand, b)
			}
		}
	}
}
