// Chunked, bucketed gradient collectives. The monolithic AllReduce
// rendezvous serializes communication against backward compute: every
// device worker parks and the last arriver reduces the whole layer
// gradient. This file computes a plan-time refinement — DDP-style
// byte-budgeted buckets of consecutive reverse-order layers, each
// split into fixed chunks reduced by deterministically assigned
// workers — so reduce work spreads across workers and finished workers
// resume compute while other chunks still reduce.
//
// Everything here is a pure function of the plan: bucket membership
// (greedy packing of per-layer gradient bytes in reverse layer order),
// chunk boundaries (even element split, never crossing a member
// boundary), and reducer assignment (global chunk index modulo NGPUs).
// Arrival order never enters, which is what keeps the chunked path
// bit-exact with the monolithic and serial paths.
package sched

import "harmony/internal/graph"

// commElemBytes is the element size of gradient payloads; the compute
// kernels operate on float32 throughout.
const commElemBytes = 4

// CommChunk is one independent chunk rendezvous: the element range
// [Lo, Hi) of one bucket member's gradient, reduced across all
// replicas by device worker Reducer.
type CommChunk struct {
	// Member indexes CommBucket.Members.
	Member int
	// Lo and Hi bound the float32 element range [Lo, Hi) within the
	// member collective's per-replica gradient.
	Lo, Hi int
	// Reducer is the device worker that executes this chunk's
	// reduction: the global chunk index modulo NGPUs, fixed at plan
	// time.
	Reducer int
}

// CommBucket is one rendezvous shared by one or more collectives.
// Members are indices into Schedule.Collectives, in plan order
// (ascending index = descending layer, mirroring backward completion
// order); chunks never cross member boundaries.
type CommBucket struct {
	Members []int
	// Bytes is the total per-replica payload of all members.
	Bytes int64
	// Chunks covers every member's full element range exactly once,
	// ordered member-major then ascending Lo.
	Chunks []CommChunk
}

// commLayerBuckets partitions layers into buckets by walking layers in
// reverse order (the order gradients become ready during backward) and
// greedily packing consecutive layers while the summed per-replica
// gradient bytes stay within budget. budget <= 0 means one bucket per
// layer. Each bucket lists its layers in descending order; buckets are
// returned in reverse layer order (deepest first).
func commLayerBuckets(g *graph.Graph, budget int64) [][]int {
	R := g.Layers()
	var buckets [][]int
	for l := R - 1; l >= 0; {
		layers := []int{l}
		total := g.AR[l].CommBytes
		l--
		for budget > 0 && l >= 0 && total+g.AR[l].CommBytes <= budget {
			layers = append(layers, l)
			total += g.AR[l].CommBytes
			l--
		}
		buckets = append(buckets, layers)
	}
	return buckets
}

// commUpdateGroups returns, for JIT placement in buildDP, the layers
// whose updates are emitted right after layer l's last backward.
// Without a comm plan this is the identity — layer l's own update.
//
// With a comm plan (chunked and/or bucketed collectives), each
// bucket's updates are deferred past the NEXT bucket's deepest
// backward (the last bucket's past layer 0's backward). The executor
// anchors a chunked rendezvous at the earliest point its member
// gradients exist, so the entries following it in the stream are the
// next bucket's backwards — compute a worker can run while other
// workers still reduce. Placing updates directly behind the
// rendezvous would stall early finishers on member completion
// instead; deferring them by one bucket is what turns the chunked
// plan's early departure into actual overlap.
func (s *Schedule) commUpdateGroups() [][]int {
	R := s.Graph.Layers()
	updAfter := make([][]int, R)
	if s.Opts.CommChunks > 0 && s.Graph.AR != nil {
		buckets := commLayerBuckets(s.Graph, s.Opts.CommBucketBytes)
		for bi, layers := range buckets {
			at := 0 // last bucket: after the final backward
			if bi+1 < len(buckets) {
				next := buckets[bi+1]
				at = next[len(next)-1]
			}
			updAfter[at] = append(updAfter[at], layers...)
		}
		return updAfter
	}
	for l := 0; l < R; l++ {
		updAfter[l] = []int{l}
	}
	return updAfter
}

// buildComm fills Schedule.Comm from the already-built Collectives
// list. Called only for data-parallel plans with gradient AllReduces
// (Collectives[ci] = AR[R-1-ci]).
func (s *Schedule) buildComm() {
	g := s.Graph
	R := g.Layers()
	chunks := s.Opts.CommChunks
	nextReducer := 0
	for _, layers := range commLayerBuckets(g, s.Opts.CommBucketBytes) {
		b := CommBucket{}
		for _, l := range layers {
			b.Members = append(b.Members, R-1-l)
			b.Bytes += g.AR[l].CommBytes
		}
		// Even element split across the bucket: target chunk size is
		// ceil(total/chunks), and each member is sliced independently
		// at that grain so no chunk crosses a member boundary.
		totalFloats := int(b.Bytes / commElemBytes)
		target := (totalFloats + chunks - 1) / chunks
		if target < 1 {
			target = 1
		}
		for mi, ci := range b.Members {
			floats := int(s.Collectives[ci].CommBytes / commElemBytes)
			for lo := 0; lo < floats; lo += target {
				hi := lo + target
				if hi > floats {
					hi = floats
				}
				b.Chunks = append(b.Chunks, CommChunk{
					Member:  mi,
					Lo:      lo,
					Hi:      hi,
					Reducer: nextReducer % s.NGPUs,
				})
				nextReducer++
			}
		}
		s.Comm = append(s.Comm, b)
	}
}
