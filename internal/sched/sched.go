// Package sched builds execution schedules over the fine-grained task
// graph: the per-GPU-virtualization baselines (data-parallel and
// 1F1B pipeline-parallel) and the Harmony variants that add the four
// optimizations of the paper — input-batch grouping, just-in-time
// weight updates, peer-to-peer transfers, and load-balanced task
// packing. Every optimization is an independent Options toggle so the
// ablation benches can flip one at a time.
//
// A Schedule is a total order of tasks per device plus a memory
// policy; the runtime executes it respecting both the order and the
// task graph's dependency edges (late binding happens here: the graph
// itself never mentions devices).
package sched

import (
	"fmt"

	"harmony/internal/graph"
	"harmony/internal/hw"
	"harmony/internal/memory"
)

// Mode selects the training strategy.
type Mode int

const (
	// DPBaseline is data parallelism with naive per-GPU memory
	// virtualization (IBM-LMS style): each replica re-swaps weights
	// for every microbatch and writes back clean tensors.
	DPBaseline Mode = iota
	// PPBaseline is 1F1B pipeline parallelism with naive per-GPU
	// virtualization; stages are split by layer count.
	PPBaseline
	// HarmonyDP is data parallelism with grouping, JIT updates,
	// dirty tracking and prefetch.
	HarmonyDP
	// HarmonyPP is pipeline parallelism with all four Harmony
	// optimizations.
	HarmonyPP
	// TPBaseline is intra-op sharding (each operation decomposed
	// across all GPUs, Megatron-style) with naive per-GPU
	// virtualization.
	TPBaseline
	// HarmonyTP is intra-op sharding with the Harmony optimizations.
	HarmonyTP
)

var modeNames = [...]string{"dp-baseline", "pp-baseline", "harmony-dp", "harmony-pp", "tp-baseline", "harmony-tp"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// IsPipeline reports whether the mode splits layers across devices.
func (m Mode) IsPipeline() bool { return m == PPBaseline || m == HarmonyPP }

// IsSharded reports whether the mode decomposes individual operations
// across devices (intra-op sharding).
func (m Mode) IsSharded() bool { return m == TPBaseline || m == HarmonyTP }

// Options selects a mode and its optimization toggles.
type Options struct {
	Mode Mode

	// Grouping enables input-batch grouping: a layer's task runs
	// across all microbatches back-to-back, so its state is swapped
	// once per phase instead of once per microbatch (§3 opt 1).
	Grouping bool
	// JIT schedules each layer's weight update immediately after its
	// last backward, while W and dW are still resident (§3 opt 2).
	JIT bool
	// P2P moves shared tensors between devices over direct links
	// instead of bouncing through host memory (§3 opt 3).
	P2P bool
	// Packing balances pipeline stages by compute, weight and stash
	// load instead of naive equal layer counts (§3 opt 4).
	Packing bool
	// Prefetch overlaps the next task's swap-ins with the current
	// task's compute (the double-buffering of §4).
	Prefetch bool
	// AdaptivePrefetch lets the executor retune each device's
	// prefetch lookahead window and byte budget online, between
	// iterations, from deterministic per-step coverage counters (§4's
	// open problem of online tuning). Implies Prefetch. The window
	// stays inside [WindowMin, WindowMax], so static verification can
	// bound residency by the maximum admissible budget rather than
	// the starting one.
	AdaptivePrefetch bool
	// WindowMin and WindowMax bound the adaptive lookahead window
	// (entries, not bytes). Zero values default to 1 and 8 when
	// AdaptivePrefetch is set; WindowMin must never drop below 1 and
	// must not exceed WindowMax — schedcheck rejects such plans.
	WindowMin int
	WindowMax int
	// DirtyTracking drops clean tensors on eviction instead of
	// writing them back.
	DirtyTracking bool
	// DeferBlockedUpdates lets the runtime skip past an update task
	// whose AllReduce has not finished instead of stalling the device
	// queue. This trades the JIT residency of W/dW (they may be
	// evicted by the intervening tasks) for collective/compute
	// overlap — one axis of the paper's §4 memory–performance tango.
	// Off by default: under memory pressure the re-swap cost exceeds
	// the stall, and Fig. 5's 3N|W| volume assumes strict adjacency.
	DeferBlockedUpdates bool

	// CommChunks splits each gradient collective into that many
	// fixed, plan-time chunk rendezvous, each reduced by a
	// deterministically assigned device worker (global chunk index k →
	// worker k mod NGPUs), so reduce work spreads across workers and a
	// worker whose chunks are done resumes compute while other chunks
	// still reduce. 0 keeps the monolithic rendezvous. Only meaningful
	// for data-parallel modes; sharded modes reject it (their gathers
	// sit on the critical path by construction).
	CommChunks int
	// CommBucketBytes coalesces consecutive per-layer gradients (in
	// reverse layer order, mirroring backward) into byte-budgeted
	// buckets sharing one rendezvous, so tiny layers stop paying a
	// rendezvous each (DDP-style bucketing). 0 keeps one bucket per
	// layer. Setting it implies CommChunks >= 1. Bucketing regroups
	// JIT updates: a bucket's updates are emitted together after the
	// bucket's deepest member finishes its backward sweep.
	CommBucketBytes int64

	// GroupSize bounds how many microbatches one grouped task sweep
	// covers (0 = all of them). It is the paper's §4 tango knob for
	// pipeline mode: grouping the full mini-batch minimizes weight
	// swaps (3|W|) but serializes stages; smaller groups pipeline as
	// waves at the cost of re-swapping weights once per wave
	// ((2·⌈m/G⌉+1)|W|). The tuner searches this dimension.
	GroupSize int

	// LookaheadEviction selects schedule-informed (Belady-style)
	// eviction over plain LRU: the memory manager asks the runtime
	// for each tensor's next scheduled use and evicts the
	// farthest-future one. The paper's scheduler/swapper co-design.
	LookaheadEviction bool

	// WaveInterleave runs pipeline waves in 1F1B order (forward wave
	// / backward wave alternation after a warmup) instead of all
	// forwards then all backwards. This bounds in-flight stash to
	// ~(pipeline depth)·GroupSize microbatches per stage rather than
	// all m — essential for stash-heavy workloads (long-sequence
	// transformers) where the plain grouped schedule's stash demand
	// would itself blow past device memory. Requires GroupSize > 0.
	WaveInterleave bool
}

// DefaultOptions returns the canonical option set for a mode:
// baselines disable everything, Harmony modes enable everything.
func DefaultOptions(m Mode) Options {
	switch m {
	case HarmonyTP:
		// Sharded mode has no AllReduce, so deferral never triggers;
		// gathers sit on the critical path by construction.
		return Options{Mode: m, Grouping: true, JIT: true, P2P: true, Packing: true,
			Prefetch: true, DirtyTracking: true}
	case HarmonyDP:
		// DeferBlockedUpdates keeps per-layer AllReduces off the
		// critical path (the scheduler running ready tasks instead of
		// stalling); the measured win over strict adjacency outweighs
		// the occasional re-swap except at extreme memory pressure
		// (see the tuner and the Fig. 5 idealized configuration).
		return Options{Mode: m, Grouping: true, JIT: true, P2P: true, Packing: true,
			Prefetch: true, DirtyTracking: true, DeferBlockedUpdates: true}
	case HarmonyPP:
		// Pipeline mode has a single replica and no collectives, so
		// update deferral never triggers.
		return Options{Mode: m, Grouping: true, JIT: true, P2P: true, Packing: true,
			Prefetch: true, DirtyTracking: true}
	default:
		return Options{Mode: m}
	}
}

// Schedule is a bound, ordered execution plan for one iteration.
type Schedule struct {
	Graph *graph.Graph
	Opts  Options
	NGPUs int

	// Assign maps task ID → device. AllReduce tasks are assigned
	// hw.Host as a sentinel (they run on the interconnect, touching
	// all devices).
	Assign []hw.DeviceID
	// Queues is the per-device total order of compute tasks.
	Queues [][]*graph.Task
	// Collectives holds AllReduce tasks; the runtime launches each
	// as soon as its dependencies complete.
	Collectives []*graph.Task
	// Comm is the chunked/bucketed collective plan (nil when
	// Opts.CommChunks == 0 or the plan has no gradient collectives).
	// Bucket membership, chunk boundaries and reducer assignment are
	// all pure functions of the plan — never arrival order — so the
	// chunked path stays bit-exact with the monolithic one.
	Comm []CommBucket

	// StageOfLayer maps layer → stage for pipeline modes (nil for
	// DP).
	StageOfLayer []int

	// MemPolicy and Prefetch configure the memory manager.
	MemPolicy memory.Policy
	Prefetch  bool
}

// Device returns the device a task is bound to.
func (s *Schedule) Device(t *graph.Task) hw.DeviceID { return s.Assign[t.ID] }

// Build constructs the schedule for a graph on nGPUs devices.
func Build(g *graph.Graph, opts Options, nGPUs int) (*Schedule, error) {
	if nGPUs <= 0 {
		return nil, fmt.Errorf("sched: nGPUs must be positive, got %d", nGPUs)
	}
	if opts.CommChunks < 0 || opts.CommBucketBytes < 0 {
		return nil, fmt.Errorf("sched: comm knobs must be non-negative (chunks=%d, bucket=%d)",
			opts.CommChunks, opts.CommBucketBytes)
	}
	if opts.CommBucketBytes > 0 && opts.CommChunks == 0 {
		// Bucketing implies the chunked rendezvous machinery; one chunk
		// per bucket is the degenerate-but-valid resolution.
		opts.CommChunks = 1
	}
	if opts.CommChunks > 0 && opts.Mode.IsSharded() {
		return nil, fmt.Errorf("sched: %s has no gradient AllReduce to chunk (gathers are on the critical path)", opts.Mode)
	}
	if opts.AdaptivePrefetch {
		// Adaptive mode is a refinement of static prefetch: normalize
		// the window bounds here so every consumer (executor,
		// schedcheck, variants sweep) sees the same resolved values.
		opts.Prefetch = true
		if opts.WindowMin == 0 {
			opts.WindowMin = 1
		}
		if opts.WindowMax == 0 {
			opts.WindowMax = 8
		}
		if opts.WindowMin < 1 || opts.WindowMin > opts.WindowMax {
			return nil, fmt.Errorf("sched: adaptive window bounds [%d, %d] invalid (need 1 <= min <= max)",
				opts.WindowMin, opts.WindowMax)
		}
	}
	s := &Schedule{
		Graph:  g,
		Opts:   opts,
		NGPUs:  nGPUs,
		Assign: make([]hw.DeviceID, len(g.Tasks)),
		Queues: make([][]*graph.Task, nGPUs),
		MemPolicy: memory.Policy{
			DirtyTracking: opts.DirtyTracking,
			P2P:           opts.P2P,
			Lookahead:     opts.LookaheadEviction,
		},
		Prefetch: opts.Prefetch,
	}
	switch opts.Mode {
	case DPBaseline, HarmonyDP:
		if g.Cfg.Replicas != nGPUs {
			return nil, fmt.Errorf("sched: %s needs one replica per GPU (replicas=%d, gpus=%d)",
				opts.Mode, g.Cfg.Replicas, nGPUs)
		}
		if g.Cfg.OpShards > 1 {
			return nil, fmt.Errorf("sched: %s cannot schedule an op-sharded graph", opts.Mode)
		}
		s.buildDP()
	case TPBaseline, HarmonyTP:
		if g.Cfg.OpShards != nGPUs {
			return nil, fmt.Errorf("sched: %s needs one shard per GPU (shards=%d, gpus=%d)",
				opts.Mode, g.Cfg.OpShards, nGPUs)
		}
		s.buildDP() // shard queues have the same shape as replica queues
	case PPBaseline, HarmonyPP:
		if g.Cfg.Replicas != 1 || g.Cfg.OpShards > 1 {
			return nil, fmt.Errorf("sched: %s needs a single unsharded replica", opts.Mode)
		}
		if g.Layers() < nGPUs {
			return nil, fmt.Errorf("sched: %d layers cannot fill %d pipeline stages", g.Layers(), nGPUs)
		}
		s.buildPP()
	default:
		return nil, fmt.Errorf("sched: unknown mode %v", opts.Mode)
	}
	if opts.CommChunks > 0 && len(s.Collectives) > 0 {
		// Pipeline modes have no gradient collectives, so Comm stays
		// nil there and the knob is an accepted no-op.
		s.buildComm()
	}
	return s, nil
}

// MustBuild panics on error; for tests and static configs.
func MustBuild(g *graph.Graph, opts Options, nGPUs int) *Schedule {
	s, err := Build(g, opts, nGPUs)
	if err != nil {
		panic(err)
	}
	return s
}

// buildDP binds replica r to GPU r and orders each queue either
// microbatch-major (baseline, Fig. 5(b)) or layer-major with grouping
// (Harmony, Fig. 5(c)).
func (s *Schedule) buildDP() {
	g := s.Graph
	R, m := g.Layers(), g.Cfg.Microbatches
	updAfter := s.commUpdateGroups()
	for r := 0; r < s.NGPUs; r++ {
		dev := hw.DeviceID(r)
		q := make([]*graph.Task, 0, R*m*2+R)
		if s.Opts.Grouping {
			// Layer-major: each layer crosses a group of microbatches
			// back-to-back, so W[l] is swapped once per phase per
			// wave (GroupSize = 0 means one wave covering all m).
			G := s.Opts.GroupSize
			if G <= 0 || G > m {
				G = m
			}
			waves := (m + G - 1) / G
			for w := 0; w < waves; w++ {
				lo, hi := w*G, min((w+1)*G, m)
				for l := 0; l < R; l++ {
					for i := lo; i < hi; i++ {
						q = append(q, g.Fwd[r][l][i])
					}
				}
			}
			for w := waves - 1; w >= 0; w-- {
				lo, hi := w*G, min((w+1)*G, m)
				for l := R - 1; l >= 0; l-- {
					for i := lo; i < hi; i++ {
						q = append(q, g.Bwd[r][l][i])
					}
					if s.Opts.JIT && w == 0 {
						for _, ul := range updAfter[l] {
							q = append(q, g.Upd[r][ul])
						}
					}
				}
			}
		} else {
			// Microbatch-major: the standard PyTorch loop.
			for i := 0; i < m; i++ {
				for l := 0; l < R; l++ {
					q = append(q, g.Fwd[r][l][i])
				}
				for l := R - 1; l >= 0; l-- {
					q = append(q, g.Bwd[r][l][i])
					if s.Opts.JIT && i == m-1 {
						for _, ul := range updAfter[l] {
							q = append(q, g.Upd[r][ul])
						}
					}
				}
			}
		}
		if !s.Opts.JIT {
			// Rigid scheduling: all updates after the full backward
			// pass, forcing W/dW to be re-swapped (§2 inefficiency 2).
			for l := 0; l < R; l++ {
				q = append(q, g.Upd[r][l])
			}
		}
		for _, t := range q {
			s.Assign[t.ID] = dev
		}
		s.Queues[r] = q
	}
	if g.AR != nil {
		// Gradients all-reduce per layer, launched as dependencies
		// complete (reverse layer order mirrors backward).
		for l := R - 1; l >= 0; l-- {
			s.Assign[g.AR[l].ID] = hw.Host
			s.Collectives = append(s.Collectives, g.AR[l])
		}
	}
	// Op-sharded graphs: the gathers are the collectives.
	for _, row := range g.AGf {
		for _, ag := range row {
			if ag != nil {
				s.Assign[ag.ID] = hw.Host
				s.Collectives = append(s.Collectives, ag)
			}
		}
	}
	for _, row := range g.AGb {
		for _, ag := range row {
			if ag != nil {
				s.Assign[ag.ID] = hw.Host
				s.Collectives = append(s.Collectives, ag)
			}
		}
	}
}

// buildPP partitions layers into contiguous stages and orders each
// stage's queue: 1F1B for the baseline, grouped phases for Harmony.
func (s *Schedule) buildPP() {
	g := s.Graph
	m := g.Cfg.Microbatches
	s.StageOfLayer = s.partition()
	layersOf := make([][]int, s.NGPUs)
	for l, st := range s.StageOfLayer {
		layersOf[st] = append(layersOf[st], l)
	}
	for st := 0; st < s.NGPUs; st++ {
		dev := hw.DeviceID(st)
		ls := layersOf[st]
		var q []*graph.Task
		fwd := func(i int) {
			for _, l := range ls {
				q = append(q, g.Fwd[0][l][i])
			}
		}
		bwd := func(i int, jit bool) {
			for k := len(ls) - 1; k >= 0; k-- {
				l := ls[k]
				q = append(q, g.Bwd[0][l][i])
				if jit && i == m-1 {
					q = append(q, g.Upd[0][l])
				}
			}
		}
		if s.Opts.Grouping {
			// Harmony-PP (Fig. 4): each layer runs a group of
			// microbatches back-to-back, forward then backward, with
			// JIT updates folded into the final backward sweep.
			// GroupSize < m splits the mini-batch into waves that
			// pipeline across stages (forward waves ascending,
			// backward waves descending so the last forward wave's
			// stash is consumed first while still warm).
			G := s.Opts.GroupSize
			if G <= 0 || G > m {
				G = m
			}
			waves := (m + G - 1) / G
			fwdWave := func(w int) {
				lo, hi := w*G, min((w+1)*G, m)
				for _, l := range ls {
					for i := lo; i < hi; i++ {
						q = append(q, g.Fwd[0][l][i])
					}
				}
			}
			bwdWave := func(w int, jit bool) {
				lo, hi := w*G, min((w+1)*G, m)
				for k := len(ls) - 1; k >= 0; k-- {
					l := ls[k]
					for i := lo; i < hi; i++ {
						q = append(q, g.Bwd[0][l][i])
					}
					if jit {
						q = append(q, g.Upd[0][l])
					}
				}
			}
			if s.Opts.WaveInterleave && waves > 1 {
				// 1F1B at wave granularity: warm up with enough
				// forward waves to cover the same microbatch depth
				// as classic 1F1B (stages − this stage), alternate,
				// then drain. Bounds in-flight stash per stage.
				warm := (s.NGPUs - st + G - 1) / G
				if warm > waves {
					warm = waves
				}
				if warm < 1 {
					warm = 1
				}
				for w := 0; w < warm; w++ {
					fwdWave(w)
				}
				for w := warm; w < waves; w++ {
					bwdWave(w-warm, s.Opts.JIT && w-warm == waves-1)
					fwdWave(w)
				}
				for w := waves - warm; w < waves; w++ {
					bwdWave(w, s.Opts.JIT && w == waves-1)
				}
			} else {
				for w := 0; w < waves; w++ {
					fwdWave(w)
				}
				for w := waves - 1; w >= 0; w-- {
					bwdWave(w, s.Opts.JIT && w == 0)
				}
			}
		} else {
			// 1F1B (memory-efficient pipeline): warmup forwards, a
			// steady 1F1B phase, then drain backwards. In-flight
			// microbatches at stage st: min(m, NGPUs-st) — the head
			// stashes the most, the Fig. 2(c) imbalance.
			warm := s.NGPUs - st
			if warm > m {
				warm = m
			}
			for i := 0; i < warm; i++ {
				fwd(i)
			}
			for i := warm; i < m; i++ {
				bwd(i-warm, s.Opts.JIT)
				fwd(i)
			}
			for i := m - warm; i < m; i++ {
				bwd(i, s.Opts.JIT)
			}
		}
		if !s.Opts.JIT {
			for _, l := range ls {
				q = append(q, g.Upd[0][l])
			}
		}
		for _, t := range q {
			s.Assign[t.ID] = dev
		}
		s.Queues[st] = q
	}
}

// partition splits layers into NGPUs contiguous stages. Without
// Packing it balances layer counts; with Packing it balances a
// composite load of compute, weight bytes and stash bytes (the
// multi-dimensional "task packing" of §3 opt 4) using the classic
// linear-partition dynamic program.
func (s *Schedule) partition() []int {
	g := s.Graph
	R := g.Layers()
	N := s.NGPUs
	cost := make([]float64, R)
	if s.Opts.Packing {
		var totFlops, totBytes float64
		flops := make([]float64, R)
		bytes := make([]float64, R)
		for l, spec := range g.Cfg.Model.Layers {
			flops[l] = spec.FwdFLOPsPerSample * (1 + 2) // fwd + bwd
			bytes[l] = float64(spec.WeightBytes())*(2+g.Cfg.Model.OptStateParamsFactor) +
				float64(spec.StashBytesPerSample*int64(g.Cfg.MicrobatchSize*g.Cfg.Microbatches))
			totFlops += flops[l]
			totBytes += bytes[l]
		}
		for l := 0; l < R; l++ {
			cost[l] = flops[l]/totFlops + bytes[l]/totBytes
		}
	} else {
		for l := 0; l < R; l++ {
			cost[l] = 1
		}
	}
	return linearPartition(cost, N)
}

// linearPartition assigns each index a bin 0..k-1 with contiguous
// bins, minimizing the maximum bin cost (standard O(n²k) DP).
func linearPartition(cost []float64, k int) []int {
	n := len(cost)
	prefix := make([]float64, n+1)
	for i, c := range cost {
		prefix[i+1] = prefix[i] + c
	}
	rangeCost := func(i, j int) float64 { return prefix[j] - prefix[i] } // [i, j)
	const inf = 1e300
	// best[i][p] = minimal max-load splitting cost[0:i] into p bins.
	best := make([][]float64, n+1)
	cut := make([][]int, n+1)
	for i := range best {
		best[i] = make([]float64, k+1)
		cut[i] = make([]int, k+1)
		for p := range best[i] {
			best[i][p] = inf
		}
	}
	best[0][0] = 0
	for p := 1; p <= k; p++ {
		for i := 1; i <= n; i++ {
			for j := p - 1; j < i; j++ {
				if best[j][p-1] == inf {
					continue
				}
				load := rangeCost(j, i)
				v := best[j][p-1]
				if load > v {
					v = load
				}
				if v < best[i][p] {
					best[i][p] = v
					cut[i][p] = j
				}
			}
		}
	}
	out := make([]int, n)
	i := n
	for p := k; p >= 1; p-- {
		j := cut[i][p]
		for x := j; x < i; x++ {
			out[x] = p - 1
		}
		i = j
	}
	return out
}
