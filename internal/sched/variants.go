package sched

// OptionVariants enumerates every queue-shaping option profile Build
// can emit for a mode — the lattice of toggles that change task order,
// grouping, partitioning or collective placement. It exists for
// exhaustive property sweeps (schedcheck verifies every variant of
// every mode) and deliberately excludes knobs that do not alter the
// plan shape itself (P2P, LookaheadEviction: runtime policies carried
// on MemPolicy but identical queues).
//
// microbatches bounds the GroupSize axis: group sizes beyond m
// collapse to full grouping, so only {full, 1, 2} are distinct.
func OptionVariants(mode Mode, microbatches int) []Options {
	groupSizes := []int{0}
	if microbatches > 2 {
		groupSizes = []int{0, 1, 2}
	} else if microbatches > 1 {
		groupSizes = []int{0, 1}
	}
	var out []Options
	for _, grouping := range []bool{false, true} {
		for _, jit := range []bool{false, true} {
			for _, dirty := range []bool{false, true} {
				for _, prefetch := range []bool{false, true} {
					base := Options{
						Mode:          mode,
						Grouping:      grouping,
						JIT:           jit,
						DirtyTracking: dirty,
						Prefetch:      prefetch,
					}
					if !grouping {
						out = append(out, base)
						continue
					}
					for _, gs := range groupSizes {
						o := base
						o.GroupSize = gs
						out = append(out, o)
						if mode.IsPipeline() && gs > 0 {
							w := o
							w.WaveInterleave = true
							out = append(out, w)
						}
					}
				}
			}
		}
	}
	if mode.IsPipeline() {
		// Packing changes the stage partition, another plan shape.
		packed := make([]Options, 0, 2*len(out))
		for _, o := range out {
			packed = append(packed, o)
			p := o
			p.Packing = true
			packed = append(packed, p)
		}
		out = packed
	}
	// DeferBlockedUpdates does not reorder queues, but it changes how
	// the executor treats update heads; include it on the canonical
	// Harmony profile so the sweep covers both executor paths.
	for _, o := range out {
		if o.Grouping && o.JIT && o.DirtyTracking && o.GroupSize == 0 {
			d := o
			d.DeferBlockedUpdates = true
			out = append(out, d)
		}
	}
	// AdaptivePrefetch does not reorder queues either, but it raises
	// the residency bound schedcheck must verify (maximum admissible
	// window, not the static one); include it on the canonical
	// prefetching Harmony profile so the sweep proves that bound.
	for _, o := range out {
		if o.Grouping && o.JIT && o.DirtyTracking && o.Prefetch && o.GroupSize == 0 && !o.DeferBlockedUpdates {
			a := o
			a.AdaptivePrefetch = true
			a.WindowMin, a.WindowMax = 1, 8
			out = append(out, a)
		}
	}
	// Chunked collectives restructure the rendezvous, and bucketing
	// additionally regroups JIT updates — both are plan shapes the
	// checker must prove (sharded modes reject the knobs; pipeline
	// plans have no gradient collectives, so they would be no-ops).
	if !mode.IsPipeline() && !mode.IsSharded() {
		for _, o := range out {
			if o.Grouping && o.JIT && o.DirtyTracking && !o.Prefetch && o.GroupSize == 0 && !o.DeferBlockedUpdates {
				c := o
				c.CommChunks = 4
				b := o
				b.CommChunks = 4
				b.CommBucketBytes = 1 << 20 // covers every layer: one multi-member bucket
				out = append(out, c, b)
				break
			}
		}
	}
	return out
}
