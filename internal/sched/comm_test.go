package sched

import (
	"reflect"
	"testing"

	"harmony/internal/graph"
)

// commOpts is the canonical Harmony-DP profile with the comm knobs on.
func commOpts(chunks int, bucket int64) Options {
	o := DefaultOptions(HarmonyDP)
	o.CommChunks = chunks
	o.CommBucketBytes = bucket
	return o
}

func TestCommKnobValidation(t *testing.T) {
	g := dpGraph(4, 2, 2)
	if _, err := Build(g, commOpts(-1, 0), 2); err == nil {
		t.Fatal("negative CommChunks accepted")
	}
	if _, err := Build(g, commOpts(0, -1), 2); err == nil {
		t.Fatal("negative CommBucketBytes accepted")
	}
	tp := graph.MustBuild(graph.Config{
		Model:          dpGraph(4, 2, 1).Cfg.Model,
		MicrobatchSize: 2, Microbatches: 2, Replicas: 1, OpShards: 2,
	})
	o := DefaultOptions(HarmonyTP)
	o.CommChunks = 4
	if _, err := Build(tp, o, 2); err == nil {
		t.Fatal("sharded mode accepted CommChunks")
	}
	// Bucketing alone implies one chunk per bucket.
	s := MustBuild(g, commOpts(0, 1<<20), 2)
	if s.Opts.CommChunks != 1 {
		t.Fatalf("CommBucketBytes alone should normalize CommChunks to 1, got %d", s.Opts.CommChunks)
	}
	// Pipeline plans have no gradient collectives: knob is a no-op.
	po := DefaultOptions(HarmonyPP)
	po.CommChunks = 4
	ps := MustBuild(ppGraph(8, 4), po, 4)
	if ps.Comm != nil {
		t.Fatalf("pipeline plan built a comm plan: %+v", ps.Comm)
	}
}

// checkCommCover verifies the structural invariants of a comm plan:
// every collective appears in exactly one bucket, every member's full
// element range is covered exactly once by chunks that never cross a
// member boundary, and reducers follow the global k mod N assignment.
func checkCommCover(t *testing.T, s *Schedule) {
	t.Helper()
	if len(s.Comm) == 0 {
		t.Fatal("no comm plan built")
	}
	seen := make(map[int]bool)
	k := 0
	for bi, b := range s.Comm {
		var total int64
		for _, ci := range b.Members {
			if ci < 0 || ci >= len(s.Collectives) {
				t.Fatalf("bucket %d member %d out of range", bi, ci)
			}
			if seen[ci] {
				t.Fatalf("collective %d in two buckets", ci)
			}
			seen[ci] = true
			total += s.Collectives[ci].CommBytes
		}
		if b.Bytes != total {
			t.Fatalf("bucket %d Bytes=%d, members sum to %d", bi, b.Bytes, total)
		}
		next := make([]int, len(b.Members))
		mi := 0
		for _, c := range b.Chunks {
			if c.Member < mi {
				t.Fatalf("bucket %d chunks not member-major", bi)
			}
			mi = c.Member
			if c.Lo != next[c.Member] || c.Hi <= c.Lo {
				t.Fatalf("bucket %d member %d chunk [%d,%d) not contiguous from %d",
					bi, c.Member, c.Lo, c.Hi, next[c.Member])
			}
			next[c.Member] = c.Hi
			if c.Reducer != k%s.NGPUs {
				t.Fatalf("chunk %d reducer %d, want %d", k, c.Reducer, k%s.NGPUs)
			}
			k++
		}
		for i, ci := range b.Members {
			floats := int(s.Collectives[ci].CommBytes) / commElemBytes
			if next[i] != floats {
				t.Fatalf("bucket %d member %d covered to %d of %d floats", bi, i, next[i], floats)
			}
		}
	}
	for ci := range s.Collectives {
		if !seen[ci] {
			t.Fatalf("collective %d in no bucket", ci)
		}
	}
}

func TestCommChunkedPerLayer(t *testing.T) {
	// 4 layers x 1000 params (4000 B gradients), no bucketing: one
	// bucket per layer in reverse layer order, 4 chunks of 250 floats.
	s := MustBuild(dpGraph(4, 2, 2), commOpts(4, 0), 2)
	checkCommCover(t, s)
	if len(s.Comm) != 4 {
		t.Fatalf("want 4 single-layer buckets, got %d", len(s.Comm))
	}
	for bi, b := range s.Comm {
		if len(b.Members) != 1 || b.Members[0] != bi {
			t.Fatalf("bucket %d members %v, want [%d]", bi, b.Members, bi)
		}
		if len(b.Chunks) != 4 {
			t.Fatalf("bucket %d has %d chunks, want 4", bi, len(b.Chunks))
		}
		if b.Chunks[0].Hi-b.Chunks[0].Lo != 250 {
			t.Fatalf("bucket %d chunk size %d, want 250", bi, b.Chunks[0].Hi-b.Chunks[0].Lo)
		}
	}
	// Reducers alternate globally: 16 chunks over 2 devices.
	if s.Comm[0].Chunks[0].Reducer != 0 || s.Comm[0].Chunks[1].Reducer != 1 {
		t.Fatalf("reducers not k mod N: %+v", s.Comm[0].Chunks[:2])
	}
}

func TestCommBucketing(t *testing.T) {
	// Budget of two layers' gradients: buckets {L3,L2} and {L1,L0},
	// in reverse layer order (collective indices ascending).
	s := MustBuild(dpGraph(4, 2, 2), commOpts(2, 8000), 2)
	checkCommCover(t, s)
	if len(s.Comm) != 2 {
		t.Fatalf("want 2 buckets, got %d", len(s.Comm))
	}
	if !reflect.DeepEqual(s.Comm[0].Members, []int{0, 1}) ||
		!reflect.DeepEqual(s.Comm[1].Members, []int{2, 3}) {
		t.Fatalf("bucket members %v / %v, want [0 1] / [2 3]", s.Comm[0].Members, s.Comm[1].Members)
	}
	// Chunks never cross a member boundary even though the even split
	// of 2000 floats over 2 chunks lands exactly on it here; force a
	// misaligned case too.
	s3 := MustBuild(dpGraph(4, 2, 2), commOpts(3, 8000), 2)
	checkCommCover(t, s3)

	// A single gradient larger than the budget still gets its own
	// bucket rather than being rejected.
	tiny := MustBuild(dpGraph(4, 2, 2), commOpts(2, 1), 2)
	checkCommCover(t, tiny)
	if len(tiny.Comm) != 4 {
		t.Fatalf("undersized budget should fall back to per-layer buckets, got %d", len(tiny.Comm))
	}
}

// Bucketed JIT plans regroup updates: the whole bucket's updates run
// after the bucket's deepest member finishes backward, in descending
// layer order, so the single rendezvous anchors before any of them.
func TestCommBucketUpdateRegrouping(t *testing.T) {
	s := MustBuild(dpGraph(4, 2, 2), commOpts(2, 8000), 2)
	checkCover(t, s)
	checkQueueOrder(t, s)
	for d, q := range s.Queues {
		var upds []int
		lastBwd := make(map[int]int)
		for i, task := range q {
			switch task.Kind {
			case graph.Update:
				upds = append(upds, task.Layer)
			case graph.Backward:
				lastBwd[task.Layer] = i
			}
		}
		want := []int{3, 2, 1, 0}
		if !reflect.DeepEqual(upds, want) {
			t.Fatalf("dev %d update layer order %v, want %v", d, upds, want)
		}
		// Updates of bucket {3,2} must come after BWD of layer 2 (the
		// bucket's deepest member), not between BWD 3 and BWD 2.
		pos := make(map[int]int)
		for i, task := range q {
			if task.Kind == graph.Update {
				pos[task.Layer] = i
			}
		}
		if pos[3] < lastBwd[2] {
			t.Fatalf("dev %d: UPD[3] at %d precedes last BWD[2] at %d; bucket regrouping missing",
				d, pos[3], lastBwd[2])
		}
	}
}

func TestCommPlanDeterministic(t *testing.T) {
	a := MustBuild(dpGraph(5, 3, 2), commOpts(8, 6000), 2)
	b := MustBuild(dpGraph(5, 3, 2), commOpts(8, 6000), 2)
	if !reflect.DeepEqual(a.Comm, b.Comm) {
		t.Fatal("comm plan not deterministic across builds")
	}
}
