// Package tensor defines tensor metadata and the tensor lifetime
// state machine that Harmony's memory manager maintains (paper §3:
// "Harmony's memory manager maintains a state machine tracking the
// lifetime of all tensors used").
//
// A tensor here is metadata only — identity, class, size, and where
// valid copies currently live. Actual numeric payloads exist only in
// the real-execution runtime (internal/exec); the simulator reasons
// purely about bytes and locations.
package tensor

import "fmt"

// Kind classifies a tensor by its role in training, following the
// swap model of Fig. 5(a).
type Kind int

const (
	// Weight is a layer's parameter tensor W.
	Weight Kind = iota
	// WeightGrad is the gradient buffer dW (accumulated across
	// microbatches).
	WeightGrad
	// OptState is optimizer state K (e.g. Adam moments).
	OptState
	// Activation is a layer output Y for one microbatch (the next
	// layer's input X).
	Activation
	// Stash is the stashed input X retained from the forward pass
	// for use in the backward pass.
	Stash
	// ActivationGrad is dX/dY flowing backward for one microbatch.
	ActivationGrad
	// Workspace is scratch memory a kernel needs while running.
	Workspace
)

// NumKinds is the number of tensor classes (for per-kind accounting
// arrays).
const NumKinds = 7

var kindNames = [NumKinds]string{"W", "dW", "K", "Y", "X", "dX", "WS"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsPersistent reports whether tensors of this kind live across the
// whole iteration (weights, gradient buffers, optimizer state) rather
// than being produced and consumed within it.
func (k Kind) IsPersistent() bool {
	return k == Weight || k == WeightGrad || k == OptState
}

// Tensor is immutable metadata about one tensor.
type Tensor struct {
	ID    int
	Name  string
	Kind  Kind
	Bytes int64
	// Layer is the owning layer index; Microbatch is the microbatch
	// index for per-microbatch tensors and -1 for shared state
	// (weights, gradients, optimizer state).
	Layer      int
	Microbatch int
}

func (t *Tensor) String() string {
	if t.Microbatch < 0 {
		return fmt.Sprintf("%s[L%d]", t.Kind, t.Layer)
	}
	return fmt.Sprintf("%s[L%d,mb%d]", t.Kind, t.Layer, t.Microbatch)
}

// Registry allocates tensor IDs and owns all tensor metadata for one
// training job.
type Registry struct {
	tensors []*Tensor
	byName  map[string]*Tensor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Tensor)}
}

// New registers a tensor and returns it. Names must be unique; a
// duplicate name panics because it indicates a graph-construction bug.
func (r *Registry) New(name string, kind Kind, bytes int64, layer, microbatch int) *Tensor {
	if bytes < 0 {
		panic(fmt.Sprintf("tensor: negative size %d for %s", bytes, name))
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("tensor: duplicate tensor name %q", name))
	}
	t := &Tensor{ID: len(r.tensors), Name: name, Kind: kind, Bytes: bytes, Layer: layer, Microbatch: microbatch}
	r.tensors = append(r.tensors, t)
	r.byName[name] = t
	return t
}

// Len returns the number of registered tensors.
func (r *Registry) Len() int { return len(r.tensors) }

// ByID returns the tensor with the given ID.
func (r *Registry) ByID(id int) *Tensor { return r.tensors[id] }

// ByName returns the tensor with the given name, or nil.
func (r *Registry) ByName(name string) *Tensor { return r.byName[name] }

// All returns all tensors in ID order. The returned slice must not be
// modified.
func (r *Registry) All() []*Tensor { return r.tensors }

// TotalBytes sums the sizes of all tensors of the given kinds (all
// kinds if none given).
func (r *Registry) TotalBytes(kinds ...Kind) int64 {
	var sum int64
	for _, t := range r.tensors {
		if len(kinds) == 0 {
			sum += t.Bytes
			continue
		}
		for _, k := range kinds {
			if t.Kind == k {
				sum += t.Bytes
				break
			}
		}
	}
	return sum
}
