package tensor

import (
	"testing"
	"testing/quick"

	"harmony/internal/hw"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	w := r.New("w0", Weight, 1000, 0, -1)
	x := r.New("x0.0", Activation, 200, 0, 0)
	if w.ID != 0 || x.ID != 1 {
		t.Fatalf("IDs = %d,%d; want 0,1", w.ID, x.ID)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.ByID(1) != x || r.ByName("w0") != w {
		t.Fatal("lookup mismatch")
	}
	if r.ByName("missing") != nil {
		t.Fatal("missing name should return nil")
	}
	if got := r.TotalBytes(); got != 1200 {
		t.Fatalf("TotalBytes = %d", got)
	}
	if got := r.TotalBytes(Weight); got != 1000 {
		t.Fatalf("TotalBytes(Weight) = %d", got)
	}
	if got := r.TotalBytes(Weight, Activation); got != 1200 {
		t.Fatalf("TotalBytes(W,Y) = %d", got)
	}
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	r := NewRegistry()
	r.New("w", Weight, 1, 0, -1)
	r.New("w", Weight, 1, 1, -1)
}

func TestRegistryNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative size")
		}
	}()
	NewRegistry().New("w", Weight, -1, 0, -1)
}

func TestKindProperties(t *testing.T) {
	persistent := []Kind{Weight, WeightGrad, OptState}
	transient := []Kind{Activation, Stash, ActivationGrad, Workspace}
	for _, k := range persistent {
		if !k.IsPersistent() {
			t.Errorf("%s should be persistent", k)
		}
	}
	for _, k := range transient {
		if k.IsPersistent() {
			t.Errorf("%s should be transient", k)
		}
	}
}

func TestTensorString(t *testing.T) {
	r := NewRegistry()
	w := r.New("w", Weight, 1, 3, -1)
	x := r.New("x", Stash, 1, 2, 5)
	if w.String() != "W[L3]" {
		t.Fatalf("w.String() = %q", w.String())
	}
	if x.String() != "X[L2,mb5]" {
		t.Fatalf("x.String() = %q", x.String())
	}
}

func newState() *State {
	r := NewRegistry()
	return NewState(r.New("w", Weight, 100, 0, -1))
}

func TestSwapInOutCycle(t *testing.T) {
	s := newState()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AllocHost())
	if !s.HostValid() || s.OnAnyDevice() {
		t.Fatal("expected host-only after AllocHost")
	}
	must(s.BeginSwapIn(0))
	if !s.InFlight {
		t.Fatal("expected in-flight")
	}
	must(s.EndSwapIn())
	if !s.OnDevice(0) || !s.HostValid() || s.Dirty() {
		t.Fatalf("after swap-in: loc=%s dev=%s", s.Loc, s.Dev)
	}
	must(s.Pin())
	if err := s.Drop(); err == nil {
		t.Fatal("Drop of pinned tensor must fail")
	}
	must(s.MarkDirty(0))
	if !s.Dirty() {
		t.Fatal("expected dirty after MarkDirty")
	}
	must(s.Unpin())
	if err := s.Drop(); err == nil {
		t.Fatal("Drop of dirty tensor must fail")
	}
	must(s.BeginSwapOut())
	must(s.EndSwapOut())
	if !s.HostValid() || s.OnAnyDevice() {
		t.Fatal("expected host-only after writeback")
	}
	must(s.Free())
	if s.Loc != LocNone {
		t.Fatal("expected none after Free")
	}
}

func TestCleanDropIsLegal(t *testing.T) {
	s := newState()
	if err := s.AllocHost(); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginSwapIn(1); err != nil {
		t.Fatal(err)
	}
	if err := s.EndSwapIn(); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop(); err != nil {
		t.Fatal(err)
	}
	if s.Loc != LocHost {
		t.Fatalf("loc = %s, want host", s.Loc)
	}
}

func TestAllocDeviceIsDirty(t *testing.T) {
	s := newState()
	if err := s.AllocDevice(2); err != nil {
		t.Fatal(err)
	}
	if !s.Dirty() || !s.OnDevice(2) {
		t.Fatal("device-allocated tensor must be dirty on its device")
	}
	if err := s.AllocDevice(hw.Host); err == nil {
		t.Fatal("AllocDevice(Host) must fail")
	}
}

func TestMigrate(t *testing.T) {
	s := newState()
	if err := s.AllocDevice(0); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginMigrate(1); err != nil {
		t.Fatal(err)
	}
	if err := s.EndMigrate(1); err != nil {
		t.Fatal(err)
	}
	if !s.OnDevice(1) || !s.Dirty() {
		t.Fatalf("after migrate: loc=%s dev=%s", s.Loc, s.Dev)
	}
	if err := s.BeginMigrate(1); err == nil {
		t.Fatal("migrate to same device must fail")
	}
}

func TestInvalidTransitions(t *testing.T) {
	s := newState()
	if err := s.BeginSwapIn(0); err == nil {
		t.Fatal("swap-in with no host copy must fail")
	}
	if err := s.MarkDirty(0); err == nil {
		t.Fatal("MarkDirty with no device copy must fail")
	}
	if err := s.Pin(); err == nil {
		t.Fatal("Pin with no device copy must fail")
	}
	if err := s.Unpin(); err == nil {
		t.Fatal("Unpin with no pins must fail")
	}
	if err := s.AllocHost(); err != nil {
		t.Fatal(err)
	}
	if err := s.AllocHost(); err == nil {
		t.Fatal("double AllocHost must fail")
	}
	if err := s.BeginSwapOut(); err == nil {
		t.Fatal("swap-out with no device copy must fail")
	}
	if err := s.BeginSwapIn(0); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginSwapIn(1); err == nil {
		t.Fatal("concurrent swap-in must fail")
	}
	if err := s.Free(); err == nil {
		t.Fatal("Free of in-flight tensor must fail")
	}
}

// Property: no legal sequence of random operations can reach a state
// where the tensor is InFlight while LocNone, pinned without a device
// copy, or located on the host device marker while claiming residence.
func TestStateMachineInvariants(t *testing.T) {
	type opCode uint8
	f := func(ops []opCode) bool {
		s := newState()
		for _, op := range ops {
			switch op % 12 {
			case 0:
				s.AllocHost() //nolint:errcheck
			case 1:
				s.AllocDevice(hw.DeviceID(int(op) % 4)) //nolint:errcheck
			case 2:
				s.BeginSwapIn(hw.DeviceID(int(op) % 4)) //nolint:errcheck
			case 3:
				s.EndSwapIn() //nolint:errcheck
			case 4:
				s.BeginSwapOut() //nolint:errcheck
			case 5:
				s.EndSwapOut() //nolint:errcheck
			case 6:
				s.Drop() //nolint:errcheck
			case 7:
				s.MarkDirty(hw.DeviceID(int(op) % 4)) //nolint:errcheck
			case 8:
				s.Pin() //nolint:errcheck
			case 9:
				s.Unpin() //nolint:errcheck
			case 10:
				s.BeginMigrate(hw.DeviceID(int(op) % 4)) //nolint:errcheck
			case 11:
				s.Free() //nolint:errcheck
			}
			// Invariants.
			if s.Pins < 0 {
				return false
			}
			if s.Pins > 0 && !s.OnAnyDevice() {
				return false
			}
			if s.InFlight && s.Loc == LocNone {
				return false
			}
			if s.OnAnyDevice() && s.Dev == hw.Host {
				return false
			}
			if !s.OnAnyDevice() && s.Loc != LocNone && s.Loc != LocHost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
