package tensor

import (
	"fmt"

	"harmony/internal/hw"
)

// Location says where valid copies of a tensor currently live.
type Location int8

const (
	// LocNone: the tensor has no materialized copy (not yet produced,
	// or freed).
	LocNone Location = iota
	// LocHost: the only valid copy is in host memory.
	LocHost
	// LocDevice: the only valid copy is on State.Dev (host copy
	// absent or stale).
	LocDevice
	// LocBoth: valid copies exist both on State.Dev and in host
	// memory (the usual state right after a swap-in).
	LocBoth
)

var locNames = [...]string{"none", "host", "device", "both"}

func (l Location) String() string {
	if int(l) < len(locNames) {
		return locNames[l]
	}
	return fmt.Sprintf("Location(%d)", int(l))
}

// State is the lifetime state machine for one tensor. All transitions
// validate preconditions and return an error on misuse so scheduler
// bugs surface as errors instead of silently wrong swap accounting.
//
//	       AllocHost                AllocDevice
//	none ────────────▶ host   none ────────────▶ device(dirty)
//	host ──SwapIn──▶ both     device ──SwapOut──▶ host (writeback)
//	both ──Drop──▶ host       both ──MarkDirty──▶ device
//	any  ──Free──▶ none       device ──Migrate──▶ device' (p2p)
type State struct {
	Tensor *Tensor
	Loc    Location
	// Dev is the device holding the device copy; meaningful only for
	// LocDevice and LocBoth.
	Dev hw.DeviceID
	// Pins counts tasks currently requiring the device copy to stay
	// resident; a pinned tensor must not be evicted.
	Pins int
	// InFlight marks an ongoing swap or migration; a tensor may be
	// part of at most one transfer at a time.
	InFlight bool
}

// NewState returns the state machine for a tensor, starting at
// LocNone.
func NewState(t *Tensor) *State { return &State{Tensor: t, Dev: hw.Host} }

func (s *State) fail(op string) error {
	return fmt.Errorf("tensor %s: invalid %s in state {loc=%s dev=%s pins=%d inflight=%v}",
		s.Tensor, op, s.Loc, s.Dev, s.Pins, s.InFlight)
}

// OnDevice reports whether a valid copy is resident on dev.
func (s *State) OnDevice(dev hw.DeviceID) bool {
	return (s.Loc == LocDevice || s.Loc == LocBoth) && s.Dev == dev
}

// OnAnyDevice reports whether a valid device copy exists anywhere.
func (s *State) OnAnyDevice() bool {
	return s.Loc == LocDevice || s.Loc == LocBoth
}

// HostValid reports whether the host copy is valid.
func (s *State) HostValid() bool { return s.Loc == LocHost || s.Loc == LocBoth }

// Dirty reports whether the device copy is the only valid copy (so
// eviction requires writeback).
func (s *State) Dirty() bool { return s.Loc == LocDevice }

// AllocHost materializes the tensor in host memory (e.g. initial
// weights before training starts).
func (s *State) AllocHost() error {
	if s.Loc != LocNone || s.InFlight {
		return s.fail("AllocHost")
	}
	s.Loc = LocHost
	s.Dev = hw.Host
	return nil
}

// AllocDevice materializes the tensor directly on a device (e.g. an
// activation produced by a kernel). The new copy is dirty: no host
// copy exists.
func (s *State) AllocDevice(dev hw.DeviceID) error {
	if s.Loc != LocNone || s.InFlight || dev == hw.Host {
		return s.fail("AllocDevice")
	}
	s.Loc = LocDevice
	s.Dev = dev
	return nil
}

// BeginSwapIn starts a host→device copy. The host copy must be valid
// and no device copy may exist.
func (s *State) BeginSwapIn(dev hw.DeviceID) error {
	if s.Loc != LocHost || s.InFlight || dev == hw.Host {
		return s.fail("BeginSwapIn")
	}
	s.InFlight = true
	s.Dev = dev
	return nil
}

// EndSwapIn completes a swap-in: both copies now valid.
func (s *State) EndSwapIn() error {
	if !s.InFlight || s.Loc != LocHost {
		return s.fail("EndSwapIn")
	}
	s.InFlight = false
	s.Loc = LocBoth
	return nil
}

// BeginSwapOut starts a device→host writeback. Requires a device copy
// and no pins. Swapping out a clean (LocBoth) tensor is legal — naive
// virtualization writes back unconditionally — but Drop is free.
func (s *State) BeginSwapOut() error {
	if !s.OnAnyDevice() || s.InFlight || s.Pins > 0 {
		return s.fail("BeginSwapOut")
	}
	s.InFlight = true
	return nil
}

// EndSwapOut completes the writeback: the device copy is released and
// the host copy is valid.
func (s *State) EndSwapOut() error {
	if !s.InFlight || !s.OnAnyDevice() {
		return s.fail("EndSwapOut")
	}
	s.InFlight = false
	s.Loc = LocHost
	s.Dev = hw.Host
	return nil
}

// Drop releases a clean device copy without any transfer. Only legal
// when the host copy is valid (LocBoth) and the tensor is unpinned.
func (s *State) Drop() error {
	if s.Loc != LocBoth || s.InFlight || s.Pins > 0 {
		return s.fail("Drop")
	}
	s.Loc = LocHost
	s.Dev = hw.Host
	return nil
}

// MarkDirty records that a kernel on dev mutated the device copy,
// invalidating the host copy.
func (s *State) MarkDirty(dev hw.DeviceID) error {
	if !s.OnDevice(dev) {
		return s.fail("MarkDirty")
	}
	s.Loc = LocDevice
	return nil
}

// BeginMigrate starts a device→device p2p move. Requires a device
// copy and no pins.
func (s *State) BeginMigrate(to hw.DeviceID) error {
	if !s.OnAnyDevice() || s.InFlight || s.Pins > 0 || to == hw.Host || to == s.Dev {
		return s.fail("BeginMigrate")
	}
	s.InFlight = true
	return nil
}

// EndMigrate completes a p2p move: the device copy now lives on `to`;
// host validity is unchanged (a dirty tensor stays dirty).
func (s *State) EndMigrate(to hw.DeviceID) error {
	if !s.InFlight || !s.OnAnyDevice() {
		return s.fail("EndMigrate")
	}
	s.InFlight = false
	s.Dev = to
	return nil
}

// Pin marks the device copy as required-resident. Only valid when a
// device copy exists and is not mid-transfer.
func (s *State) Pin() error {
	if !s.OnAnyDevice() || s.InFlight {
		return s.fail("Pin")
	}
	s.Pins++
	return nil
}

// Unpin releases one pin.
func (s *State) Unpin() error {
	if s.Pins <= 0 {
		return s.fail("Unpin")
	}
	s.Pins--
	return nil
}

// Free destroys the tensor (all copies). Consumed activations are
// freed as soon as their last reader finishes.
func (s *State) Free() error {
	if s.InFlight || s.Pins > 0 {
		return s.fail("Free")
	}
	s.Loc = LocNone
	s.Dev = hw.Host
	return nil
}
