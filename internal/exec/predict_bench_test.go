package exec

import (
	"testing"

	"harmony/internal/sched"
)

// BenchmarkPredict measures inference over the standard test MLP under
// memory pressure. The interesting column is allocs/op: Predict runs
// off the pooled kernel scratch (nn.GetScratch), so per-call
// allocations stay flat at a handful — one caller-owned logits copy
// plus the VM's swap bookkeeping — instead of two fresh y/stash
// buffers per layer per call.
func BenchmarkPredict(b *testing.B) {
	tr, err := NewTrainer(trainerConfig(sched.HarmonyDP, 1))
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, 64*16)
	for i := range x {
		x[i] = float32(i%7) * 0.125
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Predict(x, 64); err != nil {
			b.Fatal(err)
		}
	}
}
