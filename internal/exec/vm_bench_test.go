package exec

import (
	"fmt"
	"testing"

	"harmony/internal/memory"
	"harmony/internal/tensor"
)

// BenchmarkVMEviction measures demand paging when every Ensure must
// evict: half the tensors fit, the access pattern cycles, so each hit
// of the fast path is preceded by a victim selection. With the
// per-device intrusive LRU list the victim is the list head (O(1));
// the old implementation scanned the whole buffer map per eviction,
// so its cost grew linearly with the tensor count. ns/op staying flat
// as tensors=64 → 16384 is the win this bench documents.
func BenchmarkVMEviction(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("tensors=%d", n), func(b *testing.B) {
			const bytes = 64
			reg := tensor.NewRegistry()
			vm := NewVM(1, int64(n)*bytes/2, memory.Policy{DirtyTracking: true})
			ts := make([]*tensor.Tensor, n)
			for i := range ts {
				ts[i] = reg.New(fmt.Sprintf("t%d", i), tensor.Activation, bytes, i, -1)
				vm.HostAlloc(ts[i])
			}
			// Fill the device: every Ensure below evicts exactly one
			// clean page (a drop under dirty tracking — no write-back
			// noise, victim selection dominates).
			for i := 0; i < n/2; i++ {
				if _, err := vm.Ensure(0, ts[i]); err != nil {
					b.Fatal(err)
				}
				if err := vm.Unpin(ts[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := ts[(n/2+i)%n]
				if _, err := vm.Ensure(0, t); err != nil {
					b.Fatal(err)
				}
				if err := vm.Unpin(t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
