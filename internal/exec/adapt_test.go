package exec

import (
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"harmony/internal/data"
	"harmony/internal/nn"
	"harmony/internal/sched"
)

// ------------------------------------ controller properties (unit)

// TestAdaptControllerProperties drives the window controller with
// randomized signal traces and checks its invariants hold at every
// step: the window never leaves [wMin, wMax] (wMax is the bound
// schedcheck verified residency against), and the byte budget never
// leaves (0, bMax] (bMax is the engine cap the preflight assumed).
func TestAdaptControllerProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		wMax := 1 + rng.Intn(8)
		bMax := int64(1 + rng.Intn(1<<16))
		c := newAdaptController(1+rng.Intn(wMax), 1, wMax, bMax)
		for step := 1; step <= 300; step++ {
			sig := adaptSignals{
				Covered:   rng.Intn(8),
				Uncovered: rng.Intn(4),
				WantPeak:  int64(rng.Intn(1 << 17)),
			}
			for _, dec := range c.adaptStep(step, 0, sig) {
				if dec.Step != step || dec.Dev != 0 {
					t.Fatalf("trial %d: decision %s mis-keyed", trial, dec)
				}
				if dec.What != "window" && dec.What != "budget" {
					t.Fatalf("trial %d: unknown knob %q", trial, dec.What)
				}
			}
			if c.window < 1 || c.window > wMax {
				t.Fatalf("trial %d step %d: window %d outside [1, %d]", trial, step, c.window, wMax)
			}
			if c.budget <= 0 || c.budget > bMax {
				t.Fatalf("trial %d step %d: budget %d outside (0, %d]", trial, step, c.budget, bMax)
			}
		}
	}
}

// TestAdaptControllerConverges: on a steady trace (constant signals)
// the controller must settle, not oscillate — each knob's trajectory
// changes direction at most once over a long run.
func TestAdaptControllerConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		wMax := 1 + rng.Intn(8)
		bMax := int64(1 + rng.Intn(1<<16))
		c := newAdaptController(1+rng.Intn(wMax), 1, wMax, bMax)
		sig := adaptSignals{
			Covered:   rng.Intn(8),
			Uncovered: rng.Intn(4),
			WantPeak:  int64(rng.Intn(1 << 17)),
		}
		flips, lastDir := 0, 0
		prevW, prevB := c.window, c.budget
		var changes int
		for step := 1; step <= 200; step++ {
			changes += len(c.adaptStep(step, 0, sig))
			dir := 0
			switch {
			case c.window > prevW || c.budget > prevB:
				dir = 1
			case c.window < prevW || c.budget < prevB:
				dir = -1
			}
			if dir != 0 && lastDir != 0 && dir != lastDir {
				flips++
			}
			if dir != 0 {
				lastDir = dir
			}
			prevW, prevB = c.window, c.budget
		}
		if flips > 1 {
			t.Fatalf("trial %d: %d direction flips on a steady trace (sig %+v)", trial, flips, sig)
		}
		// And it must actually settle: a second long run of the same
		// signal takes no further decisions.
		tail := 0
		for step := 201; step <= 260; step++ {
			tail += len(c.adaptStep(step, 0, sig))
		}
		if tail != 0 {
			t.Fatalf("trial %d: %d decisions after convergence (sig %+v)", trial, tail, sig)
		}
	}
}

// TestAdaptControllerShrinksUnderPressure: demand persistently over
// the maximum budget that drowns the prefetcher (majority of entries
// uncovered) must first max out the budget, then walk the window down
// to its floor — the capacity-pressure escape hatch.
func TestAdaptControllerShrinksUnderPressure(t *testing.T) {
	const wMax = 8
	bMax := int64(4 << 10)
	c := newAdaptController(wMax, 1, wMax, bMax)
	sig := adaptSignals{Covered: 1, Uncovered: 4, WantPeak: bMax * 2}
	for step := 1; step <= 100; step++ {
		c.adaptStep(step, 0, sig)
	}
	if c.budget != bMax {
		t.Fatalf("budget %d, want maxed at %d before windows shrink", c.budget, bMax)
	}
	if c.window != 1 {
		t.Fatalf("window %d, want shrunk to 1 under persistent over-budget demand", c.window)
	}
	// The ratchet must hold: even if demand later fits, the window
	// never regrows past a width that was proven too wide.
	calm := adaptSignals{Covered: 4, Uncovered: 1, WantPeak: 1}
	for step := 101; step <= 200; step++ {
		c.adaptStep(step, 0, calm)
		if c.window > 1 {
			t.Fatalf("window regrew to %d past the shrink ratchet", c.window)
		}
	}
}

// TestAdaptControllerIgnoresCoveredPressure pins the dp1-hostlink
// regression fix: over-budget window demand whose entries were all
// covered anyway is not pressure — the prefetcher is keeping up — so
// the controller must neither widen the budget nor shrink the window.
// (Before the coverage gate it shrank 4→3 on exactly this signal and
// cost 8% of step time on the single-device host-link bench.)
func TestAdaptControllerIgnoresCoveredPressure(t *testing.T) {
	bMax := int64(4 << 10)
	c := newAdaptController(4, 1, 8, bMax)
	covered := adaptSignals{Covered: 6, Uncovered: 0, WantPeak: bMax * 2}
	for step := 1; step <= 50; step++ {
		if dec := c.adaptStep(step, 0, covered); len(dec) != 0 {
			t.Fatalf("step %d: covered over-budget demand moved a knob: %v", step, dec)
		}
	}
	if c.window != 4 {
		t.Fatalf("window moved to %d on fully covered demand", c.window)
	}
	// A thin miss tail under an over-cap peak is not pressure either:
	// the budget starts (and here sits) at the cap, so the only move
	// left is a window shrink, and a minority of misses does not earn
	// one (the dp1-hostlink bench shrank 4→3 on exactly this tail and
	// lost 7 points of DMA overlap).
	missing := adaptSignals{Covered: 4, Uncovered: 1, WantPeak: bMax * 2}
	for step := 51; step <= 80; step++ {
		if dec := c.adaptStep(step, 0, missing); len(dec) != 0 {
			t.Fatalf("step %d: minority miss tail at the budget cap moved a knob: %v", step, dec)
		}
	}
	if c.window != 4 {
		t.Fatalf("window shrank to %d on a minority miss tail at the budget cap", c.window)
	}
	// Majority misses at the cap are genuine drowning and must shrink.
	drowning := adaptSignals{Covered: 1, Uncovered: 4, WantPeak: bMax * 2}
	for step := 81; step <= 90; step++ {
		c.adaptStep(step, 0, drowning)
	}
	if c.window >= 4 {
		t.Fatalf("window %d, want shrunk under majority-miss pressure at the cap", c.window)
	}
}

// ------------------------------- adaptive bit-exactness matrix (e2e)

// TestAdaptiveBitExactMatrix extends the prefetch matrix with the
// adaptive axis: for each mode, the serial reference, the static
// parallel plan and the adaptive parallel plan (several starting
// windows) all produce bit-identical losses and weights. Adaptation
// moves only data movement — never math.
func TestAdaptiveBitExactMatrix(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 4
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := trainerConfig(mode, 2)
			ref.Serial = true
			a, lossA := runTrainer(t, ref, steps)
			for _, depth := range []int{0, 2, 4} {
				cfg := trainerConfig(mode, 2)
				cfg.AdaptivePrefetch = true
				cfg.PrefetchDepth = depth
				b, lossB := runTrainer(t, cfg, steps)
				assertSameRun(t, a, b, lossA, lossB)
				if b.AdaptStats() == nil {
					t.Fatalf("depth %d: adaptive plan has no controller state", depth)
				}
				if st := b.Stats(); st.PrefetchIssued == 0 {
					t.Fatalf("depth %d: prefetch never fired under memory pressure", depth)
				}
				b.Close()
			}
			// Serial never prefetches, so adaptive+serial must be the
			// static serial reference with an empty decision log.
			sref := trainerConfig(mode, 2)
			sref.Serial = true
			sref.AdaptivePrefetch = true
			c, lossC := runTrainer(t, sref, steps)
			assertSameRun(t, a, c, lossA, lossC)
			if log := c.AdaptLog(); len(log) != 0 {
				t.Fatalf("serial executor took %d adaptation decisions", len(log))
			}
		})
	}
}

// TestAdaptiveDecisionLogDeterminism is the replayability guarantee:
// two identical seeded adaptive runs emit identical window-resize
// decision logs, entry for entry.
func TestAdaptiveDecisionLogDeterminism(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 5
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := trainerConfig(mode, 2)
			cfg.AdaptivePrefetch = true
			a, lossA := runTrainer(t, cfg, steps)
			b, lossB := runTrainer(t, cfg, steps)
			assertSameRun(t, a, b, lossA, lossB)
			la, lb := a.AdaptLog(), b.AdaptLog()
			if !reflect.DeepEqual(la, lb) {
				t.Fatalf("decision logs diverge:\n%v\nvs\n%v", la, lb)
			}
			if !reflect.DeepEqual(a.AdaptStats(), b.AdaptStats()) {
				t.Fatalf("window stats diverge:\n%v\nvs\n%v", a.AdaptStats(), b.AdaptStats())
			}
			a.Close()
			b.Close()
		})
	}
}

// TestAdaptiveBitExactUnderDelayFaults shifts every DMA and kernel in
// time with injected delays: in-flight sets change, the adaptation
// signals must not (they are program-order counters), so weights match
// the serial reference and the decision log matches a delay-free run.
func TestAdaptiveBitExactUnderDelayFaults(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 3
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := trainerConfig(mode, 2)
			ref.Serial = true
			a, lossA := runTrainer(t, ref, steps)
			clean := trainerConfig(mode, 2)
			clean.AdaptivePrefetch = true
			clean.PrefetchDepth = 3
			b, lossB := runTrainer(t, clean, steps)
			assertSameRun(t, a, b, lossA, lossB)
			cfg := faultyConfig(t, mode, "op=any,mode=delay,delay=300us,count=60", false)
			cfg.AdaptivePrefetch = true
			cfg.PrefetchDepth = 3
			c, lossC := runTrainer(t, cfg, steps)
			assertSameRun(t, a, c, lossA, lossC)
			if !reflect.DeepEqual(b.AdaptLog(), c.AdaptLog()) {
				t.Fatalf("delay faults changed the decision log:\n%v\nvs\n%v", b.AdaptLog(), c.AdaptLog())
			}
			b.Close()
			c.Close()
		})
	}
}

// TestAdaptiveBitExactUnderRecovery runs the fatal-fault rollback
// scenario with adaptation armed: recovery rebinds the dead device's
// queues to survivors, the controllers keep running on the surviving
// shard aliases, and the result still matches the fault-free serial
// reference bit for bit.
func TestAdaptiveBitExactUnderRecovery(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 4
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := trainerConfig(mode, 2)
			ref.Serial = true
			ref.DeviceBytes = 32 << 10
			a, lossA := runTrainer(t, ref, steps)
			cfg := faultyConfig(t, mode, "op=kernel,mode=fatal,dev=1,step=3", true)
			cfg.DeviceBytes = 32 << 10
			cfg.AdaptivePrefetch = true
			cfg.PrefetchDepth = 4
			b, lossB := runTrainer(t, cfg, steps)
			assertSameRun(t, a, b, lossA, lossB)
			if got := b.Recoveries(); got != 1 {
				t.Fatalf("recoveries = %d, want 1", got)
			}
			b.Close()
		})
	}
}

// --------------------------------------------------- retune (e2e)

// TestRetuneOptionsSwapBitExact: a light retune (same graph, new
// schedule options) between steps must keep training bit-identical to
// an uninterrupted run whose plan was the retune target from step 0 is
// NOT required — microbatch math is unchanged, so the guarantee is
// stronger: the whole run must match the serial reference exactly.
func TestRetuneOptionsSwapBitExact(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 4
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := trainerConfig(mode, 2)
			ref.Serial = true
			a, lossA := runTrainer(t, ref, steps)

			cfg := trainerConfig(mode, 2)
			tr, err := NewTrainer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
			var losses []float32
			for s := 0; s < steps; s++ {
				if s == 2 {
					// Mid-run: switch the same graph to an adaptive
					// prefetch plan.
					opts := sched.DefaultOptions(mode)
					opts.AdaptivePrefetch = true
					if err := tr.Retune(RetuneRequest{Options: &opts}); err != nil {
						t.Fatalf("light retune rejected: %v", err)
					}
					if tr.AdaptStats() == nil {
						t.Fatal("retune to adaptive plan did not arm controllers")
					}
				}
				in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, uint64(s))
				loss, err := tr.Step(in, lb)
				if err != nil {
					t.Fatal(err)
				}
				losses = append(losses, loss)
			}
			assertSameRun(t, a, tr, lossA, losses)
		})
	}
}

// TestRetuneMicrobatchReshapeDeterministic: a heavy retune (graph and
// VM rebuilt, state round-tripped through the checkpoint) must be
// deterministic — two identical runs retuning at the same step produce
// bit-identical weights — and must preserve the per-replica batch
// contract.
func TestRetuneMicrobatchReshapeDeterministic(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 4
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func() (*Trainer, []float32) {
				cfg := trainerConfig(mode, 2)
				tr, err := NewTrainer(cfg)
				if err != nil {
					t.Fatal(err)
				}
				blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
				var losses []float32
				mbs, mbc := cfg.MicrobatchSize, cfg.Microbatches
				for s := 0; s < steps; s++ {
					if s == 2 {
						// 8×4 → 4×8: same batch, finer split (a coarser
						// one would exceed the 12 KiB devices — the
						// preflight rejects it with a counterexample).
						if err := tr.Retune(RetuneRequest{MicrobatchSize: 4, Microbatches: 8}); err != nil {
							t.Fatalf("heavy retune rejected: %v", err)
						}
						mbs, mbc = 4, 8
					}
					in, lb := blobs.ReplicaBatches(tr.Replicas(), mbc, mbs, uint64(s))
					loss, err := tr.Step(in, lb)
					if err != nil {
						t.Fatal(err)
					}
					losses = append(losses, loss)
				}
				return tr, losses
			}
			a, lossA := run()
			b, lossB := run()
			assertSameRun(t, a, b, lossA, lossB)
			a.Close()
			b.Close()
		})
	}
}

// TestRetuneRejectionKeepsPlan: an infeasible retune must return the
// verifier's counterexample and leave the running plan untouched — the
// remaining steps match an undisturbed run bit for bit.
func TestRetuneRejectionKeepsPlan(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 3
	mode := sched.HarmonyPP
	ref := trainerConfig(mode, 2)
	ref.Serial = true
	a, lossA := runTrainer(t, ref, steps)

	cfg := trainerConfig(mode, 2)
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
	var losses []float32
	for s := 0; s < steps; s++ {
		if s == 1 {
			// Invalid window bounds: schedcheck's plan rule must
			// reject before anything is swapped.
			opts := sched.DefaultOptions(mode)
			opts.AdaptivePrefetch = true
			opts.WindowMin, opts.WindowMax = 5, 2
			err := tr.Retune(RetuneRequest{Options: &opts})
			if err == nil {
				t.Fatal("invalid window bounds accepted")
			}
			// The trainer's own batch-product rule also rejects with
			// the plan untouched.
			if err := tr.Retune(RetuneRequest{MicrobatchSize: 3, Microbatches: 3}); err == nil ||
				!strings.Contains(err.Error(), "preserve the per-replica batch") {
				t.Fatalf("batch-product violation not rejected: %v", err)
			}
		}
		in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, uint64(s))
		loss, err := tr.Step(in, lb)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	assertSameRun(t, a, tr, lossA, losses)
}
