// Adaptive prefetch controller (DESIGN.md §13): grows and shrinks
// each device's lookahead window and prefetch byte budget online,
// between iterations, from coverage counters the prefetcher computes
// in device-worker program order. Every input to a decision is a pure
// function of the schedule streams, the current window and the step
// counter — never wall time, DMA completion order, LRU state or map
// iteration — so two seeded runs take byte-identical decision
// sequences and the bit-exactness matrix survives adaptation.
package exec

import "fmt"

// adaptSignals is one device's deterministic per-step controller
// input, accumulated by prefetcher.issue on the device worker in
// stream order:
//
//   - Covered / Uncovered: of the compute entries executed this step,
//     how many had every input already requested by an earlier window
//     scan (program-order coverage — the deterministic refinement of
//     the racy PrefetchHits counter, independent of DMA timing);
//   - WantPeak: the largest distinct-input byte demand any single
//     window scan presented this step — what the budget must admit
//     for the current window to be fully effective.
type adaptSignals struct {
	Covered   int
	Uncovered int
	WantPeak  int64
}

// AdaptDecision is one controller action, recorded in the decision
// log (Trainer.AdaptLog) and on the trace's adapt lane. From/To are
// entries for What == "window" and bytes for What == "budget".
type AdaptDecision struct {
	Step   int
	Dev    int
	What   string // "window" or "budget"
	From   int64
	To     int64
	Reason string
}

func (d AdaptDecision) String() string {
	return fmt.Sprintf("step %d dev %d %s %d->%d (%s)", d.Step, d.Dev, d.What, d.From, d.To, d.Reason)
}

// adaptController is the per-device window/budget state machine. All
// state is integral and every transition is a pure function of the
// per-step signals, so the controller is deterministic by
// construction.
//
// Policy, in priority order:
//
//  1. shrink pressure — a window scan demanded more bytes than the
//     budget admits AND that demand actually went uncovered: first
//     widen the budget (bounded by the engine cap the plan was
//     verified against). Once the budget is capped, the bar rises:
//     the window shrinks only when over-budget demand is *drowning*
//     the prefetcher — more entries missed than covered that step. A
//     thin uncovered tail under an over-cap peak keeps the lookahead;
//     over-budget demand with full (or majority) coverage is not
//     pressure — the prefetcher is evidently keeping up, and
//     narrowing the window there costs overlap for nothing (measured
//     as a 7-point DMA-overlap loss on the dp1-hostlink bench before
//     the majority gate);
//  2. grow — demand misses remain and the budget has at least 2×
//     headroom over the window's peak demand: deepen the lookahead;
//  3. trim — the window is fully grown and its peak demand uses less
//     than a quarter of the budget: halve the budget, releasing
//     device memory back to the demand working set.
//
// A window shrink ratchets wCeil down to the shrunken level, so the
// window never regrows past a width that proved too expensive; with
// the two-step hysteresis on every trigger this bounds direction
// flips on a steady trace (see TestAdaptControllerConverges).
type adaptController struct {
	wMin, wMax int
	bMin, bMax int64

	window int
	budget int64
	wCeil  int // grow ceiling; ratcheted down by every window shrink

	growRun   int // consecutive steps the grow condition held
	shrinkRun int // consecutive steps the shrink condition held
	trimRun   int // consecutive steps the trim condition held
}

// hysteresisSteps is how many consecutive steps a grow/shrink/trim
// condition must hold before the controller acts. One-step blips
// (warmup, recovery re-staging) never move the knobs.
const hysteresisSteps = 2

// newAdaptController starts at the static-equivalent window AND the
// static-equivalent budget — the engine cap, exactly what a static
// plan's shards run with — so an adaptive run's first steps match a
// static run's until a signal says otherwise. The trim rule walks the
// budget down when demand proves light; starting below the cap was
// measured as a 6-point DMA-overlap handicap on the dp1-hostlink
// bench before the widen caught up.
func newAdaptController(window, wMin, wMax int, bMax int64) adaptController {
	if wMin < 1 {
		wMin = 1
	}
	if wMax < wMin {
		wMax = wMin
	}
	if window < wMin {
		window = wMin
	}
	if window > wMax {
		window = wMax
	}
	if bMax <= 0 {
		bMax = 1
	}
	bMin := bMax / 4
	if bMin < 1 {
		bMin = 1
	}
	budget := bMax
	return adaptController{
		wMin: wMin, wMax: wMax, bMin: bMin, bMax: bMax,
		window: window,
		budget: budget,
		wCeil:  wMax,
	}
}

// adaptStep feeds one step's signals through the controller and
// returns the decisions taken (nil most steps). step is the trainer's
// step counter — the only clock adaptation is allowed to observe.
func (c *adaptController) adaptStep(step, dev int, sig adaptSignals) []AdaptDecision {
	ceil := c.wCeil
	if ceil > c.wMax {
		ceil = c.wMax
	}
	// While the budget has headroom, any uncovered over-budget demand
	// is worth a (bounded) budget widen; once capped, shrinking the
	// window costs overlap, so it takes majority misses to justify.
	shrinkWanted := sig.WantPeak > c.budget && sig.Uncovered > 0 &&
		(c.budget < c.bMax || sig.Uncovered > sig.Covered)
	growWanted := !shrinkWanted && c.window < ceil &&
		sig.Uncovered > 0 && sig.WantPeak*2 <= c.budget
	trimWanted := !shrinkWanted && !growWanted && c.window >= ceil &&
		sig.WantPeak > 0 && sig.WantPeak*4 <= c.budget && c.budget > c.bMin

	if shrinkWanted {
		c.shrinkRun++
	} else {
		c.shrinkRun = 0
	}
	if growWanted {
		c.growRun++
	} else {
		c.growRun = 0
	}
	if trimWanted {
		c.trimRun++
	} else {
		c.trimRun = 0
	}

	var out []AdaptDecision
	switch {
	case c.shrinkRun >= hysteresisSteps:
		c.shrinkRun = 0
		if c.budget < c.bMax {
			next := c.budget * 2
			if next > c.bMax {
				next = c.bMax
			}
			out = append(out, AdaptDecision{Step: step, Dev: dev, What: "budget",
				From: c.budget, To: next, Reason: "window demand over budget"})
			c.budget = next
		} else if c.window > c.wMin {
			out = append(out, AdaptDecision{Step: step, Dev: dev, What: "window",
				From: int64(c.window), To: int64(c.window - 1), Reason: "demand over budget cap"})
			c.window--
			c.wCeil = c.window // never regrow past a proven-too-wide level
		}
	case c.growRun >= hysteresisSteps:
		c.growRun = 0
		out = append(out, AdaptDecision{Step: step, Dev: dev, What: "window",
			From: int64(c.window), To: int64(c.window + 1), Reason: "uncovered demand with budget headroom"})
		c.window++
	case c.trimRun >= hysteresisSteps:
		c.trimRun = 0
		next := c.budget / 2
		if next < c.bMin {
			next = c.bMin
		}
		out = append(out, AdaptDecision{Step: step, Dev: dev, What: "budget",
			From: c.budget, To: next, Reason: "window demand well under budget"})
		c.budget = next
	}
	return out
}
