package exec

import (
	"runtime"
	"strings"
	"testing"

	"harmony/internal/data"
	"harmony/internal/nn"
	"harmony/internal/sched"
)

// ---------------------------------------------------- executor parity

// runTrainer steps a trainer over deterministic data and returns the
// per-step losses.
func runTrainer(t *testing.T, cfg TrainerConfig, steps int) (*Trainer, []float32) {
	t.Helper()
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
	var losses []float32
	for s := 0; s < steps; s++ {
		in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, uint64(s))
		loss, err := tr.Step(in, lb)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	return tr, losses
}

// TestSerialAndParallelExecutorsBitIdentical is the headline
// determinism guarantee: the parallel device-worker executor and the
// serial reference produce the same losses and the same weights, bit
// for bit, under memory pressure, in both data-parallel (collective
// rendezvous) and pipeline (cross-device activation moves) modes. The
// kernel pool is forced to 4 workers so chunked kernels are exercised
// even on single-core machines.
func TestSerialAndParallelExecutorsBitIdentical(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			serialCfg := trainerConfig(mode, 2)
			serialCfg.Serial = true
			parallelCfg := trainerConfig(mode, 2)
			a, lossA := runTrainer(t, serialCfg, 4)
			b, lossB := runTrainer(t, parallelCfg, 4)
			for s := range lossA {
				if lossA[s] != lossB[s] {
					t.Fatalf("step %d loss: serial %v vs parallel %v", s, lossA[s], lossB[s])
				}
			}
			for r := 0; r < a.Replicas(); r++ {
				for l := range a.layers {
					wa, err := a.vm.Host(a.g.W[r][l])
					if err != nil {
						t.Fatal(err)
					}
					wb, err := b.vm.Host(b.g.W[r][l])
					if err != nil {
						t.Fatal(err)
					}
					for i := range wa {
						if wa[i] != wb[i] {
							t.Fatalf("replica %d layer %d weight %d: serial %v vs parallel %v",
								r, l, i, wa[i], wb[i])
						}
					}
				}
			}
		})
	}
}

// TestParallelLossesWithinTolerance pins the weaker public contract —
// losses agree within 1e-5 — separately from the bit-exact check, so
// a future relaxation of bit-exactness still has a guardrail.
func TestParallelLossesWithinTolerance(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	serialCfg := trainerConfig(sched.HarmonyDP, 2)
	serialCfg.Serial = true
	_, lossA := runTrainer(t, serialCfg, 3)
	_, lossB := runTrainer(t, trainerConfig(sched.HarmonyDP, 2), 3)
	for s := range lossA {
		d := float64(lossA[s] - lossB[s])
		if d < 0 {
			d = -d
		}
		if d > 1e-5 {
			t.Fatalf("step %d losses differ by %v: %v vs %v", s, d, lossA[s], lossB[s])
		}
	}
}

// ------------------------------------------------- deadlock reporting

// TestCyclicScheduleReportsDeadlock corrupts a built schedule with a
// dependency cycle and checks the dispatcher reports a deadlock error
// from Step instead of hanging the device workers forever.
func TestCyclicScheduleReportsDeadlock(t *testing.T) {
	cfg := trainerConfig(sched.HarmonyDP, 2)
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Make the first task of queue 0 depend on the last one: the last
	// transitively depends on the first, so nothing can ever start.
	q := tr.s.Queues[0]
	first, last := q[0], q[len(q)-1]
	first.Deps = append(first.Deps, last)
	last.Succs = append(last.Succs, first)

	blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
	in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, 0)
	_, err = tr.Step(in, lb)
	if err == nil {
		t.Fatal("cyclic schedule accepted")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error does not mention deadlock: %v", err)
	}
	// The verdict is cached: later steps fail identically instead of
	// re-running validation or touching weights.
	if _, err2 := tr.Step(in, lb); err2 == nil || !strings.Contains(err2.Error(), "deadlock") {
		t.Fatalf("second step: %v", err2)
	}
}

// ------------------------------------------------------ stream weaving

// TestBuildStreamsWeavesCollectives checks every collective appears in
// each participant's stream exactly once, before its first successor.
func TestBuildStreamsWeavesCollectives(t *testing.T) {
	tr, err := NewTrainer(trainerConfig(sched.HarmonyDP, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.s.Collectives) == 0 {
		t.Fatal("DP schedule has no collectives")
	}
	for ci, c := range tr.s.Collectives {
		for d := 0; d < len(c.Inputs); d++ {
			found := 0
			collIdx := -1
			for i, e := range tr.streams[d] {
				if e.coll == ci {
					found++
					collIdx = i
				}
			}
			if found != 1 {
				t.Fatalf("collective %d appears %d times in gpu%d's stream", ci, found, d)
			}
			for _, succ := range c.Succs {
				for i, e := range tr.streams[d] {
					if e.coll < 0 && e.task.ID == succ.ID && i < collIdx {
						t.Fatalf("collective %d at %d after its successor %s at %d on gpu%d",
							ci, collIdx, succ, i, d)
					}
				}
			}
		}
	}
}
