package exec

import (
	"runtime"
	"strings"
	"testing"

	"harmony/internal/data"
	"harmony/internal/fault"
	"harmony/internal/nn"
	"harmony/internal/sched"
)

func faultyConfig(t *testing.T, mode sched.Mode, spec string, recover bool) TrainerConfig {
	t.Helper()
	cfg := trainerConfig(mode, 2)
	if spec != "" {
		inj, err := fault.Parse(spec, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Injector = inj
	}
	cfg.Recover = recover
	return cfg
}

// assertSameRun checks two trainers produced bit-identical losses and
// weights — the currency of every fault-tolerance guarantee below.
func assertSameRun(t *testing.T, a, b *Trainer, lossA, lossB []float32) {
	t.Helper()
	for s := range lossA {
		if lossA[s] != lossB[s] {
			t.Fatalf("step %d loss: %v vs %v", s, lossA[s], lossB[s])
		}
	}
	for r := 0; r < a.Replicas(); r++ {
		for l := range a.layers {
			wa, err := a.vm.Host(a.g.W[r][l])
			if err != nil {
				t.Fatal(err)
			}
			wb, err := b.vm.Host(b.g.W[r][l])
			if err != nil {
				t.Fatal(err)
			}
			for i := range wa {
				if wa[i] != wb[i] {
					t.Fatalf("replica %d layer %d weight %d: %v vs %v", r, l, i, wa[i], wb[i])
				}
			}
		}
	}
}

// TestDelayFaultsPreserveBitExactness injects timing-only faults into
// the parallel executor and compares against the fault-free serial
// reference: delays perturb interleavings but must never change the
// math (the executor's determinism does not lean on timing).
func TestDelayFaultsPreserveBitExactness(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := trainerConfig(mode, 2)
			ref.Serial = true
			a, lossA := runTrainer(t, ref, 3)
			spec := "op=any,mode=delay,delay=300us,count=40"
			b, lossB := runTrainer(t, faultyConfig(t, mode, spec, false), 3)
			assertSameRun(t, a, b, lossA, lossB)
			if injected, _ := b.cfg.Injector.Stats(); injected == 0 {
				t.Fatal("delay rule never fired")
			}
		})
	}
}

// TestTransientFaultsRetryToCompletion arms count-limited transient
// swap and p2p faults: the retry layer must absorb them (backoff, same
// operation re-issued) and the run must stay bit-identical to a
// fault-free one.
func TestTransientFaultsRetryToCompletion(t *testing.T) {
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			a, lossA := runTrainer(t, trainerConfig(mode, 2), 3)
			spec := "op=swap-in,mode=transient,count=3;op=p2p,mode=transient,count=2"
			cfg := faultyConfig(t, mode, spec, false)
			b, lossB := runTrainer(t, cfg, 3)
			assertSameRun(t, a, b, lossA, lossB)
			st := b.Stats()
			if st.FaultsInjected == 0 || st.Retries == 0 {
				t.Fatalf("no faults absorbed: %+v", st)
			}
			if st.Retries < st.FaultsInjected {
				t.Fatalf("faults (%d) outnumber retries (%d) on a fully-recovered run",
					st.FaultsInjected, st.Retries)
			}
		})
	}
}

// TestTransientFaultExhaustionSurfacesError: an unlimited transient
// rule outlives any retry budget, so Step must fail with a transient
// error instead of hanging or panicking.
func TestTransientFaultExhaustionSurfacesError(t *testing.T) {
	spec := "op=swap-in,mode=transient,count=0"
	cfg := faultyConfig(t, sched.HarmonyPP, spec, false)
	cfg.MaxRetries = 2
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
	in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, 0)
	_, err = tr.Step(in, lb)
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if !fault.IsTransient(err) {
		t.Fatalf("want transient fault error, got: %v", err)
	}
}

// TestFatalFaultWithoutRecoverFailsFast: with recovery disabled a
// fatal device fault must surface from Step as a fatal error naming
// the device.
func TestFatalFaultWithoutRecoverFailsFast(t *testing.T) {
	spec := "op=kernel,mode=fatal,dev=1,step=2"
	cfg := faultyConfig(t, sched.HarmonyDP, spec, false)
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
	for s := 0; s < 3; s++ {
		in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, uint64(s))
		_, err = tr.Step(in, lb)
		if s < 1 && err != nil {
			t.Fatalf("step %d failed before the armed step: %v", s, err)
		}
		if s == 1 {
			if err == nil {
				t.Fatal("fatal fault absorbed without recovery enabled")
			}
			dev, ok := fault.AsFatal(err)
			if !ok || dev != 1 {
				t.Fatalf("want fatal on dev 1, got: %v", err)
			}
			return
		}
	}
}

// TestEndToEndRecovery is the acceptance scenario: a fatal device
// fault mid-step kills a device, the trainer rolls back to its last
// in-memory checkpoint, re-binds the dead device's work to the
// survivor, recomputes pin budgets, finishes training — and the final
// weights and losses are bit-identical to a fault-free run of the same
// seed. Repeating the faulty run must reproduce it exactly.
func TestEndToEndRecovery(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 4
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := trainerConfig(mode, 2)
			// Recovery doubles up both virtual devices' pin sets on the
			// survivor, so give the run headroom over the test default.
			ref.DeviceBytes = 32 << 10
			a, lossA := runTrainer(t, ref, steps)

			run := func() (*Trainer, []float32) {
				spec := "op=kernel,mode=fatal,dev=1,step=3"
				cfg := faultyConfig(t, mode, spec, true)
				cfg.DeviceBytes = 32 << 10
				return runTrainer(t, cfg, steps)
			}
			b, lossB := run()
			assertSameRun(t, a, b, lossA, lossB)
			if got := b.Recoveries(); got != 1 {
				t.Fatalf("recoveries = %d, want 1", got)
			}
			alive := b.Alive()
			if alive[1] || !alive[0] {
				t.Fatalf("alive = %v, want device 1 dead", alive)
			}
			if injected, _ := b.cfg.Injector.Stats(); injected != 1 {
				t.Fatalf("injected = %d, want exactly the armed fatal", injected)
			}

			// Determinism across repeated faulty runs: same losses, same
			// weights, every time.
			for rep := 0; rep < 9; rep++ {
				c, lossC := run()
				assertSameRun(t, b, c, lossB, lossC)
			}
		})
	}
}

// TestRecoveryRefusesInfeasiblePinBudget: when the survivors cannot
// hold the re-bound work within DeviceBytes, recovery must fail with a
// diagnosable error instead of deadlocking the VM on an impossible
// reservation.
func TestRecoveryRefusesInfeasiblePinBudget(t *testing.T) {
	spec := "op=kernel,mode=fatal,dev=1,step=1"
	cfg := faultyConfig(t, sched.HarmonyDP, spec, true)
	// Default 12 KiB holds one virtual device's pins but not two.
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
	in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, 0)
	_, err = tr.Step(in, lb)
	if err == nil {
		t.Fatal("infeasible recovery reported success")
	}
	if !strings.Contains(err.Error(), "recover") {
		t.Fatalf("error does not mention recovery: %v", err)
	}
}
