package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"harmony/internal/memory"
	"harmony/internal/tensor"
)

// BenchmarkVMEvictionZipf measures demand paging under a skewed (Zipf
// s=1.2) access pattern: a hot head that mostly hits the pin fast
// path and a long cold tail that forces evictions. Unlike the cyclic
// BenchmarkVMEviction, hits and misses interleave, so the bench
// exercises the mixed word-CAS traffic of a real working set.
func BenchmarkVMEvictionZipf(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("tensors=%d", n), func(b *testing.B) {
			const bytes = 64
			reg := tensor.NewRegistry()
			vm := NewVM(1, int64(n)*bytes/2, memory.Policy{DirtyTracking: true})
			ts := make([]*tensor.Tensor, n)
			for i := range ts {
				ts[i] = reg.New(fmt.Sprintf("t%d", i), tensor.Activation, bytes, i, -1)
				vm.HostAlloc(ts[i])
			}
			rng := rand.New(rand.NewSource(42))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := ts[zipf.Uint64()]
				if _, err := vm.Ensure(0, t); err != nil {
					b.Fatal(err)
				}
				if err := vm.Unpin(t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnsureContended runs one goroutine per device, each
// hammering Ensure/Unpin on its own device's working set. Per-device
// metadata shards and the atomic claim word mean devices share no
// lock on this path, so ns/op staying flat from 1 to 64 devices is
// the scaling property this bench documents (and benchgate guards:
// the 64-device point may degrade at most 15% over the 16-device
// one). Under the old global vm.mu, every Ensure on every device
// serialized here.
//
// The per-device working set is fixed and small (16 pages) so the
// total metadata footprint stays cache-resident at every device
// count; otherwise growing cache pressure would be indistinguishable
// from lock contention, which is the variable under test.
func BenchmarkEnsureContended(b *testing.B) {
	for _, devs := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("devs=%d", devs), func(b *testing.B) {
			const (
				bytes  = 64
				perDev = 16
			)
			reg := tensor.NewRegistry()
			vm := NewVM(devs, perDev*bytes, memory.Policy{DirtyTracking: true})
			sets := make([][]*tensor.Tensor, devs)
			for d := 0; d < devs; d++ {
				for i := 0; i < perDev; i++ {
					t := reg.New(fmt.Sprintf("d%dt%d", d, i), tensor.Activation, bytes, i, d)
					vm.HostAlloc(t)
					sets[d] = append(sets[d], t)
				}
				// Pre-fault the set so the timed loop is pure fast path
				// (pin CAS + shard LRU touch), the regime where lock
				// contention would show.
				for _, t := range sets[d] {
					if _, err := vm.Ensure(d, t); err != nil {
						b.Fatal(err)
					}
					if err := vm.Unpin(t); err != nil {
						b.Fatal(err)
					}
				}
			}
			perG := b.N/devs + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, devs)
			for d := 0; d < devs; d++ {
				wg.Add(1)
				go func(d int) {
					defer wg.Done()
					set := sets[d]
					for i := 0; i < perG; i++ {
						t := set[i&(perDev-1)]
						if _, err := vm.Ensure(d, t); err != nil {
							errs <- err
							return
						}
						if err := vm.Unpin(t); err != nil {
							errs <- err
							return
						}
					}
				}(d)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		})
	}
}
