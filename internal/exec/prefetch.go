package exec

import (
	"sync"
	"time"

	"harmony/internal/hw"
	"harmony/internal/sim"
	"harmony/internal/tensor"
	"harmony/internal/trace"
)

// prefetcher drives the VM's async DMA engine from the schedule: the
// executor already knows each device's task stream, so right before a
// kernel launches, the device worker asks for the inputs of the next
// window compute entries (EnsureAsync — never blocking, never
// pinning) and for proactive write-backs of dirty LRU pages
// (CleanAhead), all of which the DMA workers overlap with the kernel.
// This is the real executor's version of the simulator's
// runtime.prefetchAhead.
//
// With AdaptivePrefetch the window is per virtual device and retuned
// between steps by adaptController; devs is nil in static mode and
// issue degenerates to the fixed depth.
type prefetcher struct {
	tr    *Trainer
	depth int
	clean int // dirty write-backs requested per issue point

	// Adaptive state, one slot per virtual device (queue index).
	// During a step each slot is touched only by its own device
	// worker; the trainer reads and retunes at the step boundary
	// after the workers have joined and WaitIdle drained the DMA
	// lanes, so no locking is needed (happens-before via goroutine
	// create/join).
	devs []*pfDev
}

// pfDev is one virtual device's adaptive prefetch state.
type pfDev struct {
	ctl adaptController
	sig adaptSignals
	// seen maps tensor ID → requested-by-a-window-scan-this-step.
	// Lookups and inserts only — never ranged (map order is
	// nondeterministic; the determinism analyzers enforce this).
	seen map[int]bool
	// scan is the current window scan's distinct-input scratch,
	// reused across issue calls to keep the hot path allocation-free.
	scan []*tensor.Tensor
}

// issue runs on device worker d between the dispatcher releasing
// stream[i] and its kernel launching.
func (p *prefetcher) issue(d int, stream []streamEntry, i int) {
	dev := p.tr.pdev(d)
	p.tr.vm.CleanAhead(dev, p.clean)
	window := p.depth
	var pd *pfDev
	if p.devs != nil {
		pd = p.devs[d]
		window = pd.ctl.window
		// Coverage of the entry about to execute, checked before this
		// call's own scan so an entry never covers itself. Collective
		// entries ensure their own views at rendezvous and are not
		// prefetch targets, so they do not count.
		if e := stream[i]; e.coll < 0 && len(e.task.Inputs) > 0 {
			covered := true
			for _, in := range e.task.Inputs {
				if !pd.seen[in.ID] {
					covered = false
					break
				}
			}
			if covered {
				pd.sig.Covered++
			} else {
				pd.sig.Uncovered++
			}
		}
		pd.scan = pd.scan[:0]
	}
	seen := 0
	var want int64
	for j := i + 1; j < len(stream) && seen < window; j++ {
		e := stream[j]
		if e.coll >= 0 {
			continue // collectives ensure their own views at rendezvous
		}
		seen++
		for _, in := range e.task.Inputs {
			p.tr.vm.EnsureAsync(dev, in)
			if pd == nil {
				continue
			}
			pd.seen[in.ID] = true
			dup := false
			for _, t := range pd.scan { // window is small; linear dedupe
				if t.ID == in.ID {
					dup = true
					break
				}
			}
			if !dup {
				pd.scan = append(pd.scan, in)
				want += in.Bytes
			}
		}
	}
	if pd != nil && want > pd.sig.WantPeak {
		pd.sig.WantPeak = want
	}
}

// beginStep resets the per-step adaptive counters. Called by the
// trainer before launching the step's workers; no-op in static mode.
func (p *prefetcher) beginStep() {
	for _, pd := range p.devs {
		pd.sig = adaptSignals{}
		clear(pd.seen)
	}
}

// endStep runs every device's controller on the step's signals and
// applies retuned budgets to the VM shards. Called by the trainer
// only after a successful step (WaitIdle drained; a failed attempt's
// partial counters are discarded by the next beginStep), in ascending
// virtual-device order so the decision log is a deterministic
// function of the step counter. Post-recovery, several virtual
// devices may alias one physical shard; the largest budget wins,
// resolved in ascending order.
func (p *prefetcher) endStep(step int) []AdaptDecision {
	if p.devs == nil {
		return nil
	}
	var out []AdaptDecision
	for d, pd := range p.devs {
		out = append(out, pd.ctl.adaptStep(step, d, pd.sig)...)
	}
	p.applyBudgets()
	return out
}

// applyBudgets pushes every controller's current byte budget down to
// the VM shards. Post-recovery several virtual devices may alias one
// physical shard; the largest budget wins, resolved in ascending
// virtual-device order. No-op in static mode.
func (p *prefetcher) applyBudgets() {
	if p.devs == nil {
		return
	}
	budgets := make([]int64, p.tr.cfg.Devices)
	for d, pd := range p.devs {
		ph := p.tr.pdev(d)
		if ph >= 0 && ph < len(budgets) && pd.ctl.budget > budgets[ph] {
			budgets[ph] = pd.ctl.budget
		}
	}
	for ph, b := range budgets {
		if b > 0 {
			p.tr.vm.SetPrefetchBudget(ph, b)
		}
	}
}

// runRecorder timestamps compute and DMA spans onto a trace.Trace
// against a fixed epoch. All executor goroutines share it, hence the
// mutex; arming it costs one branch per task when disabled.
type runRecorder struct {
	mu    sync.Mutex
	tr    trace.Trace
	epoch time.Time
}

func (r *runRecorder) add(dev int, lane trace.Lane, label string, start, end time.Time) {
	s := sim.Time(start.Sub(r.epoch).Seconds())
	e := sim.Time(end.Sub(r.epoch).Seconds())
	r.mu.Lock()
	r.tr.Add(hw.DeviceID(dev), lane, label, s, e)
	r.mu.Unlock()
}

// EnableTrace starts recording a wall-clock execution timeline:
// compute spans on each device's kernel lane, demand swaps, p2p moves,
// prefetches and clean-ahead write-backs on their DMA lanes. Returns
// the live trace — read it only between Steps. Calling it again
// restarts with a fresh trace.
func (tr *Trainer) EnableTrace() *trace.Trace {
	tr.rec = &runRecorder{epoch: tr.vm.clk.Now()}
	tr.vm.SetRecorder(tr.rec.add)
	return &tr.rec.tr
}

// Close drains and stops the VM's async DMA workers. Call it when
// discarding a trainer whose config enabled prefetch; training never
// needs it mid-run (step boundaries drain via WaitIdle).
func (tr *Trainer) Close() { tr.vm.Close() }
