package exec

import (
	"sync"
	"time"

	"harmony/internal/hw"
	"harmony/internal/sim"
	"harmony/internal/trace"
)

// prefetcher drives the VM's async DMA engine from the schedule: the
// executor already knows each device's task stream, so right before a
// kernel launches, the device worker asks for the inputs of the next
// depth compute entries (EnsureAsync — never blocking, never pinning)
// and for proactive write-backs of dirty LRU pages (CleanAhead), all
// of which the DMA workers overlap with the kernel. This is the real
// executor's version of the simulator's runtime.prefetchAhead.
type prefetcher struct {
	tr    *Trainer
	depth int
	clean int // dirty write-backs requested per issue point
}

// issue runs on device worker d between the dispatcher releasing
// stream[i] and its kernel launching.
func (p *prefetcher) issue(d int, stream []streamEntry, i int) {
	dev := p.tr.pdev(d)
	p.tr.vm.CleanAhead(dev, p.clean)
	seen := 0
	for j := i + 1; j < len(stream) && seen < p.depth; j++ {
		e := stream[j]
		if e.coll >= 0 {
			continue // collectives ensure their own views at rendezvous
		}
		seen++
		for _, in := range e.task.Inputs {
			p.tr.vm.EnsureAsync(dev, in)
		}
	}
}

// runRecorder timestamps compute and DMA spans onto a trace.Trace
// against a fixed epoch. All executor goroutines share it, hence the
// mutex; arming it costs one branch per task when disabled.
type runRecorder struct {
	mu    sync.Mutex
	tr    trace.Trace
	epoch time.Time
}

func (r *runRecorder) add(dev int, lane trace.Lane, label string, start, end time.Time) {
	s := sim.Time(start.Sub(r.epoch).Seconds())
	e := sim.Time(end.Sub(r.epoch).Seconds())
	r.mu.Lock()
	r.tr.Add(hw.DeviceID(dev), lane, label, s, e)
	r.mu.Unlock()
}

// EnableTrace starts recording a wall-clock execution timeline:
// compute spans on each device's kernel lane, demand swaps, p2p moves,
// prefetches and clean-ahead write-backs on their DMA lanes. Returns
// the live trace — read it only between Steps. Calling it again
// restarts with a fresh trace.
func (tr *Trainer) EnableTrace() *trace.Trace {
	tr.rec = &runRecorder{epoch: tr.vm.clk.Now()}
	tr.vm.SetRecorder(tr.rec.add)
	return &tr.rec.tr
}

// Close drains and stops the VM's async DMA workers. Call it when
// discarding a trainer whose config enabled prefetch; training never
// needs it mid-run (step boundaries drain via WaitIdle).
func (tr *Trainer) Close() { tr.vm.Close() }
