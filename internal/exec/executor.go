// The parallel executor maps each virtual device to a real worker
// goroutine. Tasks are released by a dependency-count dispatcher the
// moment their last dependency completes (a closed channel per task —
// no polling), each device worker drains its schedule queue in order,
// and collectives rendezvous across the participating device workers:
// every participant parks at the collective's position in its queue
// and the last to arrive performs the reduction, fanned across the
// kernel worker pool.
//
// Determinism: per-task math is bit-identical to the serial path (see
// internal/nn), collectives reduce replicas in fixed order, and losses
// are accumulated in task-ID order by Trainer.Step — so the parallel
// executor produces bit-identical weights and losses to the serial
// one, regardless of interleaving. Only data-movement counters (which
// depend on LRU timing) may differ.
package exec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"harmony/internal/graph"
	"harmony/internal/sched"
)

// streamEntry is one slot in a device worker's execution stream:
// either a compute task from the schedule queue or a rendezvous (coll
// indexes the rendezvous list returned by buildStreams; -1 for
// compute). A rendezvous covers one collective on the monolithic path
// and one whole bucket of collectives on the chunked path; task is its
// first member (used for labels and anchor bookkeeping).
type streamEntry struct {
	task *graph.Task
	coll int
}

// buildStreams weaves each rendezvous into the queue of every
// participating device. Participants of an AllReduce are devices
// 0..N-1 — replica i's gradients live on device i, exactly as
// runCollective ensures them.
//
// Anchor placement differs by path, and the difference is the whole
// overlap story:
//
//   - monolithic (no comm plan): each collective is its own rendezvous
//     (rdvTasks[i] has one member), anchored just before its earliest
//     successor on the device — the all-park barrier runs as late as
//     the schedule allows;
//   - chunked (Schedule.Comm): each bucket is one rendezvous whose
//     members are its collectives in plan order, anchored just AFTER
//     the last member dependency on the device — the earliest point
//     the member gradients exist. The scheduler defers the bucket's
//     updates past the next bucket's backwards (commUpdateGroups), so
//     the entries after the anchor are compute: a worker that finishes
//     its chunks departs into backward work while other workers still
//     reduce. Both placements validate that every dependency precedes
//     the anchor and every successor follows it.
func buildStreams(s *sched.Schedule) ([][]streamEntry, [][]*graph.Task, []int, error) {
	type qpos struct{ dev, idx int }
	pos := make(map[int]qpos)
	for d, q := range s.Queues {
		for i, t := range q {
			pos[t.ID] = qpos{d, i}
		}
	}
	var rdvTasks [][]*graph.Task
	if s.Comm != nil {
		for _, b := range s.Comm {
			members := make([]*graph.Task, len(b.Members))
			for i, ci := range b.Members {
				members[i] = s.Collectives[ci]
			}
			rdvTasks = append(rdvTasks, members)
		}
	} else {
		for _, c := range s.Collectives {
			rdvTasks = append(rdvTasks, []*graph.Task{c})
		}
	}
	parties := make([]int, len(rdvTasks))
	// anchors[d][i] lists rendezvous to run right before queue index i.
	anchors := make([]map[int][]int, s.NGPUs)
	for d := range anchors {
		anchors[d] = make(map[int][]int)
	}
	for ri, members := range rdvTasks {
		n := 0
		for _, c := range members {
			if c.Kind != graph.AllReduce {
				return nil, nil, nil, fmt.Errorf("exec: unsupported collective kind %v in schedule", c.Kind)
			}
			if len(c.Inputs) == 0 || len(c.Inputs) > s.NGPUs {
				return nil, nil, nil, fmt.Errorf("exec: collective %s has %d inputs for %d devices", c, len(c.Inputs), s.NGPUs)
			}
			if n != 0 && len(c.Inputs) != n {
				return nil, nil, nil, fmt.Errorf("exec: rendezvous %d members disagree on party count", ri)
			}
			n = len(c.Inputs)
		}
		parties[ri] = n
		for d := 0; d < n; d++ {
			var anchor int
			if s.Comm != nil {
				// Earliest legal point: right after the last member
				// dependency scheduled on this device.
				anchor = 0
				for _, c := range members {
					for _, dep := range c.Deps {
						if p, ok := pos[dep.ID]; ok && p.dev == d && p.idx+1 > anchor {
							anchor = p.idx + 1
						}
					}
				}
			} else {
				// Latest legal point: right before the earliest member
				// successor on this device.
				anchor = len(s.Queues[d])
				for _, c := range members {
					for _, succ := range c.Succs {
						if p, ok := pos[succ.ID]; ok && p.dev == d && p.idx < anchor {
							anchor = p.idx
						}
					}
				}
				for _, c := range members {
					for _, dep := range c.Deps {
						if p, ok := pos[dep.ID]; ok && p.dev == d && p.idx >= anchor {
							return nil, nil, nil, fmt.Errorf("exec: collective %s on gpu%d depends on %s scheduled after its successors",
								c, d, dep)
						}
					}
				}
			}
			for _, c := range members {
				for _, succ := range c.Succs {
					if p, ok := pos[succ.ID]; ok && p.dev == d && p.idx < anchor {
						return nil, nil, nil, fmt.Errorf("exec: collective %s on gpu%d has successor %s scheduled before its dependencies",
							c, d, succ)
					}
				}
			}
			anchors[d][anchor] = append(anchors[d][anchor], ri)
		}
	}
	streams := make([][]streamEntry, s.NGPUs)
	for d, q := range s.Queues {
		st := make([]streamEntry, 0, len(q)+len(anchors[d]))
		for i := 0; i <= len(q); i++ {
			for _, ri := range anchors[d][i] {
				st = append(st, streamEntry{task: rdvTasks[ri][0], coll: ri})
			}
			if i < len(q) {
				st = append(st, streamEntry{task: q[i], coll: -1})
			}
		}
		streams[d] = st
	}
	return streams, rdvTasks, parties, nil
}

// validateStreams proves the woven schedule can complete by running it
// to a fixed point without executing any math: cursors advance when a
// head task's dependencies are met, collectives when all participants
// have arrived. A stuck fixed point is reported as a deadlock with
// each device's blocked head — the dispatcher refuses to launch
// workers that would hang forever on a cyclic schedule.
func validateStreams(tasks []*graph.Task, streams [][]streamEntry, rdvTasks [][]*graph.Task, parties []int) error {
	depsLeft := make([]int, len(tasks))
	total := 0
	for _, t := range tasks {
		depsLeft[t.ID] = len(t.Deps)
		total++
	}
	cursors := make([]int, len(streams))
	arrived := make([]int, len(parties))
	collDone := make([]bool, len(parties))
	collMarked := make(map[[2]int]bool) // (device, stream index) arrival recorded
	finish := func(t *graph.Task) {
		for _, s := range t.Succs {
			depsLeft[s.ID]--
		}
	}
	// A rendezvous completes when every participant has arrived and all
	// member dependencies are met; completing it finishes every member.
	// This is conservative for the chunked path (the real executor
	// releases each member as its last chunk retires, and lets finished
	// workers depart early), so a schedule passing here can only
	// complete more easily at runtime.
	membersReady := func(ri int) bool {
		for _, m := range rdvTasks[ri] {
			if depsLeft[m.ID] > 0 {
				return false
			}
		}
		return true
	}
	done := 0
	for done < total {
		progress := false
		for d := range streams {
			for cursors[d] < len(streams[d]) {
				e := streams[d][cursors[d]]
				if e.coll >= 0 {
					key := [2]int{d, cursors[d]}
					if !collMarked[key] {
						collMarked[key] = true
						arrived[e.coll]++
						progress = true
					}
					if !collDone[e.coll] {
						if arrived[e.coll] == parties[e.coll] && membersReady(e.coll) {
							collDone[e.coll] = true
							for _, m := range rdvTasks[e.coll] {
								finish(m)
								done++
							}
							progress = true
						} else {
							break // parked at the rendezvous
						}
					}
					cursors[d]++
					continue
				}
				if depsLeft[e.task.ID] > 0 {
					break
				}
				finish(e.task)
				done++
				cursors[d]++
				progress = true
			}
		}
		if !progress {
			var stuck []string
			for d := range streams {
				if cursors[d] < len(streams[d]) {
					e := streams[d][cursors[d]]
					stuck = append(stuck, fmt.Sprintf("gpu%d@%s(%d deps left)", d, e.task, depsLeft[e.task.ID]))
				}
			}
			return fmt.Errorf("exec: schedule deadlocked with %d/%d tasks done; blocked: %s",
				done, total, strings.Join(stuck, ", "))
		}
	}
	return nil
}

// rendezvous is one collective's runtime barrier state.
type rendezvous struct {
	arrived atomic.Int32
	parties int32
	done    chan struct{}
}

// executor runs one iteration's streams on worker goroutines.
type executor struct {
	tr     *Trainer
	labels [][][]int

	deps    []int32         // remaining dependencies per task ID
	ready   []chan struct{} // closed when deps hit zero
	losses  []float32       // per task ID, filled by final-layer backwards
	counted []bool

	// commLeft[bi][mi] counts bucket bi member mi's chunks not yet
	// reduced this run; the worker that retires a member's last chunk
	// completes it. Nil on the monolithic path.
	commLeft [][]int32

	abort    chan struct{}
	failOnce sync.Once
	err      error
}

func newExecutor(tr *Trainer, labels [][][]int) *executor {
	n := len(tr.g.Tasks)
	ex := &executor{
		tr:      tr,
		labels:  labels,
		deps:    make([]int32, n),
		ready:   make([]chan struct{}, n),
		losses:  make([]float32, n),
		counted: make([]bool, n),
		abort:   make(chan struct{}),
	}
	for _, b := range tr.comm {
		left := make([]int32, len(b.members))
		copy(left, b.chunksPerMember)
		ex.commLeft = append(ex.commLeft, left)
	}
	for _, t := range tr.g.Tasks {
		ex.deps[t.ID] = int32(len(t.Deps))
		ex.ready[t.ID] = make(chan struct{})
		if len(t.Deps) == 0 {
			close(ex.ready[t.ID])
		}
	}
	return ex
}

func (ex *executor) fail(err error) {
	ex.failOnce.Do(func() {
		ex.err = err
		close(ex.abort)
	})
}

// complete releases every successor whose dependency count reaches
// zero — the event-driven replacement for the serial poll loop.
func (ex *executor) complete(t *graph.Task) {
	for _, s := range t.Succs {
		if atomic.AddInt32(&ex.deps[s.ID], -1) == 0 {
			close(ex.ready[s.ID])
		}
	}
}

// run executes the streams and blocks until every worker has joined.
func (ex *executor) run(streams [][]streamEntry, parties []int) error {
	rdvs := make([]*rendezvous, len(parties))
	for i, p := range parties {
		rdvs[i] = &rendezvous{parties: int32(p), done: make(chan struct{})}
	}
	var wg sync.WaitGroup
	for d := range streams {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			ex.worker(d, streams[d], rdvs)
		}(d)
	}
	wg.Wait()
	return ex.err
}

// worker drains one device's stream in order, blocking on each entry
// until the dispatcher releases it.
func (ex *executor) worker(d int, stream []streamEntry, rdvs []*rendezvous) {
	for i, e := range stream {
		select {
		case <-ex.abort:
			return
		default:
		}
		if e.coll >= 0 {
			if ex.tr.comm != nil {
				if !ex.reduceBucket(d, e.coll) {
					return
				}
			} else if !ex.arrive(d, rdvs[e.coll], e.task) {
				return
			}
			continue
		}
		t := e.task
		select {
		case <-ex.ready[t.ID]:
		case <-ex.abort:
			return
		}
		// With the task released and about to compute, overlap the
		// future: async swap-ins for the next tasks' inputs and
		// write-backs of dirty LRU pages ride the DMA lanes while the
		// kernel runs.
		if ex.tr.pf != nil {
			ex.tr.pf.issue(d, stream, i)
		}
		loss, counted, err := ex.tr.runTask(d, t, ex.labels)
		if err != nil {
			ex.fail(fmt.Errorf("exec: %s on gpu%d: %w", t, d, err))
			return
		}
		ex.losses[t.ID] = loss
		ex.counted[t.ID] = counted
		ex.complete(t)
	}
}

// runSerial executes the schedule on the calling goroutine with the
// original polling loop: advance each device's queue when its head
// task's dependencies are done; collectives run as they become ready.
// Kept as the reference path (TrainerConfig.Serial) for determinism
// tests and ablation benchmarks.
func (ex *executor) runSerial() error {
	tr := ex.tr
	depsLeft := make([]int, len(tr.g.Tasks))
	for _, t := range tr.g.Tasks {
		depsLeft[t.ID] = len(t.Deps)
	}
	cursors := make([]int, tr.s.NGPUs)
	complete := func(t *graph.Task) {
		for _, s := range t.Succs {
			depsLeft[s.ID]--
		}
	}
	pendingAR := append([]*graph.Task(nil), tr.s.Collectives...)
	done := 0
	total := len(tr.g.Tasks)
	for done < total {
		progress := false
		// Collectives first: they unblock updates on every device.
		for i := 0; i < len(pendingAR); i++ {
			ar := pendingAR[i]
			if depsLeft[ar.ID] > 0 {
				continue
			}
			if err := tr.runCollective(-1, ar); err != nil {
				return err
			}
			complete(ar)
			pendingAR = append(pendingAR[:i], pendingAR[i+1:]...)
			i--
			done++
			progress = true
		}
		for d := 0; d < tr.s.NGPUs; d++ {
			q := tr.s.Queues[d]
			for cursors[d] < len(q) && depsLeft[q[cursors[d]].ID] == 0 {
				t := q[cursors[d]]
				loss, counted, err := tr.runTask(d, t, ex.labels)
				if err != nil {
					return fmt.Errorf("exec: %s on gpu%d: %w", t, d, err)
				}
				ex.losses[t.ID] = loss
				ex.counted[t.ID] = counted
				complete(t)
				cursors[d]++
				done++
				progress = true
			}
		}
		if !progress {
			return fmt.Errorf("exec: schedule deadlocked with %d/%d tasks done", done, total)
		}
	}
	return nil
}

// arrive parks device worker d at a collective's rendezvous. The last
// participant to arrive waits for the collective's own dependencies
// and performs the reduction; everyone else resumes when it finishes.
// Because all participants are parked, per-device pin pressure during
// the collective is identical to the serial executor's. d attributes
// injected collective faults to the worker that hit them.
func (ex *executor) arrive(d int, r *rendezvous, t *graph.Task) bool {
	if r.arrived.Add(1) < r.parties {
		select {
		case <-r.done:
			return true
		case <-ex.abort:
			return false
		}
	}
	defer close(r.done)
	select {
	case <-ex.ready[t.ID]:
	case <-ex.abort:
		return false
	}
	if err := ex.tr.runCollective(d, t); err != nil {
		ex.fail(fmt.Errorf("exec: %s: %w", t, err))
		return false
	}
	ex.complete(t)
	return true
}

// reduceBucket is the chunked rendezvous: device worker d reduces
// exactly the chunks the plan assigned to it (chunk k → worker k mod
// N, fixed at plan time), in member order, waiting only for each
// member's own dependencies — never for other workers. The worker that
// retires a member's last chunk completes it, releasing its updates;
// a worker whose chunks are done departs immediately and continues its
// compute stream while other chunks still reduce. No arrival barrier
// exists, which is the whole point: chunk boundaries, reducer
// assignment and per-element summation order are pure functions of the
// plan, so the overlap costs no determinism.
func (ex *executor) reduceBucket(d int, bi int) bool {
	b := &ex.tr.comm[bi]
	chunks := b.byDev[d]
	idx := 0
	for mi, m := range b.members {
		lo := idx
		for idx < len(chunks) && chunks[idx].Member == mi {
			idx++
		}
		if lo == idx {
			continue // no chunks of this member assigned here
		}
		select {
		case <-ex.ready[m.ID]:
		case <-ex.abort:
			return false
		}
		for _, c := range chunks[lo:idx] {
			if err := ex.tr.runCollectiveChunk(d, m, c.Lo, c.Hi); err != nil {
				ex.fail(fmt.Errorf("exec: %s[%d:%d]: %w", m, c.Lo, c.Hi, err))
				return false
			}
		}
		if atomic.AddInt32(&ex.commLeft[bi][mi], int32(lo-idx)) == 0 {
			ex.complete(m)
		}
	}
	return true
}
