package exec

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"harmony/internal/fault"
	"harmony/internal/graph"
	"harmony/internal/models"
	"harmony/internal/nn"
	"harmony/internal/sched"
	"harmony/internal/schedcheck"
	"harmony/internal/tensor"
	"harmony/internal/trace"
)

// Optimizer selects the weight-update rule.
type Optimizer int

const (
	// SGD is plain stochastic gradient descent.
	SGD Optimizer = iota
	// Adam keeps two moment buffers per parameter (the optimizer
	// state K of the paper's swap model).
	Adam
)

// TrainerConfig configures real training of a classifier under
// Harmony scheduling on virtual devices.
type TrainerConfig struct {
	// Widths is the MLP shape: input, hidden..., classes. Ignored
	// when Kernels is set.
	Widths []int
	// Kernels, when non-nil, is an explicit layer stack (dense,
	// conv, pool — anything implementing nn.Kernel); the final
	// kernel's OutSize is the class count.
	Kernels []nn.Kernel
	// Mode, Devices and the optimization toggles come from the same
	// scheduler as the simulator.
	Mode    sched.Mode
	Devices int
	// DeviceBytes is each virtual device's memory capacity; pick it
	// below the model's footprint to exercise swapping.
	DeviceBytes int64
	// MicrobatchSize and Microbatches shape one iteration per
	// replica (pipeline mode uses Microbatches as the total stream).
	MicrobatchSize int
	Microbatches   int
	Optimizer      Optimizer
	LR             float32
	Seed           uint64
	// Options overrides sched.DefaultOptions(Mode) when non-nil.
	Options *sched.Options
	// Serial forces the single-threaded reference executor (the
	// original polling loop). The default is the parallel
	// device-worker executor; both produce bit-identical weights
	// and losses — Serial exists for determinism tests and ablation
	// benchmarks.
	Serial bool

	// PrefetchDepth controls schedule-driven prefetch in the parallel
	// executor: before each kernel launches, its device worker issues
	// async swap-ins for the inputs of the next PrefetchDepth compute
	// tasks in its stream and proactive write-backs of dirty LRU
	// pages, all overlapped with the kernel by per-device DMA worker
	// goroutines. 0 means the default (2) when the schedule's
	// Prefetch option is on; negative disables prefetch entirely.
	// The serial reference path never prefetches. Prefetch changes
	// only data movement, never math: weights and losses stay
	// bit-identical at every depth.
	PrefetchDepth int
	// LinkBytesPerSec models host-link bandwidth: every swap, p2p
	// copy and collective's remote gradient traffic additionally
	// costs bytes/LinkBytesPerSec of wall time on
	// its transfer lane (outside the VM lock, so concurrent DMAs and
	// compute genuinely overlap). 0 disables modeling — transfers
	// cost only their memcpy time.
	LinkBytesPerSec int64

	// AdaptivePrefetch retunes each device's prefetch window and byte
	// budget online between iterations (DESIGN.md §13), from
	// deterministic per-step coverage counters keyed to the step
	// counter — never wall time — so adaptive runs stay bit-identical
	// and emit identical decision logs across repeats and executors.
	// Shorthand for Options.AdaptivePrefetch; implies prefetch.
	// PrefetchDepth is the starting window, clamped to the plan's
	// [WindowMin, WindowMax]. The serial reference path still never
	// prefetches, so adaptive+Serial is the static serial baseline.
	AdaptivePrefetch bool

	// CommChunks splits each gradient AllReduce into that many
	// plan-time chunk rendezvous, each reduced by a deterministically
	// assigned device worker so reduce work spreads across workers and
	// finished workers overlap collective tails with their compute
	// stream. 0 keeps the monolithic rendezvous. Shorthand for
	// Options.CommChunks. Chunked runs are bit-identical to monolithic
	// and serial ones: boundaries, reducers and per-element summation
	// order are pure functions of the plan.
	CommChunks int
	// CommBucketBytes coalesces small per-layer gradients (reverse
	// layer order) into byte-budgeted buckets sharing one rendezvous.
	// Shorthand for Options.CommBucketBytes; implies CommChunks >= 1.
	CommBucketBytes int64

	// Injector, when non-nil, fault-injects kernel launches,
	// swap-in/out and p2p copies, and collective rendezvous (see
	// internal/fault for the spec grammar). Transient faults are
	// retried with backoff; delay faults perturb timing only; fatal
	// faults kill the device worker.
	Injector *fault.Injector
	// MaxRetries bounds retries per faulted operation (0 means the
	// default of 3; negative disables retries).
	MaxRetries int
	// NoVerify skips the schedcheck preflight gate. NewTrainer
	// statically verifies the plan by default — happens-before
	// liveness, pin-budget residency, analytic swap-volume agreement
	// and the DMA claim-machine invariant — and refuses to construct a
	// trainer for a plan that would deadlock or thrash. Opting out is
	// for tests that deliberately build broken plans.
	NoVerify bool
	// Recover enables mid-iteration recovery: after a fatal device
	// fault the trainer retires the device, re-binds its stream to a
	// surviving device, rechecks pin budgets, rolls weights and
	// optimizer state back to the last completed step (an in-memory
	// checkpoint in the exec/checkpoint.go format) and re-runs the
	// step. Training math is unchanged: recovery only remaps where
	// tensors live, so recovered runs stay bit-identical to
	// fault-free ones.
	Recover bool
}

// Trainer runs real training iterations.
type Trainer struct {
	cfg     TrainerConfig
	layers  []nn.Kernel
	inDim   int
	classes int
	g       *graph.Graph
	s       *sched.Schedule
	vm      *VM
	step    int

	// streams are the per-device execution streams with rendezvous
	// woven in at their anchors; rdvTasks[i] lists rendezvous i's
	// member collectives (one on the monolithic path, a whole bucket
	// on the chunked path) and parties[i] is how many device workers
	// meet there. Built once at NewTrainer, checked for liveness once
	// at the first Step.
	streams   [][]streamEntry
	rdvTasks  [][]*graph.Task
	parties   []int
	validated bool
	valErr    error

	// comm is the chunked-collective runtime plan (nil = monolithic);
	// commStats counts chunk reductions, guarded by commMu because
	// chunks retire concurrently on different device workers.
	comm      []commBucketRT
	commMu    sync.Mutex
	commStats CommStats

	// pf, when non-nil, is the schedule-driven prefetcher the device
	// workers call before each kernel; rec, when non-nil, records
	// wall-clock compute/DMA spans (EnableTrace).
	pf  *prefetcher
	rec *runRecorder

	// Adaptive-prefetch observability: the full decision log (kept
	// across retunes and recoveries) and per-virtual-device window
	// extremes/resize counts (reset when a retune re-arms the
	// controllers). Written only at step boundaries.
	adaptLog   []AdaptDecision
	adaptStats []AdaptWindowStats

	// Recovery state. Virtual devices are schedule constructs; devMap
	// binds virtual device d to the physical device devMap[d] whose
	// memory it uses. Initially the identity map; when a physical
	// device dies (alive[p]=false) every virtual device bound to it is
	// re-bound to a survivor. Kernels are placement-independent and
	// collectives reduce in fixed order, so remapping never changes
	// the math — only where tensors live.
	devMap     []int
	alive      []bool
	snap       []byte  // last completed step, exec/checkpoint format
	statsBase  VMStats // counters from VMs discarded by recovery
	recoveries int
}

// NewTrainer builds the model, task graph, schedule and virtual
// memory, and initializes weights identically across replicas.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	var layers []nn.Kernel
	if len(cfg.Kernels) > 0 {
		layers = cfg.Kernels
		for i := 0; i+1 < len(layers); i++ {
			if layers[i].OutSize() != layers[i+1].InSize() {
				return nil, fmt.Errorf("exec: kernel %d (%s) out %d != kernel %d (%s) in %d",
					i, layers[i].Name(), layers[i].OutSize(),
					i+1, layers[i+1].Name(), layers[i+1].InSize())
			}
		}
	} else {
		if len(cfg.Widths) < 2 {
			return nil, fmt.Errorf("exec: need at least input and output widths")
		}
		for i := 0; i+1 < len(cfg.Widths); i++ {
			layers = append(layers, nn.Dense{
				In:   cfg.Widths[i],
				Out:  cfg.Widths[i+1],
				ReLU: i+2 < len(cfg.Widths), // all but the final layer
			})
		}
	}
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("exec: Devices must be positive")
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("exec: LR must be positive")
	}
	model := kernelModel(layers, cfg.Optimizer == Adam)
	replicas := cfg.Devices
	if cfg.Mode.IsPipeline() {
		replicas = 1
	}
	g, err := graph.Build(graph.Config{
		Model:          model,
		MicrobatchSize: cfg.MicrobatchSize,
		Microbatches:   cfg.Microbatches,
		Replicas:       replicas,
	})
	if err != nil {
		return nil, err
	}
	opts := sched.DefaultOptions(cfg.Mode)
	if cfg.Options != nil {
		opts = *cfg.Options
		opts.Mode = cfg.Mode
	}
	if cfg.AdaptivePrefetch {
		opts.AdaptivePrefetch = true
	}
	if cfg.CommChunks > 0 {
		opts.CommChunks = cfg.CommChunks
	}
	if cfg.CommBucketBytes > 0 {
		opts.CommBucketBytes = cfg.CommBucketBytes
	}
	s, err := sched.Build(g, opts, cfg.Devices)
	if err != nil {
		return nil, err
	}
	streams, rdvTasks, parties, err := buildStreams(s)
	if err != nil {
		return nil, err
	}
	if !cfg.NoVerify {
		if err := schedcheck.Check(s, planTopology(cfg, s)).Err(); err != nil {
			return nil, fmt.Errorf("exec: plan rejected by preflight verification (-verify=false or NoVerify to skip):\n%w", err)
		}
	}
	tr := &Trainer{
		cfg:      cfg,
		layers:   layers,
		inDim:    layers[0].InSize(),
		classes:  layers[len(layers)-1].OutSize(),
		g:        g,
		s:        s,
		vm:       NewVM(cfg.Devices, cfg.DeviceBytes, s.MemPolicy),
		streams:  streams,
		rdvTasks: rdvTasks,
		parties:  parties,
		comm:     buildCommPlan(s),
		devMap:   make([]int, cfg.Devices),
		alive:    make([]bool, cfg.Devices),
	}
	for d := range tr.devMap {
		tr.devMap[d] = d
		tr.alive[d] = true
	}
	if d := tr.prefetchDepth(); d > 0 {
		tr.pf = &prefetcher{tr: tr, depth: d, clean: 1}
		if s.Opts.AdaptivePrefetch {
			tr.armAdaptive()
		}
	}
	tr.configureVM()
	// Persistent state: identical weights in every replica, zero
	// gradients and optimizer state.
	for r := 0; r < replicas; r++ {
		for l, layer := range tr.layers {
			w := tr.vm.HostAlloc(g.W[r][l])
			nn.InitKernel(layer, w, cfg.Seed+uint64(l)*7919)
			tr.vm.HostAlloc(g.DW[r][l])
			if g.K[r][l].Bytes > 0 {
				tr.vm.HostAlloc(g.K[r][l])
			}
		}
	}
	if cfg.Recover {
		if err := tr.snapshot(); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// prefetchDepth resolves the configured lookahead: 0 means the
// default of 2 when the schedule asked for prefetch, negative
// disables. The serial reference path never prefetches — it is the
// bit-exactness and data-movement baseline.
func (tr *Trainer) prefetchDepth() int {
	switch {
	case tr.cfg.Serial || tr.cfg.PrefetchDepth < 0:
		return 0
	case tr.cfg.PrefetchDepth > 0:
		return tr.cfg.PrefetchDepth
	case tr.s.Prefetch:
		return 2
	default:
		return 0
	}
}

// configureVM arms the (possibly rebuilt) VM with fault injection,
// link modeling, tracing and — when prefetch is on — the async DMA
// engine. Shared by NewTrainer, recovery and retune.
func (tr *Trainer) configureVM() {
	tr.vm.SetFaultInjection(tr.cfg.Injector, tr.maxRetries(), func() int { return tr.step })
	tr.vm.SetLinkBandwidth(tr.cfg.LinkBytesPerSec)
	if tr.rec != nil {
		tr.vm.SetRecorder(tr.rec.add)
	}
	if tr.pf != nil {
		tr.vm.StartEngine(0) // default budget: half the device capacity
		tr.pf.applyBudgets() // adaptive: align shard budgets with the controllers
	}
}

// planTopology is the schedcheck preflight topology for a plan.
// Adaptive plans verify residency against the maximum admissible
// prefetch budget — the engine cap the controller can grow to — not
// the tuned starting point, so no reachable controller state can
// exceed what was verified.
func planTopology(cfg TrainerConfig, s *sched.Schedule) schedcheck.Topology {
	topo := schedcheck.Topology{Devices: cfg.Devices, DeviceBytes: cfg.DeviceBytes}
	if s.Opts.AdaptivePrefetch {
		topo.AdaptiveBudgetMaxBytes = cfg.DeviceBytes / 2
	}
	return topo
}

// armAdaptive attaches one controller per virtual device to the
// prefetcher, starting every window at the static depth and every
// budget at the engine cap (so an adaptive run's first step matches a
// static run's exactly). Called at construction and again by Retune
// when the adopted plan keeps adaptation on.
func (tr *Trainer) armAdaptive() {
	o := tr.s.Opts
	bMax := tr.cfg.DeviceBytes / 2
	tr.pf.devs = make([]*pfDev, tr.s.NGPUs)
	tr.adaptStats = make([]AdaptWindowStats, tr.s.NGPUs)
	for d := range tr.pf.devs {
		ctl := newAdaptController(tr.pf.depth, o.WindowMin, o.WindowMax, bMax)
		tr.pf.devs[d] = &pfDev{ctl: ctl, seen: make(map[int]bool)}
		tr.adaptStats[d] = AdaptWindowStats{Dev: d, WindowMin: ctl.window, WindowMax: ctl.window}
	}
}

// AdaptWindowStats summarizes one virtual device's adaptive window
// trajectory: the extreme window sizes observed and how many resize
// decisions the controller took.
type AdaptWindowStats struct {
	Dev                  int
	WindowMin, WindowMax int
	Resizes              int
}

// AdaptLog returns a copy of the adaptive-prefetch decision log. Two
// seeded runs of the same config produce deep-equal logs — the
// decision inputs are program-order coverage counters keyed to the
// step counter, never timing (DESIGN.md §13).
func (tr *Trainer) AdaptLog() []AdaptDecision {
	return append([]AdaptDecision(nil), tr.adaptLog...)
}

// AdaptStats returns per-virtual-device window extremes and resize
// counts; nil when the plan is not adaptive.
func (tr *Trainer) AdaptStats() []AdaptWindowStats {
	return append([]AdaptWindowStats(nil), tr.adaptStats...)
}

// adaptTick runs the per-device controllers on a completed step's
// signals: it folds the decisions into the log and window stats and
// stamps them on the trace's adapt lane. Called only on runStep's
// success path, after WaitIdle has drained the DMA engine and the
// step's device workers have joined — the quiescent point where the
// per-device signals are safely readable and budget retunes cannot
// race in-flight admissions.
func (tr *Trainer) adaptTick() {
	if tr.pf == nil {
		return
	}
	decs := tr.pf.endStep(tr.step)
	if len(decs) == 0 {
		return
	}
	for _, dec := range decs {
		if dec.What == "window" {
			st := &tr.adaptStats[dec.Dev]
			st.Resizes++
			if w := int(dec.To); w < st.WindowMin {
				st.WindowMin = w
			}
			if w := int(dec.To); w > st.WindowMax {
				st.WindowMax = w
			}
		}
		if tr.rec != nil {
			now := tr.vm.clk.Now()
			tr.rec.add(tr.pdev(dec.Dev), trace.Adapt, dec.String(), now, now)
		}
	}
	tr.adaptLog = append(tr.adaptLog, decs...)
}

// maxRetries resolves the configured retry bound: 0 means the default
// of 3, negative disables retries.
func (tr *Trainer) maxRetries() int {
	switch {
	case tr.cfg.MaxRetries > 0:
		return tr.cfg.MaxRetries
	case tr.cfg.MaxRetries < 0:
		return 0
	default:
		return 3
	}
}

// pdev maps a virtual device to the physical device backing it.
func (tr *Trainer) pdev(d int) int {
	if d < 0 || d >= len(tr.devMap) {
		return d
	}
	return tr.devMap[d]
}

// Alive reports which physical devices have not been retired by
// recovery.
func (tr *Trainer) Alive() []bool { return append([]bool(nil), tr.alive...) }

// Recoveries reports how many fatal device faults the trainer has
// recovered from.
func (tr *Trainer) Recoveries() int { return tr.recoveries }

// injectOp consults the fault injector for a compute-side operation
// (kernel launch, collective rendezvous), retrying transient faults
// with backoff.
func (tr *Trainer) injectOp(op fault.Op, dev, layer int) error {
	in := tr.cfg.Injector
	if in.Rules() == 0 {
		return nil
	}
	err := in.Inject(op, dev, tr.step, layer)
	for attempt := 0; fault.IsTransient(err) && attempt < tr.maxRetries(); attempt++ {
		in.NoteRetry(op, dev, tr.step)
		time.Sleep(fault.Backoff(attempt))
		err = in.Inject(op, dev, tr.step, layer)
	}
	return err
}

// kernelModel derives the simulator-facing model description from a
// real kernel stack: the graph and scheduler need only sizes and
// operation counts.
func kernelModel(layers []nn.Kernel, adam bool) *models.Model {
	opt := 0.0
	if adam {
		opt = 2.0
	}
	m := &models.Model{
		Name:                 "exec-kernels",
		OptStateParamsFactor: opt,
		SampleBytes:          int64(layers[0].InSize()) * 4,
	}
	for _, k := range layers {
		m.Layers = append(m.Layers, models.LayerSpec{
			Name:                k.Name(),
			Params:              int64(k.ParamCount()),
			FwdFLOPsPerSample:   k.FLOPsPerSample(),
			ActBytesPerSample:   int64(k.OutSize()) * 4,
			StashBytesPerSample: int64(k.StashSize()) * 4,
		})
	}
	return m
}

// Stats returns data-movement counters accumulated so far, including
// those of VMs discarded by recovery. The snapshot is taken under the
// VM lock, so it is safe to call between steps of a parallel trainer
// (never concurrently with one).
func (tr *Trainer) Stats() VMStats { return tr.statsBase.add(tr.vm.StatsSnapshot()) }

// Model reports the derived model's footprint for sizing examples.
func (tr *Trainer) FootprintBytes() int64 {
	var total int64
	for _, t := range tr.g.Reg.All() {
		if t.Kind.IsPersistent() {
			total += t.Bytes
		}
	}
	return total
}

// Replicas returns how many model replicas the trainer maintains.
func (tr *Trainer) Replicas() int { return tr.g.Cfg.Replicas }

// batchesNeeded returns how many (microbatch) slots one Step consumes
// per replica.
func (tr *Trainer) batchesNeeded() int { return tr.g.Cfg.Microbatches }

// Step runs one training iteration. inputs[r][i] is the microbatch i
// fed to replica r (flattened [MicrobatchSize × Widths[0]]), labels
// likewise. It returns the mean loss across all microbatches.
//
// The iteration runs on the parallel device-worker executor unless
// cfg.Serial forces the single-threaded reference path; both produce
// bit-identical weights and losses (see executor.go).
func (tr *Trainer) Step(inputs [][][]float32, labels [][][]int) (float32, error) {
	m := tr.batchesNeeded()
	N := tr.g.Cfg.Replicas
	if len(inputs) != N || len(labels) != N {
		return 0, fmt.Errorf("exec: need data for %d replicas, got %d", N, len(inputs))
	}
	batch := tr.cfg.MicrobatchSize
	for r := 0; r < N; r++ {
		if len(inputs[r]) != m || len(labels[r]) != m {
			return 0, fmt.Errorf("exec: replica %d needs %d microbatches", r, m)
		}
		for i := 0; i < m; i++ {
			if len(inputs[r][i]) != batch*tr.inDim {
				return 0, fmt.Errorf("exec: input %d/%d has %d floats, want %d",
					r, i, len(inputs[r][i]), batch*tr.inDim)
			}
			if len(labels[r][i]) != batch {
				return 0, fmt.Errorf("exec: labels %d/%d has %d entries, want %d",
					r, i, len(labels[r][i]), batch)
			}
			// Validate labels up front: a bad label would otherwise
			// surface as a panic deep inside a backward kernel.
			for _, y := range labels[r][i] {
				if y < 0 || y >= tr.classes {
					return 0, fmt.Errorf("exec: label %d out of range [0,%d) in microbatch %d/%d",
						y, tr.classes, r, i)
				}
			}
		}
	}
	// Prove the woven streams can complete before touching any weight:
	// a cyclic or mis-anchored schedule is reported as a deadlock
	// instead of hanging the device workers. Re-armed (not once-only)
	// because Retune swaps the streams mid-run; Step is documented
	// non-concurrent, so a plain flag suffices.
	if !tr.validated {
		tr.valErr = validateStreams(tr.g.Tasks, tr.streams, tr.rdvTasks, tr.parties)
		tr.validated = true
	}
	if tr.valErr != nil {
		return 0, tr.valErr
	}
	for {
		loss, err := tr.runStep(inputs, labels)
		if err == nil {
			if tr.cfg.Recover {
				if serr := tr.snapshot(); serr != nil {
					return 0, serr
				}
			}
			return loss, nil
		}
		if !tr.cfg.Recover {
			return 0, err
		}
		dev, fatal := fault.AsFatal(err)
		if !fatal {
			// Transient faults that exhausted their retries, and
			// ordinary errors, are not recoverable by retiring a
			// device.
			return 0, err
		}
		if rerr := tr.recoverFrom(dev); rerr != nil {
			return 0, fmt.Errorf("exec: unrecoverable fault (%v): %w", err, rerr)
		}
		tr.recoveries++
	}
}

// runStep runs one executor iteration: stage inputs, execute, reduce
// losses, free the consumed inputs. On error the VM may hold partial
// state (pins, mid-iteration activations); the recovery path discards
// the whole VM rather than unwinding it.
func (tr *Trainer) runStep(inputs [][][]float32, labels [][][]int) (float32, error) {
	m := tr.batchesNeeded()
	N := tr.g.Cfg.Replicas
	for r := 0; r < N; r++ {
		for i := 0; i < m; i++ {
			host := tr.vm.HostAlloc(tr.g.Act[r][0][i])
			copy(host, inputs[r][i])
		}
	}
	tr.step++

	if tr.pf != nil {
		// Reset the adaptive coverage counters — a failed attempt's
		// partial signals are discarded here, so recovery re-runs
		// never skew a controller decision.
		tr.pf.beginStep()
	}
	ex := newExecutor(tr, labels)
	var err error
	if tr.cfg.Serial {
		err = ex.runSerial()
	} else {
		err = ex.run(tr.streams, tr.parties)
	}
	// Drain the DMA engine at the step boundary — on failure too, so
	// recovery never discards a VM with live DMAs and stats snapshots
	// are always settled. A fatal fault hit by an async prefetch
	// surfaces here if no demand access tripped over it first.
	if werr := tr.vm.WaitIdle(); err == nil {
		err = werr
	}
	if err != nil {
		return 0, err
	}
	tr.adaptTick()

	// Reduce losses in task-ID order regardless of which executor ran
	// (and in which interleaving), so both report bit-identical means.
	var totalLoss float64
	lossCount := 0
	for id, c := range ex.counted {
		if c {
			totalLoss += float64(ex.losses[id])
			lossCount++
		}
	}

	// Iteration cleanup: input batches are consumed.
	for r := 0; r < N; r++ {
		for i := 0; i < m; i++ {
			if err := tr.vm.Free(tr.g.Act[r][0][i]); err != nil {
				return 0, err
			}
		}
	}
	if lossCount == 0 {
		return 0, fmt.Errorf("exec: no loss computed")
	}
	return float32(totalLoss / float64(lossCount)), nil
}

// snapshot captures weights, optimizer state and the step counter in
// the exec/checkpoint format; recoverFrom restores it after a fatal
// fault. Taken at construction and after every completed step, so the
// rollback target is always the last completed weight update. Safe
// because optimizers zero the gradient buffers when they apply them:
// at a step boundary the full persistent state is (W, K, step).
func (tr *Trainer) snapshot() error {
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		return fmt.Errorf("exec: recovery snapshot: %w", err)
	}
	tr.snap = buf.Bytes()
	return nil
}

// recoverFrom retires physical device dev after a fatal fault: every
// virtual device bound to it is re-bound to a surviving physical
// device, the re-bound assignment is checked against the survivors'
// pin budgets, and the trainer state is rolled back to the last
// completed step by rebuilding the VM and restoring the snapshot. The
// caller then re-runs the step.
func (tr *Trainer) recoverFrom(dev int) error {
	if dev < 0 || dev >= len(tr.alive) {
		return fmt.Errorf("exec: fatal fault on unknown device %d", dev)
	}
	if !tr.alive[dev] {
		return fmt.Errorf("exec: device %d already retired", dev)
	}
	tr.alive[dev] = false
	var survivors []int
	for p, ok := range tr.alive {
		if ok {
			survivors = append(survivors, p)
		}
	}
	if len(survivors) == 0 {
		return fmt.Errorf("exec: no devices left")
	}
	// Re-bind: spread virtual devices over the survivors round-robin,
	// keeping still-alive identity bindings where possible so healthy
	// devices keep their own streams.
	next := 0
	for d := range tr.devMap {
		if tr.alive[d] {
			tr.devMap[d] = d
			continue
		}
		tr.devMap[d] = survivors[next%len(survivors)]
		next++
	}
	if err := tr.checkPinBudget(tr.s); err != nil {
		return err
	}

	// Roll back: discard the (possibly mid-iteration) VM wholesale and
	// restore the last completed step into a fresh one. Rebuilding
	// re-materializes persistent tensors exactly as NewTrainer did, so
	// restoring the snapshot yields bit-identical state to a fresh
	// trainer that loaded the same checkpoint.
	tr.vm.Close() // runStep already drained in-flight DMAs; stop the workers
	tr.statsBase = tr.statsBase.add(tr.vm.StatsSnapshot())
	tr.vm = NewVM(tr.cfg.Devices, tr.cfg.DeviceBytes, tr.s.MemPolicy)
	tr.configureVM()
	for r := 0; r < tr.g.Cfg.Replicas; r++ {
		for l := range tr.layers {
			tr.vm.HostAlloc(tr.g.W[r][l])
			tr.vm.HostAlloc(tr.g.DW[r][l])
			if tr.g.K[r][l].Bytes > 0 {
				tr.vm.HostAlloc(tr.g.K[r][l])
			}
		}
	}
	if err := tr.Load(bytes.NewReader(tr.snap)); err != nil {
		return fmt.Errorf("exec: rollback: %w", err)
	}
	return nil
}

// checkPinBudget verifies the given schedule is feasible under the
// current device binding: when several virtual devices share one
// physical device their worst-case concurrently-pinned bytes add up.
// Per virtual device that is the largest single-task pin set
// (inputs+outputs+workspace — one task in flight per stream); during
// a monolithic collective all participants park, so its demand is the
// sum of the participating replicas' buffers bound to the device.
// Chunked plans overlap collective and compute instead of parking, so
// their demand is additive across workers (see the s.Comm branch
// below). Conservative by design: it never passes a binding the VM
// could fail on. Recovery
// checks the live schedule against a shrunken binding; Retune checks
// a candidate schedule before adoption.
func (tr *Trainer) checkPinBudget(s *sched.Schedule) error {
	maxPin := make([]int64, len(tr.devMap))
	for d, q := range s.Queues {
		for _, t := range q {
			var pin int64
			for _, in := range t.Inputs {
				pin += in.Bytes
			}
			for _, out := range t.Outputs {
				pin += out.Bytes
			}
			pin += t.WorkspaceBytes
			if pin > maxPin[d] {
				maxPin[d] = pin
			}
		}
	}
	need := make([]int64, len(tr.devMap))
	if s.Comm != nil {
		// Chunked collectives overlap compute: while worker d reduces
		// a chunk (pinning all replica views of one member) the other
		// workers may be computing or reducing their own chunks. Per
		// worker the instantaneous demand is either its largest task
		// pin or its largest member's view pins, whichever lands on
		// each physical device; the per-device total is the sum across
		// workers. Conservative: it assumes every worker simultaneously
		// holds its worst case.
		for d := range tr.devMap {
			// chunkPin[p] = worst member view demand worker d can pin
			// on physical device p at once.
			chunkPin := make([]int64, len(tr.devMap))
			for _, b := range s.Comm {
				for mi, ci := range b.Members {
					mine := false
					for _, c := range b.Chunks {
						if c.Member == mi && c.Reducer == d {
							mine = true
							break
						}
					}
					if !mine {
						continue
					}
					views := make([]int64, len(tr.devMap))
					for i, in := range s.Collectives[ci].Inputs {
						views[tr.pdev(i)] += in.Bytes
					}
					for p, v := range views {
						if v > chunkPin[p] {
							chunkPin[p] = v
						}
					}
				}
			}
			for p := range need {
				contrib := chunkPin[p]
				if p == tr.pdev(d) && maxPin[d] > contrib {
					contrib = maxPin[d]
				}
				need[p] += contrib
			}
		}
	} else {
		for d, p := range tr.devMap {
			need[p] += maxPin[d]
		}
		for _, c := range s.Collectives {
			coll := make([]int64, len(tr.devMap))
			for i, in := range c.Inputs {
				coll[tr.pdev(i)] += in.Bytes
			}
			for p, b := range coll {
				if b > need[p] {
					need[p] = b
				}
			}
		}
	}
	for p, b := range need {
		if tr.alive[p] && b > tr.cfg.DeviceBytes {
			return fmt.Errorf("exec: pin budget exceeded on surviving gpu%d: need %d bytes, capacity %d",
				p, b, tr.cfg.DeviceBytes)
		}
	}
	return nil
}

// RetuneRequest describes a mid-run plan change for Trainer.Retune.
// Zero/nil fields keep the current value. A microbatch reshape must
// preserve the per-replica batch (MicrobatchSize × Microbatches), so
// the Step input contract is unchanged apart from the slicing.
type RetuneRequest struct {
	MicrobatchSize int
	Microbatches   int
	// Options replaces the schedule's option set (Mode is forced to
	// the trainer's). nil keeps the current options.
	Options *sched.Options
}

// Retune swaps the trainer's execution plan between iterations: it
// rebuilds the schedule (and, for a microbatch reshape or memory
// policy change, the task graph and VM) for the requested
// configuration, runs the full schedcheck preflight on the candidate
// plan, and adopts it only if verification passes. An infeasible
// retune returns the verifier's Gantt counterexample and leaves the
// running plan untouched — the next Step continues exactly as before.
// Training state survives adoption: a heavy retune round-trips
// weights, optimizer state and the step counter through the
// microbatch-independent checkpoint format.
//
// Call only between Steps (same non-concurrency contract as Step).
func (tr *Trainer) Retune(req RetuneRequest) error {
	mbs, mbc := tr.cfg.MicrobatchSize, tr.cfg.Microbatches
	if req.MicrobatchSize > 0 {
		mbs = req.MicrobatchSize
	}
	if req.Microbatches > 0 {
		mbc = req.Microbatches
	}
	if mbs*mbc != tr.cfg.MicrobatchSize*tr.cfg.Microbatches {
		return fmt.Errorf("exec: retune must preserve the per-replica batch: %d×%d != %d×%d",
			mbs, mbc, tr.cfg.MicrobatchSize, tr.cfg.Microbatches)
	}
	opts := tr.s.Opts
	if req.Options != nil {
		opts = *req.Options
		opts.Mode = tr.cfg.Mode
	}
	graphChanged := mbs != tr.cfg.MicrobatchSize || mbc != tr.cfg.Microbatches
	if !graphChanged && opts == tr.s.Opts {
		return nil
	}

	// Build and verify the candidate plan without touching the live
	// one: any failure below this point leaves the trainer unchanged.
	g2 := tr.g
	if graphChanged {
		var err error
		g2, err = graph.Build(graph.Config{
			Model:          kernelModel(tr.layers, tr.cfg.Optimizer == Adam),
			MicrobatchSize: mbs,
			Microbatches:   mbc,
			Replicas:       tr.g.Cfg.Replicas,
		})
		if err != nil {
			return fmt.Errorf("exec: retune: %w", err)
		}
	}
	s2, err := sched.Build(g2, opts, tr.cfg.Devices)
	if err != nil {
		return fmt.Errorf("exec: retune: %w", err)
	}
	streams2, rdvTasks2, parties2, err := buildStreams(s2)
	if err != nil {
		return fmt.Errorf("exec: retune: %w", err)
	}
	cfg2 := tr.cfg
	cfg2.MicrobatchSize, cfg2.Microbatches = mbs, mbc
	if !tr.cfg.NoVerify {
		if verr := schedcheck.Check(s2, planTopology(cfg2, s2)).Err(); verr != nil {
			return fmt.Errorf("exec: retune rejected by preflight verification (plan unchanged):\n%w", verr)
		}
	}
	if err := validateStreams(g2.Tasks, streams2, rdvTasks2, parties2); err != nil {
		return fmt.Errorf("exec: retune: %w", err)
	}
	if err := tr.checkPinBudget(s2); err != nil {
		return fmt.Errorf("exec: retune: %w", err)
	}

	// A graph or memory-policy change needs a fresh VM; carry the
	// training state across in the checkpoint format (captured while
	// the old graph's tensor handles are still live).
	heavy := graphChanged || s2.MemPolicy != tr.s.MemPolicy
	var snap []byte
	if heavy {
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			return fmt.Errorf("exec: retune: %w", err)
		}
		snap = buf.Bytes()
	}

	// ---- adopt ----
	tr.cfg = cfg2
	if req.Options != nil {
		o := opts
		tr.cfg.Options = &o
	}
	tr.g, tr.s, tr.streams, tr.rdvTasks, tr.parties = g2, s2, streams2, rdvTasks2, parties2
	tr.comm = buildCommPlan(s2)
	tr.validated, tr.valErr = true, nil // validateStreams just passed
	if heavy {
		tr.vm.Close() // step boundary: WaitIdle already drained in-flight DMAs
		tr.statsBase = tr.statsBase.add(tr.vm.StatsSnapshot())
		tr.vm = NewVM(tr.cfg.Devices, tr.cfg.DeviceBytes, s2.MemPolicy)
	}
	tr.pf, tr.adaptStats = nil, nil
	if d := tr.prefetchDepth(); d > 0 {
		tr.pf = &prefetcher{tr: tr, depth: d, clean: 1}
		if s2.Opts.AdaptivePrefetch {
			tr.armAdaptive()
		}
	}
	if heavy {
		tr.configureVM()
		for r := 0; r < tr.g.Cfg.Replicas; r++ {
			for l := range tr.layers {
				tr.vm.HostAlloc(tr.g.W[r][l])
				tr.vm.HostAlloc(tr.g.DW[r][l])
				if tr.g.K[r][l].Bytes > 0 {
					tr.vm.HostAlloc(tr.g.K[r][l])
				}
			}
		}
		if err := tr.Load(bytes.NewReader(snap)); err != nil {
			return fmt.Errorf("exec: retune state restore: %w", err)
		}
		if tr.cfg.Recover {
			if err := tr.snapshot(); err != nil {
				return err
			}
		}
	} else if tr.pf != nil {
		tr.vm.StartEngine(0) // idempotent; arms the engine if the old plan never did
		for p := 0; p < tr.cfg.Devices; p++ {
			tr.vm.SetPrefetchBudget(p, 0) // 0 clamps back to the engine cap
		}
		tr.pf.applyBudgets()
	}
	return nil
}

// runTask executes one compute task with real kernels. It returns a
// loss value when the task is the final layer's backward (which owns
// the loss computation).
func (tr *Trainer) runTask(dev int, t *graph.Task, labels [][][]int) (float32, bool, error) {
	// Late binding happens here: dev is the schedule's virtual device;
	// all memory traffic below targets the physical device backing it.
	dev = tr.pdev(dev)
	if err := tr.injectOp(fault.Kernel, dev, t.Layer); err != nil {
		return 0, false, err
	}
	if r := tr.rec; r != nil {
		start := tr.vm.clk.Now()
		defer func() { r.add(dev, trace.Compute, t.String(), start, tr.vm.clk.Now()) }()
	}
	g := tr.g
	batch := tr.cfg.MicrobatchSize
	switch t.Kind {
	case graph.Forward:
		layer := tr.layers[t.Layer]
		w, err := tr.vm.Ensure(dev, g.W[t.Replica][t.Layer])
		if err != nil {
			return 0, false, err
		}
		x, err := tr.vm.Ensure(dev, g.Act[t.Replica][t.Layer][t.Microbatch])
		if err != nil {
			return 0, false, err
		}
		y, err := tr.vm.Alloc(dev, g.Act[t.Replica][t.Layer+1][t.Microbatch])
		if err != nil {
			return 0, false, err
		}
		stash, err := tr.vm.Alloc(dev, g.Stash[t.Replica][t.Layer][t.Microbatch])
		if err != nil {
			return 0, false, err
		}
		layer.Forward(w, x, y, stash, batch)
		if err := tr.unpin(g.W[t.Replica][t.Layer], g.Act[t.Replica][t.Layer][t.Microbatch],
			g.Act[t.Replica][t.Layer+1][t.Microbatch], g.Stash[t.Replica][t.Layer][t.Microbatch]); err != nil {
			return 0, false, err
		}
		return 0, false, tr.freeAll(t.Frees)

	case graph.Backward:
		layer := tr.layers[t.Layer]
		R := len(tr.layers)
		w, err := tr.vm.Ensure(dev, g.W[t.Replica][t.Layer])
		if err != nil {
			return 0, false, err
		}
		dw, err := tr.vm.Ensure(dev, g.DW[t.Replica][t.Layer])
		if err != nil {
			return 0, false, err
		}
		stash, err := tr.vm.Ensure(dev, g.Stash[t.Replica][t.Layer][t.Microbatch])
		if err != nil {
			return 0, false, err
		}
		var dy []float32
		var loss float32
		counted := false
		pinnedDY := false
		if t.Layer == R-1 {
			// The loss gradient is produced here from the final
			// activations and the labels.
			logits, err := tr.vm.Ensure(dev, g.Act[t.Replica][t.Layer+1][t.Microbatch])
			if err != nil {
				return 0, false, err
			}
			classes := layer.OutSize()
			dy = nn.GetScratch(batch * classes)
			defer nn.PutScratch(dy)
			loss = nn.SoftmaxXent(logits, labels[t.Replica][t.Microbatch], dy, batch, classes)
			counted = true
			if err := tr.vm.Unpin(g.Act[t.Replica][t.Layer+1][t.Microbatch]); err != nil {
				return 0, false, err
			}
		} else {
			dy, err = tr.vm.Ensure(dev, g.Grad[t.Replica][t.Layer+1][t.Microbatch])
			if err != nil {
				return 0, false, err
			}
			pinnedDY = true
		}
		var dx []float32
		if t.Layer > 0 {
			dx, err = tr.vm.Alloc(dev, g.Grad[t.Replica][t.Layer][t.Microbatch])
			if err != nil {
				return 0, false, err
			}
		}
		layer.Backward(w, stash, dy, dx, dw, batch)
		if err := tr.vm.MarkDirty(g.DW[t.Replica][t.Layer]); err != nil {
			return 0, false, err
		}
		if err := tr.unpin(g.W[t.Replica][t.Layer], g.DW[t.Replica][t.Layer],
			g.Stash[t.Replica][t.Layer][t.Microbatch]); err != nil {
			return 0, false, err
		}
		if pinnedDY {
			if err := tr.vm.Unpin(g.Grad[t.Replica][t.Layer+1][t.Microbatch]); err != nil {
				return 0, false, err
			}
		}
		if t.Layer > 0 {
			if err := tr.vm.Unpin(g.Grad[t.Replica][t.Layer][t.Microbatch]); err != nil {
				return 0, false, err
			}
		}
		return loss, counted, tr.freeAll(t.Frees)

	case graph.Update:
		layer := tr.layers[t.Layer]
		if layer.ParamCount() == 0 {
			// Parameter-free layers (pooling) have nothing to update.
			return 0, false, nil
		}
		w, err := tr.vm.Ensure(dev, g.W[t.Replica][t.Layer])
		if err != nil {
			return 0, false, err
		}
		dw, err := tr.vm.Ensure(dev, g.DW[t.Replica][t.Layer])
		if err != nil {
			return 0, false, err
		}
		n := layer.ParamCount()
		if tr.cfg.Optimizer == Adam {
			k, err := tr.vm.Ensure(dev, g.K[t.Replica][t.Layer])
			if err != nil {
				return 0, false, err
			}
			nn.Adam(w[:n], dw[:n], k[:n], k[n:2*n], tr.cfg.LR, 0.9, 0.999, 1e-8, tr.step)
			if err := tr.vm.MarkDirty(g.K[t.Replica][t.Layer]); err != nil {
				return 0, false, err
			}
			if err := tr.vm.Unpin(g.K[t.Replica][t.Layer]); err != nil {
				return 0, false, err
			}
		} else {
			nn.SGD(w[:n], dw[:n], tr.cfg.LR)
		}
		if err := tr.vm.MarkDirty(g.W[t.Replica][t.Layer]); err != nil {
			return 0, false, err
		}
		if err := tr.vm.MarkDirty(g.DW[t.Replica][t.Layer]); err != nil {
			return 0, false, err
		}
		if err := tr.unpin(g.W[t.Replica][t.Layer], g.DW[t.Replica][t.Layer]); err != nil {
			return 0, false, err
		}
		return 0, false, nil

	default:
		return 0, false, fmt.Errorf("exec: unexpected task kind %v in queue", t.Kind)
	}
}

// runCollective executes a collective task. AllReduce averages the
// gradient buffers across replicas (real math: the buffers end up
// identical on every device). The reduction fans across the kernel
// worker pool over disjoint index ranges; each element still sums the
// replicas in fixed order, so the result is bit-identical at any
// worker count.
func (tr *Trainer) runCollective(dev int, ar *graph.Task) error {
	if ar.Kind != graph.AllReduce {
		return fmt.Errorf("exec: unsupported collective kind %v", ar.Kind)
	}
	n := len(ar.Inputs)
	if n == 0 {
		return fmt.Errorf("exec: collective %s has no inputs", ar)
	}
	// dev is the worker performing the rendezvous reduction (-1 on the
	// serial path, where a fatal collective fault has no single device
	// to retire and is therefore unrecoverable).
	if err := tr.injectOp(fault.Collective, tr.pdev(dev), ar.Layer); err != nil {
		return err
	}
	if r := tr.rec; r != nil && dev >= 0 {
		start := tr.vm.clk.Now()
		defer func() { r.add(tr.pdev(dev), trace.Comms, ar.String(), start, tr.vm.clk.Now()) }()
	}
	views := make([][]float32, n)
	for i, in := range ar.Inputs {
		v, err := tr.vm.Ensure(tr.pdev(i), in) // replica i trains on device i
		if err != nil {
			return err
		}
		views[i] = v
	}
	// Remote gradient traffic crosses the modeled interconnect: the
	// reducer pulls n-1 remote replicas' buffers and pushes the result
	// back, all charged serially on this worker while every other
	// participant parks — the all-park rendezvous pays the full link
	// latency on the critical path.
	tr.vm.linkSleep(2 * int64(n-1) * ar.Inputs[0].Bytes)
	floats := int(ar.Inputs[0].Bytes / 4)
	inv := float32(1) / float32(n)
	grain := (1 << 16) / (2 * n) // ~64k scalar ops per chunk
	if grain < 1 {
		grain = 1
	}
	nn.ParallelFor(floats, grain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var s float32
			for i := 0; i < n; i++ {
				s += views[i][j]
			}
			s *= inv
			for i := 0; i < n; i++ {
				views[i][j] = s
			}
		}
	})
	for _, in := range ar.Inputs {
		if err := tr.vm.MarkDirty(in); err != nil {
			return err
		}
		if err := tr.vm.Unpin(in); err != nil {
			return err
		}
	}
	return nil
}

// unpin releases pins on a batch of tensors. An unpin failure is a
// plumbing bug, but it surfaces as a returned error (not a panic) so
// the executor can abort the iteration cleanly and the recovery layer
// can decide what to do with it.
func (tr *Trainer) unpin(ts ...*tensor.Tensor) error {
	for _, t := range ts {
		if err := tr.vm.Unpin(t); err != nil {
			return err
		}
	}
	return nil
}

func (tr *Trainer) freeAll(ts []*tensor.Tensor) error {
	for _, t := range ts {
		if err := tr.vm.Free(t); err != nil {
			return err
		}
	}
	return nil
}

// Predict runs a forward-only pass on device 0 with replica 0's
// weights and returns the logits. Used by examples for evaluation.
//
// Per-layer output and stash buffers come from the shared kernel
// scratch pool rather than fresh allocations, so repeated evaluation
// loops stop churning the GC; every kernel fully overwrites its output
// and stash (bias-init or direct assignment), so reuse is safe. Only
// the returned logits are caller-owned.
func (tr *Trainer) Predict(input []float32, batch int) ([]float32, error) {
	if len(input) != batch*tr.inDim {
		return nil, fmt.Errorf("exec: predict input %d floats, want %d", len(input), batch*tr.inDim)
	}
	x := input
	var prev []float32 // pooled buffer holding x (nil for the input)
	for l, layer := range tr.layers {
		w, err := tr.vm.Host(tr.g.W[0][l])
		if err != nil {
			if prev != nil {
				nn.PutScratch(prev)
			}
			return nil, err
		}
		y := nn.GetScratch(batch * layer.OutSize())
		stash := nn.GetScratch(batch * layer.StashSize())
		layer.Forward(w, x, y, stash, batch)
		nn.PutScratch(stash)
		if prev != nil {
			nn.PutScratch(prev)
		}
		x, prev = y, y
	}
	out := make([]float32, batch*tr.classes)
	copy(out, x)
	if prev != nil {
		nn.PutScratch(prev)
	}
	return out, nil
}
