package exec

import (
	"fmt"
	"sync"

	"harmony/internal/graph"
	"harmony/internal/models"
	"harmony/internal/nn"
	"harmony/internal/sched"
	"harmony/internal/tensor"
)

// Optimizer selects the weight-update rule.
type Optimizer int

const (
	// SGD is plain stochastic gradient descent.
	SGD Optimizer = iota
	// Adam keeps two moment buffers per parameter (the optimizer
	// state K of the paper's swap model).
	Adam
)

// TrainerConfig configures real training of a classifier under
// Harmony scheduling on virtual devices.
type TrainerConfig struct {
	// Widths is the MLP shape: input, hidden..., classes. Ignored
	// when Kernels is set.
	Widths []int
	// Kernels, when non-nil, is an explicit layer stack (dense,
	// conv, pool — anything implementing nn.Kernel); the final
	// kernel's OutSize is the class count.
	Kernels []nn.Kernel
	// Mode, Devices and the optimization toggles come from the same
	// scheduler as the simulator.
	Mode    sched.Mode
	Devices int
	// DeviceBytes is each virtual device's memory capacity; pick it
	// below the model's footprint to exercise swapping.
	DeviceBytes int64
	// MicrobatchSize and Microbatches shape one iteration per
	// replica (pipeline mode uses Microbatches as the total stream).
	MicrobatchSize int
	Microbatches   int
	Optimizer      Optimizer
	LR             float32
	Seed           uint64
	// Options overrides sched.DefaultOptions(Mode) when non-nil.
	Options *sched.Options
	// Serial forces the single-threaded reference executor (the
	// original polling loop). The default is the parallel
	// device-worker executor; both produce bit-identical weights
	// and losses — Serial exists for determinism tests and ablation
	// benchmarks.
	Serial bool
}

// Trainer runs real training iterations.
type Trainer struct {
	cfg     TrainerConfig
	layers  []nn.Kernel
	inDim   int
	classes int
	g       *graph.Graph
	s       *sched.Schedule
	vm      *VM
	step    int

	// streams are the per-device execution streams with collectives
	// woven in at their rendezvous anchors; parties[i] is how many
	// device workers meet at collective i. Built once at NewTrainer,
	// checked for liveness once at the first Step.
	streams [][]streamEntry
	parties []int
	valOnce sync.Once
	valErr  error
}

// NewTrainer builds the model, task graph, schedule and virtual
// memory, and initializes weights identically across replicas.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	var layers []nn.Kernel
	if len(cfg.Kernels) > 0 {
		layers = cfg.Kernels
		for i := 0; i+1 < len(layers); i++ {
			if layers[i].OutSize() != layers[i+1].InSize() {
				return nil, fmt.Errorf("exec: kernel %d (%s) out %d != kernel %d (%s) in %d",
					i, layers[i].Name(), layers[i].OutSize(),
					i+1, layers[i+1].Name(), layers[i+1].InSize())
			}
		}
	} else {
		if len(cfg.Widths) < 2 {
			return nil, fmt.Errorf("exec: need at least input and output widths")
		}
		for i := 0; i+1 < len(cfg.Widths); i++ {
			layers = append(layers, nn.Dense{
				In:   cfg.Widths[i],
				Out:  cfg.Widths[i+1],
				ReLU: i+2 < len(cfg.Widths), // all but the final layer
			})
		}
	}
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("exec: Devices must be positive")
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("exec: LR must be positive")
	}
	model := kernelModel(layers, cfg.Optimizer == Adam)
	replicas := cfg.Devices
	if cfg.Mode.IsPipeline() {
		replicas = 1
	}
	g, err := graph.Build(graph.Config{
		Model:          model,
		MicrobatchSize: cfg.MicrobatchSize,
		Microbatches:   cfg.Microbatches,
		Replicas:       replicas,
	})
	if err != nil {
		return nil, err
	}
	opts := sched.DefaultOptions(cfg.Mode)
	if cfg.Options != nil {
		opts = *cfg.Options
		opts.Mode = cfg.Mode
	}
	s, err := sched.Build(g, opts, cfg.Devices)
	if err != nil {
		return nil, err
	}
	streams, parties, err := buildStreams(s)
	if err != nil {
		return nil, err
	}
	tr := &Trainer{
		cfg:     cfg,
		layers:  layers,
		inDim:   layers[0].InSize(),
		classes: layers[len(layers)-1].OutSize(),
		g:       g,
		s:       s,
		vm:      NewVM(cfg.Devices, cfg.DeviceBytes, s.MemPolicy),
		streams: streams,
		parties: parties,
	}
	// Persistent state: identical weights in every replica, zero
	// gradients and optimizer state.
	for r := 0; r < replicas; r++ {
		for l, layer := range tr.layers {
			w := tr.vm.HostAlloc(g.W[r][l])
			nn.InitKernel(layer, w, cfg.Seed+uint64(l)*7919)
			tr.vm.HostAlloc(g.DW[r][l])
			if g.K[r][l].Bytes > 0 {
				tr.vm.HostAlloc(g.K[r][l])
			}
		}
	}
	return tr, nil
}

// kernelModel derives the simulator-facing model description from a
// real kernel stack: the graph and scheduler need only sizes and
// operation counts.
func kernelModel(layers []nn.Kernel, adam bool) *models.Model {
	opt := 0.0
	if adam {
		opt = 2.0
	}
	m := &models.Model{
		Name:                 "exec-kernels",
		OptStateParamsFactor: opt,
		SampleBytes:          int64(layers[0].InSize()) * 4,
	}
	for _, k := range layers {
		m.Layers = append(m.Layers, models.LayerSpec{
			Name:                k.Name(),
			Params:              int64(k.ParamCount()),
			FwdFLOPsPerSample:   k.FLOPsPerSample(),
			ActBytesPerSample:   int64(k.OutSize()) * 4,
			StashBytesPerSample: int64(k.StashSize()) * 4,
		})
	}
	return m
}

// Stats returns data-movement counters accumulated so far. The
// snapshot is taken under the VM lock, so it is safe to call between
// steps of a parallel trainer (never concurrently with one).
func (tr *Trainer) Stats() VMStats { return tr.vm.StatsSnapshot() }

// Model reports the derived model's footprint for sizing examples.
func (tr *Trainer) FootprintBytes() int64 {
	var total int64
	for _, t := range tr.g.Reg.All() {
		if t.Kind.IsPersistent() {
			total += t.Bytes
		}
	}
	return total
}

// Replicas returns how many model replicas the trainer maintains.
func (tr *Trainer) Replicas() int { return tr.g.Cfg.Replicas }

// batchesNeeded returns how many (microbatch) slots one Step consumes
// per replica.
func (tr *Trainer) batchesNeeded() int { return tr.g.Cfg.Microbatches }

// Step runs one training iteration. inputs[r][i] is the microbatch i
// fed to replica r (flattened [MicrobatchSize × Widths[0]]), labels
// likewise. It returns the mean loss across all microbatches.
//
// The iteration runs on the parallel device-worker executor unless
// cfg.Serial forces the single-threaded reference path; both produce
// bit-identical weights and losses (see executor.go).
func (tr *Trainer) Step(inputs [][][]float32, labels [][][]int) (float32, error) {
	m := tr.batchesNeeded()
	N := tr.g.Cfg.Replicas
	if len(inputs) != N || len(labels) != N {
		return 0, fmt.Errorf("exec: need data for %d replicas, got %d", N, len(inputs))
	}
	batch := tr.cfg.MicrobatchSize
	for r := 0; r < N; r++ {
		if len(inputs[r]) != m || len(labels[r]) != m {
			return 0, fmt.Errorf("exec: replica %d needs %d microbatches", r, m)
		}
		for i := 0; i < m; i++ {
			if len(inputs[r][i]) != batch*tr.inDim {
				return 0, fmt.Errorf("exec: input %d/%d has %d floats, want %d",
					r, i, len(inputs[r][i]), batch*tr.inDim)
			}
			if len(labels[r][i]) != batch {
				return 0, fmt.Errorf("exec: labels %d/%d has %d entries, want %d",
					r, i, len(labels[r][i]), batch)
			}
			// Validate labels up front: a bad label would otherwise
			// surface as a panic deep inside a backward kernel.
			for _, y := range labels[r][i] {
				if y < 0 || y >= tr.classes {
					return 0, fmt.Errorf("exec: label %d out of range [0,%d) in microbatch %d/%d",
						y, tr.classes, r, i)
				}
			}
		}
	}
	// Prove the woven streams can complete before touching any weight:
	// a cyclic or mis-anchored schedule is reported as a deadlock
	// instead of hanging the device workers.
	tr.valOnce.Do(func() {
		tr.valErr = validateStreams(tr.g.Tasks, tr.streams, tr.parties)
	})
	if tr.valErr != nil {
		return 0, tr.valErr
	}
	for r := 0; r < N; r++ {
		for i := 0; i < m; i++ {
			host := tr.vm.HostAlloc(tr.g.Act[r][0][i])
			copy(host, inputs[r][i])
		}
	}
	tr.step++

	ex := newExecutor(tr, labels)
	var err error
	if tr.cfg.Serial {
		err = ex.runSerial()
	} else {
		err = ex.run(tr.streams, tr.parties)
	}
	if err != nil {
		return 0, err
	}

	// Reduce losses in task-ID order regardless of which executor ran
	// (and in which interleaving), so both report bit-identical means.
	var totalLoss float64
	lossCount := 0
	for id, c := range ex.counted {
		if c {
			totalLoss += float64(ex.losses[id])
			lossCount++
		}
	}

	// Iteration cleanup: input batches are consumed.
	for r := 0; r < N; r++ {
		for i := 0; i < m; i++ {
			if err := tr.vm.Free(tr.g.Act[r][0][i]); err != nil {
				return 0, err
			}
		}
	}
	if lossCount == 0 {
		return 0, fmt.Errorf("exec: no loss computed")
	}
	return float32(totalLoss / float64(lossCount)), nil
}

// runTask executes one compute task with real kernels. It returns a
// loss value when the task is the final layer's backward (which owns
// the loss computation).
func (tr *Trainer) runTask(dev int, t *graph.Task, labels [][][]int) (float32, bool, error) {
	g := tr.g
	batch := tr.cfg.MicrobatchSize
	switch t.Kind {
	case graph.Forward:
		layer := tr.layers[t.Layer]
		w, err := tr.vm.Ensure(dev, g.W[t.Replica][t.Layer])
		if err != nil {
			return 0, false, err
		}
		x, err := tr.vm.Ensure(dev, g.Act[t.Replica][t.Layer][t.Microbatch])
		if err != nil {
			return 0, false, err
		}
		y, err := tr.vm.Alloc(dev, g.Act[t.Replica][t.Layer+1][t.Microbatch])
		if err != nil {
			return 0, false, err
		}
		stash, err := tr.vm.Alloc(dev, g.Stash[t.Replica][t.Layer][t.Microbatch])
		if err != nil {
			return 0, false, err
		}
		layer.Forward(w, x, y, stash, batch)
		tr.unpin(g.W[t.Replica][t.Layer], g.Act[t.Replica][t.Layer][t.Microbatch],
			g.Act[t.Replica][t.Layer+1][t.Microbatch], g.Stash[t.Replica][t.Layer][t.Microbatch])
		return 0, false, tr.freeAll(t.Frees)

	case graph.Backward:
		layer := tr.layers[t.Layer]
		R := len(tr.layers)
		w, err := tr.vm.Ensure(dev, g.W[t.Replica][t.Layer])
		if err != nil {
			return 0, false, err
		}
		dw, err := tr.vm.Ensure(dev, g.DW[t.Replica][t.Layer])
		if err != nil {
			return 0, false, err
		}
		stash, err := tr.vm.Ensure(dev, g.Stash[t.Replica][t.Layer][t.Microbatch])
		if err != nil {
			return 0, false, err
		}
		var dy []float32
		var loss float32
		counted := false
		pinnedDY := false
		if t.Layer == R-1 {
			// The loss gradient is produced here from the final
			// activations and the labels.
			logits, err := tr.vm.Ensure(dev, g.Act[t.Replica][t.Layer+1][t.Microbatch])
			if err != nil {
				return 0, false, err
			}
			classes := layer.OutSize()
			dy = nn.GetScratch(batch * classes)
			defer nn.PutScratch(dy)
			loss = nn.SoftmaxXent(logits, labels[t.Replica][t.Microbatch], dy, batch, classes)
			counted = true
			if err := tr.vm.Unpin(g.Act[t.Replica][t.Layer+1][t.Microbatch]); err != nil {
				return 0, false, err
			}
		} else {
			dy, err = tr.vm.Ensure(dev, g.Grad[t.Replica][t.Layer+1][t.Microbatch])
			if err != nil {
				return 0, false, err
			}
			pinnedDY = true
		}
		var dx []float32
		if t.Layer > 0 {
			dx, err = tr.vm.Alloc(dev, g.Grad[t.Replica][t.Layer][t.Microbatch])
			if err != nil {
				return 0, false, err
			}
		}
		layer.Backward(w, stash, dy, dx, dw, batch)
		if err := tr.vm.MarkDirty(g.DW[t.Replica][t.Layer]); err != nil {
			return 0, false, err
		}
		tr.unpin(g.W[t.Replica][t.Layer], g.DW[t.Replica][t.Layer], g.Stash[t.Replica][t.Layer][t.Microbatch])
		if pinnedDY {
			if err := tr.vm.Unpin(g.Grad[t.Replica][t.Layer+1][t.Microbatch]); err != nil {
				return 0, false, err
			}
		}
		if t.Layer > 0 {
			if err := tr.vm.Unpin(g.Grad[t.Replica][t.Layer][t.Microbatch]); err != nil {
				return 0, false, err
			}
		}
		return loss, counted, tr.freeAll(t.Frees)

	case graph.Update:
		layer := tr.layers[t.Layer]
		if layer.ParamCount() == 0 {
			// Parameter-free layers (pooling) have nothing to update.
			return 0, false, nil
		}
		w, err := tr.vm.Ensure(dev, g.W[t.Replica][t.Layer])
		if err != nil {
			return 0, false, err
		}
		dw, err := tr.vm.Ensure(dev, g.DW[t.Replica][t.Layer])
		if err != nil {
			return 0, false, err
		}
		n := layer.ParamCount()
		if tr.cfg.Optimizer == Adam {
			k, err := tr.vm.Ensure(dev, g.K[t.Replica][t.Layer])
			if err != nil {
				return 0, false, err
			}
			nn.Adam(w[:n], dw[:n], k[:n], k[n:2*n], tr.cfg.LR, 0.9, 0.999, 1e-8, tr.step)
			if err := tr.vm.MarkDirty(g.K[t.Replica][t.Layer]); err != nil {
				return 0, false, err
			}
			if err := tr.vm.Unpin(g.K[t.Replica][t.Layer]); err != nil {
				return 0, false, err
			}
		} else {
			nn.SGD(w[:n], dw[:n], tr.cfg.LR)
		}
		if err := tr.vm.MarkDirty(g.W[t.Replica][t.Layer]); err != nil {
			return 0, false, err
		}
		if err := tr.vm.MarkDirty(g.DW[t.Replica][t.Layer]); err != nil {
			return 0, false, err
		}
		tr.unpin(g.W[t.Replica][t.Layer], g.DW[t.Replica][t.Layer])
		return 0, false, nil

	default:
		return 0, false, fmt.Errorf("exec: unexpected task kind %v in queue", t.Kind)
	}
}

// runCollective executes a collective task. AllReduce averages the
// gradient buffers across replicas (real math: the buffers end up
// identical on every device). The reduction fans across the kernel
// worker pool over disjoint index ranges; each element still sums the
// replicas in fixed order, so the result is bit-identical at any
// worker count.
func (tr *Trainer) runCollective(ar *graph.Task) error {
	if ar.Kind != graph.AllReduce {
		return fmt.Errorf("exec: unsupported collective kind %v", ar.Kind)
	}
	n := len(ar.Inputs)
	if n == 0 {
		return fmt.Errorf("exec: collective %s has no inputs", ar)
	}
	views := make([][]float32, n)
	for i, in := range ar.Inputs {
		v, err := tr.vm.Ensure(i, in) // replica i trains on device i
		if err != nil {
			return err
		}
		views[i] = v
	}
	floats := int(ar.Inputs[0].Bytes / 4)
	inv := float32(1) / float32(n)
	grain := (1 << 16) / (2 * n) // ~64k scalar ops per chunk
	if grain < 1 {
		grain = 1
	}
	nn.ParallelFor(floats, grain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var s float32
			for i := 0; i < n; i++ {
				s += views[i][j]
			}
			s *= inv
			for i := 0; i < n; i++ {
				views[i][j] = s
			}
		}
	})
	for _, in := range ar.Inputs {
		if err := tr.vm.MarkDirty(in); err != nil {
			return err
		}
		if err := tr.vm.Unpin(in); err != nil {
			return err
		}
	}
	return nil
}

func (tr *Trainer) unpin(ts ...*tensor.Tensor) {
	for _, t := range ts {
		if err := tr.vm.Unpin(t); err != nil {
			panic(err) // plumbing bug, not a runtime condition
		}
	}
}

func (tr *Trainer) freeAll(ts []*tensor.Tensor) error {
	for _, t := range ts {
		if err := tr.vm.Free(t); err != nil {
			return err
		}
	}
	return nil
}

// Predict runs a forward-only pass on device 0 with replica 0's
// weights and returns the logits. Used by examples for evaluation.
func (tr *Trainer) Predict(input []float32, batch int) ([]float32, error) {
	if len(input) != batch*tr.inDim {
		return nil, fmt.Errorf("exec: predict input %d floats, want %d", len(input), batch*tr.inDim)
	}
	x := input
	for l, layer := range tr.layers {
		w, err := tr.vm.Host(tr.g.W[0][l])
		if err != nil {
			return nil, err
		}
		y := make([]float32, batch*layer.OutSize())
		stash := make([]float32, batch*layer.StashSize())
		layer.Forward(w, x, y, stash, batch)
		x = y
	}
	return x, nil
}
