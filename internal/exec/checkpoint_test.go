package exec

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"harmony/internal/data"
	"harmony/internal/sched"
)

// checkpointStep runs one training step and returns its loss.
func checkpointStep(t *testing.T, tr *Trainer, cfg TrainerConfig, blobs *data.Blobs, s int) float32 {
	t.Helper()
	in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, uint64(s))
	loss, err := tr.Step(in, lb)
	if err != nil {
		t.Fatal(err)
	}
	return loss
}

// A checkpoint taken while fault injection is perturbing the run must
// capture exactly the post-update weights: restoring it into a fresh,
// fault-free trainer and continuing must reproduce the faulted
// original's continuation bit-for-bit (transient faults are retried,
// so they never change math — and neither must Save/Load).
func TestCheckpointRoundTripUnderFaults(t *testing.T) {
	spec := "op=swap-in,mode=transient,count=3;op=kernel,mode=transient,count=2"
	cfg := faultyConfig(t, sched.HarmonyDP, spec, false)
	blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)

	faulted, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		checkpointStep(t, faulted, cfg, blobs, s)
	}
	var snap bytes.Buffer
	if err := faulted.Save(&snap); err != nil {
		t.Fatal(err)
	}
	if inj, _ := cfg.Injector.Stats(); inj == 0 {
		t.Fatal("fault spec injected nothing; the test is not exercising the faulted path")
	}

	clean := trainerConfig(sched.HarmonyDP, 2)
	restored, err := NewTrainer(clean)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.StepCount() != faulted.StepCount() {
		t.Fatalf("restored step %d, want %d", restored.StepCount(), faulted.StepCount())
	}
	var contA, contB []float32
	for s := 4; s < 8; s++ {
		contA = append(contA, checkpointStep(t, faulted, cfg, blobs, s))
		contB = append(contB, checkpointStep(t, restored, clean, blobs, s))
	}
	assertSameRun(t, faulted, restored, contA, contB)
}

// Corrupted snapshots must be rejected with an error — never applied
// partially, never a panic. Each case flips or truncates a specific
// region of a valid checkpoint.
func TestCorruptedSnapshotRejected(t *testing.T) {
	cfg := trainerConfig(sched.HarmonyDP, 1)
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
	checkpointStep(t, tr, cfg, blobs, 0)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(off int, v uint32) []byte {
		c := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint32(c[off:], v)
		return c
	}
	cases := []struct {
		name string
		data []byte
		want string // substring the error must contain
	}{
		{"bad magic", mutate(0, 0xdeadbeef), "not a harmony checkpoint"},
		{"implausible step", mutate(8, 0xffffffff), "implausible"},
		{"wrong layer count", mutate(12, 99), "layers"},
		{"wrong param count", mutate(16, 7), "params"},
		{"truncated mid-layer", valid[:len(valid)-6], ""},
		{"empty", nil, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh, err := NewTrainer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			err = fresh.Load(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupted checkpoint accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// And the pristine bytes must still load: the corruption cases
	// fail because of the corruption, not an over-strict loader.
	fresh, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
}
