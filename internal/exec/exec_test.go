package exec

import (
	"strings"
	"testing"

	"harmony/internal/data"
	"harmony/internal/memory"
	"harmony/internal/nn"
	"harmony/internal/sched"
	"harmony/internal/tensor"
)

// ------------------------------------------------------------------ VM

func vmTensors(t *testing.T) (*tensor.Registry, *tensor.Tensor, *tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	reg := tensor.NewRegistry()
	a := reg.New("a", tensor.Weight, 400, 0, -1)
	b := reg.New("b", tensor.Weight, 400, 1, -1)
	c := reg.New("c", tensor.Weight, 400, 2, -1)
	return reg, a, b, c
}

func TestVMSwapRoundTripPreservesData(t *testing.T) {
	_, a, b, _ := vmTensors(t)
	vm := NewVM(1, 500, memory.Policy{})
	host := vm.HostAlloc(a)
	for i := range host {
		host[i] = float32(i)
	}
	dev, err := vm.Ensure(0, a)
	if err != nil {
		t.Fatal(err)
	}
	dev[0] = 42 // mutate on device
	if err := vm.MarkDirty(a); err != nil {
		t.Fatal(err)
	}
	if err := vm.Unpin(a); err != nil {
		t.Fatal(err)
	}
	// Force eviction by bringing in b.
	vm.HostAlloc(b)
	if _, err := vm.Ensure(0, b); err != nil {
		t.Fatal(err)
	}
	if vm.Used(0) != 400 {
		t.Fatalf("used = %d, want only b resident", vm.Used(0))
	}
	// The dirty mutation must have been written back.
	back, err := vm.Host(a)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != 42 || back[1] != 1 {
		t.Fatalf("writeback lost data: %v", back[:4])
	}
	if s := vm.StatsSnapshot(); s.SwapOuts != 1 || s.SwapIns != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestVMDirtyTrackingDropsClean(t *testing.T) {
	_, a, b, _ := vmTensors(t)
	vm := NewVM(1, 500, memory.Policy{DirtyTracking: true})
	vm.HostAlloc(a)
	vm.HostAlloc(b)
	if _, err := vm.Ensure(0, a); err != nil {
		t.Fatal(err)
	}
	if err := vm.Unpin(a); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Ensure(0, b); err != nil {
		t.Fatal(err)
	}
	if s := vm.StatsSnapshot(); s.SwapOuts != 0 || s.Drops != 1 {
		t.Fatalf("clean eviction should drop: %+v", s)
	}
}

func TestVMPinnedNeverEvicted(t *testing.T) {
	_, a, b, _ := vmTensors(t)
	vm := NewVM(1, 500, memory.Policy{})
	vm.HostAlloc(a)
	vm.HostAlloc(b)
	if _, err := vm.Ensure(0, a); err != nil {
		t.Fatal(err)
	}
	// a stays pinned: b cannot fit.
	if _, err := vm.Ensure(0, b); err == nil {
		t.Fatal("expected failure: everything pinned")
	}
}

func TestVMCapacityRespected(t *testing.T) {
	reg := tensor.NewRegistry()
	big := reg.New("big", tensor.Weight, 1000, 0, -1)
	vm := NewVM(1, 500, memory.Policy{})
	vm.HostAlloc(big)
	if _, err := vm.Ensure(0, big); err == nil {
		t.Fatal("oversized tensor accepted")
	}
}

func TestVMP2PMove(t *testing.T) {
	_, a, _, _ := vmTensors(t)
	vm := NewVM(2, 500, memory.Policy{P2P: true, DirtyTracking: true})
	vm.HostAlloc(a)
	dev0, err := vm.Ensure(0, a)
	if err != nil {
		t.Fatal(err)
	}
	dev0[7] = 3.5
	if err := vm.MarkDirty(a); err != nil {
		t.Fatal(err)
	}
	if err := vm.Unpin(a); err != nil {
		t.Fatal(err)
	}
	dev1, err := vm.Ensure(1, a)
	if err != nil {
		t.Fatal(err)
	}
	if dev1[7] != 3.5 {
		t.Fatal("p2p move lost data")
	}
	if s := vm.StatsSnapshot(); s.P2PMoves != 1 || vm.Used(0) != 0 || vm.Used(1) != 400 {
		t.Fatalf("p2p accounting: %+v used=%d/%d", s, vm.Used(0), vm.Used(1))
	}
}

func TestVMAllocRejectsDouble(t *testing.T) {
	_, a, _, _ := vmTensors(t)
	vm := NewVM(1, 500, memory.Policy{})
	if _, err := vm.Alloc(0, a); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Alloc(0, a); err == nil {
		t.Fatal("double alloc accepted")
	}
}

// ------------------------------------------------------------- Trainer

func trainerConfig(mode sched.Mode, devices int) TrainerConfig {
	return TrainerConfig{
		Widths:         []int{16, 32, 32, 4},
		Mode:           mode,
		Devices:        devices,
		DeviceBytes:    12 << 10, // well below the ~45 KB footprint
		MicrobatchSize: 8,
		Microbatches:   4,
		Optimizer:      SGD,
		LR:             0.05,
		Seed:           42,
	}
}

func trainSteps(t *testing.T, cfg TrainerConfig, steps int) (*Trainer, []float32) {
	t.Helper()
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
	var losses []float32
	for s := 0; s < steps; s++ {
		in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, uint64(s))
		loss, err := tr.Step(in, lb)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	return tr, losses
}

func TestTrainingReducesLossUnderMemoryPressure(t *testing.T) {
	for _, mode := range []sched.Mode{sched.DPBaseline, sched.HarmonyDP} {
		t.Run(mode.String(), func(t *testing.T) {
			tr, losses := trainSteps(t, trainerConfig(mode, 2), 30)
			first, last := losses[0], losses[len(losses)-1]
			if last >= first/2 {
				t.Fatalf("loss did not fall: %v -> %v", first, last)
			}
			// The device memory is far below the footprint, so the
			// coherent virtual memory must actually have swapped.
			if tr.Stats().SwapIns == 0 {
				t.Fatal("training never swapped despite tiny devices")
			}
		})
	}
}

func TestPipelineTrainingWorks(t *testing.T) {
	cfg := trainerConfig(sched.HarmonyPP, 2)
	cfg.Microbatches = 4
	tr, losses := trainSteps(t, cfg, 30)
	if losses[len(losses)-1] >= losses[0]/2 {
		t.Fatalf("pipeline loss did not fall: %v -> %v", losses[0], losses[len(losses)-1])
	}
	if tr.Stats().P2PBytes == 0 {
		t.Fatal("harmony-pp should move activations p2p")
	}
}

// The strongest correctness check: Harmony-PP under heavy swapping
// must produce bit-identical weights to a plain reference
// implementation with unlimited memory, because the coherent virtual
// memory must never lose or reorder data.
func TestHarmonyMatchesReferenceBitExact(t *testing.T) {
	widths := []int{8, 16, 3}
	mbSize, mbs := 4, 4
	lr := float32(0.1)
	blobs := data.NewBlobs(8, 3, 0.5, 11)

	// Reference: plain grad-accumulation training, no memory limits.
	layers := []nn.Dense{
		{In: 8, Out: 16, ReLU: true},
		{In: 16, Out: 3},
	}
	params := make([][]float32, 2)
	grads := make([][]float32, 2)
	for l, layer := range layers {
		params[l] = make([]float32, layer.ParamCount())
		nn.XavierInit(layer, params[l], 42+uint64(l)*7919)
		grads[l] = make([]float32, layer.ParamCount())
	}
	for s := 0; s < 5; s++ {
		in, lb := blobs.ReplicaBatches(1, mbs, mbSize, uint64(s))
		for i := 0; i < mbs; i++ {
			h := make([]float32, mbSize*16)
			s1 := make([]float32, mbSize*8)
			layers[0].Forward(params[0], in[0][i], h, s1, mbSize)
			logits := make([]float32, mbSize*3)
			s2 := make([]float32, mbSize*16)
			layers[1].Forward(params[1], h, logits, s2, mbSize)
			dl := make([]float32, mbSize*3)
			nn.SoftmaxXent(logits, lb[0][i], dl, mbSize, 3)
			dh := make([]float32, mbSize*16)
			layers[1].Backward(params[1], s2, dl, dh, grads[1], mbSize)
			layers[0].Backward(params[0], s1, dh, nil, grads[0], mbSize)
		}
		nn.SGD(params[0], grads[0], lr)
		nn.SGD(params[1], grads[1], lr)
	}

	// Harmony-PP on two tiny devices.
	cfg := TrainerConfig{
		Widths: widths, Mode: sched.HarmonyPP, Devices: 2,
		DeviceBytes: 4 << 10, MicrobatchSize: mbSize, Microbatches: mbs,
		Optimizer: SGD, LR: lr, Seed: 42,
	}
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		in, lb := blobs.ReplicaBatches(1, mbs, mbSize, uint64(s))
		if _, err := tr.Step(in, lb); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().SwapIns == 0 {
		t.Fatal("expected swapping at 4 KB devices")
	}
	for l := range layers {
		got, err := tr.vm.Host(tr.g.W[0][l])
		if err != nil {
			t.Fatal(err)
		}
		for i := range params[l] {
			if got[i] != params[l][i] {
				t.Fatalf("layer %d weight %d: harmony %v vs reference %v", l, i, got[i], params[l][i])
			}
		}
	}
}

func TestDPReplicasStayInSync(t *testing.T) {
	cfg := trainerConfig(sched.HarmonyDP, 2)
	tr, _ := trainSteps(t, cfg, 3)
	for l := range tr.layers {
		w0, err := tr.vm.Host(tr.g.W[0][l])
		if err != nil {
			t.Fatal(err)
		}
		w1, err := tr.vm.Host(tr.g.W[1][l])
		if err != nil {
			t.Fatal(err)
		}
		for i := range w0 {
			if w0[i] != w1[i] {
				t.Fatalf("replicas diverged at layer %d index %d: %v vs %v", l, i, w0[i], w1[i])
			}
		}
	}
}

func TestAdamTraining(t *testing.T) {
	cfg := trainerConfig(sched.HarmonyDP, 1)
	cfg.Optimizer = Adam
	// Adam triples the update working set (W + dW + 2 moments); give
	// the device just enough for one layer's update while keeping the
	// total footprint (~28 KB) above capacity.
	cfg.DeviceBytes = 20 << 10
	cfg.LR = 0.005
	_, losses := trainSteps(t, cfg, 30)
	if losses[len(losses)-1] >= losses[0]/2 {
		t.Fatalf("adam loss did not fall: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestPredict(t *testing.T) {
	cfg := trainerConfig(sched.HarmonyDP, 1)
	tr, _ := trainSteps(t, cfg, 40)
	blobs := data.NewBlobs(16, 4, 0.5, 7)
	x, y := blobs.Batch(64, 9999)
	logits, err := tr.Predict(x, 64)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 64; i++ {
		if nn.Argmax(logits, i, 4) == y[i] {
			correct++
		}
	}
	if correct < 48 { // 75% on an easy separable task
		t.Fatalf("accuracy %d/64 too low after training", correct)
	}
}

func TestTrainerValidation(t *testing.T) {
	bad := trainerConfig(sched.HarmonyDP, 2)
	bad.Widths = []int{5}
	if _, err := NewTrainer(bad); err == nil {
		t.Fatal("single-width accepted")
	}
	bad = trainerConfig(sched.HarmonyDP, 0)
	if _, err := NewTrainer(bad); err == nil {
		t.Fatal("zero devices accepted")
	}
	bad = trainerConfig(sched.HarmonyDP, 2)
	bad.LR = 0
	if _, err := NewTrainer(bad); err == nil {
		t.Fatal("zero LR accepted")
	}
	// Wrong data shapes.
	tr, err := NewTrainer(trainerConfig(sched.HarmonyDP, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(nil, nil); err == nil {
		t.Fatal("nil data accepted")
	}
}

// TestConvNetTraining trains a LeNet-style convolutional network
// through the coherent virtual memory — the paper's image
// classification motivation (Fig. 1 starts at LeNet).
func TestConvNetTraining(t *testing.T) {
	// 1×12×12 inputs → conv(6f,3x3)+relu → pool2 → dense → 4 classes.
	kernels := []nn.Kernel{
		nn.Conv2D{Cin: 1, H: 12, W: 12, Cout: 6, K: 3, ReLU: true},
		nn.MaxPool2D{C: 6, H: 10, W: 10, P: 2},
		nn.Dense{In: 6 * 5 * 5, Out: 32, ReLU: true},
		nn.Dense{In: 32, Out: 4},
	}
	cfg := TrainerConfig{
		Kernels:        kernels,
		Mode:           sched.HarmonyPP,
		Devices:        2,
		DeviceBytes:    64 << 10, // small enough to force swapping
		MicrobatchSize: 8,
		Microbatches:   2,
		Optimizer:      SGD,
		LR:             0.05,
		Seed:           3,
	}
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blobs := data.NewBlobs(144, 4, 1.0, 5)
	var first, last float32
	for s := 0; s < 25; s++ {
		in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, uint64(s))
		loss, err := tr.Step(in, lb)
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("conv training did not reduce loss: %v -> %v", first, last)
	}
	if tr.Stats().SwapIns == 0 {
		t.Fatal("conv training should have swapped on 24 KB devices")
	}
	// Inference works through the same kernel stack.
	x, _ := blobs.Batch(4, 777)
	logits, err := tr.Predict(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != 4*4 {
		t.Fatalf("logits = %d", len(logits))
	}
}

func TestKernelMismatchRejected(t *testing.T) {
	_, err := NewTrainer(TrainerConfig{
		Kernels: []nn.Kernel{
			nn.Dense{In: 8, Out: 16},
			nn.Dense{In: 4, Out: 2}, // mismatched
		},
		Devices: 1, DeviceBytes: 1 << 20, MicrobatchSize: 1, Microbatches: 1, LR: 0.1,
	})
	if err == nil {
		t.Fatal("mismatched kernel chain accepted")
	}
}

// Checkpoint round trip: save mid-training, keep training, restore,
// retrain — the two continuations must be bit-identical (SGD is
// deterministic) and a fresh trainer must accept the checkpoint.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := trainerConfig(sched.HarmonyDP, 2)
	cfg.Optimizer = Adam
	cfg.DeviceBytes = 20 << 10
	cfg.LR = 0.005
	blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
	step := func(tr *Trainer, s int) float32 {
		in, lb := blobs.ReplicaBatches(tr.Replicas(), cfg.Microbatches, cfg.MicrobatchSize, uint64(s))
		loss, err := tr.Step(in, lb)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	a, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		step(a, s)
	}
	var buf strings.Builder
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Continue the original.
	wantLoss := step(a, 5)

	// Restore into a fresh trainer with a different seed: the
	// checkpoint must fully determine the state.
	cfg2 := cfg
	cfg2.Seed = 999
	b, err := NewTrainer(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if b.StepCount() != 5 {
		t.Fatalf("restored step = %d, want 5", b.StepCount())
	}
	gotLoss := step(b, 5)
	if gotLoss != wantLoss {
		t.Fatalf("post-restore loss %v != original %v", gotLoss, wantLoss)
	}
	for l := range a.layers {
		wa, err := a.vm.Host(a.g.W[0][l])
		if err != nil {
			t.Fatal(err)
		}
		wb, err := b.vm.Host(b.g.W[0][l])
		if err != nil {
			t.Fatal(err)
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("layer %d weight %d diverged after restore", l, i)
			}
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	a, err := NewTrainer(trainerConfig(sched.HarmonyDP, 1))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Different architecture.
	other := trainerConfig(sched.HarmonyDP, 1)
	other.Widths = []int{16, 8, 4}
	b, err := NewTrainer(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(strings.NewReader(buf.String())); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
	// Garbage input.
	if err := b.Load(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPipelineBaselineTraining(t *testing.T) {
	// The naive 1F1B baseline also trains correctly (it just moves
	// more data): correctness is schedule-independent.
	cfg := trainerConfig(sched.PPBaseline, 2)
	tr, losses := trainSteps(t, cfg, 25)
	if losses[len(losses)-1] >= losses[0]/2 {
		t.Fatalf("pp-baseline loss did not fall: %v -> %v", losses[0], losses[len(losses)-1])
	}
	// Baseline bounces cross-stage tensors through the host: p2p off.
	if tr.Stats().P2PMoves != 0 {
		t.Fatal("baseline must not use p2p")
	}
}

func TestBaselineAndHarmonySameWeights(t *testing.T) {
	// The memory policy must never change the math: baseline DP and
	// Harmony-DP on identical data produce identical weights.
	run := func(mode sched.Mode) *Trainer {
		cfg := trainerConfig(mode, 1)
		tr, err := NewTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		blobs := data.NewBlobs(cfg.Widths[0], cfg.Widths[len(cfg.Widths)-1], 0.5, 7)
		for s := 0; s < 4; s++ {
			in, lb := blobs.ReplicaBatches(1, cfg.Microbatches, cfg.MicrobatchSize, uint64(s))
			if _, err := tr.Step(in, lb); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	a := run(sched.DPBaseline)
	b := run(sched.HarmonyDP)
	for l := range a.layers {
		wa, err := a.vm.Host(a.g.W[0][l])
		if err != nil {
			t.Fatal(err)
		}
		wb, err := b.vm.Host(b.g.W[0][l])
		if err != nil {
			t.Fatal(err)
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("layer %d weight %d: baseline %v vs harmony %v", l, i, wa[i], wb[i])
			}
		}
	}
	// But their data movement differs: that's the whole point.
	if a.Stats().SwapOutBytes <= b.Stats().SwapOutBytes {
		t.Fatalf("baseline should move more data: %d vs %d",
			a.Stats().SwapOutBytes, b.Stats().SwapOutBytes)
	}
}

func TestVMInvalidate(t *testing.T) {
	_, a, _, _ := vmTensors(t)
	vm := NewVM(1, 500, memory.Policy{DirtyTracking: true})
	host := vm.HostAlloc(a)
	host[0] = 1
	dev, err := vm.Ensure(0, a)
	if err != nil {
		t.Fatal(err)
	}
	dev[0] = 42
	if err := vm.MarkDirty(a); err != nil {
		t.Fatal(err)
	}
	// Pinned: must refuse.
	if err := vm.Invalidate(a); err == nil {
		t.Fatal("invalidate of pinned tensor accepted")
	}
	if err := vm.Unpin(a); err != nil {
		t.Fatal(err)
	}
	// Overwrite host, then invalidate: host wins.
	host[0] = 7
	if err := vm.Invalidate(a); err != nil {
		t.Fatal(err)
	}
	got, err := vm.Ensure(0, a)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("stale device copy survived: %v", got[0])
	}
	if vm.StatsSnapshot().SwapOuts != 0 {
		t.Fatal("invalidate must not write back")
	}
}
