// Chunked collective execution. The scheduler's comm plan
// (sched.Schedule.Comm) fixes bucket membership, chunk boundaries and
// reducer assignment at plan time; this file derives the runtime view
// the executor's reduceBucket path consumes — per-device chunk lists
// in member order plus per-member chunk counts — and implements the
// per-chunk reduction itself.
package exec

import (
	"fmt"

	"harmony/internal/fault"
	"harmony/internal/graph"
	"harmony/internal/sched"
	"harmony/internal/trace"
)

// commBucketRT is one bucket's runtime view.
type commBucketRT struct {
	// members are the bucket's collective tasks in plan order
	// (descending layer, mirroring backward completion).
	members []*graph.Task
	// byDev[d] lists the chunks device worker d reduces, member-major
	// then ascending offset — the iteration order of reduceBucket.
	byDev [][]sched.CommChunk
	// chunksPerMember seeds the executor's per-run countdown; the
	// worker that retires a member's last chunk completes the task.
	chunksPerMember []int32
}

// buildCommPlan derives the runtime comm plan from a schedule, or nil
// when the schedule has no comm plan (monolithic rendezvous).
func buildCommPlan(s *sched.Schedule) []commBucketRT {
	if s.Comm == nil {
		return nil
	}
	plan := make([]commBucketRT, len(s.Comm))
	for bi, b := range s.Comm {
		rt := commBucketRT{
			members:         make([]*graph.Task, len(b.Members)),
			byDev:           make([][]sched.CommChunk, s.NGPUs),
			chunksPerMember: make([]int32, len(b.Members)),
		}
		for i, ci := range b.Members {
			rt.members[i] = s.Collectives[ci]
		}
		for _, c := range b.Chunks {
			rt.byDev[c.Reducer] = append(rt.byDev[c.Reducer], c)
			rt.chunksPerMember[c.Member]++
		}
		plan[bi] = rt
	}
	return plan
}

// CommStats reports chunked-collective counters: how many chunk
// reductions ran and the total bytes they reduced (per-replica
// payload). Zero on monolithic plans.
type CommStats struct {
	ChunksReduced int64
	BytesReduced  int64
}

// CommStats returns the chunked-collective counters accumulated so
// far. Safe to call between steps (same contract as Stats).
func (tr *Trainer) CommStats() CommStats { return tr.commStats }

// runCollectiveChunk reduces the element range [lo, hi) of one
// AllReduce member across all replicas, on behalf of device worker
// dev. The summation order per element is fixed replica order —
// identical to runCollective's — so any partition into chunks yields
// bit-identical results. Each chunk is an independent unit of fault
// injection and recovery: a fatal fault here retires the reducing
// worker's physical device through the usual rollback-and-resume path.
func (tr *Trainer) runCollectiveChunk(dev int, ar *graph.Task, lo, hi int) error {
	if ar.Kind != graph.AllReduce {
		return fmt.Errorf("exec: unsupported collective kind %v", ar.Kind)
	}
	n := len(ar.Inputs)
	if n == 0 {
		return fmt.Errorf("exec: collective %s has no inputs", ar)
	}
	if err := tr.injectOp(fault.Collective, tr.pdev(dev), ar.Layer); err != nil {
		return err
	}
	if r := tr.rec; r != nil {
		start := tr.vm.clk.Now()
		defer func() {
			r.add(tr.pdev(dev), trace.Comms, fmt.Sprintf("%s[%d:%d]", ar, lo, hi), start, tr.vm.clk.Now())
		}()
	}
	views := make([][]float32, n)
	for i, in := range ar.Inputs {
		v, err := tr.vm.Ensure(tr.pdev(i), in) // replica i trains on device i
		if err != nil {
			return err
		}
		views[i] = v
	}
	// This chunk's share of the remote gradient traffic: pull n-1
	// remote slices, push the reduced slice back. Charged on the
	// reducing worker's goroutine, so chunks assigned to different
	// workers cross the modeled interconnect concurrently — and hide
	// behind other workers' compute instead of parking it.
	tr.vm.linkSleep(2 * int64(n-1) * int64(hi-lo) * 4)
	inv := float32(1) / float32(n)
	for j := lo; j < hi; j++ {
		var s float32
		for i := 0; i < n; i++ {
			s += views[i][j]
		}
		s *= inv
		for i := 0; i < n; i++ {
			views[i][j] = s
		}
	}
	for _, in := range ar.Inputs {
		if err := tr.vm.MarkDirty(in); err != nil {
			return err
		}
		if err := tr.vm.Unpin(in); err != nil {
			return err
		}
	}
	tr.commMu.Lock()
	tr.commStats.ChunksReduced++
	tr.commStats.BytesReduced += int64(hi-lo) * 4
	tr.commMu.Unlock()
	return nil
}
