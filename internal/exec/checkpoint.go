package exec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// checkpointMagic identifies the on-disk format; bump the version on
// layout changes.
const checkpointMagic uint32 = 0x48724d31 // "HrM1"

// Save serializes replica 0's weights and optimizer state (dirty
// device copies are written back first, so the checkpoint reflects
// the latest update). The format is self-describing: magic, step,
// layer count, then per layer the parameter and optimizer-state
// vectors.
func (tr *Trainer) Save(w io.Writer) error {
	write := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := write(checkpointMagic); err != nil {
		return fmt.Errorf("exec: checkpoint write: %w", err)
	}
	if err := write(uint64(tr.step)); err != nil {
		return err
	}
	if err := write(uint32(len(tr.layers))); err != nil {
		return err
	}
	for l, layer := range tr.layers {
		params, err := tr.vm.Host(tr.g.W[0][l])
		if err != nil {
			return fmt.Errorf("exec: checkpoint layer %d: %w", l, err)
		}
		if err := write(uint32(layer.ParamCount())); err != nil {
			return err
		}
		if err := writeFloats(w, params[:layer.ParamCount()]); err != nil {
			return err
		}
		var opt []float32
		if tr.g.K[0][l].Bytes > 0 {
			opt, err = tr.vm.Host(tr.g.K[0][l])
			if err != nil {
				return fmt.Errorf("exec: checkpoint optimizer %d: %w", l, err)
			}
		}
		if err := write(uint32(len(opt))); err != nil {
			return err
		}
		if err := writeFloats(w, opt); err != nil {
			return err
		}
	}
	return nil
}

// Load restores weights and optimizer state into every replica (all
// replicas must stay identical) and resumes the optimizer step count.
// The trainer's architecture must match the checkpoint.
func (tr *Trainer) Load(r io.Reader) error {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic uint32
	if err := read(&magic); err != nil {
		return fmt.Errorf("exec: checkpoint read: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("exec: not a harmony checkpoint (magic %#x)", magic)
	}
	var step uint64
	if err := read(&step); err != nil {
		return err
	}
	if step > math.MaxInt32 {
		return fmt.Errorf("exec: checkpoint step %d is implausible (corrupt header?)", step)
	}
	var layers uint32
	if err := read(&layers); err != nil {
		return err
	}
	if int(layers) != len(tr.layers) {
		return fmt.Errorf("exec: checkpoint has %d layers, trainer has %d", layers, len(tr.layers))
	}
	for l, layer := range tr.layers {
		var pn uint32
		if err := read(&pn); err != nil {
			return err
		}
		if int(pn) != layer.ParamCount() {
			return fmt.Errorf("exec: layer %d: checkpoint %d params, model %d", l, pn, layer.ParamCount())
		}
		params, err := readFloats(r, int(pn))
		if err != nil {
			return err
		}
		var on uint32
		if err := read(&on); err != nil {
			return err
		}
		// Validate the optimizer-state count against the model before
		// allocating: a corrupt uint32 here would otherwise drive a
		// multi-gigabyte allocation (found by FuzzLoad).
		if want := tr.g.K[0][l].Bytes / 4; on != 0 && int64(on) != want {
			return fmt.Errorf("exec: layer %d: checkpoint has %d optimizer floats, model has %d",
				l, on, want)
		}
		opt, err := readFloats(r, int(on))
		if err != nil {
			return err
		}
		for rep := 0; rep < tr.g.Cfg.Replicas; rep++ {
			// Sync then drop any device copy so the overwritten host
			// backing is authoritative.
			w, err := tr.vm.Host(tr.g.W[rep][l])
			if err != nil {
				return err
			}
			if err := tr.vm.Invalidate(tr.g.W[rep][l]); err != nil {
				return err
			}
			copy(w, params)
			if len(opt) > 0 {
				k, err := tr.vm.Host(tr.g.K[rep][l])
				if err != nil {
					return err
				}
				if err := tr.vm.Invalidate(tr.g.K[rep][l]); err != nil {
					return err
				}
				if len(k) != len(opt) {
					return fmt.Errorf("exec: layer %d: optimizer state size mismatch", l)
				}
				copy(k, opt)
			}
		}
	}
	tr.step = int(step)
	return nil
}

// Step count accessor for checkpoint-resume tests.
func (tr *Trainer) StepCount() int { return tr.step }

func writeFloats(w io.Writer, vs []float32) error {
	buf := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, n int) ([]float32, error) {
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out, nil
}
