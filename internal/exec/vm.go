// Package exec is Harmony's real-execution runtime: it trains actual
// models (internal/nn kernels, real float32 data) under the same task
// graphs and schedules as the simulator, but on capacity-limited
// *virtual devices* whose memories form a coherent virtual memory
// backed by host buffers. Swaps are real memcpys; capacity limits are
// enforced exactly; eviction is LRU with the same dirty-tracking and
// p2p policies as the simulated memory manager.
//
// This is the proof that the paper's design trains models end to end:
// the quickstart and mnist examples push a model whose footprint
// exceeds per-device capacity through Harmony scheduling and verify
// the loss decreases.
package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/claimword"
	"harmony/internal/fault"
	"harmony/internal/memory"
	"harmony/internal/tensor"
	"harmony/internal/trace"
)

// VMStats counts real data movement and fault handling.
type VMStats struct {
	SwapInBytes  int64
	SwapOutBytes int64
	DropBytes    int64
	P2PBytes     int64
	SwapIns      int
	SwapOuts     int
	Drops        int
	P2PMoves     int
	// FaultsInjected counts injected transfer faults observed by this
	// VM; Retries counts the re-attempts the retry layer issued for
	// them (successful retries leave FaultsInjected > Retries only
	// when a fault was fatal or retries were exhausted).
	FaultsInjected int
	Retries        int
	// Prefetch/overlap counters (see EnsureAsync / CleanAhead).
	// PrefetchIssued counts async swap-ins handed to the DMA engine;
	// PrefetchHits counts Ensure calls that found their tensor already
	// resident (or in flight) thanks to a prefetch; CleanAheads counts
	// proactive write-backs; AsyncDMANanos is wall time the DMA
	// workers spent copying or on the modeled link — divide by step
	// wall time for the compute/swap overlap fraction.
	PrefetchIssued int
	PrefetchHits   int
	CleanAheads    int
	AsyncDMANanos  int64
}

// add accumulates counters (used to carry stats across the VM rebuild
// a recovery performs, and to sum per-shard counters).
func (s VMStats) add(o VMStats) VMStats {
	s.SwapInBytes += o.SwapInBytes
	s.SwapOutBytes += o.SwapOutBytes
	s.DropBytes += o.DropBytes
	s.P2PBytes += o.P2PBytes
	s.SwapIns += o.SwapIns
	s.SwapOuts += o.SwapOuts
	s.Drops += o.Drops
	s.P2PMoves += o.P2PMoves
	s.FaultsInjected += o.FaultsInjected
	s.Retries += o.Retries
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchHits += o.PrefetchHits
	s.CleanAheads += o.CleanAheads
	s.AsyncDMANanos += o.AsyncDMANanos
	return s
}

// buffer is one tensor's VM state. Concurrency splits its fields into
// three ownership domains:
//
//   - word/done: the packed atomic claim word (internal/claimword) and
//     the claim's wakeup channel. Mutated only by the state-machine
//     helpers in dma.go (claim/commit/settle/pin/unpin/
//     consumePrefetch), only via CAS — the claimdiscipline analyzer
//     enforces this.
//   - dev, devID, host, dirty: owned by the claim holder. Claims
//     require idleness and (except snapshot write-backs) zero pins, so
//     a successful claim CAS excludes every other writer; lock-free
//     readers first observe an idle word via an atomic load, which
//     happens-after the settle that published the fields. dirty is
//     atomic because pin holders (MarkDirty) write it while shard
//     scans (CleanAhead, victim selection) read it.
//   - last, prev, next: LRU bookkeeping, guarded by the owning
//     device's shard mutex. A buffer is linked iff its word is
//     resident-idle or claimed-resident; unlinking happens only under
//     the shard lock while holding the claim.
type buffer struct {
	t     *tensor.Tensor
	host  []float32 // backing copy; nil until first host materialization
	dev   []float32 // device copy; nil when not resident
	devID int
	dirty atomic.Bool // device copy newer than host copy

	// word is the packed DMA/residency/pin state machine; done points
	// to the current claim's wakeup channel, closed at settle. done is
	// published by the claim winner right after its CAS, so waiters
	// that observe a claimed word with a nil done simply yield and
	// re-observe.
	word atomic.Uint64
	done atomic.Pointer[chan struct{}]

	last int64 // LRU clock (diagnostics; ordering lives in the list)

	// Intrusive per-shard LRU list (least-recent at head).
	prev, next *buffer
}

func (b *buffer) floats() int { return int(b.t.Bytes / 4) }

// load atomically observes b's claim word.
func (b *buffer) load() claimword.Word { return claimword.Word(b.word.Load()) }

// lruList is one device's residency list, least-recently-used first.
type lruList struct{ head, tail *buffer }

// vmShard is one device's slice of the VM: capacity accounting, LRU
// order, prefetch budget, DMA queue and movement stats, guarded by
// its own mutex so devices never contend with each other on the swap
// hot path.
type vmShard struct {
	mu sync.Mutex

	dev     int
	used    int64
	lru     lruList
	clock   int64
	pfBytes int64 // prefetched bytes in flight or resident-unconsumed
	// budget caps pfBytes for this shard. Seeded from the engine-wide
	// cap at StartEngine and retuned between steps by the adaptive
	// prefetch controller (SetPrefetchBudget); never exceeds
	// VM.budget, so static residency verification can use the
	// engine-wide cap as the worst case. Guarded by mu.
	budget int64
	stats  VMStats
	queue  []dmaReq
	work   *sync.Cond // signaled when queue grows or the VM closes
	// syncOuts counts synchronous write-backs (eviction or Host
	// stalls) on this device; cleanSeen is its value at the last
	// CleanAhead batch. Clean-ahead only arms after a new stall, so
	// workloads whose evictions are all drops never pay write-back
	// link traffic.
	syncOuts  int
	cleanSeen int
}

// VM is a coherent virtual memory across virtual devices.
//
// Locking discipline (DESIGN.md §12): the hot path is sharded by
// device. Each vmShard's mutex guards only that device's accounting —
// used bytes, LRU order, prefetch budget, DMA queue and stats.
// Per-buffer state (residency, pins, claim) lives in a packed atomic
// claim word driven by CAS (internal/claimword), so demand Ensure,
// prefetch EnsureAsync, eviction and DMA completion on different
// devices never touch a common lock. Copy execution (memcpy, modeled
// link time, fault-retry backoff) always runs with no shard lock
// held, under a buffer claim.
//
// Shard acquisition order: no code path holds two shard locks at
// once. Cross-device operations (p2p moves, multi-device sweeps like
// StatsSnapshot, Close and checkpoint save/load) visit shards one at
// a time in ascending device order; p2p reserves and charges the
// destination shard, releases it, and only then touches the source.
// Any future path that must nest shard locks must acquire them in
// ascending vmShard.dev order and say so in its doc comment (the
// lockhold analyzer checks the declaration).
//
// Deadlock discipline: synchronous paths may wait on waitable claims
// (async DMA-worker operations and committed sync claims), which
// always complete autonomously; eviction never waits on an
// uncommitted sync claim — the claimer may itself be waiting to
// reserve. Claims on resident buffers set async or committed in the
// claim CAS itself, so no observer ever sees a resident
// claimed-unwaitable buffer (the schedcheck DMA model proves this
// over all interleavings). DMA workers never wait on anything but
// their queue.
type VM struct {
	capacity int64
	pol      memory.Policy
	shards   []*vmShard

	// bufMu guards the tensor-ID → buffer map (and host backing
	// materialization, which happens at setup time); buffer state is
	// in the claim word, not here.
	bufMu sync.RWMutex
	bufs  map[int]*buffer

	// clk sources every wall-clock timestamp the VM records (DMA
	// spans, overlap counters). Immutable after NewVM; reading time
	// through an injectable Clock keeps recording off the
	// deterministic path (enforced by the determinism analyzer).
	clk trace.Clock

	// Async DMA engine (StartEngine). engOn flips once when the
	// engine starts; closed once at Close. pending counts queued or
	// in-flight async requests; the worker that drops it to zero
	// broadcasts idle under engMu, and WaitIdle holds engMu between
	// its check and its wait, so wakeups are never lost. budget is
	// immutable after StartEngine (published by engOn).
	engOn    atomic.Bool
	closed   atomic.Bool
	pending  atomic.Int64
	engMu    sync.Mutex
	idle     *sync.Cond // on engMu
	started  bool       // under engMu
	asyncErr error      // under engMu: first fatal fault on a DMA worker
	budget   int64      // per-device cap on pfBytes
	wg       sync.WaitGroup

	// cfgMu guards the injectable knobs below; they are read at most
	// once per transfer, off the hot path.
	cfgMu sync.Mutex
	// bytesPerSec models host-link bandwidth: every swap/p2p copy
	// additionally sleeps bytes/bytesPerSec (outside any lock), so
	// swap cost behaves like a real PCIe transfer instead of a
	// memcpy. 0 disables modeling.
	bytesPerSec int64
	// rec, when non-nil, receives wall-clock DMA spans (outside any
	// lock) for the swap-overlap Gantt lanes.
	rec func(dev int, lane trace.Lane, label string, start, end time.Time)
	// Fault injection (SetFaultInjection): inj decides whether a
	// swap-in, swap-out or p2p copy about to run fails; transient
	// failures are retried up to maxRetries times with fault.Backoff
	// between attempts. Backoff sleeps run outside all locks — a
	// stalled transfer stalls only its own buffer's waiters, never
	// the other devices.
	inj        *fault.Injector
	maxRetries int
	stepFn     func() int // current trainer step for fault site identity
}

// NewVM creates n virtual devices with the given per-device capacity.
func NewVM(devices int, capacityBytes int64, pol memory.Policy) *VM {
	if devices <= 0 || capacityBytes <= 0 {
		panic(fmt.Sprintf("exec: bad VM shape devices=%d capacity=%d", devices, capacityBytes))
	}
	vm := &VM{
		capacity: capacityBytes,
		pol:      pol,
		shards:   make([]*vmShard, devices),
		bufs:     make(map[int]*buffer),
		clk:      trace.WallClock{},
	}
	for d := range vm.shards {
		sh := &vmShard{dev: d, cleanSeen: -1} // first CleanAhead may act before any stall
		sh.work = sync.NewCond(&sh.mu)
		vm.shards[d] = sh
	}
	vm.idle = sync.NewCond(&vm.engMu)
	return vm
}

// SetFaultInjection arms the VM with a fault injector. stepFn reports
// the current trainer step (called without any VM lock held; it must
// not call back into the VM). Passing a nil injector disarms.
func (vm *VM) SetFaultInjection(inj *fault.Injector, maxRetries int, stepFn func() int) {
	vm.cfgMu.Lock()
	defer vm.cfgMu.Unlock()
	vm.inj = inj
	vm.maxRetries = maxRetries
	vm.stepFn = stepFn
}

// SetLinkBandwidth models host-link bandwidth for all transfers
// (0 disables; copies cost only their memcpy time).
func (vm *VM) SetLinkBandwidth(bytesPerSec int64) {
	vm.cfgMu.Lock()
	defer vm.cfgMu.Unlock()
	vm.bytesPerSec = bytesPerSec
}

// SetRecorder installs a DMA span recorder (nil disarms). fn is
// called outside all VM locks, on device-worker and DMA goroutines,
// and must be safe for concurrent use.
func (vm *VM) SetRecorder(fn func(dev int, lane trace.Lane, label string, start, end time.Time)) {
	vm.cfgMu.Lock()
	defer vm.cfgMu.Unlock()
	vm.rec = fn
}

// inject consults the injector for a transfer op touching tensor t on
// dev, retrying transient faults in place with backoff. Must be
// called without any shard lock held: the backoff sleeps on the
// calling goroutine, so a flaky transfer stalls only the waiters of
// its own buffer. Per-site determinism is unchanged — decisions hash
// the operation identity, not the interleaving.
func (vm *VM) inject(op fault.Op, dev int, t *tensor.Tensor) error {
	vm.cfgMu.Lock()
	inj, maxRetries, stepFn := vm.inj, vm.maxRetries, vm.stepFn
	vm.cfgMu.Unlock()
	if inj.Rules() == 0 {
		return nil
	}
	step := 0
	if stepFn != nil {
		step = stepFn()
	}
	layer := -1
	if t != nil {
		layer = t.Layer
	}
	sh := vm.shards[dev]
	err := inj.Inject(op, dev, step, layer)
	for attempt := 0; fault.IsTransient(err) && attempt < maxRetries; attempt++ {
		sh.mu.Lock()
		sh.stats.FaultsInjected++
		sh.stats.Retries++
		sh.mu.Unlock()
		inj.NoteRetry(op, dev, step)
		time.Sleep(fault.Backoff(attempt))
		err = inj.Inject(op, dev, step, layer)
	}
	if err != nil {
		sh.mu.Lock()
		sh.stats.FaultsInjected++
		sh.mu.Unlock()
	}
	return err
}

// lookup resolves a tensor ID to its buffer under the map lock.
func (vm *VM) lookup(id int) (*buffer, bool) {
	vm.bufMu.RLock()
	b, ok := vm.bufs[id]
	vm.bufMu.RUnlock()
	return b, ok
}

// Used returns resident bytes on a device.
func (vm *VM) Used(dev int) int64 {
	sh := vm.shards[dev]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.used
}

// StatsSnapshot sums the per-shard movement counters, visiting shards
// one at a time in ascending device order (the fixed shard order —
// never two shard locks at once).
func (vm *VM) StatsSnapshot() VMStats {
	var s VMStats
	for _, sh := range vm.shards {
		sh.mu.Lock()
		s = s.add(sh.stats)
		sh.mu.Unlock()
	}
	return s
}

// ---------------------------------------------------------------- LRU

// lruPush links b as the most-recently-used buffer of sh and stamps
// its clock. Requires sh.mu held.
func (vm *VM) lruPush(sh *vmShard, b *buffer) {
	sh.clock++
	b.last = sh.clock
	l := &sh.lru
	b.prev, b.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = b
	} else {
		l.head = b
	}
	l.tail = b
}

// lruRemove unlinks b from sh's list. Requires sh.mu held.
func (vm *VM) lruRemove(sh *vmShard, b *buffer) {
	l := &sh.lru
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

// touch bumps a linked buffer to most-recently-used. Requires sh.mu
// held and b linked on sh (idle-resident on sh.dev implies linked).
func (vm *VM) touch(sh *vmShard, b *buffer) {
	vm.lruRemove(sh, b)
	vm.lruPush(sh, b)
}

// victim returns the least-recently-used evictable buffer on sh:
// resident, idle and unpinned per its claim word. The intrusive list
// makes this O(1) plus the pinned/claimed prefix. Requires sh.mu
// held; the word check is advisory — evict re-validates by claiming.
func (vm *VM) victim(sh *vmShard) *buffer {
	// Prefetched-but-unused pages are about to be demanded by the
	// schedule; evicting one turns a hit into a re-fetch. Prefer any
	// other victim, falling back only when nothing else is evictable.
	var prefetched *buffer
	for b := sh.lru.head; b != nil; b = b.next {
		w := b.load()
		if w.State() != claimword.Idle || w.Pins() > 0 {
			continue
		}
		if w.Prefetched() {
			if prefetched == nil {
				prefetched = b
			}
			continue
		}
		return b
	}
	return prefetched
}

// --------------------------------------------------------- public API

// HostAlloc materializes a tensor's host backing (zeroed) and returns
// it. Idempotent for already-materialized tensors. Host backing is a
// setup-time operation: callers must not race it with transfers of
// the same tensor.
func (vm *VM) HostAlloc(t *tensor.Tensor) []float32 {
	vm.bufMu.Lock()
	defer vm.bufMu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok {
		b = &buffer{t: t, devID: -1}
		vm.bufs[t.ID] = b
	}
	if b.host == nil {
		b.host = make([]float32, b.floats())
	}
	return b.host
}

// Host returns the host backing, swapping the device copy back first
// if it is dirty (used to read results out). The claim is taken with
// committed set: a snapshot write-back holds everything it needs, so
// eviction on the buffer's device may wait on it.
func (vm *VM) Host(t *tensor.Tensor) ([]float32, error) {
	for {
		b, ok := vm.lookup(t.ID)
		if !ok {
			return nil, fmt.Errorf("exec: tensor %s has no buffer", t)
		}
		if !vm.claim(b, claimword.SwapOut, false, true, claimword.NeedIdle) {
			vm.waitSettle(b)
			continue
		}
		// Claim held: dev/host/dirty are ours to read.
		resident := b.load().Resident()
		if resident && b.dirty.Load() {
			dev := b.devID
			if err := vm.inject(fault.SwapOut, dev, b.t); err != nil {
				vm.settle(b, true, 0)
				return nil, err
			}
			start := vm.clk.Now()
			copyChunked(b.host, b.dev)
			vm.linkSleep(b.t.Bytes)
			vm.record(dev, trace.SwapOut, "out "+b.t.String(), start)
			b.dirty.Store(false)
			sh := vm.shards[dev]
			sh.mu.Lock()
			sh.stats.SwapOutBytes += b.t.Bytes
			sh.stats.SwapOuts++
			sh.syncOuts++
			sh.mu.Unlock()
		}
		host := b.host
		vm.settle(b, resident, 0)
		if host == nil {
			return nil, fmt.Errorf("exec: tensor %s has no valid copy", t)
		}
		return host, nil
	}
}

// Ensure makes t resident on dev and pins it, returning the device
// slice. The tensor must have a valid copy somewhere. If a prefetch
// already swapped (or is swapping) it in, Ensure rides that DMA
// instead of copying twice.
//
// The fast path — tensor already resident on dev — is one pin CAS on
// the claim word plus a shard-local LRU touch; it takes no lock any
// other device can observe.
func (vm *VM) Ensure(dev int, t *tensor.Tensor) ([]float32, error) {
	for {
		b, ok := vm.lookup(t.ID)
		if !ok {
			return nil, fmt.Errorf("exec: tensor %s was never materialized", t)
		}
		w := b.load()
		if w.State() != claimword.Idle {
			// A copy is in flight (possibly our own prefetch): ride it
			// out and re-evaluate. A prefetch landing in the right place
			// is counted as a hit by the fast path on the next pass.
			vm.waitSettle(b)
			continue
		}
		if w.Resident() && b.devID == dev {
			if !vm.pin(b, w) {
				continue // word moved under us; re-evaluate
			}
			// Pinned: residency and placement are now frozen. Re-check
			// the placement read that preceded the pin (an eviction and
			// re-fetch elsewhere could have recycled the word bits).
			if b.devID != dev {
				vm.unpin(b)
				continue
			}
			dst := b.dev
			hit := vm.consumePrefetch(b)
			sh := vm.shards[dev]
			sh.mu.Lock()
			if hit {
				sh.pfBytes -= b.t.Bytes
				sh.stats.PrefetchHits++
			}
			vm.touch(sh, b)
			sh.mu.Unlock()
			return dst, nil
		}
		if w.Resident() {
			if w.Pins() > 0 {
				// A correctly dispatched schedule never uses one tensor from
				// two in-flight tasks, so a cross-device request for a pinned
				// tensor is a dependency bug — fail loudly instead of
				// corrupting the running task's view.
				return nil, fmt.Errorf("exec: tensor %s pinned on gpu%d while requested on gpu%d (dependency bug)",
					t, b.devID, dev)
			}
			if vm.pol.P2P {
				dst, err := vm.moveP2P(dev, b)
				if err == errRetry {
					continue // b changed while reserving; re-evaluate
				}
				return dst, err
			}
			if err := vm.bounce(b); err != nil {
				if err == errRetry {
					continue
				}
				return nil, err
			}
			continue // now host-only; swap in on the next pass
		}
		if b.host == nil {
			return nil, fmt.Errorf("exec: tensor %s has no valid copy to swap in", t)
		}
		dst, err := vm.swapIn(dev, b)
		if err == errRetry {
			continue
		}
		return dst, err
	}
}

// swapIn demand-loads host-only b onto dev and pins it. The memcpy
// runs on the caller's goroutine with no shard lock held. b is
// claimed but non-resident while reserving, so no eviction scan can
// see it; residency and the committed mark are established by a
// single commit CAS, upholding the invariant that every claim on a
// resident buffer completes autonomously.
func (vm *VM) swapIn(dev int, b *buffer) ([]float32, error) {
	if !vm.claim(b, claimword.SwapIn, false, false, claimword.NeedEmpty) {
		return nil, errRetry
	}
	sh := vm.shards[dev]
	sh.mu.Lock()
	if err := vm.reserve(sh, b.t.Bytes); err != nil {
		sh.mu.Unlock()
		vm.settle(b, false, 0)
		return nil, err
	}
	dst := make([]float32, b.floats())
	b.dev = dst
	b.devID = dev
	vm.commit(b) // reserve done: only the copy remains
	sh.used += b.t.Bytes
	vm.lruPush(sh, b)
	sh.mu.Unlock()

	if err := vm.inject(fault.SwapIn, dev, b.t); err != nil {
		vm.dropResidency(b)
		vm.settle(b, false, 0)
		return nil, err
	}
	start := vm.clk.Now()
	copyChunked(dst, b.host)
	vm.linkSleep(b.t.Bytes)
	vm.record(dev, trace.SwapIn, "in "+b.t.String(), start)

	b.dirty.Store(false)
	sh.mu.Lock()
	sh.stats.SwapInBytes += b.t.Bytes
	sh.stats.SwapIns++
	sh.mu.Unlock()
	vm.settle(b, true, +1)
	return dst, nil
}

// errRetry tells Ensure that the buffer changed underneath a
// lock-dropping step and the whole decision must be re-evaluated.
var errRetry = errors.New("exec: retry")

// moveP2P transfers b (resident on another device, unpinned, idle) to
// dev and pins it. Shard order: the destination shard is reserved,
// charged and released *before* b is claimed — never two shard locks
// at once — and the claim CAS carries committed, because a claim
// holding its destination completes without further allocation, so
// the source device's eviction may wait on it. Because reserve can
// drop the shard lock and the claim races demand traffic, b may
// change underneath; errRetry sends Ensure back around.
func (vm *VM) moveP2P(dev int, b *buffer) ([]float32, error) {
	bytes := b.t.Bytes
	dsh := vm.shards[dev]
	dsh.mu.Lock()
	if err := vm.reserve(dsh, bytes); err != nil {
		dsh.mu.Unlock()
		return nil, err
	}
	dsh.used += bytes // hold the destination while copying
	dsh.mu.Unlock()
	if !vm.claim(b, claimword.SwapIn, false, true, claimword.NeedUnpinned) {
		vm.uncharge(dsh, bytes)
		return nil, errRetry
	}
	if w := b.load(); !w.Resident() || b.devID == dev {
		vm.settle(b, w.Resident(), 0)
		vm.uncharge(dsh, bytes)
		return nil, errRetry
	}
	src, srcDev := b.dev, b.devID
	dst := make([]float32, b.floats())

	if err := vm.inject(fault.P2P, dev, b.t); err != nil {
		vm.settle(b, true, 0)
		vm.uncharge(dsh, bytes)
		return nil, err
	}

	start := vm.clk.Now()
	copyChunked(dst, src)
	vm.linkSleep(bytes)
	vm.record(dev, trace.P2P, "p2p "+b.t.String(), start)

	pf := vm.consumePrefetch(b) // prefetched to the wrong device: not a hit
	ssh := vm.shards[srcDev]
	ssh.mu.Lock()
	vm.lruRemove(ssh, b)
	ssh.used -= bytes
	if pf {
		ssh.pfBytes -= bytes
	}
	ssh.mu.Unlock()
	b.dev = dst
	b.devID = dev
	dsh.mu.Lock()
	vm.lruPush(dsh, b)
	dsh.stats.P2PBytes += bytes
	dsh.stats.P2PMoves++
	dsh.mu.Unlock()
	vm.settle(b, true, +1)
	return dst, nil
}

// uncharge returns speculatively-held destination bytes.
func (vm *VM) uncharge(sh *vmShard, bytes int64) {
	sh.mu.Lock()
	sh.used -= bytes
	sh.mu.Unlock()
}

// bounce writes b (resident elsewhere, observed unpinned-idle) back
// to host and drops its residency, so Ensure can swap it in at the
// requested device on its next pass. The claim CAS carries committed
// — a write-back never reserves; it only frees.
func (vm *VM) bounce(b *buffer) error {
	if !vm.claim(b, claimword.SwapOut, false, true, claimword.NeedUnpinned) {
		return errRetry
	}
	if !b.load().Resident() {
		vm.settle(b, false, 0)
		return nil // evicted meanwhile; already host-only
	}
	if b.host == nil {
		b.host = make([]float32, b.floats())
	}
	dev := b.devID
	if err := vm.inject(fault.SwapOut, dev, b.t); err != nil {
		vm.settle(b, true, 0)
		return err
	}
	start := vm.clk.Now()
	copyChunked(b.host, b.dev)
	vm.linkSleep(b.t.Bytes)
	vm.record(dev, trace.SwapOut, "out "+b.t.String(), start)

	b.dirty.Store(false)
	sh := vm.shards[dev]
	sh.mu.Lock()
	sh.stats.SwapOutBytes += b.t.Bytes
	sh.stats.SwapOuts++
	sh.syncOuts++
	vm.lruRemove(sh, b)
	sh.used -= b.t.Bytes
	if vm.consumePrefetch(b) {
		sh.pfBytes -= b.t.Bytes
	}
	sh.mu.Unlock()
	b.dev = nil
	b.devID = -1
	vm.settle(b, false, 0)
	return nil
}

// Alloc creates a fresh device buffer for an output tensor (dirty, no
// host copy) and pins it.
func (vm *VM) Alloc(dev int, t *tensor.Tensor) ([]float32, error) {
	for {
		vm.bufMu.Lock()
		b, ok := vm.bufs[t.ID]
		if !ok {
			b = &buffer{t: t, devID: -1}
			vm.bufs[t.ID] = b
		}
		vm.bufMu.Unlock()
		w := b.load()
		if w.State() != claimword.Idle {
			vm.waitSettle(b)
			continue
		}
		if w.Resident() || b.host != nil {
			return nil, fmt.Errorf("exec: tensor %s already materialized", t)
		}
		// Claim while reserving: reserve may drop the shard lock to
		// drain evictions, and nothing must touch a half-allocated
		// buffer meanwhile.
		if !vm.claim(b, claimword.SwapIn, false, false, claimword.NeedEmpty) {
			continue
		}
		if b.host != nil { // re-check under claim ownership
			vm.settle(b, false, 0)
			return nil, fmt.Errorf("exec: tensor %s already materialized", t)
		}
		sh := vm.shards[dev]
		sh.mu.Lock()
		if err := vm.reserve(sh, t.Bytes); err != nil {
			sh.mu.Unlock()
			vm.settle(b, false, 0)
			return nil, err
		}
		dst := make([]float32, b.floats())
		b.dev = dst
		b.devID = dev
		b.dirty.Store(true)
		vm.commit(b)
		sh.used += t.Bytes
		vm.lruPush(sh, b)
		sh.mu.Unlock()
		vm.settle(b, true, +1)
		return dst, nil
	}
}

// MarkDirty records an in-place mutation of the device copy. The
// caller must hold a pin on t (task outputs are pinned while their
// kernels run), which is what makes the dirty write race-free against
// eviction's clean checks.
func (vm *VM) MarkDirty(t *tensor.Tensor) error {
	b, ok := vm.lookup(t.ID)
	if !ok || !b.load().Resident() {
		return fmt.Errorf("exec: MarkDirty on non-resident %s", t)
	}
	b.dirty.Store(true)
	return nil
}

// Unpin releases one pin.
func (vm *VM) Unpin(t *tensor.Tensor) error {
	b, ok := vm.lookup(t.ID)
	if !ok || !vm.unpin(b) {
		return fmt.Errorf("exec: Unpin underflow on %s", t)
	}
	return nil
}

// Free destroys the tensor entirely, waiting out any in-flight DMA.
func (vm *VM) Free(t *tensor.Tensor) error {
	for {
		b, ok := vm.lookup(t.ID)
		if !ok {
			return nil
		}
		w := b.load()
		if w.State() != claimword.Idle {
			vm.waitSettle(b)
			continue
		}
		if w.Pins() > 0 {
			return fmt.Errorf("exec: Free of pinned %s", t)
		}
		if !vm.claim(b, claimword.SwapOut, false, true, claimword.NeedUnpinned) {
			continue
		}
		if b.load().Resident() {
			vm.dropResidency(b)
		}
		vm.bufMu.Lock()
		delete(vm.bufs, t.ID)
		vm.bufMu.Unlock()
		vm.settle(b, false, 0)
		return nil
	}
}

// reserve evicts LRU victims on sh until `bytes` fit. Requires sh.mu
// held; may release and reacquire it while write-backs drain or
// async DMAs complete, so callers must not rely on unrelated shard
// state across the call. Synchronous uncommitted claims held by other
// goroutines are treated like pins (they complete into a pinned
// buffer anyway); waitable claims — async operations and committed
// sync claims — are waited on, since both finish without help.
func (vm *VM) reserve(sh *vmShard, bytes int64) error {
	if bytes > vm.capacity {
		return fmt.Errorf("exec: tensor of %d bytes exceeds device capacity %d", bytes, vm.capacity)
	}
	for sh.used+bytes > vm.capacity {
		victim := vm.victim(sh)
		if victim == nil {
			if w := vm.waitableInFlight(sh); w != nil {
				sh.mu.Unlock()
				vm.waitSettle(w)
				sh.mu.Lock()
				continue
			}
			return fmt.Errorf("exec: device %d cannot free %d bytes (used %d, all pinned)",
				sh.dev, bytes, sh.used)
		}
		if err := vm.evict(sh, victim); err != nil {
			if err == errRetry {
				continue // victim changed under the claim race; rescan
			}
			return err
		}
	}
	return nil
}

// evict removes b from sh: dirty-tracked clean buffers are dropped,
// everything else is written back first. Requires sh.mu held
// (released around the write-back copy). The eviction claim carries
// committed in its CAS — write-backs never reserve — so concurrent
// reserves on the shard may wait on it from its first visible word.
func (vm *VM) evict(sh *vmShard, b *buffer) error {
	if !vm.claim(b, claimword.SwapOut, false, true, claimword.NeedUnpinned) {
		return errRetry // raced with a pin or another claim
	}
	if vm.pol.DirtyTracking && !b.dirty.Load() && b.host != nil {
		sh.stats.DropBytes += b.t.Bytes
		sh.stats.Drops++
		vm.lruRemove(sh, b)
		sh.used -= b.t.Bytes
		if vm.consumePrefetch(b) {
			sh.pfBytes -= b.t.Bytes
		}
		b.dev = nil
		b.devID = -1
		vm.settle(b, false, 0)
		return nil
	}
	// Write back. Naive virtualization (DirtyTracking off) writes back
	// unconditionally.
	if b.host == nil {
		b.host = make([]float32, b.floats())
	}
	src, host := b.dev, b.host
	sh.mu.Unlock()
	err := vm.inject(fault.SwapOut, sh.dev, b.t)
	if err == nil {
		start := vm.clk.Now()
		copyChunked(host, src)
		vm.linkSleep(b.t.Bytes)
		vm.record(sh.dev, trace.SwapOut, "out "+b.t.String(), start)
	}
	sh.mu.Lock()
	if err != nil {
		vm.settle(b, true, 0) // stays resident (and dirty)
		return err
	}
	b.dirty.Store(false)
	sh.stats.SwapOutBytes += b.t.Bytes
	sh.stats.SwapOuts++
	sh.syncOuts++
	vm.lruRemove(sh, b)
	sh.used -= b.t.Bytes
	if vm.consumePrefetch(b) {
		sh.pfBytes -= b.t.Bytes
	}
	b.dev = nil
	b.devID = -1
	vm.settle(b, false, 0)
	return nil
}

// dropResidency releases b's device residency. Requires the caller to
// hold b's claim; takes (and releases) the shard lock of b's device.
func (vm *VM) dropResidency(b *buffer) {
	sh := vm.shards[b.devID]
	sh.mu.Lock()
	vm.lruRemove(sh, b)
	sh.used -= b.t.Bytes
	if vm.consumePrefetch(b) {
		sh.pfBytes -= b.t.Bytes
	}
	sh.mu.Unlock()
	b.dev = nil
	b.devID = -1
}

// Invalidate discards any device copy without writeback, making the
// host backing authoritative (used when host contents are overwritten
// externally, e.g. checkpoint restore). Fails on pinned tensors.
func (vm *VM) Invalidate(t *tensor.Tensor) error {
	for {
		b, ok := vm.lookup(t.ID)
		if !ok {
			return nil
		}
		w := b.load()
		if w.State() != claimword.Idle {
			vm.waitSettle(b)
			continue
		}
		if !w.Resident() {
			return nil
		}
		if w.Pins() > 0 {
			return fmt.Errorf("exec: Invalidate of pinned %s", t)
		}
		if b.host == nil {
			return fmt.Errorf("exec: Invalidate would lose the only copy of %s", t)
		}
		if !vm.claim(b, claimword.SwapOut, false, true, claimword.NeedUnpinned) {
			continue
		}
		if !b.load().Resident() {
			vm.settle(b, false, 0)
			continue
		}
		b.dirty.Store(false)
		vm.dropResidency(b)
		vm.settle(b, false, 0)
		return nil
	}
}
