// Package exec is Harmony's real-execution runtime: it trains actual
// models (internal/nn kernels, real float32 data) under the same task
// graphs and schedules as the simulator, but on capacity-limited
// *virtual devices* whose memories form a coherent virtual memory
// backed by host buffers. Swaps are real memcpys; capacity limits are
// enforced exactly; eviction is LRU with the same dirty-tracking and
// p2p policies as the simulated memory manager.
//
// This is the proof that the paper's design trains models end to end:
// the quickstart and mnist examples push a model whose footprint
// exceeds per-device capacity through Harmony scheduling and verify
// the loss decreases.
package exec

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"harmony/internal/fault"
	"harmony/internal/memory"
	"harmony/internal/tensor"
	"harmony/internal/trace"
)

// VMStats counts real data movement and fault handling.
type VMStats struct {
	SwapInBytes  int64
	SwapOutBytes int64
	DropBytes    int64
	P2PBytes     int64
	SwapIns      int
	SwapOuts     int
	Drops        int
	P2PMoves     int
	// FaultsInjected counts injected transfer faults observed by this
	// VM; Retries counts the re-attempts the retry layer issued for
	// them (successful retries leave FaultsInjected > Retries only
	// when a fault was fatal or retries were exhausted).
	FaultsInjected int
	Retries        int
	// Prefetch/overlap counters (see EnsureAsync / CleanAhead).
	// PrefetchIssued counts async swap-ins handed to the DMA engine;
	// PrefetchHits counts Ensure calls that found their tensor already
	// resident (or in flight) thanks to a prefetch; CleanAheads counts
	// proactive write-backs; AsyncDMANanos is wall time the DMA
	// workers spent copying or on the modeled link — divide by step
	// wall time for the compute/swap overlap fraction.
	PrefetchIssued int
	PrefetchHits   int
	CleanAheads    int
	AsyncDMANanos  int64
}

// add accumulates counters (used to carry stats across the VM rebuild
// a recovery performs).
func (s VMStats) add(o VMStats) VMStats {
	s.SwapInBytes += o.SwapInBytes
	s.SwapOutBytes += o.SwapOutBytes
	s.DropBytes += o.DropBytes
	s.P2PBytes += o.P2PBytes
	s.SwapIns += o.SwapIns
	s.SwapOuts += o.SwapOuts
	s.Drops += o.Drops
	s.P2PMoves += o.P2PMoves
	s.FaultsInjected += o.FaultsInjected
	s.Retries += o.Retries
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchHits += o.PrefetchHits
	s.CleanAheads += o.CleanAheads
	s.AsyncDMANanos += o.AsyncDMANanos
	return s
}

// bufState is the DMA leg of a buffer's state machine. Residency is
// orthogonal (dev != nil); the four states of DESIGN.md §9 are the
// cross product: host-only (idle, dev == nil), swapping-in, resident
// (idle, dev != nil) and swapping-out.
type bufState int

const (
	// stIdle: no DMA in flight; the buffer may be pinned, evicted or
	// transferred.
	stIdle bufState = iota
	// stSwapIn: a host→device or device→device copy is filling
	// b.dev; its contents are undefined until the state settles.
	stSwapIn
	// stSwapOut: a device→host write-back is draining b.dev; the
	// device copy is valid but must stay immutable (no pins) until
	// the state settles.
	stSwapOut
)

type buffer struct {
	t     *tensor.Tensor
	host  []float32 // backing copy; nil until first host materialization
	dev   []float32 // device copy; nil when not resident
	devID int
	dirty bool // device copy newer than host copy
	pins  int
	last  int64 // LRU clock (diagnostics; ordering lives in the list)

	// DMA state machine. done is non-nil exactly while state !=
	// stIdle and is closed when the in-flight operation settles;
	// async marks operations owned by a DMA worker, committed marks
	// synchronous operations past their reserve (pure transfer left).
	// Both kinds complete autonomously — the only claims eviction may
	// wait on; an uncommitted sync claim may itself be waiting to
	// reserve, so waiting on it could deadlock. prefetched marks
	// residency established by EnsureAsync until the first demand hit
	// claims it.
	state      bufState
	done       chan struct{}
	async      bool
	committed  bool
	prefetched bool

	// Intrusive per-device LRU list (least-recent at head). A buffer
	// is linked iff it is resident (dev != nil).
	prev, next *buffer
}

func (b *buffer) floats() int { return int(b.t.Bytes / 4) }

// lruList is one device's residency list, least-recently-used first.
type lruList struct{ head, tail *buffer }

// VM is a coherent virtual memory across virtual devices.
//
// Locking: mu guards metadata only — residency, pins, LRU order,
// capacity accounting and Stats. Copy execution (memcpy, modeled link
// time, fault-retry backoff) always runs with mu released: demand
// misses copy on the calling device worker's goroutine, prefetches
// and proactive write-backs on per-device DMA worker goroutines. A
// buffer with a copy in flight is claimed (state != stIdle); every
// path that needs it waits on its done channel instead of starting a
// second copy, and eviction skips claimed buffers. Kernel math runs
// on the returned slices outside the lock; the pin taken by
// Ensure/Alloc guarantees no concurrent eviction invalidates them,
// and the dependency dispatcher guarantees no two in-flight tasks
// share a tensor. Stats is guarded by mu; read it via Trainer.Stats
// (or after WaitIdle).
//
// Deadlock discipline: synchronous paths may wait on async (DMA
// worker) operations, which always complete autonomously; they never
// wait on other synchronous claims (reserve treats those like pinned
// buffers), and DMA workers never wait on anything but their queue.
type VM struct {
	mu       sync.Mutex
	capacity int64
	used     []int64
	pol      memory.Policy
	bufs     map[int]*buffer
	lru      []lruList
	clock    int64
	Stats    VMStats

	// clk sources every wall-clock timestamp the VM records (DMA
	// spans, overlap counters). Immutable after NewVM; reading time
	// through an injectable Clock keeps recording off the
	// deterministic path (enforced by the determinism analyzer).
	clk trace.Clock

	// Async DMA engine (StartEngine); nil queues mean the engine is
	// off and EnsureAsync/CleanAhead are no-ops.
	queues       [][]dmaReq
	work         *sync.Cond // signaled when a queue grows or the VM closes
	idle         *sync.Cond // signaled when asyncPending returns to zero
	asyncPending int
	pfBytes      []int64 // prefetched bytes per device, in flight or resident-unconsumed
	budget       int64   // per-device cap on pfBytes: how much memory prefetch may occupy
	closed       bool
	asyncErr     error // first fatal fault hit on a DMA worker
	wg           sync.WaitGroup

	// syncOuts counts synchronous write-backs (eviction or Host
	// stalls); cleanSeen is its value at the last CleanAhead batch.
	// Clean-ahead only arms after a new stall, so workloads whose
	// evictions are all drops never pay write-back link traffic.
	syncOuts  int
	cleanSeen int

	// bytesPerSec models host-link bandwidth: every swap/p2p copy
	// additionally sleeps bytes/bytesPerSec (outside mu), so swap
	// cost behaves like a real PCIe transfer instead of a memcpy.
	// 0 disables modeling.
	bytesPerSec int64

	// rec, when non-nil, receives wall-clock DMA spans (outside mu)
	// for the swap-overlap Gantt lanes.
	rec func(dev int, lane trace.Lane, label string, start, end time.Time)

	// Fault injection (SetFaultInjection): inj decides whether a
	// swap-in, swap-out or p2p copy about to run fails; transient
	// failures are retried up to maxRetries times with fault.Backoff
	// between attempts. Backoff sleeps run outside mu — a stalled
	// transfer stalls only its own buffer (waiters on that tensor),
	// never the other devices.
	inj        *fault.Injector
	maxRetries int
	stepFn     func() int // current trainer step for fault site identity
}

// NewVM creates n virtual devices with the given per-device capacity.
func NewVM(devices int, capacityBytes int64, pol memory.Policy) *VM {
	if devices <= 0 || capacityBytes <= 0 {
		panic(fmt.Sprintf("exec: bad VM shape devices=%d capacity=%d", devices, capacityBytes))
	}
	return &VM{
		capacity:  capacityBytes,
		used:      make([]int64, devices),
		pol:       pol,
		bufs:      make(map[int]*buffer),
		lru:       make([]lruList, devices),
		cleanSeen: -1, // first CleanAhead may act before any stall
		clk:       trace.WallClock{},
	}
}

// SetFaultInjection arms the VM with a fault injector. stepFn reports
// the current trainer step (called without the VM lock held; it must
// not call back into the VM). Passing a nil injector disarms.
func (vm *VM) SetFaultInjection(inj *fault.Injector, maxRetries int, stepFn func() int) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.inj = inj
	vm.maxRetries = maxRetries
	vm.stepFn = stepFn
}

// SetLinkBandwidth models host-link bandwidth for all transfers
// (0 disables; copies cost only their memcpy time).
func (vm *VM) SetLinkBandwidth(bytesPerSec int64) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.bytesPerSec = bytesPerSec
}

// SetRecorder installs a DMA span recorder (nil disarms). fn is
// called outside the VM lock, on device-worker and DMA goroutines,
// and must be safe for concurrent use.
func (vm *VM) SetRecorder(fn func(dev int, lane trace.Lane, label string, start, end time.Time)) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.rec = fn
}

// inject consults the injector for a transfer op touching tensor t on
// dev, retrying transient faults in place with backoff. Must be
// called WITHOUT mu held: the backoff sleeps on the calling
// goroutine, so a flaky transfer stalls only the waiters of its own
// buffer. Per-site determinism is unchanged — decisions hash the
// operation identity, not the interleaving.
func (vm *VM) inject(op fault.Op, dev int, t *tensor.Tensor) error {
	vm.mu.Lock()
	inj, maxRetries, stepFn := vm.inj, vm.maxRetries, vm.stepFn
	vm.mu.Unlock()
	if inj.Rules() == 0 {
		return nil
	}
	step := 0
	if stepFn != nil {
		step = stepFn()
	}
	layer := -1
	if t != nil {
		layer = t.Layer
	}
	err := inj.Inject(op, dev, step, layer)
	for attempt := 0; fault.IsTransient(err) && attempt < maxRetries; attempt++ {
		vm.mu.Lock()
		vm.Stats.FaultsInjected++
		vm.Stats.Retries++
		vm.mu.Unlock()
		inj.NoteRetry(op, dev, step)
		time.Sleep(fault.Backoff(attempt))
		err = inj.Inject(op, dev, step, layer)
	}
	if err != nil {
		vm.mu.Lock()
		vm.Stats.FaultsInjected++
		vm.mu.Unlock()
	}
	return err
}

// Used returns resident bytes on a device.
func (vm *VM) Used(dev int) int64 {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.used[dev]
}

// StatsSnapshot returns a consistent copy of the movement counters.
func (vm *VM) StatsSnapshot() VMStats {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.Stats
}

// ---------------------------------------------------------------- LRU

// lruPush links b as the most-recently-used buffer of dev.
func (vm *VM) lruPush(dev int, b *buffer) {
	l := &vm.lru[dev]
	b.prev, b.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = b
	} else {
		l.head = b
	}
	l.tail = b
}

// lruRemove unlinks b from its device's list.
func (vm *VM) lruRemove(b *buffer) {
	l := &vm.lru[b.devID]
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

// touch bumps b to most-recently-used. Requires mu held.
func (vm *VM) touch(b *buffer) {
	vm.clock++
	b.last = vm.clock
	if b.dev != nil {
		vm.lruRemove(b)
		vm.lruPush(b.devID, b)
	}
}

// victim returns the least-recently-used evictable buffer on dev:
// resident, idle and unpinned. The intrusive list makes this O(1)
// plus the pinned/claimed prefix, replacing the old full scan of the
// buffer map (see BenchmarkVMEviction). Requires mu held.
func (vm *VM) victim(dev int) *buffer {
	// Prefetched-but-unused pages are about to be demanded by the
	// schedule; evicting one turns a hit into a re-fetch. Prefer any
	// other victim, falling back only when nothing else is evictable.
	var prefetched *buffer
	for b := vm.lru[dev].head; b != nil; b = b.next {
		if b.pins > 0 || b.state != stIdle {
			continue
		}
		if b.prefetched {
			if prefetched == nil {
				prefetched = b
			}
			continue
		}
		return b
	}
	return prefetched
}

// --------------------------------------------------------- public API

// HostAlloc materializes a tensor's host backing (zeroed) and returns
// it. Idempotent for already-materialized tensors.
func (vm *VM) HostAlloc(t *tensor.Tensor) []float32 {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok {
		b = &buffer{t: t, devID: -1}
		vm.bufs[t.ID] = b
	}
	if b.host == nil {
		b.host = make([]float32, b.floats())
	}
	return b.host
}

// Host returns the host backing, swapping the device copy back first
// if it is dirty (used to read results out).
func (vm *VM) Host(t *tensor.Tensor) ([]float32, error) {
	for {
		vm.mu.Lock()
		b, ok := vm.bufs[t.ID]
		if !ok {
			vm.mu.Unlock()
			return nil, fmt.Errorf("exec: tensor %s has no buffer", t)
		}
		if b.state != stIdle {
			done := b.done
			vm.mu.Unlock()
			<-done
			continue
		}
		if b.dev != nil && b.dirty {
			if err := vm.writeback(b, true); err != nil {
				vm.mu.Unlock()
				return nil, err
			}
		}
		host := b.host
		vm.mu.Unlock()
		if host == nil {
			return nil, fmt.Errorf("exec: tensor %s has no valid copy", t)
		}
		return host, nil
	}
}

// Ensure makes t resident on dev and pins it, returning the device
// slice. The tensor must have a valid copy somewhere. If a prefetch
// already swapped (or is swapping) it in, Ensure rides that DMA
// instead of copying twice.
func (vm *VM) Ensure(dev int, t *tensor.Tensor) ([]float32, error) {
	for {
		vm.mu.Lock()
		b, ok := vm.bufs[t.ID]
		if !ok {
			vm.mu.Unlock()
			return nil, fmt.Errorf("exec: tensor %s was never materialized", t)
		}
		if b.state != stIdle {
			// A copy is in flight (possibly our own prefetch): ride it
			// out and re-evaluate. A prefetch landing in the right place
			// is counted as a hit by the fast path on the next pass.
			done := b.done
			vm.mu.Unlock()
			<-done
			continue
		}
		vm.touch(b)
		if b.dev != nil && b.devID == dev {
			if b.prefetched {
				vm.consumePrefetch(b)
				vm.Stats.PrefetchHits++
			}
			b.pins++
			dst := b.dev
			vm.mu.Unlock()
			return dst, nil
		}
		if b.dev != nil && b.pins > 0 {
			// A correctly dispatched schedule never uses one tensor from
			// two in-flight tasks, so a cross-device request for a pinned
			// tensor is a dependency bug — fail loudly instead of
			// corrupting the running task's view.
			vm.mu.Unlock()
			return nil, fmt.Errorf("exec: tensor %s pinned on gpu%d while requested on gpu%d (dependency bug)",
				t, b.devID, dev)
		}
		if b.dev != nil {
			// Resident elsewhere: p2p move or host bounce.
			if vm.pol.P2P {
				dst, err := vm.moveP2P(dev, b)
				if err == errRetry {
					continue // b changed while reserving; re-evaluate
				}
				return dst, err
			}
			err := vm.writeback(b, false)
			vm.mu.Unlock()
			if err != nil {
				return nil, err
			}
			continue // now host-only; swap in on the next pass
		}
		if b.host == nil {
			vm.mu.Unlock()
			return nil, fmt.Errorf("exec: tensor %s has no valid copy to swap in", t)
		}
		return vm.swapIn(dev, b)
	}
}

// swapIn demand-loads host-only b onto dev and pins it. mu held on
// entry, released on return. The memcpy runs on the caller's
// goroutine outside the lock. b is claimed but non-resident while
// reserving, so no other device's eviction scan can see it; residency
// and the committed mark are established together, upholding the
// invariant that every claim on a resident buffer completes
// autonomously.
func (vm *VM) swapIn(dev int, b *buffer) ([]float32, error) {
	vm.claim(b, stSwapIn, false)
	if err := vm.reserve(dev, b.t.Bytes); err != nil {
		vm.settle(b)
		vm.mu.Unlock()
		return nil, err
	}
	dst := make([]float32, b.floats())
	b.dev = dst
	b.devID = dev
	vm.commit(b) // reserve done: only the copy remains
	vm.used[dev] += b.t.Bytes
	vm.lruPush(dev, b)
	vm.mu.Unlock()

	if err := vm.inject(fault.SwapIn, dev, b.t); err != nil {
		vm.mu.Lock()
		vm.release(b)
		vm.settle(b)
		vm.mu.Unlock()
		return nil, err
	}
	start := vm.clk.Now()
	copyChunked(dst, b.host)
	vm.linkSleep(b.t.Bytes)
	vm.record(dev, trace.SwapIn, "in "+b.t.String(), start)

	vm.mu.Lock()
	b.dirty = false
	vm.Stats.SwapInBytes += b.t.Bytes
	vm.Stats.SwapIns++
	b.pins++
	vm.settle(b)
	vm.mu.Unlock()
	return dst, nil
}

// errRetry tells Ensure that the buffer changed underneath a
// lock-dropping step and the whole decision must be re-evaluated.
var errRetry = errors.New("exec: retry")

// moveP2P transfers b (resident on another device, unpinned, idle) to
// dev and pins it. mu held on entry, released on return. The
// destination is reserved *before* b is claimed: reserve can drop the
// lock to drain evictions, and a claim taken first would sit
// unwaitable on the source device's LRU — a reserve there, seeing
// only a claim it must not wait on (the claimer is itself about to
// reserve), would report the device wedged. Reserving first keeps the
// invariant that every claim on a resident buffer is committed, i.e.
// completes without further allocation. Because reserve can drop the
// lock, b may change underneath it; errRetry sends Ensure back around.
func (vm *VM) moveP2P(dev int, b *buffer) ([]float32, error) {
	bytes := b.t.Bytes
	if err := vm.reserve(dev, bytes); err != nil {
		vm.mu.Unlock()
		return nil, err
	}
	if b.state != stIdle || b.pins > 0 || b.dev == nil || b.devID == dev {
		vm.mu.Unlock()
		return nil, errRetry
	}
	vm.claim(b, stSwapIn, false)
	vm.commit(b) // destination held: completion frees the source
	src, srcDev := b.dev, b.devID
	dst := make([]float32, b.floats())
	vm.used[dev] += bytes // hold the destination while copying
	vm.mu.Unlock()

	if err := vm.inject(fault.P2P, dev, b.t); err != nil {
		vm.mu.Lock()
		vm.used[dev] -= bytes
		vm.settle(b)
		vm.mu.Unlock()
		return nil, err
	}

	start := vm.clk.Now()
	copyChunked(dst, src)
	vm.linkSleep(bytes)
	vm.record(dev, trace.P2P, "p2p "+b.t.String(), start)

	vm.mu.Lock()
	vm.consumePrefetch(b) // prefetched to the wrong device: not a hit
	vm.lruRemove(b)
	vm.used[srcDev] -= bytes
	b.dev = dst
	b.devID = dev
	vm.lruPush(dev, b)
	vm.Stats.P2PBytes += bytes
	vm.Stats.P2PMoves++
	b.pins++
	vm.settle(b)
	vm.mu.Unlock()
	return dst, nil
}

// Alloc creates a fresh device buffer for an output tensor (dirty, no
// host copy) and pins it.
func (vm *VM) Alloc(dev int, t *tensor.Tensor) ([]float32, error) {
	for {
		vm.mu.Lock()
		b, ok := vm.bufs[t.ID]
		if ok && b.state != stIdle {
			done := b.done
			vm.mu.Unlock()
			<-done
			continue
		}
		if ok && (b.dev != nil || b.host != nil) {
			vm.mu.Unlock()
			return nil, fmt.Errorf("exec: tensor %s already materialized", t)
		}
		if !ok {
			b = &buffer{t: t, devID: -1}
			vm.bufs[t.ID] = b
		}
		// Claim while reserving: reserve may drop mu to drain evictions,
		// and nothing must touch a half-allocated buffer meanwhile.
		vm.claim(b, stSwapIn, false)
		if err := vm.reserve(dev, t.Bytes); err != nil {
			vm.settle(b)
			vm.mu.Unlock()
			return nil, err
		}
		vm.touch(b)
		b.dev = make([]float32, b.floats())
		b.devID = dev
		b.dirty = true
		b.pins = 1
		vm.used[dev] += t.Bytes
		vm.lruPush(dev, b)
		vm.settle(b)
		vm.mu.Unlock()
		return b.dev, nil
	}
}

// MarkDirty records an in-place mutation of the device copy.
func (vm *VM) MarkDirty(t *tensor.Tensor) error {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok || b.dev == nil {
		return fmt.Errorf("exec: MarkDirty on non-resident %s", t)
	}
	b.dirty = true
	return nil
}

// Unpin releases one pin.
func (vm *VM) Unpin(t *tensor.Tensor) error {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok || b.pins <= 0 {
		return fmt.Errorf("exec: Unpin underflow on %s", t)
	}
	b.pins--
	return nil
}

// Free destroys the tensor entirely, waiting out any in-flight DMA.
func (vm *VM) Free(t *tensor.Tensor) error {
	for {
		vm.mu.Lock()
		b, ok := vm.bufs[t.ID]
		if !ok {
			vm.mu.Unlock()
			return nil
		}
		if b.state != stIdle {
			done := b.done
			vm.mu.Unlock()
			<-done
			continue
		}
		if b.pins > 0 {
			vm.mu.Unlock()
			return fmt.Errorf("exec: Free of pinned %s", t)
		}
		if b.dev != nil {
			vm.release(b)
		}
		delete(vm.bufs, t.ID)
		vm.mu.Unlock()
		return nil
	}
}

// reserve evicts LRU victims on dev until `bytes` fit. Requires mu
// held; may release and reacquire it while write-backs drain or
// async DMAs complete, so callers must not rely on unrelated state
// across the call. Synchronous claims held by other goroutines are
// treated like pins (they complete into a pinned buffer anyway);
// async operations are waited on, since DMA workers always finish
// without help.
func (vm *VM) reserve(dev int, bytes int64) error {
	if bytes > vm.capacity {
		return fmt.Errorf("exec: tensor of %d bytes exceeds device capacity %d", bytes, vm.capacity)
	}
	for vm.used[dev]+bytes > vm.capacity {
		victim := vm.victim(dev)
		if victim == nil {
			if w := vm.waitableInFlight(dev); w != nil {
				done := w.done
				vm.mu.Unlock()
				<-done
				vm.mu.Lock()
				continue
			}
			return fmt.Errorf("exec: device %d cannot free %d bytes (used %d, all pinned)",
				dev, bytes, vm.used[dev])
		}
		if err := vm.evict(victim); err != nil {
			return err
		}
	}
	return nil
}

// evict removes b from its device: dirty-tracked clean buffers are
// dropped, everything else is written back first. Requires mu held
// (released around the write-back copy).
func (vm *VM) evict(b *buffer) error {
	if vm.pol.DirtyTracking && !b.dirty && b.host != nil {
		vm.Stats.DropBytes += b.t.Bytes
		vm.Stats.Drops++
		vm.release(b)
		return nil
	}
	return vm.writeback(b, false)
}

// writeback copies the device data into the host backing; keepDev
// keeps the (now clean) device copy resident, otherwise it is
// released. Naive virtualization (DirtyTracking off) writes back
// unconditionally. Requires mu held on entry and exit; the copy runs
// with mu released under a claim.
func (vm *VM) writeback(b *buffer, keepDev bool) error {
	vm.claim(b, stSwapOut, false)
	vm.commit(b) // write-backs never reserve; they only free
	if b.host == nil {
		b.host = make([]float32, b.floats())
	}
	src, host, dev := b.dev, b.host, b.devID
	vm.mu.Unlock()
	err := vm.inject(fault.SwapOut, dev, b.t)
	if err == nil {
		start := vm.clk.Now()
		copyChunked(host, src)
		vm.linkSleep(b.t.Bytes)
		vm.record(dev, trace.SwapOut, "out "+b.t.String(), start)
	}
	vm.mu.Lock()
	if err != nil {
		vm.settle(b)
		return err
	}
	b.dirty = false
	vm.Stats.SwapOutBytes += b.t.Bytes
	vm.Stats.SwapOuts++
	vm.syncOuts++
	if !keepDev {
		vm.release(b)
	}
	vm.settle(b)
	return nil
}

// consumePrefetch clears b's prefetched mark, returning its bytes to
// the async budget. Requires mu held and b resident.
func (vm *VM) consumePrefetch(b *buffer) {
	if b.prefetched {
		b.prefetched = false
		vm.pfBytes[b.devID] -= b.t.Bytes
	}
}

// release frees b's device residency. Requires mu held and no DMA in
// flight.
func (vm *VM) release(b *buffer) {
	vm.consumePrefetch(b)
	vm.lruRemove(b)
	vm.used[b.devID] -= b.t.Bytes
	b.dev = nil
	b.devID = -1
}

// Invalidate discards any device copy without writeback, making the
// host backing authoritative (used when host contents are overwritten
// externally, e.g. checkpoint restore). Fails on pinned tensors.
func (vm *VM) Invalidate(t *tensor.Tensor) error {
	for {
		vm.mu.Lock()
		b, ok := vm.bufs[t.ID]
		if !ok || b.dev == nil {
			vm.mu.Unlock()
			return nil
		}
		if b.state != stIdle {
			done := b.done
			vm.mu.Unlock()
			<-done
			continue
		}
		if b.pins > 0 {
			vm.mu.Unlock()
			return fmt.Errorf("exec: Invalidate of pinned %s", t)
		}
		if b.host == nil {
			vm.mu.Unlock()
			return fmt.Errorf("exec: Invalidate would lose the only copy of %s", t)
		}
		b.dirty = false
		vm.release(b)
		vm.mu.Unlock()
		return nil
	}
}
