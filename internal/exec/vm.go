// Package exec is Harmony's real-execution runtime: it trains actual
// models (internal/nn kernels, real float32 data) under the same task
// graphs and schedules as the simulator, but on capacity-limited
// *virtual devices* whose memories form a coherent virtual memory
// backed by host buffers. Swaps are real memcpys; capacity limits are
// enforced exactly; eviction is LRU with the same dirty-tracking and
// p2p policies as the simulated memory manager.
//
// This is the proof that the paper's design trains models end to end:
// the quickstart and mnist examples push a model whose footprint
// exceeds per-device capacity through Harmony scheduling and verify
// the loss decreases.
package exec

import (
	"fmt"
	"sync"
	"time"

	"harmony/internal/fault"
	"harmony/internal/memory"
	"harmony/internal/tensor"
)

// VMStats counts real data movement and fault handling.
type VMStats struct {
	SwapInBytes  int64
	SwapOutBytes int64
	DropBytes    int64
	P2PBytes     int64
	SwapIns      int
	SwapOuts     int
	Drops        int
	P2PMoves     int
	// FaultsInjected counts injected transfer faults observed by this
	// VM; Retries counts the re-attempts the retry layer issued for
	// them (successful retries leave FaultsInjected > Retries only
	// when a fault was fatal or retries were exhausted).
	FaultsInjected int
	Retries        int
}

// add accumulates counters (used to carry stats across the VM rebuild
// a recovery performs).
func (s VMStats) add(o VMStats) VMStats {
	s.SwapInBytes += o.SwapInBytes
	s.SwapOutBytes += o.SwapOutBytes
	s.DropBytes += o.DropBytes
	s.P2PBytes += o.P2PBytes
	s.SwapIns += o.SwapIns
	s.SwapOuts += o.SwapOuts
	s.Drops += o.Drops
	s.P2PMoves += o.P2PMoves
	s.FaultsInjected += o.FaultsInjected
	s.Retries += o.Retries
	return s
}

type buffer struct {
	t     *tensor.Tensor
	host  []float32 // backing copy; nil until first host materialization
	dev   []float32 // device copy; nil when not resident
	devID int
	dirty bool // device copy newer than host copy
	pins  int
	last  int64 // LRU clock
}

func (b *buffer) floats() int { return int(b.t.Bytes / 4) }

// VM is a coherent virtual memory across virtual devices.
//
// Locking: the parallel executor calls into the VM from one goroutine
// per device (plus collective rendezvous), so every exported method
// takes mu for its full duration — state transitions (residency,
// pins, LRU, eviction) are atomic with respect to each other.
// Unexported helpers (reserve, victim, evict, writeback, release)
// require mu held and must only be called from exported methods.
// Kernel math runs on the returned slices *outside* the lock; the pin
// taken by Ensure/Alloc guarantees no concurrent eviction invalidates
// them, and the dependency dispatcher guarantees no two in-flight
// tasks share a tensor. Stats is guarded by mu too; read it via
// Trainer.Stats (or after all workers have joined).
type VM struct {
	mu       sync.Mutex
	capacity int64
	used     []int64
	pol      memory.Policy
	bufs     map[int]*buffer
	clock    int64
	Stats    VMStats

	// Fault injection (SetFaultInjection): inj decides whether a
	// swap-in, swap-out or p2p copy about to run fails; transient
	// failures are retried up to maxRetries times with fault.Backoff
	// between attempts. The backoff sleeps while holding mu — a
	// stalled DMA channel stalls the whole VM, which is exactly the
	// pressure the recovery tests want to model.
	inj        *fault.Injector
	maxRetries int
	stepFn     func() int // current trainer step for fault site identity
}

// NewVM creates n virtual devices with the given per-device capacity.
func NewVM(devices int, capacityBytes int64, pol memory.Policy) *VM {
	if devices <= 0 || capacityBytes <= 0 {
		panic(fmt.Sprintf("exec: bad VM shape devices=%d capacity=%d", devices, capacityBytes))
	}
	return &VM{
		capacity: capacityBytes,
		used:     make([]int64, devices),
		pol:      pol,
		bufs:     make(map[int]*buffer),
	}
}

// SetFaultInjection arms the VM with a fault injector. stepFn reports
// the current trainer step (called without the VM lock dropped; it
// must not call back into the VM). Passing a nil injector disarms.
func (vm *VM) SetFaultInjection(inj *fault.Injector, maxRetries int, stepFn func() int) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.inj = inj
	vm.maxRetries = maxRetries
	vm.stepFn = stepFn
}

// inject consults the injector for a transfer op touching tensor t on
// dev, retrying transient faults in place. Requires mu held.
func (vm *VM) inject(op fault.Op, dev int, t *tensor.Tensor) error {
	if vm.inj.Rules() == 0 {
		return nil
	}
	step := 0
	if vm.stepFn != nil {
		step = vm.stepFn()
	}
	layer := -1
	if t != nil {
		layer = t.Layer
	}
	err := vm.inj.Inject(op, dev, step, layer)
	for attempt := 0; fault.IsTransient(err) && attempt < vm.maxRetries; attempt++ {
		vm.Stats.FaultsInjected++
		vm.Stats.Retries++
		vm.inj.NoteRetry(op, dev, step)
		time.Sleep(fault.Backoff(attempt))
		err = vm.inj.Inject(op, dev, step, layer)
	}
	if err != nil {
		vm.Stats.FaultsInjected++
	}
	return err
}

// Used returns resident bytes on a device.
func (vm *VM) Used(dev int) int64 {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.used[dev]
}

// StatsSnapshot returns a consistent copy of the movement counters.
func (vm *VM) StatsSnapshot() VMStats {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.Stats
}

// HostAlloc materializes a tensor's host backing (zeroed) and returns
// it. Idempotent for already-materialized tensors.
func (vm *VM) HostAlloc(t *tensor.Tensor) []float32 {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok {
		b = &buffer{t: t, devID: -1}
		vm.bufs[t.ID] = b
	}
	if b.host == nil {
		b.host = make([]float32, b.floats())
	}
	return b.host
}

// Host returns the host backing, swapping the device copy back first
// if it is dirty (used to read results out).
func (vm *VM) Host(t *tensor.Tensor) ([]float32, error) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok {
		return nil, fmt.Errorf("exec: tensor %s has no buffer", t)
	}
	if b.dev != nil && b.dirty {
		if err := vm.writeback(b); err != nil {
			return nil, err
		}
	}
	if b.host == nil {
		return nil, fmt.Errorf("exec: tensor %s has no valid copy", t)
	}
	return b.host, nil
}

// Ensure makes t resident on dev and pins it, returning the device
// slice. The tensor must have a valid copy somewhere.
func (vm *VM) Ensure(dev int, t *tensor.Tensor) ([]float32, error) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok {
		return nil, fmt.Errorf("exec: tensor %s was never materialized", t)
	}
	vm.clock++
	b.last = vm.clock
	if b.dev != nil && b.devID == dev {
		b.pins++
		return b.dev, nil
	}
	if b.dev != nil && b.pins > 0 {
		// A correctly dispatched schedule never uses one tensor from
		// two in-flight tasks, so a cross-device request for a pinned
		// tensor is a dependency bug — fail loudly instead of
		// corrupting the running task's view.
		return nil, fmt.Errorf("exec: tensor %s pinned on gpu%d while requested on gpu%d (dependency bug)",
			t, b.devID, dev)
	}
	if b.dev != nil {
		// Resident elsewhere: p2p move or host bounce.
		if vm.pol.P2P {
			if err := vm.inject(fault.P2P, dev, t); err != nil {
				return nil, err
			}
			if err := vm.reserve(dev, t.Bytes); err != nil {
				return nil, err
			}
			dst := make([]float32, b.floats())
			copy(dst, b.dev)
			vm.used[b.devID] -= t.Bytes
			b.dev = dst
			b.devID = dev
			vm.used[dev] += t.Bytes
			vm.Stats.P2PBytes += t.Bytes
			vm.Stats.P2PMoves++
			b.pins++
			return b.dev, nil
		}
		if err := vm.writeback(b); err != nil {
			return nil, err
		}
		vm.release(b)
	}
	if b.host == nil {
		return nil, fmt.Errorf("exec: tensor %s has no valid copy to swap in", t)
	}
	if err := vm.inject(fault.SwapIn, dev, t); err != nil {
		return nil, err
	}
	if err := vm.reserve(dev, t.Bytes); err != nil {
		return nil, err
	}
	b.dev = make([]float32, b.floats())
	copy(b.dev, b.host)
	b.devID = dev
	b.dirty = false
	vm.used[dev] += t.Bytes
	vm.Stats.SwapInBytes += t.Bytes
	vm.Stats.SwapIns++
	b.pins++
	return b.dev, nil
}

// Alloc creates a fresh device buffer for an output tensor (dirty, no
// host copy) and pins it.
func (vm *VM) Alloc(dev int, t *tensor.Tensor) ([]float32, error) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if ok && (b.dev != nil || b.host != nil) {
		return nil, fmt.Errorf("exec: tensor %s already materialized", t)
	}
	if !ok {
		b = &buffer{t: t, devID: -1}
		vm.bufs[t.ID] = b
	}
	if err := vm.reserve(dev, t.Bytes); err != nil {
		return nil, err
	}
	vm.clock++
	b.last = vm.clock
	b.dev = make([]float32, b.floats())
	b.devID = dev
	b.dirty = true
	b.pins = 1
	vm.used[dev] += t.Bytes
	return b.dev, nil
}

// MarkDirty records an in-place mutation of the device copy.
func (vm *VM) MarkDirty(t *tensor.Tensor) error {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok || b.dev == nil {
		return fmt.Errorf("exec: MarkDirty on non-resident %s", t)
	}
	b.dirty = true
	return nil
}

// Unpin releases one pin.
func (vm *VM) Unpin(t *tensor.Tensor) error {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok || b.pins <= 0 {
		return fmt.Errorf("exec: Unpin underflow on %s", t)
	}
	b.pins--
	return nil
}

// Free destroys the tensor entirely.
func (vm *VM) Free(t *tensor.Tensor) error {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok {
		return nil
	}
	if b.pins > 0 {
		return fmt.Errorf("exec: Free of pinned %s", t)
	}
	if b.dev != nil {
		vm.release(b)
	}
	delete(vm.bufs, t.ID)
	return nil
}

// reserve evicts LRU victims on dev until `bytes` fit.
func (vm *VM) reserve(dev int, bytes int64) error {
	if bytes > vm.capacity {
		return fmt.Errorf("exec: tensor of %d bytes exceeds device capacity %d", bytes, vm.capacity)
	}
	for vm.used[dev]+bytes > vm.capacity {
		victim := vm.victim(dev)
		if victim == nil {
			return fmt.Errorf("exec: device %d cannot free %d bytes (used %d, all pinned)",
				dev, bytes, vm.used[dev])
		}
		if err := vm.evict(victim); err != nil {
			return err
		}
	}
	return nil
}

func (vm *VM) victim(dev int) *buffer {
	var best *buffer
	for _, b := range vm.bufs {
		if b.dev == nil || b.devID != dev || b.pins > 0 {
			continue
		}
		if best == nil || b.last < best.last ||
			(b.last == best.last && b.t.ID < best.t.ID) {
			best = b
		}
	}
	return best
}

func (vm *VM) evict(b *buffer) error {
	if vm.pol.DirtyTracking && !b.dirty && b.host != nil {
		vm.Stats.DropBytes += b.t.Bytes
		vm.Stats.Drops++
		vm.release(b)
		return nil
	}
	if err := vm.writeback(b); err != nil {
		return err
	}
	vm.release(b)
	return nil
}

// writeback copies the device data into the host backing. Naive
// virtualization (DirtyTracking off) writes back unconditionally.
func (vm *VM) writeback(b *buffer) error {
	if err := vm.inject(fault.SwapOut, b.devID, b.t); err != nil {
		return err
	}
	if b.host == nil {
		b.host = make([]float32, b.floats())
	}
	copy(b.host, b.dev)
	b.dirty = false
	vm.Stats.SwapOutBytes += b.t.Bytes
	vm.Stats.SwapOuts++
	return nil
}

func (vm *VM) release(b *buffer) {
	vm.used[b.devID] -= b.t.Bytes
	b.dev = nil
	b.devID = -1
}

// Invalidate discards any device copy without writeback, making the
// host backing authoritative (used when host contents are overwritten
// externally, e.g. checkpoint restore). Fails on pinned tensors.
func (vm *VM) Invalidate(t *tensor.Tensor) error {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	b, ok := vm.bufs[t.ID]
	if !ok || b.dev == nil {
		return nil
	}
	if b.pins > 0 {
		return fmt.Errorf("exec: Invalidate of pinned %s", t)
	}
	if b.host == nil {
		return fmt.Errorf("exec: Invalidate would lose the only copy of %s", t)
	}
	b.dirty = false
	vm.release(b)
	return nil
}
