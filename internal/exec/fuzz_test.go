package exec

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"harmony/internal/sched"
)

// FuzzLoad feeds arbitrary bytes to the checkpoint loader: it must
// reject garbage with an error, never panic, and never let a corrupt
// length field drive an implausible allocation. The seed corpus
// covers a valid checkpoint plus the truncations and field
// corruptions that historically mattered (a flipped optimizer-count
// uint32 used to allocate gigabytes before validation).
func FuzzLoad(f *testing.F) {
	cfg := trainerConfig(sched.HarmonyPP, 2)
	cfg.Optimizer = Adam       // exercise the optimizer-state path too
	cfg.DeviceBytes = 20 << 10 // Adam triples the update pin set (see TestAdamTraining)
	tr, err := NewTrainer(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:4])            // magic only
	f.Add(valid[:len(valid)/2]) // mid-layer truncation
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	corrupt := func(off int, v uint32) []byte {
		c := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint32(c[off:], v)
		return c
	}
	// Offsets: magic u32, step u64, layers u32, then per layer
	// pn u32 + pn floats + on u32 + on floats.
	f.Add(corrupt(4, 0xffffffff))  // absurd step (low word)
	f.Add(corrupt(8, 0xffffffff))  // absurd step (high word)
	f.Add(corrupt(12, 0xffffffff)) // absurd layer count
	pn := uint32(tr.layers[0].ParamCount())
	f.Add(corrupt(16, 0xffffffff))           // absurd param count
	f.Add(corrupt(20+int(pn)*4, 0x7fffffff)) // absurd optimizer count

	f.Fuzz(func(t *testing.T, data []byte) {
		if err := tr.Load(bytes.NewReader(data)); err != nil {
			if strings.Contains(err.Error(), "panic") {
				t.Fatalf("loader leaked a panic into its error: %v", err)
			}
		}
	})
}

// TestLoadRejectsCorruptCounts pins the specific FuzzLoad findings as
// deterministic regressions: oversized count fields must fail fast
// with an error instead of allocating or panicking.
func TestLoadRejectsCorruptCounts(t *testing.T) {
	cfg := trainerConfig(sched.HarmonyPP, 2)
	cfg.Optimizer = Adam
	cfg.DeviceBytes = 20 << 10
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	pn := tr.layers[0].ParamCount()
	cases := []struct {
		name string
		off  int
		v    uint32
	}{
		{"step", 8, 0xffffffff},
		{"layers", 12, 0xffffffff},
		{"params", 16, 0xffffffff},
		{"optimizer", 20 + pn*4, 0x7fffffff},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(data[c.off:], c.v)
			if err := tr.Load(bytes.NewReader(data)); err == nil {
				t.Fatalf("corrupt %s count accepted", c.name)
			}
		})
	}
	// A pristine checkpoint still loads after all the rejections.
	if err := tr.Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
}
