package exec

import (
	"runtime"
	"testing"

	"harmony/internal/fault"
	"harmony/internal/nn"
	"harmony/internal/sched"
)

// commConfig is the standard DP test shape with the comm knobs on.
// Chunked demand is additive across workers, so it gets headroom over
// the 12 KB default while staying well below the ~45 KB footprint.
func commConfig(chunks int, bucket int64) TrainerConfig {
	cfg := trainerConfig(sched.HarmonyDP, 2)
	cfg.DeviceBytes = 16 << 10
	cfg.CommChunks = chunks
	cfg.CommBucketBytes = bucket
	return cfg
}

// TestChunkedCollectivesBitIdentical is the chunked/bucketed axis of
// the bit-exact matrix: chunk boundaries, bucket membership and
// reducer assignment are pure functions of the plan, and the
// per-element summation order never changes, so every comm profile
// must reproduce the serial reference bit for bit — losses and
// weights.
func TestChunkedCollectivesBitIdentical(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	ref := commConfig(0, 0)
	ref.Serial = true
	a, lossA := runTrainer(t, ref, 4)
	for _, tc := range []struct {
		name   string
		chunks int
		bucket int64
	}{
		{"monolithic", 0, 0},
		{"chunked", 3, 0},
		{"chunked-bucketed", 3, 8 << 10},
		{"bucketed-single-chunk", 0, 1 << 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b, lossB := runTrainer(t, commConfig(tc.chunks, tc.bucket), 4)
			assertSameRun(t, a, b, lossA, lossB)
		})
	}
}

// Delay faults on the chunked path perturb which worker's chunks run
// when — but never the math. Same serial reference, bit for bit.
func TestChunkedDelayFaultsBitExact(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	ref := commConfig(0, 0)
	ref.Serial = true
	a, lossA := runTrainer(t, ref, 3)
	cfg := commConfig(4, 8<<10)
	inj, err := fault.Parse("op=collective,mode=delay,delay=300us,count=20", cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Injector = inj
	b, lossB := runTrainer(t, cfg, 3)
	assertSameRun(t, a, b, lossA, lossB)
	if injected, _ := inj.Stats(); injected == 0 {
		t.Fatal("collective delay rule never fired")
	}
}

// CommStats must account every planned chunk exactly once per step.
func TestCommStatsAccounting(t *testing.T) {
	const steps = 2
	tr, _ := runTrainer(t, commConfig(3, 0), steps)
	var chunks, bytes int64
	for _, b := range tr.s.Comm {
		chunks += int64(len(b.Chunks))
		bytes += b.Bytes
	}
	cs := tr.CommStats()
	if cs.ChunksReduced != steps*chunks || cs.BytesReduced != steps*bytes {
		t.Fatalf("CommStats = %+v, want %d chunks / %d bytes (%d steps × plan)",
			cs, steps*chunks, steps*bytes, steps)
	}
	if mono, _ := runTrainer(t, commConfig(0, 0), 1); mono.CommStats() != (CommStats{}) {
		t.Fatalf("monolithic plan accumulated comm stats: %+v", mono.CommStats())
	}
}

// TestChunkedCollectiveFaultRecovery extends the recovery matrix to
// the chunked axis: a fatal fault injected mid-chunk (op=collective on
// the reducing worker) must kill the device, roll back to the last
// completed update, re-bind the dead worker's chunks to the survivor
// and finish — bit-identical to a fault-free chunked run, and
// reproducible across repeats.
func TestChunkedCollectiveFaultRecovery(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 4
	ref := commConfig(3, 8<<10)
	// Recovery doubles up both virtual devices' pin sets on the
	// survivor: same headroom as the monolithic recovery test.
	ref.DeviceBytes = 32 << 10
	a, lossA := runTrainer(t, ref, steps)

	run := func() (*Trainer, []float32) {
		cfg := commConfig(3, 8<<10)
		cfg.DeviceBytes = 32 << 10
		inj, err := fault.Parse("op=collective,mode=fatal,dev=1,step=3", cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Injector = inj
		cfg.Recover = true
		return runTrainer(t, cfg, steps)
	}
	b, lossB := run()
	assertSameRun(t, a, b, lossA, lossB)
	if got := b.Recoveries(); got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
	alive := b.Alive()
	if alive[1] || !alive[0] {
		t.Fatalf("alive = %v, want device 1 dead", alive)
	}
	if injected, _ := b.cfg.Injector.Stats(); injected != 1 {
		t.Fatalf("injected = %d, want exactly the armed fatal", injected)
	}
	for rep := 0; rep < 4; rep++ {
		c, lossC := run()
		assertSameRun(t, b, c, lossB, lossC)
	}
}

// Retuning between steps rebuilds the comm plan for the new graph; the
// chunked run must keep training bit-identically to a run that used
// the retuned shape from the start... which itself matches the serial
// reference. Here we only require the retune to be accepted and the
// run to keep matching the serial reference's convergence exactly
// after adoption (losses depend only on math, not plan shape).
func TestChunkedPlanSurvivesRetune(t *testing.T) {
	cfg := commConfig(4, 8<<10)
	cfg.DeviceBytes = 32 << 10 // headroom for the retune's larger microbatches
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.comm == nil {
		t.Fatal("chunked config built no runtime comm plan")
	}
	if err := tr.Retune(RetuneRequest{MicrobatchSize: 16, Microbatches: 2}); err != nil {
		t.Fatal(err)
	}
	if tr.comm == nil {
		t.Fatal("comm plan lost across retune")
	}
	if tr.s.Opts.CommChunks != 4 || tr.s.Opts.CommBucketBytes != 8<<10 {
		t.Fatalf("comm knobs lost across retune: %+v", tr.s.Opts)
	}
}
