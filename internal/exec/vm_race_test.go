package exec

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"harmony/internal/memory"
	"harmony/internal/tensor"
)

// TestConcurrentVMHotPath hammers the sharded hot path from one
// goroutine per device — demand Ensure with dirty writes, prefetch
// EnsureAsync, CleanAhead, implicit eviction under capacity pressure —
// while a checkpoint goroutine snapshots shared tensors with Host.
// Run under -race (make race) this exercises every lock-free word
// transition; the final sweep checks accounting invariants and
// bit-exact data survival across swaps, drops and p2p moves.
//
// Shared tensors are read-only (two tasks writing one tensor
// concurrently is a schedule bug the VM rejects); private tensors are
// written only by their owning device's goroutine.
func TestConcurrentVMHotPath(t *testing.T) {
	const (
		devs    = 4
		perDev  = 8
		nShared = 8
		bytes   = 256
		iters   = 400
	)
	reg := tensor.NewRegistry()
	vm := NewVM(devs, 4*bytes, memory.Policy{DirtyTracking: true, P2P: true})
	vm.StartEngine(2 * bytes)

	private := make([][]*tensor.Tensor, devs)
	wrote := make([][]bool, devs)
	for d := 0; d < devs; d++ {
		wrote[d] = make([]bool, perDev)
		for i := 0; i < perDev; i++ {
			ts := reg.New(tName("p", d, i), tensor.Activation, bytes, i, d)
			vm.HostAlloc(ts)[0] = -1
			private[d] = append(private[d], ts)
		}
	}
	var shared []*tensor.Tensor
	for i := 0; i < nShared; i++ {
		ts := reg.New(tName("s", 0, i), tensor.Weight, bytes, i, -1)
		vm.HostAlloc(ts)[0] = float32(100 + i)
		shared = append(shared, ts)
	}

	var wg sync.WaitGroup
	errc := make(chan error, devs+1)
	for d := 0; d < devs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(d)))
			for i := 0; i < iters; i++ {
				var ts *tensor.Tensor
				write := false
				if rng.Intn(4) == 0 {
					ts = shared[rng.Intn(nShared)]
				} else {
					ts = private[d][rng.Intn(perDev)]
					write = rng.Intn(2) == 0
				}
				buf, err := vm.Ensure(d, ts)
				if err != nil {
					// A cross-device request for a pinned tensor is
					// rejected by design; under this unscheduled stress
					// it just means another device got there first.
					if strings.Contains(err.Error(), "dependency bug") {
						continue
					}
					errc <- err
					return
				}
				_ = buf[0]
				if write {
					if err := vm.MarkDirty(ts); err != nil {
						errc <- err
						return
					}
					buf[0] = float32(d)
					wrote[d][ts.Layer] = true
				}
				if err := vm.Unpin(ts); err != nil {
					errc <- err
					return
				}
				if rng.Intn(4) == 0 {
					vm.EnsureAsync(d, private[d][rng.Intn(perDev)])
				}
				if rng.Intn(8) == 0 {
					vm.CleanAhead(d, 2)
				}
			}
		}(d)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			host, err := vm.Host(shared[j%nShared])
			if err != nil {
				errc <- err
				return
			}
			if got, want := host[0], float32(100+j%nShared); got != want {
				errc <- errValue(shared[j%nShared], got, want)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := vm.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	vm.Close()

	for d := 0; d < devs; d++ {
		if used := vm.Used(d); used < 0 || used > 4*bytes {
			t.Fatalf("gpu%d used %d outside [0, capacity]", d, used)
		}
	}
	// Bit-exactness after the storm: shared tensors kept their values,
	// written privates hold their owner's mark, untouched ones the
	// initial fill.
	for i, ts := range shared {
		host, err := vm.Host(ts)
		if err != nil {
			t.Fatal(err)
		}
		if host[0] != float32(100+i) {
			t.Fatalf("%s corrupted: got %v want %v", ts, host[0], float32(100+i))
		}
	}
	for d := 0; d < devs; d++ {
		for i, ts := range private[d] {
			host, err := vm.Host(ts)
			if err != nil {
				t.Fatal(err)
			}
			want := float32(-1)
			if wrote[d][i] {
				want = float32(d)
			}
			if host[0] != want {
				t.Fatalf("%s corrupted: got %v want %v", ts, host[0], want)
			}
		}
	}
	s := vm.StatsSnapshot()
	if s.SwapIns == 0 {
		t.Fatal("stress never swapped: capacity pressure miscalibrated")
	}
}

func tName(prefix string, d, i int) string {
	return prefix + string(rune('a'+d)) + string(rune('0'+i))
}

type valueErr struct {
	t         *tensor.Tensor
	got, want float32
}

func errValue(t *tensor.Tensor, got, want float32) error {
	return &valueErr{t, got, want}
}

func (e *valueErr) Error() string {
	return e.t.String() + " snapshot mismatch"
}
