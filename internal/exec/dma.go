package exec

import (
	"fmt"
	"runtime"
	"time"

	"harmony/internal/claimword"
	"harmony/internal/fault"
	"harmony/internal/nn"
	"harmony/internal/tensor"
	"harmony/internal/trace"
)

// This file is the VM's asynchronous DMA engine and the buffer claim
// state machine: per-device worker goroutines service prefetch
// swap-ins (EnsureAsync) and proactive write-backs (CleanAhead) while
// device workers compute. All copies run outside the shard locks
// under a buffer claim; completion is signaled through the packed
// claim word, so a demand Ensure on an in-flight buffer rides the DMA
// instead of copying twice.

type dmaKind int

const (
	dmaSwapIn    dmaKind = iota // prefetch: host→device fill of b.dev
	dmaWriteback                // clean-ahead: device→host, device copy kept
)

type dmaReq struct {
	b    *buffer
	kind dmaKind
	dev  int // device whose DMA lane services the request
}

// ------------------------------------------------------ state machine
//
// claim, commit, settle, pin, unpin and consumePrefetch are the only
// functions allowed to mutate a buffer's claim word (and its done
// channel), and they do so exclusively through CAS on the pure
// transitions in internal/claimword — every other path must go
// through them so waiters, eviction and the reserve path always see a
// coherent claim. The claimdiscipline analyzer (internal/analyzers)
// rejects word/done mutations anywhere else, and raw stores even
// here.

// claim CASes b into the claimed state st. async marks claims
// serviced by a DMA worker; committed marks sync claims that already
// hold everything they need (write-backs, p2p with the destination
// charged) — set in the claim CAS itself so no observer ever sees a
// resident claimed-unwaitable word. Returns false when the buffer is
// not claimable under need (already claimed, pinned, resident);
// callers re-observe and retry or bail. On success the claim's
// wakeup channel is published to b.done.
func (vm *VM) claim(b *buffer, st claimword.State, async, committed bool, need claimword.Need) bool {
	for {
		w := b.load()
		n, ok := claimword.Claim(w, st, async, committed, need)
		if !ok {
			return false
		}
		if b.word.CompareAndSwap(uint64(w), uint64(n)) {
			ch := make(chan struct{})
			b.done.Store(&ch)
			return true
		}
	}
}

// commit publishes residency for a claimed swap-in whose reserve
// completed: residency and the waitable mark land in one CAS (async
// claims also gain the prefetched mark). Requires the caller to hold
// b's claim; callers must commit before the buffer becomes visible to
// any eviction scan (lruPush), which the claimdiscipline analyzer
// checks lexically.
func (vm *VM) commit(b *buffer) {
	for {
		w := b.load()
		n, ok := claimword.Commit(w)
		if !ok {
			panic(fmt.Sprintf("exec: commit of unclaimed %s", b.t))
		}
		if b.word.CompareAndSwap(uint64(w), uint64(n)) {
			return
		}
	}
}

// settle completes b's in-flight DMA — state back to idle, residency
// set to the outcome, pinDelta applied (paths that hand the buffer to
// their caller pinned pass +1) — and wakes every waiter by closing
// the claim's channel. Requires the caller to hold b's claim. The
// pointer-CAS on done tolerates a successor claim publishing its own
// channel between our word CAS and the cleanup.
func (vm *VM) settle(b *buffer, resident bool, pinDelta int) {
	p := b.done.Load()
	for {
		w := b.load()
		n, ok := claimword.Settle(w, resident, pinDelta)
		if !ok {
			panic(fmt.Sprintf("exec: settle of unclaimed %s", b.t))
		}
		if b.word.CompareAndSwap(uint64(w), uint64(n)) {
			break
		}
	}
	if p != nil {
		b.done.CompareAndSwap(p, nil)
		close(*p)
	}
}

// pin takes one pin via a single CAS against the word the caller just
// observed — not a retry loop, so the caller's placement reads stay
// tied to the exact word that was pinned. Fails when the buffer is
// claimed, not resident, or the word moved; the caller re-observes.
func (vm *VM) pin(b *buffer, w claimword.Word) bool {
	n, ok := claimword.Pin(w)
	if !ok {
		return false
	}
	return b.word.CompareAndSwap(uint64(w), uint64(n))
}

// unpin releases one pin. Returns false on underflow.
func (vm *VM) unpin(b *buffer) bool {
	for {
		w := b.load()
		n, ok := claimword.Unpin(w)
		if !ok {
			return false
		}
		if b.word.CompareAndSwap(uint64(w), uint64(n)) {
			return true
		}
	}
}

// consumePrefetch clears b's prefetched mark; exactly one caller wins
// and must return the bytes to the owning shard's prefetch budget
// (under that shard's lock).
func (vm *VM) consumePrefetch(b *buffer) bool {
	for {
		w := b.load()
		n, ok := claimword.ConsumePrefetch(w)
		if !ok {
			return false
		}
		if b.word.CompareAndSwap(uint64(w), uint64(n)) {
			return true
		}
	}
}

// waitSettle blocks until b's current claim settles, then returns so
// the caller can re-observe the word (a new claim may land at any
// time). Tolerates the tiny window where a claim won its CAS but has
// not published its channel yet, and stale channels from claims that
// already settled (closed channels wake immediately).
func (vm *VM) waitSettle(b *buffer) {
	p := b.done.Load()
	if p == nil {
		runtime.Gosched()
		return
	}
	<-*p
}

// waitableInFlight returns the least-recently-used buffer on sh whose
// in-flight operation completes autonomously — an async DMA-worker op
// or a committed sync claim — or nil. Scanning the shard's LRU list
// (not the buffer map) keeps the choice deterministic for a given
// residency history and touches only resident buffers. Requires sh.mu
// held.
func (vm *VM) waitableInFlight(sh *vmShard) *buffer {
	for b := sh.lru.head; b != nil; b = b.next {
		if b.load().Waitable() {
			return b
		}
	}
	return nil
}

// ---------------------------------------------------------- DMA engine

// StartEngine launches one DMA worker goroutine per device and allows
// async swap-in bytes in flight per device up to budgetBytes. Call
// Close to drain and stop the workers (recovery does, before
// discarding a VM). Idempotent; must be called before the first
// EnsureAsync/CleanAhead.
func (vm *VM) StartEngine(budgetBytes int64) {
	vm.engMu.Lock()
	defer vm.engMu.Unlock()
	if vm.started || vm.closed.Load() {
		return
	}
	if budgetBytes <= 0 || budgetBytes > vm.capacity {
		budgetBytes = vm.capacity / 2
	}
	vm.budget = budgetBytes
	for _, sh := range vm.shards {
		sh.budget = budgetBytes // pre-engOn: nothing reads shard budgets yet
	}
	vm.started = true
	vm.wg.Add(len(vm.shards))
	for d := range vm.shards {
		go vm.dmaWorker(d)
	}
	vm.engOn.Store(true) // publishes budgets to EnsureAsync
}

// SetPrefetchBudget retunes dev's prefetch byte budget. The adaptive
// controller calls it between steps (after WaitIdle), but it is safe
// at any time: the value is clamped to (0, engine cap] and read under
// the shard lock, so in-flight prefetches keep their accounting. A
// shrink does not cancel bytes already in flight; it only gates new
// EnsureAsync admissions.
func (vm *VM) SetPrefetchBudget(dev int, bytes int64) {
	if !vm.engOn.Load() || dev < 0 || dev >= len(vm.shards) {
		return
	}
	if bytes <= 0 || bytes > vm.budget {
		bytes = vm.budget
	}
	sh := vm.shards[dev]
	sh.mu.Lock()
	sh.budget = bytes
	sh.mu.Unlock()
}

// Close stops the DMA workers after draining queued requests. Safe to
// call on a VM whose engine never started, and more than once. Shard
// conds are poked one at a time in ascending device order.
func (vm *VM) Close() {
	vm.engMu.Lock()
	if !vm.started || vm.closed.Load() {
		vm.engMu.Unlock()
		return
	}
	vm.closed.Store(true)
	vm.engMu.Unlock()
	for _, sh := range vm.shards {
		sh.mu.Lock()
		sh.work.Broadcast()
		sh.mu.Unlock()
	}
	vm.wg.Wait()
}

// WaitIdle blocks until no async DMA is queued or in flight, then
// returns (and clears) the first fatal fault a DMA worker hit, if
// any. The trainer calls it at every step boundary so stats are
// settled and recovery never races a live DMA. Holding engMu between
// the pending check and the wait pairs with the worker's
// broadcast-under-engMu, so the zero-crossing wakeup is never lost.
func (vm *VM) WaitIdle() error {
	vm.engMu.Lock()
	defer vm.engMu.Unlock()
	if !vm.started {
		return nil
	}
	for vm.pending.Load() > 0 {
		vm.idle.Wait()
	}
	err := vm.asyncErr
	vm.asyncErr = nil
	return err
}

// latchAsyncErr records the first fatal DMA-worker fault for WaitIdle.
func (vm *VM) latchAsyncErr(err error) {
	if _, fatal := fault.AsFatal(err); !fatal {
		return
	}
	vm.engMu.Lock()
	if vm.asyncErr == nil {
		vm.asyncErr = err
	}
	vm.engMu.Unlock()
}

// EnsureAsync requests that t become resident on dev without
// blocking: a prefetch. It never waits, never evicts, never pins —
// it fills spare capacity only — and silently does nothing when the
// tensor is missing, already resident or in flight, not host-backed,
// over the per-device async budget, or the device is full. A later
// Ensure either hits the prefetched copy or rides the in-flight DMA.
// The whole admission runs under the destination shard's lock alone.
func (vm *VM) EnsureAsync(dev int, t *tensor.Tensor) {
	if !vm.engOn.Load() || vm.closed.Load() {
		return
	}
	b, ok := vm.lookup(t.ID)
	if !ok {
		return
	}
	w := b.load()
	if w.State() != claimword.Idle || w.Pins() > 0 {
		return
	}
	sh := vm.shards[dev]
	if w.Resident() {
		if b.devID == dev {
			// Already where the upcoming task needs it: bump it so
			// eviction prefers colder pages. Re-validate under the shard
			// lock — only idle-resident-here buffers are linked here.
			sh.mu.Lock()
			if w2 := b.load(); w2.State() == claimword.Idle && w2.Resident() && b.devID == dev {
				vm.touch(sh, b)
			}
			sh.mu.Unlock()
		}
		return
	}
	if b.host == nil {
		return
	}
	bytes := t.Bytes
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// The budget counts prefetched bytes until their first demand hit
	// (not merely while in flight), bounding how much device memory
	// prefetch may occupy at the expense of the present working set.
	if sh.pfBytes+bytes > sh.budget {
		return
	}
	// Prefetch fills spare capacity only. Evicting on behalf of the
	// future is a Belady bet the prefetcher always loses under
	// pressure: dropped pages are exactly the stashes and activations
	// the backward pass re-demands, and measured swap traffic tripled
	// when prefetch was allowed to make room for itself. The demand
	// path keeps sole authority over eviction.
	if sh.used+bytes > vm.capacity {
		return
	}
	if !vm.claim(b, claimword.SwapIn, true, false, claimword.NeedEmpty) {
		return // raced with a demand path; it will do the work
	}
	b.dev = make([]float32, b.floats())
	b.devID = dev
	b.dirty.Store(false)
	vm.commit(b) // async: residency + prefetched mark in one CAS
	sh.used += bytes
	sh.pfBytes += bytes
	vm.lruPush(sh, b)
	sh.stats.PrefetchIssued++
	vm.enqueue(sh, dmaReq{b: b, kind: dmaSwapIn, dev: dev})
}

// CleanAhead asynchronously writes back up to max dirty, idle,
// unpinned LRU buffers on dev (device copies kept, now clean), so
// later evictions find pages they can drop instead of stalling on a
// synchronous write-back. No-op without dirty tracking — dropping
// clean pages is only legal under that policy.
func (vm *VM) CleanAhead(dev int, max int) {
	if !vm.engOn.Load() || vm.closed.Load() || !vm.pol.DirtyTracking {
		return
	}
	sh := vm.shards[dev]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Only act under real eviction pressure: a synchronous write-back
	// stall since the last batch and the device nearly full (≥3/4).
	// Outside that regime evictions drop clean pages for free, and a
	// write-back would be pure link traffic (weights are re-dirtied
	// every update, so eagerly cleaning them costs bandwidth forever
	// and buys nothing). Each stall re-arms one batch, so clean-ahead
	// tracks — and converts — the workload's real write-back rate.
	if sh.syncOuts == sh.cleanSeen || sh.used*4 < vm.capacity*3 {
		return
	}
	sh.cleanSeen = sh.syncOuts // re-arm on the next stall
	issued := 0
	for b := sh.lru.head; b != nil && issued < max; b = b.next {
		w := b.load()
		if w.State() != claimword.Idle || w.Pins() > 0 || !b.dirty.Load() {
			continue
		}
		if !vm.claim(b, claimword.SwapOut, true, false, claimword.NeedUnpinned) {
			continue // raced with a pin; skip this page
		}
		if b.host == nil {
			b.host = make([]float32, b.floats())
		}
		sh.stats.CleanAheads++
		vm.enqueue(sh, dmaReq{b: b, kind: dmaWriteback, dev: dev})
		issued++
	}
}

// enqueue hands a request to sh's DMA worker. Requires sh.mu held;
// the queue is an unbounded slice precisely so enqueueing never
// blocks while holding the shard lock.
func (vm *VM) enqueue(sh *vmShard, r dmaReq) {
	vm.pending.Add(1)
	sh.queue = append(sh.queue, r)
	sh.work.Signal()
}

// dmaWorker drains one device's request queue. Workers never wait on
// buffer states — every request arrives pre-claimed — so they always
// make progress, which is what lets synchronous paths safely wait on
// async operations. Each worker parks on its own shard's cond; DMA
// completions on different devices share nothing but the pending
// counter.
func (vm *VM) dmaWorker(dev int) {
	defer vm.wg.Done()
	sh := vm.shards[dev]
	sh.mu.Lock()
	for {
		for len(sh.queue) == 0 {
			if vm.closed.Load() {
				sh.mu.Unlock()
				return
			}
			sh.work.Wait()
		}
		req := sh.queue[0]
		sh.queue = sh.queue[1:]
		sh.mu.Unlock()
		vm.service(req)
		if vm.pending.Add(-1) == 0 {
			vm.engMu.Lock()
			vm.idle.Broadcast()
			vm.engMu.Unlock()
		}
		sh.mu.Lock()
	}
}

// service performs one async DMA outside the shard lock.
func (vm *VM) service(req dmaReq) {
	b := req.b
	sh := vm.shards[req.dev]
	bytes := b.t.Bytes
	switch req.kind {
	case dmaSwapIn:
		err := vm.inject(fault.SwapIn, req.dev, b.t)
		if err == nil {
			start := vm.clk.Now()
			copyChunked(b.dev, b.host)
			vm.linkSleep(bytes)
			busy := vm.clk.Now().Sub(start)
			vm.record(req.dev, trace.Prefetch, "pf "+b.t.String(), start)
			b.dirty.Store(false)
			sh.mu.Lock()
			sh.stats.SwapInBytes += bytes
			sh.stats.SwapIns++
			sh.stats.AsyncDMANanos += busy.Nanoseconds()
			sh.mu.Unlock()
			vm.settle(b, true, 0) // stays prefetched until the demand hit
			return
		}
		// Failed prefetch: roll the residency back (dropResidency
		// returns the bytes to the budget) and let the demand path
		// retry (and surface) the fault. Fatal faults are also latched
		// so WaitIdle reports them even if no demand follows.
		vm.dropResidency(b)
		vm.latchAsyncErr(err)
		vm.settle(b, false, 0)
	case dmaWriteback:
		err := vm.inject(fault.SwapOut, req.dev, b.t)
		if err == nil {
			start := vm.clk.Now()
			copyChunked(b.host, b.dev)
			vm.linkSleep(bytes)
			busy := vm.clk.Now().Sub(start)
			vm.record(req.dev, trace.SwapOut, "cl "+b.t.String(), start)
			b.dirty.Store(false)
			sh.mu.Lock()
			sh.stats.SwapOutBytes += bytes
			sh.stats.SwapOuts++
			sh.stats.AsyncDMANanos += busy.Nanoseconds()
			sh.mu.Unlock()
			vm.settle(b, true, 0)
			return
		}
		// Failed clean-ahead: the page simply stays dirty.
		vm.latchAsyncErr(err)
		vm.settle(b, true, 0)
	}
}

// copyChunked copies src into dst through the shared kernel worker
// pool in cache-friendly chunks, so large DMAs use every core without
// starving compute (the pool interleaves fairly).
func copyChunked(dst, src []float32) {
	nn.ParallelFor(len(dst), 64<<10, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// linkSleep charges the modeled host-link transfer time for a copy of
// the given size. Runs outside all VM locks on the transferring
// goroutine, so concurrent lanes genuinely overlap.
func (vm *VM) linkSleep(bytes int64) {
	vm.cfgMu.Lock()
	bps := vm.bytesPerSec
	vm.cfgMu.Unlock()
	if bps <= 0 {
		return
	}
	time.Sleep(time.Duration(bytes * int64(time.Second) / bps))
}

// record emits one DMA span to the installed recorder, if any.
func (vm *VM) record(dev int, lane trace.Lane, label string, start time.Time) {
	vm.cfgMu.Lock()
	rec := vm.rec
	vm.cfgMu.Unlock()
	if rec == nil {
		return
	}
	rec(dev, lane, label, start, vm.clk.Now())
}
