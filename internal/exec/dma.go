package exec

import (
	"fmt"
	"sync"
	"time"

	"harmony/internal/fault"
	"harmony/internal/nn"
	"harmony/internal/tensor"
	"harmony/internal/trace"
)

// This file is the VM's asynchronous DMA engine: per-device worker
// goroutines that service prefetch swap-ins (EnsureAsync) and
// proactive write-backs (CleanAhead) while device workers compute.
// All copies run outside the VM lock under a buffer claim; completion
// is signaled through the buffer state machine, so a demand Ensure on
// an in-flight buffer rides the DMA instead of copying twice.

type dmaKind int

const (
	dmaSwapIn    dmaKind = iota // prefetch: host→device fill of b.dev
	dmaWriteback                // clean-ahead: device→host, device copy kept
)

type dmaReq struct {
	b    *buffer
	kind dmaKind
	dev  int // device whose DMA lane services the request
}

// ------------------------------------------------------ state machine
//
// claim, commit and settle are the only functions allowed to write a
// buffer's DMA-state fields (state, done, async, committed) — every
// other transition path must go through them so waiters, eviction and
// the reserve path always see a coherent claim. The claimdiscipline
// analyzer (internal/analyzers) rejects direct writes anywhere else.

// claim marks b's in-flight DMA. Requires mu held and b idle.
func (vm *VM) claim(b *buffer, st bufState, async bool) {
	if b.state != stIdle || b.done != nil {
		panic(fmt.Sprintf("exec: double claim of %s", b.t))
	}
	b.state = st
	b.done = make(chan struct{})
	b.async = async
}

// commit marks a synchronous claim as past its reserve: only the pure
// transfer remains, so the operation completes autonomously and
// eviction may safely wait on it. Requires mu held and b claimed.
// Upholds DESIGN.md §9's "every resident claim is committed": callers
// must commit (or settle) before the buffer becomes visible as
// resident outside the lock.
func (vm *VM) commit(b *buffer) {
	if b.state == stIdle || b.done == nil {
		panic(fmt.Sprintf("exec: commit of unclaimed %s", b.t))
	}
	b.committed = true
}

// settle completes b's in-flight DMA and wakes every waiter.
// Requires mu held.
func (vm *VM) settle(b *buffer) {
	b.state = stIdle
	b.async = false
	b.committed = false
	close(b.done)
	b.done = nil
}

// waitableInFlight returns the least-recently-used buffer on dev whose
// in-flight operation completes autonomously — a DMA-worker op, or a
// synchronous op past its reserve — or nil. Scanning the device's LRU
// list (not the buffer map) keeps the choice deterministic for a given
// residency history and touches only resident buffers. Requires mu
// held.
func (vm *VM) waitableInFlight(dev int) *buffer {
	for b := vm.lru[dev].head; b != nil; b = b.next {
		if b.async || b.committed {
			return b
		}
	}
	return nil
}

// StartEngine launches one DMA worker goroutine per device and allows
// async swap-in bytes in flight per device up to budgetBytes. Call
// Close to drain and stop the workers (recovery does, before
// discarding a VM). Idempotent; must be called before the first
// EnsureAsync/CleanAhead.
func (vm *VM) StartEngine(budgetBytes int64) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	if vm.queues != nil || vm.closed {
		return
	}
	if budgetBytes <= 0 || budgetBytes > vm.capacity {
		budgetBytes = vm.capacity / 2
	}
	vm.budget = budgetBytes
	vm.queues = make([][]dmaReq, len(vm.used))
	vm.pfBytes = make([]int64, len(vm.used))
	vm.work = sync.NewCond(&vm.mu)
	vm.idle = sync.NewCond(&vm.mu)
	vm.wg.Add(len(vm.used))
	for d := range vm.used {
		go vm.dmaWorker(d)
	}
}

// Close stops the DMA workers after draining queued requests. Safe to
// call on a VM whose engine never started, and more than once.
func (vm *VM) Close() {
	vm.mu.Lock()
	if vm.queues == nil || vm.closed {
		vm.mu.Unlock()
		return
	}
	vm.closed = true
	vm.work.Broadcast()
	vm.mu.Unlock()
	vm.wg.Wait()
}

// WaitIdle blocks until no async DMA is queued or in flight, then
// returns (and clears) the first fatal fault a DMA worker hit, if
// any. The trainer calls it at every step boundary so stats are
// settled and recovery never races a live DMA.
func (vm *VM) WaitIdle() error {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	if vm.queues == nil {
		return nil
	}
	for vm.asyncPending > 0 {
		vm.idle.Wait()
	}
	err := vm.asyncErr
	vm.asyncErr = nil
	return err
}

// EnsureAsync requests that t become resident on dev without
// blocking: a prefetch. It never waits, never evicts, never pins —
// it fills spare capacity only — and silently does nothing when the
// tensor is missing, already resident or in flight, not host-backed,
// over the per-device async budget, or the device is full. A later
// Ensure either hits the prefetched copy or rides the in-flight DMA.
func (vm *VM) EnsureAsync(dev int, t *tensor.Tensor) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	if vm.queues == nil || vm.closed {
		return
	}
	b, ok := vm.bufs[t.ID]
	if !ok || b.state != stIdle || b.pins > 0 {
		return
	}
	if b.dev != nil {
		if b.devID == dev {
			// Already where the upcoming task needs it: bump it so
			// eviction prefers colder pages.
			vm.touch(b)
		}
		return
	}
	if b.host == nil {
		return
	}
	bytes := t.Bytes
	// The budget counts prefetched bytes until their first demand hit
	// (not merely while in flight), bounding how much device memory
	// prefetch may occupy at the expense of the present working set.
	if vm.pfBytes[dev]+bytes > vm.budget {
		return
	}
	// Prefetch fills spare capacity only. Evicting on behalf of the
	// future is a Belady bet the prefetcher always loses under
	// pressure: dropped pages are exactly the stashes and activations
	// the backward pass re-demands, and measured swap traffic tripled
	// when prefetch was allowed to make room for itself. The demand
	// path keeps sole authority over eviction.
	if vm.used[dev]+bytes > vm.capacity {
		return
	}
	vm.touch(b)
	vm.claim(b, stSwapIn, true)
	b.dev = make([]float32, b.floats())
	b.devID = dev
	b.dirty = false
	b.prefetched = true
	vm.used[dev] += bytes
	vm.pfBytes[dev] += bytes
	vm.lruPush(dev, b)
	vm.Stats.PrefetchIssued++
	vm.enqueue(dmaReq{b: b, kind: dmaSwapIn, dev: dev})
}

// CleanAhead asynchronously writes back up to max dirty, idle,
// unpinned LRU buffers on dev (device copies kept, now clean), so
// later evictions find pages they can drop instead of stalling on a
// synchronous write-back. No-op without dirty tracking — dropping
// clean pages is only legal under that policy.
func (vm *VM) CleanAhead(dev int, max int) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	if vm.queues == nil || vm.closed || !vm.pol.DirtyTracking {
		return
	}
	// Only act under real eviction pressure: a synchronous write-back
	// stall since the last batch and the device nearly full (≥3/4).
	// Outside that regime evictions drop clean pages for free, and a
	// write-back would be pure link traffic (weights are re-dirtied
	// every update, so eagerly cleaning them costs bandwidth forever
	// and buys nothing). Each stall re-arms one batch, so clean-ahead
	// tracks — and converts — the workload's real write-back rate.
	if vm.syncOuts == vm.cleanSeen || vm.used[dev]*4 < vm.capacity*3 {
		return
	}
	vm.cleanSeen = vm.syncOuts // re-arm on the next stall
	issued := 0
	for b := vm.lru[dev].head; b != nil && issued < max; b = b.next {
		if b.pins > 0 || b.state != stIdle || !b.dirty {
			continue
		}
		if b.host == nil {
			b.host = make([]float32, b.floats())
		}
		vm.claim(b, stSwapOut, true)
		vm.Stats.CleanAheads++
		vm.enqueue(dmaReq{b: b, kind: dmaWriteback, dev: dev})
		issued++
	}
}

// enqueue hands a request to dev's DMA worker. Requires mu held; the
// queue is an unbounded slice precisely so enqueueing never blocks
// while holding the lock.
func (vm *VM) enqueue(r dmaReq) {
	vm.asyncPending++
	vm.queues[r.dev] = append(vm.queues[r.dev], r)
	vm.work.Broadcast()
}

// dmaWorker drains one device's request queue. Workers never wait on
// buffer states — every request arrives pre-claimed — so they always
// make progress, which is what lets synchronous paths safely wait on
// async operations.
func (vm *VM) dmaWorker(dev int) {
	defer vm.wg.Done()
	vm.mu.Lock()
	for {
		for len(vm.queues[dev]) == 0 {
			if vm.closed {
				vm.mu.Unlock()
				return
			}
			vm.work.Wait()
		}
		req := vm.queues[dev][0]
		vm.queues[dev] = vm.queues[dev][1:]
		vm.mu.Unlock()
		vm.service(req)
		vm.mu.Lock()
		vm.asyncPending--
		if vm.asyncPending == 0 {
			vm.idle.Broadcast()
		}
	}
}

// service performs one async DMA outside the lock.
func (vm *VM) service(req dmaReq) {
	b := req.b
	bytes := b.t.Bytes
	switch req.kind {
	case dmaSwapIn:
		err := vm.inject(fault.SwapIn, req.dev, b.t)
		if err == nil {
			start := vm.clk.Now()
			copyChunked(b.dev, b.host)
			vm.linkSleep(bytes)
			busy := vm.clk.Now().Sub(start)
			vm.record(req.dev, trace.Prefetch, "pf "+b.t.String(), start)
			vm.mu.Lock()
			b.dirty = false
			vm.Stats.SwapInBytes += bytes
			vm.Stats.SwapIns++
			vm.Stats.AsyncDMANanos += busy.Nanoseconds()
			vm.settle(b)
			vm.mu.Unlock()
			return
		}
		// Failed prefetch: roll the residency back (release returns the
		// bytes to the budget) and let the demand path retry (and
		// surface) the fault. Fatal faults are also latched so WaitIdle
		// reports them even if no demand follows.
		vm.mu.Lock()
		vm.release(b)
		if _, fatal := fault.AsFatal(err); fatal && vm.asyncErr == nil {
			vm.asyncErr = err
		}
		vm.settle(b)
		vm.mu.Unlock()
	case dmaWriteback:
		err := vm.inject(fault.SwapOut, req.dev, b.t)
		if err == nil {
			start := vm.clk.Now()
			copyChunked(b.host, b.dev)
			vm.linkSleep(bytes)
			busy := vm.clk.Now().Sub(start)
			vm.record(req.dev, trace.SwapOut, "cl "+b.t.String(), start)
			vm.mu.Lock()
			b.dirty = false
			vm.Stats.SwapOutBytes += bytes
			vm.Stats.SwapOuts++
			vm.Stats.AsyncDMANanos += busy.Nanoseconds()
			vm.settle(b)
			vm.mu.Unlock()
			return
		}
		// Failed clean-ahead: the page simply stays dirty.
		vm.mu.Lock()
		if _, fatal := fault.AsFatal(err); fatal && vm.asyncErr == nil {
			vm.asyncErr = err
		}
		vm.settle(b)
		vm.mu.Unlock()
	}
}

// copyChunked copies src into dst through the shared kernel worker
// pool in cache-friendly chunks, so large DMAs use every core without
// starving compute (the pool interleaves fairly).
func copyChunked(dst, src []float32) {
	nn.ParallelFor(len(dst), 64<<10, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// linkSleep charges the modeled host-link transfer time for a copy of
// the given size. Runs outside the VM lock on the transferring
// goroutine, so concurrent lanes genuinely overlap.
func (vm *VM) linkSleep(bytes int64) {
	vm.mu.Lock()
	bps := vm.bytesPerSec
	vm.mu.Unlock()
	if bps <= 0 {
		return
	}
	time.Sleep(time.Duration(bytes * int64(time.Second) / bps))
}

// record emits one DMA span to the installed recorder, if any.
func (vm *VM) record(dev int, lane trace.Lane, label string, start time.Time) {
	vm.mu.Lock()
	rec := vm.rec
	vm.mu.Unlock()
	if rec == nil {
		return
	}
	rec(dev, lane, label, start, vm.clk.Now())
}
