package exec

import (
	"runtime"
	"testing"

	"harmony/internal/fault"
	"harmony/internal/memory"
	"harmony/internal/nn"
	"harmony/internal/sched"
)

// ------------------------------------------- async DMA engine (unit)

// TestEnsureAsyncPrefetchLifecycle walks the happy path of the state
// machine: an async swap-in lands the tensor on the device, the first
// demand Ensure is a hit (no second copy), and the counters agree.
func TestEnsureAsyncPrefetchLifecycle(t *testing.T) {
	_, a, _, _ := vmTensors(t)
	vm := NewVM(1, 500, memory.Policy{DirtyTracking: true})
	vm.StartEngine(400)
	defer vm.Close()
	host := vm.HostAlloc(a)
	for i := range host {
		host[i] = float32(i)
	}
	vm.EnsureAsync(0, a)
	if err := vm.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if vm.Used(0) != 400 {
		t.Fatalf("prefetched tensor not resident: used = %d", vm.Used(0))
	}
	dev, err := vm.Ensure(0, a)
	if err != nil {
		t.Fatal(err)
	}
	if dev[7] != 7 {
		t.Fatalf("prefetched copy wrong: %v", dev[:8])
	}
	st := vm.StatsSnapshot()
	if st.SwapIns != 1 || st.PrefetchIssued != 1 || st.PrefetchHits != 1 {
		t.Fatalf("stats = %+v, want one prefetch, one hit, one swap-in total", st)
	}
}

// TestEnsureRidesInFlightPrefetch arms a delay fault so the async
// swap-in is still in flight when the demand Ensure arrives: Ensure
// must wait for the DMA to settle and reuse it, not copy again.
func TestEnsureRidesInFlightPrefetch(t *testing.T) {
	_, a, _, _ := vmTensors(t)
	inj, err := fault.Parse("op=swap-in,mode=delay,delay=20ms,count=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(1, 500, memory.Policy{DirtyTracking: true})
	vm.SetFaultInjection(inj, 3, nil)
	vm.StartEngine(400)
	defer vm.Close()
	vm.HostAlloc(a)
	vm.EnsureAsync(0, a) // DMA worker sleeps 20ms before copying
	dev, err := vm.Ensure(0, a)
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("no device slice")
	}
	st := vm.StatsSnapshot()
	if st.SwapIns != 1 {
		t.Fatalf("demand Ensure double-copied an in-flight prefetch: %+v", st)
	}
	if st.PrefetchHits != 1 {
		t.Fatalf("riding an in-flight prefetch must count as a hit: %+v", st)
	}
}

// TestEnsureAsyncRespectsBudgetAndPins: prefetch must refuse work
// over the async byte budget and must never evict — it fills spare
// capacity only, so a full device (even of clean droppable pages)
// makes it a no-op until the demand path frees room.
func TestEnsureAsyncRespectsBudgetAndPins(t *testing.T) {
	_, a, b, c := vmTensors(t)
	vm := NewVM(1, 900, memory.Policy{DirtyTracking: true})
	vm.StartEngine(400) // budget: one 400-byte tensor outstanding
	defer vm.Close()
	vm.HostAlloc(a)
	vm.HostAlloc(b)
	vm.HostAlloc(c)
	// Pin a — 400 of 900 bytes used and unevictable.
	if _, err := vm.Ensure(0, a); err != nil {
		t.Fatal(err)
	}
	vm.EnsureAsync(0, b) // fits (400 outstanding = budget)
	vm.EnsureAsync(0, c) // over budget AND over capacity: must no-op
	if err := vm.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	st := vm.StatsSnapshot()
	if st.PrefetchIssued != 1 {
		t.Fatalf("issued = %d, want only b prefetched", st.PrefetchIssued)
	}
	if vm.Used(0) != 800 {
		t.Fatalf("used = %d, want a+b resident", vm.Used(0))
	}
	// b consumed: the budget frees up, but the device is still full
	// (800+400 > 900) and prefetch never evicts — even though clean
	// unpinned b would be a legal demand-path victim.
	if _, err := vm.Ensure(0, b); err != nil {
		t.Fatal(err)
	}
	if err := vm.Unpin(b); err != nil {
		t.Fatal(err)
	}
	vm.EnsureAsync(0, c)
	if err := vm.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if st := vm.StatsSnapshot(); st.Drops != 0 || st.PrefetchIssued != 1 || st.PrefetchHits != 1 {
		t.Fatalf("stats = %+v, want full device to veto c's prefetch", st)
	}
	// Once the demand path frees room, the same request goes through
	// (pinned a still untouched).
	if err := vm.Free(b); err != nil {
		t.Fatal(err)
	}
	vm.EnsureAsync(0, c)
	if err := vm.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if st := vm.StatsSnapshot(); st.PrefetchIssued != 2 || vm.Used(0) != 800 {
		t.Fatalf("stats = %+v used = %d, want c prefetched beside pinned a", st, vm.Used(0))
	}
}

// TestCleanAheadMakesPagesDroppable: a proactive write-back turns a
// dirty resident page clean, so the next eviction drops it instead of
// stalling on a synchronous swap-out.
func TestCleanAheadMakesPagesDroppable(t *testing.T) {
	_, a, b, _ := vmTensors(t)
	vm := NewVM(1, 500, memory.Policy{DirtyTracking: true})
	vm.StartEngine(0)
	defer vm.Close()
	host := vm.HostAlloc(a)
	host[3] = 9
	dev, err := vm.Ensure(0, a)
	if err != nil {
		t.Fatal(err)
	}
	dev[3] = 42
	if err := vm.MarkDirty(a); err != nil {
		t.Fatal(err)
	}
	if err := vm.Unpin(a); err != nil {
		t.Fatal(err)
	}
	vm.CleanAhead(0, 4)
	if err := vm.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if got, err := vm.Host(a); err != nil || got[3] != 42 {
		t.Fatalf("clean-ahead did not land on host: %v %v", got[:4], err)
	}
	// Evicting a now finds it clean: drop, not swap-out.
	vm.HostAlloc(b)
	if _, err := vm.Ensure(0, b); err != nil {
		t.Fatal(err)
	}
	st := vm.StatsSnapshot()
	if st.CleanAheads != 1 || st.Drops != 1 || st.SwapOuts != 1 {
		t.Fatalf("stats = %+v, want 1 clean-ahead write-back then a drop", st)
	}
}

// TestWaitIdleSurfacesFatalAsyncFault: a fatal fault that hits a DMA
// worker (no demand access ever trips over it) must still surface at
// the step boundary.
func TestWaitIdleSurfacesFatalAsyncFault(t *testing.T) {
	_, a, _, _ := vmTensors(t)
	inj, err := fault.Parse("op=swap-in,mode=fatal,count=1", 3)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(1, 500, memory.Policy{DirtyTracking: true})
	vm.SetFaultInjection(inj, 3, nil)
	vm.StartEngine(400)
	defer vm.Close()
	vm.HostAlloc(a)
	vm.EnsureAsync(0, a)
	err = vm.WaitIdle()
	if err == nil {
		t.Fatal("fatal async fault vanished")
	}
	if _, fatal := fault.AsFatal(err); !fatal {
		t.Fatalf("want fatal error, got: %v", err)
	}
	// The failed prefetch must have rolled its reservation back.
	if vm.Used(0) != 0 {
		t.Fatalf("used = %d after failed prefetch", vm.Used(0))
	}
	// And a second WaitIdle reports clean.
	if err := vm.WaitIdle(); err != nil {
		t.Fatalf("latched error not cleared: %v", err)
	}
}

// --------------------------------------- bit-exactness matrix (e2e)

// TestPrefetchBitExactMatrix is the tentpole guarantee: the serial
// reference, the synchronous parallel executor, and the parallel
// executor with prefetch at several depths all produce bit-identical
// losses and weights in both DP and PP modes. Prefetch may change
// data movement, never math.
func TestPrefetchBitExactMatrix(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 3
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := trainerConfig(mode, 2)
			ref.Serial = true
			a, lossA := runTrainer(t, ref, steps)
			for _, depth := range []int{-1, 1, 2, 4} {
				cfg := trainerConfig(mode, 2)
				cfg.PrefetchDepth = depth
				b, lossB := runTrainer(t, cfg, steps)
				assertSameRun(t, a, b, lossA, lossB)
				st := b.Stats()
				if depth < 0 && st.PrefetchIssued != 0 {
					t.Fatalf("depth %d: prefetch ran while disabled: %+v", depth, st)
				}
				if depth > 0 && st.PrefetchIssued == 0 {
					t.Fatalf("depth %d: prefetch never fired under memory pressure", depth)
				}
				b.Close()
			}
		})
	}
}

// TestPrefetchBitExactUnderDelayFaults stresses the state machine's
// interleavings: injected delays on every op class shift which DMAs
// are in flight when demands arrive, and the math must not move.
func TestPrefetchBitExactUnderDelayFaults(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := trainerConfig(mode, 2)
			ref.Serial = true
			a, lossA := runTrainer(t, ref, 3)
			cfg := faultyConfig(t, mode, "op=any,mode=delay,delay=300us,count=60", false)
			cfg.PrefetchDepth = 3
			b, lossB := runTrainer(t, cfg, 3)
			assertSameRun(t, a, b, lossA, lossB)
			if st := b.Stats(); st.PrefetchIssued == 0 {
				t.Fatalf("prefetch never fired: %+v", st)
			}
			b.Close()
		})
	}
}

// TestPrefetchBitExactUnderRecovery runs the end-to-end recovery
// scenario with the async engine at full depth: the fatal fault lands
// while DMAs may be in flight, runStep drains them, recovery rebuilds
// the VM (closing the old engine), and the result still matches the
// fault-free serial reference bit for bit.
func TestPrefetchBitExactUnderRecovery(t *testing.T) {
	nn.SetWorkers(4)
	defer nn.SetWorkers(runtime.GOMAXPROCS(0))
	const steps = 4
	for _, mode := range []sched.Mode{sched.HarmonyDP, sched.HarmonyPP} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := trainerConfig(mode, 2)
			ref.Serial = true
			ref.DeviceBytes = 32 << 10
			a, lossA := runTrainer(t, ref, steps)
			cfg := faultyConfig(t, mode, "op=kernel,mode=fatal,dev=1,step=3", true)
			cfg.DeviceBytes = 32 << 10
			cfg.PrefetchDepth = 4
			b, lossB := runTrainer(t, cfg, steps)
			assertSameRun(t, a, b, lossA, lossB)
			if got := b.Recoveries(); got != 1 {
				t.Fatalf("recoveries = %d, want 1", got)
			}
			b.Close()
		})
	}
}
