// Package sweep runs independent experiment configurations
// concurrently on a bounded worker pool while preserving input order
// in the results. Simulations are deterministic and independent, so
// sweeps parallelize perfectly; the experiments package uses this to
// regenerate multi-cell figures at full CPU width.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Run evaluates fn over every config on up to `workers` goroutines
// (0 selects GOMAXPROCS) and returns results in input order. The
// first error wins and is returned after all workers drain; a panic
// in fn is recovered and reported as an error rather than tearing
// down the process.
func Run[C, R any](configs []C, workers int, fn func(C) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	results := make([]R, len(configs))
	if len(configs) == 0 {
		return results, nil
	}
	type job struct{ idx int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	eval := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				setErr(fmt.Errorf("sweep: config %d panicked: %v", i, r))
			}
		}()
		out, err := fn(configs[i])
		if err != nil {
			setErr(fmt.Errorf("sweep: config %d: %w", i, err))
			return
		}
		results[i] = out
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				eval(j.idx)
			}
		}()
	}
	for i := range configs {
		jobs <- job{i}
	}
	close(jobs)
	wg.Wait()
	return results, firstErr
}

// Grid builds the cartesian product of two axes as (A, B) pairs in
// row-major order — the usual shape of a two-parameter figure sweep.
func Grid[A, B any](as []A, bs []B) []Pair[A, B] {
	out := make([]Pair[A, B], 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			out = append(out, Pair[A, B]{a, b})
		}
	}
	return out
}

// Pair is one cell of a two-axis grid.
type Pair[A, B any] struct {
	A A
	B B
}
