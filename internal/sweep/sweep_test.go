package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunPreservesOrder(t *testing.T) {
	configs := []int{5, 3, 9, 1, 7}
	got, err := Run(configs, 3, func(c int) (int, error) { return c * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range configs {
		if got[i] != c*2 {
			t.Fatalf("results out of order: %v", got)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run(nil, 4, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: %v, %v", got, err)
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int32
	configs := make([]int, 32)
	_, err := Run(configs, 4, func(int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer cur.Add(-1)
		// Small spin so workers overlap.
		s := 0
		for i := 0; i < 10000; i++ {
			s += i
		}
		_ = s
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent workers, cap was 4", p)
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run([]int{1, 2, 3, 4}, 2, func(c int) (int, error) {
		if c == 3 {
			return 0, boom
		}
		return c, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run([]int{1}, 1, func(int) (int, error) { panic("kaboom") })
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestGrid(t *testing.T) {
	g := Grid([]int{1, 2}, []string{"a", "b", "c"})
	if len(g) != 6 {
		t.Fatalf("grid size = %d", len(g))
	}
	if g[0] != (Pair[int, string]{1, "a"}) || g[5] != (Pair[int, string]{2, "c"}) {
		t.Fatalf("grid order wrong: %v", g)
	}
}

// Property: Run with any worker count equals the serial map.
func TestRunEquivalentToSerial(t *testing.T) {
	f := func(raw []uint8, workersRaw uint8) bool {
		workers := int(workersRaw%8) + 1
		configs := make([]int, len(raw))
		for i, v := range raw {
			configs[i] = int(v)
		}
		got, err := Run(configs, workers, func(c int) (string, error) {
			return fmt.Sprintf("v%d", c*3), nil
		})
		if err != nil {
			return false
		}
		for i, c := range configs {
			if got[i] != fmt.Sprintf("v%d", c*3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
